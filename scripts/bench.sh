#!/bin/sh
# bench.sh — the hot-path benchmark trajectory for this repository.
#
# Runs the steady-state evaluation benchmarks (repeated-point and cold
# variants, the batched-vs-per-point surface sweep, plus the assembly
# micro-benchmarks) and writes the parsed numbers to BENCH_evaluate.json
# next to the frozen pre-optimization baseline, together with the
# per-benchmark speedup and allocation ratios. Successive PRs diff the
# JSON instead of eyeballing `go test -bench` output.
#
# It also records the backend comparison — BenchmarkROMEvaluate against
# the full backend's repeated-point and cold solves — into
# BENCH_backend.json (acceptance bar: rom_vs_cold_full ≥ 10), and the
# serving benchmark — cmd/oftecload replaying SERVE_N concurrent mixed
# requests against a self-hosted oftecd — into BENCH_serve.json
# (acceptance bar: zero errors and cache hits+waits > 0).
#
# Usage: scripts/bench.sh [output.json] [backend-output.json] [serve-output.json]
#   BENCHTIME=5s scripts/bench.sh       # longer runs for stabler numbers
#   SERVE_N=5000 SERVE_C=64 scripts/bench.sh   # heavier serving run
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-2s}"
OUT="${1:-BENCH_evaluate.json}"
BACKEND_OUT="${2:-BENCH_backend.json}"
SERVE_OUT="${3:-BENCH_serve.json}"
raw="$(mktemp)"
parsed="$(mktemp)"
current="$(mktemp)"
trap 'rm -f "$raw" "$parsed" "$current"' EXIT

echo "== go test -bench (hot path, benchtime $BENCHTIME)"
go test -run '^$' \
	-bench '^(BenchmarkEvaluate|BenchmarkEvaluateExact|BenchmarkEvaluateCold|BenchmarkEvaluateExactCold|BenchmarkROMEvaluate|BenchmarkSurfaceGridBatched|BenchmarkROMColdStart|BenchmarkGradVsFD|BenchmarkCoolantPower)$' \
	-benchtime "$BENCHTIME" -benchmem . | tee "$raw"
go test -run '^$' \
	-bench '^(BenchmarkAssemble|BenchmarkAssembleReference)$' \
	-benchtime "$BENCHTIME" -benchmem ./internal/thermal | tee -a "$raw"

# One JSON object per benchmark line: the name plus every value/unit pair
# (ns/op, B/op, allocs/op, and custom metrics like cg-iters).
awk '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	printf "{\"name\":\"%s\",\"iterations\":%s", name, $2
	for (i = 3; i < NF; i += 2) {
		unit = $(i + 1)
		gsub(/\//, "_per_", unit)
		gsub(/[^A-Za-z0-9]+/, "_", unit)
		printf ",\"%s\":%s", unit, $i
	}
	print "}"
}' "$raw" >"$parsed"

jq -s 'map({(.name): del(.name)}) | add' "$parsed" >"$current"

# Lint wall time: how long the full eleven-analyzer oftecvet sweep takes
# over the module, compiled first so the number is pure analysis (load +
# type-check + analyzers), not go-build time. scripts/check.sh enforces
# the budget; this records the trajectory next to the solver numbers.
echo "== oftecvet wall time (full module, eleven analyzers)"
vetbin="$(mktemp)"
go build -o "$vetbin" ./cmd/oftecvet
lint_start=$(date +%s%N)
"$vetbin" ./...
lint_ms=$(( ($(date +%s%N) - lint_start) / 1000000 ))
rm -f "$vetbin"
echo "   oftecvet: ${lint_ms} ms"

# The baseline block is the pre-optimization state of this repository
# (Builder assembly per evaluation, fresh IC(0) per solve, no scratch
# reuse), measured with benchtime 2s on the reference container. It is
# frozen so every future run compares against the same origin.
jq -n \
	--arg benchtime "$BENCHTIME" \
	--argjson lint_ms "$lint_ms" \
	--slurpfile current "$current" \
	'
	{
		BenchmarkEvaluate:      {ns_per_op: 5645555,  allocs_per_op: 89,  B_per_op: 2452920,  cg_iters: 29},
		BenchmarkEvaluateExact: {ns_per_op: 27096774, allocs_per_op: 520, B_per_op: 14612352, outer_iters: 6},
		BenchmarkAssemble:      {ns_per_op: 3818399,  allocs_per_op: 70,  B_per_op: 2098296}
	} as $baseline |
	$current[0] as $cur |
	{
		benchtime: $benchtime,
		baseline: $baseline,
		current: $cur,
		lint: {wall_ms: $lint_ms},
		speedup: ($baseline | to_entries
			| map(select($cur[.key] != null)
				| {key: .key, value: {
					ns: (.value.ns_per_op / $cur[.key].ns_per_op),
					# 0 allocs/op divides as 1 so the ratio stays finite;
					# read it as "at least this many times fewer".
					allocs: (.value.allocs_per_op / ([$cur[.key].allocs_per_op, 1] | max))
				}})
			| from_entries),
		# The blocked multi-RHS engine on the cold 40x40 surface sweep,
		# against the per-point reference path on the same fresh systems.
		# Both legs share the per-slice factorization cache and the batch
		# replicates per-point CG bit-for-bit, so the ratio is pure
		# kernel-level amortization of the pattern walk.
		batched_surface: {
			perpoint: $cur["BenchmarkSurfaceGridBatched/perpoint"],
			batched:  $cur["BenchmarkSurfaceGridBatched/batched"],
			batched_vs_perpoint: ($cur["BenchmarkSurfaceGridBatched/perpoint"].ns_per_op
				/ $cur["BenchmarkSurfaceGridBatched/batched"].ns_per_op)
		},
		# Adjoint gradients vs finite differences on the zoned k=8 SQP run
		# (9 decision variables): same feasible answer, one adjoint pair
		# per iterate instead of 2(1+k) probes per derivative. The
		# acceptance bar is func_evals_ratio >= 5.
		grad_vs_fd: {
			fd:   $cur["BenchmarkGradVsFD/fd"],
			grad: $cur["BenchmarkGradVsFD/grad"],
			func_evals_ratio: ($cur["BenchmarkGradVsFD/fd"].func_evals
				/ $cur["BenchmarkGradVsFD/grad"].func_evals)
		}
	}' >"$OUT"

echo "== wrote $OUT"
jq '.speedup' "$OUT"
jq '{grad_vs_fd_func_evals_ratio: .grad_vs_fd.func_evals_ratio}' "$OUT"

# The backend comparison: the ROM fast path against the full backend's
# cold solve (both use the distinct-point pattern, so neither the model
# memo nor the evaluation cache answers) and against the repeated-point
# hot path. rom_vs_cold_full is the number the ISSUE 5 acceptance bar
# reads: the ROM must evaluate at least 10× faster than a cold full
# solve while staying inside its advertised temperature-error bound
# (asserted by the fidelity tests in internal/thermal and the gate in
# scripts/check.sh).
jq -n \
	--arg benchtime "$BENCHTIME" \
	--slurpfile current "$current" \
	'
	$current[0] as $cur |
	{
		benchtime: $benchtime,
		full: {
			repeated: $cur.BenchmarkEvaluate,
			cold:     $cur.BenchmarkEvaluateCold
		},
		rom: $cur.BenchmarkROMEvaluate,
		speedup: {
			rom_vs_cold_full:     ($cur.BenchmarkEvaluateCold.ns_per_op / $cur.BenchmarkROMEvaluate.ns_per_op),
			# BenchmarkEvaluate repeats one operating point, so after the
			# first iteration it measures the model memo (~us), not a solve.
			# The honest direction is therefore how much faster the memo-hit
			# path is than a ROM solve — not a ROM "speedup" over full.
			repeated_full_vs_rom: ($cur.BenchmarkROMEvaluate.ns_per_op / $cur.BenchmarkEvaluate.ns_per_op)
		},
		# The coolant-seam comparison: the optimized cooling power 𝒫 of
		# the full OFTEC run on the same floorplan under the air actuator
		# versus the liquid cold-plate loop (BenchmarkCoolantPower legs).
		# power_ratio < 1 means liquid deploys cheaper at the optimum.
		coolant_liquid_vs_air: {
			air:    $cur["BenchmarkCoolantPower/air"],
			liquid: $cur["BenchmarkCoolantPower/liquid"],
			power_ratio: ($cur["BenchmarkCoolantPower/liquid"].watts
				/ $cur["BenchmarkCoolantPower/air"].watts)
		}
	}' >"$BACKEND_OUT"

echo "== wrote $BACKEND_OUT"
jq '.speedup' "$BACKEND_OUT"
jq '{coolant_liquid_vs_air_power_ratio: .coolant_liquid_vs_air.power_ratio}' "$BACKEND_OUT"

# The serving benchmark: oftecload self-hosts an oftecd and replays a
# deterministic mixed workload (scalar/zoned evaluates, optimizes,
# sweeps, Pareto fronts across three chips), writing latency percentiles
# and cache-coalescing rates. oftecload itself exits nonzero on any
# request error or if no cross-request coalescing was observed, so this
# doubles as the serving acceptance gate.
echo "== oftecload (serving benchmark, ${SERVE_N:-1000} requests × ${SERVE_C:-32} workers)"
go run ./cmd/oftecload -n "${SERVE_N:-1000}" -c "${SERVE_C:-32}" -out "$SERVE_OUT"

echo "== wrote $SERVE_OUT"

# Fold the ROM cold-start numbers into the serve report's pool section:
# "collected" is what a fresh replica pays to build a ROM-backed chip
# (snapshot + calibration sweeps), "persisted" what the same build costs
# when -rom-cache-dir serves the basis from disk.
merged="$(mktemp)"
jq --slurpfile current "$current" '
	.pool.rom_cold_start = {
		collected: $current[0]["BenchmarkROMColdStart/collected"],
		persisted: $current[0]["BenchmarkROMColdStart/persisted"],
		persisted_vs_collected: ($current[0]["BenchmarkROMColdStart/collected"].ns_per_op
			/ $current[0]["BenchmarkROMColdStart/persisted"].ns_per_op)
	}' "$SERVE_OUT" >"$merged" && mv "$merged" "$SERVE_OUT"

jq '{p50_ms, p90_ms, p99_ms, throughput_rps, errors, coalesce_rate: .cache.coalesce_rate, rom_cold_start: .pool.rom_cold_start.persisted_vs_collected}' "$SERVE_OUT"
