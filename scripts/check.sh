#!/bin/sh
# check.sh — the full verification gate for this repository:
#
#   build → go vet → oftecvet (project static analysis) → concurrency
#   tests with -race → full tests with -race → parallel-sweep bench smoke
#
# Run from anywhere inside the module; exits nonzero on the first failure.
set -eu

cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

# Project static analysis, gated against the committed baseline. The
# baseline exists so a finding introduced by an upstream change can be
# parked deliberately mid-stack, but it must be empty at merge: the gate
# refuses to pass while entries are still present.
echo "== lint baseline must be empty"
if [ "$(jq 'length' lint_baseline.json)" != "0" ]; then
	echo "check.sh: lint_baseline.json has parked findings; fix them and empty the baseline" >&2
	jq . lint_baseline.json >&2
	exit 1
fi

echo "== go run ./cmd/oftecvet -baseline lint_baseline.json ./..."
vet_start=$(date +%s)
go run ./cmd/oftecvet -baseline lint_baseline.json ./...
vet_wall=$(( $(date +%s) - vet_start ))

# Self runtime budget: the suite runs on every gate, so it has to stay
# cheap. The budget is ~10× the current cost (compile of cmd/oftecvet
# plus a few seconds of analysis); tripping it means an analyzer
# regressed algorithmically or the module outgrew the parallel loader.
if [ "$vet_wall" -gt 60 ]; then
	echo "check.sh: oftecvet took ${vet_wall}s, over the 60s self-runtime budget" >&2
	exit 1
fi
echo "   oftecvet wall time: ${vet_wall}s (budget 60s)"

# The concurrency surface first and by name, so a race in the evaluation
# cache or the fan-out engine fails fast and unambiguously even if the
# test names around it change.
echo "== go test -race (evaluation-cache + fan-out concurrency)"
go test -race -run 'Concurrent|Singleflight|Eviction|Stress|ParallelMatchesSerial|ForEach' \
	./internal/core/... ./internal/experiments/... ./internal/solver/... ./internal/parallel/...

# The solver robustness contract by name: Report conformance across all
# methods, cancellation within one iteration, fault-injected fallback
# degradation, and trace-hook safety — all under -race so the Workers>1
# trace/cancel paths are exercised with the detector on.
echo "== go test -race (solver conformance + fallback fault injection)"
go test -race -run 'Conformance|Fallback|Cancel|Trace|Stop|FaultWrapper|EvalAccounting|Gradient' \
	./internal/solver/... ./internal/core/...

# The backend-conformance gate by name: the k=1 zoned/scalar agreement
# contract through the backend layer, the registry and ROM fall-through
# behavior, ROM fidelity against the advertised bound, the backendleak
# seam analyzer, and mixed scalar/zoned traffic on one shared evalcache —
# the set that keeps every backend interchangeable.
echo "== go test -race (backend conformance)"
go test -race \
	-run 'SingleZoneMatchesScalarRun|Registry|FullScalarMatchesModel|ROM|MixedTraffic|BackendLeak|Binding|Quantized|Oversized|Waiter' \
	./internal/core/... ./internal/backend/... ./internal/evalcache/... ./internal/thermal/... ./internal/lint/...

echo "== go test -race ./..."
go test -race ./...

# One cold iteration of the 40×40 surface sweep in both serial and
# parallel form, so the fan-out path is exercised end-to-end on every gate.
echo "== go test -bench=SurfaceGrid -benchtime=1x"
go test -run '^$' -bench 'SurfaceGrid' -benchtime 1x .

# One iteration of each hot-path benchmark (repeated-point, cold, and
# assembly), so the symbolic-reuse path stays exercised on every gate;
# scripts/bench.sh runs the same set at full benchtime for the recorded
# numbers in BENCH_evaluate.json.
echo "== go test -bench (hot-path smoke, benchtime=1x)"
go test -run '^$' \
	-bench '^(BenchmarkEvaluate|BenchmarkEvaluateExact|BenchmarkEvaluateCold|BenchmarkEvaluateExactCold|BenchmarkROMEvaluate)$' \
	-benchtime 1x .
go test -run '^$' -bench '^BenchmarkAssemble$' -benchtime 1x ./internal/thermal

echo "== check.sh: all gates passed"
