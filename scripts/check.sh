#!/bin/sh
# check.sh — the full verification gate for this repository:
#
#   build → go vet → oftecvet (project static analysis) → tests with -race
#
# Run from anywhere inside the module; exits nonzero on the first failure.
set -eu

cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go run ./cmd/oftecvet ./..."
go run ./cmd/oftecvet ./...

echo "== go test -race ./..."
go test -race ./...

echo "== check.sh: all gates passed"
