#!/bin/sh
# check.sh — the full verification gate for this repository:
#
#   build → go vet → oftecvet (project static analysis) → concurrency
#   tests with -race → batched-equivalence tests with -race → full tests
#   with -race → oftecd smoke (live daemon, every endpoint, clean SIGTERM
#   shutdown) → parallel-sweep bench smoke
#
# Run from anywhere inside the module; exits nonzero on the first failure.
set -eu

cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

# Project static analysis, gated against the committed baseline. The
# baseline exists so a finding introduced by an upstream change can be
# parked deliberately mid-stack, but it must be empty at merge: the gate
# refuses to pass while entries are still present.
echo "== lint baseline must be empty"
if [ "$(jq 'length' lint_baseline.json)" != "0" ]; then
	echo "check.sh: lint_baseline.json has parked findings; fix them and empty the baseline" >&2
	jq . lint_baseline.json >&2
	exit 1
fi

echo "== go run ./cmd/oftecvet -baseline lint_baseline.json ./..."
vet_start=$(date +%s)
go run ./cmd/oftecvet -baseline lint_baseline.json ./...
vet_wall=$(( $(date +%s) - vet_start ))

# Self runtime budget: the suite runs on every gate, so it has to stay
# cheap. The budget is ~10× the current cost (compile of cmd/oftecvet
# plus a few seconds of analysis); tripping it means an analyzer
# regressed algorithmically or the module outgrew the parallel loader.
if [ "$vet_wall" -gt 60 ]; then
	echo "check.sh: oftecvet took ${vet_wall}s, over the 60s self-runtime budget" >&2
	exit 1
fi
echo "   oftecvet wall time: ${vet_wall}s (budget 60s)"

# The concurrency surface first and by name, so a race in the evaluation
# cache or the fan-out engine fails fast and unambiguously even if the
# test names around it change.
echo "== go test -race (evaluation-cache + fan-out concurrency)"
go test -race -run 'Concurrent|Singleflight|Eviction|Stress|ParallelMatchesSerial|ForEach' \
	./internal/core/... ./internal/experiments/... ./internal/solver/... ./internal/parallel/... \
	./internal/serve/...

# The solver robustness contract by name: Report conformance across all
# methods, cancellation within one iteration, fault-injected fallback
# degradation, and trace-hook safety — all under -race so the Workers>1
# trace/cancel paths are exercised with the detector on.
echo "== go test -race (solver conformance + fallback fault injection)"
go test -race -run 'Conformance|Fallback|Cancel|Trace|Stop|FaultWrapper|EvalAccounting|Gradient' \
	./internal/solver/... ./internal/core/...

# The adjoint-gradient gate by name: transpose solves reusing the cached
# factorization, the adjoint-vs-central-difference agreement suite
# (scalar and zoned), the smoothed-max bracket, the backend capability
# chain, and the core gradient-mode runs — the contract that keeps
# Options.Gradient's derivatives exact.
echo "== go test -race (adjoint gradients vs finite differences)"
go test -race -run 'Adjoint|SmoothMax|Gradient|SolveTranspose|MulVecT' \
	./internal/sparse/... ./internal/thermal/... ./internal/backend/... ./internal/core/...

# The backend-conformance gate by name: the k=1 zoned/scalar agreement
# contract through the backend layer, the registry and ROM fall-through
# behavior, ROM fidelity against the advertised bound, the backendleak
# seam analyzer, and mixed scalar/zoned traffic on one shared evalcache —
# the set that keeps every backend interchangeable.
echo "== go test -race (backend conformance)"
go test -race \
	-run 'SingleZoneMatchesScalarRun|Registry|FullScalarMatchesModel|ROM|MixedTraffic|BackendLeak|Binding|Quantized|Oversized|Waiter' \
	./internal/core/... ./internal/backend/... ./internal/evalcache/... ./internal/thermal/... ./internal/lint/...

# The batched-equivalence gate by name: blocked multi-RHS CG against the
# scalar solver bitwise, EvaluateBatch against per-point DeepEqual
# (scalar, zoned, mid-batch cancellation, dynamic-power flush spans),
# the backend BatchEvaluator conformance contract, ROM basis persistence
# round-trips, and the /statz counters — the set that keeps the batch
# path interchangeable with the per-point path.
echo "== go test -race (batched equivalence + basis persistence)"
go test -race -run 'Batch|ROMPersist|Statz|DisableBatch|ROMCacheDir' \
	./internal/sparse/... ./internal/thermal/... ./internal/backend/... \
	./internal/core/... ./internal/serve/...

# The coolant-conformance gate by name: the actuator contract (air
# bit-identical to the fan package, knee continuity/monotonicity,
# exact-zero saturated-branch derivative), every Table-2 mode DeepEqual
# through the seam, liquid adjoint gradients vs central differences,
# ROM-basis invalidation on actuator change, the liquid/package backend
# registrations and the served coolant field, and the fanleak seam
# analyzer — the set that keeps every actuator interchangeable.
echo "== go test -race (coolant-actuator conformance)"
go test -race \
	-run 'Coolant|Liquid|AirSpec|AirBitIdentical|ActuatorChange|Knee|Saturated|TableTwoModes|ColdPlate|Facility|Package|SpecResolve|SpecJSON|FanLeak' \
	./internal/coolant/... ./internal/thermal/... ./internal/core/... \
	./internal/backend/... ./internal/serve/... ./internal/lint/...

echo "== go test -race ./..."
go test -race ./...

# The oftecd smoke gate: a real daemon on an ephemeral port, one request
# against every endpoint (including a streamed optimize), then SIGTERM —
# the process must drain and exit zero. This is the only place the
# signal/listener plumbing in cmd/oftecd runs before a deploy would.
echo "== oftecd smoke (live daemon, every endpoint, SIGTERM)"
smokedir=$(mktemp -d)
trap 'kill "$smokepid" 2>/dev/null; rm -rf "$smokedir"' EXIT
go build -o "$smokedir/oftecd" ./cmd/oftecd
"$smokedir/oftecd" -addr 127.0.0.1:0 >"$smokedir/log" 2>&1 &
smokepid=$!
i=0
until grep -q 'listening on' "$smokedir/log"; do
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "check.sh: oftecd never started listening" >&2
		cat "$smokedir/log" >&2
		exit 1
	fi
	sleep 0.1
done
smokeaddr=$(sed -n 's/^oftecd: listening on //p' "$smokedir/log")
curl -sf "http://$smokeaddr/healthz" >/dev/null
curl -sf -X POST "http://$smokeaddr/v1/evaluate" \
	-d '{"omega_rpm":3000,"itec_a":1}' | jq -e '.runaway == false' >/dev/null
curl -sf -X POST "http://$smokeaddr/v1/optimize" \
	-d '{"chip":{"bench":"CRC32"}}' | jq -e '.feasible == true' >/dev/null
curl -sf -X POST "http://$smokeaddr/v1/optimize" \
	-d '{"stream":true}' | tail -n 1 | jq -e '.outcome.feasible == true' >/dev/null
curl -sf -X POST "http://$smokeaddr/v1/sweep" \
	-d '{"n_omega":3,"n_i":3}' | jq -e '.points | length == 9' >/dev/null
curl -sf -X POST "http://$smokeaddr/v1/pareto" \
	-d '{"tmax_c":[90]}' | jq -e '.points[0].feasible == true' >/dev/null
curl -sf "http://$smokeaddr/stats" | jq -e '.cache.misses > 0' >/dev/null
# The sweep above went through the blocked multi-RHS path; /statz must
# show the batch traffic.
curl -sf "http://$smokeaddr/statz" | jq -e '.batch.enabled and .batch.batches > 0' >/dev/null
kill -TERM "$smokepid"
if ! wait "$smokepid"; then
	echo "check.sh: oftecd did not exit cleanly on SIGTERM" >&2
	cat "$smokedir/log" >&2
	exit 1
fi
grep -q 'cache at exit' "$smokedir/log"
trap 'rm -rf "$smokedir"' EXIT
echo "   oftecd smoke: all endpoints answered, clean SIGTERM exit"

# Regenerate the paper-table dump from scratch. The file is derived
# output (gitignored, not committed — EXPERIMENTS.md quotes from it), so
# the gate proves it stays regenerable from the current tree.
echo "== go run ./cmd/benchtable -exp all > benchtable_output.txt"
go run ./cmd/benchtable -exp all > benchtable_output.txt

# One cold iteration of the 40×40 surface sweep in both serial and
# parallel form, so the fan-out path is exercised end-to-end on every gate.
echo "== go test -bench=SurfaceGrid -benchtime=1x"
go test -run '^$' -bench 'SurfaceGrid' -benchtime 1x .

# One iteration of each hot-path benchmark (repeated-point, cold, and
# assembly), so the symbolic-reuse path stays exercised on every gate;
# scripts/bench.sh runs the same set at full benchtime for the recorded
# numbers in BENCH_evaluate.json.
echo "== go test -bench (hot-path smoke, benchtime=1x)"
go test -run '^$' \
	-bench '^(BenchmarkEvaluate|BenchmarkEvaluateExact|BenchmarkEvaluateCold|BenchmarkEvaluateExactCold|BenchmarkROMEvaluate)$' \
	-benchtime 1x .
go test -run '^$' -bench '^BenchmarkAssemble$' -benchtime 1x ./internal/thermal

echo "== check.sh: all gates passed"
