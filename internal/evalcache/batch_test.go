package evalcache

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"oftec/internal/backend"
	"oftec/internal/thermal"
)

// fakeBatchEval is fakeEval with the BatchEvaluator capability, counting
// how many blocks reach the backend.
type fakeBatchEval struct {
	fakeEval
	batches     atomic.Int64
	batchPoints atomic.Int64
}

func (f *fakeBatchEval) EvaluateBatch(_ context.Context, ops []backend.OpPoint, _ []float64) ([]*thermal.Result, error) {
	f.batches.Add(1)
	f.batchPoints.Add(int64(len(ops)))
	out := make([]*thermal.Result, len(ops))
	for i, op := range ops {
		t := op.Omega
		for _, c := range op.Currents {
			t = 10*t + c
		}
		out[i] = &thermal.Result{Omega: op.Omega, MaxChipTemp: t}
	}
	return out, nil
}

type failEval struct{ err error }

func (f *failEval) Name() string           { return "fail" }
func (f *failEval) Config() thermal.Config { return thermal.Config{} }
func (f *failEval) Evaluate(context.Context, backend.OpPoint, []float64) (*thermal.Result, error) {
	return nil, f.err
}

// TestBatchClassification pins the one-lock triage: hits fill from the
// cache, in-batch duplicates dedupe onto the first occurrence without a
// solve, unique misses solve once, and the counters account every point.
func TestBatchClassification(t *testing.T) {
	fake := &fakeEval{}
	c := New(0)
	b := c.Bind(fake)
	ctx := context.Background()

	pre, err := b.Evaluate(ctx, backend.Scalar(100, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	base := c.Stats()

	ops := []backend.OpPoint{
		backend.Scalar(100, 1),   // hit
		backend.Scalar(200, 0.5), // miss
		backend.Scalar(200, 0.5), // in-batch duplicate of the miss
		backend.Scalar(300, 0),   // miss
	}
	res, err := b.EvaluateBatch(ctx, ops, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != pre {
		t.Error("hit did not return the cached pointer")
	}
	if res[1] == nil || res[2] != res[1] {
		t.Error("in-batch duplicate did not alias the first occurrence's result")
	}
	if fake.solves.Load() != 3 { // pre-populate + 2 unique misses
		t.Errorf("backend solves = %d, want 3", fake.solves.Load())
	}

	s := c.Stats()
	if s.Batches-base.Batches != 1 || s.BatchPoints-base.BatchPoints != 4 {
		t.Errorf("batch counters: %+v (base %+v)", s, base)
	}
	if s.Hits-base.Hits != 1 || s.Waits-base.Waits != 1 || s.Misses-base.Misses != 2 {
		t.Errorf("classification counters: %+v (base %+v)", s, base)
	}

	// The batch populated the cache: replaying per-point is all hits with
	// identical pointers.
	for i, op := range ops {
		solo, err := b.Evaluate(ctx, op, nil)
		if err != nil {
			t.Fatal(err)
		}
		if solo != res[i] {
			t.Errorf("point %d: per-point replay returned a different pointer", i)
		}
	}
}

// TestBatchRoutesThroughBatchEvaluator pins the capability probe: a
// backend with EvaluateBatch gets the whole miss block in one call and no
// per-point traffic.
func TestBatchRoutesThroughBatchEvaluator(t *testing.T) {
	fake := &fakeBatchEval{}
	c := New(0)
	b := c.Bind(fake)

	ops := []backend.OpPoint{
		backend.Scalar(100, 0),
		backend.Scalar(100, 1),
		backend.Scalar(100, 1), // duplicate: must not reach the backend
		backend.Scalar(250, 2),
	}
	res, err := b.EvaluateBatch(context.Background(), ops, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r == nil {
			t.Fatalf("point %d nil", i)
		}
	}
	if n := fake.batches.Load(); n != 1 {
		t.Errorf("backend saw %d batches, want 1", n)
	}
	if n := fake.batchPoints.Load(); n != 3 {
		t.Errorf("backend saw %d batch points, want 3 unique misses", n)
	}
	if n := fake.solves.Load(); n != 0 {
		t.Errorf("backend saw %d per-point solves, want 0", n)
	}
}

// TestBatchJoinsInflight: a point already being solved by another caller
// is joined, not re-solved, and the batch returns the leader's pointer.
func TestBatchJoinsInflight(t *testing.T) {
	fake := &fakeEval{block: make(chan struct{})}
	c := New(0)
	b := c.Bind(fake)

	leaderDone := make(chan *thermal.Result)
	go func() {
		r, err := b.Evaluate(context.Background(), backend.Scalar(250, 1.5), nil)
		if err != nil {
			t.Error(err)
		}
		leaderDone <- r
	}()
	// Give the leader time to register its in-flight slot.
	time.Sleep(5 * time.Millisecond)

	batchDone := make(chan []*thermal.Result)
	go func() {
		res, err := b.EvaluateBatch(context.Background(), []backend.OpPoint{
			backend.Scalar(250, 1.5), // joins the leader
			backend.Scalar(400, 0),   // its own miss — blocks on fake too
		}, nil)
		if err != nil {
			t.Error(err)
		}
		batchDone <- res
	}()
	time.Sleep(5 * time.Millisecond)
	close(fake.block)

	leader := <-leaderDone
	res := <-batchDone
	if res[0] != leader {
		t.Error("batch did not join the in-flight solve (pointer differs)")
	}
	if n := fake.solves.Load(); n != 2 {
		t.Errorf("solves = %d, want 2 (leader + the batch's own miss)", n)
	}
	if s := c.Stats(); s.Waits != 1 {
		t.Errorf("Waits = %d, want 1", s.Waits)
	}
}

// TestBatchWaitHonorsCancellation: a batch parked on another caller's
// never-finishing solve returns when its context is cancelled.
func TestBatchWaitHonorsCancellation(t *testing.T) {
	fake := &fakeEval{block: make(chan struct{})}
	c := New(0)
	b := c.Bind(fake)

	go func() {
		_, _ = b.Evaluate(context.Background(), backend.Scalar(250, 1.5), nil)
	}()
	time.Sleep(5 * time.Millisecond)

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error)
	go func() {
		_, err := b.EvaluateBatch(ctx, []backend.OpPoint{backend.Scalar(250, 1.5)}, nil)
		errCh <- err
	}()
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled batch wait never returned")
	}
	close(fake.block) // release the leader
}

// TestBatchErrorReleasesInflight: a failing solve fails the whole batch
// but leaves the cache healthy — no stuck in-flight entries, nothing
// cached, and a later success proceeds normally.
func TestBatchErrorReleasesInflight(t *testing.T) {
	boom := errors.New("boom")
	bad := &failEval{err: boom}
	c := New(0)
	b := c.Bind(bad)

	ops := []backend.OpPoint{backend.Scalar(100, 0), backend.Scalar(200, 1)}
	if _, err := b.EvaluateBatch(context.Background(), ops, nil); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the backend error", err)
	}
	if c.Len() != 0 {
		t.Errorf("failed solves were cached: Len = %d", c.Len())
	}

	// The same keys re-solve freely on a healthy binding of the same cache:
	// nothing is wedged on a leftover rendezvous.
	good := c.Bind(&fakeEval{})
	done := make(chan struct{})
	go func() {
		if _, err := good.EvaluateBatch(context.Background(), ops, nil); err != nil {
			t.Error(err)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("batch after a failed batch never completed (stuck inflight)")
	}
}

// TestBatchEmptyAndInvalid: an empty batch is a no-op; an invalid shape
// passes through to the backend's error, failing the batch.
func TestBatchEmptyAndInvalid(t *testing.T) {
	c := New(0)
	b := c.Bind(&failEval{err: errors.New("invalid point")})
	res, err := b.EvaluateBatch(context.Background(), nil, nil)
	if err != nil || len(res) != 0 {
		t.Errorf("empty batch: res=%v err=%v", res, err)
	}
	if _, err := b.EvaluateBatch(context.Background(), []backend.OpPoint{{Omega: 100}}, nil); err == nil {
		t.Error("zero-current point did not surface the backend error")
	}
}
