// Package evalcache is the shared steady-state evaluation cache that sits
// in front of any backend.Evaluator. It was extracted from the optimizer's
// System so the scalar and zoned optimization paths (and anything else
// that hammers a backend with near-duplicate operating points) share one
// bounded cache with one set of traffic statistics.
//
// Two properties carry over from the original in-System cache and are
// load-bearing for the optimizer:
//
//   - Singleflight: concurrent misses on the same quantized key coalesce
//     onto a single in-flight solve; every waiter gets the leader's result.
//   - Two-generation eviction: inserts go to the current generation; when
//     it fills, the previous generation is discarded and the current one
//     becomes the previous — still readable, with hits promoted back into
//     the current generation. An eviction therefore drops at most the
//     stale half of the working set, never a hot incumbent
//     mid-optimization.
//
// A Cache is shared between evaluators through Bindings: Bind assigns the
// evaluator a private key space inside the common map, so a scalar and a
// zoned binding (or two different backends) never alias each other's
// entries while still sharing capacity, eviction pressure, and stats.
package evalcache

import (
	"context"
	"fmt"
	"math"
	"sync"

	"oftec/internal/backend"
	"oftec/internal/thermal"
)

// DefaultCapacity is the per-generation entry bound; two generations give
// a ~16k-point footprint.
const DefaultCapacity = 1 << 13

// maxInlineK is the largest zone count whose currents are inlined into
// the comparable cache key verbatim. Wider points (the high-density TEC
// regime) are keyed by a 64-bit hash of the full quantized current vector
// instead, collision-checked against the stored vector on every hit, so
// dedupe and singleflight coalescing survive arbitrary zone counts.
const maxInlineK = 8

// Stats counts cache traffic; totals are cumulative for the Cache's
// lifetime, across all bindings.
type Stats struct {
	// Hits were served from a completed cached solve.
	Hits int64
	// Waits were coalesced onto another caller's in-flight solve — each
	// one is a backend solve that an unshared cache would have duplicated.
	Waits int64
	// Misses are underlying backend solves started (one per unique key).
	Misses int64
	// Rotations counts generation rotations (bounded evictions).
	Rotations int64
	// Collisions counts wide-key (k > 8) hash collisions: two distinct
	// current vectors mapping to one key. The colliding caller solves
	// uncached (correctness is never at stake); any nonzero value with
	// real traffic deserves investigation.
	Collisions int64
	// Batches counts EvaluateBatch calls; BatchPoints the operating points
	// submitted through them. Each point still lands in Hits, Waits, or
	// Misses above, so BatchPoints measures how much traffic takes the
	// blocked path rather than adding to the per-point totals.
	Batches     int64
	BatchPoints int64
}

// key identifies one quantized operating point inside one binding's key
// space. Up to maxInlineK currents are inlined into a fixed array so the
// key stays comparable; k disambiguates a scalar point from a zoned point
// whose trailing zones happen to be zero. Wider points additionally carry
// a hash of the full quantized vector (the inline array then holds the
// leading currents), and every lookup on such a key re-verifies the full
// vector against the stored entry — a collision is detected, never
// silently served.
type key struct {
	space uint64
	k     int
	omega float64
	cur   [maxInlineK]float64
	hash  uint64
}

// entry is one completed cached solve. wide holds the full quantized
// current vector for hash-keyed (k > maxInlineK) points, nil for inline
// keys; lookups use it as the collision check.
type entry struct {
	res  *thermal.Result
	wide []float64
}

// inflight is the rendezvous for callers coalesced onto one solve: the
// leader closes done after filling res/err. wide mirrors entry.wide so
// coalescing on hashed keys is collision-checked too.
type inflight struct {
	done chan struct{}
	res  *thermal.Result
	err  error
	wide []float64
}

// hashCurrents is the wide-key hash: FNV-1a over the bit patterns of the
// quantized currents. A package variable so collision tests can force two
// vectors onto one digest.
var hashCurrents = fnvCurrents

func fnvCurrents(qs []float64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, q := range qs {
		bits := math.Float64bits(q)
		for shift := 0; shift < 64; shift += 8 {
			h ^= (bits >> shift) & 0xff
			h *= prime64
		}
	}
	return h
}

// Cache is a bounded, concurrency-safe evaluation cache shared by any
// number of Bindings. The zero value is not usable; call New.
type Cache struct {
	mu        sync.Mutex
	cur, old  map[key]entry
	infl      map[key]*inflight
	capacity  int
	stats     Stats
	nextSpace uint64

	// hook, when non-nil, runs immediately before each underlying
	// backend Evaluate — i.e. exactly once per deduplicated miss.
	// Guarded by mu (read at the top of Evaluate's miss path), so
	// installation is safe at any time, including mid-traffic.
	hook func(op backend.OpPoint)
}

// New builds a cache whose generations hold up to capacity entries each;
// capacity ≤ 0 selects DefaultCapacity.
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Cache{
		cur:      make(map[key]entry),
		infl:     make(map[key]*inflight),
		capacity: capacity,
	}
}

// SetSolveHook installs a function invoked once per deduplicated miss,
// outside the cache lock, immediately before the underlying solve —
// instrumentation for tests and service metrics. Safe to call at any
// time, including concurrently with Evaluate: installation synchronizes
// on the cache lock, and misses already in their solve keep the hook (or
// nil) they observed at dispatch.
func (c *Cache) SetSolveHook(hook func(op backend.OpPoint)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hook = hook
}

// Stats returns a snapshot of the traffic counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Len returns the number of cached results across both generations.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.cur) + len(c.old)
}

// Capacity returns the per-generation entry bound (total footprint is at
// most twice this).
func (c *Cache) Capacity() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.capacity
}

// Binding is one evaluator's view of a shared Cache. Bindings satisfy
// backend.Evaluator (and backend.Fallthrough, so Authoritative and
// ModelOf resolve through the cache to the real backend).
type Binding struct {
	c     *Cache
	ev    backend.Evaluator
	space uint64
}

// Bind gives ev a private key space in the cache and returns the caching
// evaluator wrapping it.
func (c *Cache) Bind(ev backend.Evaluator) *Binding {
	c.mu.Lock()
	c.nextSpace++
	space := c.nextSpace
	c.mu.Unlock()
	return &Binding{c: c, ev: ev, space: space}
}

// Name identifies the wrapped backend.
func (b *Binding) Name() string { return b.ev.Name() }

// Config returns the wrapped backend's configuration.
func (b *Binding) Config() thermal.Config { return b.ev.Config() }

// Fallthrough exposes the wrapped backend so fall-through chain walks see
// through the cache.
func (b *Binding) Fallthrough() backend.Evaluator { return b.ev }

// Evaluate returns the (cached) steady state at op. Concurrent callers
// requesting the same quantized point share one solve; the optional warm
// temperature-field hint only steers a genuine miss — hits and coalesced
// waits return the already-solved result and ignore it. Waiters honor ctx
// cancellation (the leader's solve continues for the others); a nil ctx
// waits unconditionally.
//
//oftec:hotpath
func (b *Binding) Evaluate(ctx context.Context, op backend.OpPoint, warm []float64) (*thermal.Result, error) {
	k := op.K()
	if k == 0 {
		// Invalid shape; pass through so the backend reports it.
		return b.ev.Evaluate(ctx, op, warm)
	}
	ck := key{space: b.space, k: k, omega: quantize(op.Omega)}
	var wide []float64
	if k <= maxInlineK {
		for i, v := range op.Currents {
			ck.cur[i] = quantize(v)
		}
	} else {
		wide = b.wideKey(&ck, op.Currents)
	}

	c := b.c
	c.mu.Lock()
	if e, ok := c.lookupLocked(ck); ok {
		if !currentsEqual(e.wide, wide) {
			// Hash collision: a different vector owns this key. Solve
			// uncached — never serve or overwrite the incumbent.
			c.stats.Collisions++
			c.mu.Unlock()
			return b.ev.Evaluate(ctx, op, warm)
		}
		c.stats.Hits++
		c.mu.Unlock()
		return e.res, nil
	}
	if fl, ok := c.infl[ck]; ok {
		if !currentsEqual(fl.wide, wide) {
			c.stats.Collisions++
			c.mu.Unlock()
			return b.ev.Evaluate(ctx, op, warm)
		}
		c.stats.Waits++
		c.mu.Unlock()
		return waitInflight(ctx, fl)
	}
	//lint:ignore hotalloc one rendezvous per deduplicated miss; the hit path allocates nothing
	fl := &inflight{done: make(chan struct{}), wide: wide}
	c.infl[ck] = fl
	c.stats.Misses++
	hook := c.hook
	c.mu.Unlock()

	if hook != nil {
		hook(op)
	}
	fl.res, fl.err = b.ev.Evaluate(ctx, op, warm)

	c.mu.Lock()
	delete(c.infl, ck)
	if fl.err == nil {
		c.storeLocked(ck, entry{res: fl.res, wide: wide})
	}
	c.mu.Unlock()
	close(fl.done)
	return fl.res, fl.err
}

// wideKey fills ck for a k > maxInlineK point: leading currents inlined,
// the full quantized vector hashed into ck.hash. It returns the quantized
// vector, which lookups use as the collision check.
//
//oftec:allocok one key vector per wide-point evaluation; wide points always pay a map probe anyway
func (b *Binding) wideKey(ck *key, currents []float64) []float64 {
	wide := make([]float64, len(currents))
	for i, v := range currents {
		wide[i] = quantize(v)
	}
	copy(ck.cur[:], wide)
	ck.hash = hashCurrents(wide)
	return wide
}

// currentsEqual compares two quantized wide vectors; two nils (inline
// keys) are equal.
//
//oftec:hotpath
func currentsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		//lint:ignore floatcmp key identity is exact by construction — both sides are quantized, and a tolerance would alias neighboring keys
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// waitInflight parks a coalesced caller on the leader's rendezvous,
// honoring ctx cancellation (a nil ctx waits unconditionally).
//
//oftec:allocok coalesced-wait path blocks on a channel anyway; the cancellation error is off the hot path
func waitInflight(ctx context.Context, fl *inflight) (*thermal.Result, error) {
	if ctx == nil {
		<-fl.done
		return fl.res, fl.err
	}
	select {
	case <-fl.done:
		return fl.res, fl.err
	case <-ctx.Done():
		return nil, fmt.Errorf("evalcache: wait for in-flight solve: %w", ctx.Err())
	}
}

// lookupLocked checks both generations, promoting old-generation hits
// into the current one so the hot working set survives the next rotation.
//
//oftec:hotpath
func (c *Cache) lookupLocked(ck key) (entry, bool) {
	if e, ok := c.cur[ck]; ok {
		return e, true
	}
	if e, ok := c.old[ck]; ok {
		delete(c.old, ck)
		c.storeLocked(ck, e)
		return e, true
	}
	return entry{}, false
}

// storeLocked inserts into the current generation, rotating when full:
// the previous generation is kept readable, so an eviction discards at
// most the stale half of the working set.
//
//oftec:hotpath
func (c *Cache) storeLocked(ck key, e entry) {
	if len(c.cur) >= c.capacity {
		c.old = c.cur
		//lint:ignore hotalloc amortized generation rotation, once per capacity inserts
		c.cur = make(map[key]entry, len(c.old))
		c.stats.Rotations++
	}
	c.cur[ck] = e
}

// quantize rounds an operating coordinate so cache keys are insensitive
// to last-bit noise from the line searches.
func quantize(v float64) float64 { return math.Round(v*1e9) / 1e9 }
