package evalcache

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"oftec/internal/backend"
	"oftec/internal/thermal"
	"oftec/internal/workload"
)

// fakeEval is a deterministic backend stub: the "solve" encodes the
// operating point into MaxChipTemp so tests can check result identity
// without building a thermal model.
type fakeEval struct {
	solves atomic.Int64
	block  chan struct{} // when non-nil, Evaluate parks until closed
}

func (f *fakeEval) Name() string           { return "fake" }
func (f *fakeEval) Config() thermal.Config { return thermal.Config{} }

func (f *fakeEval) Evaluate(_ context.Context, op backend.OpPoint, _ []float64) (*thermal.Result, error) {
	f.solves.Add(1)
	if f.block != nil {
		<-f.block
	}
	t := op.Omega
	for _, c := range op.Currents {
		t = 10*t + c
	}
	return &thermal.Result{Omega: op.Omega, MaxChipTemp: t}, nil
}

func TestSingleflightCoalesces(t *testing.T) {
	fake := &fakeEval{block: make(chan struct{})}
	c := New(0)
	b := c.Bind(fake)

	var launched sync.WaitGroup
	var done sync.WaitGroup
	const workers = 16
	results := make([]*thermal.Result, workers)
	launched.Add(1)
	done.Add(workers)
	for i := 0; i < workers; i++ {
		go func(i int) {
			defer done.Done()
			if i == 0 {
				// The leader registers the in-flight solve and parks in the
				// fake; release the waiters only once it is committed.
				launched.Done()
			} else {
				launched.Wait()
				// Give the leader time to take the inflight slot; waiters
				// arriving before it would just become their own leaders,
				// which the solve count below would catch.
				time.Sleep(2 * time.Millisecond)
			}
			r, err := b.Evaluate(context.Background(), backend.Scalar(250, 1.5), nil)
			if err != nil {
				t.Error(err)
			}
			results[i] = r
		}(i)
	}
	launched.Wait()
	time.Sleep(10 * time.Millisecond)
	close(fake.block)
	done.Wait()

	if n := fake.solves.Load(); n != 1 {
		t.Fatalf("coalesced miss ran %d solves, want 1", n)
	}
	for i := 1; i < len(results); i++ {
		if results[i] != results[0] {
			t.Fatalf("worker %d got a different result pointer", i)
		}
	}
	s := c.Stats()
	if s.Misses != 1 || s.Hits+s.Waits != workers-1 {
		t.Errorf("stats = %+v, want 1 miss and %d hits+waits", s, workers-1)
	}
}

// TestIncumbentSurvivesEviction is the regression test for the zoned
// cache's historical wipe-everything eviction: a key re-touched between
// rotations must stay cached across any number of rotations, scalar or
// zoned.
func TestIncumbentSurvivesEviction(t *testing.T) {
	for _, k := range []int{1, 4} {
		fake := &fakeEval{}
		c := New(3)
		b := c.Bind(fake)
		ctx := context.Background()

		hot := backend.OpPoint{Omega: 100, Currents: make([]float64, k)}
		for i := range hot.Currents {
			hot.Currents[i] = 0.5 + 0.1*float64(i)
		}
		first, err := b.Evaluate(ctx, hot, nil)
		if err != nil {
			t.Fatal(err)
		}

		// Churn enough distinct points to rotate several times, touching
		// the incumbent between batches the way an optimizer's line
		// searches keep re-testing the best-so-far point. Each batch stays
		// within capacity so at most one rotation happens between touches —
		// the survival guarantee the two-generation scheme makes.
		for batch := 0; batch < 6; batch++ {
			for i := 0; i < 3; i++ {
				cold := backend.OpPoint{Omega: 200 + float64(8*batch+i), Currents: make([]float64, k)}
				if _, err := b.Evaluate(ctx, cold, nil); err != nil {
					t.Fatal(err)
				}
			}
			again, err := b.Evaluate(ctx, hot, nil)
			if err != nil {
				t.Fatal(err)
			}
			if again != first {
				t.Fatalf("k=%d: incumbent was evicted and re-solved in batch %d", k, batch)
			}
		}

		s := c.Stats()
		if s.Rotations < 3 {
			t.Errorf("k=%d: churn caused only %d rotations, want ≥ 3", k, s.Rotations)
		}
		if c.Len() > 2*c.Capacity() {
			t.Errorf("k=%d: cache holds %d entries, capacity bound is %d", k, c.Len(), 2*c.Capacity())
		}
	}
}

// TestBindingsDoNotAlias pins the key-space isolation: two bindings with
// coincident operating points must not serve each other's results, even
// when a scalar point and a 1-zone point have equal coordinates.
func TestBindingsDoNotAlias(t *testing.T) {
	ctx := context.Background()
	c := New(0)
	a := c.Bind(&fakeEval{})
	b := c.Bind(&fakeEval{})

	op := backend.Scalar(300, 2)
	ra, err := a.Evaluate(ctx, op, nil)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Evaluate(ctx, op, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ra == rb {
		t.Error("two bindings shared one cache entry for the same coordinates")
	}
	if s := c.Stats(); s.Misses != 2 || s.Hits != 0 {
		t.Errorf("stats = %+v, want two independent misses", s)
	}
}

func TestQuantizedHitsAndStats(t *testing.T) {
	fake := &fakeEval{}
	c := New(0)
	b := c.Bind(fake)
	ctx := context.Background()

	r1, _ := b.Evaluate(ctx, backend.Scalar(100, 1), nil)
	// Last-bit noise quantizes onto the same key.
	r2, _ := b.Evaluate(ctx, backend.Scalar(100+1e-12, 1-1e-12), nil)
	if r1 != r2 {
		t.Error("quantization did not coalesce near-identical points")
	}
	b.Evaluate(ctx, backend.Scalar(100, 2), nil)

	want := Stats{Hits: 1, Misses: 2}
	if s := c.Stats(); s != want {
		t.Errorf("stats = %+v, want %+v", s, want)
	}
	if n := fake.solves.Load(); n != 2 {
		t.Errorf("backend solved %d times, want 2", n)
	}
}

func TestOversizedPointsBypass(t *testing.T) {
	fake := &fakeEval{}
	c := New(0)
	b := c.Bind(fake)
	ctx := context.Background()

	op := backend.OpPoint{Omega: 100, Currents: make([]float64, maxInlineK+1)}
	b.Evaluate(ctx, op, nil)
	b.Evaluate(ctx, op, nil)
	if n := fake.solves.Load(); n != 2 {
		t.Errorf("oversized point was cached (%d solves, want 2)", n)
	}
	if s := c.Stats(); s != (Stats{}) {
		t.Errorf("bypass traffic leaked into stats: %+v", s)
	}
}

func TestWaiterHonorsContext(t *testing.T) {
	fake := &fakeEval{block: make(chan struct{})}
	c := New(0)
	b := c.Bind(fake)

	leaderIn := make(chan struct{})
	go func() {
		close(leaderIn)
		b.Evaluate(context.Background(), backend.Scalar(1, 1), nil)
	}()
	<-leaderIn
	time.Sleep(5 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := b.Evaluate(ctx, backend.Scalar(1, 1), nil)
	if err == nil {
		t.Fatal("cancelled waiter returned without error")
	}
	close(fake.block)
}

// TestMixedTrafficSharedCache drives scalar and zoned bindings over one
// real full backend and one shared cache from many goroutines; run under
// -race it is the concurrency gate for the shared-cache refactor.
func TestMixedTrafficSharedCache(t *testing.T) {
	cfg := thermal.DefaultConfig()
	cfg.ChipRes = 8
	cfg.SpreaderRes = 7
	cfg.SinkRes = 6
	cfg.PCBRes = 4
	bench, err := workload.ByName("Basicmath")
	if err != nil {
		t.Fatal(err)
	}
	pm, err := bench.PowerMap(cfg.Floorplan)
	if err != nil {
		t.Fatal(err)
	}
	plant, err := backend.New("full", cfg, pm)
	if err != nil {
		t.Fatal(err)
	}
	full := plant.(backend.Zoner)
	assign := map[string]int{}
	units := cfg.Floorplan.Units()
	for i, u := range units {
		assign[u.Name] = i % 2
	}
	z, err := full.NewZoning(assign, 2)
	if err != nil {
		t.Fatal(err)
	}
	zoned, err := full.WithZoning(z)
	if err != nil {
		t.Fatal(err)
	}

	c := New(16)
	sb := c.Bind(plant)
	zb := c.Bind(zoned)
	ctx := context.Background()

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				var err error
				if (w+i)%2 == 0 {
					omega := 200 + float64(i%5)*25
					_, err = sb.Evaluate(ctx, backend.Scalar(omega, float64(w%3)), nil)
				} else {
					omega := 220 + float64(i%4)*30
					cur := []float64{float64(w % 2), float64(i % 3)}
					_, err = zb.Evaluate(ctx, backend.OpPoint{Omega: omega, Currents: cur}, nil)
				}
				if err != nil {
					select {
					case errs <- err:
					default:
					}
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}

	s := c.Stats()
	if s.Misses == 0 || s.Hits == 0 {
		t.Errorf("mixed traffic produced no cache reuse: %+v", s)
	}
	if s.Rotations == 0 {
		t.Errorf("capacity 16 under %d distinct points never rotated: %+v", 15+12, s)
	}

	// Spot-check cached answers against a fresh uncached backend.
	fresh, err := backend.New("full", cfg, pm)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sb.Evaluate(ctx, backend.Scalar(250, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Evaluate(ctx, backend.Scalar(250, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.MaxChipTemp != want.MaxChipTemp {
		t.Errorf("cached MaxChipTemp %g != fresh %g", got.MaxChipTemp, want.MaxChipTemp)
	}
}
