package evalcache

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"oftec/internal/backend"
	"oftec/internal/thermal"
	"oftec/internal/workload"
)

// fakeEval is a deterministic backend stub: the "solve" encodes the
// operating point into MaxChipTemp so tests can check result identity
// without building a thermal model.
type fakeEval struct {
	solves atomic.Int64
	block  chan struct{} // when non-nil, Evaluate parks until closed
}

func (f *fakeEval) Name() string           { return "fake" }
func (f *fakeEval) Config() thermal.Config { return thermal.Config{} }

func (f *fakeEval) Evaluate(_ context.Context, op backend.OpPoint, _ []float64) (*thermal.Result, error) {
	f.solves.Add(1)
	if f.block != nil {
		<-f.block
	}
	t := op.Omega
	for _, c := range op.Currents {
		t = 10*t + c
	}
	return &thermal.Result{Omega: op.Omega, MaxChipTemp: t}, nil
}

func TestSingleflightCoalesces(t *testing.T) {
	fake := &fakeEval{block: make(chan struct{})}
	c := New(0)
	b := c.Bind(fake)

	var launched sync.WaitGroup
	var done sync.WaitGroup
	const workers = 16
	results := make([]*thermal.Result, workers)
	launched.Add(1)
	done.Add(workers)
	for i := 0; i < workers; i++ {
		go func(i int) {
			defer done.Done()
			if i == 0 {
				// The leader registers the in-flight solve and parks in the
				// fake; release the waiters only once it is committed.
				launched.Done()
			} else {
				launched.Wait()
				// Give the leader time to take the inflight slot; waiters
				// arriving before it would just become their own leaders,
				// which the solve count below would catch.
				time.Sleep(2 * time.Millisecond)
			}
			r, err := b.Evaluate(context.Background(), backend.Scalar(250, 1.5), nil)
			if err != nil {
				t.Error(err)
			}
			results[i] = r
		}(i)
	}
	launched.Wait()
	time.Sleep(10 * time.Millisecond)
	close(fake.block)
	done.Wait()

	if n := fake.solves.Load(); n != 1 {
		t.Fatalf("coalesced miss ran %d solves, want 1", n)
	}
	for i := 1; i < len(results); i++ {
		if results[i] != results[0] {
			t.Fatalf("worker %d got a different result pointer", i)
		}
	}
	s := c.Stats()
	if s.Misses != 1 || s.Hits+s.Waits != workers-1 {
		t.Errorf("stats = %+v, want 1 miss and %d hits+waits", s, workers-1)
	}
}

// TestIncumbentSurvivesEviction is the regression test for the zoned
// cache's historical wipe-everything eviction: a key re-touched between
// rotations must stay cached across any number of rotations, scalar or
// zoned.
func TestIncumbentSurvivesEviction(t *testing.T) {
	for _, k := range []int{1, 4} {
		fake := &fakeEval{}
		c := New(3)
		b := c.Bind(fake)
		ctx := context.Background()

		hot := backend.OpPoint{Omega: 100, Currents: make([]float64, k)}
		for i := range hot.Currents {
			hot.Currents[i] = 0.5 + 0.1*float64(i)
		}
		first, err := b.Evaluate(ctx, hot, nil)
		if err != nil {
			t.Fatal(err)
		}

		// Churn enough distinct points to rotate several times, touching
		// the incumbent between batches the way an optimizer's line
		// searches keep re-testing the best-so-far point. Each batch stays
		// within capacity so at most one rotation happens between touches —
		// the survival guarantee the two-generation scheme makes.
		for batch := 0; batch < 6; batch++ {
			for i := 0; i < 3; i++ {
				cold := backend.OpPoint{Omega: 200 + float64(8*batch+i), Currents: make([]float64, k)}
				if _, err := b.Evaluate(ctx, cold, nil); err != nil {
					t.Fatal(err)
				}
			}
			again, err := b.Evaluate(ctx, hot, nil)
			if err != nil {
				t.Fatal(err)
			}
			if again != first {
				t.Fatalf("k=%d: incumbent was evicted and re-solved in batch %d", k, batch)
			}
		}

		s := c.Stats()
		if s.Rotations < 3 {
			t.Errorf("k=%d: churn caused only %d rotations, want ≥ 3", k, s.Rotations)
		}
		if c.Len() > 2*c.Capacity() {
			t.Errorf("k=%d: cache holds %d entries, capacity bound is %d", k, c.Len(), 2*c.Capacity())
		}
	}
}

// TestBindingsDoNotAlias pins the key-space isolation: two bindings with
// coincident operating points must not serve each other's results, even
// when a scalar point and a 1-zone point have equal coordinates.
func TestBindingsDoNotAlias(t *testing.T) {
	ctx := context.Background()
	c := New(0)
	a := c.Bind(&fakeEval{})
	b := c.Bind(&fakeEval{})

	op := backend.Scalar(300, 2)
	ra, err := a.Evaluate(ctx, op, nil)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Evaluate(ctx, op, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ra == rb {
		t.Error("two bindings shared one cache entry for the same coordinates")
	}
	if s := c.Stats(); s.Misses != 2 || s.Hits != 0 {
		t.Errorf("stats = %+v, want two independent misses", s)
	}
}

func TestQuantizedHitsAndStats(t *testing.T) {
	fake := &fakeEval{}
	c := New(0)
	b := c.Bind(fake)
	ctx := context.Background()

	r1, _ := b.Evaluate(ctx, backend.Scalar(100, 1), nil)
	// Last-bit noise quantizes onto the same key.
	r2, _ := b.Evaluate(ctx, backend.Scalar(100+1e-12, 1-1e-12), nil)
	if r1 != r2 {
		t.Error("quantization did not coalesce near-identical points")
	}
	b.Evaluate(ctx, backend.Scalar(100, 2), nil)

	want := Stats{Hits: 1, Misses: 2}
	if s := c.Stats(); s != want {
		t.Errorf("stats = %+v, want %+v", s, want)
	}
	if n := fake.solves.Load(); n != 2 {
		t.Errorf("backend solved %d times, want 2", n)
	}
}

// TestOversizedPointsCached is the regression test for the historical
// k > maxInlineK cache bypass: wide points used to skip the cache (and
// singleflight) entirely, so every high-zone request burned a full solve.
// They are now keyed by a collision-checked hash and cache like any other
// point.
func TestOversizedPointsCached(t *testing.T) {
	fake := &fakeEval{}
	c := New(0)
	b := c.Bind(fake)
	ctx := context.Background()

	op := backend.OpPoint{Omega: 100, Currents: make([]float64, maxInlineK+1)}
	for i := range op.Currents {
		op.Currents[i] = 0.25 * float64(i)
	}
	r1, err := b.Evaluate(ctx, op, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := b.Evaluate(ctx, op, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n := fake.solves.Load(); n != 1 {
		t.Errorf("wide point was not cached (%d solves, want 1)", n)
	}
	if r1 != r2 {
		t.Error("repeat evaluation returned a different result pointer")
	}
	if s := c.Stats(); s.Misses != 1 || s.Hits != 1 || s.Collisions != 0 {
		t.Errorf("stats = %+v, want 1 miss + 1 hit, no collisions", s)
	}

	// Distinct wide vectors sharing the leading maxInlineK currents must
	// not alias: only the tail differs, which the inline array alone could
	// not distinguish.
	tail := backend.OpPoint{Omega: 100, Currents: append([]float64(nil), op.Currents...)}
	tail.Currents[maxInlineK] += 1
	rt, err := b.Evaluate(ctx, tail, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rt == r1 {
		t.Error("wide points differing only past the inline prefix aliased one entry")
	}
}

// TestConcurrentWideMissesCoalesce asserts the ISSUE 7 acceptance bound:
// M concurrent identical k=16 misses (the high-density-TEC regime) run
// exactly one backend solve.
func TestConcurrentWideMissesCoalesce(t *testing.T) {
	fake := &fakeEval{block: make(chan struct{})}
	c := New(0)
	b := c.Bind(fake)

	op := backend.OpPoint{Omega: 310, Currents: make([]float64, 16)}
	for i := range op.Currents {
		op.Currents[i] = 0.1 * float64(i+1)
	}

	const workers = 12
	var launched, done sync.WaitGroup
	launched.Add(1)
	done.Add(workers)
	results := make([]*thermal.Result, workers)
	for i := 0; i < workers; i++ {
		go func(i int) {
			defer done.Done()
			if i == 0 {
				launched.Done()
			} else {
				launched.Wait()
				time.Sleep(2 * time.Millisecond)
			}
			r, err := b.Evaluate(context.Background(), op, nil)
			if err != nil {
				t.Error(err)
			}
			results[i] = r
		}(i)
	}
	launched.Wait()
	time.Sleep(10 * time.Millisecond)
	close(fake.block)
	done.Wait()

	if n := fake.solves.Load(); n != 1 {
		t.Fatalf("%d concurrent identical k=16 misses ran %d solves, want exactly 1", workers, n)
	}
	for i := 1; i < workers; i++ {
		if results[i] != results[0] {
			t.Fatalf("worker %d got a different result pointer", i)
		}
	}
	if s := c.Stats(); s.Misses != 1 || s.Hits+s.Waits != workers-1 {
		t.Errorf("stats = %+v, want 1 miss and %d hits+waits", s, workers-1)
	}
}

// TestWideHashCollisionDetected forces two distinct k=16 vectors onto one
// digest and checks the collision path: the second vector solves uncached
// (correct answer, no aliasing) and the collision is counted.
func TestWideHashCollisionDetected(t *testing.T) {
	orig := hashCurrents
	hashCurrents = func([]float64) uint64 { return 0xdead }
	defer func() { hashCurrents = orig }()

	fake := &fakeEval{}
	c := New(0)
	b := c.Bind(fake)
	ctx := context.Background()

	// Omega 0 keeps the fake's positional encoding (t = 10t + c) exactly
	// representable at k=16, so the two answers stay distinguishable.
	mk := func(last float64) backend.OpPoint {
		op := backend.OpPoint{Omega: 0, Currents: make([]float64, 16)}
		op.Currents[15] = last
		return op
	}
	ra, err := b.Evaluate(ctx, mk(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Evaluate(ctx, mk(2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if ra == rb {
		t.Fatal("colliding wide keys served one result for two operating points")
	}
	if ra.MaxChipTemp == rb.MaxChipTemp {
		t.Fatal("collision aliased the solved answers")
	}
	// The incumbent entry survives; repeating the colliding point keeps
	// solving uncached, repeating the incumbent hits.
	if _, err := b.Evaluate(ctx, mk(2), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Evaluate(ctx, mk(1), nil); err != nil {
		t.Fatal(err)
	}
	if n := fake.solves.Load(); n != 3 {
		t.Errorf("solves = %d, want 3 (one cached vector, two uncached collisions)", n)
	}
	s := c.Stats()
	if s.Collisions != 2 || s.Misses != 1 || s.Hits != 1 {
		t.Errorf("stats = %+v, want 2 collisions, 1 miss, 1 hit", s)
	}
}

// TestSetSolveHookConcurrentWithEvaluate is the -race gate for hook
// installation mid-traffic (oftecd attaches metrics to a cache that is
// already serving).
func TestSetSolveHookConcurrentWithEvaluate(t *testing.T) {
	fake := &fakeEval{}
	c := New(0)
	b := c.Bind(fake)

	var hooked atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				op := backend.Scalar(float64(100+i%50), float64(w))
				if w == 3 {
					op = backend.OpPoint{Omega: float64(100 + i%50), Currents: make([]float64, 16)}
				}
				if _, err := b.Evaluate(context.Background(), op, nil); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for i := 0; i < 100; i++ {
		c.SetSolveHook(func(backend.OpPoint) { hooked.Add(1) })
		c.SetSolveHook(nil)
		time.Sleep(100 * time.Microsecond)
	}
	c.SetSolveHook(func(backend.OpPoint) { hooked.Add(1) })
	close(stop)
	wg.Wait()
	if c.Stats().Misses == 0 {
		t.Error("stress loop produced no traffic")
	}
}

func TestWaiterHonorsContext(t *testing.T) {
	fake := &fakeEval{block: make(chan struct{})}
	c := New(0)
	b := c.Bind(fake)

	leaderIn := make(chan struct{})
	go func() {
		close(leaderIn)
		b.Evaluate(context.Background(), backend.Scalar(1, 1), nil)
	}()
	<-leaderIn
	time.Sleep(5 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := b.Evaluate(ctx, backend.Scalar(1, 1), nil)
	if err == nil {
		t.Fatal("cancelled waiter returned without error")
	}
	close(fake.block)
}

// TestBindingChurnStress is the oftecd access pattern under -race: new
// bindings appear mid-traffic (a model pool admitting fresh chips) while
// existing bindings hammer one small shared cache with mixed scalar,
// zoned, and wide (k=16) points hard enough to force generation
// rotations throughout.
func TestBindingChurnStress(t *testing.T) {
	fake := &fakeEval{}
	c := New(8) // tiny generations → constant rotation pressure
	seed := c.Bind(fake)

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Binder goroutine: a stream of fresh bindings, each immediately used.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			nb := c.Bind(fake)
			if _, err := nb.Evaluate(context.Background(), backend.Scalar(float64(50+i%20), 1), nil); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// Traffic goroutines on the seed binding: scalar, zoned (k=4), wide
	// (k=16) points drawn from small pools so hits, waits, rotations, and
	// wide-key probes all occur.
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				var op backend.OpPoint
				switch (w + i) % 3 {
				case 0:
					op = backend.Scalar(float64(100+i%6), float64(w%3))
				case 1:
					op = backend.OpPoint{Omega: float64(200 + i%5), Currents: []float64{1, 2, float64(w % 2), 4}}
				default:
					cur := make([]float64, 16)
					cur[15] = float64(i % 4)
					op = backend.OpPoint{Omega: 300, Currents: cur}
				}
				if _, err := seed.Evaluate(context.Background(), op, nil); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}

	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()

	s := c.Stats()
	if s.Rotations == 0 {
		t.Errorf("capacity-8 cache under churn never rotated: %+v", s)
	}
	if s.Hits == 0 || s.Misses == 0 {
		t.Errorf("stress produced degenerate traffic: %+v", s)
	}
	if s.Collisions != 0 {
		t.Errorf("real FNV hashing collided during stress: %+v", s)
	}
	if c.Len() > 2*c.Capacity() {
		t.Errorf("cache holds %d entries, bound is %d", c.Len(), 2*c.Capacity())
	}
}

// TestMixedTrafficSharedCache drives scalar and zoned bindings over one
// real full backend and one shared cache from many goroutines; run under
// -race it is the concurrency gate for the shared-cache refactor.
func TestMixedTrafficSharedCache(t *testing.T) {
	cfg := thermal.DefaultConfig()
	cfg.ChipRes = 8
	cfg.SpreaderRes = 7
	cfg.SinkRes = 6
	cfg.PCBRes = 4
	bench, err := workload.ByName("Basicmath")
	if err != nil {
		t.Fatal(err)
	}
	pm, err := bench.PowerMap(cfg.Floorplan)
	if err != nil {
		t.Fatal(err)
	}
	plant, err := backend.New("full", cfg, pm)
	if err != nil {
		t.Fatal(err)
	}
	full := plant.(backend.Zoner)
	assign := map[string]int{}
	units := cfg.Floorplan.Units()
	for i, u := range units {
		assign[u.Name] = i % 2
	}
	z, err := full.NewZoning(assign, 2)
	if err != nil {
		t.Fatal(err)
	}
	zoned, err := full.WithZoning(z)
	if err != nil {
		t.Fatal(err)
	}

	c := New(16)
	sb := c.Bind(plant)
	zb := c.Bind(zoned)
	ctx := context.Background()

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				var err error
				if (w+i)%2 == 0 {
					omega := 200 + float64(i%5)*25
					_, err = sb.Evaluate(ctx, backend.Scalar(omega, float64(w%3)), nil)
				} else {
					omega := 220 + float64(i%4)*30
					cur := []float64{float64(w % 2), float64(i % 3)}
					_, err = zb.Evaluate(ctx, backend.OpPoint{Omega: omega, Currents: cur}, nil)
				}
				if err != nil {
					select {
					case errs <- err:
					default:
					}
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}

	s := c.Stats()
	if s.Misses == 0 || s.Hits == 0 {
		t.Errorf("mixed traffic produced no cache reuse: %+v", s)
	}
	if s.Rotations == 0 {
		t.Errorf("capacity 16 under %d distinct points never rotated: %+v", 15+12, s)
	}

	// Spot-check cached answers against a fresh uncached backend.
	fresh, err := backend.New("full", cfg, pm)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sb.Evaluate(ctx, backend.Scalar(250, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Evaluate(ctx, backend.Scalar(250, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.MaxChipTemp != want.MaxChipTemp {
		t.Errorf("cached MaxChipTemp %g != fresh %g", got.MaxChipTemp, want.MaxChipTemp)
	}
}
