package evalcache

import (
	"context"

	"oftec/internal/backend"
	"oftec/internal/thermal"
)

// EvaluateBatch resolves a block of operating points through the cache in
// one pass. Classification — hit, coalesced wait, or miss — happens under
// a single lock acquisition, then every unique miss is solved through the
// wrapped backend's BatchEvaluator capability when it has one (blocked
// multi-RHS solves) and per-point otherwise. The per-index contract is
// the same as calling Evaluate for each op, with one deliberate
// difference: duplicate keys inside the batch dedupe onto the first
// occurrence's solve without any channel rendezvous, so a batch can never
// wait on itself.
//
// Results are filled per index; any error — a failed solve, a cancelled
// wait on another caller's in-flight point — fails the whole batch, like
// backend.BatchEvaluator does.
func (b *Binding) EvaluateBatch(ctx context.Context, ops []backend.OpPoint, warm []float64) ([]*thermal.Result, error) {
	out := make([]*thermal.Result, len(ops))
	if len(ops) == 0 {
		return out, nil
	}

	type missRec struct {
		idx int
		ck  key
		fl  *inflight
	}
	type waitRec struct {
		idx int
		fl  *inflight
	}
	var (
		misses  []missRec
		waits   []waitRec
		solo    []int       // uncached: invalid shape or wide-key collision
		aliases map[int]int // op index → first in-batch occurrence (a miss)
	)
	keys := make([]key, len(ops))
	wides := make([][]float64, len(ops))
	valid := make([]bool, len(ops))
	for i, op := range ops {
		k := op.K()
		if k == 0 {
			solo = append(solo, i)
			continue
		}
		valid[i] = true
		ck := key{space: b.space, k: k, omega: quantize(op.Omega)}
		if k <= maxInlineK {
			for j, v := range op.Currents {
				ck.cur[j] = quantize(v)
			}
		} else {
			wides[i] = b.wideKey(&ck, op.Currents)
		}
		keys[i] = ck
	}

	c := b.c
	c.mu.Lock()
	c.stats.Batches++
	c.stats.BatchPoints += int64(len(ops))
	var firstOf map[key]int
	for i := range ops {
		if !valid[i] {
			continue
		}
		ck := keys[i]
		if e, ok := c.lookupLocked(ck); ok {
			if !currentsEqual(e.wide, wides[i]) {
				c.stats.Collisions++
				solo = append(solo, i)
				continue
			}
			c.stats.Hits++
			out[i] = e.res
			continue
		}
		if j, ok := firstOf[ck]; ok {
			if !currentsEqual(wides[j], wides[i]) {
				c.stats.Collisions++
				solo = append(solo, i)
				continue
			}
			// An in-batch duplicate is a backend solve the cache avoided,
			// same as a cross-caller wait — but it joins this batch's own
			// solve directly, never parking on a channel.
			c.stats.Waits++
			if aliases == nil {
				aliases = make(map[int]int)
			}
			aliases[i] = j
			continue
		}
		if fl, ok := c.infl[ck]; ok {
			if !currentsEqual(fl.wide, wides[i]) {
				c.stats.Collisions++
				solo = append(solo, i)
				continue
			}
			c.stats.Waits++
			waits = append(waits, waitRec{idx: i, fl: fl})
			continue
		}
		fl := &inflight{done: make(chan struct{}), wide: wides[i]}
		c.infl[ck] = fl
		c.stats.Misses++
		if firstOf == nil {
			firstOf = make(map[key]int)
		}
		firstOf[ck] = i
		misses = append(misses, missRec{idx: i, ck: ck, fl: fl})
	}
	hook := c.hook
	c.mu.Unlock()

	var solveErr error
	if len(misses) > 0 {
		if hook != nil {
			for _, mr := range misses {
				hook(ops[mr.idx])
			}
		}
		if be, ok := b.ev.(backend.BatchEvaluator); ok {
			missOps := make([]backend.OpPoint, len(misses))
			for j, mr := range misses {
				missOps[j] = ops[mr.idx]
			}
			res, err := be.EvaluateBatch(ctx, missOps, warm)
			if err != nil {
				solveErr = err
				for _, mr := range misses {
					mr.fl.err = err
				}
			} else {
				for j, mr := range misses {
					mr.fl.res = res[j]
				}
			}
		} else {
			for _, mr := range misses {
				if solveErr != nil {
					// The batch is already failing; release the remaining
					// rendezvous without more solves.
					mr.fl.err = solveErr
					continue
				}
				mr.fl.res, mr.fl.err = b.ev.Evaluate(ctx, ops[mr.idx], warm)
				if mr.fl.err != nil {
					solveErr = mr.fl.err
				}
			}
		}

		c.mu.Lock()
		for _, mr := range misses {
			delete(c.infl, mr.ck)
			if mr.fl.err == nil {
				c.storeLocked(mr.ck, entry{res: mr.fl.res, wide: mr.fl.wide})
			}
		}
		c.mu.Unlock()
		for _, mr := range misses {
			close(mr.fl.done)
			out[mr.idx] = mr.fl.res
		}
	}

	// Uncached stragglers solve directly on the backend, exactly like the
	// per-point collision path.
	for _, i := range solo {
		if solveErr != nil {
			break
		}
		res, err := b.ev.Evaluate(ctx, ops[i], warm)
		if err != nil {
			solveErr = err
			break
		}
		out[i] = res
	}

	// Join other callers' in-flight solves last, so this batch's own work
	// is already dispatched while we park.
	for _, wr := range waits {
		res, err := waitInflight(ctx, wr.fl)
		if err != nil {
			if solveErr == nil {
				solveErr = err
			}
			continue
		}
		out[wr.idx] = res
	}
	for i, j := range aliases {
		out[i] = out[j]
	}
	if solveErr != nil {
		return nil, solveErr
	}
	return out, nil
}
