package fan_test

import (
	"fmt"

	"oftec/internal/fan"
	"oftec/internal/units"
)

// Example evaluates the two fan laws at the paper's reference speeds:
// cubic power (Equation (8)) and logarithmic sink conductance
// (Equation (9)).
func Example() {
	f := fan.PaperFan()
	hs := fan.PaperModel()
	for _, rpm := range []float64{1000, 2000, 5000} {
		w := units.RPMToRadPerSec(rpm)
		fmt.Printf("%4.0f RPM: P_fan = %6.3f W, g_HS&fan = %.3f W/K\n",
			rpm, f.Power(w), hs.Conductance(w))
	}
	// Output:
	// 1000 RPM: P_fan =  0.184 W, g_HS&fan = 4.262 W/K
	// 2000 RPM: P_fan =  1.470 W, g_HS&fan = 4.934 W/K
	// 5000 RPM: P_fan = 22.968 W, g_HS&fan = 5.823 W/K
}
