package fan

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFanPowerCubicLaw(t *testing.T) {
	f := PaperFan()
	// The paper: c = 1.6e-7 J·s², so P(524 rad/s) ≈ 23 W.
	if p := f.Power(524); math.Abs(p-23.02) > 0.05 {
		t.Errorf("P(524) = %g, want ≈23.0", p)
	}
	if p := f.Power(0); p != 0 {
		t.Errorf("P(0) = %g, want 0", p)
	}
	if p := f.Power(-5); p != 0 {
		t.Errorf("P(-5) = %g, want 0 (clamped)", p)
	}
	// Cubic scaling: doubling speed multiplies power by 8.
	if r := f.Power(200) / f.Power(100); math.Abs(r-8) > 1e-9 {
		t.Errorf("P(2ω)/P(ω) = %g, want 8", r)
	}
}

func TestFanValidate(t *testing.T) {
	if err := (Fan{C: 0, OmegaMax: 1}).Validate(); err == nil {
		t.Error("zero power constant accepted")
	}
	if err := (Fan{C: 1, OmegaMax: 0}).Validate(); err == nil {
		t.Error("zero max speed accepted")
	}
	if err := PaperFan().Validate(); err != nil {
		t.Errorf("paper fan rejected: %v", err)
	}
}

func TestHeatSinkConductanceLaw(t *testing.T) {
	m := PaperModel()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Paper values: g(ω) = 0.97·ln(ω) − 0.25.
	w := 209.0 // ≈2000 RPM
	want := 0.97*math.Log(209) - 0.25
	if g := m.Conductance(w); math.Abs(g-want) > 1e-12 {
		t.Errorf("g(209) = %g, want %g", g, want)
	}
	// Still-air floor.
	if g := m.Conductance(0); g != m.GHS {
		t.Errorf("g(0) = %g, want g_HS = %g", g, m.GHS)
	}
	if g := m.Conductance(0.5); g != m.GHS {
		t.Errorf("g(0.5) = %g, want saturated %g", g, m.GHS)
	}
}

func TestConductanceMonotonicContinuous(t *testing.T) {
	m := PaperModel()
	prev := m.Conductance(0)
	for w := 0.1; w < 550; w += 0.5 {
		g := m.Conductance(w)
		if g < prev-1e-12 {
			t.Fatalf("conductance decreased at ω=%g: %g < %g", w, g, prev)
		}
		prev = g
	}
	// Continuity at the crossover.
	wc := m.CrossoverSpeed()
	if d := math.Abs(m.Conductance(wc*0.999) - m.Conductance(wc*1.001)); d > 1e-3 {
		t.Errorf("discontinuity %g at crossover ω=%g", d, wc)
	}
}

func TestCrossoverSpeed(t *testing.T) {
	m := PaperModel()
	wc := m.CrossoverSpeed()
	// p·ln(q·wc) + r must equal g_HS.
	if g := m.P*math.Log(m.Q*wc) + m.R; math.Abs(g-m.GHS) > 1e-9 {
		t.Errorf("log law at crossover = %g, want %g", g, m.GHS)
	}
}

func TestDConductanceDOmega(t *testing.T) {
	m := PaperModel()
	if d := m.DConductanceDOmega(1); d != 0 {
		t.Errorf("derivative on saturated branch = %g, want 0", d)
	}
	w := 300.0
	analytic := m.DConductanceDOmega(w)
	numeric := (m.Conductance(w+1e-4) - m.Conductance(w-1e-4)) / 2e-4
	if math.Abs(analytic-numeric) > 1e-6 {
		t.Errorf("dg/dω analytic %g vs numeric %g", analytic, numeric)
	}
}

func TestHeatSinkValidate(t *testing.T) {
	bad := []HeatSinkModel{
		{P: 0, Q: 1, GHS: 1},
		{P: 1, Q: 0, GHS: 1},
		{P: 1, Q: 1, GHS: 0},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: invalid model accepted", i)
		}
	}
}

func TestFitLogLawRecoversParameters(t *testing.T) {
	// Samples generated from a known log law must be fit exactly.
	const p, r = 0.97, -0.25
	var samples []Sample
	for _, w := range []float64{10, 30, 90, 270, 520} {
		samples = append(samples, Sample{Omega: w, G: p*math.Log(w) + r})
	}
	gotP, gotR, err := FitLogLaw(samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gotP-p) > 1e-9 || math.Abs(gotR-r) > 1e-9 {
		t.Errorf("fit = (%g, %g), want (%g, %g)", gotP, gotR, p, r)
	}
}

func TestFitLogLawErrors(t *testing.T) {
	if _, _, err := FitLogLaw(nil); err == nil {
		t.Error("empty sample set accepted")
	}
	if _, _, err := FitLogLaw([]Sample{{1, 1}}); err == nil {
		t.Error("single sample accepted")
	}
	if _, _, err := FitLogLaw([]Sample{{-1, 1}, {2, 2}}); err == nil {
		t.Error("negative speed accepted")
	}
	if _, _, err := FitLogLaw([]Sample{{5, 1}, {5, 2}}); err == nil {
		t.Error("identical speeds accepted")
	}
}

// Property: the OLS fit minimizes squared error — perturbing (p, r) never
// reduces the residual.
func TestFitLogLawOptimalityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		samples := make([]Sample, n)
		for i := range samples {
			w := 5 + rng.Float64()*500
			samples[i] = Sample{Omega: w, G: 0.8*math.Log(w) + rng.NormFloat64()*0.1}
		}
		p, r, err := FitLogLaw(samples)
		if err != nil {
			return false
		}
		sse := func(p, r float64) float64 {
			var s float64
			for _, smp := range samples {
				d := smp.G - (p*math.Log(smp.Omega) + r)
				s += d * d
			}
			return s
		}
		base := sse(p, r)
		for _, dp := range []float64{-0.01, 0.01} {
			if sse(p+dp, r) < base-1e-12 || sse(p, r+dp) < base-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestConvectionReferenceFitNearPaper(t *testing.T) {
	// Fitting the first-principles convection model over the paper's
	// operating range must land near the paper's (p, r) = (0.97, −0.25).
	ref := DefaultConvectionReference()
	samples, err := ref.Samples(50, 524, 20)
	if err != nil {
		t.Fatal(err)
	}
	p, r, err := FitLogLaw(samples)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.5 || p > 1.5 {
		t.Errorf("fitted p = %g, want near 0.97", p)
	}
	if r < -1.5 || r > 0.6 {
		t.Errorf("fitted r = %g, want near -0.25", r)
	}
	// The fit must be decent: max relative error below 10% on the range.
	for _, s := range samples {
		fit := p*math.Log(s.Omega) + r
		if rel := math.Abs(fit-s.G) / s.G; rel > 0.15 {
			t.Errorf("fit error %.1f%% at ω=%g", rel*100, s.Omega)
		}
	}
}

func TestConvectionReferenceSampleErrors(t *testing.T) {
	ref := DefaultConvectionReference()
	if _, err := ref.Samples(50, 524, 1); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := ref.Samples(-1, 524, 5); err == nil {
		t.Error("negative omegaMin accepted")
	}
	if _, err := ref.Samples(100, 50, 5); err == nil {
		t.Error("inverted range accepted")
	}
	if g := ref.Conductance(0); g != ref.GBase {
		t.Errorf("Conductance(0) = %g, want GBase", g)
	}
}
