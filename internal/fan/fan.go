// Package fan models the forced-convection cooler: the cubic fan power law
// of Equation (8) and the logarithmic heat-sink+fan thermal conductance law
// of Equation (9), together with the curve-fitting machinery the paper used
// to obtain the law from HotSpot-style convection calculations.
package fan

import (
	"fmt"
	"math"
)

// Fan models a variable-speed axial fan.
type Fan struct {
	// C is the power constant c in J·s² of Equation (8): P = c·ω³.
	// The paper estimates c = 1.6e-7 J·s² from ref [11].
	C float64
	// OmegaMax is the maximum rotational speed in rad/s (constraint (16)).
	// The paper uses 524 rad/s (5000 RPM).
	OmegaMax float64
}

// Validate reports whether the fan parameters are physical.
func (f Fan) Validate() error {
	if f.C <= 0 {
		return fmt.Errorf("fan: power constant %g must be positive", f.C)
	}
	if f.OmegaMax <= 0 {
		return fmt.Errorf("fan: maximum speed %g must be positive", f.OmegaMax)
	}
	return nil
}

// Power returns P_fan = c·ω³ (Equation (8)) for ω in rad/s.
func (f Fan) Power(omega float64) float64 {
	if omega <= 0 {
		return 0
	}
	return f.C * omega * omega * omega
}

// DPowerDOmega returns dP_fan/dω = 3·c·ω², the explicit fan term of the
// power objective's gradient; zero on the clamped branch ω ≤ 0.
func (f Fan) DPowerDOmega(omega float64) float64 {
	if omega <= 0 {
		return 0
	}
	return 3 * f.C * omega * omega
}

// HeatSinkModel is the collective thermal conductance of heat sink plus fan
// as a function of fan speed (Equation (9)): g = p·ln(q·ω) + r for large ω,
// saturating below at the natural-convection conductance g_HS.
type HeatSinkModel struct {
	// P and R are the fitting parameters p and r in W/K (the paper uses
	// 0.97 and -0.25).
	P, R float64
	// Q makes the logarithm argument dimensionless; the paper sets q = 1 s.
	Q float64
	// GHS is the still-air heat sink conductance g_HS in W/K (paper: 0.525).
	GHS float64
}

// Validate reports whether the model parameters are usable.
func (m HeatSinkModel) Validate() error {
	switch {
	case m.P <= 0:
		return fmt.Errorf("fan: conductance slope p=%g must be positive", m.P)
	case m.Q <= 0:
		return fmt.Errorf("fan: normalization q=%g must be positive", m.Q)
	case m.GHS <= 0:
		return fmt.Errorf("fan: still-air conductance g_HS=%g must be positive", m.GHS)
	}
	return nil
}

// Conductance returns g_HS&fan(ω) in W/K: the logarithmic law clipped below
// by the natural-convection floor g_HS, so that g is continuous,
// nondecreasing, and well-defined at ω = 0.
func (m HeatSinkModel) Conductance(omega float64) float64 {
	if omega <= 0 {
		return m.GHS
	}
	g := m.P*math.Log(m.Q*omega) + m.R
	if g < m.GHS {
		return m.GHS
	}
	return g
}

// CrossoverSpeed returns the fan speed at which the logarithmic law meets
// the natural-convection floor: p·ln(qω)+r = g_HS.
func (m HeatSinkModel) CrossoverSpeed() float64 {
	return math.Exp((m.GHS-m.R)/m.P) / m.Q
}

// DConductanceDOmega returns dg/dω, used by gradient-based optimizers. The
// derivative is zero on the saturated branch.
func (m HeatSinkModel) DConductanceDOmega(omega float64) float64 {
	if omega <= m.CrossoverSpeed() {
		return 0
	}
	return m.P / omega
}

// PaperModel returns the heat-sink+fan model with the constants reported in
// Section 6.1 of the paper: p = 0.97, r = -0.25, q = 1 s, g_HS = 0.525 W/K.
func PaperModel() HeatSinkModel {
	return HeatSinkModel{P: 0.97, R: -0.25, Q: 1, GHS: 0.525}
}

// PaperFan returns the fan with the constants of Section 6.1:
// c = 1.6e-7 J·s², ω_max = 524 rad/s (5000 RPM).
func PaperFan() Fan {
	return Fan{C: 1.6e-7, OmegaMax: 524}
}

// Sample is one (speed, conductance) observation used for curve fitting.
type Sample struct {
	Omega float64 // rad/s
	G     float64 // W/K
}

// FitLogLaw fits g = p·ln(ω) + r to the samples by ordinary least squares
// in the transformed variable x = ln(ω), reproducing the paper's fitting
// step (with q fixed to 1 s). At least two samples with distinct speeds are
// required; all speeds must be positive.
func FitLogLaw(samples []Sample) (p, r float64, err error) {
	if len(samples) < 2 {
		return 0, 0, fmt.Errorf("fan: need at least 2 samples to fit, got %d", len(samples))
	}
	var sx, sy, sxx, sxy float64
	for _, s := range samples {
		if s.Omega <= 0 {
			return 0, 0, fmt.Errorf("fan: sample speed %g must be positive", s.Omega)
		}
		x := math.Log(s.Omega)
		sx += x
		sy += s.G
		sxx += x * x
		sxy += x * s.G
	}
	n := float64(len(samples))
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0, fmt.Errorf("fan: samples have identical speeds; slope is undetermined")
	}
	p = (n*sxy - sx*sy) / den
	r = (sy - p*sx) / n
	return p, r, nil
}

// ConvectionReference generates (ω, g) samples from a first-principles
// forced-convection model, mirroring the HotSpot 5 calculation the paper
// fit its law to: the sink-to-ambient conductance is h(v)·A_eff with a
// laminar fin-channel correlation h ∝ v^0.25 and air velocity proportional
// to fan speed. The defaults are calibrated so the fitted slope p lands
// near the paper's 0.97 over the operating range 50-524 rad/s.
type ConvectionReference struct {
	// EffectiveArea is the wetted fin area in m².
	EffectiveArea float64
	// VelocityPerOmega converts fan speed (rad/s) to duct air speed (m/s).
	VelocityPerOmega float64
	// HCoeff scales the convection correlation h = HCoeff · v^0.25 in
	// W/(m²·K) per (m/s)^0.25 (developed laminar flow through the fin
	// channels has a weak velocity dependence, which is what makes the
	// logarithmic law of Equation (9) such a good fit).
	HCoeff float64
	// GBase is the conduction part of the sink path in W/K.
	GBase float64
}

// DefaultConvectionReference returns a reference model calibrated to the
// paper's operating range.
func DefaultConvectionReference() ConvectionReference {
	return ConvectionReference{
		EffectiveArea:    0.0240, // 60×60 mm base with finned multiplier
		VelocityPerOmega: 0.0125,
		HCoeff:           134.7,
		GBase:            1.0,
	}
}

// Conductance returns the physical-model conductance at fan speed omega.
func (c ConvectionReference) Conductance(omega float64) float64 {
	if omega <= 0 {
		return c.GBase
	}
	v := c.VelocityPerOmega * omega
	h := c.HCoeff * math.Pow(v, 0.25)
	return c.GBase + h*c.EffectiveArea
}

// Samples evaluates the reference model at n log-spaced speeds in
// [omegaMin, omegaMax].
func (c ConvectionReference) Samples(omegaMin, omegaMax float64, n int) ([]Sample, error) {
	if n < 2 {
		return nil, fmt.Errorf("fan: need n >= 2 samples, got %d", n)
	}
	if omegaMin <= 0 || omegaMax <= omegaMin {
		return nil, fmt.Errorf("fan: invalid speed range [%g, %g]", omegaMin, omegaMax)
	}
	out := make([]Sample, n)
	logMin, logMax := math.Log(omegaMin), math.Log(omegaMax)
	for i := 0; i < n; i++ {
		w := math.Exp(logMin + (logMax-logMin)*float64(i)/float64(n-1))
		out[i] = Sample{Omega: w, G: c.Conductance(w)}
	}
	return out, nil
}
