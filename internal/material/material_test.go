package material

import "testing"

func TestBuiltinsValid(t *testing.T) {
	for _, m := range All() {
		if err := m.Validate(); err != nil {
			t.Errorf("built-in material %s invalid: %v", m.Name, err)
		}
	}
	if len(All()) < 5 {
		t.Errorf("expected at least 5 built-in materials, got %d", len(All()))
	}
}

func TestTable1Conductivities(t *testing.T) {
	// Table 1 of the paper.
	cases := []struct {
		mat  Material
		want float64
	}{
		{Silicon, 100},
		{TIM, 1.75},
		{Copper, 400},
	}
	for _, c := range cases {
		if c.mat.Conductivity != c.want {
			t.Errorf("%s conductivity = %g, want %g (Table 1)", c.mat.Name, c.mat.Conductivity, c.want)
		}
	}
}

func TestValidateRejectsNonPhysical(t *testing.T) {
	bad := []Material{
		{Name: "zero-k", Conductivity: 0, VolumetricHeatCapacity: 1},
		{Name: "neg-k", Conductivity: -1, VolumetricHeatCapacity: 1},
		{Name: "zero-c", Conductivity: 1, VolumetricHeatCapacity: 0},
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("material %s accepted", m.Name)
		}
	}
}
