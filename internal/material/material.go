// Package material provides the thermal material library for the cooling
// package assembly: silicon, thermal interface material, copper, FR4, and
// thin-film superlattice thermoelectric material. Conductivities follow
// Table 1 of the paper; volumetric heat capacities (used only by the
// transient extension) follow HotSpot's defaults.
package material

import "fmt"

// Material describes an isotropic thermal material.
type Material struct {
	Name string
	// Conductivity is the thermal conductivity in W/(m·K).
	Conductivity float64
	// VolumetricHeatCapacity is ρ·c_p in J/(m³·K); used for transients.
	VolumetricHeatCapacity float64
}

// Validate reports whether the material parameters are physical.
func (m Material) Validate() error {
	if m.Conductivity <= 0 {
		return fmt.Errorf("material %q: conductivity %g must be positive", m.Name, m.Conductivity)
	}
	if m.VolumetricHeatCapacity <= 0 {
		return fmt.Errorf("material %q: volumetric heat capacity %g must be positive", m.Name, m.VolumetricHeatCapacity)
	}
	return nil
}

// Library of materials used by the package assembly. Conductivities for
// chip, TIM, spreader, and sink are exactly the Table 1 values.
var (
	// Silicon models the active die layer (Table 1: 100 W/(m·K)).
	Silicon = Material{Name: "silicon", Conductivity: 100, VolumetricHeatCapacity: 1.75e6}

	// TIM is thermal interface paste (Table 1: 1.75 W/(m·K)).
	TIM = Material{Name: "tim", Conductivity: 1.75, VolumetricHeatCapacity: 4.0e6}

	// Copper models the heat spreader and heat sink (Table 1: 400 W/(m·K)).
	Copper = Material{Name: "copper", Conductivity: 400, VolumetricHeatCapacity: 3.55e6}

	// FR4 models the PCB layer under the die.
	FR4 = Material{Name: "fr4", Conductivity: 0.35, VolumetricHeatCapacity: 1.6e6}

	// Superlattice models the Bi2Te3-based thin-film thermoelectric layer
	// (refs [3][8]: superlattice coolers conduct far better vertically than
	// thermal paste; 1.2 W/(m·K) is the in-plane figure, the effective
	// through-plane stack conductivity is set by the TEC's K_TEC).
	Superlattice = Material{Name: "superlattice", Conductivity: 1.2, VolumetricHeatCapacity: 1.2e6}
)

// All returns the built-in materials; useful for tests and config listings.
func All() []Material {
	return []Material{Silicon, TIM, Copper, FR4, Superlattice}
}
