package serve

import (
	"net/http"
	"os"
	"testing"

	"oftec/internal/backend"
)

// TestStatzBatchCounters drives a sweep (whole ω-rows submitted as
// batches) and checks /statz reports the blocked traffic alongside the
// /stats superset.
func TestStatzBatchCounters(t *testing.T) {
	s := New(Options{})
	h := s.Handler()

	rec := post(t, h, "/v1/sweep", SweepRequest{NOmega: 4, NI: 4})
	if rec.Code != http.StatusOK {
		t.Fatalf("sweep status %d: %s", rec.Code, rec.Body.String())
	}
	rec = get(t, h, "/statz")
	if rec.Code != http.StatusOK {
		t.Fatalf("statz status %d: %s", rec.Code, rec.Body.String())
	}
	statz := decodeBody[StatzResponse](t, rec)
	if !statz.Batch.Enabled {
		t.Error("batching reported disabled on a default server")
	}
	if statz.Batch.Batches < 4 || statz.Batch.BatchPoints < 16 {
		t.Errorf("4×4 sweep counted %d batches / %d points, want ≥4 / ≥16", statz.Batch.Batches, statz.Batch.BatchPoints)
	}
	if statz.Cache.Misses == 0 || statz.Pool.Builds != 1 || statz.Req.Sweep != 1 {
		t.Errorf("statz superset fields off: %+v", statz)
	}
}

// TestStatzAdmissionExempt: /statz must answer on a saturated server.
func TestStatzAdmissionExempt(t *testing.T) {
	s := New(Options{MaxInflight: 1})
	h := s.Handler()
	s.sem <- struct{}{} // occupy the only slot
	defer func() { <-s.sem }()
	if rec := get(t, h, "/statz"); rec.Code != http.StatusOK {
		t.Errorf("statz blocked by admission control: %d", rec.Code)
	}
}

// TestDisableBatch pins the escape hatch: pooled systems answer per
// point, no batch traffic is counted, and /statz says so.
func TestDisableBatch(t *testing.T) {
	s := New(Options{DisableBatch: true})
	h := s.Handler()

	rec := post(t, h, "/v1/sweep", SweepRequest{NOmega: 4, NI: 4})
	if rec.Code != http.StatusOK {
		t.Fatalf("sweep status %d: %s", rec.Code, rec.Body.String())
	}
	statz := decodeBody[StatzResponse](t, get(t, h, "/statz"))
	if statz.Batch.Enabled {
		t.Error("statz reports batching enabled under DisableBatch")
	}
	if statz.Batch.Batches != 0 || statz.Batch.BatchPoints != 0 {
		t.Errorf("DisableBatch server still counted %d batches / %d points", statz.Batch.Batches, statz.Batch.BatchPoints)
	}
	if statz.Cache.Misses == 0 {
		t.Error("per-point sweep recorded no cache misses")
	}
}

// TestROMCacheDirPersists: a server with ROMCacheDir set writes the ROM
// basis for a "rom"-backed chip so a restart can skip snapshot
// collection.
func TestROMCacheDirPersists(t *testing.T) {
	dir := t.TempDir()
	prev := backend.ROMCacheDir()
	defer backend.SetROMCacheDir(prev)

	s := New(Options{ROMCacheDir: dir})
	h := s.Handler()
	rec := post(t, h, "/v1/evaluate", EvaluateRequest{
		Chip: ChipSpec{Backend: "rom"}, OmegaRPM: 3000, ITecA: 1,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("rom evaluate status %d: %s", rec.Code, rec.Body.String())
	}
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("ROM cache dir empty after building a rom-backed chip")
	}
}
