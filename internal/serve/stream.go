package serve

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"sync/atomic"

	"oftec/internal/core"
	"oftec/internal/solver"
	"oftec/internal/thermal"
)

// TraceJSON is one streamed solver iterate. Fields a method does not
// track (NaN in the TraceRecord) are omitted rather than serialized —
// JSON has no NaN.
type TraceJSON struct {
	Method       string    `json:"method"`
	Iter         int       `json:"iter"`
	X            []float64 `json:"x,omitempty"`
	F            *float64  `json:"f,omitempty"`
	MaxViolation *float64  `json:"max_violation,omitempty"`
	StepNorm     *float64  `json:"step_norm,omitempty"`
	Alpha        *float64  `json:"alpha,omitempty"`
}

// StreamLine is one NDJSON line of a streamed optimize: trace records
// while the solver runs, then exactly one terminal line carrying either
// the outcome or an error.
type StreamLine struct {
	Trace   *TraceJSON        `json:"trace,omitempty"`
	Outcome *OptimizeResponse `json:"outcome,omitempty"`
	Error   string            `json:"error,omitempty"`
	// DroppedTraces counts records the stream shed under backpressure
	// (reported on the terminal line only when nonzero).
	DroppedTraces int64 `json:"dropped_traces,omitempty"`
}

func finPtr(v float64) *float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil
	}
	return &v
}

func traceJSON(rec solver.TraceRecord) TraceJSON {
	tj := TraceJSON{Method: rec.Method, Iter: rec.Iter, F: finPtr(rec.F),
		MaxViolation: finPtr(rec.MaxViolation), StepNorm: finPtr(rec.StepNorm),
		Alpha: finPtr(rec.Alpha)}
	x := make([]float64, 0, len(rec.X))
	for _, v := range rec.X {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			x = nil
			break
		}
		x = append(x, v)
	}
	tj.X = x
	return tj
}

// streamResult carries the run's terminal state from the solver
// goroutine back to the response loop.
type streamResult struct {
	resp OptimizeResponse
	err  error
}

// streamOptimize answers an optimize request as chunked NDJSON: the
// solver's Trace hook feeds per-iterate records through a bounded
// channel (shedding under backpressure rather than stalling the solve),
// the handler relays them to the client as they arrive, and the final
// line carries the outcome. The client sees progress while a long solve
// runs instead of a silent connection.
func (s *Server) streamOptimize(ctx context.Context, w http.ResponseWriter, sys *core.System, zoning *thermal.Zoning, opts core.Options) {
	traceCh := make(chan solver.TraceRecord, 128)
	var dropped atomic.Int64
	opts.Solver.Trace = func(rec solver.TraceRecord) {
		select {
		case traceCh <- rec:
		default:
			dropped.Add(1)
		}
	}

	// The result channel is consumed below before the handler returns,
	// and the solver honors ctx at iteration boundaries, so the goroutine
	// cannot outlive the request for long even if the client vanishes.
	resCh := make(chan streamResult, 1)
	go func() {
		resp, err := runOptimize(sys, zoning, opts)
		resCh <- streamResult{resp: resp, err: err}
	}()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(line StreamLine) {
		// Marshal failures would only arise from non-finite floats, which
		// the Trace/outcome sanitizers already strip; a write failure
		// means the client hung up and the terminal line is moot.
		if enc.Encode(line) == nil && flusher != nil {
			flusher.Flush()
		}
	}

	for {
		select {
		case rec := <-traceCh:
			tj := traceJSON(rec)
			emit(StreamLine{Trace: &tj})
		case res := <-resCh:
			// Drain records the solver emitted after our last read so the
			// stream ends with the complete iterate history.
			for {
				select {
				case rec := <-traceCh:
					tj := traceJSON(rec)
					emit(StreamLine{Trace: &tj})
					continue
				default:
				}
				break
			}
			final := StreamLine{DroppedTraces: dropped.Load()}
			if res.err != nil {
				s.errors.Add(1)
				final.Error = res.err.Error()
			} else {
				final.Outcome = &res.resp
			}
			emit(final)
			return
		}
	}
}
