package serve

import (
	"encoding/json"
	"math"
	"net/http"
	"strings"
	"testing"

	"oftec/internal/experiments"
	"oftec/internal/units"
	"oftec/internal/workload"
)

// TestEvaluateLiquidCoolant drives a live request through the seam: a chip
// spec naming the liquid actuator must evaluate under the pump/cold-plate
// physics, matching a direct library evaluation of the same configuration.
func TestEvaluateLiquidCoolant(t *testing.T) {
	s := New(Options{})
	h := s.Handler()

	rec := post(t, h, "/v1/evaluate", EvaluateRequest{
		Chip: ChipSpec{Coolant: "liquid"}, OmegaRPM: 2000, ITecA: 1,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	got := decodeBody[EvaluateResponse](t, rec)

	cfg, err := ChipSpec{Coolant: "liquid"}.config()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := experiments.Setup{Config: cfg, Benchmarks: workload.All()}.System("Basicmath")
	if err != nil {
		t.Fatal(err)
	}
	want, err := sys.Evaluate(units.RPMToRadPerSec(2000), 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Runaway {
		t.Fatal("unexpected runaway under the liquid loop at 2000 RPM")
	}
	if diff := math.Abs(got.MaxTempC - units.KToC(want.MaxChipTemp)); diff > 1e-9 {
		t.Errorf("MaxTempC = %g, want %g", got.MaxTempC, units.KToC(want.MaxChipTemp))
	}
	if diff := math.Abs(got.FanW - want.PFan); diff > 1e-9 {
		t.Errorf("FanW = %g, want the pump affinity share %g", got.FanW, want.PFan)
	}

	// The pump ceiling (400 rad/s ≈ 3820 RPM) is below the fan's: a
	// command legal for air must be rejected once the chip runs liquid.
	rec = post(t, h, "/v1/evaluate", EvaluateRequest{
		Chip: ChipSpec{Coolant: "liquid"}, OmegaRPM: 5000, ITecA: 1,
	})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("over-ceiling pump command: status %d, want 400", rec.Code)
	}
}

// TestUnknownCoolantRejected: a typo'd coolant name is a 400 whose error
// body lists the registered names.
func TestUnknownCoolantRejected(t *testing.T) {
	s := New(Options{})
	h := s.Handler()

	rec := post(t, h, "/v1/evaluate", EvaluateRequest{
		Chip: ChipSpec{Coolant: "water"}, OmegaRPM: 2000,
	})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", rec.Code, rec.Body.String())
	}
	var eb errorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"air", "liquid", "liquid-dc", "liquid-package"} {
		if !strings.Contains(eb.Error, name) {
			t.Errorf("error %q does not list registered coolant %q", eb.Error, name)
		}
	}
}
