package serve

import (
	"fmt"
	"hash/fnv"
	"strings"
	"sync"
	"sync/atomic"

	"oftec/internal/backend"
	"oftec/internal/core"
	"oftec/internal/evalcache"
	"oftec/internal/thermal"
)

// pool is the model pool: one entry per distinct chip configuration,
// keyed by a hash of the canonical (benchmark, backend, config) rendering
// with the full canonical string kept alongside for collision checking —
// the same discipline the evaluation cache applies to wide operating
// points. Each entry builds its thermal model exactly once, no matter how
// many requests race on a cold chip: the winners of the map insertion all
// funnel through one sync.Once, so the expensive assembly (RC network +
// ROM basis) is singleflighted and every request shares the resulting
// core.System. All pooled systems evaluate through the server's one
// shared evalcache.
type pool struct {
	mu      sync.Mutex
	entries map[uint64][]*poolEntry // hash → collision bucket
	builds  atomic.Int64
	max     int
	// batchOff propagates Options.DisableBatch onto every built system.
	batchOff bool
}

// poolEntry is one resident chip: the canonical identity, the
// once-guarded build, and the memoized zonings resolved against it.
type poolEntry struct {
	canon   string
	spec    ChipSpec
	cfg     thermal.Config
	once    sync.Once
	sys     *core.System
	err     error
	zoneMu  sync.Mutex
	zonings map[string]*thermal.Zoning
}

func newPool(maxModels int, disableBatch bool) *pool {
	if maxModels <= 0 {
		maxModels = 64
	}
	return &pool{entries: map[uint64][]*poolEntry{}, max: maxModels, batchOff: disableBatch}
}

// canonChip renders the spec's full identity: workload, backend, and the
// complete validated thermal configuration as its canonical JSON. Two
// specs spelled differently but materializing the same configuration
// (say, res 8 explicit vs. defaulted) share one entry.
func canonChip(spec ChipSpec, cfg thermal.Config, benchName, backendName string) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "bench=%s|backend=%s|cfg=", benchName, backendName)
	if err := thermal.SaveConfig(&b, cfg); err != nil {
		return "", err
	}
	return b.String(), nil
}

func hashCanon(canon string) uint64 {
	h := fnv.New64a()
	//lint:ignore errdrop fnv's Write is documented to never fail
	h.Write([]byte(canon))
	return h.Sum64()
}

// lookup returns the pool entry for the spec, creating a cold (unbuilt)
// entry on first sight. It never builds the model — that happens in
// entry.system, outside the pool lock.
func (p *pool) lookup(spec ChipSpec) (*poolEntry, error) {
	bench, err := spec.bench()
	if err != nil {
		return nil, err
	}
	cfg, err := spec.config()
	if err != nil {
		return nil, err
	}
	backendName := spec.Backend
	if backendName == "" {
		backendName = "full"
	}
	canon, err := canonChip(spec, cfg, bench.Name, backendName)
	if err != nil {
		return nil, err
	}
	h := hashCanon(canon)

	p.mu.Lock()
	defer p.mu.Unlock()
	for _, e := range p.entries[h] {
		if e.canon == canon {
			return e, nil
		}
	}
	n := 0
	for _, bucket := range p.entries {
		n += len(bucket)
	}
	if n >= p.max {
		return nil, errPoolFull
	}
	e := &poolEntry{canon: canon, spec: spec, cfg: cfg, zonings: map[string]*thermal.Zoning{}}
	p.entries[h] = append(p.entries[h], e)
	return e, nil
}

// size reports the number of resident entries (built or building).
func (p *pool) size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, bucket := range p.entries {
		n += len(bucket)
	}
	return n
}

var errPoolFull = fmt.Errorf("serve: model pool full")

// system builds the entry's shared System on first use (singleflighted
// through the entry's Once) and returns it thereafter.
func (e *poolEntry) system(p *pool, cache *evalcache.Cache) (*core.System, error) {
	e.once.Do(func() {
		bench, err := e.spec.bench()
		if err != nil {
			e.err = err
			return
		}
		pm, err := bench.PowerMap(e.cfg.Floorplan)
		if err != nil {
			e.err = err
			return
		}
		name := e.spec.Backend
		plant, err := backend.New(name, e.cfg, pm)
		if err != nil {
			e.err = err
			return
		}
		p.builds.Add(1)
		e.sys = core.NewSystemShared(plant, cache)
		if p.batchOff {
			e.sys.SetBatching(false)
		}
	})
	return e.sys, e.err
}

// zoning resolves a ZoneSpec against this chip's floorplan, memoized by
// the spec's canonical rendering so repeated zoned requests reuse one
// *thermal.Zoning pointer — which is what keys the System's zoned-binding
// memoization and therefore the cache's zoned key space.
func (e *poolEntry) zoning(sys *core.System, zs *ZoneSpec) (*thermal.Zoning, error) {
	if zs == nil {
		return nil, nil
	}
	key := zs.canon()
	e.zoneMu.Lock()
	defer e.zoneMu.Unlock()
	if z, ok := e.zonings[key]; ok {
		return z, nil
	}
	zoner, ok := sys.Backend().(backend.Zoner)
	if !ok {
		return nil, fmt.Errorf("serve: backend %q cannot evaluate zoned points", sys.Backend().Name())
	}
	assign, numZones, err := e.assignment(zs)
	if err != nil {
		return nil, err
	}
	z, err := zoner.NewZoning(assign, numZones)
	if err != nil {
		return nil, err
	}
	e.zonings[key] = z
	return z, nil
}

// assignment materializes the unit → zone map a ZoneSpec describes.
func (e *poolEntry) assignment(zs *ZoneSpec) (map[string]int, int, error) {
	switch {
	case len(zs.ZoneOf) > 0:
		assign := make(map[string]int, len(zs.ZoneOf))
		max := 0
		for name, z := range zs.ZoneOf {
			if z < 0 {
				return nil, 0, fmt.Errorf("serve: zone_of[%q] = %d is negative", name, z)
			}
			assign[name] = z
			if z > max {
				max = z
			}
		}
		return assign, max + 1, nil
	case zs.Clusters:
		assign, n := core.ClusterZones()
		return assign, n, nil
	case zs.Zones > 0:
		// Round-robin over the TEC-covered units only; units the
		// deployment leaves uncovered (the caches) ride along in zone 0,
		// since a zone without a single TEC module is unactuatable and the
		// model rejects it. Zone counts the floorplan still cannot support
		// (tiny units owning no chip cell) surface as the model's own
		// validation error.
		uncovered := make(map[string]bool, len(e.cfg.TEC.Uncovered))
		for _, name := range e.cfg.TEC.Uncovered {
			uncovered[name] = true
		}
		units := e.cfg.Floorplan.Units()
		covered := 0
		for _, u := range units {
			if !uncovered[u.Name] {
				covered++
			}
		}
		if zs.Zones > covered {
			return nil, 0, fmt.Errorf("serve: %d zones exceed the floorplan's %d TEC-covered units", zs.Zones, covered)
		}
		assign := make(map[string]int, len(units))
		i := 0
		for _, u := range units {
			if uncovered[u.Name] {
				assign[u.Name] = 0
				continue
			}
			assign[u.Name] = i % zs.Zones
			i++
		}
		return assign, zs.Zones, nil
	default:
		return nil, 0, fmt.Errorf("serve: zoning spec selects nothing (set zones, clusters, or zone_of)")
	}
}
