package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"oftec/internal/experiments"
	"oftec/internal/units"
	"oftec/internal/workload"
)

// post drives the handler directly: no sockets, so concurrency tests
// measure the service layer, not the TCP stack.
func post(t *testing.T, h http.Handler, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(b))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec
}

func decodeBody[T any](t *testing.T, rec *httptest.ResponseRecorder) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatalf("decoding %q: %v", rec.Body.String(), err)
	}
	return v
}

// TestEvaluateScalar checks the served steady state against a direct
// library evaluation of the same chip.
func TestEvaluateScalar(t *testing.T) {
	s := New(Options{})
	h := s.Handler()

	rec := post(t, h, "/v1/evaluate", EvaluateRequest{OmegaRPM: 3000, ITecA: 2})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	got := decodeBody[EvaluateResponse](t, rec)

	spec := ChipSpec{}
	cfg, err := spec.config()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := experiments.Setup{Config: cfg, Benchmarks: workload.All()}.System("Basicmath")
	if err != nil {
		t.Fatal(err)
	}
	want, err := sys.Evaluate(units.RPMToRadPerSec(3000), 2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Runaway {
		t.Fatal("unexpected runaway at 3000 RPM")
	}
	if diff := math.Abs(got.MaxTempC - units.KToC(want.MaxChipTemp)); diff > 1e-9 {
		t.Errorf("MaxTempC = %g, want %g (diff %g)", got.MaxTempC, units.KToC(want.MaxChipTemp), diff)
	}
	if diff := math.Abs(got.CoolingPowerW - want.CoolingPower()); diff > 1e-9 {
		t.Errorf("CoolingPowerW = %g, want %g", got.CoolingPowerW, want.CoolingPower())
	}
	if got.MeetsConstraint != want.MeetsConstraint(cfg.TMax) {
		t.Errorf("MeetsConstraint = %t, want %t", got.MeetsConstraint, want.MeetsConstraint(cfg.TMax))
	}
}

// TestEvaluateZonedWideCached exercises the k > maxInlineK wide-key
// path through the full HTTP stack: 16 zones over the EV6's 18 units,
// where a repeat request must hit the cache, not re-solve.
func TestEvaluateZonedWideCached(t *testing.T) {
	s := New(Options{})
	h := s.Handler()

	// Nine zones: above maxInlineK (8), so the cache takes the wide-key
	// path, while round-robin still gives every zone two units (and so at
	// least one TEC module) on the 18-unit EV6.
	currents := make([]float64, 9)
	for i := range currents {
		currents[i] = 0.5 + 0.1*float64(i)
	}
	req := EvaluateRequest{
		OmegaRPM:  4000,
		CurrentsA: currents,
		Zoning:    &ZoneSpec{Zones: 9},
	}
	rec := post(t, h, "/v1/evaluate", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	first := decodeBody[EvaluateResponse](t, rec)
	before := s.cache.Stats()

	rec = post(t, h, "/v1/evaluate", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("repeat status %d: %s", rec.Code, rec.Body.String())
	}
	second := decodeBody[EvaluateResponse](t, rec)
	after := s.cache.Stats()

	if after.Misses != before.Misses {
		t.Errorf("repeat request missed the cache: misses %d → %d", before.Misses, after.Misses)
	}
	if after.Hits != before.Hits+1 {
		t.Errorf("repeat request: hits %d → %d, want +1", before.Hits, after.Hits)
	}
	if first.MaxTempC != second.MaxTempC {
		t.Errorf("cached answer differs: %g vs %g", first.MaxTempC, second.MaxTempC)
	}
}

// TestModelPoolSingleflight races many cold requests for one chip: the
// pool must build exactly one model and share it.
func TestModelPoolSingleflight(t *testing.T) {
	s := New(Options{})
	h := s.Handler()

	const n = 8
	var wg sync.WaitGroup
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := post(t, h, "/v1/evaluate", EvaluateRequest{OmegaRPM: 2000 + 100*float64(i), ITecA: 1})
			codes[i] = rec.Code
		}(i)
	}
	wg.Wait()
	for i, c := range codes {
		if c != http.StatusOK {
			t.Errorf("request %d: status %d", i, c)
		}
	}
	if builds := s.pool.builds.Load(); builds != 1 {
		t.Errorf("pool built %d models for one chip, want 1", builds)
	}
	if size := s.pool.size(); size != 1 {
		t.Errorf("pool holds %d entries, want 1", size)
	}
}

// TestConcurrentEvaluatesCoalesce checks cross-request coalescing: M
// identical cold evaluates produce exactly one backend solve — one miss,
// with the other M−1 served as hits or singleflight waits.
func TestConcurrentEvaluatesCoalesce(t *testing.T) {
	s := New(Options{})
	h := s.Handler()

	// Warm the model pool so the race below is about the cache only.
	if rec := post(t, h, "/v1/evaluate", EvaluateRequest{OmegaRPM: 1000, ITecA: 0}); rec.Code != http.StatusOK {
		t.Fatalf("warmup: status %d: %s", rec.Code, rec.Body.String())
	}
	before := s.cache.Stats()

	const m = 8
	var wg sync.WaitGroup
	for i := 0; i < m; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := post(t, h, "/v1/evaluate", EvaluateRequest{OmegaRPM: 3456, ITecA: 1.5})
			if rec.Code != http.StatusOK {
				t.Errorf("status %d: %s", rec.Code, rec.Body.String())
			}
		}()
	}
	wg.Wait()
	after := s.cache.Stats()

	if misses := after.Misses - before.Misses; misses != 1 {
		t.Errorf("%d misses for %d identical requests, want 1", misses, m)
	}
	if served := (after.Hits - before.Hits) + (after.Waits - before.Waits); served != m-1 {
		t.Errorf("hits+waits = %d, want %d", served, m-1)
	}
}

// TestAdmissionControl pins the throttle path: with every slot taken, a
// request is refused with 429 and a Retry-After hint, while /healthz and
// /stats stay reachable.
func TestAdmissionControl(t *testing.T) {
	s := New(Options{MaxInflight: 1, AdmitWait: time.Millisecond})
	h := s.Handler()

	s.sem <- struct{}{} // occupy the only slot
	rec := post(t, h, "/v1/evaluate", EvaluateRequest{OmegaRPM: 2000})
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated server answered %d, want 429", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After")
	}
	if rec := get(t, h, "/healthz"); rec.Code != http.StatusOK {
		t.Errorf("healthz blocked by admission control: %d", rec.Code)
	}
	if rec := get(t, h, "/stats"); rec.Code != http.StatusOK {
		t.Errorf("stats blocked by admission control: %d", rec.Code)
	}
	<-s.sem

	rec = post(t, h, "/v1/evaluate", EvaluateRequest{OmegaRPM: 2000})
	if rec.Code != http.StatusOK {
		t.Fatalf("freed server answered %d: %s", rec.Code, rec.Body.String())
	}
	stats := decodeBody[StatsResponse](t, get(t, h, "/stats"))
	if stats.Req.Throttled != 1 {
		t.Errorf("throttled = %d, want 1", stats.Req.Throttled)
	}
}

// TestOptimizeDeadline drives an optimize whose request context is
// already cancelled: the cancellation must propagate into the solver and
// the request return immediately — either 200 carrying a cancelled stop
// reason (best-so-far semantics) or 504 if the run produced nothing. A
// live timeout_ms is the same plumbing with a timer in front; a
// pre-cancelled parent makes the race deterministic under test.
func TestOptimizeDeadline(t *testing.T) {
	s := New(Options{})
	h := s.Handler()

	// Warm the model pool so cancellation hits the solve, not the build.
	if rec := post(t, h, "/v1/evaluate", EvaluateRequest{OmegaRPM: 2000}); rec.Code != http.StatusOK {
		t.Fatalf("warmup: status %d", rec.Code)
	}

	b, err := json.Marshal(OptimizeRequest{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost, "/v1/optimize", bytes.NewReader(b)).WithContext(ctx)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)

	switch rec.Code {
	case http.StatusOK:
		resp := decodeBody[OptimizeResponse](t, rec)
		cancelled := strings.Contains(resp.Opt1Stopped, "cancelled") ||
			strings.Contains(resp.Opt2Stopped, "cancelled")
		if !cancelled {
			t.Errorf("cancelled run reported stops %q/%q, want a cancelled phase",
				resp.Opt1Stopped, resp.Opt2Stopped)
		}
	case http.StatusGatewayTimeout, http.StatusTooManyRequests:
		// The context died before the solve produced anything (admission
		// itself may also observe the dead context).
	default:
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
}

// TestOptimizeFull runs a real (unbounded) optimize and sanity-checks
// the operating point against the chip's limits.
func TestOptimizeFull(t *testing.T) {
	s := New(Options{})
	h := s.Handler()

	rec := post(t, h, "/v1/optimize", OptimizeRequest{Chip: ChipSpec{Bench: "CRC32"}})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	resp := decodeBody[OptimizeResponse](t, rec)
	if !resp.Feasible {
		t.Fatalf("CRC32 at service resolution should be feasible: %+v", resp)
	}
	spec := ChipSpec{}
	cfg, err := spec.config()
	if err != nil {
		t.Fatal(err)
	}
	if resp.OmegaRPM < 0 || resp.OmegaRPM > units.RadPerSecToRPM(cfg.Fan.OmegaMax)+1 {
		t.Errorf("ω* = %g RPM outside [0, max]", resp.OmegaRPM)
	}
	if resp.MaxTempC >= units.KToC(cfg.TMax) {
		t.Errorf("T* = %g °C not under the %g °C threshold", resp.MaxTempC, units.KToC(cfg.TMax))
	}
	if resp.FuncEvals <= 0 {
		t.Error("no function evaluations reported")
	}
}

// TestOptimizeStream reads the chunked NDJSON: at least one trace line,
// then exactly one terminal outcome line.
func TestOptimizeStream(t *testing.T) {
	s := New(Options{})
	h := s.Handler()

	rec := post(t, h, "/v1/optimize", OptimizeRequest{Stream: true})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	var traces, outcomes int
	var final StreamLine
	sc := bufio.NewScanner(rec.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var line StreamLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch {
		case line.Trace != nil:
			traces++
			if outcomes != 0 {
				t.Error("trace line after the terminal line")
			}
		case line.Outcome != nil:
			outcomes++
			final = line
		case line.Error != "":
			t.Fatalf("stream error: %s", line.Error)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if traces == 0 {
		t.Error("stream carried no trace records")
	}
	if outcomes != 1 {
		t.Fatalf("stream carried %d outcome lines, want 1", outcomes)
	}
	if !final.Outcome.Feasible {
		t.Errorf("streamed optimize infeasible: %+v", final.Outcome)
	}
}

// TestSweep samples a small grid twice; the repeat must be served
// entirely from the cache.
func TestSweep(t *testing.T) {
	s := New(Options{})
	h := s.Handler()

	req := SweepRequest{NOmega: 4, NI: 4}
	rec := post(t, h, "/v1/sweep", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	resp := decodeBody[SweepResponse](t, rec)
	if len(resp.Points) != 16 {
		t.Fatalf("%d points, want 16", len(resp.Points))
	}
	sawLive := false
	for _, p := range resp.Points {
		if !p.Runaway {
			sawLive = true
			if p.MaxTempC <= 0 {
				t.Errorf("live point (%g RPM, %g A) with MaxTempC %g", p.OmegaRPM, p.ITecA, p.MaxTempC)
			}
		}
	}
	if !sawLive {
		t.Error("every grid point claims runaway")
	}

	before := s.cache.Stats()
	if rec := post(t, h, "/v1/sweep", req); rec.Code != http.StatusOK {
		t.Fatalf("repeat status %d", rec.Code)
	}
	after := s.cache.Stats()
	if after.Misses != before.Misses {
		t.Errorf("repeat sweep re-solved: misses %d → %d", before.Misses, after.Misses)
	}

	if rec := post(t, h, "/v1/sweep", SweepRequest{NOmega: 100, NI: 100}); rec.Code != http.StatusBadRequest {
		t.Errorf("oversized grid answered %d, want 400", rec.Code)
	}
}

// TestPareto traces a two-threshold front end to end.
func TestPareto(t *testing.T) {
	s := New(Options{})
	h := s.Handler()

	rec := post(t, h, "/v1/pareto", ParetoRequest{TMaxC: []float64{90, 80}})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	resp := decodeBody[ParetoResponse](t, rec)
	if len(resp.Points) != 2 {
		t.Fatalf("%d points, want 2", len(resp.Points))
	}
	if resp.Points[0].TMaxC < resp.Points[1].TMaxC {
		t.Error("front not in descending threshold order")
	}
	if p := resp.Points[0]; !p.Feasible {
		t.Errorf("90 °C threshold infeasible at service resolution: %+v", p)
	}
	if resp.Points[0].Feasible && resp.Points[1].Feasible &&
		resp.Points[1].PowerW < resp.Points[0].PowerW-1e-6 {
		t.Errorf("tighter threshold cheaper: %g W under 80 °C vs %g W under 90 °C",
			resp.Points[1].PowerW, resp.Points[0].PowerW)
	}
}

// TestBadRequests pins the 400 surface.
func TestBadRequests(t *testing.T) {
	s := New(Options{})
	h := s.Handler()

	cases := []struct {
		name string
		path string
		body any
	}{
		{"unknown bench", "/v1/evaluate", EvaluateRequest{Chip: ChipSpec{Bench: "NoSuch"}}},
		{"negative omega", "/v1/evaluate", EvaluateRequest{OmegaRPM: -1}},
		{"over-max omega", "/v1/evaluate", EvaluateRequest{OmegaRPM: 1e9}},
		{"currents without zoning", "/v1/evaluate", EvaluateRequest{OmegaRPM: 2000, CurrentsA: []float64{1, 2}}},
		{"current count mismatch", "/v1/evaluate", EvaluateRequest{OmegaRPM: 2000, CurrentsA: []float64{1}, Zoning: &ZoneSpec{Zones: 3}}},
		{"too many zones", "/v1/evaluate", EvaluateRequest{OmegaRPM: 2000, CurrentsA: make([]float64, 99), Zoning: &ZoneSpec{Zones: 99}}},
		{"empty zoning", "/v1/evaluate", EvaluateRequest{OmegaRPM: 2000, CurrentsA: []float64{1}, Zoning: &ZoneSpec{}}},
		{"unknown mode", "/v1/optimize", OptimizeRequest{Mode: "nope"}},
		{"unknown method", "/v1/optimize", OptimizeRequest{Method: "nope"}},
		{"tiny grid", "/v1/sweep", SweepRequest{NOmega: 1, NI: 1}},
		{"empty pareto", "/v1/pareto", ParetoRequest{}},
		{"unknown field", "/v1/evaluate", map[string]any{"omega_rpm": 2000, "bogus": true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := post(t, h, tc.path, tc.body)
			if rec.Code != http.StatusBadRequest {
				t.Errorf("status %d, want 400: %s", rec.Code, rec.Body.String())
			}
			var eb errorBody
			if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil || eb.Error == "" {
				t.Errorf("400 without an error body: %q", rec.Body.String())
			}
		})
	}
}

// TestPoolFull caps the model pool and checks the 503 path.
func TestPoolFull(t *testing.T) {
	s := New(Options{MaxModels: 1})
	h := s.Handler()

	if rec := post(t, h, "/v1/evaluate", EvaluateRequest{OmegaRPM: 2000}); rec.Code != http.StatusOK {
		t.Fatalf("first chip: status %d", rec.Code)
	}
	rec := post(t, h, "/v1/evaluate", EvaluateRequest{Chip: ChipSpec{Bench: "FFT"}, OmegaRPM: 2000})
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("second chip on a full pool answered %d, want 503", rec.Code)
	}
}

// TestClusterZoning drives the canonical 3-zone layout through the API
// and checks the k=3 point agrees with a direct zoned evaluation.
func TestClusterZoning(t *testing.T) {
	s := New(Options{})
	h := s.Handler()

	req := EvaluateRequest{
		OmegaRPM:  4000,
		CurrentsA: []float64{1, 1.5, 2},
		Zoning:    &ZoneSpec{Clusters: true},
	}
	rec := post(t, h, "/v1/evaluate", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	got := decodeBody[EvaluateResponse](t, rec)
	if got.Runaway {
		t.Fatal("unexpected runaway")
	}
	if got.MaxTempC <= 0 {
		t.Errorf("MaxTempC = %g", got.MaxTempC)
	}
	// Repeat with a permuted spelling of the same explicit assignment:
	// the zoning memoization must treat it as the same zoning.
	before := s.cache.Stats()
	if rec := post(t, h, "/v1/evaluate", req); rec.Code != http.StatusOK {
		t.Fatalf("repeat status %d", rec.Code)
	}
	after := s.cache.Stats()
	if after.Misses != before.Misses {
		t.Errorf("repeat cluster request re-solved: misses %d → %d", before.Misses, after.Misses)
	}
}

func TestStatsShape(t *testing.T) {
	s := New(Options{})
	h := s.Handler()

	post(t, h, "/v1/evaluate", EvaluateRequest{OmegaRPM: 2000, ITecA: 1})
	stats := decodeBody[StatsResponse](t, get(t, h, "/stats"))
	if stats.Pool.Models != 1 || stats.Pool.Builds != 1 {
		t.Errorf("pool stats %+v, want 1 model / 1 build", stats.Pool)
	}
	if stats.Req.Total != 1 || stats.Req.Evaluate != 1 {
		t.Errorf("request stats %+v", stats.Req)
	}
	if stats.Cache.Misses == 0 {
		t.Errorf("cache stats %+v, want at least one miss", stats.Cache)
	}
	if stats.Cache.Capacity <= 0 {
		t.Errorf("cache capacity %d", stats.Cache.Capacity)
	}
	if stats.Req.InFlight != 0 {
		t.Errorf("in-flight %d at rest", stats.Req.InFlight)
	}
}

// TestDistinctChipsDistinctModels checks the pool keys on the full
// config: two specs differing only in ambient get separate models, and
// their coincident operating points do not alias in the shared cache.
func TestDistinctChipsDistinctModels(t *testing.T) {
	s := New(Options{})
	h := s.Handler()

	a := post(t, h, "/v1/evaluate", EvaluateRequest{OmegaRPM: 3000, ITecA: 1})
	b := post(t, h, "/v1/evaluate", EvaluateRequest{Chip: ChipSpec{AmbientC: 35}, OmegaRPM: 3000, ITecA: 1})
	if a.Code != http.StatusOK || b.Code != http.StatusOK {
		t.Fatalf("statuses %d/%d", a.Code, b.Code)
	}
	if s.pool.size() != 2 {
		t.Fatalf("pool holds %d entries, want 2", s.pool.size())
	}
	ra := decodeBody[EvaluateResponse](t, a)
	rb := decodeBody[EvaluateResponse](t, b)
	if ra.MaxTempC <= rb.MaxTempC {
		t.Errorf("45 °C ambient (%g °C) not hotter than 35 °C ambient (%g °C) — cache aliasing?",
			ra.MaxTempC, rb.MaxTempC)
	}
	if diff := ra.MaxTempC - rb.MaxTempC; math.Abs(diff-10) > 2 {
		t.Logf("ambient delta maps to %.2f °C chip delta", diff)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	s := New(Options{})
	h := s.Handler()
	rec := get(t, h, "/v1/evaluate")
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/evaluate answered %d, want 405", rec.Code)
	}
}
