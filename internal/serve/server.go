package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"oftec/internal/backend"
	"oftec/internal/core"
	"oftec/internal/evalcache"
)

// Options tunes a Server. The zero value selects service defaults.
type Options struct {
	// CacheCapacity is the shared evaluation cache's per-generation
	// capacity; zero selects the evalcache default.
	CacheCapacity int
	// MaxInflight bounds the number of working requests admitted at
	// once; beyond it requests wait AdmitWait for a slot and are then
	// refused with 429 + Retry-After. Zero selects 64.
	MaxInflight int
	// AdmitWait is how long an over-limit request waits for a slot
	// before being throttled. Zero selects 250ms.
	AdmitWait time.Duration
	// DefaultTimeout caps requests that set no timeout_ms. Zero selects
	// 30s.
	DefaultTimeout time.Duration
	// MaxTimeout clamps client-requested timeouts. Zero selects 2m.
	MaxTimeout time.Duration
	// MaxModels bounds the model pool; a request for a new chip beyond
	// it is refused with 503. Zero selects 64.
	MaxModels int
	// MaxGridPoints bounds sweep grids (n_omega × n_i). Zero selects
	// 4096.
	MaxGridPoints int
	// DisableBatch turns off blocked multi-RHS evaluation on every pooled
	// system: sweep rows and Pareto start priming fall back to per-point
	// solves. The batched path is the default; this is the escape hatch.
	DisableBatch bool
	// ROMCacheDir, when set, persists Galerkin ROM bases there so a
	// restarted server loads them instead of re-collecting snapshots.
	ROMCacheDir string
}

func (o Options) maxInflight() int {
	if o.MaxInflight > 0 {
		return o.MaxInflight
	}
	return 64
}

func (o Options) admitWait() time.Duration {
	if o.AdmitWait > 0 {
		return o.AdmitWait
	}
	return 250 * time.Millisecond
}

func (o Options) defaultTimeout() time.Duration {
	if o.DefaultTimeout > 0 {
		return o.DefaultTimeout
	}
	return 30 * time.Second
}

func (o Options) maxTimeout() time.Duration {
	if o.MaxTimeout > 0 {
		return o.MaxTimeout
	}
	return 2 * time.Minute
}

func (o Options) maxGridPoints() int {
	if o.MaxGridPoints > 0 {
		return o.MaxGridPoints
	}
	return 4096
}

// Server is the oftecd service core: the model pool, the shared
// evaluation cache, admission control, and the HTTP handlers. It carries
// no listener — cmd/oftecd owns the http.Server; tests drive the Handler
// through httptest.
type Server struct {
	opts  Options
	cache *evalcache.Cache
	pool  *pool
	sem   chan struct{}
	start time.Time

	inflight  atomic.Int64
	total     atomic.Int64
	errors    atomic.Int64
	throttled atomic.Int64
	evaluates atomic.Int64
	optimizes atomic.Int64
	sweeps    atomic.Int64
	paretos   atomic.Int64
}

// New builds a Server.
func New(opts Options) *Server {
	if opts.ROMCacheDir != "" {
		backend.SetROMCacheDir(opts.ROMCacheDir)
	}
	return &Server{
		opts:  opts,
		cache: evalcache.New(opts.CacheCapacity),
		pool:  newPool(opts.MaxModels, opts.DisableBatch),
		sem:   make(chan struct{}, opts.maxInflight()),
		start: time.Now(),
	}
}

// Cache exposes the shared evaluation cache (load harness and tests
// read its stats; cmd/oftecd logs them on shutdown).
func (s *Server) Cache() *evalcache.Cache { return s.cache }

// Handler returns the service's route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/evaluate", s.working(s.handleEvaluate, &s.evaluates))
	mux.HandleFunc("POST /v1/optimize", s.working(s.handleOptimize, &s.optimizes))
	mux.HandleFunc("POST /v1/sweep", s.working(s.handleSweep, &s.sweeps))
	mux.HandleFunc("POST /v1/pareto", s.working(s.handlePareto, &s.paretos))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /statz", s.handleStatz)
	return mux
}

// working wraps a solve-carrying handler with admission control and
// traffic accounting. /healthz and /stats bypass it: an operator must be
// able to observe a saturated server.
func (s *Server) working(h http.HandlerFunc, counter *atomic.Int64) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.total.Add(1)
		counter.Add(1)
		release, ok := s.admit(r.Context())
		if !ok {
			s.throttled.Add(1)
			w.Header().Set("Retry-After", s.retryAfter())
			s.writeError(w, http.StatusTooManyRequests, fmt.Errorf("serve: at capacity (%d in flight)", s.opts.maxInflight()))
			return
		}
		defer release()
		s.inflight.Add(1)
		defer s.inflight.Add(-1)
		h(w, r)
	}
}

// admit takes an in-flight slot, waiting up to AdmitWait. The bound is
// what keeps a traffic burst from stacking up thousands of concurrent
// solves: beyond MaxInflight the surplus parks here briefly (absorbing
// jitter without a client retry loop) and is then turned away cheaply.
func (s *Server) admit(ctx context.Context) (release func(), ok bool) {
	select {
	case s.sem <- struct{}{}:
	default:
		t := time.NewTimer(s.opts.admitWait())
		defer t.Stop()
		select {
		case s.sem <- struct{}{}:
		case <-t.C:
			return nil, false
		case <-ctx.Done():
			return nil, false
		}
	}
	return func() { <-s.sem }, true
}

// retryAfter estimates when a slot will free: one mean holding time,
// floored at 1s — coarse, but it spreads retries instead of
// synchronizing them.
func (s *Server) retryAfter() string {
	return strconv.Itoa(int(s.opts.admitWait()/time.Second) + 1)
}

// requestContext derives the per-request deadline: client timeout_ms,
// clamped to MaxTimeout, defaulting to DefaultTimeout, layered over the
// connection context so a disconnect cancels the solve at its next
// iteration boundary.
func (s *Server) requestContext(r *http.Request, timeoutMS int) (context.Context, context.CancelFunc) {
	d := s.opts.defaultTimeout()
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
	}
	if max := s.opts.maxTimeout(); d > max {
		d = max
	}
	return context.WithTimeout(r.Context(), d)
}

// decode strictly parses the request body.
func decode(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("serve: decoding request: %w", err)
	}
	return nil
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	//lint:ignore errdrop an encode failure here means the client hung up; there is no one left to tell
	_ = enc.Encode(v)
}

func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	if status >= 500 || status == http.StatusBadRequest {
		s.errors.Add(1)
	}
	s.writeJSON(w, status, errorBody{Error: err.Error()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, StatsResponse{
		UptimeS: time.Since(s.start).Seconds(),
		Pool:    s.poolStats(),
		Cache:   s.cacheStats(),
		Req:     s.reqStats(),
	})
}

// handleStatz is the live-counter superset of /stats: the same snapshot
// plus the blocked-evaluation traffic, served admission-exempt so a
// saturated or mid-sweep server stays observable.
func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	cs := s.cache.Stats()
	s.writeJSON(w, http.StatusOK, StatzResponse{
		UptimeS: time.Since(s.start).Seconds(),
		Pool:    s.poolStats(),
		Cache:   s.cacheStats(),
		Batch: BatchStats{
			Enabled:     !s.opts.DisableBatch,
			Batches:     cs.Batches,
			BatchPoints: cs.BatchPoints,
		},
		Req: s.reqStats(),
	})
}

func (s *Server) poolStats() PoolStats {
	return PoolStats{
		Models: s.pool.size(),
		Builds: s.pool.builds.Load(),
	}
}

func (s *Server) cacheStats() CacheStats {
	cs := s.cache.Stats()
	return CacheStats{
		Hits:       cs.Hits,
		Waits:      cs.Waits,
		Misses:     cs.Misses,
		Rotations:  cs.Rotations,
		Collisions: cs.Collisions,
		Len:        s.cache.Len(),
		Capacity:   s.cache.Capacity(),
	}
}

func (s *Server) reqStats() ReqStats {
	return ReqStats{
		Total:     s.total.Load(),
		Errors:    s.errors.Load(),
		Throttled: s.throttled.Load(),
		InFlight:  s.inflight.Load(),
		Evaluate:  s.evaluates.Load(),
		Optimize:  s.optimizes.Load(),
		Sweep:     s.sweeps.Load(),
		Pareto:    s.paretos.Load(),
	}
}

// system resolves a chip spec through the pool to its shared System,
// mapping pool conditions to HTTP statuses.
func (s *Server) system(spec ChipSpec) (*poolEntry, *core.System, int, error) {
	e, err := s.pool.lookup(spec)
	if err != nil {
		if err == errPoolFull {
			return nil, nil, http.StatusServiceUnavailable, err
		}
		return nil, nil, http.StatusBadRequest, err
	}
	sys, err := e.system(s.pool, s.cache)
	if err != nil {
		return nil, nil, http.StatusBadRequest, err
	}
	return e, sys, 0, nil
}
