// Package serve is the service layer behind cmd/oftecd: a stdlib-only
// HTTP front end that answers evaluate/optimize/sweep/Pareto queries over
// JSON for a fleet of chip configurations under concurrent traffic.
//
// The production concerns live here, decoupled from transport details so
// they are testable with httptest:
//
//   - A model pool keyed by a collision-checked hash of (benchmark,
//     backend, full thermal configuration), so concurrent requests for
//     one chip share a single assembled thermal.Model (and ROM basis)
//     behind one core.System — the model build itself is singleflighted.
//   - One shared internal/evalcache across every pooled system, so
//     cross-request duplicate operating points coalesce onto one solve
//     and the cache's capacity/eviction budget is global, not per chip.
//   - Admission control: a bounded number of in-flight working requests;
//     beyond it, requests wait briefly for a slot and are then refused
//     with 429 + Retry-After instead of piling up goroutines.
//   - Per-request deadlines riding the context plumbing: the solver
//     stops at the next iteration boundary and reports best-so-far.
//   - Streaming optimizer progress: per-iterate solver.TraceRecords as
//     chunked NDJSON, ahead of the final outcome.
package serve

import (
	"fmt"
	"sort"
	"strings"

	"oftec/internal/coolant"
	"oftec/internal/core"
	"oftec/internal/thermal"
	"oftec/internal/units"
	"oftec/internal/workload"
)

// ChipSpec identifies one chip configuration in the fleet. The zero value
// selects the paper's package at service resolution (chip 8, spreader 7,
// sink 6, PCB 4 cells per edge) under the Basicmath workload on the full
// backend.
type ChipSpec struct {
	// Bench is the workload name (Table 2 spelling); empty = Basicmath.
	Bench string `json:"bench,omitempty"`
	// Res overrides the chip-layer grid resolution (cells per edge).
	Res int `json:"res,omitempty"`
	// PaperRes selects the paper's full grid resolutions instead of the
	// reduced service default (Res still overrides the chip layer).
	PaperRes bool `json:"paper_res,omitempty"`
	// TMaxC overrides the thermal threshold, °C.
	TMaxC float64 `json:"tmax_c,omitempty"`
	// AmbientC overrides the ambient temperature, °C.
	AmbientC float64 `json:"ambient_c,omitempty"`
	// Backend names the evaluation backend ("full", "rom"); empty = full.
	Backend string `json:"backend,omitempty"`
	// Coolant names the cooling actuator variant ("air", "liquid",
	// "liquid-dc", "liquid-package"); empty = air, the paper's fan.
	Coolant string `json:"coolant,omitempty"`
}

// config materializes the spec into a validated thermal configuration.
func (c ChipSpec) config() (thermal.Config, error) {
	cfg := thermal.DefaultConfig()
	if !c.PaperRes {
		cfg.ChipRes = 8
		cfg.SpreaderRes = 7
		cfg.SinkRes = 6
		cfg.PCBRes = 4
	}
	if c.Res > 0 {
		cfg.ChipRes = c.Res
	}
	if c.TMaxC != 0 {
		cfg.TMax = units.CToK(c.TMaxC)
	}
	if c.AmbientC != 0 {
		cfg.Ambient = units.CToK(c.AmbientC)
	}
	spec, err := coolant.SpecByName(c.Coolant)
	if err != nil {
		return thermal.Config{}, err
	}
	cfg.Coolant = spec
	if err := cfg.Validate(); err != nil {
		return thermal.Config{}, err
	}
	return cfg, nil
}

// bench resolves the workload, defaulting to Basicmath.
func (c ChipSpec) bench() (workload.Benchmark, error) {
	name := c.Bench
	if name == "" {
		name = "Basicmath"
	}
	return workload.ByName(name)
}

// ZoneSpec selects a TEC control zoning for zoned requests. Exactly one
// of the three fields should be set.
type ZoneSpec struct {
	// Zones assigns floorplan units round-robin onto this many zones
	// (unit i → zone i mod Zones) — the uniform high-density layout.
	Zones int `json:"zones,omitempty"`
	// Clusters selects the canonical 3-zone EV6 clustering (cache
	// periphery / FP cluster / integer cluster).
	Clusters bool `json:"clusters,omitempty"`
	// ZoneOf is an explicit unit → zone assignment covering every unit.
	ZoneOf map[string]int `json:"zone_of,omitempty"`
}

// canon renders the spec canonically for memoization keys.
func (z *ZoneSpec) canon() string {
	switch {
	case z == nil:
		return "scalar"
	case len(z.ZoneOf) > 0:
		names := make([]string, 0, len(z.ZoneOf))
		for n := range z.ZoneOf {
			names = append(names, n)
		}
		sort.Strings(names)
		var b strings.Builder
		b.WriteString("explicit:")
		for _, n := range names {
			fmt.Fprintf(&b, "%s=%d,", n, z.ZoneOf[n])
		}
		return b.String()
	case z.Clusters:
		return "clusters"
	default:
		return fmt.Sprintf("rr:%d", z.Zones)
	}
}

// EvaluateRequest asks for one steady-state evaluation. Scalar requests
// set ITecA; zoned requests set CurrentsA plus Zoning (len(CurrentsA)
// must equal the zone count).
type EvaluateRequest struct {
	Chip      ChipSpec  `json:"chip"`
	OmegaRPM  float64   `json:"omega_rpm"`
	ITecA     float64   `json:"itec_a,omitempty"`
	CurrentsA []float64 `json:"currents_a,omitempty"`
	Zoning    *ZoneSpec `json:"zoning,omitempty"`
	TimeoutMS int       `json:"timeout_ms,omitempty"`
}

// EvaluateResponse is one steady state.
type EvaluateResponse struct {
	OmegaRPM        float64   `json:"omega_rpm"`
	ITecA           float64   `json:"itec_a,omitempty"`
	CurrentsA       []float64 `json:"currents_a,omitempty"`
	Runaway         bool      `json:"runaway"`
	MaxTempC        float64   `json:"max_temp_c,omitempty"`
	CoolingPowerW   float64   `json:"cooling_power_w,omitempty"`
	LeakageW        float64   `json:"leakage_w,omitempty"`
	TECW            float64   `json:"tec_w,omitempty"`
	FanW            float64   `json:"fan_w,omitempty"`
	MeetsConstraint bool      `json:"meets_constraint"`
}

// OptimizeRequest runs Algorithm 1 (or a baseline mode) on one chip.
type OptimizeRequest struct {
	Chip ChipSpec `json:"chip"`
	// Mode: "oftec" (default), "var", "fixed", "teconly".
	Mode string `json:"mode,omitempty"`
	// Method: "sqp" (default), "interior", "trust", "neldermead", "hooke".
	Method string `json:"method,omitempty"`
	// Zoning switches to zoned control (one current per zone).
	Zoning     *ZoneSpec `json:"zoning,omitempty"`
	MultiStart bool      `json:"multistart,omitempty"`
	Fallback   bool      `json:"fallback,omitempty"`
	WarmStart  bool      `json:"warmstart,omitempty"`
	// Opt2Only solves only the feasibility phase (minimize max temp).
	Opt2Only bool `json:"opt2_only,omitempty"`
	// Stream selects chunked NDJSON: per-iterate trace records, then the
	// final outcome.
	Stream    bool `json:"stream,omitempty"`
	TimeoutMS int  `json:"timeout_ms,omitempty"`
}

// OptimizeResponse reports the chosen operating point.
type OptimizeResponse struct {
	Feasible     bool      `json:"feasible"`
	FailedAtOpt2 bool      `json:"failed_at_opt2,omitempty"`
	OmegaRPM     float64   `json:"omega_rpm"`
	ITecA        float64   `json:"itec_a,omitempty"`
	CurrentsA    []float64 `json:"currents_a,omitempty"`
	MaxTempC     float64   `json:"max_temp_c,omitempty"`
	CoolingW     float64   `json:"cooling_power_w,omitempty"`
	MinMaxTempC  float64   `json:"min_max_temp_c,omitempty"`
	RuntimeMS    int64     `json:"runtime_ms"`
	FuncEvals    int       `json:"func_evals"`
	// Opt1Stopped / Opt2Stopped are the solver stop reasons ("converged",
	// "cancelled", ...; empty = phase not run). A request that hit its
	// deadline reports "cancelled" with the best point found so far.
	Opt1Stopped string `json:"opt1_stopped,omitempty"`
	Opt2Stopped string `json:"opt2_stopped,omitempty"`
}

// SweepRequest samples the 𝒯/𝒫 surfaces on an NOmega×NI grid.
type SweepRequest struct {
	Chip      ChipSpec `json:"chip"`
	NOmega    int      `json:"n_omega"`
	NI        int      `json:"n_i"`
	TimeoutMS int      `json:"timeout_ms,omitempty"`
}

// SweepPoint is one surface sample.
type SweepPoint struct {
	OmegaRPM float64 `json:"omega_rpm"`
	ITecA    float64 `json:"itec_a"`
	MaxTempC float64 `json:"max_temp_c,omitempty"`
	PowerW   float64 `json:"power_w,omitempty"`
	Runaway  bool    `json:"runaway,omitempty"`
}

// SweepResponse is the grid in row-major (ω, then I) order.
type SweepResponse struct {
	NOmega int          `json:"n_omega"`
	NI     int          `json:"n_i"`
	Points []SweepPoint `json:"points"`
}

// ParetoRequest traces the power/temperature trade-off over thresholds.
type ParetoRequest struct {
	Chip      ChipSpec  `json:"chip"`
	TMaxC     []float64 `json:"tmax_c"`
	Method    string    `json:"method,omitempty"`
	TimeoutMS int       `json:"timeout_ms,omitempty"`
}

// ParetoPointJSON is one threshold probe.
type ParetoPointJSON struct {
	TMaxC    float64 `json:"tmax_c"`
	Feasible bool    `json:"feasible"`
	PowerW   float64 `json:"power_w,omitempty"`
	MaxTempC float64 `json:"max_temp_c,omitempty"`
	OmegaRPM float64 `json:"omega_rpm,omitempty"`
	ITecA    float64 `json:"itec_a,omitempty"`
}

// ParetoResponse is the front in descending-threshold order.
type ParetoResponse struct {
	Points []ParetoPointJSON `json:"points"`
}

// StatsResponse is the /stats snapshot.
type StatsResponse struct {
	UptimeS float64    `json:"uptime_s"`
	Pool    PoolStats  `json:"pool"`
	Cache   CacheStats `json:"cache"`
	Req     ReqStats   `json:"requests"`
}

// StatzResponse is the /statz snapshot: /stats plus the blocked
// multi-RHS evaluation counters.
type StatzResponse struct {
	UptimeS float64    `json:"uptime_s"`
	Pool    PoolStats  `json:"pool"`
	Cache   CacheStats `json:"cache"`
	Batch   BatchStats `json:"batch"`
	Req     ReqStats   `json:"requests"`
}

// BatchStats describes blocked multi-RHS evaluation traffic.
type BatchStats struct {
	// Enabled is false when the server runs with DisableBatch.
	Enabled bool `json:"enabled"`
	// Batches counts EvaluateBatch calls that reached the shared cache.
	Batches int64 `json:"batches"`
	// BatchPoints is the total operating points submitted in them; each
	// point still lands in the cache's hits/waits/misses.
	BatchPoints int64 `json:"batch_points"`
}

// PoolStats describes the model pool.
type PoolStats struct {
	// Models is the number of resident (floorplan, config) entries.
	Models int `json:"models"`
	// Builds counts model constructions — with pooling it stays at one
	// per distinct chip no matter how many requests raced on admission.
	Builds int64 `json:"builds"`
}

// CacheStats mirrors evalcache.Stats plus occupancy.
type CacheStats struct {
	Hits       int64 `json:"hits"`
	Waits      int64 `json:"waits"`
	Misses     int64 `json:"misses"`
	Rotations  int64 `json:"rotations"`
	Collisions int64 `json:"collisions"`
	Len        int   `json:"len"`
	Capacity   int   `json:"capacity"`
}

// ReqStats counts request traffic.
type ReqStats struct {
	Total     int64 `json:"total"`
	Errors    int64 `json:"errors"`
	Throttled int64 `json:"throttled"`
	InFlight  int64 `json:"in_flight"`
	Evaluate  int64 `json:"evaluate"`
	Optimize  int64 `json:"optimize"`
	Sweep     int64 `json:"sweep"`
	Pareto    int64 `json:"pareto"`
}

// errorBody is the uniform error payload.
type errorBody struct {
	Error string `json:"error"`
}

// parseMode mirrors cmd/oftec's -mode spellings.
func parseMode(s string) (core.Mode, error) {
	switch s {
	case "", "oftec":
		return core.ModeHybrid, nil
	case "var":
		return core.ModeVariableFan, nil
	case "fixed":
		return core.ModeFixedFan, nil
	case "teconly":
		return core.ModeTECOnly, nil
	default:
		return 0, fmt.Errorf("serve: unknown mode %q (want oftec, var, fixed, teconly)", s)
	}
}

// parseMethod mirrors cmd/oftec's -method spellings.
func parseMethod(s string) (core.Method, error) {
	switch s {
	case "", "sqp":
		return core.MethodSQP, nil
	case "interior":
		return core.MethodInteriorPoint, nil
	case "trust":
		return core.MethodTrustRegion, nil
	case "neldermead":
		return core.MethodNelderMead, nil
	case "hooke":
		return core.MethodHookeJeeves, nil
	default:
		return 0, fmt.Errorf("serve: unknown method %q (want sqp, interior, trust, neldermead, hooke)", s)
	}
}
