package serve

import (
	"context"
	"fmt"
	"math"
	"net/http"

	"oftec/internal/core"
	"oftec/internal/experiments"
	"oftec/internal/solver"
	"oftec/internal/thermal"
	"oftec/internal/units"
)

// fin maps non-finite values (runaway temperatures, +Inf powers) to 0 so
// JSON marshalling never fails; responses carry an explicit Runaway flag
// instead, and zero-valued fields are omitted.
func fin(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	var req EvaluateRequest
	if err := decode(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	entry, sys, status, err := s.system(req.Chip)
	if err != nil {
		s.writeError(w, status, err)
		return
	}
	cfg := sys.Config()
	if req.OmegaRPM < 0 {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("serve: omega_rpm %g is negative", req.OmegaRPM))
		return
	}
	omega := units.RPMToRadPerSec(req.OmegaRPM)
	if omega > cfg.UMax()*(1+1e-9) {
		s.writeError(w, http.StatusBadRequest,
			fmt.Errorf("serve: omega_rpm %g exceeds the fan maximum %g RPM",
				req.OmegaRPM, units.RadPerSecToRPM(cfg.UMax())))
		return
	}

	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()

	var res *thermal.Result
	switch {
	case req.Zoning == nil && len(req.CurrentsA) == 0:
		res, err = sys.EvaluateContext(ctx, omega, req.ITecA)
	case req.Zoning == nil:
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("serve: currents_a needs a zoning"))
		return
	default:
		var zoning *thermal.Zoning
		zoning, err = entry.zoning(sys, req.Zoning)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, err)
			return
		}
		if len(req.CurrentsA) != zoning.NumZones() {
			s.writeError(w, http.StatusBadRequest,
				fmt.Errorf("serve: %d currents for %d zones", len(req.CurrentsA), zoning.NumZones()))
			return
		}
		res, err = sys.EvaluateZonedContext(ctx, zoning, omega, req.CurrentsA)
	}
	if err != nil {
		s.writeError(w, solveStatus(ctx), err)
		return
	}

	resp := EvaluateResponse{
		OmegaRPM:        req.OmegaRPM,
		ITecA:           req.ITecA,
		CurrentsA:       req.CurrentsA,
		Runaway:         res.Runaway,
		MeetsConstraint: res.MeetsConstraint(cfg.TMax),
	}
	if !res.Runaway {
		resp.MaxTempC = fin(units.KToC(res.MaxChipTemp))
		resp.CoolingPowerW = fin(res.CoolingPower())
		resp.LeakageW = fin(res.PLeakage)
		resp.TECW = fin(res.PTEC)
		resp.FanW = fin(res.PFan)
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// solveStatus distinguishes a deadline-killed solve (504) from a genuine
// evaluation failure (500).
func solveStatus(ctx context.Context) int {
	if ctx.Err() != nil {
		return http.StatusGatewayTimeout
	}
	return http.StatusInternalServerError
}

// optimizeOptions translates the wire request into core.Options.
func optimizeOptions(ctx context.Context, req OptimizeRequest) (core.Options, error) {
	mode, err := parseMode(req.Mode)
	if err != nil {
		return core.Options{}, err
	}
	method, err := parseMethod(req.Method)
	if err != nil {
		return core.Options{}, err
	}
	return core.Options{
		Mode:       mode,
		Method:     method,
		MultiStart: req.MultiStart,
		Fallback:   req.Fallback,
		WarmStart:  req.WarmStart,
		SkipOpt1:   req.Opt2Only,
		Solver:     solver.Options{Ctx: ctx},
	}, nil
}

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	var req OptimizeRequest
	if err := decode(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	entry, sys, status, err := s.system(req.Chip)
	if err != nil {
		s.writeError(w, status, err)
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()
	opts, err := optimizeOptions(ctx, req)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	var zoning *thermal.Zoning
	if req.Zoning != nil {
		if zoning, err = entry.zoning(sys, req.Zoning); err != nil {
			s.writeError(w, http.StatusBadRequest, err)
			return
		}
	}

	if req.Stream {
		s.streamOptimize(ctx, w, sys, zoning, opts)
		return
	}

	resp, err := runOptimize(sys, zoning, opts)
	if err != nil {
		s.writeError(w, solveStatus(ctx), err)
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// runOptimize dispatches the scalar or zoned run and folds both outcome
// shapes into the wire response. A deadline that fires mid-solve is not
// an error: the solver stops at its next iteration boundary and the
// response reports the best-so-far point with stop reason "cancelled".
func runOptimize(sys *core.System, zoning *thermal.Zoning, opts core.Options) (OptimizeResponse, error) {
	if zoning != nil {
		out, err := sys.RunZoned(zoning, opts)
		if err != nil {
			return OptimizeResponse{}, err
		}
		resp := OptimizeResponse{
			Feasible:     out.Feasible,
			FailedAtOpt2: out.FailedAtOpt2,
			OmegaRPM:     fin(units.RadPerSecToRPM(out.Omega)),
			CurrentsA:    out.Currents,
			MinMaxTempC:  fin(units.KToC(out.MinMaxTemp)),
			RuntimeMS:    out.Runtime.Milliseconds(),
			FuncEvals:    out.Report.FuncEvals + out.Opt2Report.FuncEvals,
			Opt1Stopped:  stopName(out.Report.Stopped),
			Opt2Stopped:  stopName(out.Opt2Report.Stopped),
		}
		if out.Result != nil && !out.Result.Runaway {
			resp.MaxTempC = fin(units.KToC(out.Result.MaxChipTemp))
			resp.CoolingW = fin(out.Result.CoolingPower())
		}
		return resp, nil
	}
	out, err := sys.Run(opts)
	if err != nil {
		return OptimizeResponse{}, err
	}
	resp := OptimizeResponse{
		Feasible:     out.Feasible,
		FailedAtOpt2: out.FailedAtOpt2,
		OmegaRPM:     fin(units.RadPerSecToRPM(out.Omega)),
		ITecA:        fin(out.ITEC),
		MinMaxTempC:  fin(units.KToC(out.MinMaxTemp)),
		RuntimeMS:    out.Runtime.Milliseconds(),
		FuncEvals:    out.Opt1Report.FuncEvals + out.Opt2Report.FuncEvals,
		Opt1Stopped:  stopName(out.Opt1Report.Stopped),
		Opt2Stopped:  stopName(out.Opt2Report.Stopped),
	}
	if out.Result != nil && !out.Result.Runaway {
		resp.MaxTempC = fin(units.KToC(out.Result.MaxChipTemp))
		resp.CoolingW = fin(out.Result.CoolingPower())
	}
	return resp, nil
}

// stopName renders a stop reason, mapping the unset zero value (phase
// not run) to the empty string so it is omitted from the JSON.
func stopName(s solver.StopReason) string {
	if s == solver.StopUnset {
		return ""
	}
	return s.String()
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := decode(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.NOmega < 2 || req.NI < 2 {
		s.writeError(w, http.StatusBadRequest,
			fmt.Errorf("serve: sweep grid %d×%d must be at least 2×2", req.NOmega, req.NI))
		return
	}
	if pts := req.NOmega * req.NI; pts > s.opts.maxGridPoints() {
		s.writeError(w, http.StatusBadRequest,
			fmt.Errorf("serve: sweep grid %d×%d exceeds the %d-point limit", req.NOmega, req.NI, s.opts.maxGridPoints()))
		return
	}
	_, sys, status, err := s.system(req.Chip)
	if err != nil {
		s.writeError(w, status, err)
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()

	pts, err := experiments.SurfaceSystem(ctx, sys, req.NOmega, req.NI, 0)
	if err != nil {
		s.writeError(w, solveStatus(ctx), err)
		return
	}
	resp := SweepResponse{NOmega: req.NOmega, NI: req.NI, Points: make([]SweepPoint, len(pts))}
	for i, p := range pts {
		sp := SweepPoint{
			OmegaRPM: fin(units.RadPerSecToRPM(p.Omega)),
			ITecA:    fin(p.ITEC),
			Runaway:  p.Runaway,
		}
		if !p.Runaway {
			sp.MaxTempC = fin(units.KToC(p.MaxTemp))
			sp.PowerW = fin(p.Power)
		}
		resp.Points[i] = sp
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handlePareto(w http.ResponseWriter, r *http.Request) {
	var req ParetoRequest
	if err := decode(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.TMaxC) == 0 {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("serve: pareto needs at least one tmax_c threshold"))
		return
	}
	_, sys, status, err := s.system(req.Chip)
	if err != nil {
		s.writeError(w, status, err)
		return
	}
	method, err := parseMethod(req.Method)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()

	thresholds := make([]float64, len(req.TMaxC))
	for i, c := range req.TMaxC {
		thresholds[i] = units.CToK(c)
	}
	front, err := sys.ParetoFront(thresholds, core.Options{
		Mode:   core.ModeHybrid,
		Method: method,
		Solver: solver.Options{Ctx: ctx},
	})
	if err != nil {
		s.writeError(w, solveStatus(ctx), err)
		return
	}
	resp := ParetoResponse{Points: make([]ParetoPointJSON, len(front))}
	for i, p := range front {
		pj := ParetoPointJSON{TMaxC: fin(units.KToC(p.TMax)), Feasible: p.Feasible}
		if p.Feasible {
			pj.PowerW = fin(p.Power)
			pj.MaxTempC = fin(units.KToC(p.MaxTemp))
			pj.OmegaRPM = fin(units.RadPerSecToRPM(p.Omega))
			pj.ITecA = fin(p.ITEC)
		}
		resp.Points[i] = pj
	}
	s.writeJSON(w, http.StatusOK, resp)
}
