package power

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTraceAppendOrdering(t *testing.T) {
	var tr Trace
	if err := tr.Append(0, Map{"a": 1}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Append(1, Map{"a": 2}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Append(1, Map{"a": 3}); err == nil {
		t.Error("duplicate timestamp accepted")
	}
	if err := tr.Append(0.5, Map{"a": 3}); err == nil {
		t.Error("out-of-order timestamp accepted")
	}
	if err := tr.Append(2, nil); err == nil {
		t.Error("nil map accepted")
	}
	if tr.Len() != 2 {
		t.Errorf("Len = %d, want 2", tr.Len())
	}
	if tr.Duration() != 1 {
		t.Errorf("Duration = %g, want 1", tr.Duration())
	}
}

func TestTraceAppendIsolation(t *testing.T) {
	var tr Trace
	m := Map{"a": 1}
	if err := tr.Append(0, m); err != nil {
		t.Fatal(err)
	}
	m["a"] = 99 // mutate after append
	got, err := tr.At(0)
	if err != nil {
		t.Fatal(err)
	}
	if got["a"] != 1 {
		t.Error("trace aliases caller's map")
	}
}

func TestTraceAtZeroOrderHold(t *testing.T) {
	var tr Trace
	for i, p := range []float64{10, 20, 30} {
		if err := tr.Append(float64(i), Map{"a": p}); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct{ t, want float64 }{
		{-1, 10}, // before start: first sample
		{0, 10},
		{0.5, 10},
		{1, 20},
		{1.99, 20},
		{2, 30},
		{99, 30},
	}
	for _, c := range cases {
		m, err := tr.At(c.t)
		if err != nil {
			t.Fatal(err)
		}
		if m["a"] != c.want {
			t.Errorf("At(%g) = %g, want %g", c.t, m["a"], c.want)
		}
	}
	var empty Trace
	if _, err := empty.At(0); err == nil {
		t.Error("At on empty trace accepted")
	}
}

func TestMaxAndMeanMap(t *testing.T) {
	var tr Trace
	samples := []Map{
		{"alu": 3, "cache": 1},
		{"alu": 5, "cache": 0.5},
		{"alu": 2, "cache": 2},
	}
	for i, m := range samples {
		if err := tr.Append(float64(i), m); err != nil {
			t.Fatal(err)
		}
	}
	maxm := tr.MaxMap()
	if maxm["alu"] != 5 || maxm["cache"] != 2 {
		t.Errorf("MaxMap = %v", maxm)
	}
	mean := tr.MeanMap()
	if mean["alu"] <= 2 || mean["alu"] >= 5 {
		t.Errorf("MeanMap[alu] = %g, want strictly inside (2, 5)", mean["alu"])
	}
	tPeak, wPeak := tr.PeakTotal()
	if tPeak != 1 || wPeak != 5.5 {
		t.Errorf("PeakTotal = (%g, %g), want (1, 5.5)", tPeak, wPeak)
	}
}

func TestMeanMapEdgeCases(t *testing.T) {
	var empty Trace
	if m := empty.MeanMap(); len(m) != 0 {
		t.Errorf("MeanMap of empty trace = %v", m)
	}
	var one Trace
	if err := one.Append(0, Map{"a": 7}); err != nil {
		t.Fatal(err)
	}
	if m := one.MeanMap(); m["a"] != 7 {
		t.Errorf("single-sample mean = %v", m)
	}
}

// Property: MaxMap dominates every sample, and MeanMap never exceeds
// MaxMap.
func TestTraceDominanceProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		var tr Trace
		for i, v := range raw {
			m := Map{"u": float64(v), "v": float64(v%7) * 1.5}
			if err := tr.Append(float64(i), m); err != nil {
				return false
			}
		}
		maxm, mean := tr.MaxMap(), tr.MeanMap()
		for name := range maxm {
			if mean[name] > maxm[name]+1e-9 {
				return false
			}
		}
		for i := 0; i < tr.Len(); i++ {
			m, err := tr.At(float64(i))
			if err != nil {
				return false
			}
			for name, p := range m {
				if p > maxm[name]+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMeanWeighting(t *testing.T) {
	// Non-uniform sampling: a long-held value must dominate the mean.
	var tr Trace
	if err := tr.Append(0, Map{"a": 10}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Append(9, Map{"a": 0}); err != nil { // held 9 s at 10 W
		t.Fatal(err)
	}
	mean := tr.MeanMap()
	if math.Abs(mean["a"]-10) > 1e-9 { // 10 W over the whole observed span
		t.Errorf("weighted mean = %g, want 10", mean["a"])
	}
	if err := tr.Append(12, Map{"a": 4}); err != nil { // 0 W for 3 s
		t.Fatal(err)
	}
	mean = tr.MeanMap()
	if math.Abs(mean["a"]-7.5) > 1e-9 { // (10·9 + 0·3) / 12
		t.Errorf("weighted mean = %g, want 7.5", mean["a"])
	}
}
