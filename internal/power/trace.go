package power

import (
	"fmt"
	"sort"
)

// Trace is a time series of per-unit power maps — the shape of a
// performance/power simulator's output (PTscalar in the paper). The
// paper's flow reduces a trace to the per-element maximum power vector
// before handing it to OFTEC ("The maximum power consumption for each
// element in the chip layer is selected to be passed to OFTEC"), which
// MaxMap implements.
type Trace struct {
	times []float64
	maps  []Map
}

// Append adds a sample at time t (seconds). Times must be strictly
// increasing.
func (tr *Trace) Append(t float64, m Map) error {
	if len(tr.times) > 0 && t <= tr.times[len(tr.times)-1] {
		return fmt.Errorf("power: trace times must be strictly increasing (%g after %g)",
			t, tr.times[len(tr.times)-1])
	}
	if m == nil {
		return fmt.Errorf("power: nil power map at t=%g", t)
	}
	tr.times = append(tr.times, t)
	tr.maps = append(tr.maps, m.Clone())
	return nil
}

// Len returns the number of samples.
func (tr *Trace) Len() int { return len(tr.times) }

// Duration returns the time span covered by the trace.
func (tr *Trace) Duration() float64 {
	if len(tr.times) < 2 {
		return 0
	}
	return tr.times[len(tr.times)-1] - tr.times[0]
}

// At returns the sample in effect at time t (zero-order hold): the last
// sample whose timestamp is ≤ t, or the first sample for t before the
// trace starts. It fails on an empty trace.
func (tr *Trace) At(t float64) (Map, error) {
	if len(tr.times) == 0 {
		return nil, fmt.Errorf("power: empty trace")
	}
	i := sort.SearchFloat64s(tr.times, t)
	// SearchFloat64s returns the first index with times[i] >= t, so
	// times[i] <= t holds exactly on a timestamp hit.
	if i < len(tr.times) && tr.times[i] <= t {
		return tr.maps[i], nil
	}
	if i == 0 {
		return tr.maps[0], nil
	}
	return tr.maps[i-1], nil
}

// MaxMap returns the per-unit maximum over all samples — the reduction
// the paper feeds to OFTEC. Units appearing in any sample appear in the
// result.
func (tr *Trace) MaxMap() Map {
	out := make(Map)
	for _, m := range tr.maps {
		for name, p := range m {
			if p > out[name] {
				out[name] = p
			}
		}
	}
	return out
}

// MeanMap returns the per-unit time-weighted average power over the
// trace's span [t_first, t_last] under a zero-order hold: sample i is in
// effect until sample i+1, and the final sample only marks the end of the
// observation window. A trace with fewer than two samples averages to its
// only sample (or empty).
func (tr *Trace) MeanMap() Map {
	out := make(Map)
	n := len(tr.times)
	if n == 0 {
		return out
	}
	if n == 1 {
		return tr.maps[0].Clone()
	}
	total := tr.times[n-1] - tr.times[0]
	for i := 0; i < n-1; i++ {
		w := (tr.times[i+1] - tr.times[i]) / total
		for name, p := range tr.maps[i] {
			out[name] += w * p
		}
	}
	return out
}

// PeakTotal returns the maximum instantaneous total power over the trace
// and the time it occurs.
func (tr *Trace) PeakTotal() (t, watts float64) {
	for i, m := range tr.maps {
		if tot := m.Total(); tot > watts {
			watts = tot
			t = tr.times[i]
		}
	}
	return t, watts
}
