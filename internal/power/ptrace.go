package power

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file implements the HotSpot "ptrace" power-trace format: the first
// non-comment line names the functional units, each following line gives
// one sampling interval's power per unit (watts, whitespace separated).
// Timestamps are implicit — the sampling interval is metadata supplied by
// the caller — which is also how PTscalar-to-HotSpot flows exchange
// traces.

// ReadPtrace parses a HotSpot power trace, assigning sample k the
// timestamp k·dt.
func ReadPtrace(r io.Reader, dt float64) (*Trace, error) {
	if dt <= 0 {
		return nil, fmt.Errorf("power: ptrace sampling interval %g must be positive", dt)
	}
	scanner := bufio.NewScanner(r)
	var names []string
	tr := &Trace{}
	row := 0
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if names == nil {
			names = fields
			seen := make(map[string]bool, len(names))
			for _, n := range names {
				if seen[n] {
					return nil, fmt.Errorf("power: ptrace header repeats unit %q", n)
				}
				seen[n] = true
			}
			continue
		}
		if len(fields) != len(names) {
			return nil, fmt.Errorf("power: ptrace row %d has %d values, header has %d units",
				row+1, len(fields), len(names))
		}
		m := make(Map, len(names))
		for i, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("power: ptrace row %d, unit %s: %v", row+1, names[i], err)
			}
			if v < 0 {
				return nil, fmt.Errorf("power: ptrace row %d, unit %s: negative power %g", row+1, names[i], v)
			}
			m[names[i]] = v
		}
		if err := tr.Append(float64(row)*dt, m); err != nil {
			return nil, err
		}
		row++
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("power: reading ptrace: %w", err)
	}
	if names == nil {
		return nil, fmt.Errorf("power: ptrace has no header line")
	}
	if tr.Len() == 0 {
		return nil, fmt.Errorf("power: ptrace has no samples")
	}
	return tr, nil
}

// WritePtrace emits the trace in HotSpot ptrace format with the given unit
// column order. Timestamps are dropped (the format's interval is implicit);
// every sample must cover every named unit.
func WritePtrace(w io.Writer, tr *Trace, names []string) error {
	if len(names) == 0 {
		return fmt.Errorf("power: ptrace needs at least one unit column")
	}
	if tr.Len() == 0 {
		return fmt.Errorf("power: refusing to write an empty ptrace")
	}
	bw := bufio.NewWriter(w)
	for i, n := range names {
		if i > 0 {
			if _, err := bw.WriteString("\t"); err != nil {
				return err
			}
		}
		if _, err := bw.WriteString(n); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n"); err != nil {
		return err
	}
	for k := 0; k < tr.Len(); k++ {
		m := tr.maps[k]
		for i, n := range names {
			p, ok := m[n]
			if !ok {
				return fmt.Errorf("power: sample %d missing unit %q", k, n)
			}
			if i > 0 {
				if _, err := bw.WriteString("\t"); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(bw, "%.6g", p); err != nil {
				return err
			}
		}
		if _, err := bw.WriteString("\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}
