// Package power represents dynamic power maps: per-functional-unit power
// numbers (the output of a performance/power simulator such as PTscalar)
// and their projection onto thermal grid cells proportionally to
// unit/cell overlap area.
package power

import (
	"fmt"
	"math"
	"sort"

	"oftec/internal/floorplan"
	"oftec/internal/grid"
)

// Map assigns dynamic power in watts to floorplan units by name.
type Map map[string]float64

// Total returns the summed power of the map in watts.
func (m Map) Total() float64 {
	var s float64
	for _, p := range m {
		s += p
	}
	return s
}

// Scale returns a copy with every entry multiplied by f.
func (m Map) Scale(f float64) Map {
	out := make(Map, len(m))
	for k, v := range m {
		out[k] = v * f
	}
	return out
}

// Clone returns a deep copy of the map.
func (m Map) Clone() Map {
	out := make(Map, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Names returns the unit names in sorted order.
func (m Map) Names() []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Validate checks that the map references only units present in the
// floorplan, covers every unit, and contains no negative powers.
func (m Map) Validate(f *floorplan.Floorplan) error {
	for name, p := range m {
		if _, ok := f.Unit(name); !ok {
			return fmt.Errorf("power: map references unknown unit %q", name)
		}
		if p < 0 || math.IsNaN(p) {
			return fmt.Errorf("power: unit %q has invalid power %g", name, p)
		}
	}
	for _, u := range f.Units() {
		if _, ok := m[u.Name]; !ok {
			return fmt.Errorf("power: map is missing unit %q", u.Name)
		}
	}
	return nil
}

// Density returns the power density of the named unit in W/m², or 0 if the
// unit is unknown.
func (m Map) Density(f *floorplan.Floorplan, name string) float64 {
	u, ok := f.Unit(name)
	if !ok {
		return 0
	}
	return m[name] / u.Rect.Area()
}

// MaxDensity returns the peak unit power density in W/m² and its unit name.
func (m Map) MaxDensity(f *floorplan.Floorplan) (string, float64) {
	var bestName string
	var best float64
	for _, u := range f.Units() {
		d := m[u.Name] / u.Rect.Area()
		if d > best {
			best, bestName = d, u.Name
		}
	}
	return bestName, best
}

// ToCells distributes the per-unit powers onto the cells of the chip-layer
// grid, proportionally to overlap area (uniform density within a unit).
// The returned slice has one entry per grid cell, in watts. Power from map
// entries is conserved: the sum of the cell powers equals Total() as long
// as every unit lies within the grid outline.
func (m Map) ToCells(f *floorplan.Floorplan, g *grid.Grid) ([]float64, error) {
	if err := m.Validate(f); err != nil {
		return nil, err
	}
	cells := make([]float64, g.NumCells())
	for _, u := range f.Units() {
		p := m[u.Name]
		if p == 0 {
			continue
		}
		area := u.Rect.Area()
		for _, idx := range g.CellsIntersecting(u.Rect) {
			r, c := g.RowCol(idx)
			ov := g.CellRect(r, c).Overlap(u.Rect)
			cells[idx] += p * ov / area
		}
	}
	return cells, nil
}
