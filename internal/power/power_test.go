package power

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"oftec/internal/floorplan"
	"oftec/internal/grid"
	"oftec/internal/material"
)

func twoUnitPlan(t *testing.T) *floorplan.Floorplan {
	t.Helper()
	f, err := floorplan.New(4e-3, 4e-3)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.AddUnit("left", floorplan.Rect{X: 0, Y: 0, W: 2e-3, H: 4e-3}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddUnit("right", floorplan.Rect{X: 2e-3, Y: 0, W: 2e-3, H: 4e-3}); err != nil {
		t.Fatal(err)
	}
	return f
}

func chipGrid(t *testing.T, f *floorplan.Floorplan, res int) *grid.Grid {
	t.Helper()
	g, err := grid.New("chip", floorplan.Rect{W: f.Width, H: f.Height}, 1e-5, res, res, material.Silicon)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestTotalScaleClone(t *testing.T) {
	m := Map{"a": 2, "b": 3}
	if m.Total() != 5 {
		t.Errorf("Total = %g", m.Total())
	}
	s := m.Scale(2)
	if s["a"] != 4 || s["b"] != 6 || m["a"] != 2 {
		t.Errorf("Scale mutated or wrong: %v %v", s, m)
	}
	c := m.Clone()
	c["a"] = 100
	if m["a"] != 2 {
		t.Error("Clone aliases original")
	}
	names := m.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Names = %v", names)
	}
}

func TestValidate(t *testing.T) {
	f := twoUnitPlan(t)
	good := Map{"left": 1, "right": 2}
	if err := good.Validate(f); err != nil {
		t.Errorf("valid map rejected: %v", err)
	}
	if err := (Map{"left": 1}).Validate(f); err == nil {
		t.Error("missing unit accepted")
	}
	if err := (Map{"left": 1, "right": 1, "ghost": 1}).Validate(f); err == nil {
		t.Error("unknown unit accepted")
	}
	if err := (Map{"left": -1, "right": 1}).Validate(f); err == nil {
		t.Error("negative power accepted")
	}
	if err := (Map{"left": math.NaN(), "right": 1}).Validate(f); err == nil {
		t.Error("NaN power accepted")
	}
}

func TestDensity(t *testing.T) {
	f := twoUnitPlan(t)
	m := Map{"left": 4, "right": 1}
	// left: 4 W over 8 mm² = 0.5 W/mm² = 5e5 W/m².
	if d := m.Density(f, "left"); math.Abs(d-5e5) > 1 {
		t.Errorf("Density(left) = %g, want 5e5", d)
	}
	if d := m.Density(f, "ghost"); d != 0 {
		t.Errorf("Density(ghost) = %g, want 0", d)
	}
	name, d := m.MaxDensity(f)
	if name != "left" || math.Abs(d-5e5) > 1 {
		t.Errorf("MaxDensity = %s, %g", name, d)
	}
}

func TestToCellsConservesPower(t *testing.T) {
	f := twoUnitPlan(t)
	m := Map{"left": 3, "right": 7}
	for _, res := range []int{1, 2, 3, 4, 8, 16} {
		g := chipGrid(t, f, res)
		cells, err := m.ToCells(f, g)
		if err != nil {
			t.Fatalf("res=%d: %v", res, err)
		}
		var sum float64
		for _, p := range cells {
			if p < 0 {
				t.Fatalf("res=%d: negative cell power %g", res, p)
			}
			sum += p
		}
		if math.Abs(sum-10) > 1e-9 {
			t.Errorf("res=%d: cell sum %g, want 10", res, sum)
		}
	}
}

func TestToCellsSpatialAssignment(t *testing.T) {
	f := twoUnitPlan(t)
	m := Map{"left": 8, "right": 0}
	g := chipGrid(t, f, 4)
	cells, err := m.ToCells(f, g)
	if err != nil {
		t.Fatal(err)
	}
	// Columns 0-1 are "left": each of the 8 cells gets 1 W; columns 2-3 zero.
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			got := cells[g.Index(r, c)]
			want := 0.0
			if c < 2 {
				want = 1.0
			}
			if math.Abs(got-want) > 1e-12 {
				t.Errorf("cell (%d,%d) = %g, want %g", r, c, got, want)
			}
		}
	}
}

func TestToCellsRejectsInvalidMap(t *testing.T) {
	f := twoUnitPlan(t)
	g := chipGrid(t, f, 4)
	if _, err := (Map{"left": 1}).ToCells(f, g); err == nil {
		t.Error("incomplete map accepted")
	}
}

// Property: power conservation holds for random power maps and resolutions,
// including grids that do not align with unit boundaries.
func TestToCellsConservationProperty(t *testing.T) {
	f := twoUnitPlan(t)
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := Map{"left": rng.Float64() * 50, "right": rng.Float64() * 50}
		res := 1 + rng.Intn(12)
		g, err := grid.New("chip", floorplan.Rect{W: f.Width, H: f.Height}, 1e-5, res, res, material.Silicon)
		if err != nil {
			return false
		}
		cells, err := m.ToCells(f, g)
		if err != nil {
			return false
		}
		var sum float64
		for _, p := range cells {
			sum += p
		}
		return math.Abs(sum-m.Total()) < 1e-9*(1+m.Total())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
