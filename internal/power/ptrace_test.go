package power

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestReadPtraceBasic(t *testing.T) {
	src := `
# PTscalar output, 10 ms intervals
alu	cache	fpu
1.5	0.5	0.1
2.0	0.6	0.2
1.0	0.4	0.0
`
	tr, err := ReadPtrace(strings.NewReader(src), 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 3 {
		t.Fatalf("got %d samples", tr.Len())
	}
	m, err := tr.At(0.01)
	if err != nil {
		t.Fatal(err)
	}
	if m["alu"] != 2.0 || m["cache"] != 0.6 || m["fpu"] != 0.2 {
		t.Errorf("sample 1 = %v", m)
	}
	maxm := tr.MaxMap()
	if maxm["alu"] != 2.0 || maxm["fpu"] != 0.2 {
		t.Errorf("MaxMap = %v", maxm)
	}
	if d := tr.Duration(); math.Abs(d-0.02) > 1e-12 {
		t.Errorf("Duration = %g, want 0.02", d)
	}
}

func TestReadPtraceErrors(t *testing.T) {
	cases := []struct {
		name, src string
		dt        float64
	}{
		{"bad dt", "a\n1\n", 0},
		{"empty", "", 0.01},
		{"header only", "a b\n", 0.01},
		{"ragged row", "a b\n1 2\n3\n", 0.01},
		{"bad number", "a\nx\n", 0.01},
		{"negative power", "a\n-1\n", 0.01},
		{"duplicate unit", "a a\n1 2\n", 0.01},
	}
	for _, c := range cases {
		if _, err := ReadPtrace(strings.NewReader(c.src), c.dt); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestPtraceRoundTrip(t *testing.T) {
	var tr Trace
	names := []string{"alu", "cache"}
	for k := 0; k < 5; k++ {
		m := Map{"alu": float64(k) * 1.25, "cache": 3 - float64(k)*0.5}
		if err := tr.Append(float64(k)*0.01, m); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := WritePtrace(&buf, &tr, names); err != nil {
		t.Fatal(err)
	}
	parsed, err := ReadPtrace(&buf, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Len() != tr.Len() {
		t.Fatalf("length %d, want %d", parsed.Len(), tr.Len())
	}
	for k := 0; k < tr.Len(); k++ {
		a, _ := tr.At(float64(k) * 0.01)
		b, _ := parsed.At(float64(k) * 0.01)
		for _, n := range names {
			if math.Abs(a[n]-b[n]) > 1e-9 {
				t.Errorf("sample %d unit %s drifted: %g vs %g", k, n, a[n], b[n])
			}
		}
	}
}

func TestWritePtraceErrors(t *testing.T) {
	var empty Trace
	var buf bytes.Buffer
	if err := WritePtrace(&buf, &empty, []string{"a"}); err == nil {
		t.Error("empty trace accepted")
	}
	var tr Trace
	if err := tr.Append(0, Map{"a": 1}); err != nil {
		t.Fatal(err)
	}
	if err := WritePtrace(&buf, &tr, nil); err == nil {
		t.Error("empty column list accepted")
	}
	if err := WritePtrace(&buf, &tr, []string{"a", "missing"}); err == nil {
		t.Error("missing unit accepted")
	}
}
