package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunReportAndMarkdown(t *testing.T) {
	// Two benchmarks keep the full-report test affordable while covering
	// both the mild and the hot regime.
	s := fastSubset(t, "Basicmath", "Quicksort")
	report, err := RunReport(s, "Basicmath")
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Opt2) != 6 || len(report.Opt1) != 6 {
		t.Fatalf("series sizes: opt2=%d opt1=%d", len(report.Opt2), len(report.Opt1))
	}
	if len(report.TECOnly) != 2 || len(report.Table2) != 2 || len(report.Solvers) != 8 {
		t.Fatalf("section sizes: teconly=%d table2=%d solvers=%d",
			len(report.TECOnly), len(report.Table2), len(report.Solvers))
	}

	var buf bytes.Buffer
	if err := report.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	md := buf.String()
	for _, want := range []string{
		"# OFTEC reproduction report",
		"## Figure 6(c)/(d)",
		"## Figure 6(e)/(f)",
		"## Table 2",
		"## TEC-only system",
		"## Solver comparison on Basicmath",
		"| adjoint |",
		"∇-evaluations",
		"## Aggregate claims",
		"| Quicksort | OFTEC |",
		"runaway",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q", want)
		}
	}
	// Runaway rows must render as text, never as Inf.
	if strings.Contains(md, "Inf") || strings.Contains(md, "inf |") {
		t.Error("markdown leaked an Inf value")
	}
	// TEC-only counts must match the benchmark count.
	if !strings.Contains(md, "Thermal runaway on 2/2 benchmarks") {
		t.Error("TEC-only section wrong")
	}
}
