package experiments

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"oftec/internal/core"
	"oftec/internal/units"
	"oftec/internal/workload"
)

func TestSurfaceShapeMatchesFigure6a(t *testing.T) {
	setup := FastSetup()
	pts, err := Surface(setup, "Basicmath", 9, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 45 {
		t.Fatalf("got %d points, want 45", len(pts))
	}
	// Figure 6(a): runaway (infinite 𝒯) at small ω regardless of I, and a
	// finite basin at higher ω.
	var runawayLowOmega, finiteHighOmega bool
	for _, p := range pts {
		if p.Omega == 0 && p.Runaway {
			runawayLowOmega = true
		}
		if p.Omega > 400 && !p.Runaway {
			finiteHighOmega = true
		}
		if p.Runaway && (!math.IsInf(p.MaxTemp, 1) || !math.IsInf(p.Power, 1)) {
			t.Error("runaway point with finite objective")
		}
	}
	if !runawayLowOmega {
		t.Error("no runaway at ω=0: the dark-red wall of Figure 6(a) is missing")
	}
	if !finiteHighOmega {
		t.Error("no finite region at high ω")
	}
	// Increasing I at ω=0 must not rescue the chip (the paper's point that
	// TECs alone cannot avoid runaway).
	for _, p := range pts {
		if p.Omega == 0 && !p.Runaway {
			t.Errorf("ω=0, I=%g escaped runaway", p.ITEC)
		}
	}
}

func TestSurfaceCSV(t *testing.T) {
	setup := FastSetup()
	pts, err := Surface(setup, "CRC32", 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSurfaceCSV(&buf, pts); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 10 { // header + 9 points
		t.Fatalf("CSV has %d lines, want 10", len(lines))
	}
	if !strings.HasPrefix(lines[0], "omega_rad_s,") {
		t.Errorf("unexpected header %q", lines[0])
	}
	if _, err := Surface(setup, "CRC32", 1, 3); err == nil {
		t.Error("degenerate grid accepted")
	}
	if _, err := Surface(setup, "NoSuchBench", 3, 3); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

// TestSurfaceParallelMatchesSerial pins the fan-out contract: the
// parallel surface sweep must be byte-identical to the serial reference
// path, runaway wall included. Fresh systems on both sides keep the
// caches independent, so agreement means the solves themselves agree.
func TestSurfaceParallelMatchesSerial(t *testing.T) {
	setup := FastSetup()
	serial, err := SurfaceWorkers(setup, "Basicmath", 10, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := SurfaceWorkers(setup, "Basicmath", 10, 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(par) {
		t.Fatalf("length mismatch: serial %d, parallel %d", len(serial), len(par))
	}
	for k := range serial {
		if !reflect.DeepEqual(serial[k], par[k]) {
			t.Fatalf("grid point %d differs:\nserial   %+v\nparallel %+v", k, serial[k], par[k])
		}
	}
}

// fastSubset trims the benchmark list to keep the heavier series tests
// quick while still covering a mild and a hot benchmark.
func fastSubset(t *testing.T, names ...string) Setup {
	t.Helper()
	s := FastSetup()
	var list []workload.Benchmark
	for _, n := range names {
		b, err := workload.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		list = append(list, b)
	}
	s.Benchmarks = list
	return s
}

func TestOpt1SeriesShape(t *testing.T) {
	s := fastSubset(t, "Basicmath", "Quicksort")
	series, err := Opt1Series(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 6 { // 2 benchmarks × 3 methods
		t.Fatalf("got %d results, want 6", len(series))
	}
	get := func(bench string, mode core.Mode) MethodResult {
		for _, r := range series {
			if r.Benchmark == bench && r.Mode == mode {
				return r
			}
		}
		t.Fatalf("missing %s/%s", bench, mode)
		return MethodResult{}
	}
	// Figure 6(e)/(f) shape.
	if !get("Basicmath", core.ModeHybrid).Feasible ||
		!get("Basicmath", core.ModeVariableFan).Feasible {
		t.Error("Basicmath should be feasible for OFTEC and the variable-fan baseline")
	}
	if !get("Quicksort", core.ModeHybrid).Feasible {
		t.Error("OFTEC should cool Quicksort")
	}
	if get("Quicksort", core.ModeVariableFan).Feasible {
		t.Error("variable-fan baseline should fail on Quicksort")
	}
	of := get("Basicmath", core.ModeHybrid)
	va := get("Basicmath", core.ModeVariableFan)
	if of.PowerW >= va.PowerW {
		t.Errorf("OFTEC power %g not below variable-fan %g", of.PowerW, va.PowerW)
	}

	var buf bytes.Buffer
	if err := WriteSeriesTable(&buf, "Optimization 1", series); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Quicksort") {
		t.Error("rendered table is missing benchmarks")
	}
}

func TestOpt2SeriesShape(t *testing.T) {
	s := fastSubset(t, "Susan")
	series, err := Opt2Series(s)
	if err != nil {
		t.Fatal(err)
	}
	var of, va MethodResult
	for _, r := range series {
		switch r.Mode {
		case core.ModeHybrid:
			of = r
		case core.ModeVariableFan:
			va = r
		}
	}
	// Figure 6(c): OFTEC reaches a lower minimum temperature; Figure 6(d):
	// it spends more power doing so.
	if of.MaxTempC >= va.MaxTempC {
		t.Errorf("Opt2 OFTEC Tmax %g not below variable-fan %g", of.MaxTempC, va.MaxTempC)
	}
	if of.PowerW <= va.PowerW {
		t.Errorf("Opt2 OFTEC power %g should exceed variable-fan %g (Figure 6(d))", of.PowerW, va.PowerW)
	}
}

func TestTECOnlySeriesAllRunaway(t *testing.T) {
	s := fastSubset(t, "Basicmath", "CRC32")
	series, err := TECOnlySeries(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range series {
		if r.Feasible {
			t.Errorf("%s: TEC-only should be infeasible", r.Benchmark)
		}
		if !math.IsInf(r.MaxTempC, 1) {
			t.Errorf("%s: TEC-only should run away, got %g °C", r.Benchmark, r.MaxTempC)
		}
	}
}

func TestTable2(t *testing.T) {
	s := fastSubset(t, "CRC32", "Quicksort")
	rows, err := Table2(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Table 2 tendency: the hot benchmark needs more TEC current and a
	// faster fan than the mild one.
	if rows[1].ITEC <= rows[0].ITEC {
		t.Errorf("Quicksort I* (%g) not above CRC32's (%g)", rows[1].ITEC, rows[0].ITEC)
	}
	if rows[1].OmegaRPM <= rows[0].OmegaRPM {
		t.Errorf("Quicksort ω* (%g) not above CRC32's (%g)", rows[1].OmegaRPM, rows[0].OmegaRPM)
	}
	for _, r := range rows {
		if r.Runtime <= 0 {
			t.Errorf("%s: missing runtime", r.Benchmark)
		}
	}
	var buf bytes.Buffer
	if err := WriteTable2(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "I*_TEC") {
		t.Error("Table 2 header missing")
	}
}

func TestSolverComparison(t *testing.T) {
	s := FastSetup()
	rows, err := SolverComparison(s, "Stringsearch")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("got %d rows, want 8 (FD and gradient variants of the 3 gradient-based methods, plus 2 derivative-free)", len(rows))
	}
	var sqp, sqpGrad SolverRow
	for _, r := range rows {
		if r.Method == core.MethodSQP {
			if r.Gradient {
				sqpGrad = r
			} else {
				sqp = r
			}
		}
		if !r.Feasible {
			t.Errorf("%s (gradient=%t): infeasible", r.Method, r.Gradient)
		}
		if !r.Gradient && r.GradEvals != 0 {
			t.Errorf("%s: finite-difference row reports %d gradient evaluations", r.Method, r.GradEvals)
		}
	}
	if sqpGrad.GradEvals == 0 {
		t.Error("gradient-mode SQP row reports zero adjoint evaluations")
	}
	if sqpGrad.FuncEvals >= sqp.FuncEvals {
		t.Errorf("gradient-mode SQP used %d function evaluations, FD used %d — adjoint should need fewer",
			sqpGrad.FuncEvals, sqp.FuncEvals)
	}
	// Section 5.2: the active-set SQP produces high-quality results — it
	// must be within half a watt of the best method here.
	best := math.Inf(1)
	for _, r := range rows {
		best = math.Min(best, r.PowerW)
	}
	if sqp.PowerW > best+0.5 {
		t.Errorf("SQP power %g more than 0.5 W above best %g", sqp.PowerW, best)
	}
}

func TestSummarizeMatchesPaperShape(t *testing.T) {
	s := fastSubset(t, "Basicmath", "CRC32", "Stringsearch", "Quicksort")
	series, err := Opt1Series(s)
	if err != nil {
		t.Fatal(err)
	}
	sum := Summarize(series)
	if sum.OFTECFeasible != 4 {
		t.Errorf("OFTEC feasible on %d of 4", sum.OFTECFeasible)
	}
	if sum.VarFeasible != 3 || sum.FixedFeasible != 3 {
		t.Errorf("baselines feasible on %d/%d, want 3/3 (mild only)", sum.VarFeasible, sum.FixedFeasible)
	}
	if len(sum.Comparable) != 3 {
		t.Fatalf("comparable set %v, want the three mild benchmarks", sum.Comparable)
	}
	// Headline claims, in shape: positive savings and cooler peaks.
	if sum.AvgPowerSavingVsVar <= 0 || sum.AvgPowerSavingVsVar > 25 {
		t.Errorf("power saving vs var-ω = %.1f%%, want positive single digits", sum.AvgPowerSavingVsVar)
	}
	if sum.AvgPowerSavingVsFixed <= 0 {
		t.Errorf("power saving vs fixed-ω = %.1f%%, want positive", sum.AvgPowerSavingVsFixed)
	}
	if sum.AvgTempReductionVsVar <= 0 || sum.AvgTempReductionVsVar > 15 {
		t.Errorf("temp reduction vs var-ω = %.1f °C, want a few degrees", sum.AvgTempReductionVsVar)
	}
}

func TestWriteTable1(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTable1(&buf, DefaultSetup().Config); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Chip", "TIM 1", "Heat spreader", "TIM 2", "Heat sink", "100", "1.75", "400", "15µm", "7mm"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 output missing %q:\n%s", want, out)
		}
	}
}

func TestDefaultSetupMatchesPaperConstants(t *testing.T) {
	s := DefaultSetup()
	cfg := s.Config
	if got := units.KToC(cfg.Ambient); math.Abs(got-45) > 1e-9 {
		t.Errorf("ambient %g °C, want 45", got)
	}
	if got := units.KToC(cfg.TMax); math.Abs(got-90) > 1e-9 {
		t.Errorf("TMax %g °C, want 90", got)
	}
	if cfg.Fan.OmegaMax != 524 {
		t.Errorf("ω_max = %g, want 524 rad/s", cfg.Fan.OmegaMax)
	}
	if cfg.TEC.MaxCurrent != 5 {
		t.Errorf("I_max = %g, want 5 A", cfg.TEC.MaxCurrent)
	}
	if cfg.Fan.C != 1.6e-7 {
		t.Errorf("fan constant %g, want 1.6e-7", cfg.Fan.C)
	}
	if cfg.HeatSink.P != 0.97 || cfg.HeatSink.R != -0.25 || cfg.HeatSink.GHS != 0.525 {
		t.Errorf("heat sink law (%g, %g, %g), want (0.97, -0.25, 0.525)",
			cfg.HeatSink.P, cfg.HeatSink.R, cfg.HeatSink.GHS)
	}
	if len(s.Benchmarks) != 8 {
		t.Errorf("benchmark count %d, want 8", len(s.Benchmarks))
	}
}
