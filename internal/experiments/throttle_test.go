package experiments

import (
	"bytes"
	"strings"
	"testing"

	"oftec/internal/dvfs"
)

func TestThrottlingSeriesShape(t *testing.T) {
	s := fastSubset(t, "Basicmath", "Quicksort")
	rows, err := ThrottlingSeries(s, dvfs.Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	byName := map[string]ThrottleRow{}
	for _, r := range rows {
		byName[r.Benchmark] = r
		if !r.OFTECFeasible {
			t.Errorf("%s: OFTEC must stay feasible at full clock", r.Benchmark)
		}
	}
	mild := byName["Basicmath"]
	if !mild.BaselineFeasible || mild.FreqScale < 1 || mild.PerformanceLoss != 0 {
		t.Errorf("mild benchmark should need no throttling: %+v", mild)
	}
	hot := byName["Quicksort"]
	if hot.BaselineFeasible {
		t.Errorf("hot benchmark baseline should fail at full clock: %+v", hot)
	}
	if hot.FreqScale <= 0 || hot.FreqScale >= 1 {
		t.Errorf("hot benchmark should be rescued by throttling to (0,1): %+v", hot)
	}
	if hot.PerformanceLoss <= 0.01 {
		t.Errorf("throttling should cost real performance, got %.1f%%", hot.PerformanceLoss*100)
	}

	var buf bytes.Buffer
	if err := WriteThrottleTable(&buf, rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Quicksort", "performance lost", "meets T_max", "fails"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestThrottlingSeriesValidation(t *testing.T) {
	s := fastSubset(t, "CRC32")
	if _, err := ThrottlingSeries(s, dvfs.Model{}); err == nil {
		t.Error("invalid DVFS model accepted")
	}
}
