package experiments

import (
	"context"
	"math"
	"reflect"
	"testing"
)

// TestSurfaceBatchedMatchesPerPoint pins the row-batch submission: the
// batched sweep must classify every point like the per-point reference
// path (runaway flags identical) and agree on temperatures and powers to
// solver tolerance — the two paths warm-start differently (chained carry
// vs. first-solution seed), so bit-identity is not the contract here;
// determinism across worker counts is, and is pinned below.
func TestSurfaceBatchedMatchesPerPoint(t *testing.T) {
	setup := FastSetup()
	batchedSys, err := setup.System("Basicmath")
	if err != nil {
		t.Fatal(err)
	}
	if !batchedSys.SupportsBatch() {
		t.Fatal("full-backend system does not support batching")
	}
	batched, err := SurfaceSystem(context.Background(), batchedSys, 9, 5, 0)
	if err != nil {
		t.Fatal(err)
	}

	refSys, err := setup.System("Basicmath")
	if err != nil {
		t.Fatal(err)
	}
	refSys.SetBatching(false)
	ref, err := SurfaceSystem(context.Background(), refSys, 9, 5, 0)
	if err != nil {
		t.Fatal(err)
	}

	for i := range ref {
		b, r := batched[i], ref[i]
		if b.Omega != r.Omega || b.ITEC != r.ITEC || b.Runaway != r.Runaway {
			t.Fatalf("point %d: grid/classification mismatch: %+v vs %+v", i, b, r)
		}
		if r.Runaway {
			continue
		}
		if math.Abs(b.MaxTemp-r.MaxTemp) > 1e-6 || math.Abs(b.Power-r.Power) > 1e-6 {
			t.Errorf("point %d (ω=%g, I=%g): batched (%g K, %g W) vs per-point (%g K, %g W)",
				i, b.Omega, b.ITEC, b.MaxTemp, b.Power, r.MaxTemp, r.Power)
		}
	}
}

// TestSurfaceBatchedParallelMatchesSerial: rows are independent batches,
// so the batched sweep is bit-deterministic for any worker count.
func TestSurfaceBatchedParallelMatchesSerial(t *testing.T) {
	setup := FastSetup()
	serialSys, err := setup.System("Basicmath")
	if err != nil {
		t.Fatal(err)
	}
	serial, err := SurfaceSystem(context.Background(), serialSys, 10, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	parSys, err := setup.System("Basicmath")
	if err != nil {
		t.Fatal(err)
	}
	par, err := SurfaceSystem(context.Background(), parSys, 10, 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Fatal("batched surface differs between 1 and 4 workers")
	}
}
