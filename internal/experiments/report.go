package experiments

import (
	"fmt"
	"io"
	"math"
	"time"

	"oftec/internal/core"
	"oftec/internal/workload"
)

// Report bundles one full reproduction run: everything cmd/benchtable
// computes, in one structure, so it can be rendered or asserted on as a
// unit.
type Report struct {
	Opt2, Opt1 []MethodResult
	TECOnly    []MethodResult
	Table2     []Table2Row
	Solvers    []SolverRow
	Summary    Summary
	// SolverBenchmark names the benchmark the solver comparison ran on.
	SolverBenchmark string
}

// RunReport executes the complete evaluation (all tables and figure
// series) for a setup. This is the expensive whole-paper run; use the
// individual generators for single artifacts.
func RunReport(s Setup, solverBench string) (*Report, error) {
	r := &Report{SolverBenchmark: solverBench}
	var err error
	if r.Opt2, err = Opt2Series(s); err != nil {
		return nil, err
	}
	if r.Opt1, err = Opt1Series(s); err != nil {
		return nil, err
	}
	if r.TECOnly, err = TECOnlySeries(s); err != nil {
		return nil, err
	}
	if r.Table2, err = Table2(s); err != nil {
		return nil, err
	}
	if r.Solvers, err = SolverComparison(s, solverBench); err != nil {
		return nil, err
	}
	r.Summary = Summarize(r.Opt1)
	return r, nil
}

// WriteMarkdown renders the report as a self-contained markdown document
// mirroring the paper's evaluation section, with the paper's own numbers
// alongside for comparison.
func (r *Report) WriteMarkdown(w io.Writer) error {
	p := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	cell := func(v float64, unit string) string {
		if math.IsInf(v, 1) {
			return "runaway"
		}
		return fmt.Sprintf("%.2f%s", v, unit)
	}

	if err := p("# OFTEC reproduction report\n\n"); err != nil {
		return err
	}

	if err := p("## Figure 6(c)/(d) — after Optimization 2 (minimize max temperature)\n\n" +
		"| benchmark | method | Tmax (°C) | 𝒫 (W) | ω* (RPM) | I* (A) |\n|---|---|---|---|---|---|\n"); err != nil {
		return err
	}
	for _, m := range r.Opt2 {
		if err := p("| %s | %s | %s | %s | %.0f | %.2f |\n",
			m.Benchmark, m.Mode, cell(m.MaxTempC, ""), cell(m.PowerW, ""), m.OmegaRPM, m.ITEC); err != nil {
			return err
		}
	}

	if err := p("\n## Figure 6(e)/(f) — after Optimization 1 (Algorithm 1)\n\n" +
		"| benchmark | method | feasible | Tmax (°C) | 𝒫 (W) | ω* (RPM) | I* (A) |\n|---|---|---|---|---|---|---|\n"); err != nil {
		return err
	}
	for _, m := range r.Opt1 {
		if err := p("| %s | %s | %t | %s | %s | %.0f | %.2f |\n",
			m.Benchmark, m.Mode, m.Feasible, cell(m.MaxTempC, ""), cell(m.PowerW, ""), m.OmegaRPM, m.ITEC); err != nil {
			return err
		}
	}

	if err := p("\n## Table 2 — OFTEC operating points and runtimes\n\n" +
		"| benchmark | I*_TEC (A) | ω* (RPM) | runtime |\n|---|---|---|---|\n"); err != nil {
		return err
	}
	var total time.Duration
	for _, row := range r.Table2 {
		total += row.Runtime
		if err := p("| %s | %.2f | %.0f | %v |\n",
			row.Benchmark, row.ITEC, row.OmegaRPM, row.Runtime.Round(time.Millisecond)); err != nil {
			return err
		}
	}
	if len(r.Table2) > 0 {
		if err := p("\nAverage runtime %v (paper: 437 ms).\n",
			(total / time.Duration(len(r.Table2))).Round(time.Millisecond)); err != nil {
			return err
		}
	}

	if err := p("\n## TEC-only system (Section 6.2)\n\n"); err != nil {
		return err
	}
	if err := p("Thermal runaway on %d/%d benchmarks (paper: all).\n", countRunaway(r.TECOnly), len(r.TECOnly)); err != nil {
		return err
	}

	if err := p("\n## Solver comparison on %s (Section 5.2)\n\n"+
		"| method | gradients | feasible | 𝒫 (W) | runtime | evaluations | ∇-evaluations |\n|---|---|---|---|---|---|---|\n", r.SolverBenchmark); err != nil {
		return err
	}
	for _, s := range r.Solvers {
		grad := "finite-diff"
		if s.Gradient {
			grad = "adjoint"
		}
		if err := p("| %s | %s | %t | %.2f | %v | %d | %d |\n",
			s.Method, grad, s.Feasible, s.PowerW, s.Runtime.Round(time.Millisecond), s.FuncEvals, s.GradEvals); err != nil {
			return err
		}
	}

	sum := r.Summary
	return p("\n## Aggregate claims (Section 6.2)\n\n"+
		"* OFTEC feasible on **%d/%d** benchmarks (paper: 8/8)\n"+
		"* variable-ω baseline on %d, fixed-ω on %d (paper: 3 each)\n"+
		"* average 𝒫 saving on the comparable set: **%.1f%%** vs variable ω (paper: 2.6%%), **%.1f%%** vs fixed ω (paper: 8.1%%)\n"+
		"* average peak-temperature reduction: **%.1f °C** vs variable ω (paper: 3.7), **%.1f °C** vs fixed ω (paper: 3.0)\n",
		sum.OFTECFeasible, len(workload.Names), sum.VarFeasible, sum.FixedFeasible,
		sum.AvgPowerSavingVsVar, sum.AvgPowerSavingVsFixed,
		sum.AvgTempReductionVsVar, sum.AvgTempReductionVsFixed)
}

func countRunaway(series []MethodResult) int {
	n := 0
	for _, m := range series {
		if m.Mode == core.ModeTECOnly && math.IsInf(m.MaxTempC, 1) {
			n++
		}
	}
	return n
}
