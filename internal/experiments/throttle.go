package experiments

import (
	"context"
	"fmt"
	"io"
	"text/tabwriter"

	"oftec/internal/backend"
	"oftec/internal/core"
	"oftec/internal/dvfs"
	"oftec/internal/parallel"
	"oftec/internal/workload"
)

// ThrottleRow compares OFTEC against the DVFS fallback on one benchmark:
// where the fan-only system cannot meet T_max, Section 6.2 says the chip
// "should be further cooled down using other thermal management
// techniques such as reducing the voltage/frequency ... which leads to
// performance degradation". The row reports how much performance that
// fallback costs — and that OFTEC costs none.
type ThrottleRow struct {
	Benchmark string
	// OFTECFeasible is OFTEC's feasibility at full frequency.
	OFTECFeasible bool
	// BaselineFeasible is the fan-only baseline's feasibility at full
	// frequency (when true, no throttling is needed and FreqScale is 1).
	BaselineFeasible bool
	// FreqScale is the highest fan-only-feasible frequency (0 when even
	// the DVFS floor cannot be cooled).
	FreqScale float64
	// PerformanceLoss is 1 − FreqScale for the throttled baseline.
	PerformanceLoss float64
}

// ThrottlingSeries computes the DVFS comparison for every benchmark in the
// setup, using the variable-speed fan baseline as the cooling system that
// must be rescued by throttling. Benchmarks are independent (each builds
// its own thermal model), so the series fans out across GOMAXPROCS
// workers; rows come back in benchmark order.
func ThrottlingSeries(s Setup, model dvfs.Model) ([]ThrottleRow, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	rows := make([]ThrottleRow, len(s.Benchmarks))
	err := parallel.ForEach(context.Background(), len(s.Benchmarks), 0, func(i int) error {
		row, err := throttleOne(s, model, s.Benchmarks[i])
		if err != nil {
			return fmt.Errorf("experiments: throttling %s: %w", s.Benchmarks[i].Name, err)
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

func throttleOne(s Setup, model dvfs.Model, b workload.Benchmark) (ThrottleRow, error) {
	base, err := b.PowerMap(s.Config.Floorplan)
	if err != nil {
		return ThrottleRow{}, err
	}
	plant, err := backend.New(s.Backend, s.Config, base)
	if err != nil {
		return ThrottleRow{}, err
	}
	row := ThrottleRow{Benchmark: b.Name}

	// OFTEC at full frequency.
	oftec, err := core.NewSystem(plant).Run(core.Options{Mode: core.ModeHybrid})
	if err != nil {
		return ThrottleRow{}, err
	}
	row.OFTECFeasible = oftec.Feasible

	// Fan-only feasibility as a function of the DVFS point.
	feasible := func(op dvfs.OperatingPoint) (bool, error) {
		if err := plant.SetDynamicPower(op.ScaleMap(base)); err != nil {
			return false, err
		}
		out, err := core.NewSystem(plant).Run(core.Options{Mode: core.ModeVariableFan})
		if err != nil {
			return false, err
		}
		return out.Feasible, nil
	}
	op, ok, err := model.MaxFeasibleFrequency(feasible, 0.01)
	if err != nil {
		return ThrottleRow{}, err
	}
	if ok {
		row.FreqScale = op.FreqScale
		row.PerformanceLoss = op.PerformanceLoss()
		row.BaselineFeasible = op.FreqScale >= 1
	}
	return row, nil
}

// WriteThrottleTable renders the comparison.
func WriteThrottleTable(w io.Writer, rows []ThrottleRow) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\tOFTEC\tfan-only @ full clock\tthrottled clock\tperformance lost")
	for _, r := range rows {
		oftec := "meets T_max"
		if !r.OFTECFeasible {
			oftec = "INFEASIBLE"
		}
		base := "meets T_max"
		if !r.BaselineFeasible {
			base = "fails"
		}
		clock := "—"
		loss := "0.0%"
		if r.FreqScale > 0 {
			clock = fmt.Sprintf("%.0f%%", r.FreqScale*100)
			loss = fmt.Sprintf("%.1f%%", r.PerformanceLoss*100)
		} else {
			clock = "none feasible"
			loss = "n/a"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\n", r.Benchmark, oftec, base, clock, loss)
	}
	return tw.Flush()
}
