// Package experiments reproduces the paper's evaluation section: the
// objective-function surfaces of Figure 6(a)/(b), the per-benchmark
// comparisons of Figure 6(c)-(f), Table 2's optimal operating points and
// runtimes, the TEC-only thermal-runaway demonstration, and the Section
// 5.2 solver comparison. The same generators drive cmd/benchtable,
// cmd/sweep, and the repository's benchmark harness.
package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"text/tabwriter"
	"time"

	"oftec/internal/backend"
	"oftec/internal/core"
	"oftec/internal/parallel"
	"oftec/internal/solver"
	"oftec/internal/thermal"
	"oftec/internal/units"
	"oftec/internal/workload"
)

// Setup bundles the package configuration and benchmark list under test.
type Setup struct {
	Config     thermal.Config
	Benchmarks []workload.Benchmark
	// Backend names the evaluation backend every experiment builds on
	// ("full", "rom"); empty selects "full".
	Backend string
}

// DefaultSetup reproduces the paper's configuration (Section 6.1) over the
// eight MiBench benchmarks at the full grid resolution.
func DefaultSetup() Setup {
	return Setup{Config: thermal.DefaultConfig(), Benchmarks: workload.All()}
}

// FastSetup is DefaultSetup at reduced grid resolution, for tests and
// quick iterations; the qualitative results are unchanged.
func FastSetup() Setup {
	cfg := thermal.DefaultConfig()
	cfg.ChipRes = 8
	cfg.SpreaderRes = 7
	cfg.SinkRes = 6
	cfg.PCBRes = 4
	return Setup{Config: cfg, Benchmarks: workload.All()}
}

// system builds the core system for one benchmark on the setup's backend.
func (s Setup) system(bench workload.Benchmark) (*core.System, error) {
	pm, err := bench.PowerMap(s.Config.Floorplan)
	if err != nil {
		return nil, err
	}
	ev, err := backend.New(s.Backend, s.Config, pm)
	if err != nil {
		return nil, err
	}
	return core.NewSystem(ev), nil
}

// System exposes the per-benchmark system construction for external
// drivers (CLIs, examples, benchmarks).
func (s Setup) System(benchName string) (*core.System, error) {
	b, err := workload.ByName(benchName)
	if err != nil {
		return nil, err
	}
	return s.system(b)
}

// SurfacePoint is one sample of the Figure 6(a)/(b) surfaces.
type SurfacePoint struct {
	Omega   float64 // rad/s
	ITEC    float64 // A
	MaxTemp float64 // kelvin; +Inf on runaway
	Power   float64 // watts (𝒫); +Inf on runaway
	Runaway bool
}

// Surface evaluates 𝒯(ω, I) and 𝒫(ω, I) on an nOmega×nI uniform grid for
// one benchmark — the data behind Figure 6(a) and (b). Rows of constant ω
// are independent, so they are fanned out across GOMAXPROCS workers; the
// returned slice is in deterministic row-major (ω, then I) order
// regardless.
func Surface(setup Setup, benchName string, nOmega, nI int) ([]SurfacePoint, error) {
	return SurfaceWorkers(setup, benchName, nOmega, nI, 0)
}

// SurfaceContext is SurfaceWorkers under a caller-supplied context: when
// ctx is cancelled (deadline, signal) the sweep stops issuing rows and
// returns ctx's error. Rows already completed are discarded — a partial
// surface has holes in deterministic row-major order, so callers that
// want partial data should shrink the grid instead.
func SurfaceContext(ctx context.Context, setup Setup, benchName string, nOmega, nI, workers int) ([]SurfacePoint, error) {
	return surface(ctx, setup, benchName, nOmega, nI, workers)
}

// SurfaceWorkers is Surface with an explicit fan-out width: zero sizes
// the pool to GOMAXPROCS, one forces the serial reference path. The unit
// of parallelism is one ω-row: within a row the converged field at each
// point warm-starts the next I step, which cuts the solver iterations on
// the smooth stretches of the surface. The carry never crosses rows, so
// every point's inputs are fixed by its own row alone and results are
// identical for any worker count.
func SurfaceWorkers(setup Setup, benchName string, nOmega, nI, workers int) ([]SurfacePoint, error) {
	return surface(context.Background(), setup, benchName, nOmega, nI, workers)
}

func surface(ctx context.Context, setup Setup, benchName string, nOmega, nI, workers int) ([]SurfacePoint, error) {
	sys, err := setup.System(benchName)
	if err != nil {
		return nil, err
	}
	return SurfaceSystem(ctx, sys, nOmega, nI, workers)
}

// SurfaceSystem sweeps an already-built System — the form a long-running
// service uses, so the sweep shares the system's model, ROM basis, and
// evaluation cache with every other request for the same chip instead of
// assembling a fresh model per sweep. Grid geometry comes from the
// system's configuration; ctx bounds the sweep and each point's solve.
//
// When the system's backend supports batched evaluation, each ω-row is
// submitted as one block: the thermal layer assembles and factorizes once
// per row and sweeps the current axis as blocked multi-RHS solves, with
// the row's first solution warm-starting the rest (the batch analogue of
// the per-point carry below). Either way the unit of parallelism is one
// row and no state crosses rows, so results are identical for any worker
// count. Disable batching on the system (core.System.SetBatching) to
// force the per-point reference path.
func SurfaceSystem(ctx context.Context, sys *core.System, nOmega, nI, workers int) ([]SurfacePoint, error) {
	if nOmega < 2 || nI < 2 {
		return nil, fmt.Errorf("experiments: surface grid %d×%d must be at least 2×2", nOmega, nI)
	}
	cfg := sys.Config()
	out := make([]SurfacePoint, nOmega*nI)
	batched := sys.SupportsBatch()
	err := parallel.ForEach(ctx, nOmega, workers, func(i int) error {
		omega := cfg.UMax() * float64(i) / float64(nOmega-1)
		if batched {
			ops := make([]backend.OpPoint, nI)
			for j := 0; j < nI; j++ {
				ops[j] = backend.Scalar(omega, cfg.TEC.MaxCurrent*float64(j)/float64(nI-1))
			}
			results, err := sys.EvaluateBatchContext(ctx, ops, nil)
			if err != nil {
				return err
			}
			for j, res := range results {
				out[i*nI+j] = surfacePoint(omega, ops[j].Currents[0], res)
			}
			return nil
		}
		// Per-point reference path: the converged field at each point
		// warm-starts the next I step; the carry never crosses rows.
		var warm []float64
		for j := 0; j < nI; j++ {
			itec := cfg.TEC.MaxCurrent * float64(j) / float64(nI-1)
			res, err := sys.EvaluateWarmContext(ctx, omega, itec, warm)
			if err != nil {
				return err
			}
			if !res.Runaway {
				warm = res.T
			}
			out[i*nI+j] = surfacePoint(omega, itec, res)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// surfacePoint converts one steady-state result into its surface sample.
func surfacePoint(omega, itec float64, res *thermal.Result) SurfacePoint {
	p := SurfacePoint{Omega: omega, ITEC: itec, Runaway: res.Runaway}
	if res.Runaway {
		p.MaxTemp = math.Inf(1)
		p.Power = math.Inf(1)
	} else {
		p.MaxTemp = res.MaxChipTemp
		p.Power = res.CoolingPower()
	}
	return p
}

// WriteSurfaceCSV emits a surface as CSV with the same axes as Figure 6.
func WriteSurfaceCSV(w io.Writer, pts []SurfacePoint) error {
	if _, err := fmt.Fprintln(w, "omega_rad_s,omega_rpm,i_tec_a,max_temp_c,cooling_power_w,runaway"); err != nil {
		return err
	}
	for _, p := range pts {
		tempC, pow := "inf", "inf"
		if !p.Runaway {
			tempC = fmt.Sprintf("%.3f", units.KToC(p.MaxTemp))
			pow = fmt.Sprintf("%.3f", p.Power)
		}
		if _, err := fmt.Fprintf(w, "%.3f,%.1f,%.3f,%s,%s,%t\n",
			p.Omega, units.RadPerSecToRPM(p.Omega), p.ITEC, tempC, pow, p.Runaway); err != nil {
			return err
		}
	}
	return nil
}

// MethodResult is one bar of Figure 6(c)-(f): one benchmark under one
// cooling method.
type MethodResult struct {
	Benchmark string
	Mode      core.Mode
	Feasible  bool
	// MaxTempC is the maximum chip temperature in °C (+Inf on runaway).
	MaxTempC float64
	// PowerW is the cooling power 𝒫 in watts (+Inf on runaway).
	PowerW float64
	// OmegaRPM and ITEC are the chosen operating point.
	OmegaRPM, ITEC float64
	// Runtime is the controller's wall-clock time.
	Runtime time.Duration
}

// modes compared in Figure 6(c)-(f).
var compareModes = []core.Mode{core.ModeHybrid, core.ModeVariableFan, core.ModeFixedFan}

func (s Setup) runAll(opts core.Options) ([]MethodResult, error) {
	// One task per benchmark (each builds its own model, so tasks share
	// nothing); the mode loop stays inside the task so all three modes
	// reuse that benchmark's evaluation cache.
	perBench := make([][]MethodResult, len(s.Benchmarks))
	err := parallel.ForEach(context.Background(), len(s.Benchmarks), 0, func(i int) error {
		b := s.Benchmarks[i]
		sys, err := s.system(b)
		if err != nil {
			return err
		}
		results := make([]MethodResult, 0, len(compareModes))
		for _, mode := range compareModes {
			o := opts
			o.Mode = mode
			res, err := sys.Run(o)
			if err != nil {
				return fmt.Errorf("experiments: %s/%s: %w", b.Name, mode, err)
			}
			results = append(results, toMethodResult(b.Name, res))
		}
		perBench[i] = results
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []MethodResult
	for _, results := range perBench {
		out = append(out, results...)
	}
	return out, nil
}

func toMethodResult(bench string, o *core.Outcome) MethodResult {
	mr := MethodResult{
		Benchmark: bench,
		Mode:      o.Mode,
		Feasible:  o.Feasible,
		OmegaRPM:  units.RadPerSecToRPM(o.Omega),
		ITEC:      o.ITEC,
		Runtime:   o.Runtime,
		MaxTempC:  math.Inf(1),
		PowerW:    math.Inf(1),
	}
	if o.Result != nil && !o.Result.Runaway {
		mr.MaxTempC = units.KToC(o.Result.MaxChipTemp)
		mr.PowerW = o.Result.CoolingPower()
	}
	return mr
}

// Opt2Series generates Figure 6(c) and (d): every benchmark × method,
// solving Optimization 2 (minimize the maximum chip temperature) to
// convergence.
func Opt2Series(s Setup) ([]MethodResult, error) {
	return s.runAll(core.Options{SkipOpt1: true})
}

// Opt1Series generates Figure 6(e) and (f) and Table 2: every benchmark ×
// method, running full Algorithm 1.
func Opt1Series(s Setup) ([]MethodResult, error) {
	return s.runAll(core.Options{})
}

// TECOnlySeries demonstrates that a TEC-only system cannot avoid thermal
// runaway on any benchmark (Section 6.2).
func TECOnlySeries(s Setup) ([]MethodResult, error) {
	out := make([]MethodResult, len(s.Benchmarks))
	err := parallel.ForEach(context.Background(), len(s.Benchmarks), 0, func(i int) error {
		sys, err := s.system(s.Benchmarks[i])
		if err != nil {
			return err
		}
		res, err := sys.Run(core.Options{Mode: core.ModeTECOnly})
		if err != nil {
			return err
		}
		out[i] = toMethodResult(s.Benchmarks[i].Name, res)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Table2Row is one row of the paper's Table 2.
type Table2Row struct {
	Benchmark string
	ITEC      float64 // A
	OmegaRPM  float64
	Runtime   time.Duration
}

// Table2 runs OFTEC (Algorithm 1) per benchmark and reports the optimal
// operating points and runtimes.
func Table2(s Setup) ([]Table2Row, error) {
	rows := make([]Table2Row, len(s.Benchmarks))
	err := parallel.ForEach(context.Background(), len(s.Benchmarks), 0, func(i int) error {
		b := s.Benchmarks[i]
		sys, err := s.system(b)
		if err != nil {
			return err
		}
		out, err := sys.Run(core.Options{Mode: core.ModeHybrid})
		if err != nil {
			return err
		}
		rows[i] = Table2Row{
			Benchmark: b.Name,
			ITEC:      out.ITEC,
			OmegaRPM:  units.RadPerSecToRPM(out.Omega),
			Runtime:   out.Runtime,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// SolverRow is one line of the Section 5.2 solver comparison.
type SolverRow struct {
	Method core.Method
	// Gradient marks rows where the method was steered by adjoint
	// gradients (core.Options.Gradient) instead of finite differences.
	Gradient bool
	Feasible bool
	PowerW   float64
	Runtime  time.Duration
	// FuncEvals totals objective/constraint evaluations across both
	// optimization phases.
	FuncEvals int
	// GradEvals totals adjoint gradient evaluations across both phases
	// (zero on finite-difference rows and derivative-free methods).
	GradEvals int
	// Converged and Stopped report the Optimization 1 solve's verdict
	// (see solver.Report); a method can land on a feasible point without
	// a convergence claim, which the paper's table would otherwise hide.
	Converged bool
	Stopped   solver.StopReason
}

// SolverComparison runs Algorithm 1 on one benchmark with each NLP method
// (the paper compared active-set SQP, interior point, and trust region and
// chose SQP; Nelder-Mead is included as a derivative-free reference). The
// gradient-based methods appear twice: once on finite differences and
// once steered by adjoint gradients, so the table shows what the exact
// derivatives buy each of them.
func SolverComparison(s Setup, benchName string) ([]SolverRow, error) {
	sys, err := s.System(benchName)
	if err != nil {
		return nil, err
	}
	methods := []struct {
		m    core.Method
		grad bool
	}{
		{core.MethodSQP, false}, {core.MethodSQP, true},
		{core.MethodInteriorPoint, false}, {core.MethodInteriorPoint, true},
		{core.MethodTrustRegion, false}, {core.MethodTrustRegion, true},
		{core.MethodNelderMead, false},
		{core.MethodHookeJeeves, false},
	}
	var rows []SolverRow
	for _, mc := range methods {
		out, err := sys.Run(core.Options{Mode: core.ModeHybrid, Method: mc.m, Gradient: mc.grad})
		if err != nil {
			return nil, err
		}
		rows = append(rows, SolverRow{
			Method:    mc.m,
			Gradient:  mc.grad,
			Feasible:  out.Feasible,
			PowerW:    out.CoolingPower(),
			Runtime:   out.Runtime,
			FuncEvals: out.Opt1Report.FuncEvals + out.Opt2Report.FuncEvals,
			GradEvals: out.Opt1Report.GradEvals + out.Opt2Report.GradEvals,
			Converged: out.Opt1Report.Converged,
			Stopped:   out.Opt1Report.Stopped,
		})
	}
	return rows, nil
}

// Summary aggregates the paper's headline claims from an Opt1 series.
type Summary struct {
	// OFTECFeasible / VarFeasible / FixedFeasible count benchmarks each
	// method could cool below T_max.
	OFTECFeasible, VarFeasible, FixedFeasible int
	// Comparable lists benchmarks where OFTEC and both baselines are
	// feasible (the paper's three mild benchmarks).
	Comparable []string
	// AvgPowerSavingVsVar / AvgPowerSavingVsFixed are mean relative 𝒫
	// savings of OFTEC on the comparable benchmarks, in percent.
	AvgPowerSavingVsVar, AvgPowerSavingVsFixed float64
	// AvgTempReductionVsVar / AvgTempReductionVsFixed are mean peak-
	// temperature reductions on the comparable benchmarks, in °C.
	AvgTempReductionVsVar, AvgTempReductionVsFixed float64
}

// Summarize computes the Section 6.2 aggregate claims from an Opt1 series.
func Summarize(series []MethodResult) Summary {
	byBench := map[string]map[core.Mode]MethodResult{}
	for _, r := range series {
		if byBench[r.Benchmark] == nil {
			byBench[r.Benchmark] = map[core.Mode]MethodResult{}
		}
		byBench[r.Benchmark][r.Mode] = r
	}
	var sum Summary
	var dPVar, dPFixed, dTVar, dTFixed float64
	for _, name := range workload.Names {
		m, ok := byBench[name]
		if !ok {
			continue
		}
		of, va, fx := m[core.ModeHybrid], m[core.ModeVariableFan], m[core.ModeFixedFan]
		if of.Feasible {
			sum.OFTECFeasible++
		}
		if va.Feasible {
			sum.VarFeasible++
		}
		if fx.Feasible {
			sum.FixedFeasible++
		}
		if of.Feasible && va.Feasible && fx.Feasible {
			sum.Comparable = append(sum.Comparable, name)
			dPVar += (va.PowerW - of.PowerW) / va.PowerW * 100
			dPFixed += (fx.PowerW - of.PowerW) / fx.PowerW * 100
			dTVar += va.MaxTempC - of.MaxTempC
			dTFixed += fx.MaxTempC - of.MaxTempC
		}
	}
	if n := float64(len(sum.Comparable)); n > 0 {
		sum.AvgPowerSavingVsVar = dPVar / n
		sum.AvgPowerSavingVsFixed = dPFixed / n
		sum.AvgTempReductionVsVar = dTVar / n
		sum.AvgTempReductionVsFixed = dTFixed / n
	}
	return sum
}

// WriteSeriesTable renders a method-result series as an aligned text table.
func WriteSeriesTable(w io.Writer, title string, series []MethodResult) error {
	if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\tmethod\tfeasible\tTmax(°C)\t𝒫(W)\tω*(RPM)\tI*(A)\truntime")
	for _, r := range series {
		temp, pow := "runaway", "runaway"
		if !math.IsInf(r.MaxTempC, 1) {
			temp = fmt.Sprintf("%.2f", r.MaxTempC)
			pow = fmt.Sprintf("%.2f", r.PowerW)
		}
		fmt.Fprintf(tw, "%s\t%s\t%t\t%s\t%s\t%.0f\t%.2f\t%s\n",
			r.Benchmark, r.Mode, r.Feasible, temp, pow, r.OmegaRPM, r.ITEC,
			r.Runtime.Round(time.Millisecond))
	}
	return tw.Flush()
}

// WriteTable2 renders Table 2 in the paper's layout.
func WriteTable2(w io.Writer, rows []Table2Row) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Benchmark\tI*_TEC (A)\tω* (RPM)\tRuntime (ms)")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.2f\t%.0f\t%d\n",
			r.Benchmark, r.ITEC, r.OmegaRPM, r.Runtime.Milliseconds())
	}
	return tw.Flush()
}

// WriteTable1 echoes the model's layer geometry in the format of Table 1,
// so the configured package can be compared against the paper directly.
func WriteTable1(w io.Writer, cfg thermal.Config) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Layer\tThermal Conductivity (W/(m·K))\tDimensions")
	row := func(name string, spec thermal.LayerSpec) {
		fmt.Fprintf(tw, "%s\t%g\t%.1fmm×%.1fmm×%s\n", name,
			spec.Material.Conductivity, spec.Edge*1e3, spec.Edge*1e3, thickness(spec.Thickness))
	}
	row("Chip", cfg.Chip)
	row("TIM 1", cfg.TIM1)
	row("Heat spreader", cfg.Spreader)
	row("TIM 2", cfg.TIM2)
	row("Heat sink", cfg.Sink)
	return tw.Flush()
}

func thickness(t float64) string {
	if t < 1e-3 {
		return fmt.Sprintf("%.0fµm", t*1e6)
	}
	return fmt.Sprintf("%gmm", t*1e3)
}
