package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"text/tabwriter"

	"oftec/internal/backend"
	"oftec/internal/core"
	"oftec/internal/parallel"
	"oftec/internal/units"
	"oftec/internal/workload"
)

// SensitivityRow is one point of the TEC-quality sensitivity study: how
// OFTEC's achievable cooling power depends on the thermoelectric
// material's Seebeck coefficient (the lever device research pushes —
// Section 3: "most [work] focuses on improving the material"). At
// SeebeckScale = 0 the hybrid system degenerates to the fan-only baseline
// plus passive TEC conduction.
type SensitivityRow struct {
	// SeebeckScale multiplies the deployment's areal Seebeck coefficient.
	SeebeckScale float64
	Feasible     bool
	PowerW       float64
	MaxTempC     float64
	ITEC         float64
	OmegaRPM     float64
}

// SeebeckSensitivity runs OFTEC on one benchmark across a sweep of Seebeck
// scalings. Each scale builds its own model, so the sweep fans out across
// GOMAXPROCS workers; rows come back in the caller's scale order.
func SeebeckSensitivity(s Setup, benchName string, scales []float64) ([]SensitivityRow, error) {
	if len(scales) == 0 {
		return nil, fmt.Errorf("experiments: sensitivity sweep needs at least one scale")
	}
	b, err := workload.ByName(benchName)
	if err != nil {
		return nil, err
	}
	for _, scale := range scales {
		if scale < 0 {
			return nil, fmt.Errorf("experiments: Seebeck scale %g must be non-negative", scale)
		}
	}
	rows := make([]SensitivityRow, len(scales))
	err = parallel.ForEach(context.Background(), len(scales), 0, func(i int) error {
		scale := scales[i]
		cfg := s.Config
		if scale == 0 {
			// α must stay positive for validation; a vanishing coefficient
			// models "passive stack only".
			cfg.TEC.SeebeckPerArea = 1e-9
		} else {
			cfg.TEC.SeebeckPerArea *= scale
		}
		pm, err := b.PowerMap(cfg.Floorplan)
		if err != nil {
			return err
		}
		ev, err := backend.New(s.Backend, cfg, pm)
		if err != nil {
			return err
		}
		out, err := core.NewSystem(ev).Run(core.Options{Mode: core.ModeHybrid})
		if err != nil {
			return fmt.Errorf("experiments: sensitivity scale %g: %w", scale, err)
		}
		row := SensitivityRow{SeebeckScale: scale, Feasible: out.Feasible,
			PowerW: math.Inf(1), MaxTempC: math.Inf(1)}
		if out.Result != nil && !out.Result.Runaway {
			row.PowerW = out.Result.CoolingPower()
			row.MaxTempC = units.KToC(out.Result.MaxChipTemp)
			row.ITEC = out.ITEC
			row.OmegaRPM = units.RadPerSecToRPM(out.Omega)
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// WriteSensitivityTable renders the sweep.
func WriteSensitivityTable(w io.Writer, benchName string, rows []SensitivityRow) error {
	if _, err := fmt.Fprintf(w, "Seebeck sensitivity on %s\n", benchName); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "α scale\tfeasible\t𝒫(W)\tTmax(°C)\tω*(RPM)\tI*(A)")
	for _, r := range rows {
		pw, tm := "—", "—"
		if !math.IsInf(r.PowerW, 1) {
			pw = fmt.Sprintf("%.2f", r.PowerW)
			tm = fmt.Sprintf("%.2f", r.MaxTempC)
		}
		fmt.Fprintf(tw, "%.2f\t%t\t%s\t%s\t%.0f\t%.2f\n",
			r.SeebeckScale, r.Feasible, pw, tm, r.OmegaRPM, r.ITEC)
	}
	return tw.Flush()
}

// CoverageRow is one point of the deployment-coverage study (refs [6][7]
// via the paper's Section 6.1 deployment choice): which units carry TEC
// modules, and what the optimizer achieves with that deployment.
type CoverageRow struct {
	Name      string
	NumTEC    int
	Feasible  bool
	PowerW    float64
	MaxTempC  float64
	TECPowerW float64
}

// WriteCoverageTable renders the deployment comparison.
func WriteCoverageTable(w io.Writer, benchName string, rows []CoverageRow) error {
	if _, err := fmt.Fprintf(w, "TEC deployment coverage on %s\n", benchName); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "deployment\tmodules\tfeasible\t𝒫(W)\tTmax(°C)\tP_TEC(W)")
	for _, r := range rows {
		pw, tm := "—", "—"
		if !math.IsInf(r.PowerW, 1) {
			pw = fmt.Sprintf("%.2f", r.PowerW)
			tm = fmt.Sprintf("%.2f", r.MaxTempC)
		}
		fmt.Fprintf(tw, "%s\t%d\t%t\t%s\t%s\t%.2f\n",
			r.Name, r.NumTEC, r.Feasible, pw, tm, r.TECPowerW)
	}
	return tw.Flush()
}

// CoverageStudy compares three deployments on one benchmark: modules
// everywhere, the paper's deployment (no caches), and an integer-cluster
// spot deployment.
func CoverageStudy(s Setup, benchName string) ([]CoverageRow, error) {
	b, err := workload.ByName(benchName)
	if err != nil {
		return nil, err
	}
	deployments := []struct {
		name      string
		uncovered []string
	}{
		{"full coverage", nil},
		{"paper (no caches)", []string{"Icache", "Dcache"}},
		{"int cluster only", []string{
			"L2_left", "L2", "L2_right", "Icache", "ITB", "DTB", "Dcache",
			"FPAdd", "FPMul", "FPReg", "FPMap", "FPQ",
		}},
	}
	rows := make([]CoverageRow, len(deployments))
	err = parallel.ForEach(context.Background(), len(deployments), 0, func(i int) error {
		d := deployments[i]
		cfg := s.Config
		cfg.TEC.Uncovered = d.uncovered
		pm, err := b.PowerMap(cfg.Floorplan)
		if err != nil {
			return err
		}
		ev, err := backend.New(s.Backend, cfg, pm)
		if err != nil {
			return err
		}
		out, err := core.NewSystem(ev).Run(core.Options{Mode: core.ModeHybrid})
		if err != nil {
			return fmt.Errorf("experiments: coverage %q: %w", d.name, err)
		}
		numTEC := 0
		if m, ok := backend.ModelOf(ev); ok {
			// Module counting is model-only reporting with no backend
			// equivalent; the deployment study is about the model itself.
			//lint:ignore backendleak deployment reporting reads the model's TEC count
			numTEC = m.NumTEC()
		}
		row := CoverageRow{Name: d.name, NumTEC: numTEC, Feasible: out.Feasible,
			PowerW: math.Inf(1), MaxTempC: math.Inf(1)}
		if out.Result != nil && !out.Result.Runaway {
			row.PowerW = out.Result.CoolingPower()
			row.MaxTempC = units.KToC(out.Result.MaxChipTemp)
			row.TECPowerW = out.Result.PTEC
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}
