package experiments

import (
	"context"
	"errors"
	"reflect"
	"testing"
)

// TestSurfaceContextCancelled: a cancelled context aborts the sweep with
// the context's error instead of returning a surface with holes.
func TestSurfaceContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pts, err := SurfaceContext(ctx, FastSetup(), "Basicmath", 9, 5, 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if pts != nil {
		t.Errorf("cancelled sweep returned %d points, want none", len(pts))
	}
}

// TestSurfaceContextMatchesSurface: with a live context the two entry
// points are the same computation.
func TestSurfaceContextMatchesSurface(t *testing.T) {
	setup := FastSetup()
	plain, err := Surface(setup, "Basicmath", 9, 5)
	if err != nil {
		t.Fatal(err)
	}
	withCtx, err := SurfaceContext(context.Background(), setup, "Basicmath", 9, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, withCtx) {
		t.Error("SurfaceContext diverged from Surface on the same grid")
	}
}
