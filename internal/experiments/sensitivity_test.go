package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestSeebeckSensitivityShape(t *testing.T) {
	s := FastSetup()
	rows, err := SeebeckSensitivity(s, "Quicksort", []float64{0, 0.5, 1, 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	// With no Peltier effect the hybrid system reduces to the fan-only
	// baseline and must fail on the hot benchmark; at nominal quality it
	// must succeed.
	if rows[0].Feasible {
		t.Errorf("α=0 should be infeasible on Quicksort (fan-only equivalent): %+v", rows[0])
	}
	if !rows[2].Feasible {
		t.Errorf("nominal α should be feasible: %+v", rows[2])
	}
	// Better material must never hurt: among feasible rows, 𝒫 must be
	// non-increasing in α (small solver slack allowed).
	var prev *SensitivityRow
	for i := range rows {
		r := &rows[i]
		if !r.Feasible {
			continue
		}
		if prev != nil && r.PowerW > prev.PowerW+0.3 {
			t.Errorf("𝒫 increased with better material: %.2f W at %.2fα after %.2f W at %.2fα",
				r.PowerW, r.SeebeckScale, prev.PowerW, prev.SeebeckScale)
		}
		prev = r
	}

	var buf bytes.Buffer
	if err := WriteSensitivityTable(&buf, "Quicksort", rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "α scale") {
		t.Error("table header missing")
	}
	if _, err := SeebeckSensitivity(s, "Quicksort", nil); err == nil {
		t.Error("empty sweep accepted")
	}
	if _, err := SeebeckSensitivity(s, "Quicksort", []float64{-1}); err == nil {
		t.Error("negative scale accepted")
	}
	if _, err := SeebeckSensitivity(s, "NoSuchBench", []float64{1}); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestCoverageStudyShape(t *testing.T) {
	s := FastSetup()
	rows, err := CoverageStudy(s, "Quicksort")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	full, paper, spot := rows[0], rows[1], rows[2]
	if !(full.NumTEC > paper.NumTEC && paper.NumTEC > spot.NumTEC) {
		t.Errorf("module counts not ordered: %d, %d, %d", full.NumTEC, paper.NumTEC, spot.NumTEC)
	}
	// Quicksort's heat concentrates in the integer cluster: every
	// deployment that covers it must remain feasible.
	for _, r := range rows {
		if !r.Feasible {
			t.Errorf("%s: infeasible", r.Name)
		}
	}
	// The spot deployment spends no more TEC power than full coverage
	// (refs [6][7]: excess modules waste power).
	if spot.TECPowerW > full.TECPowerW+0.2 {
		t.Errorf("spot deployment TEC power %.2f exceeds full coverage %.2f",
			spot.TECPowerW, full.TECPowerW)
	}
	if _, err := CoverageStudy(s, "NoSuchBench"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}
