package backend

import (
	"context"
	"testing"

	"oftec/internal/thermal"
)

// TestGradientOfCapabilityChain pins the capability probe: the full
// backend (scalar and zoned) offers adjoint gradients directly, the ROM
// resolves through its fall-through chain to the full sibling, and the
// gradients the chain hands back are the model's own.
func TestGradientOfCapabilityChain(t *testing.T) {
	p := testPlant(t, "full", "CRC32")
	full := p.(*Full)

	ge, ok := GradientOf(full)
	if !ok {
		t.Fatal("full backend does not offer gradients")
	}
	g, err := ge.EvaluateGrad(context.Background(), Scalar(200, 1))
	if err != nil {
		t.Fatal(err)
	}
	want, err := full.Model().EvaluateGrad(200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.Result != want.Result || g.PowerGrad[0] != want.PowerGrad[0] {
		t.Error("full backend gradient is not the model's gradient")
	}
	if len(g.PowerGrad) != 2 || len(g.TempGrad) != 2 {
		t.Fatalf("scalar gradient has lengths %d/%d, want 2", len(g.PowerGrad), len(g.TempGrad))
	}

	// Zoned capability: a k-zone point yields a (1+k)-component gradient.
	assign := map[string]int{}
	for _, u := range full.Config().Floorplan.Units() {
		assign[u.Name] = 0
	}
	z, err := full.NewZoning(assign, 1)
	if err != nil {
		t.Fatal(err)
	}
	zev, err := full.WithZoning(z)
	if err != nil {
		t.Fatal(err)
	}
	zge, ok := GradientOf(zev)
	if !ok {
		t.Fatal("zoned full backend does not offer gradients")
	}
	zg, err := zge.EvaluateGrad(context.Background(), OpPoint{Omega: 200, Currents: []float64{1}})
	if err != nil {
		t.Fatal(err)
	}
	if zg.Result != want.Result {
		t.Error("single-zone gradient did not share the scalar memo entry")
	}

	// The ROM cannot differentiate its reduced system; the probe must
	// resolve to the full sibling, not fail.
	rom, err := full.Select("rom")
	if err != nil {
		t.Fatal(err)
	}
	if _, isDirect := rom.(GradEvaluator); isDirect {
		t.Fatal("ROM claims direct gradient capability; the adjoint is only exact on the full system")
	}
	rge, ok := GradientOf(rom)
	if !ok {
		t.Fatal("GradientOf did not fall through the ROM to the full backend")
	}
	rg, err := rge.EvaluateGrad(context.Background(), Scalar(200, 1))
	if err != nil {
		t.Fatal(err)
	}
	if rg.Result != want.Result {
		t.Error("ROM fall-through gradient is not the full backend's")
	}

	// Malformed points are rejected.
	if _, err := ge.EvaluateGrad(context.Background(), OpPoint{Omega: 200}); err == nil {
		t.Error("empty Currents accepted")
	}
	if _, err := ge.EvaluateGrad(context.Background(), OpPoint{Omega: 200, Currents: []float64{1, 1}}); err == nil {
		t.Error("zoned gradient point accepted without zoning")
	}

	// A chain-free evaluator without the capability reports false.
	if _, ok := GradientOf(plainEvaluator{full}); ok {
		t.Error("GradientOf invented a capability on a chain-free evaluator")
	}
}

// plainEvaluator wraps an Evaluator while implementing neither
// GradEvaluator nor Fallthrough.
type plainEvaluator struct{ ev Evaluator }

func (p plainEvaluator) Name() string           { return "plain" }
func (p plainEvaluator) Config() thermal.Config { return p.ev.Config() }
func (p plainEvaluator) Evaluate(ctx context.Context, op OpPoint, warm []float64) (*thermal.Result, error) {
	return p.ev.Evaluate(ctx, op, warm)
}
