package backend

import (
	"context"
	"testing"

	"oftec/internal/coolant"
)

// TestCoolantBackendsRegistered pins the registry surface the CLIs and the
// serving layer rely on: the liquid-loop and multi-chip-package variants
// are reachable by name, report that name, and Known rejects typos.
func TestCoolantBackendsRegistered(t *testing.T) {
	for _, name := range []string{"liquid", "package"} {
		if !Known(name) {
			t.Errorf("backend %q not known", name)
		}
	}
	if !Known("") {
		t.Error("empty backend name must select the default")
	}
	if Known("water") {
		t.Error("unregistered backend name accepted")
	}

	p := testPlant(t, "liquid", "CRC32")
	if p.Name() != "liquid" {
		t.Errorf("Name() = %q, want liquid", p.Name())
	}
	m, ok := ModelOf(p)
	if !ok {
		t.Fatal("liquid backend exposes no model")
	}
	if got, want := m.Actuator().Name(), "liquid"; got != want {
		t.Errorf("actuator %q, want %q", got, want)
	}
	if got, want := m.UMax(), coolant.PaperLoop().MaxSpeed; got != want {
		t.Errorf("UMax %g, want the pump ceiling %g", got, want)
	}
	res, err := p.Evaluate(context.Background(), ScalarU(200, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := coolant.PaperLoop().Power(200); res.PFan != want {
		t.Errorf("drive power %g, want pump affinity %g", res.PFan, want)
	}
}

// TestPackageBackendSharesColdPlate: the package variant couples chips
// through a shared cold plate — per-chip conductance and drive power are
// the 1/N share of the liquid loop's.
func TestPackageBackendSharesColdPlate(t *testing.T) {
	p := testPlant(t, "package", "CRC32")
	if p.Name() != "package" {
		t.Errorf("Name() = %q, want package", p.Name())
	}
	m, ok := ModelOf(p)
	if !ok {
		t.Fatal("package backend exposes no model")
	}
	mcfg := m.Config()
	n := mcfg.PackageChips()
	if n != coolant.DefaultPackageChips {
		t.Fatalf("PackageChips = %d, want %d", n, coolant.DefaultPackageChips)
	}
	loop := coolant.PaperLoop()
	act := m.Actuator()
	u := 200.0
	if got, want := act.Conductance(u), loop.Conductance(u)/float64(n); got != want {
		t.Errorf("per-chip conductance %g, want the 1/%d share %g", got, n, want)
	}
	if got, want := act.Power(u), loop.Power(u)/float64(n); got != want {
		t.Errorf("per-chip drive power %g, want the 1/%d share %g", got, n, want)
	}
}
