package backend

import (
	"context"
	"fmt"
	"sync/atomic"

	"oftec/internal/thermal"
)

// BatchEvaluator is the optional capability of evaluating a block of
// operating points in one call. Implementations share per-batch work —
// one assembly and one preconditioner factorization per distinct fan
// speed, blocked multi-RHS triangular sweeps — but the contract is purely
// about performance: results[i] must be exactly what Evaluate(ctx,
// ops[i], warm') would return under the batch's warm-start protocol
// (within each ω-group the first point's solution seeds the rest when
// warm is nil). Callers probe for it with a type assertion and fall back
// to per-point Evaluate when absent.
type BatchEvaluator interface {
	EvaluateBatch(ctx context.Context, ops []OpPoint, warm []float64) ([]*thermal.Result, error)
}

// romCacheDir is the process-wide ROM basis cache directory, consulted
// whenever a reduced backend is built through Select("rom") or the "rom"
// registry factory. It is package state because the Factory signature is
// fixed at (model) → Plant; cmds set it once at startup before any
// backend construction.
var romCacheDir atomic.Value

// SetROMCacheDir sets the directory used to persist and load ROM bases.
// Empty (the default) disables persistence.
func SetROMCacheDir(dir string) { romCacheDir.Store(dir) }

// ROMCacheDir returns the configured ROM basis cache directory.
func ROMCacheDir() string {
	dir, _ := romCacheDir.Load().(string)
	return dir
}

// EvaluateBatch evaluates scalar operating points as blocked multi-RHS
// solves on the full model, grouped by fan speed.
func (f *Full) EvaluateBatch(ctx context.Context, ops []OpPoint, warm []float64) ([]*thermal.Result, error) {
	pts := make([]thermal.BatchPoint, len(ops))
	for i, op := range ops {
		if err := op.validate(); err != nil {
			return nil, err
		}
		if op.K() != 1 {
			return nil, fmt.Errorf("backend: full backend got a %d-zone point in a batch without zoning (use WithZoning)", op.K())
		}
		pts[i] = thermal.BatchPoint{Omega: op.Omega, ITEC: op.Currents[0]}
	}
	return f.m.EvaluateBatch(ctx, pts, warm)
}

// EvaluateBatch evaluates zoned operating points as blocked multi-RHS
// solves; every point carries one current per zone.
func (zf *zonedFull) EvaluateBatch(ctx context.Context, ops []OpPoint, warm []float64) ([]*thermal.Result, error) {
	pts := make([]thermal.ZonedPoint, len(ops))
	for i, op := range ops {
		if err := op.validate(); err != nil {
			return nil, err
		}
		pts[i] = thermal.ZonedPoint{Omega: op.Omega, Currents: op.Currents}
	}
	return zf.m.EvaluateZonedBatch(ctx, zf.z, pts, warm)
}

// EvaluateBatch answers each scalar point from the reduced model when it
// stays inside its error bound and batches every miss into one blocked
// full-model solve, preserving the per-index result contract.
func (r *ROM) EvaluateBatch(ctx context.Context, ops []OpPoint, warm []float64) ([]*thermal.Result, error) {
	out := make([]*thermal.Result, len(ops))
	var missIdx []int
	var missOps []OpPoint
	for i, op := range ops {
		if err := op.validate(); err != nil {
			return nil, err
		}
		if op.K() == 1 {
			res, ok, err := r.rm.Evaluate(op.Omega, op.Currents[0])
			if err != nil {
				return nil, err
			}
			if ok {
				out[i] = res
				continue
			}
		}
		missIdx = append(missIdx, i)
		missOps = append(missOps, op)
	}
	if len(missOps) > 0 {
		full, err := r.full.EvaluateBatch(ctx, missOps, warm)
		if err != nil {
			return nil, err
		}
		for j, i := range missIdx {
			out[i] = full[j]
		}
	}
	return out, nil
}
