package backend

import (
	"oftec/internal/coolant"
	"oftec/internal/thermal"
)

// Known reports whether name is a registered backend. CLIs use it to
// reject a typo'd -backend flag up front, with Names() in the message,
// instead of surfacing the failure deep in model setup.
func Known(name string) bool {
	if name == "" {
		return true // empty selects "full"
	}
	registry.RLock()
	defer registry.RUnlock()
	_, ok := registry.factories[name]
	return ok
}

// reactuated wraps a factory so it rebuilds the model under the named
// coolant variant before delegating. A model already carrying the exact
// spec is used as-is (the -coolant flag path pre-sets the config; the
// -backend liquid path arrives with the default air config).
func reactuated(variant string, f Factory) Factory {
	return func(m *thermal.Model) (Plant, error) {
		spec, err := coolant.SpecByName(variant)
		if err != nil {
			return nil, err
		}
		lm, err := m.WithCoolant(spec)
		if err != nil {
			return nil, err
		}
		return f(lm)
	}
}

func init() {
	// The liquid-loop and multi-chip-package variants of the full
	// backend: same floorplan and calibration, re-actuated through the
	// coolant seam. Registered here (not in the coolant package) so the
	// registry stays the single place backend names come from.
	Register("liquid", reactuated("liquid", func(m *thermal.Model) (Plant, error) {
		return NewFull(m).Renamed("liquid"), nil
	}))
	Register("package", reactuated("liquid-package", func(m *thermal.Model) (Plant, error) {
		return NewFull(m).Renamed("package"), nil
	}))
}
