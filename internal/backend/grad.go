package backend

import (
	"context"
	"fmt"

	"oftec/internal/thermal"
)

// GradEvaluator is the capability of computing exact adjoint gradients of
// the two optimizer objectives at an operating point: ∇𝒫 and ∇𝒯_τ over
// x = (ω, I₁..I_k), one adjoint solve per objective on the cached
// factorization (see thermal.Model.EvaluateGrad).
//
// Only backends whose evaluation IS the full linear solve can offer the
// capability — the ROM's reduced system has different adjoints than the
// plant it approximates — so approximate backends simply do not implement
// it and GradientOf falls through to their authoritative sibling.
type GradEvaluator interface {
	EvaluateGrad(ctx context.Context, op OpPoint) (*thermal.Gradient, error)
}

// GradientOf walks ev's fall-through chain and returns the first backend
// offering adjoint gradients. A ROM (or any decorated evaluator) that
// cannot differentiate itself resolves to the full backend underneath it;
// a chain with no gradient-capable member reports false and the caller
// stays on finite differences.
func GradientOf(ev Evaluator) (GradEvaluator, bool) {
	for ev != nil {
		if g, ok := ev.(GradEvaluator); ok {
			return g, true
		}
		f, ok := ev.(Fallthrough)
		if !ok {
			return nil, false
		}
		next := f.Fallthrough()
		if next == ev {
			return nil, false
		}
		ev = next
	}
	return nil, false
}

// EvaluateGrad computes the scalar adjoint gradient on the full model.
func (f *Full) EvaluateGrad(_ context.Context, op OpPoint) (*thermal.Gradient, error) {
	if err := op.validate(); err != nil {
		return nil, err
	}
	if op.K() != 1 {
		return nil, fmt.Errorf("backend: full backend got a %d-zone gradient point without zoning (use WithZoning)", op.K())
	}
	return f.m.EvaluateGrad(op.Omega, op.Currents[0])
}

// EvaluateGrad computes the zoned adjoint gradient; the returned
// PowerGrad/TempGrad have length 1+k ordered (ω, I₁..I_k).
func (zf *zonedFull) EvaluateGrad(_ context.Context, op OpPoint) (*thermal.Gradient, error) {
	if err := op.validate(); err != nil {
		return nil, err
	}
	return zf.m.EvaluateZonedGrad(op.Omega, zf.z, op.Currents)
}
