package backend

import (
	"context"

	"oftec/internal/power"
	"oftec/internal/thermal"
)

// ROM is the reduced-order backend: scalar steady-state evaluations run
// through a Galerkin-projected model built once from the full model (see
// thermal.ReducedModel), and anything the ROM cannot answer within its
// advertised error bound — rejected reductions, runaway-adjacent points,
// zoned operating points — falls through to the full backend. Plant
// capabilities (transients, workload changes, power accounting) always
// act on the one shared underlying model, so a controller driving the
// plant through the ROM observes exactly the physics the full backend
// would show it.
type ROM struct {
	full *Full
	rm   *thermal.ReducedModel
}

// NewROM builds the reduced-order sibling of a full backend.
func NewROM(full *Full, opts thermal.ROMOptions) (*ROM, error) {
	rm, err := thermal.NewReducedModel(full.m, opts)
	if err != nil {
		return nil, err
	}
	return &ROM{full: full, rm: rm}, nil
}

// Name identifies the backend.
func (r *ROM) Name() string { return "rom" }

// Config returns the underlying model's configuration.
func (r *ROM) Config() thermal.Config { return r.full.Config() }

// Fallthrough returns the exact backend the ROM delegates to.
func (r *ROM) Fallthrough() Evaluator { return r.full }

// ROMStats returns the reduced model's traffic counters.
func (r *ROM) ROMStats() thermal.ROMStats { return r.rm.Stats() }

// ErrorBound returns the advertised worst-case chip-temperature error of
// reduced evaluations, in kelvin.
func (r *ROM) ErrorBound() float64 { return r.rm.ErrorBound() }

// Evaluate answers scalar points from the reduced model when its error
// estimate stays inside the advertised bound, and falls through to the
// full backend otherwise (including every zoned point).
func (r *ROM) Evaluate(ctx context.Context, op OpPoint, warm []float64) (*thermal.Result, error) {
	if err := op.validate(); err != nil {
		return nil, err
	}
	if op.K() == 1 {
		res, ok, err := r.rm.Evaluate(op.Omega, op.Currents[0])
		if err != nil {
			return nil, err
		}
		if ok {
			return res, nil
		}
	}
	return r.full.Evaluate(ctx, op, warm)
}

// EvaluateExact always verifies on the full model.
func (r *ROM) EvaluateExact(omega, itec float64) (*thermal.Result, error) {
	return r.full.EvaluateExact(omega, itec)
}

// NewTransient integrates the full model — the ROM accelerates
// steady-state queries only.
func (r *ROM) NewTransient(omega, itec float64, t0 []float64) (Transient, error) {
	return r.full.NewTransient(omega, itec, t0)
}

// SetDynamicPower updates the shared model; the reduced model refreshes
// its projected RHS lazily on the next evaluation.
func (r *ROM) SetDynamicPower(dyn power.Map) error { return r.full.SetDynamicPower(dyn) }

// DynamicPowerTotal returns the summed dynamic power in watts.
func (r *ROM) DynamicPowerTotal() float64 { return r.full.DynamicPowerTotal() }

// InstantaneousPowers accounts leakage and TEC power for an arbitrary
// temperature field.
func (r *ROM) InstantaneousPowers(temps []float64, itec float64) (leak, tec float64, err error) {
	return r.full.InstantaneousPowers(temps, itec)
}

// NewZoning builds a validated zone assignment over the model's grid.
func (r *ROM) NewZoning(assign map[string]int, numZones int) (*thermal.Zoning, error) {
	return r.full.NewZoning(assign, numZones)
}

// WithZoning delegates zoned evaluation to the full backend: zone current
// patterns are outside the reduced manifold.
func (r *ROM) WithZoning(z *thermal.Zoning) (Evaluator, error) { return r.full.WithZoning(z) }

// Select returns the named sibling backend over the same model.
func (r *ROM) Select(name string) (Evaluator, error) {
	if name == "rom" {
		return r, nil
	}
	return r.full.Select(name)
}
