// Package backend defines the pluggable thermal-evaluation layer that
// sits between the physics (internal/thermal) and every consumer — the
// optimizer (internal/core), the DTM controllers (internal/controller),
// the experiment harness (internal/experiments), and the cmds.
//
// Consumers program against the Evaluator contract (and the optional
// capability interfaces below) instead of the concrete *thermal.Model;
// the backendleak analyzer in cmd/oftecvet enforces the seam. Concrete
// backends register themselves by name (see registry.go): "full" is the
// exact sparse steady-state solve, "rom" is the reduced-order fast path
// with automatic fall-through to full.
package backend

import (
	"context"
	"fmt"

	"oftec/internal/power"
	"oftec/internal/thermal"
)

// OpPoint is one steady-state operating point: an actuator command and one
// TEC driving current per control zone. k = len(Currents) = 1 is the
// paper's deployment (every module in series on one current); k > 1 is the
// zoned extension. The zero Currents slice is invalid — a scalar point is
// Currents of length one.
//
// Omega is the actuator command u: the fan speed ω in rad/s under the
// paper's air cooling, the pump speed under a liquid loop. The field keeps
// its historical name for compatibility; U() is the seam-era accessor.
type OpPoint struct {
	Omega    float64
	Currents []float64
}

// Scalar builds the k=1 operating point of the paper's deployment.
func Scalar(omega, itec float64) OpPoint {
	return OpPoint{Omega: omega, Currents: []float64{itec}}
}

// ScalarU is Scalar under the actuator-command naming: u is the fan speed
// for air cooling, the pump speed for a liquid loop.
func ScalarU(u, itec float64) OpPoint { return Scalar(u, itec) }

// U returns the actuator command (the Omega field under its
// actuator-agnostic name).
func (op OpPoint) U() float64 { return op.Omega }

// K returns the number of control zones.
func (op OpPoint) K() int { return len(op.Currents) }

// Evaluator is the backend contract every consumer programs against:
// compute the steady state at an operating point. warm is an optional
// temperature-field hint of length NumNodes that may steer an iterative
// solve but never the answer; implementations are free to ignore it.
// ctx bounds the call for implementations that can wait (the shared
// evaluation cache's in-flight rendezvous); nil means no cancellation.
//
// Implementations must be safe for concurrent Evaluate calls.
type Evaluator interface {
	// Name identifies the backend ("full", "rom", or a decorated variant).
	Name() string
	// Config returns the thermal configuration the backend evaluates.
	Config() thermal.Config
	// Evaluate computes the steady state at op. Thermal runaway is a
	// Result with Runaway set, not an error; errors mean the operating
	// point or the call itself was invalid.
	Evaluate(ctx context.Context, op OpPoint, warm []float64) (*thermal.Result, error)
}

// Transient is one transient thermal simulation, structurally satisfied
// by *thermal.Transient.
type Transient interface {
	Time() float64
	OperatingPoint() (omega, itec float64)
	SetOperatingPoint(omega, itec float64) error
	Temperatures() []float64
	ChipState() (maxTemp float64, temps []float64)
	Step(dt float64) (float64, error)
	SteadyStateGap() (float64, error)
}

// Plant extends Evaluator with the capabilities DTM controllers need:
// transient integration, workload changes, and instantaneous power
// accounting along a trajectory. Registered backends are Plants.
type Plant interface {
	Evaluator
	NewTransient(omega, itec float64, t0 []float64) (Transient, error)
	SetDynamicPower(dyn power.Map) error
	DynamicPowerTotal() float64
	InstantaneousPowers(temps []float64, itec float64) (leak, tec float64, err error)
}

// ExactEvaluator is the capability of verifying a scalar operating point
// with the exact exponential leakage model (Outcome.ExactResult).
type ExactEvaluator interface {
	EvaluateExact(omega, itec float64) (*thermal.Result, error)
}

// Selector is the capability of switching backends over the same
// underlying physics: Select("rom") on a full backend returns (building
// lazily, at most once) its reduced-order sibling and vice versa.
type Selector interface {
	Select(name string) (Evaluator, error)
}

// Zoner is the capability of evaluating zoned (k > 1) operating points:
// WithZoning returns an Evaluator whose OpPoint.Currents are per-zone.
type Zoner interface {
	WithZoning(z *thermal.Zoning) (Evaluator, error)
	NewZoning(assign map[string]int, numZones int) (*thermal.Zoning, error)
}

// Fallthrough is implemented by backends that delegate rejected or
// unsupported evaluations to another evaluator (the ROM's full sibling,
// a cache's underlying backend). Authoritative walks the chain.
type Fallthrough interface {
	Fallthrough() Evaluator
}

// Authoritative returns the evaluator at the end of ev's fall-through
// chain — the one whose answers are exact and final. Optimizer finishes
// verify their chosen operating point against it so an approximate
// backend can never certify its own result.
func Authoritative(ev Evaluator) Evaluator {
	for {
		f, ok := ev.(Fallthrough)
		if !ok {
			return ev
		}
		next := f.Fallthrough()
		if next == nil || next == ev {
			return ev
		}
		ev = next
	}
}

// ModelProvider exposes the underlying *thermal.Model for callers outside
// the decoupled layers (cmds, benchmarks) that need model-only reporting
// such as heatmaps or hottest-unit lookups.
type ModelProvider interface {
	Model() *thermal.Model
}

// ModelOf walks ev's fall-through chain and returns the first underlying
// *thermal.Model it finds.
func ModelOf(ev Evaluator) (*thermal.Model, bool) {
	for ev != nil {
		if p, ok := ev.(ModelProvider); ok {
			return p.Model(), true
		}
		f, ok := ev.(Fallthrough)
		if !ok {
			return nil, false
		}
		next := f.Fallthrough()
		if next == ev {
			return nil, false
		}
		ev = next
	}
	return nil, false
}

// validate rejects malformed operating points before they reach a
// concrete backend.
func (op OpPoint) validate() error {
	if len(op.Currents) == 0 {
		return fmt.Errorf("backend: operating point has no currents (scalar points use Currents of length 1)")
	}
	return nil
}
