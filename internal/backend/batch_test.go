package backend

import (
	"context"
	"os"
	"reflect"
	"testing"

	"oftec/internal/thermal"
)

// opGrid is a small scalar sweep with repeated fan speeds, so batches
// exercise the per-ω grouping and warm-start carry.
func opGrid(omegaMax, iMax float64) []OpPoint {
	var ops []OpPoint
	for _, of := range []float64{0.4, 0.8} {
		for _, cf := range []float64{0, 0.5, 1} {
			ops = append(ops, Scalar(of*omegaMax, cf*iMax))
		}
	}
	return ops
}

// TestBatchEvaluatorConformance pins that every shipped backend exposes
// the BatchEvaluator capability and that batched results match per-point
// Evaluate exactly (DeepEqual) on a fresh replica.
func TestBatchEvaluatorConformance(t *testing.T) {
	for _, name := range []string{"full", "rom"} {
		t.Run(name, func(t *testing.T) {
			p := testPlant(t, name, "Basicmath")
			be, ok := p.(BatchEvaluator)
			if !ok {
				t.Fatalf("%s backend does not implement BatchEvaluator", name)
			}
			cfg := p.Config()
			ops := opGrid(cfg.Fan.OmegaMax, cfg.TEC.MaxCurrent)
			got, err := be.EvaluateBatch(context.Background(), ops, nil)
			if err != nil {
				t.Fatal(err)
			}

			ref := testPlant(t, name, "Basicmath")
			want := make([]*thermal.Result, len(ops))
			seeds := map[float64][]float64{}
			seen := map[float64]bool{}
			for i, op := range ops {
				var seed []float64
				if seen[op.Omega] {
					seed = seeds[op.Omega]
				}
				res, err := ref.Evaluate(context.Background(), op, seed)
				if err != nil {
					t.Fatal(err)
				}
				want[i] = res
				if !seen[op.Omega] {
					seen[op.Omega] = true
					if !res.Runaway {
						seeds[op.Omega] = res.T
					}
				}
			}
			for i := range got {
				if !reflect.DeepEqual(got[i], want[i]) {
					t.Errorf("point %d (ω=%g, I=%g): batched result differs from per-point",
						i, ops[i].Omega, ops[i].Currents[0])
				}
			}
		})
	}
}

// TestBatchEvaluatorZoned pins the zoned batch path against per-point
// zoned evaluation.
func TestBatchEvaluatorZoned(t *testing.T) {
	p := testPlant(t, "full", "Basicmath")
	full := p.(*Full)
	assign := map[string]int{}
	for i, u := range full.Config().Floorplan.Units() {
		assign[u.Name] = i % 2
	}
	z, err := full.NewZoning(assign, 2)
	if err != nil {
		t.Fatal(err)
	}
	zev, err := full.WithZoning(z)
	if err != nil {
		t.Fatal(err)
	}
	be, ok := zev.(BatchEvaluator)
	if !ok {
		t.Fatal("zoned full evaluator does not implement BatchEvaluator")
	}

	ops := []OpPoint{
		{Omega: 180, Currents: []float64{0, 0}},
		{Omega: 180, Currents: []float64{0.6, 1.1}},
		{Omega: 240, Currents: []float64{1.2, 0.3}},
	}
	got, err := be.EvaluateBatch(context.Background(), ops, nil)
	if err != nil {
		t.Fatal(err)
	}

	rp := testPlant(t, "full", "Basicmath").(*Full)
	rz, err := rp.NewZoning(assign, 2)
	if err != nil {
		t.Fatal(err)
	}
	rev, err := rp.WithZoning(rz)
	if err != nil {
		t.Fatal(err)
	}
	seeds := map[float64][]float64{}
	seen := map[float64]bool{}
	for i, op := range ops {
		var seed []float64
		if seen[op.Omega] {
			seed = seeds[op.Omega]
		}
		want, err := rev.Evaluate(context.Background(), op, seed)
		if err != nil {
			t.Fatal(err)
		}
		if !seen[op.Omega] {
			seen[op.Omega] = true
			if !want.Runaway {
				seeds[op.Omega] = want.T
			}
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Errorf("zoned point %d: batched result differs from per-point", i)
		}
	}

	// A zoned point in a scalar batch is rejected, like per-point.
	if _, err := full.EvaluateBatch(context.Background(), ops, nil); err == nil {
		t.Error("scalar batch accepted zoned points without zoning")
	}
}

// TestROMBatchFallsThrough pins the miss handling: in-hull points answer
// reduced, out-of-hull points batch through the full sibling, indices
// preserved.
func TestROMBatchFallsThrough(t *testing.T) {
	p := testPlant(t, "rom", "Basicmath")
	rom := p.(*ROM)
	cfg := p.Config()

	ops := []OpPoint{
		Scalar(0.7*cfg.Fan.OmegaMax, 0.5*cfg.TEC.MaxCurrent), // in-hull
		Scalar(0.1, 0), // below the ω floor: rejected, runaway on full
		Scalar(0.5*cfg.Fan.OmegaMax, 0),
	}
	got, err := rom.EvaluateBatch(context.Background(), ops, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := rom.ROMStats()
	if s.Rejections == 0 {
		t.Errorf("no ROM rejection recorded for the out-of-hull point: %+v", s)
	}
	if !got[1].Runaway {
		t.Error("out-of-hull point did not classify as runaway through the full batch")
	}
	for i, r := range got {
		if r == nil {
			t.Fatalf("point %d nil", i)
		}
		if r.Omega != ops[i].Omega {
			t.Errorf("point %d: result ω=%g, want %g (index mix-up)", i, r.Omega, ops[i].Omega)
		}
	}
}

func TestSetROMCacheDir(t *testing.T) {
	old := ROMCacheDir()
	defer SetROMCacheDir(old)
	dir := t.TempDir()
	SetROMCacheDir(dir)
	if got := ROMCacheDir(); got != dir {
		t.Fatalf("ROMCacheDir() = %q, want %q", got, dir)
	}
	// A backend built now persists its basis into the configured dir.
	p := testPlant(t, "rom", "CRC32")
	if _, err := p.Evaluate(context.Background(), Scalar(200, 1), nil); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) == 0 {
		t.Error("ROM construction with a cache dir wrote no basis file")
	}
}
