package backend

import (
	"fmt"
	"sort"
	"sync"

	"oftec/internal/power"
	"oftec/internal/thermal"
)

// Factory builds a registered backend over an assembled model.
type Factory func(m *thermal.Model) (Plant, error)

var registry = struct {
	sync.RWMutex
	factories map[string]Factory
}{factories: map[string]Factory{}}

// Register adds a named backend factory. Registering a duplicate name
// panics: backends are wired at init time and a silent overwrite would
// make -backend selection depend on package-init order.
func Register(name string, f Factory) {
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.factories[name]; dup {
		panic(fmt.Sprintf("backend: duplicate registration of %q", name))
	}
	registry.factories[name] = f
}

// Names lists the registered backends, sorted.
func Names() []string {
	registry.RLock()
	defer registry.RUnlock()
	names := make([]string, 0, len(registry.factories))
	for n := range registry.factories {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// New assembles a thermal model for (cfg, dyn) and wraps it in the named
// backend. An empty name selects "full".
func New(name string, cfg thermal.Config, dyn power.Map) (Plant, error) {
	m, err := thermal.NewModel(cfg, dyn)
	if err != nil {
		return nil, err
	}
	return FromModel(name, m)
}

// FromModel wraps an existing model in the named backend. An empty name
// selects "full".
func FromModel(name string, m *thermal.Model) (Plant, error) {
	if name == "" {
		name = "full"
	}
	registry.RLock()
	f, ok := registry.factories[name]
	registry.RUnlock()
	if !ok {
		return nil, fmt.Errorf("backend: unknown backend %q (have %v)", name, Names())
	}
	return f(m)
}

func init() {
	Register("full", func(m *thermal.Model) (Plant, error) {
		return NewFull(m), nil
	})
	Register("rom", func(m *thermal.Model) (Plant, error) {
		ev, err := NewFull(m).Select("rom")
		if err != nil {
			return nil, err
		}
		return ev.(*ROM), nil
	})
}
