package backend

import (
	"context"
	"testing"

	"oftec/internal/thermal"
	"oftec/internal/workload"
)

func testPlant(t *testing.T, name, bench string) Plant {
	t.Helper()
	cfg := thermal.DefaultConfig()
	cfg.ChipRes = 8
	cfg.SpreaderRes = 7
	cfg.SinkRes = 6
	cfg.PCBRes = 4
	b, err := workload.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	pm, err := b.PowerMap(cfg.Floorplan)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(name, cfg, pm)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRegistryNames(t *testing.T) {
	names := Names()
	want := map[string]bool{"full": false, "rom": false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("backend %q not registered (have %v)", n, names)
		}
	}
	if _, err := FromModel("nope", nil); err == nil {
		t.Error("unknown backend accepted")
	}
}

// TestFullScalarMatchesModel pins the k=1 contract: the full backend is a
// pass-through to the model's memoized scalar path (identical pointer),
// and a single-zone zoned evaluator returns the very same result.
func TestFullScalarMatchesModel(t *testing.T) {
	p := testPlant(t, "full", "CRC32")
	full := p.(*Full)
	want, err := full.Model().Evaluate(200, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Evaluate(context.Background(), Scalar(200, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Error("full backend did not return the model's memoized result")
	}

	assign := map[string]int{}
	for _, u := range full.Config().Floorplan.Units() {
		assign[u.Name] = 0
	}
	z, err := full.NewZoning(assign, 1)
	if err != nil {
		t.Fatal(err)
	}
	zev, err := full.WithZoning(z)
	if err != nil {
		t.Fatal(err)
	}
	zgot, err := zev.Evaluate(context.Background(), OpPoint{Omega: 200, Currents: []float64{1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if zgot != want {
		t.Error("single-zone zoned evaluation is not the scalar result")
	}

	// Malformed points are rejected, not guessed at.
	if _, err := p.Evaluate(context.Background(), OpPoint{Omega: 200}, nil); err == nil {
		t.Error("empty Currents accepted")
	}
	if _, err := p.Evaluate(context.Background(), OpPoint{Omega: 200, Currents: []float64{1, 1}}, nil); err == nil {
		t.Error("zoned point accepted without zoning")
	}
}

// TestROMFallsThrough pins the chain: the ROM answers in-hull scalar
// points itself, delegates runaway-adjacent and zoned points to full, and
// Authoritative/ModelOf resolve through it.
func TestROMFallsThrough(t *testing.T) {
	p := testPlant(t, "rom", "Basicmath")
	rom := p.(*ROM)
	cfg := p.Config()

	if auth := Authoritative(rom); auth != rom.full {
		t.Errorf("Authoritative(rom) = %T %v, want the full backend", auth, auth)
	}
	if m, ok := ModelOf(rom); !ok || m != rom.full.Model() {
		t.Error("ModelOf did not resolve through the fall-through chain")
	}

	in := Scalar(0.7*cfg.Fan.OmegaMax, 0.5*cfg.TEC.MaxCurrent)
	if _, err := p.Evaluate(context.Background(), in, nil); err != nil {
		t.Fatal(err)
	}
	if s := rom.ROMStats(); s.Evaluations != 1 || s.Rejections != 0 {
		t.Errorf("in-hull point not served reduced: %+v", s)
	}

	// ω≈0 is below the snapshot floor: the ROM must reject and the full
	// backend must classify the point (runaway), transparently.
	res, err := p.Evaluate(context.Background(), Scalar(0.1, 0), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Runaway {
		t.Error("near-zero fan speed did not run away")
	}
	if s := rom.ROMStats(); s.Rejections != 1 {
		t.Errorf("fall-through not counted: %+v", s)
	}

	// Selection is symmetric.
	fullEv, err := rom.Select("full")
	if err != nil || fullEv != Evaluator(rom.full) {
		t.Errorf("Select(full) = %v, %v", fullEv, err)
	}
	romEv, err := rom.full.Select("rom")
	if err != nil || romEv != Evaluator(rom) {
		t.Errorf("full.Select(rom) = %v, %v (want the one lazily built sibling)", romEv, err)
	}
}
