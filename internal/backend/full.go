package backend

import (
	"context"
	"fmt"
	"sync"

	"oftec/internal/power"
	"oftec/internal/thermal"
)

// Full is the exact backend: every evaluation is the sparse steady-state
// solve of the complete thermal network (with the model's own
// factorization cache and result memo underneath). It is the
// authoritative end of every fall-through chain.
type Full struct {
	m *thermal.Model

	// name is the registry name the backend reports; empty means "full".
	// Registry variants that are a Full over a re-actuated model
	// ("liquid", "package") keep their registered name visible in
	// reports and the serve pool without a capability-hiding wrapper.
	name string

	// The ROM sibling is built lazily, once; construction costs a few
	// dozen snapshot solves, so a caller that never selects "rom" never
	// pays for it.
	romOnce sync.Once
	rom     Evaluator
	romErr  error
}

// NewFull wraps an assembled thermal model as the exact backend.
func NewFull(m *thermal.Model) *Full { return &Full{m: m} }

// Renamed sets the registry name the backend reports and returns it;
// used by registry variants built over a re-actuated model.
func (f *Full) Renamed(name string) *Full {
	f.name = name
	return f
}

// Name identifies the backend.
func (f *Full) Name() string {
	if f.name != "" {
		return f.name
	}
	return "full"
}

// Config returns the underlying model's configuration.
func (f *Full) Config() thermal.Config { return f.m.Config() }

// Model exposes the underlying model for cmd-level reporting.
func (f *Full) Model() *thermal.Model { return f.m }

// Evaluate computes the exact steady state. Zoned (k > 1) points need a
// zone-to-cell map and must go through WithZoning.
func (f *Full) Evaluate(_ context.Context, op OpPoint, warm []float64) (*thermal.Result, error) {
	if err := op.validate(); err != nil {
		return nil, err
	}
	if op.K() != 1 {
		return nil, fmt.Errorf("backend: full backend got a %d-zone point without zoning (use WithZoning)", op.K())
	}
	return f.m.EvaluateWarm(op.Omega, op.Currents[0], warm)
}

// EvaluateExact verifies a scalar point with the exact exponential
// leakage model.
func (f *Full) EvaluateExact(omega, itec float64) (*thermal.Result, error) {
	return f.m.EvaluateExact(omega, itec)
}

// NewTransient starts a transient simulation from t0.
func (f *Full) NewTransient(omega, itec float64, t0 []float64) (Transient, error) {
	return f.m.NewTransient(omega, itec, t0)
}

// SetDynamicPower replaces the workload's dynamic power input.
func (f *Full) SetDynamicPower(dyn power.Map) error { return f.m.SetDynamicPower(dyn) }

// DynamicPowerTotal returns the summed dynamic power in watts.
func (f *Full) DynamicPowerTotal() float64 { return f.m.DynamicPowerTotal() }

// InstantaneousPowers accounts leakage and TEC power for an arbitrary
// temperature field.
func (f *Full) InstantaneousPowers(temps []float64, itec float64) (leak, tec float64, err error) {
	return f.m.InstantaneousPowers(temps, itec)
}

// NewZoning builds a validated zone assignment over the model's grid.
func (f *Full) NewZoning(assign map[string]int, numZones int) (*thermal.Zoning, error) {
	return f.m.NewZoning(assign, numZones)
}

// WithZoning returns an evaluator for zoned operating points: OpPoint
// carries one current per zone of z.
func (f *Full) WithZoning(z *thermal.Zoning) (Evaluator, error) {
	if z == nil {
		return nil, fmt.Errorf("backend: nil zoning")
	}
	return &zonedFull{m: f.m, z: z}, nil
}

// Select returns the named sibling backend over the same model.
func (f *Full) Select(name string) (Evaluator, error) {
	switch name {
	case "", "full":
		return f, nil
	case "rom":
		f.romOnce.Do(func() {
			f.rom, f.romErr = NewROM(f, thermal.ROMOptions{CacheDir: ROMCacheDir()})
		})
		return f.rom, f.romErr
	default:
		return nil, fmt.Errorf("backend: unknown backend %q (have %v)", name, Names())
	}
}

// zonedFull evaluates k-zone operating points on the full model. A
// single-zone point is delegated to the scalar path inside the thermal
// layer, so k=1 zoned evaluation is bit-identical to scalar evaluation.
type zonedFull struct {
	m *thermal.Model
	z *thermal.Zoning
}

func (zf *zonedFull) Name() string           { return "full/zoned" }
func (zf *zonedFull) Config() thermal.Config { return zf.m.Config() }
func (zf *zonedFull) Model() *thermal.Model  { return zf.m }

func (zf *zonedFull) Evaluate(_ context.Context, op OpPoint, warm []float64) (*thermal.Result, error) {
	if err := op.validate(); err != nil {
		return nil, err
	}
	return zf.m.EvaluateZonedWarm(op.Omega, zf.z, op.Currents, warm)
}
