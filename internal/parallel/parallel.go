// Package parallel is the fan-out engine behind the repository's
// embarrassingly parallel drivers: the ω×I_TEC surface sweep (Figure 6),
// the Pareto threshold probe, the multistart corner launch, and the
// sensitivity/throttling studies. Every experiment in the paper's
// evaluation section is a set of independent steady-state solves, so one
// bounded worker pool covers them all.
//
// The engine's contract:
//
//   - Bounded: at most min(workers, n) goroutines run tasks, with
//     workers defaulting to runtime.GOMAXPROCS(0).
//   - Ordered: tasks are dispatched in index order and callers collect
//     results by index (out[i] = ...), so output order never depends on
//     scheduling.
//   - Deterministic errors: when tasks fail, the error of the
//     lowest-index failing task is returned — the same error a serial
//     loop would have stopped on — because dispatch is in index order and
//     the pool drains in-flight tasks before returning.
//   - Cancellable: a cancelled context stops dispatch; in-flight tasks
//     finish and the context's error is returned when no task failed.
//     When a task fails and the context is cancelled in the same drain,
//     the task error wins: a caller retrying on context.Canceled must
//     not lose the real failure underneath it.
package parallel

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: n > 0 is taken as-is; zero
// and negative values select runtime.GOMAXPROCS(0). Callers use the
// convention 0 = "size to the hardware" and 1 = "serial reference path".
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(0), fn(1), …, fn(n-1) on a pool of min(Workers(workers),
// n) goroutines and waits for completion. On failure it stops dispatching
// new tasks, drains the in-flight ones, and returns the error of the
// lowest-index task that failed (identical to the error a serial loop
// stops on, because tasks are dispatched in index order). With one worker
// it degenerates to exactly that serial loop, short-circuit included.
//
// fn must be safe for concurrent invocation when more than one worker is
// requested; writes to shared output slices are safe as long as each task
// writes only its own index.
func ForEach(ctx context.Context, n, workers int, fn func(i int) error) error {
	if fn == nil {
		return errors.New("parallel: nil task function")
	}
	if n <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next    atomic.Int64 // next index to dispatch, minus one
		stopped atomic.Bool  // set on first failure or cancellation

		mu       sync.Mutex
		firstIdx = n // lowest failing index seen so far
		firstErr error
	)
	next.Store(-1)
	record := func(i int, err error) {
		mu.Lock()
		if i < firstIdx {
			firstIdx, firstErr = i, err
		}
		mu.Unlock()
		stopped.Store(true)
	}

	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if stopped.Load() || ctx.Err() != nil {
					return
				}
				i := int(next.Add(1))
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					record(i, err)
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}
