package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	if got := Workers(0); got != want {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, want)
	}
	if got := Workers(-3); got != want {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS %d", got, want)
	}
}

// TestForEachOrderedCollection checks that index-addressed writes from the
// pool assemble the same output a serial loop produces.
func TestForEachOrderedCollection(t *testing.T) {
	const n = 1000
	out := make([]int, n)
	if err := ForEach(context.Background(), n, 8, func(i int) error {
		out[i] = 3*i + 1
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != 3*i+1 {
			t.Fatalf("out[%d] = %d, want %d", i, v, 3*i+1)
		}
	}
}

// TestForEachBoundedConcurrency verifies the pool never runs more tasks at
// once than requested.
func TestForEachBoundedConcurrency(t *testing.T) {
	const n, workers = 200, 3
	var cur, peak atomic.Int64
	if err := ForEach(context.Background(), n, workers, func(i int) error {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(100 * time.Microsecond)
		cur.Add(-1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("observed %d concurrent tasks, pool bounded at %d", p, workers)
	}
}

// TestForEachFirstErrorWins checks deterministic error propagation: the
// lowest-index failure is returned even when a higher-index task fails
// first in wall-clock time.
func TestForEachFirstErrorWins(t *testing.T) {
	slowErr := errors.New("slow low-index failure")
	err := ForEach(context.Background(), 600, 8, func(i int) error {
		switch {
		case i == 5:
			time.Sleep(20 * time.Millisecond) // fail late in time, early in index
			return slowErr
		case i == 500:
			return fmt.Errorf("fast high-index failure")
		}
		return nil
	})
	if !errors.Is(err, slowErr) {
		t.Errorf("got %v, want the index-5 error", err)
	}
}

// TestForEachStopsDispatchOnError checks that a failure prevents most of
// the remaining tasks from starting (the pool only drains in-flight work).
func TestForEachStopsDispatchOnError(t *testing.T) {
	const n = 100000
	var ran atomic.Int64
	boom := errors.New("boom")
	err := ForEach(context.Background(), n, 4, func(i int) error {
		ran.Add(1)
		if i == 10 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	if r := ran.Load(); r >= n {
		t.Errorf("all %d tasks ran despite an early error", r)
	}
}

// TestForEachErrorPrecedenceOverCancellation pins the drain contract when
// a task fails AND the context is cancelled in the same drain: the
// lowest-index task error wins over ctx.Err(). A serial loop stopping on
// the failing task would never have seen the cancellation, and callers
// (the sweep engine, oftecd request fan-outs) rely on the real failure
// surfacing instead of a generic context.Canceled.
func TestForEachErrorPrecedenceOverCancellation(t *testing.T) {
	t.Run("failure-triggers-cancel", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		boom := errors.New("boom at index 2")
		err := ForEach(ctx, 8, 4, func(i int) error {
			if i == 2 {
				// Cancel first, then fail: the cancellation is fully
				// visible before the error is recorded, the worst order
				// for precedence.
				cancel()
				return boom
			}
			// Everyone else parks until the cancellation so the failure
			// and the cancelled drain coincide deterministically.
			<-ctx.Done()
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("got %v, want the task error despite cancellation", err)
		}
	})

	t.Run("lowest-failing-index-wins-after-cancel", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		err1 := errors.New("error at index 1")
		err3 := errors.New("error at index 3")
		// Tasks 1-3 announce themselves before parking, and task 0 only
		// cancels once all three are in flight — otherwise workers could
		// observe the cancellation before ever claiming an index, and a
		// drain with no task error correctly returns ctx.Err().
		var entered sync.WaitGroup
		entered.Add(3)
		err := ForEach(ctx, 4, 4, func(i int) error {
			switch i {
			case 0:
				entered.Wait()
				cancel()
				return nil
			case 1:
				entered.Done()
				<-ctx.Done()
				// Lose the race on purpose: index 3 records first.
				time.Sleep(5 * time.Millisecond)
				return err1
			case 3:
				entered.Done()
				<-ctx.Done()
				return err3
			default:
				entered.Done()
				<-ctx.Done()
				return nil
			}
		})
		if !errors.Is(err, err1) {
			t.Fatalf("got %v, want the lowest-index task error", err)
		}
	})

	t.Run("serial-task-error-wins-mid-task", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		boom := errors.New("serial boom")
		err := ForEach(ctx, 3, 1, func(i int) error {
			if i == 0 {
				cancel() // cancelled while the task is in flight
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("got %v, want the in-flight task error", err)
		}
	})
}

func TestForEachCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := ForEach(ctx, 100000, 4, func(i int) error {
		if ran.Add(1) == 50 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if r := ran.Load(); r >= 100000 {
		t.Error("cancellation did not stop dispatch")
	}
}

// TestForEachSerialPath pins the one-worker contract: strict index order
// and an immediate stop at the first error, with no later task running.
func TestForEachSerialPath(t *testing.T) {
	var order []int
	boom := errors.New("boom")
	err := ForEach(context.Background(), 10, 1, func(i int) error {
		order = append(order, i) // no mutex: serial path must be one goroutine
		if i == 6 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	if len(order) != 7 {
		t.Fatalf("ran %d tasks, want 7 (0..6)", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("serial path ran out of order: %v", order)
		}
	}
}

func TestForEachEdgeCases(t *testing.T) {
	if err := ForEach(context.Background(), 0, 4, func(int) error { return nil }); err != nil {
		t.Errorf("n=0: %v", err)
	}
	if err := ForEach(context.Background(), 4, 4, nil); err == nil {
		t.Error("nil fn accepted")
	}
	// nil context is tolerated (treated as Background).
	var mu sync.Mutex
	seen := map[int]bool{}
	if err := ForEach(nil, 8, 2, func(i int) error { //nolint:staticcheck // deliberate nil ctx
		mu.Lock()
		seen[i] = true
		mu.Unlock()
		return nil
	}); err != nil {
		t.Errorf("nil ctx: %v", err)
	}
	if len(seen) != 8 {
		t.Errorf("nil ctx ran %d tasks, want 8", len(seen))
	}
}
