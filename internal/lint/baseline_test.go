package lint

import (
	"go/token"
	"reflect"
	"strings"
	"testing"
)

func TestBaselineRoundTrip(t *testing.T) {
	diags := []Diagnostic{
		{Pos: token.Position{Filename: "internal/a/a.go", Line: 10, Column: 3}, Analyzer: "hotalloc", Message: "make allocates"},
		{Pos: token.Position{Filename: "internal/b/b.go", Line: 2, Column: 1}, Analyzer: "errdrop", Message: "error value discarded with _"},
	}
	entries := ToBaseline(diags, nil)
	data, err := MarshalBaseline(entries)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalBaseline(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(entries, back) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", back, entries)
	}
	// Marshal again: byte-stable, so -write-baseline twice never churns
	// the committed file.
	data2, err := MarshalBaseline(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Errorf("marshal not stable:\n%s\nvs\n%s", data, data2)
	}
}

func TestBaselineEmptyMarshal(t *testing.T) {
	data, err := MarshalBaseline(nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "[]\n" {
		t.Errorf("empty baseline = %q, want %q", data, "[]\n")
	}
	entries, err := UnmarshalBaseline(data)
	if err != nil || len(entries) != 0 {
		t.Errorf("UnmarshalBaseline([]) = %v, %v", entries, err)
	}
}

func TestBaselineNormalization(t *testing.T) {
	diags := []Diagnostic{
		{Pos: token.Position{Filename: "/abs/root/internal/a/a.go", Line: 1, Column: 1}, Analyzer: "x", Message: "m"},
	}
	entries := ToBaseline(diags, func(p string) string {
		return strings.TrimPrefix(p, "/abs/root/")
	})
	if entries[0].File != "internal/a/a.go" {
		t.Errorf("normalized file = %q", entries[0].File)
	}
}

func TestBaselineUnmarshalRejectsIncomplete(t *testing.T) {
	cases := []string{
		`[{"file":"","line":1,"col":1,"analyzer":"a","message":"m"}]`,
		`[{"file":"f","line":1,"col":1,"analyzer":"","message":"m"}]`,
		`[{"file":"f","line":1,"col":1,"analyzer":"a","message":""}]`,
		`{"not":"an array"}`,
	}
	for _, c := range cases {
		if _, err := UnmarshalBaseline([]byte(c)); err == nil {
			t.Errorf("UnmarshalBaseline(%s) should fail", c)
		}
	}
}

func TestDiffBaseline(t *testing.T) {
	e := func(file, analyzer, msg string, line int) BaselineEntry {
		return BaselineEntry{File: file, Line: line, Col: 1, Analyzer: analyzer, Message: msg}
	}

	// Line drift does not invalidate a baselined finding.
	fresh, stale := DiffBaseline(
		[]BaselineEntry{e("a.go", "hotalloc", "make allocates", 40)},
		[]BaselineEntry{e("a.go", "hotalloc", "make allocates", 10)},
	)
	if len(fresh) != 0 || len(stale) != 0 {
		t.Errorf("line drift: fresh=%v stale=%v, want none", fresh, stale)
	}

	// Multiplicity counts: two identical findings against one baselined
	// instance leaves one fresh.
	fresh, stale = DiffBaseline(
		[]BaselineEntry{
			e("a.go", "hotalloc", "make allocates", 10),
			e("a.go", "hotalloc", "make allocates", 20),
		},
		[]BaselineEntry{e("a.go", "hotalloc", "make allocates", 10)},
	)
	if len(fresh) != 1 || len(stale) != 0 {
		t.Errorf("multiset: fresh=%v stale=%v, want 1 fresh", fresh, stale)
	}

	// A fixed finding surfaces as stale so the baseline gets cleaned up.
	fresh, stale = DiffBaseline(
		nil,
		[]BaselineEntry{e("a.go", "errdrop", "dropped", 5)},
	)
	if len(fresh) != 0 || len(stale) != 1 {
		t.Errorf("stale: fresh=%v stale=%v, want 1 stale", fresh, stale)
	}

	// Different file, same message: no match.
	fresh, _ = DiffBaseline(
		[]BaselineEntry{e("b.go", "errdrop", "dropped", 5)},
		[]BaselineEntry{e("a.go", "errdrop", "dropped", 5)},
	)
	if len(fresh) != 1 {
		t.Errorf("cross-file: fresh=%v, want 1", fresh)
	}
}
