package lint

import (
	"go/ast"
	"strings"
)

// The //oftec: annotation grammar ties the static allocation discipline to
// the code it protects:
//
//	//oftec:hotpath
//	    in a function's doc comment: the function (and, through the call
//	    graph, every module-internal function it can reach) must not
//	    allocate. This is the static counterpart of the 0 allocs/op
//	    contract the PR 3 benchmarks established dynamically.
//
//	//oftec:allocok <reason>
//	    in a callee's doc comment: the callee is a sanctioned cold or
//	    amortized path (factorization on a version miss, error
//	    construction, result materialization) — the hot-path obligation
//	    stops here and the callee's body is not scanned. The reason is
//	    mandatory; a bare //oftec:allocok is itself a finding.
//
// The directives live in doc comments (immediately above the declaration)
// so they travel with the function through refactors, unlike line-keyed
// //lint:ignore suppressions which pin single findings.

const (
	hotpathDirective = "//oftec:hotpath"
	allocokDirective = "//oftec:allocok"
)

// funcDirectives is the parsed annotation state of one function.
type funcDirectives struct {
	hotpath       bool
	allocok       bool
	allocokReason string
}

// parseFuncDirectives reads the //oftec: directives out of a declaration's
// doc comment group.
func parseFuncDirectives(doc *ast.CommentGroup) funcDirectives {
	var d funcDirectives
	if doc == nil {
		return d
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		switch {
		case text == hotpathDirective:
			d.hotpath = true
		case text == allocokDirective || strings.HasPrefix(text, allocokDirective+" "):
			d.allocok = true
			d.allocokReason = strings.TrimSpace(strings.TrimPrefix(text, allocokDirective))
		}
	}
	return d
}
