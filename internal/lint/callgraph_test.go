package lint

import (
	"path/filepath"
	"testing"
)

// TestCallGraphOnFixture builds the call graph over the hotalloc fixture
// and checks the resolution rules: direct calls and method calls appear
// as edges, dynamic calls (interface methods seen from the caller side)
// dead-end, and //oftec: directives are attached to the right nodes.
func TestCallGraphOnFixture(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "src", "hotalloc"), "fixture/hotalloc")
	if err != nil {
		t.Fatal(err)
	}
	g := BuildCallGraph([]*Package{pkg})

	eval := g.NodeByName("evaluate")
	if eval == nil {
		t.Fatal("evaluate not in call graph")
	}
	if !eval.Directives.hotpath {
		t.Error("evaluate must carry //oftec:hotpath")
	}
	wantCallees := map[string]bool{"sum": false, "coldPath": false}
	for _, e := range eval.Calls {
		name := funcDisplayName(e.Callee)
		if _, ok := wantCallees[name]; ok {
			wantCallees[name] = true
		}
	}
	for name, seen := range wantCallees {
		if !seen {
			t.Errorf("evaluate is missing a call edge to %s", name)
		}
	}

	cold := g.NodeByName("coldPath")
	if cold == nil || !cold.Directives.allocok || cold.Directives.allocokReason == "" {
		t.Errorf("coldPath must carry a reasoned //oftec:allocok, got %+v", cold)
	}

	bare := g.NodeByName("reasonless")
	if bare == nil || !bare.Directives.allocok || bare.Directives.allocokReason != "" {
		t.Errorf("reasonless must parse as allocok without reason, got %+v", bare)
	}

	load := g.NodeByName("(memoCache).load")
	if load == nil {
		t.Fatal("(memoCache).load not in call graph")
	}
	if !load.Directives.hotpath {
		t.Error("(memoCache).load must carry //oftec:hotpath")
	}

	// accept calls s.consume() through an interface: the edge resolves to
	// the abstract method, which has no node — it must dead-end, not point
	// at the concrete intBox implementation.
	accept := g.NodeByName("accept")
	if accept == nil {
		t.Fatal("accept not in call graph")
	}
	for _, e := range accept.Calls {
		if _, ok := g.Nodes[e.Callee]; ok {
			t.Errorf("interface call resolved to in-module node %s; must dead-end", funcDisplayName(e.Callee))
		}
	}
}
