package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// BackendLeakAnalyzer guards the evaluation seam introduced with
// internal/backend: the optimizer (internal/core), the DTM controllers
// (internal/controller), and the experiment harness (internal/experiments)
// must program against backend.Evaluator and its capability interfaces,
// never against the concrete *thermal.Model. A direct model reference in
// those packages bypasses the shared evaluation cache, the ROM fast path,
// and the authoritative-finish certification, and silently re-couples the
// layers the backend split decoupled.
//
// The analyzer reports, inside the scoped packages only:
//
//   - any identifier that resolves to the Model type of a package whose
//     import path ends in "internal/thermal" (declarations, conversions,
//     type assertions, composite literals, thermal.NewModel results bound
//     through explicit types);
//   - any method call or field selection whose receiver is (a pointer to)
//     that Model type — this catches values smuggled in through
//     backend.ModelOf or interface assertions, where no "Model"
//     identifier appears.
//
// Other thermal package types (Result, Config, Zoning, Transient) remain
// free to cross the seam: they are data, not the solver. Intentional
// escapes — model-only reporting with no backend equivalent — carry a
// //lint:ignore backendleak <reason> directive.
var BackendLeakAnalyzer = &Analyzer{
	Name: "backendleak",
	Doc:  "flags direct *thermal.Model references in the backend-decoupled packages",
	Run:  runBackendLeak,
}

// backendLeakScoped lists the import-path suffixes of the packages that
// must stay on the backend side of the seam.
var backendLeakScoped = []string{
	"internal/core",
	"internal/controller",
	"internal/experiments",
}

func runBackendLeak(pass *Pass) {
	scoped := false
	for _, suffix := range backendLeakScoped {
		if strings.HasSuffix(pass.Pkg.Path, suffix) {
			scoped = true
			break
		}
	}
	if !scoped {
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				obj := pass.Pkg.Info.Uses[n]
				if obj == nil {
					obj = pass.Pkg.Info.Defs[n]
				}
				if isThermalModelType(obj) {
					pass.Reportf(n.Pos(), "direct reference to thermal.Model; program against backend.Evaluator (or //lint:ignore backendleak with a reason)")
				}
			case *ast.SelectorExpr:
				// Method calls and field reads on a smuggled model value:
				// the Selections map only holds genuine member selections,
				// so qualified type names (thermal.Model) stay with the
				// identifier rule above.
				sel, ok := pass.Pkg.Info.Selections[n]
				if !ok {
					return true
				}
				if named := namedOf(sel.Recv()); named != nil && isThermalModelType(named.Obj()) {
					pass.Reportf(n.Sel.Pos(), "selection %s on a thermal.Model value; route through a backend capability interface (or //lint:ignore backendleak with a reason)", n.Sel.Name)
				}
			}
			return true
		})
	}
}

// isThermalModelType reports whether obj is the Model type name of a
// thermal package (import path suffix "internal/thermal").
func isThermalModelType(obj types.Object) bool {
	tn, ok := obj.(*types.TypeName)
	if !ok || tn.Name() != "Model" || tn.Pkg() == nil {
		return false
	}
	return strings.HasSuffix(tn.Pkg().Path(), "internal/thermal")
}

// namedOf unwraps pointers and aliases down to a named type, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Alias:
			t = types.Unalias(t)
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}
