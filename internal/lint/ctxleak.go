package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxLeakAnalyzer flags iterative functions that accept a cancellable
// options struct but never consult it.
//
// The solver package's contract is that every iterative method honors
// Options.Ctx at iteration boundaries, returning its best-so-far report
// when the context fires. A new solver (or driver) that takes the same
// Options and loops without ever consulting the context silently breaks
// that contract — the compiler cannot tell, because the field is simply
// unused. The analyzer reports any package-level function that (a) has a
// parameter whose struct type carries a field `Ctx context.Context`,
// (b) contains a for or range loop, and (c) neither reads `.Ctx`, nor
// calls a cancellation helper (a method whose name is "ctx" or mentions
// "cancel"), nor hands the options value wholesale to another function
// (delegation, e.g. MultiStart passing its Options to each launch).
var CtxLeakAnalyzer = &Analyzer{
	Name: "ctxleak",
	Doc:  "flags loop-bearing functions that take a Ctx-carrying options struct but never consult it",
	Run:  runCtxLeak,
}

func runCtxLeak(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			params := ctxParams(pass, fd)
			if len(params) == 0 || !hasLoop(fd.Body) {
				continue
			}
			for _, param := range params {
				if !consultsCtx(pass, fd.Body, param) {
					pass.Reportf(fd.Pos(), "%s loops but never consults %s.Ctx (check cancellation at iteration boundaries or delegate the options)",
						fd.Name.Name, param.Name())
				}
			}
		}
	}
}

// ctxParams returns the function's parameters whose (possibly pointer)
// struct type has a field Ctx of type context.Context.
func ctxParams(pass *Pass, fd *ast.FuncDecl) []types.Object {
	var out []types.Object
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj := pass.Pkg.Info.Defs[name]
			if obj != nil && hasCtxField(obj.Type()) {
				out = append(out, obj)
			}
		}
	}
	return out
}

// hasCtxField reports whether t (after unwrapping pointers) is a struct
// with a field named Ctx of type context.Context.
func hasCtxField(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() != "Ctx" {
			continue
		}
		if named, ok := f.Type().(*types.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context" {
				return true
			}
		}
	}
	return false
}

// hasLoop reports whether the body contains any for or range statement.
func hasLoop(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			found = true
		}
		return !found
	})
	return found
}

// consultsCtx reports whether the body reads param.Ctx, calls a
// cancellation helper on param, or uses param bare (delegating the whole
// options value to code that can consult it).
func consultsCtx(pass *Pass, body *ast.BlockStmt, param types.Object) bool {
	consulted := false
	ast.Inspect(body, func(n ast.Node) bool {
		if consulted {
			return false
		}
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok && pass.Pkg.Info.Uses[id] == param {
				name := sel.Sel.Name
				if name == "Ctx" || strings.EqualFold(name, "ctx") ||
					strings.Contains(strings.ToLower(name), "cancel") {
					consulted = true
				}
				// A field/method access other than the above is not a
				// consultation; skip the base ident so it does not count
				// as a bare (delegating) use below.
				return false
			}
			return true
		}
		if id, ok := n.(*ast.Ident); ok && pass.Pkg.Info.Uses[id] == param {
			// Bare use: the options value escapes wholesale (call
			// argument, assignment copy) — the callee can consult it.
			consulted = true
			return false
		}
		return true
	})
	return consulted
}
