package lint

import (
	"go/ast"
	"go/types"
)

// MutexCopyAnalyzer flags copies of mutex-bearing structs.
//
// core.System and the zoned evaluation cache guard their maps with a
// sync.Mutex; copying such a struct forks the lock from the state it
// protects, so the copy's lock guards nothing. The analyzer reports
// value receivers, by-value parameters and results, and range clauses
// whose iteration variable copies a struct that (transitively, through
// embedded or nested struct fields) contains a sync.Mutex or
// sync.RWMutex. Pointers, slices, and maps break the containment chain —
// sharing is the fix, and shared access is what the lock is for.
var MutexCopyAnalyzer = &Analyzer{
	Name: "mutexcopy",
	Doc:  "flags by-value passing/returning/ranging of structs containing sync.Mutex",
	Run:  runMutexCopy,
}

func runMutexCopy(pass *Pass) {
	memo := map[types.Type]bool{}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkFuncSig(pass, n, memo)
			case *ast.RangeStmt:
				checkRangeCopy(pass, n, memo)
			}
			return true
		})
	}
}

func checkFuncSig(pass *Pass, fd *ast.FuncDecl, memo map[types.Type]bool) {
	report := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := pass.TypeOf(field.Type)
			if t == nil || !containsMutex(t, memo) {
				continue
			}
			pass.Reportf(field.Type.Pos(), "%s %s copies %s, which contains a sync mutex; use a pointer", fd.Name.Name, what, types.TypeString(t, types.RelativeTo(pass.Pkg.Types)))
		}
	}
	if fd.Recv != nil {
		report(fd.Recv, "has a value receiver that")
	}
	report(fd.Type.Params, "takes a parameter that")
	report(fd.Type.Results, "returns a value that")
}

func checkRangeCopy(pass *Pass, n *ast.RangeStmt, memo map[types.Type]bool) {
	for _, v := range []ast.Expr{n.Key, n.Value} {
		if v == nil || isBlank(v) {
			continue
		}
		t := pass.TypeOf(v)
		if t != nil && containsMutex(t, memo) {
			pass.Reportf(v.Pos(), "range copies %s, which contains a sync mutex; range over indices or pointers", types.TypeString(t, types.RelativeTo(pass.Pkg.Types)))
		}
	}
}

// containsMutex reports whether t is, or is a struct transitively
// holding by value, a sync.Mutex or sync.RWMutex.
func containsMutex(t types.Type, memo map[types.Type]bool) bool {
	if v, ok := memo[t]; ok {
		return v
	}
	memo[t] = false // break cycles; structs cannot actually recurse by value
	result := false
	switch u := t.(type) {
	case *types.Named:
		obj := u.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
			(obj.Name() == "Mutex" || obj.Name() == "RWMutex") {
			result = true
		} else {
			result = containsMutex(u.Underlying(), memo)
		}
	case *types.Alias:
		result = containsMutex(types.Unalias(t), memo)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsMutex(u.Field(i).Type(), memo) {
				result = true
				break
			}
		}
	case *types.Array:
		result = containsMutex(u.Elem(), memo)
	}
	memo[t] = result
	return result
}
