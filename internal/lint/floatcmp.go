package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"strings"
)

// FloatCmpAnalyzer flags exact equality between floating-point values.
//
// Temperatures, powers, and geometry must be compared through
// units.ApproxEqual with the EpsTemp/EpsPower/EpsGeom tolerances; a raw
// == or != on float64 silently depends on bit-exact arithmetic. Two
// exemptions keep the signal clean: comparisons against a constant zero
// (the idiomatic exact guard before dividing, e.g. `if den == 0`), and
// the internal/units package itself, which implements the tolerance
// helpers.
var FloatCmpAnalyzer = &Analyzer{
	Name: "floatcmp",
	Doc:  "flags ==/!=/switch on float64 values outside internal/units",
	Run:  runFloatCmp,
}

func runFloatCmp(pass *Pass) {
	if strings.HasSuffix(pass.Pkg.Path, "internal/units") {
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if !pass.IsFloat(n.X) || !pass.IsFloat(n.Y) {
					return true
				}
				if isZeroConst(pass, n.X) || isZeroConst(pass, n.Y) {
					return true
				}
				pass.Reportf(n.OpPos, "float comparison with %s; use units.ApproxEqual with an Eps* tolerance", n.Op)
			case *ast.SwitchStmt:
				if n.Tag != nil && pass.IsFloat(n.Tag) {
					pass.Reportf(n.Switch, "switch on float value compares with ==; use units.ApproxEqual with an Eps* tolerance")
				}
			}
			return true
		})
	}
}

// isZeroConst reports whether e is a compile-time constant equal to zero.
func isZeroConst(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Pkg.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	return constant.Sign(tv.Value) == 0
}
