package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroLeakAnalyzer requires every goroutine this module launches to carry
// a provable join or cancellation obligation. A bare `go f()` with
// neither is how solver workers outlive a cancelled sweep: nothing waits
// for it, nothing can stop it, and under the benchmark harness it
// accumulates as a leak. A go statement passes if the spawned body
// satisfies at least one of:
//
//   - WaitGroup join: the body calls Done (directly or deferred) on a
//     sync.WaitGroup, and a matching Add on the same WaitGroup reaches
//     the go statement on the spawner's CFG;
//   - cancellation: the body receives from a context's Done channel
//     (`<-ctx.Done()`, typically in a select), so an upstream cancel
//     terminates it;
//   - channel join: the body sends on or closes a channel that the
//     spawner receives from (or ranges over) downstream of the go
//     statement.
//
// Spawns whose body cannot be resolved statically — `go fn()` through a
// function value — are reported as unprovable: the obligation may exist,
// but nothing in this module can check it, and the fix (spawn a literal,
// or name the function) is cheap. WaitGroups and channels are matched by
// their declaration object; when the spawned body is a named function,
// its parameters are mapped back to the call's arguments so
// `go worker(&wg, out)` still links Done/sends in the callee to
// Add/receives at the spawn site.
var GoroLeakAnalyzer = &Analyzer{
	Name:      "goroleak",
	Doc:       "requires every go statement to have a reachable join (WaitGroup, channel) or cancellation (context) obligation",
	RunModule: runGoroLeak,
}

func runGoroLeak(pass *ModulePass) {
	graph := pass.Graph()
	for _, node := range sortedNodes(graph) {
		cfg := pass.CFGOf(node.Decl)
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkGoStmt(pass, graph, node, cfg, gs)
			return true
		})
	}
}

// spawnBody is the resolved body of a spawned goroutine plus the mapping
// from objects used inside it back to objects at the spawn site.
type spawnBody struct {
	body *ast.BlockStmt
	info *types.Info
	// paramArg maps a callee parameter object to the spawner-side object
	// of the corresponding argument (when the argument resolves to one).
	paramArg map[types.Object]types.Object
}

func checkGoStmt(pass *ModulePass, graph *CallGraph, node *CallNode, cfg *CFG, gs *ast.GoStmt) {
	sb := resolveSpawnBody(pass, graph, node, gs.Call)
	if sb == nil {
		pass.Reportf(gs.Pos(), "go statement spawns through a dynamic value; join/cancellation obligation cannot be verified statically — spawn a function literal or a named function")
		return
	}

	// Cancellation: the body receives from a context Done channel.
	if bodyWatchesContext(sb) {
		return
	}

	// WaitGroup join: Done in the body, matching Add reaching the spawn.
	for _, wg := range bodyWaitGroupDones(sb) {
		if addReachesSpawn(node.Pkg, cfg, gs, wg) {
			return
		}
	}

	// Channel join: the body sends on / closes a channel the spawner
	// consumes downstream of the spawn.
	for _, ch := range bodyChannelSignals(sb) {
		if spawnerConsumesChannel(node.Pkg, cfg, gs, ch) {
			return
		}
	}

	pass.Reportf(gs.Pos(), "goroutine has no join or cancellation obligation: no WaitGroup Done matched by a reachable Add, no context Done receive, and no channel the spawner waits on")
}

// resolveSpawnBody finds the block of code the go statement runs: the
// function literal's body, or the declaration body of a statically
// resolved callee (with parameters mapped to spawn-site arguments).
func resolveSpawnBody(pass *ModulePass, graph *CallGraph, node *CallNode, call *ast.CallExpr) *spawnBody {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return &spawnBody{body: lit.Body, info: node.Pkg.Info}
	}
	callee := staticCallee(node.Pkg.Info, call)
	if callee == nil {
		return nil
	}
	cn, ok := graph.Nodes[callee]
	if !ok || cn.Decl.Body == nil {
		return nil
	}
	sb := &spawnBody{body: cn.Decl.Body, info: cn.Pkg.Info, paramArg: map[types.Object]types.Object{}}
	sig := callee.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len() && i < len(call.Args); i++ {
		arg := ast.Unparen(call.Args[i])
		if u, ok := arg.(*ast.UnaryExpr); ok && u.Op == token.AND {
			arg = ast.Unparen(u.X) // &wg → wg
		}
		if obj := objectOf(node.Pkg.Info, arg); obj != nil {
			sb.paramArg[sig.Params().At(i)] = obj
		}
	}
	return sb
}

// spawnObject resolves an object referenced inside the spawned body to
// its spawn-site equivalent: callee parameters map through the call's
// arguments, captured variables are already spawner objects.
func (sb *spawnBody) spawnObject(obj types.Object) types.Object {
	if mapped, ok := sb.paramArg[obj]; ok {
		return mapped
	}
	return obj
}

// bodyWatchesContext reports whether the spawned body receives from a
// context.Context's Done channel anywhere (select case or direct).
func bodyWatchesContext(sb *spawnBody) bool {
	found := false
	ast.Inspect(sb.body, func(n ast.Node) bool {
		u, ok := n.(*ast.UnaryExpr)
		if !ok || u.Op != token.ARROW {
			return true
		}
		call, ok := ast.Unparen(u.X).(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Done" {
			return true
		}
		if t := sb.info.TypeOf(sel.X); t != nil && isContextType(t) {
			found = true
			return false
		}
		return true
	})
	return found
}

func isContextType(t types.Type) bool {
	named := namedOf(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// bodyWaitGroupDones lists the spawn-site objects of every sync.WaitGroup
// the body calls Done on (deferred or direct).
func bodyWaitGroupDones(sb *spawnBody) []types.Object {
	var out []types.Object
	seen := map[types.Object]bool{}
	ast.Inspect(sb.body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Done" {
			return true
		}
		if !isWaitGroupType(sb.info.TypeOf(sel.X)) {
			return true
		}
		obj := objectOf(sb.info, sel.X)
		if obj == nil {
			return true
		}
		obj = sb.spawnObject(obj)
		if !seen[obj] {
			seen[obj] = true
			out = append(out, obj)
		}
		return true
	})
	return out
}

func isWaitGroupType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named := namedOf(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

// addReachesSpawn reports whether an Add call on the given WaitGroup
// object reaches the go statement on the spawner's CFG (same block
// earlier in statement order, or in a block with a path to the spawn's
// block).
func addReachesSpawn(pkg *Package, cfg *CFG, gs *ast.GoStmt, wg types.Object) bool {
	if cfg == nil {
		return false
	}
	isAdd := func(n ast.Node) bool {
		found := false
		ast.Inspect(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Add" || !isWaitGroupType(pkg.Info.TypeOf(sel.X)) {
				return true
			}
			if objectOf(pkg.Info, sel.X) == wg {
				found = true
				return false
			}
			return true
		})
		return found
	}
	return stmtReachesStmt(cfg, isAdd, func(n ast.Node) bool { return n == gs })
}

// bodyChannelSignals lists the spawn-site objects of channels the body
// sends on or closes — the signals a joining spawner can wait for.
func bodyChannelSignals(sb *spawnBody) []types.Object {
	var out []types.Object
	seen := map[types.Object]bool{}
	record := func(e ast.Expr) {
		obj := objectOf(sb.info, e)
		if obj == nil {
			return
		}
		obj = sb.spawnObject(obj)
		if !seen[obj] {
			seen[obj] = true
			out = append(out, obj)
		}
	}
	ast.Inspect(sb.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			record(n.Chan)
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, ok := sb.info.Uses[id].(*types.Builtin); ok && b.Name() == "close" && len(n.Args) == 1 {
					record(n.Args[0])
				}
			}
		}
		return true
	})
	return out
}

// spawnerConsumesChannel reports whether the spawner receives from or
// ranges over the given channel object downstream of the go statement.
func spawnerConsumesChannel(pkg *Package, cfg *CFG, gs *ast.GoStmt, ch types.Object) bool {
	if cfg == nil {
		return false
	}
	isRecv := func(n ast.Node) bool {
		if n == gs {
			return false // the spawn itself
		}
		// A bare channel-typed expression as a block node is a
		// range-over-channel header (the CFG records range headers as
		// their X expression).
		if e, ok := n.(ast.Expr); ok && objectOf(pkg.Info, e) == ch {
			if t := pkg.Info.TypeOf(e); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					return true
				}
			}
		}
		found := false
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				return false
			case *ast.UnaryExpr:
				if m.Op == token.ARROW && objectOf(pkg.Info, m.X) == ch {
					found = true
					return false
				}
			}
			return true
		})
		return found
	}
	return stmtReachesStmt(cfg, func(n ast.Node) bool { return n == gs }, isRecv)
}

// stmtReachesStmt reports whether some statement matching `from` reaches
// a statement matching `to` on the CFG: in the same block with from
// ordered first, or in a block from which to's block is reachable.
func stmtReachesStmt(cfg *CFG, from, to func(ast.Node) bool) bool {
	type loc struct {
		block *Block
		idx   int
	}
	var froms, tos []loc
	for _, b := range cfg.Blocks {
		for i, s := range b.Stmts {
			if from(s) {
				froms = append(froms, loc{b, i})
			}
			if to(s) {
				tos = append(tos, loc{b, i})
			}
		}
	}
	for _, f := range froms {
		for _, t := range tos {
			if f.block == t.block {
				if f.idx < t.idx {
					return true
				}
				continue
			}
			if reachable(f.block, t.block) {
				return true
			}
		}
	}
	return false
}

// objectOf resolves a simple expression (identifier or field selector) to
// its declaration object, or nil.
func objectOf(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	}
	return nil
}
