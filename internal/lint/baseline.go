package lint

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Baseline support: oftecvet -write-baseline snapshots the current
// findings into a JSON file; -baseline compares a later run against the
// snapshot and fails only on drift. The committed baseline for this
// repository is empty and scripts/check.sh keeps it that way — the
// mechanism exists so a finding introduced by an upstream change can be
// parked deliberately (reviewed, committed, visible in the diff) instead
// of silently accumulating or blocking unrelated work.
//
// Matching is a count-based multiset over (file, analyzer, message):
// line and column are recorded for human readers but ignored when
// diffing, so an unrelated edit that shifts a parked finding by twenty
// lines does not invalidate the baseline, while a second instance of the
// same message in the same file does.

// BaselineEntry is one recorded finding. File paths are stored as given
// (the driver normalizes them to module-root-relative slash paths so the
// file is stable across checkouts).
type BaselineEntry struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// ToBaseline converts diagnostics (already sorted by Run) into baseline
// entries, applying norm to each file path (nil keeps paths as-is).
func ToBaseline(diags []Diagnostic, norm func(string) string) []BaselineEntry {
	entries := make([]BaselineEntry, 0, len(diags))
	for _, d := range diags {
		file := d.Pos.Filename
		if norm != nil {
			file = norm(file)
		}
		entries = append(entries, BaselineEntry{
			File:     file,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	return entries
}

// MarshalBaseline renders entries as stable, human-diffable JSON: sorted,
// indented, newline-terminated. An empty baseline is "[]\n", never
// "null".
func MarshalBaseline(entries []BaselineEntry) ([]byte, error) {
	sorted := append([]BaselineEntry(nil), entries...)
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	if sorted == nil {
		sorted = []BaselineEntry{}
	}
	data, err := json.MarshalIndent(sorted, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// UnmarshalBaseline parses a baseline file, validating that every entry
// carries the fields the diff keys on.
func UnmarshalBaseline(data []byte) ([]BaselineEntry, error) {
	var entries []BaselineEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("lint: parse baseline: %w", err)
	}
	for i, e := range entries {
		if e.File == "" || e.Analyzer == "" || e.Message == "" {
			return nil, fmt.Errorf("lint: baseline entry %d is missing file, analyzer, or message", i)
		}
	}
	return entries, nil
}

// baselineKey is the multiset identity one finding matches under.
type baselineKey struct {
	file, analyzer, message string
}

// DiffBaseline splits current findings against a baseline: new findings
// (not covered by the baseline, counting multiplicity) and stale entries
// (baselined findings that no longer occur — candidates for removal).
// Entries and diagnostics must use the same path normalization.
func DiffBaseline(current []BaselineEntry, baseline []BaselineEntry) (fresh, stale []BaselineEntry) {
	have := map[baselineKey]int{}
	for _, e := range baseline {
		have[baselineKey{e.File, e.Analyzer, e.Message}]++
	}
	for _, e := range current {
		k := baselineKey{e.File, e.Analyzer, e.Message}
		if have[k] > 0 {
			have[k]--
			continue
		}
		fresh = append(fresh, e)
	}
	// Whatever multiplicity remains uncovered is stale.
	for _, e := range baseline {
		k := baselineKey{e.File, e.Analyzer, e.Message}
		if have[k] > 0 {
			have[k]--
			stale = append(stale, e)
		}
	}
	return fresh, stale
}
