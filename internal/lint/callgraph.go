package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CallGraph is the module-wide static call graph: one node per function or
// method declaration across every loaded package, with edges for every
// call whose callee resolves statically through go/types (direct function
// calls, method calls on concrete receivers, and cross-package qualified
// calls). Dynamic dispatch — interface method calls, calls through
// function-typed values — has no static callee and contributes no edge;
// analyzers that propagate obligations along edges are therefore
// propagating only what the type checker can prove.
type CallGraph struct {
	// Nodes indexes every declared function by its canonical object.
	Nodes map[*types.Func]*CallNode
}

// CallNode is one declared function with its outgoing static calls.
type CallNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	// Directives are the //oftec: annotations from the declaration's doc.
	Directives funcDirectives
	// Calls are the static call sites inside the declaration, in source
	// order, including calls made inside nested function literals (a
	// closure created by a hot function runs on the same path in every
	// use this repository has).
	Calls []CallEdge
}

// CallEdge is one resolved call site.
type CallEdge struct {
	Callee *types.Func
	Pos    token.Pos
}

// BuildCallGraph resolves the static call graph over the given packages.
// Packages must share one token.FileSet (the loaders guarantee this).
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{Nodes: map[*types.Func]*CallNode{}}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &CallNode{
					Fn:         fn,
					Decl:       fd,
					Pkg:        pkg,
					Directives: parseFuncDirectives(fd.Doc),
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if callee := staticCallee(pkg.Info, call); callee != nil {
						node.Calls = append(node.Calls, CallEdge{Callee: callee, Pos: call.Pos()})
					}
					return true
				})
				g.Nodes[fn] = node
			}
		}
	}
	return g
}

// staticCallee resolves a call expression to the concrete function or
// method object it invokes, or nil for dynamic calls, conversions, and
// builtins. Interface methods resolve to the abstract method object,
// which has no node in the graph — edges to them dead-end naturally.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return nil
	}
	f, _ := info.Uses[id].(*types.Func)
	return f
}

// NodeByName finds a node whose qualified name ("pkgpath.Func" or
// "pkgpath.(Type).Method") matches; test helper and diagnostics aid.
func (g *CallGraph) NodeByName(qualified string) *CallNode {
	for fn, n := range g.Nodes {
		if funcDisplayName(fn) == qualified {
			return n
		}
	}
	return nil
}

// funcDisplayName renders a function object the way diagnostics name it:
// "Func" or "(Type).Method", package-qualified only when needed by the
// caller.
func funcDisplayName(fn *types.Func) string {
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return "(" + named.Obj().Name() + ")." + fn.Name()
		}
	}
	return fn.Name()
}
