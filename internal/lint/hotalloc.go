package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// HotAllocAnalyzer proves the repository's 0-alloc steady-state contract
// statically. PR 3 rebuilt the evaluation hot path to 0 allocs/op and the
// benchmarks assert it dynamically, but a stray fmt.Sprintf or closure in
// a future change only shows up when someone re-reads the bench table.
// This analyzer makes the contract a build gate: a function annotated
//
//	//oftec:hotpath
//
// must not allocate, and the obligation propagates through the module
// call graph to every statically reachable callee. A callee that is a
// sanctioned cold or amortized path (factorization on a cache miss, error
// construction, result materialization) is annotated
//
//	//oftec:allocok <reason>
//
// which stops propagation at that boundary; individual amortized sites
// inside a hot function (a generation-rotation make) carry a reasoned
// //lint:ignore hotalloc instead.
//
// Flagged constructs: make/new/append, composite literals that create
// heap-backed storage (&T{...}, slice and map literals), the fmt print
// family, string concatenation, interface boxing at call boundaries
// (passing a non-pointer-shaped concrete value where an interface is
// expected), closures that capture enclosing variables, and go
// statements. Calls that the type checker cannot resolve statically
// (interface methods, function values) propagate nothing — the dispatch
// itself is allocation-free, and the dynamic callee is outside what a
// static obligation can reach.
var HotAllocAnalyzer = &Analyzer{
	Name:      "hotalloc",
	Doc:       "flags allocations in //oftec:hotpath functions and everything they can reach",
	RunModule: runHotAlloc,
}

func runHotAlloc(pass *ModulePass) {
	graph := pass.Graph()

	// Directive hygiene: allocok without a reason is itself a finding,
	// exactly like a reasonless //lint:ignore.
	nodes := sortedNodes(graph)
	for _, node := range nodes {
		if node.Directives.allocok && node.Directives.allocokReason == "" {
			pass.Reportf(node.Decl.Pos(), "//oftec:allocok directive without a reason: want //oftec:allocok <reason>")
		}
	}

	// Propagate the no-alloc obligation from every //oftec:hotpath root
	// through static call edges, stopping at //oftec:allocok callees.
	type obligation struct {
		node *CallNode
		root *types.Func
	}
	obligated := map[*types.Func]*obligation{}
	var queue []*obligation
	for _, node := range nodes {
		if node.Directives.hotpath {
			ob := &obligation{node: node, root: node.Fn}
			obligated[node.Fn] = ob
			queue = append(queue, ob)
		}
	}
	for len(queue) > 0 {
		ob := queue[0]
		queue = queue[1:]
		for _, edge := range ob.node.Calls {
			callee, ok := graph.Nodes[edge.Callee]
			if !ok {
				continue // no body in this module: stdlib or declared elsewhere
			}
			if _, seen := obligated[callee.Fn]; seen {
				continue
			}
			if callee.Directives.allocok {
				continue
			}
			next := &obligation{node: callee, root: ob.root}
			obligated[callee.Fn] = next
			queue = append(queue, next)
		}
	}

	var obs []*obligation
	for _, ob := range obligated {
		obs = append(obs, ob)
	}
	sort.Slice(obs, func(i, j int) bool { return obs[i].node.Decl.Pos() < obs[j].node.Decl.Pos() })
	for _, ob := range obs {
		where := "hot-path function " + funcDisplayName(ob.node.Fn)
		if ob.node.Fn != ob.root {
			where = funcDisplayName(ob.node.Fn) + " (hot path via //oftec:hotpath on " + funcDisplayName(ob.root) + ")"
		}
		scanAllocs(pass, ob.node, where)
	}
}

// scanAllocs reports every allocating construct in one obligated function
// body, including inside nested function literals (which execute on the
// same path here — and whose creation, when they capture, is itself
// flagged).
func scanAllocs(pass *ModulePass, node *CallNode, where string) {
	info := node.Pkg.Info
	reportedLit := map[*ast.CompositeLit]bool{}
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "%s: go statement allocates a goroutine", where)

		case *ast.UnaryExpr:
			if lit, ok := n.X.(*ast.CompositeLit); ok && n.Op == token.AND {
				reportedLit[lit] = true
				pass.Reportf(n.Pos(), "%s: &%s composite literal escapes to the heap", where, typeLabel(info, lit))
			}

		case *ast.CompositeLit:
			if reportedLit[n] {
				return true
			}
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				pass.Reportf(n.Pos(), "%s: slice literal allocates", where)
			case *types.Map:
				pass.Reportf(n.Pos(), "%s: map literal allocates", where)
			}

		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringExpr(info, n) && !isConstExpr(info, n) {
				pass.Reportf(n.Pos(), "%s: string concatenation allocates", where)
			}

		case *ast.FuncLit:
			if captured := capturedVars(info, node.Decl, n); len(captured) > 0 {
				pass.Reportf(n.Pos(), "%s: closure captures %s by reference; allocates", where, strings.Join(captured, ", "))
			}

		case *ast.CallExpr:
			reportCallAllocs(pass, info, n, where)
		}
		return true
	})
}

// reportCallAllocs flags allocating builtins, the fmt print family, and
// interface boxing at the call boundary.
func reportCallAllocs(pass *ModulePass, info *types.Info, call *ast.CallExpr, where string) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new", "append":
				pass.Reportf(call.Pos(), "%s: %s allocates", where, b.Name())
			}
			return
		}
	}
	if callee := staticCallee(info, call); callee != nil && callee.Pkg() != nil && callee.Pkg().Path() == "fmt" {
		name := callee.Name()
		if strings.Contains(name, "rint") || name == "Errorf" || name == "Sprint" || name == "Sprintf" || name == "Sprintln" {
			pass.Reportf(call.Pos(), "%s: fmt.%s allocates", where, name)
			return // boxing into fmt's ...any variadic is subsumed
		}
	}

	// Interface boxing: a concrete, non-pointer-shaped argument passed
	// where the signature expects an interface is wrapped in a freshly
	// allocated interface value.
	tv, ok := info.Types[call.Fun]
	if !ok || tv.IsType() {
		return // conversion, not a call
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || types.IsInterface(at) || pointerShaped(at) || isUntypedNil(at) {
			continue
		}
		pass.Reportf(arg.Pos(), "%s: argument boxes %s into %s; allocates", where, at.String(), pt.String())
	}
}

// pointerShaped reports whether values of t are stored directly in an
// interface word (pointers, channels, maps, functions, unsafe pointers) —
// conversions of those to interface types do not allocate.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

func isStringExpr(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isConstExpr reports whether the expression folds to a constant — the
// compiler materializes those at build time, no runtime allocation.
func isConstExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil && tv.Value.Kind() != constant.Unknown
}

// capturedVars lists the enclosing function's local variables (parameters,
// receivers, locals) that a function literal references — captures force
// the closure (and the captured slots) onto the heap.
func capturedVars(info *types.Info, encl *ast.FuncDecl, lit *ast.FuncLit) []string {
	seen := map[string]bool{}
	var out []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		pos := v.Pos()
		if pos < encl.Pos() || pos >= encl.End() {
			return true // package-level or other-function variable
		}
		if pos >= lit.Pos() && pos < lit.End() {
			return true // the literal's own parameter or local
		}
		if !seen[v.Name()] {
			seen[v.Name()] = true
			out = append(out, v.Name())
		}
		return true
	})
	sort.Strings(out)
	return out
}

// typeLabel renders a composite literal's type for diagnostics.
func typeLabel(info *types.Info, lit *ast.CompositeLit) string {
	if t := info.TypeOf(lit); t != nil {
		s := t.String()
		if i := strings.LastIndex(s, "/"); i >= 0 {
			s = s[i+1:]
		}
		return s
	}
	return "composite"
}

// sortedNodes returns the call graph's nodes in source-position order so
// module-level reports are deterministic.
func sortedNodes(g *CallGraph) []*CallNode {
	nodes := make([]*CallNode, 0, len(g.Nodes))
	for _, n := range g.Nodes {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Decl.Pos() < nodes[j].Decl.Pos() })
	return nodes
}
