package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrderAnalyzer guards the repository's locking discipline, which the
// -race runs in scripts/check.sh can only probe dynamically. It derives
// the mutex-acquisition partial order across the whole module — the
// evaluation cache's Cache.mu, the backend registry's RWMutex, the
// thermal model's factor/version/memo locks, and every other
// sync.Mutex/RWMutex — and reports:
//
//   - lock-order cycles: lock B acquired while holding A on one path and
//     A acquired while holding B on another (a latent AB/BA deadlock);
//   - double acquisition: re-acquiring a mutex already held on the same
//     control-flow path (sync mutexes are not reentrant);
//   - unbalanced paths: a Lock with no matching Unlock (explicit or
//     deferred) on some CFG path to the function's exit.
//
// Locks are identified by their declaration object — the struct field or
// variable — so every instance of Cache.mu is one lock in the order. The
// analysis walks each function's CFG with a per-path held set; calls that
// resolve statically propagate the callee's (transitive) acquisition
// summary, so an order edge through a helper is still seen. Function
// literals are analyzed as independent functions: a goroutine body must
// balance its own locks. Paths that end in panic or a blocking select
// never reach the exit and carry no release obligation.
var LockOrderAnalyzer = &Analyzer{
	Name:      "lockorder",
	Doc:       "derives the mutex-acquisition partial order; flags cycles, double acquisition, and unbalanced Lock/Unlock paths",
	RunModule: runLockOrder,
}

// lockID is the canonical identity of one mutex: the types.Var of the
// field or variable holding it, plus a stable display name.
type lockID struct {
	obj     types.Object
	display string
}

// lockOp is one mutex operation or one outgoing static call, in source
// order within a statement.
type lockOp struct {
	kind   string // "lock", "unlock", "call"
	id     *lockID
	callee *types.Func
	pos    token.Pos
	defer_ bool
}

// lockUnit is one analyzable body: a function declaration or a function
// literal.
type lockUnit struct {
	name string
	fn   *types.Func // nil for literals
	body *ast.BlockStmt
	pkg  *Package
}

type lockOrderState struct {
	pass  *ModulePass
	ids   map[types.Object]*lockID
	units []lockUnit
	// summary maps a declared function to the set of locks it (or any
	// statically reachable callee) may acquire.
	summary map[*types.Func]map[*lockID]token.Pos
	// edges[a][b] holds the first position where b was acquired while a
	// was held.
	edges map[*lockID]map[*lockID]token.Pos
}

func runLockOrder(pass *ModulePass) {
	st := &lockOrderState{
		pass:    pass,
		ids:     map[types.Object]*lockID{},
		summary: map[*types.Func]map[*lockID]token.Pos{},
		edges:   map[*lockID]map[*lockID]token.Pos{},
	}

	graph := pass.Graph()
	nodes := sortedNodes(graph)
	for _, node := range nodes {
		st.units = append(st.units, lockUnit{
			name: funcDisplayName(node.Fn),
			fn:   node.Fn,
			body: node.Decl.Body,
			pkg:  node.Pkg,
		})
		// Function literals become their own units; their lock traffic is
		// excluded from the enclosing function's walk (they run later, on
		// whatever goroutine invokes them).
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				st.units = append(st.units, lockUnit{
					name: funcDisplayName(node.Fn) + " literal",
					body: lit.Body,
					pkg:  node.Pkg,
				})
			}
			return true
		})
	}

	// Acquisition summaries to a fixed point over the call graph, so "g
	// locks B" is visible at every call site of g.
	for _, u := range st.units {
		if u.fn == nil {
			continue
		}
		acq := map[*lockID]token.Pos{}
		for _, op := range st.blockOps(u.pkg, bodyStmts(u.body)) {
			if op.kind == "lock" {
				if _, ok := acq[op.id]; !ok {
					acq[op.id] = op.pos
				}
			}
		}
		st.summary[u.fn] = acq
	}
	for changed := true; changed; {
		changed = false
		for _, node := range nodes {
			acq := st.summary[node.Fn]
			for _, edge := range node.Calls {
				for id, pos := range st.summary[edge.Callee] {
					if _, ok := acq[id]; !ok {
						acq[id] = pos
						changed = true
					}
				}
			}
		}
	}

	for _, u := range st.units {
		st.walkUnit(u)
	}
	st.reportCycles()
}

// bodyStmts flattens a block into the statement list the op extractor
// consumes (used for the flow-insensitive summary pass only).
func bodyStmts(body *ast.BlockStmt) []ast.Node {
	if body == nil {
		return nil
	}
	out := make([]ast.Node, len(body.List))
	for i, s := range body.List {
		out[i] = s
	}
	return out
}

// blockOps extracts the mutex operations and static calls from a list of
// statements (or expressions) in source order, without descending into
// nested function literals.
func (st *lockOrderState) blockOps(pkg *Package, stmts []ast.Node) []lockOp {
	var ops []lockOp
	var scan func(n ast.Node, inDefer bool)
	scan = func(n ast.Node, inDefer bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				return false
			case *ast.DeferStmt:
				scan(m.Call, true)
				return false
			case *ast.CallExpr:
				if op, ok := st.mutexOp(pkg, m, inDefer); ok {
					ops = append(ops, op)
					return true
				}
				if callee := staticCallee(pkg.Info, m); callee != nil {
					ops = append(ops, lockOp{kind: "call", callee: callee, pos: m.Pos(), defer_: inDefer})
				}
			}
			return true
		})
	}
	for _, s := range stmts {
		scan(s, false)
	}
	return ops
}

// mutexOp recognizes x.Lock/RLock/Unlock/RUnlock calls on
// sync.Mutex/RWMutex (including promoted methods of embedded mutexes) and
// resolves the lock identity.
func (st *lockOrderState) mutexOp(pkg *Package, call *ast.CallExpr, inDefer bool) (lockOp, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	callee, _ := pkg.Info.Uses[sel.Sel].(*types.Func)
	if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "sync" {
		return lockOp{}, false
	}
	var kind string
	switch callee.Name() {
	case "Lock", "RLock":
		kind = "lock"
	case "Unlock", "RUnlock":
		kind = "unlock"
	default:
		return lockOp{}, false
	}
	id := st.lockIdentity(pkg, sel.X)
	if id == nil {
		return lockOp{}, false
	}
	return lockOp{kind: kind, id: id, pos: call.Pos(), defer_: inDefer}, true
}

// lockIdentity resolves the receiver expression of a mutex method call to
// the declaration object of the mutex (field or variable).
func (st *lockOrderState) lockIdentity(pkg *Package, x ast.Expr) *lockID {
	x = ast.Unparen(x)
	var obj types.Object
	display := ""
	switch x := x.(type) {
	case *ast.Ident:
		obj = pkg.Info.Uses[x]
		display = x.Name
		if v, ok := obj.(*types.Var); ok && !v.IsField() && v.Parent() != nil && v.Parent().Parent() == types.Universe {
			// Package-level variable: qualify for cross-package clarity.
			display = pkg.Types.Name() + "." + x.Name
		}
	case *ast.SelectorExpr:
		obj = pkg.Info.Uses[x.Sel]
		display = x.Sel.Name
		if t := pkg.Info.TypeOf(x.X); t != nil {
			if named := namedOf(t); named != nil {
				display = named.Obj().Name() + "." + x.Sel.Name
			}
		}
	default:
		return nil
	}
	if obj == nil {
		return nil
	}
	if id, ok := st.ids[obj]; ok {
		return id
	}
	id := &lockID{obj: obj, display: display}
	st.ids[obj] = id
	return id
}

// heldLock is one acquisition on the current path.
type heldLock struct {
	id  *lockID
	pos token.Pos
}

// walkUnit traverses one function body's CFG with a per-path held set,
// recording order edges and reporting double acquisition and unbalanced
// exits.
func (st *lockOrderState) walkUnit(u lockUnit) {
	if u.body == nil {
		return
	}
	cfg := BuildCFG(u.body)

	// Deferred unlocks release at every exit.
	deferred := map[*lockID]bool{}
	for _, d := range cfg.Defers {
		if op, ok := st.mutexOp(u.pkg, d.Call, true); ok && op.kind == "unlock" {
			deferred[op.id] = true
		}
	}

	type visitKey struct {
		block *Block
		sig   string
	}
	visited := map[visitKey]bool{}
	reported := map[token.Pos]bool{}

	sigOf := func(held []heldLock) string {
		names := make([]string, len(held))
		for i, h := range held {
			names[i] = h.id.display
		}
		sort.Strings(names)
		return strings.Join(names, "|")
	}

	var walk func(b *Block, held []heldLock)
	walk = func(b *Block, held []heldLock) {
		key := visitKey{b, sigOf(held)}
		if visited[key] {
			return
		}
		visited[key] = true

		for _, stmt := range b.Stmts {
			for _, op := range st.blockOps(u.pkg, []ast.Node{stmt}) {
				switch op.kind {
				case "lock":
					if op.defer_ {
						continue // defer mu.Lock() — pathological, skip
					}
					dup := false
					for _, h := range held {
						if h.id == op.id {
							dup = true
						} else {
							st.addEdge(h.id, op.id, op.pos)
						}
					}
					if dup {
						if !reported[op.pos] {
							reported[op.pos] = true
							st.pass.Reportf(op.pos, "%s re-acquires %s already held on this path (sync mutexes are not reentrant)", u.name, op.id.display)
						}
						continue
					}
					held = append(held[:len(held):len(held)], heldLock{id: op.id, pos: op.pos})
				case "unlock":
					if op.defer_ {
						continue // applied at exit via the deferred set
					}
					for i, h := range held {
						if h.id == op.id {
							held = append(held[:i:i], held[i+1:]...)
							break
						}
					}
				case "call":
					for acq, apos := range st.summary[op.callee] {
						_ = apos
						for _, h := range held {
							if h.id == acq {
								if !reported[op.pos] {
									reported[op.pos] = true
									st.pass.Reportf(op.pos, "%s calls %s while holding %s, which %s acquires (self-deadlock through the call graph)",
										u.name, edgeCalleeName(op.callee), h.id.display, edgeCalleeName(op.callee))
								}
							} else {
								st.addEdge(h.id, acq, op.pos)
							}
						}
					}
				}
			}
		}

		if b == cfg.Exit {
			for _, h := range held {
				if !deferred[h.id] && !reported[h.pos] {
					reported[h.pos] = true
					st.pass.Reportf(h.pos, "%s locks %s but does not release it on every return path (missing Unlock or defer Unlock)", u.name, h.id.display)
				}
			}
			return
		}
		for _, s := range b.Succs {
			walk(s, held)
		}
	}
	walk(cfg.Entry, nil)
}

func (st *lockOrderState) addEdge(from, to *lockID, pos token.Pos) {
	m := st.edges[from]
	if m == nil {
		m = map[*lockID]token.Pos{}
		st.edges[from] = m
	}
	if _, ok := m[to]; !ok {
		m[to] = pos
	}
}

// reportCycles finds cycles in the acquisition-order digraph and reports
// each once, at its lexicographically first edge.
func (st *lockOrderState) reportCycles() {
	// Deterministic node order.
	var ids []*lockID
	seen := map[*lockID]bool{}
	for from, tos := range st.edges {
		if !seen[from] {
			seen[from] = true
			ids = append(ids, from)
		}
		for to := range tos {
			if !seen[to] {
				seen[to] = true
				ids = append(ids, to)
			}
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].display < ids[j].display })

	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := map[*lockID]int{}
	var stack []*lockID
	reported := map[string]bool{}

	var visit func(id *lockID)
	visit = func(id *lockID) {
		color[id] = grey
		stack = append(stack, id)
		var tos []*lockID
		for to := range st.edges[id] {
			tos = append(tos, to)
		}
		sort.Slice(tos, func(i, j int) bool { return tos[i].display < tos[j].display })
		for _, to := range tos {
			switch color[to] {
			case white:
				visit(to)
			case grey:
				// Cycle: stack from `to` onward, closing back to `to`.
				start := 0
				for i, s := range stack {
					if s == to {
						start = i
						break
					}
				}
				cycle := append([]*lockID{}, stack[start:]...)
				st.reportCycle(cycle, reported)
			}
		}
		stack = stack[:len(stack)-1]
		color[id] = black
	}
	for _, id := range ids {
		if color[id] == white {
			visit(id)
		}
	}
}

func (st *lockOrderState) reportCycle(cycle []*lockID, reported map[string]bool) {
	// Canonical rotation: start at the smallest display name, so the same
	// cycle found from different entry points reports once.
	min := 0
	for i := range cycle {
		if cycle[i].display < cycle[min].display {
			min = i
		}
	}
	rot := append(append([]*lockID{}, cycle[min:]...), cycle[:min]...)
	names := make([]string, 0, len(rot)+1)
	for _, id := range rot {
		names = append(names, id.display)
	}
	names = append(names, rot[0].display)
	key := strings.Join(names, "->")
	if reported[key] {
		return
	}
	reported[key] = true

	var b strings.Builder
	fmt.Fprintf(&b, "lock-order cycle %s:", strings.Join(names, " -> "))
	for i, id := range rot {
		next := rot[(i+1)%len(rot)]
		pos := st.edges[id][next]
		fmt.Fprintf(&b, " %s acquired while holding %s at %s;", next.display, id.display, st.pass.fset.Position(pos))
	}
	st.pass.Reportf(st.edges[rot[0]][rot[1%len(rot)]], "%s", strings.TrimSuffix(b.String(), ";"))
}

// edgeCalleeName renders a callee for diagnostics.
func edgeCalleeName(fn *types.Func) string {
	if fn == nil {
		return "?"
	}
	return funcDisplayName(fn)
}
