// Package lint is a project-specific static-analysis framework built only
// on the standard library (go/ast, go/parser, go/types, go/token,
// go/importer). It exists because this reproduction's correctness rests on
// invariants the Go compiler cannot check: all physics is carried in SI
// units, float comparisons must go through the internal/units tolerances,
// solver errors must never be silently dropped, the mutex-guarded
// evaluation caches must not be copied, hot paths annotated
// //oftec:hotpath must not allocate, and lock acquisition must stay
// cycle-free and balanced on every control-flow path.
//
// The framework deliberately mirrors the shape of golang.org/x/tools'
// analysis API (Analyzer, Pass, Diagnostic) without importing it, so the
// module keeps an empty dependency graph. Beyond the per-package passes it
// provides two shared dataflow facilities: a module-wide static call graph
// (callgraph.go) and a lightweight intraprocedural CFG (cfg.go), consumed
// by module-level analyzers (Analyzer.RunModule) such as hotalloc,
// lockorder, and goroleak. cmd/oftecvet is the driver.
//
// Findings can be suppressed with a directive comment on the same line as
// the offending code or on the line immediately above it:
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// A directive placed above (or trailing the first line of) a statement
// that spans multiple lines suppresses matching findings over the full
// statement extent, not just the first line. The reason is mandatory; a
// bare directive is itself reported.
package lint

import (
	"context"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"

	"oftec/internal/parallel"
)

// Diagnostic is a single finding, printed as "file:line:col: [name] msg".
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the canonical driver format.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one named analysis pass. Exactly one of Run (per-package)
// and RunModule (once over the whole package set, with access to the call
// graph and CFGs) must be set.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore directives.
	Name string
	// Doc is a one-line description of the invariant the analyzer guards.
	Doc string
	// Run inspects one type-checked package and reports findings via pass.
	Run func(pass *Pass)
	// RunModule inspects the whole loaded package set at once; analyzers
	// that reason across packages (call-graph propagation, cross-package
	// lock order) use this form.
	RunModule func(pass *ModulePass)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of an expression, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Pkg.Info.TypeOf(e)
}

// IsFloat reports whether the expression has floating-point type
// (after unwrapping named types).
func (p *Pass) IsFloat(e ast.Expr) bool {
	t := p.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// Callee resolves a call expression to the function or method object it
// invokes, or nil for indirect calls and conversions.
func (p *Pass) Callee(call *ast.CallExpr) *types.Func {
	return staticCallee(p.Pkg.Info, call)
}

// ModulePass carries the whole deduplicated package set through one
// module-level analyzer, with lazily built shared facilities.
type ModulePass struct {
	Analyzer *Analyzer
	Pkgs     []*Package

	fset  *token.FileSet
	graph *CallGraph
	cfgs  map[*ast.FuncDecl]*CFG
	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Graph returns the module call graph, building it on first use.
func (p *ModulePass) Graph() *CallGraph {
	if p.graph == nil {
		p.graph = BuildCallGraph(p.Pkgs)
	}
	return p.graph
}

// CFGOf returns the control-flow graph of a declaration's body, memoized
// across analyzers sharing this pass's underlying run.
func (p *ModulePass) CFGOf(fd *ast.FuncDecl) *CFG {
	if g, ok := p.cfgs[fd]; ok {
		return g
	}
	g := BuildCFG(fd.Body)
	p.cfgs[fd] = g
	return g
}

// Timing is one analyzer's aggregate cost over a Run, for the driver's
// -stats output and the bench trajectory.
type Timing struct {
	Analyzer string
	Duration time.Duration
	Findings int
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	pos       token.Position
	analyzers map[string]bool // analyzer names, or {"all": true}
	hasReason bool
}

const ignorePrefix = "//lint:ignore"

// parseIgnores extracts every //lint:ignore directive from a file.
func parseIgnores(fset *token.FileSet, f *ast.File) []ignoreDirective {
	var out []ignoreDirective
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, ignorePrefix) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
			fields := strings.Fields(rest)
			d := ignoreDirective{pos: fset.Position(c.Pos()), analyzers: map[string]bool{}}
			if len(fields) > 0 {
				for _, name := range strings.Split(fields[0], ",") {
					if name != "" {
						d.analyzers[name] = true
					}
				}
				d.hasReason = len(fields) > 1
			}
			out = append(out, d)
		}
	}
	return out
}

// stmtExtents maps, for one file, the starting line of every suppressible
// statement-like node to the last line it spans. A //lint:ignore directive
// associated with a multi-line statement (standalone above it, or trailing
// its first line) suppresses findings over the whole extent — a finding
// reported at a wrapped argument's line is still the same statement.
// Block-bearing control statements (if/for/switch/select) contribute only
// their header line, so a directive above an if cannot blanket its body.
func stmtExtents(fset *token.FileSet, f *ast.File) map[int]int {
	extents := map[int]int{}
	record := func(n ast.Node) {
		start := fset.Position(n.Pos()).Line
		end := fset.Position(n.End()).Line
		if end > extents[start] {
			extents[start] = end
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt, *ast.ExprStmt, *ast.ReturnStmt, *ast.GoStmt,
			*ast.DeferStmt, *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt,
			*ast.ValueSpec, *ast.Field:
			record(n)
		case *ast.GenDecl:
			record(n)
		}
		return true
	})
	return extents
}

// ignoreRange is one directive's resolved suppression interval.
type ignoreRange struct {
	file      string
	from, to  int
	analyzers map[string]bool
}

// Run executes every analyzer over every package, applies the ignore
// directives, and returns the surviving diagnostics sorted by position.
// Packages are analyzed in parallel (one worker per CPU).
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	diags, _ := RunTimed(pkgs, analyzers, 0)
	return diags
}

// RunTimed is Run with an explicit worker count for the package-parallel
// phase (0 selects GOMAXPROCS, 1 forces serial) and per-analyzer timing
// stats. Output is deterministic regardless of workers: diagnostics are
// collected per package index and sorted at the end.
func RunTimed(pkgs []*Package, analyzers []*Analyzer, workers int) ([]Diagnostic, []Timing) {
	// Dedupe packages the loader (or a driver combining loaders) handed
	// in twice: analyzing the same import path again can only duplicate
	// every diagnostic.
	seen := map[string]bool{}
	uniq := pkgs[:0:0]
	for _, p := range pkgs {
		if seen[p.Path] {
			continue
		}
		seen[p.Path] = true
		uniq = append(uniq, p)
	}
	pkgs = uniq

	var perPkg, module []*Analyzer
	for _, a := range analyzers {
		if a.RunModule != nil {
			module = append(module, a)
		} else {
			perPkg = append(perPkg, a)
		}
	}

	timings := make([]Timing, len(analyzers))
	for i, a := range analyzers {
		timings[i].Analyzer = a.Name
	}
	timingIdx := map[string]int{}
	for i, a := range analyzers {
		timingIdx[a.Name] = i
	}

	// Per-package passes fan out over the package axis; each (package,
	// analyzer) pair owns a private diagnostic slice, so the only shared
	// write is the timing accumulation below.
	type cell struct {
		diags []Diagnostic
		cost  []time.Duration
	}
	cells := make([]cell, len(pkgs))
	// Analysis is pure CPU over immutable type-checked packages; ForEach
	// with a background context cannot be cancelled, and the per-index
	// error below is always nil.
	//lint:ignore errdrop uncancellable pure-CPU fanout whose cells never return an error
	_ = parallel.ForEach(context.Background(), len(pkgs), workers, func(i int) error {
		c := &cells[i]
		c.cost = make([]time.Duration, len(perPkg))
		for j, a := range perPkg {
			start := time.Now()
			pass := &Pass{Analyzer: a, Pkg: pkgs[i]}
			a.Run(pass)
			c.cost[j] = time.Since(start)
			c.diags = append(c.diags, pass.diags...)
		}
		return nil
	})

	var diags []Diagnostic
	for i := range cells {
		diags = append(diags, cells[i].diags...)
		for j, a := range perPkg {
			timings[timingIdx[a.Name]].Duration += cells[i].cost[j]
		}
	}

	// Module-level passes run once over the deduplicated set, sharing one
	// lazily built call graph and CFG memo.
	if len(module) > 0 && len(pkgs) > 0 {
		shared := &ModulePass{
			Pkgs: pkgs,
			fset: pkgs[0].Fset,
			cfgs: map[*ast.FuncDecl]*CFG{},
		}
		for _, a := range module {
			start := time.Now()
			mp := &ModulePass{
				Analyzer: a,
				Pkgs:     shared.Pkgs,
				fset:     shared.fset,
				graph:    shared.graph,
				cfgs:     shared.cfgs,
			}
			a.RunModule(mp)
			shared.graph = mp.graph // keep a lazily built graph for the next analyzer
			timings[timingIdx[a.Name]].Duration += time.Since(start)
			diags = append(diags, mp.diags...)
		}
	}

	// Collect directives and resolve each to its suppression interval.
	var ranges []ignoreRange
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			dirs := parseIgnores(pkg.Fset, f)
			if len(dirs) == 0 {
				continue
			}
			extents := stmtExtents(pkg.Fset, f)
			for _, d := range dirs {
				if !d.hasReason || len(d.analyzers) == 0 {
					diags = append(diags, Diagnostic{
						Pos:      d.pos,
						Analyzer: "lint",
						Message:  "malformed //lint:ignore directive: want //lint:ignore <analyzer> <reason>",
					})
					continue
				}
				line := d.pos.Line
				to := line + 1
				// Trailing a multi-line statement's first line, or
				// standalone above one: cover the full extent.
				if end, ok := extents[line]; ok && end > to {
					to = end
				}
				if end, ok := extents[line+1]; ok && end > to {
					to = end
				}
				ranges = append(ranges, ignoreRange{
					file:      d.pos.Filename,
					from:      line,
					to:        to,
					analyzers: d.analyzers,
				})
			}
		}
	}

	suppressed := func(d Diagnostic) bool {
		for _, r := range ranges {
			if d.Pos.Filename != r.file || d.Pos.Line < r.from || d.Pos.Line > r.to {
				continue
			}
			if r.analyzers[d.Analyzer] || r.analyzers["all"] {
				return true
			}
		}
		return false
	}

	kept := diags[:0]
	for _, d := range diags {
		if !suppressed(d) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	// Dedupe identical findings (same position, analyzer, and message) —
	// a module analyzer revisiting a shared declaration, or overlapping
	// loader inputs, must not double-report.
	out := kept[:0]
	for i, d := range kept {
		if i > 0 && d == kept[i-1] {
			continue
		}
		out = append(out, d)
	}
	for i := range timings {
		name := timings[i].Analyzer
		for _, d := range out {
			if d.Analyzer == name {
				timings[i].Findings++
			}
		}
	}
	return out, timings
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		FloatCmpAnalyzer,
		ErrDropAnalyzer,
		MutexCopyAnalyzer,
		UnitSuffixAnalyzer,
		NonFiniteAnalyzer,
		CtxLeakAnalyzer,
		BackendLeakAnalyzer,
		FanLeakAnalyzer,
		HotAllocAnalyzer,
		LockOrderAnalyzer,
		GoroLeakAnalyzer,
	}
}

// ByName returns the named analyzers in the order given. Each entry may
// itself be a comma-separated list ("hotalloc,lockorder"), so drivers can
// accept both repeated flags and one packed flag; duplicates collapse to
// their first occurrence.
func ByName(names []string) ([]*Analyzer, error) {
	index := map[string]*Analyzer{}
	for _, a := range All() {
		index[a.Name] = a
	}
	var out []*Analyzer
	picked := map[string]bool{}
	for _, entry := range names {
		for _, n := range strings.Split(entry, ",") {
			n = strings.TrimSpace(n)
			if n == "" {
				continue
			}
			a, ok := index[n]
			if !ok {
				return nil, fmt.Errorf("lint: unknown analyzer %q", n)
			}
			if picked[n] {
				continue
			}
			picked[n] = true
			out = append(out, a)
		}
	}
	return out, nil
}
