// Package lint is a project-specific static-analysis framework built only
// on the standard library (go/ast, go/parser, go/types, go/token,
// go/importer). It exists because this reproduction's correctness rests on
// invariants the Go compiler cannot check: all physics is carried in SI
// units, float comparisons must go through the internal/units tolerances,
// solver errors must never be silently dropped, and the mutex-guarded
// evaluation caches must not be copied.
//
// The framework deliberately mirrors the shape of golang.org/x/tools'
// analysis API (Analyzer, Pass, Diagnostic) without importing it, so the
// module keeps an empty dependency graph. cmd/oftecvet is the driver.
//
// Findings can be suppressed with a directive comment on the same line as
// the offending code or on the line immediately above it:
//
//	//lint:ignore <analyzer> <reason>
//
// The reason is mandatory; a bare directive is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is a single finding, printed as "file:line:col: [name] msg".
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the canonical driver format.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one named analysis pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore directives.
	Name string
	// Doc is a one-line description of the invariant the analyzer guards.
	Doc string
	// Run inspects a type-checked package and reports findings via pass.
	Run func(pass *Pass)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of an expression, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Pkg.Info.TypeOf(e)
}

// IsFloat reports whether the expression has floating-point type
// (after unwrapping named types).
func (p *Pass) IsFloat(e ast.Expr) bool {
	t := p.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// Callee resolves a call expression to the function or method object it
// invokes, or nil for indirect calls and conversions.
func (p *Pass) Callee(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return nil
	}
	f, _ := p.Pkg.Info.Uses[id].(*types.Func)
	return f
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	pos       token.Position
	analyzers map[string]bool // analyzer names, or {"all": true}
	hasReason bool
}

const ignorePrefix = "//lint:ignore"

// parseIgnores extracts every //lint:ignore directive from a file.
func parseIgnores(fset *token.FileSet, f *ast.File) []ignoreDirective {
	var out []ignoreDirective
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, ignorePrefix) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
			fields := strings.Fields(rest)
			d := ignoreDirective{pos: fset.Position(c.Pos()), analyzers: map[string]bool{}}
			if len(fields) > 0 {
				for _, name := range strings.Split(fields[0], ",") {
					d.analyzers[name] = true
				}
				d.hasReason = len(fields) > 1
			}
			out = append(out, d)
		}
	}
	return out
}

// Run executes every analyzer over every package, applies the ignore
// directives, and returns the surviving diagnostics sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, diags: &diags}
			a.Run(pass)
		}
	}

	// Collect directives: file -> line -> analyzer set.
	type key struct {
		file string
		line int
	}
	ignores := map[key]map[string]bool{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range parseIgnores(pkg.Fset, f) {
				if !d.hasReason || len(d.analyzers) == 0 {
					diags = append(diags, Diagnostic{
						Pos:      d.pos,
						Analyzer: "lint",
						Message:  "malformed //lint:ignore directive: want //lint:ignore <analyzer> <reason>",
					})
					continue
				}
				k := key{d.pos.Filename, d.pos.Line}
				if ignores[k] == nil {
					ignores[k] = map[string]bool{}
				}
				for name := range d.analyzers {
					ignores[k][name] = true
				}
			}
		}
	}

	suppressed := func(d Diagnostic) bool {
		// A directive suppresses findings on its own line (trailing
		// comment) and on the line below it (standalone comment).
		for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
			if set, ok := ignores[key{d.Pos.Filename, line}]; ok {
				if set[d.Analyzer] || set["all"] {
					return true
				}
			}
		}
		return false
	}

	kept := diags[:0]
	for _, d := range diags {
		if !suppressed(d) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return kept
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		FloatCmpAnalyzer,
		ErrDropAnalyzer,
		MutexCopyAnalyzer,
		UnitSuffixAnalyzer,
		NonFiniteAnalyzer,
		CtxLeakAnalyzer,
		BackendLeakAnalyzer,
	}
}

// ByName returns the named analyzers, in the order given.
func ByName(names []string) ([]*Analyzer, error) {
	index := map[string]*Analyzer{}
	for _, a := range All() {
		index[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range names {
		a, ok := index[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}
