package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package.
type Package struct {
	// Path is the package's import path ("oftec/internal/units").
	Path string
	// Dir is the directory the sources were read from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// moduleImporter type-checks module-internal packages from source and
// delegates standard-library imports to go/importer's source importer,
// which needs no precompiled export data. It implements types.Importer.
type moduleImporter struct {
	modulePath string
	local      map[string]*Package // checked module packages by import path
	std        types.Importer
}

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := mi.local[path]; ok {
		return p.Types, nil
	}
	if strings.HasPrefix(path, mi.modulePath+"/") || path == mi.modulePath {
		return nil, fmt.Errorf("lint: module package %q not loaded (import cycle or load order bug)", path)
	}
	return mi.std.Import(path)
}

// ModulePath reads the module path out of root/go.mod.
func ModulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s/go.mod", root)
}

// LoadModule parses and type-checks every non-test package under the
// module rooted at root (the directory containing go.mod). Directories
// named testdata, hidden directories, and _test.go files are skipped;
// test-only invariants are the compiler's and `go vet`'s problem, and
// excluding them keeps external-test-package handling out of the loader.
// Packages are returned sorted by import path.
func LoadModule(root string) ([]*Package, error) {
	modPath, err := ModulePath(root)
	if err != nil {
		return nil, err
	}

	var dirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	type parsed struct {
		path    string
		dir     string
		files   []*ast.File
		imports map[string]bool
	}
	byPath := map[string]*parsed{}
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		ip := modPath
		if rel != "." {
			ip = modPath + "/" + filepath.ToSlash(rel)
		}
		files, err := parseDir(fset, dir)
		if err != nil {
			return nil, err
		}
		if len(files) == 0 {
			continue
		}
		p := &parsed{path: ip, dir: dir, files: files, imports: map[string]bool{}}
		for _, f := range files {
			for _, imp := range f.Imports {
				p.imports[strings.Trim(imp.Path.Value, `"`)] = true
			}
		}
		byPath[ip] = p
	}

	// Topological order over module-internal imports so every dependency
	// is checked before its importers.
	mi := &moduleImporter{
		modulePath: modPath,
		local:      map[string]*Package{},
		std:        importer.ForCompiler(fset, "source", nil),
	}
	var order []string
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(ip string) error
	visit = func(ip string) error {
		switch state[ip] {
		case 1:
			return fmt.Errorf("lint: import cycle through %s", ip)
		case 2:
			return nil
		}
		state[ip] = 1
		var deps []string
		for dep := range byPath[ip].imports {
			if _, ok := byPath[dep]; ok {
				deps = append(deps, dep)
			}
		}
		sort.Strings(deps)
		for _, dep := range deps {
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[ip] = 2
		order = append(order, ip)
		return nil
	}
	var roots []string
	for ip := range byPath {
		roots = append(roots, ip)
	}
	sort.Strings(roots)
	for _, ip := range roots {
		if err := visit(ip); err != nil {
			return nil, err
		}
	}

	var pkgs []*Package
	for _, ip := range order {
		p := byPath[ip]
		pkg, err := check(fset, ip, p.dir, p.files, mi)
		if err != nil {
			return nil, err
		}
		mi.local[ip] = pkg
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// LoadDir parses and type-checks a single directory as the package
// importPath. The directory may import only the standard library; it is
// the fixture loader for analyzer tests, where importPath simulates the
// package's position in the module (e.g. "oftec/internal/units").
func LoadDir(dir, importPath string) (*Package, error) {
	fset := token.NewFileSet()
	files, err := parseDir(fset, dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	return check(fset, importPath, dir, files, importer.ForCompiler(fset, "source", nil))
}

func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

func check(fset *token.FileSet, importPath, dir string, files []*ast.File, imp types.Importer) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	return &Package{Path: importPath, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}
