package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// NonFiniteAnalyzer guards the numeric kernel against silent NaN/Inf.
//
// In internal/solver, internal/thermal, and internal/core a NaN produced
// by a division or an overflowed math.Exp propagates through the
// optimizer as an ordinary float64 and surfaces as a nonsense operating
// point instead of an error. The analyzer flags exported functions in
// those packages that return a float64 computed in a body containing
// float division or a math.Exp/math.Log call, unless the body also
// consults math.IsNaN or math.IsInf (or delegates to a helper that
// does — annotate those with //lint:ignore nonfinite <reason>).
var NonFiniteAnalyzer = &Analyzer{
	Name: "nonfinite",
	Doc:  "flags exported float64-returning numeric-kernel functions lacking IsNaN/IsInf guards",
	Run:  runNonFinite,
}

var nonFinitePackages = []string{"internal/solver", "internal/thermal", "internal/core"}

func runNonFinite(pass *Pass) {
	inScope := false
	for _, suffix := range nonFinitePackages {
		if strings.HasSuffix(pass.Pkg.Path, suffix) {
			inScope = true
			break
		}
	}
	if !inScope {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !fd.Name.IsExported() || fd.Body == nil {
				continue
			}
			if !returnsFloat(pass, fd) {
				continue
			}
			risky, guarded := scanBody(pass, fd.Body)
			if risky != token.NoPos && !guarded {
				// Report at the declaration (the finding is about the
				// function's contract), naming the first risky line.
				pass.Reportf(fd.Name.Pos(), "exported %s returns float64 from division or math.Exp/math.Log (line %d) without a math.IsNaN/math.IsInf guard", fd.Name.Name, pass.Pkg.Fset.Position(risky).Line)
			}
		}
	}
}

// returnsFloat reports whether any declared result is float64.
func returnsFloat(pass *Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Results == nil {
		return false
	}
	for _, field := range fd.Type.Results.List {
		t := pass.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
			return true
		}
	}
	return false
}

// scanBody returns the position of the first non-finite risk (float
// division or math.Exp/math.Log call) and whether the body anywhere
// consults math.IsNaN/math.IsInf.
func scanBody(pass *Pass, body *ast.BlockStmt) (risky token.Pos, guarded bool) {
	risky = token.NoPos
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if n.Op == token.QUO && pass.IsFloat(n.X) && risky == token.NoPos {
				risky = n.OpPos
			}
		case *ast.CallExpr:
			fn := pass.Callee(n)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "math" {
				return true
			}
			switch fn.Name() {
			case "Exp", "Exp2", "Expm1", "Log", "Log2", "Log10", "Log1p":
				if risky == token.NoPos {
					risky = n.Pos()
				}
			case "IsNaN", "IsInf":
				guarded = true
			}
		}
		return true
	})
	return risky, guarded
}
