package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseBody parses a single function declaration and returns its body.
func parseBody(t *testing.T, src string) *ast.BlockStmt {
	t.Helper()
	f, err := parser.ParseFile(token.NewFileSet(), "x.go", "package x\n"+src, 0)
	if err != nil {
		t.Fatal(err)
	}
	return f.Decls[0].(*ast.FuncDecl).Body
}

// exitReachable reports whether the exit block is reachable from entry.
func exitReachable(cfg *CFG) bool {
	return reachable(cfg.Entry, cfg.Exit)
}

func TestCFGStraightLine(t *testing.T) {
	cfg := BuildCFG(parseBody(t, `func f() { a := 1; _ = a }`))
	if !exitReachable(cfg) {
		t.Error("straight-line body must reach exit")
	}
	if len(cfg.Entry.Stmts) != 2 {
		t.Errorf("entry has %d stmts, want 2", len(cfg.Entry.Stmts))
	}
}

func TestCFGIfBothBranches(t *testing.T) {
	cfg := BuildCFG(parseBody(t, `func f(c bool) int {
		if c {
			return 1
		}
		return 2
	}`))
	if !exitReachable(cfg) {
		t.Error("exit must be reachable")
	}
	// Both returns edge into exit; nothing should fall off the end twice.
	inbound := 0
	for _, b := range cfg.Blocks {
		for _, s := range b.Succs {
			if s == cfg.Exit {
				inbound++
			}
		}
	}
	if inbound != 2 {
		t.Errorf("exit has %d inbound edges, want 2 (one per return)", inbound)
	}
}

func TestCFGInfiniteLoopDoesNotReachExit(t *testing.T) {
	cfg := BuildCFG(parseBody(t, `func f() { for { } }`))
	if exitReachable(cfg) {
		t.Error("for{} must not reach exit")
	}
	cfg = BuildCFG(parseBody(t, `func f() {
		for {
			break
		}
	}`))
	if !exitReachable(cfg) {
		t.Error("for{break} must reach exit")
	}
}

func TestCFGPanicTerminatesPath(t *testing.T) {
	cfg := BuildCFG(parseBody(t, `func f(c bool) {
		if c {
			panic("boom")
		}
	}`))
	if !exitReachable(cfg) {
		t.Error("non-panicking path must still reach exit")
	}
	cfg = BuildCFG(parseBody(t, `func f() { panic("boom") }`))
	if exitReachable(cfg) {
		t.Error("unconditional panic must not reach exit")
	}
}

func TestCFGDefersRecorded(t *testing.T) {
	cfg := BuildCFG(parseBody(t, `func f() {
		defer a()
		defer b()
	}`))
	if len(cfg.Defers) != 2 {
		t.Errorf("recorded %d defers, want 2", len(cfg.Defers))
	}
}

func TestCFGSwitchFallthroughAndDefault(t *testing.T) {
	cfg := BuildCFG(parseBody(t, `func f(x int) int {
		switch x {
		case 1:
			return 1
		case 2:
			fallthrough
		default:
			return 0
		}
	}`))
	// Every case terminates (return or fallthrough-to-return) and there is
	// a default, so nothing falls through the switch; the returns reach
	// exit.
	if !exitReachable(cfg) {
		t.Error("switch returns must reach exit")
	}
}

func TestCFGSelectBlocksForever(t *testing.T) {
	cfg := BuildCFG(parseBody(t, `func f() { select {} }`))
	if exitReachable(cfg) {
		t.Error("select{} must not reach exit")
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	cfg := BuildCFG(parseBody(t, `func f() {
	outer:
		for {
			for {
				break outer
			}
		}
	}`))
	if !exitReachable(cfg) {
		t.Error("labeled break out of nested infinite loops must reach exit")
	}
}

func TestCFGRangeZeroIterations(t *testing.T) {
	cfg := BuildCFG(parseBody(t, `func f(xs []int) {
		for range xs {
			panic("never falls through")
		}
	}`))
	if !exitReachable(cfg) {
		t.Error("range may iterate zero times, exit must stay reachable")
	}
}

func TestCFGNilBody(t *testing.T) {
	cfg := BuildCFG(nil)
	if !exitReachable(cfg) {
		t.Error("nil body must trivially reach exit")
	}
}
