package lint

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixtureCases maps each fixture package to the analyzers run over it and
// the golden file holding the expected diagnostics. Negative cases live in
// the same fixtures: anything not in the golden file must not be reported.
var fixtureCases = []struct {
	name       string // directory under testdata/src and golden basename
	importPath string // simulated position in the module
	analyzers  []string
}{
	{"floatcmp", "fixture/floatcmp", []string{"floatcmp"}},
	{"errdrop", "fixture/errdrop", []string{"errdrop"}},
	{"mutexcopy", "fixture/mutexcopy", []string{"mutexcopy"}},
	{"unitsuffix", "fixture/unitsuffix", []string{"unitsuffix"}},
	// nonfinite only analyzes the numeric-kernel packages, so the fixture
	// is loaded as if it were internal/solver.
	{"nonfinite", "oftec/internal/solver", []string{"nonfinite"}},
	{"ignore", "fixture/ignore", []string{"floatcmp", "errdrop"}},
	{"ctxleak", "fixture/ctxleak", []string{"ctxleak"}},
	{"hotalloc", "fixture/hotalloc", []string{"hotalloc"}},
	{"lockorder", "fixture/lockorder", []string{"lockorder"}},
	{"goroleak", "fixture/goroleak", []string{"goroleak"}},
	// Directive-extent edge cases exercise two analyzers at once, so a
	// comma-list directive has two findings to suppress.
	{"ignoremulti", "fixture/ignoremulti", []string{"floatcmp", "errdrop"}},
}

// runFixture loads a fixture package and returns its diagnostics rendered
// with paths relative to the fixture directory.
func runFixture(t *testing.T, name, importPath string, analyzerNames []string) []string {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	pkg, err := LoadDir(dir, importPath)
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", dir, err)
	}
	analyzers, err := ByName(analyzerNames)
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for _, d := range Run([]*Package{pkg}, analyzers) {
		d.Pos.Filename = filepath.Base(d.Pos.Filename)
		lines = append(lines, d.String())
	}
	return lines
}

func TestGolden(t *testing.T) {
	for _, tc := range fixtureCases {
		t.Run(tc.name, func(t *testing.T) {
			got := strings.Join(runFixture(t, tc.name, tc.importPath, tc.analyzers), "\n") + "\n"
			goldenPath := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file (run go test ./internal/lint -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
			// Every fixture must exercise at least one positive case.
			if strings.TrimSpace(got) == "" {
				t.Errorf("fixture %s produced no diagnostics; positives are missing", tc.name)
			}
		})
	}
}

// TestPathExemptions checks the package-scoped negative cases: analyzers
// that stand down inside internal/units, and nonfinite standing down
// outside the numeric kernel.
func TestPathExemptions(t *testing.T) {
	cases := []struct {
		fixture    string
		importPath string
		analyzers  []string
	}{
		{"floatcmp", "oftec/internal/units", []string{"floatcmp"}},
		{"unitsuffix", "oftec/internal/units", []string{"unitsuffix"}},
		{"nonfinite", "fixture/nonfinite", []string{"nonfinite"}},
	}
	for _, tc := range cases {
		if got := runFixture(t, tc.fixture, tc.importPath, tc.analyzers); len(got) != 0 {
			t.Errorf("%s loaded as %s: want no diagnostics, got:\n%s",
				tc.fixture, tc.importPath, strings.Join(got, "\n"))
		}
	}
}

func TestByName(t *testing.T) {
	as, err := ByName([]string{"errdrop", "floatcmp"})
	if err != nil || len(as) != 2 || as[0].Name != "errdrop" || as[1].Name != "floatcmp" {
		t.Errorf("ByName = %v, %v", as, err)
	}
	if _, err := ByName([]string{"nope"}); err == nil {
		t.Error("ByName(nope) should fail")
	}

	// One entry may pack a comma-separated list, matching the directive
	// grammar; order is preserved and duplicates collapse.
	as, err = ByName([]string{"hotalloc,lockorder", "goroleak"})
	if err != nil || len(as) != 3 || as[0].Name != "hotalloc" || as[1].Name != "lockorder" || as[2].Name != "goroleak" {
		t.Errorf("ByName(packed) = %v, %v", as, err)
	}
	as, err = ByName([]string{"errdrop, floatcmp ,errdrop", "floatcmp"})
	if err != nil || len(as) != 2 || as[0].Name != "errdrop" || as[1].Name != "floatcmp" {
		t.Errorf("ByName(dedupe) = %v, %v", as, err)
	}
	if _, err := ByName([]string{"errdrop,nope"}); err == nil {
		t.Error("ByName(errdrop,nope) should fail on the unknown entry")
	}
	if as, err := ByName([]string{",,"}); err != nil || len(as) != 0 {
		t.Errorf("ByName(empty entries) = %v, %v; want empty, nil", as, err)
	}
}

func TestAllHaveDocs(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" {
			t.Errorf("analyzer %+v incomplete", a)
		}
		// Exactly one execution form: per-package or module-level.
		if (a.Run == nil) == (a.RunModule == nil) {
			t.Errorf("analyzer %s must set exactly one of Run and RunModule", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	if len(seen) != 11 {
		t.Errorf("expected the 11 analyzers of the suite, got %d", len(seen))
	}
}

// TestBackendLeakGolden exercises the backendleak analyzer against its
// fixture, which is a miniature module (own go.mod, fake internal/thermal
// and internal/backend packages) rather than a single directory: the
// analyzer keys on cross-package type identity, so the fixture needs the
// Model type defined in a package whose import path ends in
// internal/thermal and referenced from one ending in internal/core.
func TestBackendLeakGolden(t *testing.T) {
	root := filepath.Join("testdata", "src", "backendleak")
	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule(%s): %v", root, err)
	}
	analyzers, err := ByName([]string{"backendleak"})
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for _, d := range Run(pkgs, analyzers) {
		if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil {
			d.Pos.Filename = filepath.ToSlash(rel)
		}
		lines = append(lines, d.String())
	}
	got := strings.Join(lines, "\n") + "\n"
	goldenPath := filepath.Join("testdata", "backendleak.golden")
	if *update {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run go test ./internal/lint -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	if strings.TrimSpace(got) == "" {
		t.Error("fixture produced no diagnostics; positives are missing")
	}
	// The unscoped fixture packages (thermal, backend) reference Model
	// throughout and must contribute nothing.
	for _, l := range lines {
		if !strings.HasPrefix(l, "internal/core/") {
			t.Errorf("diagnostic outside the scoped package: %s", l)
		}
	}
}

// TestFanLeakGolden exercises the fanleak analyzer against its fixture
// module: a fake internal/fan, the exempt internal/coolant seam with its
// FanSpec/HeatSinkSpec aliases, and a scoped internal/controller consumer
// holding every leak shape — type references, signatures, a method call
// smuggled through an alias value, the sanctioned //lint:ignore escape,
// and the legal alias-carrying crossings.
func TestFanLeakGolden(t *testing.T) {
	root := filepath.Join("testdata", "src", "fanleak")
	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule(%s): %v", root, err)
	}
	analyzers, err := ByName([]string{"fanleak"})
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for _, d := range Run(pkgs, analyzers) {
		if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil {
			d.Pos.Filename = filepath.ToSlash(rel)
		}
		lines = append(lines, d.String())
	}
	got := strings.Join(lines, "\n") + "\n"
	goldenPath := filepath.Join("testdata", "fanleak.golden")
	if *update {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run go test ./internal/lint -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	if strings.TrimSpace(got) == "" {
		t.Error("fixture produced no diagnostics; positives are missing")
	}
	// The exempt fixture packages (fan, coolant) reference the fan types
	// throughout and must contribute nothing.
	for _, l := range lines {
		if !strings.HasPrefix(l, "internal/controller/") {
			t.Errorf("diagnostic outside the scoped package: %s", l)
		}
	}
}

// TestModuleIsClean loads the real module and runs the full suite: the
// repository itself must stay finding-free, so this is the regression
// gate behind `go run ./cmd/oftecvet ./...` exiting zero.
func TestModuleIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	root := filepath.Join("..", "..")
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Skipf("module root not found: %v", err)
	}
	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	var found []string
	for _, p := range pkgs {
		found = append(found, p.Path)
	}
	for _, want := range []string{"oftec/internal/units", "oftec/internal/core", "oftec/cmd/oftecvet"} {
		ok := false
		for _, p := range found {
			if p == want {
				ok = true
			}
		}
		if !ok {
			t.Errorf("LoadModule missed %s (got %v)", want, found)
		}
	}
	if diags := Run(pkgs, All()); len(diags) != 0 {
		var sb strings.Builder
		for _, d := range diags {
			sb.WriteString(d.String())
			sb.WriteString("\n")
		}
		t.Errorf("module has lint findings:\n%s", sb.String())
	}
}
