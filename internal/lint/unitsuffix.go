package lint

import (
	"go/ast"
	"go/types"
	"strings"
	"unicode"
)

// UnitSuffixAnalyzer enforces the SI-at-the-boundary convention.
//
// All internal computation is in SI units (kelvin, watts, rad/s, meters);
// only internal/units converts to and from the units the paper reports.
// An exported function whose float parameter or result is named tempC,
// speedRPM, or widthMM advertises a non-SI contract, so every caller must
// remember a conversion the type system cannot check. The analyzer flags
// float-typed parameters and results of exported functions whose names
// end in a non-SI unit suffix (RPM, Celsius, C, MM), except inside
// internal/units itself, where such names are the conversion helpers'
// job. Deliberately non-SI reporting APIs must be annotated with
// //lint:ignore unitsuffix <reason>.
var UnitSuffixAnalyzer = &Analyzer{
	Name: "unitsuffix",
	Doc:  "flags exported float params/results named with non-SI unit suffixes",
	Run:  runUnitSuffix,
}

var nonSISuffixes = []string{"Celsius", "RPM", "MM", "C"}

func runUnitSuffix(pass *Pass) {
	if strings.HasSuffix(pass.Pkg.Path, "internal/units") {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !fd.Name.IsExported() {
				continue
			}
			checkSuffixList(pass, fd, fd.Type.Params, "parameter")
			checkSuffixList(pass, fd, fd.Type.Results, "result")
		}
	}
}

func checkSuffixList(pass *Pass, fd *ast.FuncDecl, fl *ast.FieldList, what string) {
	if fl == nil {
		return
	}
	for _, field := range fl.List {
		if !isFloatBased(pass.TypeOf(field.Type)) {
			continue
		}
		for _, name := range field.Names {
			if suffix := nonSISuffix(name.Name); suffix != "" {
				pass.Reportf(name.Pos(), "exported function %s has %s %q with non-SI unit suffix %q; convert via internal/units and pass SI", fd.Name.Name, what, name.Name, suffix)
			}
		}
	}
}

// isFloatBased reports whether t is a float or a slice/array of floats.
func isFloatBased(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&types.IsFloat != 0
	case *types.Slice:
		return isFloatBased(u.Elem())
	case *types.Array:
		return isFloatBased(u.Elem())
	}
	return false
}

// nonSISuffix returns the offending suffix, or "". A suffix matches when
// the name is exactly the suffix (any case, e.g. "rpm"), or ends with the
// suffix preceded by a lowercase letter or digit (camelCase boundary,
// e.g. "tMaxC", "speedRPM") — so "Vec" or "Disc" do not match "C".
func nonSISuffix(name string) string {
	for _, s := range nonSISuffixes {
		if strings.EqualFold(name, s) {
			return s
		}
		if strings.HasSuffix(name, s) {
			runes := []rune(name[:len(name)-len(s)])
			prev := runes[len(runes)-1]
			if unicode.IsLower(prev) || unicode.IsDigit(prev) {
				return s
			}
		}
	}
	return ""
}
