package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// FanLeakAnalyzer guards the coolant-actuator seam: outside internal/fan
// (the air-mover physics) and internal/coolant (the seam itself), no
// package may reference the concrete fan.Fan or fan.HeatSinkModel types.
// Consumers program against coolant.Actuator — Power, Conductance, and
// their derivatives — so a liquid loop, a PUE wrapper, or a multi-chip
// cold plate slots in without touching the thermal stack. A direct fan
// reference re-couples a consumer to one actuator technology and silently
// bypasses the seam.
//
// The analyzer reports, everywhere except the exempt packages:
//
//   - any identifier that resolves to the Fan or HeatSinkModel type of a
//     package whose import path ends in "internal/fan" (declarations,
//     conversions, type assertions, composite literals). The coolant
//     package's FanSpec/HeatSinkSpec aliases are its own type names and
//     stay legal: carrying air parameters is data, not actuation;
//   - any method call or field selection whose receiver is (a pointer to)
//     one of those types — this catches actuation smuggled through the
//     aliases, where no fan identifier appears.
//
// Intentional escapes carry a //lint:ignore fanleak <reason> directive.
var FanLeakAnalyzer = &Analyzer{
	Name: "fanleak",
	Doc:  "flags direct fan.Fan/fan.HeatSinkModel references outside the coolant seam",
	Run:  runFanLeak,
}

// fanLeakExempt lists the import-path suffixes of the packages on the
// actuator side of the seam, where fan types are the subject matter.
var fanLeakExempt = []string{
	"internal/fan",
	"internal/coolant",
}

func runFanLeak(pass *Pass) {
	for _, suffix := range fanLeakExempt {
		if strings.HasSuffix(pass.Pkg.Path, suffix) {
			return
		}
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				obj := pass.Pkg.Info.Uses[n]
				if obj == nil {
					obj = pass.Pkg.Info.Defs[n]
				}
				if isFanSeamType(obj) {
					pass.Reportf(n.Pos(), "direct reference to fan.%s; program against coolant.Actuator (or //lint:ignore fanleak with a reason)", obj.Name())
				}
			case *ast.SelectorExpr:
				// Method calls and field reads on a fan value that arrived
				// through the coolant aliases: the Selections map only holds
				// genuine member selections, so qualified type names
				// (fan.Fan) stay with the identifier rule above.
				sel, ok := pass.Pkg.Info.Selections[n]
				if !ok {
					return true
				}
				if named := namedOf(sel.Recv()); named != nil && isFanSeamType(named.Obj()) {
					pass.Reportf(n.Sel.Pos(), "selection %s on a fan.%s value; route through coolant.Actuator (or //lint:ignore fanleak with a reason)", n.Sel.Name, named.Obj().Name())
				}
			}
			return true
		})
	}
}

// isFanSeamType reports whether obj is the Fan or HeatSinkModel type name
// of a fan package (import path suffix "internal/fan").
func isFanSeamType(obj types.Object) bool {
	tn, ok := obj.(*types.TypeName)
	if !ok || tn.Pkg() == nil {
		return false
	}
	if tn.Name() != "Fan" && tn.Name() != "HeatSinkModel" {
		return false
	}
	return strings.HasSuffix(tn.Pkg().Path(), "internal/fan")
}
