// Package hotalloc is the fixture for the //oftec:hotpath no-alloc
// obligation. The memoCache section deliberately mirrors the shape of the
// thermal model's version/result memo (the path the PR 3 benchmarks pin
// at 0 allocs/op): the hit path is annotated hot and stays clean, and
// regressedStore shows exactly what a regression of that contract looks
// like to the analyzer.
package hotalloc

import "fmt"

type result struct{ v float64 }

// memoCache mirrors the thermal result memo: load is the 0-alloc hit
// path, store is the sanctioned amortized path.
type memoCache struct {
	memo map[uint64]*result
}

// load is the memo hit path — must stay allocation-free.
//
//oftec:hotpath
func (c *memoCache) load(k uint64) (*result, bool) {
	r, ok := c.memo[k]
	return r, ok
}

// regressedStore is the deliberate regression: if the memo hit path ever
// grows a per-call allocation or a fmt call, this is the report it gets.
//
//oftec:hotpath
func (c *memoCache) regressedStore(k uint64, v float64) {
	c.memo[k] = &result{v: v} // want: &result escapes
	fmt.Printf("stored %d\n", k)
}

// amortizedStore shows the sanctioned escape for a single site: the
// rotation make is amortized, so it carries a reasoned ignore.
//
//oftec:hotpath
func (c *memoCache) amortizedStore(k uint64, r *result) {
	if len(c.memo) >= 8 {
		//lint:ignore hotalloc amortized wholesale clear, fixture mirror of the real memo
		c.memo = make(map[uint64]*result)
	}
	c.memo[k] = r
}

// evaluate is a hot root whose obligation propagates through the call
// graph: helper is reached and scanned, coldPath is annotated allocok and
// stops the propagation.
//
//oftec:hotpath
func evaluate(xs []float64) float64 {
	s := sum(xs)
	if s < 0 {
		return coldPath(s)
	}
	return s
}

// sum is clean and reached from evaluate — no findings.
func sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// coldPath materializes an error-ish message; sanctioned.
//
//oftec:allocok cold branch, runs only on invalid input
func coldPath(s float64) float64 {
	_ = fmt.Sprintf("negative sum %g", s)
	return 0
}

// helperAllocs is reached from hotRoot below, so its allocations are
// reported with the propagation chain in the message.
func helperAllocs(n int) []float64 {
	out := make([]float64, n)
	return out
}

//oftec:hotpath
func hotRoot(n int) []float64 {
	return helperAllocs(n)
}

// reasonless is a directive-hygiene finding: allocok without a reason.
//
//oftec:allocok
func reasonless() {}

type sink interface{ consume() }

type intBox int

func (intBox) consume() {}

func accept(s sink) { s.consume() }

// kitchenSink triggers the remaining allocation kinds in one annotated
// body: go statement, slice and map literals, string concatenation,
// capturing closure, and interface boxing at a call boundary.
//
//oftec:hotpath
func kitchenSink(name string, b intBox) func() {
	go func() {}()
	xs := []float64{1, 2}
	m := map[string]int{"a": 1}
	msg := "hello " + name
	accept(b)
	_ = xs
	_ = m
	_ = msg
	local := 0
	return func() { local++ }
}

// notHot allocates freely: no annotation, no findings.
func notHot() []float64 {
	xs := make([]float64, 4)
	_ = fmt.Sprintf("%v", xs)
	return xs
}
