// Package mutexcopy is a fixture: positive and negative cases for the
// mutexcopy analyzer.
package mutexcopy

import "sync"

type Guarded struct {
	mu    sync.Mutex
	count int
}

type Nested struct { // mutex reached through a nested struct field
	inner Guarded
}

type RW struct {
	mu sync.RWMutex
}

type Plain struct {
	count int
}

func ByValue(g Guarded) int { return g.count }       // want: by-value parameter

func Return() Guarded { return Guarded{} }           // want: by-value result

func NestedByValue(n Nested) {}                      // want: nested containment

func RWByValue(r RW) {}                              // want: RWMutex counts too

func (g Guarded) ValueReceiver() int { return g.count } // want: value receiver

func RangeCopy(gs []Guarded) {
	for _, g := range gs { // want: range copies the struct
		_ = g.count
	}
}

func ByPointer(g *Guarded) int { return g.count } // pointer is fine

func (g *Guarded) PointerReceiver() {} // pointer receiver is fine

func RangePointers(gs []*Guarded) {
	for _, g := range gs { // copying a pointer is fine
		_ = g.count
	}
}

func RangeIndex(gs []Guarded) {
	for i := range gs { // index iteration is fine
		_ = gs[i].count
	}
}

func PlainByValue(p Plain) int { return p.count } // no mutex, fine

//lint:ignore mutexcopy fixture demonstrates suppression
func IgnoredByValue(g Guarded) int { return g.count }
