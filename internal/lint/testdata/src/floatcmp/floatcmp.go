// Package floatcmp is a fixture: positive and negative cases for the
// floatcmp analyzer.
package floatcmp

type Temp float64

func positives(a, b float64, t Temp) bool {
	if a == b { // want: float comparison with ==
		return true
	}
	if a != 1.5 { // want: nonzero constant is still flagged
		return true
	}
	if t == Temp(b) { // want: named float types are flagged
		return true
	}
	switch a { // want: switch on float
	case 1.0:
		return true
	}
	return false
}

func negatives(a, b float64, i, j int, s string) bool {
	if a == 0 { // exact-zero guard is allowed
		return true
	}
	if 0.0 != b { // either side may be the zero constant
		return true
	}
	if i == j { // ints are fine
		return true
	}
	if s == "x" { // strings are fine
		return true
	}
	if a < b || a >= b { // ordered comparisons are fine
		return true
	}
	return false
}

func ignored(a, b float64) bool {
	//lint:ignore floatcmp fixture demonstrates suppression
	if a == b {
		return true
	}
	return a != b //lint:ignore floatcmp trailing directive also suppresses
}
