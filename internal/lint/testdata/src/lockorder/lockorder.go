// Package lockorder is the fixture for the mutex discipline analyzer:
// an AB/BA acquisition cycle, a Lock with a return path that skips the
// Unlock, a re-acquisition of a held mutex, and a call into a function
// that acquires a mutex the caller already holds. The clean patterns —
// defer Unlock, strictly nested AB ordering everywhere, function
// literals balancing their own locks — must stay silent.
package lockorder

import "sync"

var (
	muA sync.Mutex
	muB sync.Mutex
)

// abOrder establishes the edge A→B.
func abOrder() {
	muA.Lock()
	muB.Lock()
	muB.Unlock()
	muA.Unlock()
}

// baOrder establishes B→A, closing the cycle with abOrder.
func baOrder() {
	muB.Lock()
	muA.Lock()
	muA.Unlock()
	muB.Unlock()
}

// missingUnlock leaks the lock on the early-return path.
func missingUnlock(cond bool) {
	muA.Lock()
	if cond {
		return
	}
	muA.Unlock()
}

// doubleLock re-acquires a mutex it already holds.
func doubleLock() {
	muA.Lock()
	muA.Lock()
	muA.Unlock()
	muA.Unlock()
}

// helperLocks acquires muB on every call.
func helperLocks() int {
	muB.Lock()
	defer muB.Unlock()
	return 1
}

// selfDeadlock calls helperLocks while already holding muB.
func selfDeadlock() int {
	muB.Lock()
	defer muB.Unlock()
	return helperLocks()
}

// counter is the clean struct pattern: Lock with defer Unlock.
type counter struct {
	mu sync.Mutex
	n  int
}

func (c *counter) inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// branchBalanced unlocks on every path explicitly — clean.
func (c *counter) branchBalanced(flag bool) int {
	c.mu.Lock()
	if flag {
		c.mu.Unlock()
		return 0
	}
	n := c.n
	c.mu.Unlock()
	return n
}

// literalBalances shows a function literal balancing its own lock; the
// enclosing function holds nothing, so neither unit reports.
func (c *counter) literalBalances() func() {
	return func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		c.n++
	}
}

// suppressed parks a known-unbalanced lock under a reasoned ignore.
func suppressed() {
	//lint:ignore lockorder fixture demonstrates a reviewed suppression
	muA.Lock()
	release()
}

// release pairs with suppressed's acquisition; from the analyzer's view
// it is an unlock without a matching lock, which is not reported.
func release() {
	muA.Unlock()
}
