// Package ignore is a fixture for the directive machinery itself:
// malformed directives are findings, "all" suppresses every analyzer,
// and a directive for one analyzer does not silence another.
package ignore

import "errors"

func mayFail() error { return errors.New("boom") }

//lint:ignore
func malformedNoAnalyzer() {} // want: directive without analyzer or reason

//lint:ignore errdrop
func malformedNoReason() {} // want: directive without a reason

func suppressAll(a, b float64) {
	//lint:ignore all fixture demonstrates blanket suppression
	_ = mayFail()
}

func wrongAnalyzer(a, b float64) bool {
	//lint:ignore errdrop directive names the wrong analyzer
	return a == b // want: floatcmp still fires
}
