// Package nonfinite is a fixture: positive and negative cases for the
// nonfinite analyzer. The test loads it once under an
// oftec/internal/solver import path (in scope, findings expected) and
// once under a non-kernel path (out of scope, no findings).
package nonfinite

import "math"

func Ratio(a, b float64) float64 { // want: unguarded division
	return a / b
}

func Boltzmann(e, kT float64) float64 { // want: unguarded math.Exp
	return math.Exp(-e / kT)
}

func Entropy(p float64) float64 { // want: unguarded math.Log
	return -p * math.Log(p)
}

func GuardedRatio(a, b float64) float64 { // guard present, fine
	r := a / b
	if math.IsNaN(r) || math.IsInf(r, 0) {
		return 0
	}
	return r
}

func Scaled(a float64) float64 { // no division, no transcendental, fine
	return 3 * a
}

func unexportedRatio(a, b float64) float64 { // unexported, out of scope
	return a / b
}

func IntDiv(a, b int) int { // integer division cannot go non-finite
	return a / b
}

//lint:ignore nonfinite fixture demonstrates suppression
func IgnoredRatio(a, b float64) float64 {
	return a / b
}
