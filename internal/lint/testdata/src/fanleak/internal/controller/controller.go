// Package controller is the scoped fixture: every way the fan types can
// leak past the coolant seam, plus the crossings that stay legal.
package controller

import (
	"fixture/internal/coolant"
	"fixture/internal/fan"
)

// A stored fan re-couples the consumer to one actuator: flagged on the
// type reference.
type dtm struct {
	fan fan.Fan
}

// Fan types in a signature leak them to every caller: flagged twice.
func build(f fan.Fan, h fan.HeatSinkModel) float64 {
	return f.Power(100)
}

// Carrying air parameters through the coolant aliases is legal — they are
// data — but *actuating* them directly is not: the method call on the
// alias value selects through the underlying fan type and is flagged.
func smuggled(spec coolant.FanSpec) float64 {
	return spec.Power(100)
}

// The sanctioned escape: air-only reporting behind a directive.
func sanctioned(spec coolant.FanSpec) float64 {
	//lint:ignore fanleak fixture demonstrates the sanctioned escape
	return spec.Power(100)
}

// The seam in use: holding alias-typed values and programming against the
// Actuator contract crosses nothing.
func allowed(spec coolant.FanSpec, sink coolant.HeatSinkSpec) float64 {
	var act coolant.Actuator = coolant.Air{Fan: spec, Sink: sink}
	return act.Power(100) + act.Conductance(100)
}

// A type assertion names the type: flagged.
func asserted(v interface{}) bool {
	_, ok := v.(fan.HeatSinkModel)
	return ok
}
