// Package fan is a stand-in for the real air-mover package: the fanleak
// analyzer matches the Fan and HeatSinkModel types by name and
// import-path suffix, so the fixture only needs the shapes.
package fan

type Fan struct{ OmegaMax float64 }

func (f Fan) Power(omega float64) float64 { return omega * omega * omega }

type HeatSinkModel struct{ GHS float64 }

func (h HeatSinkModel) Conductance(omega float64) float64 { return h.GHS }
