// Package coolant mirrors the real seam package: it is exempt, and its
// FanSpec/HeatSinkSpec aliases are the sanctioned way air parameters
// travel through configs without naming the fan types.
package coolant

import "fixture/internal/fan"

type (
	FanSpec      = fan.Fan
	HeatSinkSpec = fan.HeatSinkModel
)

type Actuator interface {
	Power(u float64) float64
	Conductance(u float64) float64
}

// Air adapts the fan pair to the Actuator contract; being inside the
// exempt package, its fan references are the subject matter, not a leak.
type Air struct {
	Fan  FanSpec
	Sink HeatSinkSpec
}

func (a Air) Power(u float64) float64       { return a.Fan.Power(u) }
func (a Air) Conductance(u float64) float64 { return a.Sink.Conductance(u) }
