// Package goroleak is the fixture for the goroutine-obligation analyzer:
// a bare spawn with no join, an Add that does not reach the spawn, and a
// dynamic spawn the analyzer cannot see through are findings; WaitGroup
// pairing (literal or named worker), context cancellation, and channel
// joins are the sanctioned patterns.
package goroleak

import (
	"context"
	"sync"
)

// leaky spawns with no join or cancellation — the core finding.
func leaky() {
	go func() {
		println("work")
	}()
}

// waited is the canonical clean pattern (mirrors parallel.ForEach).
func waited(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// addAfterSpawn calls Done in the body, but the Add only happens after
// the spawn on the CFG — the pairing is not provable at launch.
func addAfterSpawn() {
	var wg sync.WaitGroup
	go func() {
		defer wg.Done()
	}()
	wg.Add(1)
	wg.Wait()
}

// cancellable watches the context's Done channel — clean.
func cancellable(ctx context.Context, ticks chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case t := <-ticks:
				_ = t
			}
		}
	}()
}

// channelJoin signals completion over a channel the spawner waits on.
func channelJoin() int {
	out := make(chan int)
	go func() {
		out <- 42
	}()
	return <-out
}

// closeJoin closes a channel the spawner ranges over.
func closeJoin() int {
	out := make(chan int)
	go func() {
		out <- 1
		close(out)
	}()
	s := 0
	for v := range out {
		s += v
	}
	return s
}

// worker is a named goroutine body; Done on the parameter maps back to
// the WaitGroup passed at the spawn site.
func worker(wg *sync.WaitGroup) {
	defer wg.Done()
}

func namedWorker() {
	var wg sync.WaitGroup
	wg.Add(1)
	go worker(&wg)
	wg.Wait()
}

var dynamicFn = func() {}

// dynamic spawns through a function value: unprovable, reported.
func dynamic() {
	go dynamicFn()
}

// suppressed parks a fire-and-forget spawn under a reasoned ignore.
func suppressed() {
	//lint:ignore goroleak fixture demonstrates a reviewed fire-and-forget
	go func() {
		println("logged and accepted")
	}()
}
