// Package errdrop is a fixture: positive and negative cases for the
// errdrop analyzer.
package errdrop

import (
	"errors"
	"fmt"
	"strings"
)

func mayFail() error { return errors.New("boom") }

func twoRet() (int, error) { return 0, nil }

func positives() {
	_ = mayFail()      // want: blank assignment of an error
	_, _ = twoRet()    // want: blank error in a tuple assignment
	mayFail()          // want: bare statement call
	defer mayFail()    // want: deferred call drops the error
	go mayFail()       // want: goroutine call drops the error
	v, _ := twoRet()   // want: value kept, error blanked
	_ = v
}

func negatives() error {
	if err := mayFail(); err != nil { // handled
		return err
	}
	v, err := twoRet() // both results bound
	if err != nil {
		return err
	}
	_ = v                      // blank of a non-error is fine
	fmt.Println("best-effort") // fmt print family is allowlisted
	var sb strings.Builder
	sb.WriteString("never fails") // strings.Builder is allowlisted
	return nil
}

func ignored() {
	//lint:ignore errdrop fixture demonstrates suppression
	_ = mayFail()
}
