// Package backend mirrors the evaluation seam. It is outside the
// analyzer's scope, so its own Model references — the ModelOf escape
// hatch — are the fixture's package-scoped negative case.
package backend

import "fixture/internal/thermal"

type Evaluator interface {
	Name() string
	Config() thermal.Config
}

// ModelOf hands the fixture's core package a model value whose type is
// inferred, never named — the leak only the selection rule can catch.
func ModelOf(ev Evaluator) (*thermal.Model, bool) { return nil, false }
