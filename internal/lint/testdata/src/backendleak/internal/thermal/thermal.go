// Package thermal is a stand-in for the real physics package: the
// backendleak analyzer matches the Model type by name and import-path
// suffix, so the fixture only needs the shapes, not the physics.
package thermal

type Config struct{ Ambient float64 }

type Result struct{ MaxChipTemp float64 }

type Model struct{ cfg Config }

func NewModel(cfg Config) (*Model, error) { return &Model{cfg: cfg}, nil }

func (m *Model) NumTEC() int   { return 0 }
func (m *Model) Config() Config { return m.cfg }

func (m *Model) Evaluate(omega, itec float64) (*Result, error) { return &Result{}, nil }
