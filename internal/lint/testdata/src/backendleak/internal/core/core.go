// Package core is the scoped fixture: every way a thermal model can leak
// back across the backend seam, plus the crossings that stay legal.
package core

import (
	"fixture/internal/backend"
	"fixture/internal/thermal"
)

// A stored model re-couples the layers: flagged on the type reference.
type system struct {
	model *thermal.Model
}

// A model in a signature leaks it to every caller: flagged.
func build(cfg thermal.Config) (*thermal.Model, error) {
	return thermal.NewModel(cfg)
}

// A model smuggled through ModelOf has an inferred type — no "Model"
// identifier appears — so only the selection rule catches the call.
func smuggled(ev backend.Evaluator) int {
	m, ok := backend.ModelOf(ev)
	if !ok {
		return 0
	}
	return m.NumTEC()
}

// The sanctioned escape: model-only reporting behind a directive.
func sanctioned(ev backend.Evaluator) int {
	m, ok := backend.ModelOf(ev)
	if !ok {
		return 0
	}
	//lint:ignore backendleak fixture demonstrates the sanctioned escape
	return m.NumTEC()
}

// Data types cross the seam freely: Result and Config are answers, not
// the solver.
func allowed(ev backend.Evaluator, r *thermal.Result) float64 {
	cfg := ev.Config()
	return r.MaxChipTemp + cfg.Ambient
}

// A type assertion names the type: flagged.
func asserted(v interface{}) bool {
	_, ok := v.(*thermal.Model)
	return ok
}
