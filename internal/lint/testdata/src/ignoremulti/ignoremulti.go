// Package ignoremulti is the fixture for directive placement on
// multi-line statements: a standalone or trailing //lint:ignore covers
// the statement's whole extent (a finding on a wrapped continuation line
// is still the same statement), comma lists name several analyzers at
// once, and a directive above a control-flow header does not blanket the
// body.
package ignoremulti

import "errors"

func mayFail(a, b float64) error {
	if a > b {
		return errors.New("boom")
	}
	return nil
}

// standalone directive above a statement that wraps across lines: the
// comparison on the continuation line is suppressed too.
func standaloneExtent(a, b float64) bool {
	//lint:ignore floatcmp fixture covers the wrapped operand
	eq := a == b ||
		b == a
	return eq
}

// trailing directive on the first line of a wrapped statement.
func trailingExtent(a, b float64) bool {
	eq := a == b || //lint:ignore floatcmp fixture covers the wrapped operand
		b == a
	return eq
}

// comma list: one directive suppresses two analyzers over one statement.
func commaList(a, b float64) {
	//lint:ignore floatcmp,errdrop fixture suppresses both findings at once
	_ = mayFail(boolToF(a == b), b)
}

// partial list: naming one analyzer leaves the other's finding standing.
func partialList(a, b float64) {
	//lint:ignore floatcmp directive names only floatcmp
	_ = mayFail(boolToF(a == b), b)
}

// headerNotBlanket: a directive above an if header must not silence the
// body — only the header line (and the next line) is covered.
func headerNotBlanket(a, b float64) bool {
	//lint:ignore floatcmp header comparison is reviewed
	if a == b {
		return a == b
	}
	return false
}

// unsuppressed is the plain positive case.
func unsuppressed(a, b float64) bool {
	return a == b
}

func boolToF(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
