// Package ctxleak is a fixture: positive and negative cases for the
// ctxleak analyzer.
package ctxleak

import "context"

// Options mimics the solver package's options struct: a Ctx field plus
// ordinary tuning knobs.
type Options struct {
	Ctx     context.Context
	MaxIter int
}

func (o Options) cancelled() bool { return o.Ctx != nil && o.Ctx.Err() != nil }

// Plain has no Ctx field; loops over it are fine.
type Plain struct{ MaxIter int }

func badRange(xs []float64, opts Options) float64 { // want: loop ignores opts.Ctx
	s := 0.0
	for _, x := range xs {
		s += x * float64(opts.MaxIter)
	}
	return s
}

func badFor(opts Options) int { // want: loop ignores opts.Ctx
	n := 0
	for i := 0; i < opts.MaxIter; i++ {
		n++
	}
	return n
}

func goodMethod(opts Options) int { // consults via the cancelled helper
	n := 0
	for i := 0; i < opts.MaxIter; i++ {
		if opts.cancelled() {
			break
		}
		n++
	}
	return n
}

func goodField(opts Options) int { // consults the field directly
	n := 0
	for i := 0; i < opts.MaxIter; i++ {
		if opts.Ctx != nil && opts.Ctx.Err() != nil {
			break
		}
		n++
	}
	return n
}

func goodDelegate(xs []float64, opts Options) float64 { // hands opts on wholesale
	var s float64
	for _, x := range xs {
		s += helper(x, opts)
	}
	return s
}

func helper(x float64, opts Options) float64 { // no loop: exempt
	return x * float64(opts.MaxIter)
}

func goodNoLoop(opts Options) int { return opts.MaxIter }

func goodPlain(o Plain) int { // no Ctx field to ignore
	n := 0
	for i := 0; i < o.MaxIter; i++ {
		n++
	}
	return n
}
