// Package unitsuffix is a fixture: positive and negative cases for the
// unitsuffix analyzer. When loaded under an .../internal/units import
// path the whole file must produce no findings.
package unitsuffix

func SetTemp(tempC float64) {} // want: Celsius-suffixed parameter

func FanSpeed(speedRPM float64) {} // want: RPM-suffixed parameter

func Width() (widthMM float64) { return 0 } // want: MM-suffixed named result

func Limit(tMaxC float64, samples []float64) {} // want: camelCase C suffix

func Bare(rpm float64) {} // want: the bare unit name matches too

func Celsius2K(celsius float64) float64 { return celsius + 273.15 } // want: full-word suffix

func unexported(tempC float64) {} // unexported functions are out of scope

func Kelvin(tempK float64) {} // SI suffix is fine

func Describe(metricC string) {} // non-float params are out of scope

func Vec(vec []float64) {} // "Vec" does not end in a unit suffix ("c" is lowercase)

func Disc(disc float64) {} // likewise "Disc"

func Count(numC int) {} // int named numC is out of scope (not float)

//lint:ignore unitsuffix fixture demonstrates suppression
func Ignored(tempC float64) {}
