package lint

import (
	"go/ast"
	"go/token"
)

// This file is the lightweight intraprocedural control-flow graph the
// dataflow analyzers (lockorder, goroleak) walk. It deliberately models
// only what those analyzers need: ordered statements grouped into basic
// blocks, successor edges for if/for/range/switch/select, return edges
// into one synthetic exit block, and the function's defer list (deferred
// calls run at every exit, so exit-sensitive analyses overlay them on the
// exit block rather than on every return site). Panics and unterminated
// infinite loops end a path without reaching the exit block — a path that
// cannot return carries no "on return" obligations. Goto is resolved to
// its label when the label is in scope; unresolved gotos conservatively
// fall through.

// Block is one basic block: statements that execute in order with no
// internal control transfer, plus the successor edges out of the block.
type Block struct {
	Index int
	// Stmts are the statements (and for/if/switch headers) attributed to
	// this block, in execution order. Control statements contribute their
	// header expressions here; their bodies live in successor blocks.
	Stmts []ast.Node
	Succs []*Block
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	Entry *Block
	// Exit is the synthetic join of every returning path. A block with an
	// edge to Exit either ends in a return or falls off the end of the
	// function body.
	Exit   *Block
	Blocks []*Block
	// Defers lists every defer statement in the body, in source order.
	// Deferred calls run on every exit path (and during panics).
	Defers []*ast.DeferStmt
}

// cfgBuilder carries the loop/label context while translating statements.
type cfgBuilder struct {
	cfg *CFG
	// breakTo / continueTo are stacks of jump targets for the innermost
	// enclosing breakable (for/range/switch/select) and continuable
	// (for/range) statements.
	breakTo    []*Block
	continueTo []*Block
	// labels maps a label name to its labeled statement's break/continue
	// targets; gotoTo maps it to the statement's own entry block.
	labelBreak    map[string]*Block
	labelContinue map[string]*Block
	gotoTo        map[string]*Block
	// pendingGotos are goto edges to labels not yet seen.
	pendingGotos map[string][]*Block
	// labelPending names the label wrapping the statement currently being
	// translated, so pushLoop/pushBreak can register labeled targets.
	labelPending string
}

// BuildCFG constructs the CFG for a function body. A nil body yields a
// graph whose entry is also its only block, with an edge to the exit.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:           &CFG{},
		labelBreak:    map[string]*Block{},
		labelContinue: map[string]*Block{},
		gotoTo:        map[string]*Block{},
		pendingGotos:  map[string][]*Block{},
	}
	entry := b.newBlock()
	exit := b.newBlock()
	b.cfg.Entry, b.cfg.Exit = entry, exit
	cur := entry
	if body != nil {
		cur = b.stmtList(body.List, cur)
	}
	if cur != nil {
		b.edge(cur, exit)
	}
	// Unresolved forward gotos (label never declared — ill-formed code, or
	// a label inside a nested function literal): fall through to exit so
	// the path is not silently lost.
	for _, srcs := range b.pendingGotos {
		for _, s := range srcs {
			b.edge(s, exit)
		}
	}
	return b.cfg
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// stmtList translates a statement sequence starting in cur and returns the
// block live after the last statement, or nil when control cannot fall
// through (return, break, panic-terminated, …).
func (b *cfgBuilder) stmtList(stmts []ast.Stmt, cur *Block) *Block {
	for _, s := range stmts {
		if cur == nil {
			// Dead code after a terminating statement still gets blocks so
			// analyzers can inspect it, but with no inbound edge.
			cur = b.newBlock()
		}
		cur = b.stmt(s, cur)
	}
	return cur
}

// stmt translates one statement; returns the live block after it (nil if
// control does not fall through).
func (b *cfgBuilder) stmt(s ast.Stmt, cur *Block) *Block {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmtList(s.List, cur)

	case *ast.IfStmt:
		if s.Init != nil {
			cur = b.stmt(s.Init, cur)
		}
		cur.Stmts = append(cur.Stmts, s.Cond)
		thenBlk := b.newBlock()
		b.edge(cur, thenBlk)
		thenEnd := b.stmtList(s.Body.List, thenBlk)
		var elseEnd *Block
		join := b.newBlock()
		if s.Else != nil {
			elseBlk := b.newBlock()
			b.edge(cur, elseBlk)
			elseEnd = b.stmt(s.Else, elseBlk)
		} else {
			b.edge(cur, join)
		}
		dead := true
		if thenEnd != nil {
			b.edge(thenEnd, join)
			dead = false
		}
		if elseEnd != nil {
			b.edge(elseEnd, join)
			dead = false
		}
		if s.Else == nil {
			dead = false
		}
		if dead {
			return nil
		}
		return join

	case *ast.ForStmt:
		if s.Init != nil {
			cur = b.stmt(s.Init, cur)
		}
		head := b.newBlock()
		b.edge(cur, head)
		if s.Cond != nil {
			head.Stmts = append(head.Stmts, s.Cond)
		}
		after := b.newBlock()
		post := b.newBlock()
		if s.Cond != nil {
			b.edge(head, after)
		}
		body := b.newBlock()
		b.edge(head, body)
		b.pushLoop(after, post)
		bodyEnd := b.stmtList(s.Body.List, body)
		b.popLoop()
		if bodyEnd != nil {
			b.edge(bodyEnd, post)
		}
		if s.Post != nil {
			post.Stmts = append(post.Stmts, s.Post)
		}
		b.edge(post, head)
		if s.Cond == nil && !reachable(head, after) {
			// for {} with no break out: control never falls through.
			return nil
		}
		return after

	case *ast.RangeStmt:
		head := b.newBlock()
		b.edge(cur, head)
		head.Stmts = append(head.Stmts, s.X)
		after := b.newBlock()
		b.edge(head, after) // range may iterate zero times
		body := b.newBlock()
		b.edge(head, body)
		b.pushLoop(after, head)
		bodyEnd := b.stmtList(s.Body.List, body)
		b.popLoop()
		if bodyEnd != nil {
			b.edge(bodyEnd, head)
		}
		return after

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var init ast.Stmt
		var tag ast.Node
		var body *ast.BlockStmt
		if sw, ok := s.(*ast.SwitchStmt); ok {
			init, body = sw.Init, sw.Body
			if sw.Tag != nil {
				tag = sw.Tag
			}
		} else {
			ts := s.(*ast.TypeSwitchStmt)
			init, body = ts.Init, ts.Body
			tag = ts.Assign
		}
		if init != nil {
			cur = b.stmt(init, cur)
		}
		if tag != nil {
			cur.Stmts = append(cur.Stmts, tag)
		}
		after := b.newBlock()
		b.pushBreak(after)
		// Case bodies; fallthrough chains to the next case's body block.
		var caseBlocks []*Block
		var clauses []*ast.CaseClause
		hasDefault := false
		for _, cs := range body.List {
			cc := cs.(*ast.CaseClause)
			clauses = append(clauses, cc)
			caseBlocks = append(caseBlocks, b.newBlock())
			if cc.List == nil {
				hasDefault = true
			}
		}
		for i, cc := range clauses {
			blk := caseBlocks[i]
			b.edge(cur, blk)
			for _, e := range cc.List {
				blk.Stmts = append(blk.Stmts, e)
			}
			var next *Block
			if i+1 < len(caseBlocks) {
				next = caseBlocks[i+1]
			}
			end := b.caseBody(cc.Body, blk, next)
			if end != nil {
				b.edge(end, after)
			}
		}
		if !hasDefault {
			b.edge(cur, after)
		}
		b.popBreak()
		return after

	case *ast.SelectStmt:
		after := b.newBlock()
		b.pushBreak(after)
		fellThrough := false
		for _, cs := range s.Body.List {
			cc := cs.(*ast.CommClause)
			blk := b.newBlock()
			b.edge(cur, blk)
			if cc.Comm != nil {
				blk.Stmts = append(blk.Stmts, cc.Comm)
			}
			end := b.stmtList(cc.Body, blk)
			if end != nil {
				b.edge(end, after)
				fellThrough = true
			}
		}
		b.popBreak()
		if len(s.Body.List) == 0 || !fellThrough {
			// select{} blocks forever; a select whose every case
			// terminates does not fall through either — unless a break
			// reached after.
			if !reachableFromAny(b.cfg.Blocks, after) {
				return nil
			}
		}
		return after

	case *ast.ReturnStmt:
		cur.Stmts = append(cur.Stmts, s)
		b.edge(cur, b.cfg.Exit)
		return nil

	case *ast.BranchStmt:
		cur.Stmts = append(cur.Stmts, s)
		switch s.Tok {
		case token.BREAK:
			if s.Label != nil {
				if t := b.labelBreak[s.Label.Name]; t != nil {
					b.edge(cur, t)
				}
			} else if t := b.curBreak(); t != nil {
				b.edge(cur, t)
			}
			return nil
		case token.CONTINUE:
			if s.Label != nil {
				if t := b.labelContinue[s.Label.Name]; t != nil {
					b.edge(cur, t)
				}
			} else if t := b.curContinue(); t != nil {
				b.edge(cur, t)
			}
			return nil
		case token.GOTO:
			if t := b.gotoTo[s.Label.Name]; t != nil {
				b.edge(cur, t)
			} else {
				b.pendingGotos[s.Label.Name] = append(b.pendingGotos[s.Label.Name], cur)
			}
			return nil
		case token.FALLTHROUGH:
			// Handled by caseBody; treat as fallthrough-to-next there.
			return cur
		}
		return cur

	case *ast.LabeledStmt:
		target := b.newBlock()
		b.edge(cur, target)
		b.gotoTo[s.Label.Name] = target
		for _, src := range b.pendingGotos[s.Label.Name] {
			b.edge(src, target)
		}
		delete(b.pendingGotos, s.Label.Name)
		// For labeled loops/switches, labeled break/continue must resolve
		// to the statement's own targets; record them around translation.
		switch inner := s.Stmt.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			b.labelPending = s.Label.Name
			end := b.stmt(inner, target)
			b.labelPending = ""
			return end
		default:
			return b.stmt(s.Stmt, target)
		}

	case *ast.DeferStmt:
		cur.Stmts = append(cur.Stmts, s)
		b.cfg.Defers = append(b.cfg.Defers, s)
		return cur

	case *ast.ExprStmt:
		cur.Stmts = append(cur.Stmts, s)
		if isPanicOrExit(s.X) {
			// The path unwinds; it never reaches the function's exit.
			return nil
		}
		return cur

	default:
		// Assignments, declarations, go statements, sends, inc/dec, empty
		// statements: straight-line.
		cur.Stmts = append(cur.Stmts, s)
		return cur
	}
}

// caseBody translates one case clause body; fallthrough jumps to next.
func (b *cfgBuilder) caseBody(stmts []ast.Stmt, cur *Block, next *Block) *Block {
	for _, s := range stmts {
		if br, ok := s.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
			if next != nil && cur != nil {
				b.edge(cur, next)
			}
			return nil
		}
		if cur == nil {
			cur = b.newBlock()
		}
		cur = b.stmt(s, cur)
	}
	return cur
}

func (b *cfgBuilder) pushLoop(brk, cont *Block) {
	b.breakTo = append(b.breakTo, brk)
	b.continueTo = append(b.continueTo, cont)
	if b.labelPending != "" {
		b.labelBreak[b.labelPending] = brk
		b.labelContinue[b.labelPending] = cont
		b.labelPending = ""
	}
}

func (b *cfgBuilder) popLoop() {
	b.breakTo = b.breakTo[:len(b.breakTo)-1]
	b.continueTo = b.continueTo[:len(b.continueTo)-1]
}

func (b *cfgBuilder) pushBreak(brk *Block) {
	b.breakTo = append(b.breakTo, brk)
	b.continueTo = append(b.continueTo, nil)
	if b.labelPending != "" {
		b.labelBreak[b.labelPending] = brk
		b.labelPending = ""
	}
}

func (b *cfgBuilder) popBreak() { b.popLoop() }

func (b *cfgBuilder) curBreak() *Block {
	for i := len(b.breakTo) - 1; i >= 0; i-- {
		if b.breakTo[i] != nil {
			return b.breakTo[i]
		}
	}
	return nil
}

func (b *cfgBuilder) curContinue() *Block {
	for i := len(b.continueTo) - 1; i >= 0; i-- {
		if b.continueTo[i] != nil {
			return b.continueTo[i]
		}
	}
	return nil
}

// isPanicOrExit reports whether the expression is a call to panic or
// os.Exit — statements after which control does not continue.
func isPanicOrExit(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name == "panic"
	case *ast.SelectorExpr:
		if id, ok := fn.X.(*ast.Ident); ok {
			return (id.Name == "os" && fn.Sel.Name == "Exit") ||
				(id.Name == "log" && (fn.Sel.Name == "Fatal" || fn.Sel.Name == "Fatalf" || fn.Sel.Name == "Fatalln"))
		}
	}
	return false
}

// reachable reports whether to can be reached from from along successor
// edges.
func reachable(from, to *Block) bool {
	seen := map[*Block]bool{}
	var walk func(b *Block) bool
	walk = func(b *Block) bool {
		if b == to {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	return walk(from)
}

// reachableFromAny reports whether any block currently has an edge to
// target.
func reachableFromAny(blocks []*Block, target *Block) bool {
	for _, blk := range blocks {
		for _, s := range blk.Succs {
			if s == target {
				return true
			}
		}
	}
	return false
}
