package lint

import (
	"go/ast"
	"go/types"
)

// ErrDropAnalyzer flags silently discarded errors.
//
// Solver and thermal-model errors carry infeasibility and runaway
// information; dropping one can turn a diverged solve into a plausible
// temperature. Two shapes are reported: assignments of an error result to
// the blank identifier (`_ = f()`, `v, _ := g()`), and error-returning
// calls used as bare statements (including defer/go). Calls whose errors
// are documented never to occur are allowlisted: the fmt print family and
// the Write* methods of strings.Builder and bytes.Buffer. Intentional
// drops — such as the restore-on-defer idiom in internal/controller —
// must be annotated with //lint:ignore errdrop <reason>.
var ErrDropAnalyzer = &Analyzer{
	Name: "errdrop",
	Doc:  "flags discarded error results (blank assignment or bare call statement)",
	Run:  runErrDrop,
}

func runErrDrop(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				checkErrAssign(pass, n)
			case *ast.ExprStmt:
				checkErrCallStmt(pass, n.X)
			case *ast.DeferStmt:
				checkErrCallStmt(pass, n.Call)
			case *ast.GoStmt:
				checkErrCallStmt(pass, n.Call)
			}
			return true
		})
	}
}

var errType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, errType)
}

// checkErrAssign flags blank identifiers bound to error values.
func checkErrAssign(pass *Pass, n *ast.AssignStmt) {
	// Multi-value form: lhs... = f() with a tuple-returning call.
	if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
		call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		tuple, ok := pass.TypeOf(call).(*types.Tuple)
		if !ok || tuple.Len() != len(n.Lhs) {
			return
		}
		for i, lhs := range n.Lhs {
			if isBlank(lhs) && isErrorType(tuple.At(i).Type()) {
				pass.Reportf(lhs.Pos(), "error result of %s discarded with _", callName(pass, call))
			}
		}
		return
	}
	// One-to-one form: _ = expr.
	for i, lhs := range n.Lhs {
		if i >= len(n.Rhs) || !isBlank(lhs) {
			continue
		}
		rhs := n.Rhs[i]
		if isErrorType(pass.TypeOf(rhs)) {
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && allowlisted(pass, call) {
				continue
			}
			pass.Reportf(lhs.Pos(), "error value discarded with _")
		}
	}
}

// checkErrCallStmt flags a statement-position call that returns an error.
func checkErrCallStmt(pass *Pass, e ast.Expr) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return
	}
	var returnsErr bool
	switch t := pass.TypeOf(call).(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				returnsErr = true
			}
		}
	default:
		returnsErr = isErrorType(t)
	}
	if !returnsErr || allowlisted(pass, call) {
		return
	}
	pass.Reportf(call.Pos(), "call to %s discards its error result", callName(pass, call))
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

func callName(pass *Pass, call *ast.CallExpr) string {
	if fn := pass.Callee(call); fn != nil {
		return fn.Name()
	}
	return "function"
}

// allowlisted reports whether the call's error is documented never to
// occur, so a bare statement is fine.
func allowlisted(pass *Pass, call *ast.CallExpr) bool {
	fn := pass.Callee(call)
	if fn == nil {
		return false
	}
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		// strings.Builder and bytes.Buffer writes never fail.
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil {
				full := obj.Pkg().Path() + "." + obj.Name()
				if full == "strings.Builder" || full == "bytes.Buffer" {
					return true
				}
			}
		}
		return false
	}
	// The fmt print family: terminal writes are best-effort everywhere
	// this repo uses them.
	if pkg.Path() == "fmt" {
		switch fn.Name() {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			return true
		}
	}
	return false
}
