package floorplan

// Alpha 21264 (EV6) functional-unit names used throughout the repository.
// The geometry below follows the public HotSpot EV6 floorplan organization:
// the L2 cache occupies the lower portion of the die, the L1 caches and
// memory-pipeline queues sit in a middle band, and the integer/floating
// point clusters occupy the top band. Dimensions are scaled so the die is
// exactly 15.9 mm × 15.9 mm as in Table 1 of the paper.
const (
	UnitL2Left  = "L2_left"
	UnitL2      = "L2"
	UnitL2Right = "L2_right"
	UnitIcache  = "Icache"
	UnitITB     = "ITB"
	UnitDTB     = "DTB"
	UnitLdStQ   = "LdStQ"
	UnitDcache  = "Dcache"
	UnitFPAdd   = "FPAdd"
	UnitFPMul   = "FPMul"
	UnitFPReg   = "FPReg"
	UnitFPMap   = "FPMap"
	UnitFPQ     = "FPQ"
	UnitIntMap  = "IntMap"
	UnitIntQ    = "IntQ"
	UnitIntReg  = "IntReg"
	UnitIntExec = "IntExec"
	UnitBpred   = "Bpred"
)

// EV6DieSize is the die edge length in meters (15.9 mm, Table 1).
const EV6DieSize = 15.9e-3

// CacheUnits lists the units left uncovered by TECs in the paper's
// deployment (the L1 instruction and data caches show no hot spots).
var CacheUnits = []string{UnitIcache, UnitDcache}

// mm converts millimeters to meters for the literal geometry below.
func mm(v float64) float64 { return v * 1e-3 }

// AlphaEV6 returns the Alpha 21264 floorplan used by all experiments.
// The plan tiles the die exactly: Validate(1e-9) passes.
func AlphaEV6() *Floorplan {
	f, err := New(EV6DieSize, EV6DieSize)
	if err != nil {
		panic(err) // unreachable: constants are positive
	}
	add := func(name string, x, y, w, h float64) {
		if err := f.AddUnit(name, Rect{X: mm(x), Y: mm(y), W: mm(w), H: mm(h)}); err != nil {
			panic("floorplan: invalid EV6 geometry: " + err.Error())
		}
	}

	// Bottom band: L2 cache, y ∈ [0, 9.0) mm.
	add(UnitL2Left, 0, 0, 3.0, 9.0)
	add(UnitL2, 3.0, 0, 9.9, 9.0)
	add(UnitL2Right, 12.9, 0, 3.0, 9.0)

	// Middle band: L1 caches, TLBs, load/store queue, y ∈ [9.0, 12.0) mm.
	add(UnitIcache, 0, 9.0, 5.3, 3.0)
	add(UnitITB, 5.3, 9.0, 1.7, 3.0)
	add(UnitDTB, 7.0, 9.0, 1.7, 3.0)
	add(UnitLdStQ, 8.7, 9.0, 1.9, 3.0)
	add(UnitDcache, 10.6, 9.0, 5.3, 3.0)

	// Top band: FP and integer clusters, y ∈ [12.0, 15.9) mm.
	add(UnitFPAdd, 0, 12.0, 2.0, 3.9)
	add(UnitFPMul, 2.0, 12.0, 2.0, 3.9)
	add(UnitFPReg, 4.0, 12.0, 1.6, 3.9)
	add(UnitFPMap, 5.6, 12.0, 1.2, 3.9)
	add(UnitFPQ, 6.8, 12.0, 1.0, 3.9)
	add(UnitIntMap, 7.8, 12.0, 1.2, 3.9)
	add(UnitIntQ, 9.0, 12.0, 1.4, 3.9)
	add(UnitIntReg, 10.4, 12.0, 2.2, 3.9)
	add(UnitIntExec, 12.6, 12.0, 2.1, 3.9)
	add(UnitBpred, 14.7, 12.0, 1.2, 3.9)

	return f
}
