package floorplan

import (
	"encoding/json"
	"fmt"
)

// floorplanJSON is the serialized form of a Floorplan.
type floorplanJSON struct {
	Width  float64 `json:"width"`
	Height float64 `json:"height"`
	Units  []Unit  `json:"units"`
}

// MarshalJSON implements json.Marshaler, preserving unit order.
func (f *Floorplan) MarshalJSON() ([]byte, error) {
	return json.Marshal(floorplanJSON{Width: f.Width, Height: f.Height, Units: f.units})
}

// UnmarshalJSON implements json.Unmarshaler, re-validating unit geometry.
func (f *Floorplan) UnmarshalJSON(data []byte) error {
	var raw floorplanJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("floorplan: %w", err)
	}
	fresh, err := New(raw.Width, raw.Height)
	if err != nil {
		return err
	}
	for _, u := range raw.Units {
		if err := fresh.AddUnit(u.Name, u.Rect); err != nil {
			return err
		}
	}
	*f = *fresh
	return nil
}
