package floorplan

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRectAreaAndContains(t *testing.T) {
	r := Rect{X: 1, Y: 2, W: 3, H: 4}
	if r.Area() != 12 {
		t.Errorf("Area = %g, want 12", r.Area())
	}
	if !r.Contains(1, 2) {
		t.Error("lower-left corner should be inside (half-open)")
	}
	if r.Contains(4, 6) {
		t.Error("upper-right corner should be outside (half-open)")
	}
	if !r.Contains(2.5, 4) {
		t.Error("interior point should be inside")
	}
}

func TestRectOverlap(t *testing.T) {
	a := Rect{X: 0, Y: 0, W: 2, H: 2}
	cases := []struct {
		b    Rect
		want float64
	}{
		{Rect{X: 1, Y: 1, W: 2, H: 2}, 1},
		{Rect{X: 2, Y: 0, W: 1, H: 1}, 0},  // edge-adjacent
		{Rect{X: 5, Y: 5, W: 1, H: 1}, 0},  // disjoint
		{Rect{X: 0, Y: 0, W: 2, H: 2}, 4},  // identical
		{Rect{X: -1, Y: -1, W: 4, H: 4}, 4}, // containing
	}
	for _, tc := range cases {
		if got := a.Overlap(tc.b); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Overlap(%+v) = %g, want %g", tc.b, got, tc.want)
		}
	}
}

func TestOverlapSymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() Rect {
			return Rect{X: rng.Float64() * 10, Y: rng.Float64() * 10, W: rng.Float64()*5 + 0.01, H: rng.Float64()*5 + 0.01}
		}
		a, b := mk(), mk()
		ov1, ov2 := a.Overlap(b), b.Overlap(a)
		if math.Abs(ov1-ov2) > 1e-12 {
			return false
		}
		// Overlap is bounded by both areas.
		return ov1 <= a.Area()+1e-12 && ov1 <= b.Area()+1e-12 && ov1 >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAddUnitValidation(t *testing.T) {
	f, err := New(10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.AddUnit("a", Rect{X: 0, Y: 0, W: 5, H: 5}); err != nil {
		t.Fatalf("AddUnit: %v", err)
	}
	if err := f.AddUnit("a", Rect{X: 5, Y: 5, W: 1, H: 1}); err == nil {
		t.Error("duplicate name accepted")
	}
	if err := f.AddUnit("", Rect{X: 5, Y: 5, W: 1, H: 1}); err == nil {
		t.Error("empty name accepted")
	}
	if err := f.AddUnit("big", Rect{X: 8, Y: 8, W: 5, H: 5}); err == nil {
		t.Error("out-of-die unit accepted")
	}
	if err := f.AddUnit("flat", Rect{X: 1, Y: 1, W: 0, H: 1}); err == nil {
		t.Error("zero-width unit accepted")
	}
	if _, err := New(0, 5); err == nil {
		t.Error("zero-width die accepted")
	}
}

func TestUnitLookup(t *testing.T) {
	f, _ := New(10, 10)
	if err := f.AddUnit("alu", Rect{X: 0, Y: 0, W: 4, H: 10}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddUnit("cache", Rect{X: 4, Y: 0, W: 6, H: 10}); err != nil {
		t.Fatal(err)
	}
	if u, ok := f.Unit("alu"); !ok || u.Name != "alu" {
		t.Errorf("Unit(alu) = %+v, %v", u, ok)
	}
	if _, ok := f.Unit("nonesuch"); ok {
		t.Error("Unit(nonesuch) reported present")
	}
	if idx := f.UnitIndex("cache"); idx != 1 {
		t.Errorf("UnitIndex(cache) = %d, want 1", idx)
	}
	if idx := f.UnitIndex("nope"); idx != -1 {
		t.Errorf("UnitIndex(nope) = %d, want -1", idx)
	}
	if u, ok := f.UnitAt(5, 5); !ok || u.Name != "cache" {
		t.Errorf("UnitAt(5,5) = %+v, %v, want cache", u, ok)
	}
	if _, ok := f.UnitAt(50, 50); ok {
		t.Error("UnitAt outside die reported covered")
	}
	if got := f.CoverageRatio(); math.Abs(got-1) > 1e-12 {
		t.Errorf("CoverageRatio = %g, want 1", got)
	}
	if err := f.Validate(1e-9); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestValidateDetectsOverlapAndGaps(t *testing.T) {
	f, _ := New(10, 10)
	if err := f.AddUnit("a", Rect{X: 0, Y: 0, W: 6, H: 10}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddUnit("b", Rect{X: 5, Y: 0, W: 5, H: 10}); err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(1e-9); err == nil {
		t.Error("overlapping units passed validation")
	}

	g, _ := New(10, 10)
	if err := g.AddUnit("half", Rect{X: 0, Y: 0, W: 5, H: 10}); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(1e-9); err == nil {
		t.Error("incomplete coverage passed validation")
	}
}

func TestAlphaEV6(t *testing.T) {
	f := AlphaEV6()
	if f.Width != EV6DieSize || f.Height != EV6DieSize {
		t.Errorf("die size %g×%g, want %g", f.Width, f.Height, EV6DieSize)
	}
	if n := f.NumUnits(); n != 18 {
		t.Errorf("unit count = %d, want 18", n)
	}
	if err := f.Validate(1e-9); err != nil {
		t.Fatalf("EV6 floorplan invalid: %v", err)
	}
	// All named units referenced elsewhere must exist.
	for _, name := range []string{
		UnitL2Left, UnitL2, UnitL2Right, UnitIcache, UnitITB, UnitDTB,
		UnitLdStQ, UnitDcache, UnitFPAdd, UnitFPMul, UnitFPReg, UnitFPMap,
		UnitFPQ, UnitIntMap, UnitIntQ, UnitIntReg, UnitIntExec, UnitBpred,
	} {
		if _, ok := f.Unit(name); !ok {
			t.Errorf("EV6 floorplan missing unit %q", name)
		}
	}
	for _, name := range CacheUnits {
		if _, ok := f.Unit(name); !ok {
			t.Errorf("cache unit %q not in floorplan", name)
		}
	}
	// The integer execution units (classic EV6 hot spots) must be present
	// in the top band, away from the caches.
	ie, _ := f.Unit(UnitIntExec)
	ic, _ := f.Unit(UnitIcache)
	if ie.Rect.Intersects(ic.Rect) {
		t.Error("IntExec overlaps Icache")
	}
	if names := f.Names(); len(names) != 18 {
		t.Errorf("Names() returned %d entries", len(names))
	}
	if s := f.String(); s == "" {
		t.Error("String() is empty")
	}
}
