package floorplan

import "testing"

func TestQuadCoreGeometry(t *testing.T) {
	f := QuadCore()
	if err := f.Validate(1e-9); err != nil {
		t.Fatalf("quad-core floorplan invalid: %v", err)
	}
	// 3 L3 pieces + 4 cores × 7 units.
	if n := f.NumUnits(); n != 31 {
		t.Errorf("unit count %d, want 31", n)
	}
	for i := 0; i < 4; i++ {
		suffix := string(rune('0' + i))
		for _, base := range []string{"L2", "Icache", "Dcache", "LdStQ", "FP", "IntReg", "IntExec"} {
			if _, ok := f.Unit(base + suffix); !ok {
				t.Errorf("missing unit %s%s", base, suffix)
			}
		}
	}
	// Core tiles must not overlap each other or the L3 cross (Validate
	// covers overlap; also confirm IntExec0 sits in the lower-left tile).
	u, _ := f.Unit("IntExec0")
	if u.Rect.X > f.Width/2 || u.Rect.Y > f.Height/2 {
		t.Errorf("IntExec0 not in the lower-left core: %+v", u.Rect)
	}
}
