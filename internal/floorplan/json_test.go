package floorplan

import (
	"encoding/json"
	"testing"
)

func TestFloorplanJSONRoundTrip(t *testing.T) {
	orig := AlphaEV6()
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var parsed Floorplan
	if err := json.Unmarshal(data, &parsed); err != nil {
		t.Fatal(err)
	}
	if parsed.NumUnits() != orig.NumUnits() {
		t.Fatalf("unit count %d, want %d", parsed.NumUnits(), orig.NumUnits())
	}
	if parsed.Width != orig.Width || parsed.Height != orig.Height {
		t.Errorf("die size drifted")
	}
	for i, u := range orig.Units() {
		if parsed.Units()[i] != u {
			t.Errorf("unit %d drifted: %+v vs %+v", i, parsed.Units()[i], u)
		}
	}
	if err := parsed.Validate(1e-9); err != nil {
		t.Errorf("round-tripped EV6 invalid: %v", err)
	}
	// Name lookups must work on the unmarshaled value (index rebuilt).
	if _, ok := parsed.Unit(UnitIntExec); !ok {
		t.Error("unit index not rebuilt after unmarshal")
	}
}

func TestFloorplanJSONRejectsInvalid(t *testing.T) {
	cases := []string{
		`{"width": -1, "height": 1, "units": []}`,
		`{"width": 1, "height": 1, "units": [{"Name": "", "Rect": {"X":0,"Y":0,"W":1,"H":1}}]}`,
		`{"width": 1, "height": 1, "units": [
			{"Name": "a", "Rect": {"X":0,"Y":0,"W":1,"H":1}},
			{"Name": "a", "Rect": {"X":0,"Y":0,"W":1,"H":1}}]}`,
		`not json`,
	}
	for i, c := range cases {
		var f Floorplan
		if err := json.Unmarshal([]byte(c), &f); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}
