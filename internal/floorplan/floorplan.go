// Package floorplan represents chip floorplans as sets of named, axis-aligned
// rectangular functional units, and ships the Alpha 21264 (EV6) floorplan
// used by the paper's experiments (taken from the public HotSpot
// distribution geometry).
//
// Coordinates are in meters with the origin at the lower-left corner of the
// die. Rectangles are half-open in spirit: two units that share an edge do
// not overlap.
package floorplan

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Rect is an axis-aligned rectangle: [X, X+W) × [Y, Y+H), in meters.
type Rect struct {
	X, Y, W, H float64
}

// Area returns the rectangle area in m².
func (r Rect) Area() float64 { return r.W * r.H }

// Contains reports whether point (x, y) lies inside the rectangle.
func (r Rect) Contains(x, y float64) bool {
	return x >= r.X && x < r.X+r.W && y >= r.Y && y < r.Y+r.H
}

// Overlap returns the area of intersection between r and s in m².
func (r Rect) Overlap(s Rect) float64 {
	w := math.Min(r.X+r.W, s.X+s.W) - math.Max(r.X, s.X)
	h := math.Min(r.Y+r.H, s.Y+s.H) - math.Max(r.Y, s.Y)
	if w <= 0 || h <= 0 {
		return 0
	}
	return w * h
}

// Intersects reports whether r and s overlap with positive area.
func (r Rect) Intersects(s Rect) bool { return r.Overlap(s) > 0 }

// Center returns the rectangle's center point.
func (r Rect) Center() (x, y float64) { return r.X + r.W/2, r.Y + r.H/2 }

// Unit is a named functional unit of a floorplan.
type Unit struct {
	Name string
	Rect Rect
}

// Floorplan is a collection of non-overlapping functional units covering a
// die of size Width × Height meters.
type Floorplan struct {
	Width, Height float64
	units         []Unit
	byName        map[string]int
}

// New creates a floorplan with the given die dimensions.
func New(width, height float64) (*Floorplan, error) {
	if width <= 0 || height <= 0 {
		return nil, fmt.Errorf("floorplan: die dimensions %g×%g must be positive", width, height)
	}
	return &Floorplan{Width: width, Height: height, byName: make(map[string]int)}, nil
}

// AddUnit appends a functional unit. Unit names must be unique and the
// rectangle must lie within the die outline.
func (f *Floorplan) AddUnit(name string, r Rect) error {
	if name == "" {
		return fmt.Errorf("floorplan: unit name must be non-empty")
	}
	if _, dup := f.byName[name]; dup {
		return fmt.Errorf("floorplan: duplicate unit name %q", name)
	}
	if r.W <= 0 || r.H <= 0 {
		return fmt.Errorf("floorplan: unit %q has non-positive size %g×%g", name, r.W, r.H)
	}
	const slack = 1e-9
	if r.X < -slack || r.Y < -slack || r.X+r.W > f.Width+slack || r.Y+r.H > f.Height+slack {
		return fmt.Errorf("floorplan: unit %q (%+v) extends outside the %g×%g die", name, r, f.Width, f.Height)
	}
	f.byName[name] = len(f.units)
	f.units = append(f.units, Unit{Name: name, Rect: r})
	return nil
}

// Units returns the functional units in insertion order. The returned slice
// must not be modified.
func (f *Floorplan) Units() []Unit { return f.units }

// NumUnits returns the number of functional units.
func (f *Floorplan) NumUnits() int { return len(f.units) }

// Unit returns the unit with the given name.
func (f *Floorplan) Unit(name string) (Unit, bool) {
	i, ok := f.byName[name]
	if !ok {
		return Unit{}, false
	}
	return f.units[i], true
}

// UnitIndex returns the insertion index of the named unit, or -1.
func (f *Floorplan) UnitIndex(name string) int {
	i, ok := f.byName[name]
	if !ok {
		return -1
	}
	return i
}

// UnitAt returns the unit containing point (x, y), or false if the point is
// uncovered.
func (f *Floorplan) UnitAt(x, y float64) (Unit, bool) {
	for _, u := range f.units {
		if u.Rect.Contains(x, y) {
			return u, true
		}
	}
	return Unit{}, false
}

// CoverageRatio returns the fraction of the die area covered by units.
func (f *Floorplan) CoverageRatio() float64 {
	var a float64
	for _, u := range f.units {
		a += u.Rect.Area()
	}
	return a / (f.Width * f.Height)
}

// Validate checks that no two units overlap and that coverage is complete to
// within tol (fraction of die area).
func (f *Floorplan) Validate(tol float64) error {
	for i := 0; i < len(f.units); i++ {
		for j := i + 1; j < len(f.units); j++ {
			if ov := f.units[i].Rect.Overlap(f.units[j].Rect); ov > tol*f.Width*f.Height {
				return fmt.Errorf("floorplan: units %q and %q overlap by %g m²", f.units[i].Name, f.units[j].Name, ov)
			}
		}
	}
	if c := f.CoverageRatio(); math.Abs(c-1) > tol {
		return fmt.Errorf("floorplan: coverage ratio %.6f differs from 1 by more than %g", c, tol)
	}
	return nil
}

// Names returns the sorted unit names.
func (f *Floorplan) Names() []string {
	names := make([]string, len(f.units))
	for i, u := range f.units {
		names[i] = u.Name
	}
	sort.Strings(names)
	return names
}

// String renders a short human-readable summary.
func (f *Floorplan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "floorplan %gmm×%gmm, %d units:", f.Width*1e3, f.Height*1e3, len(f.units))
	for _, u := range f.units {
		fmt.Fprintf(&b, " %s", u.Name)
	}
	return b.String()
}
