package floorplan

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestParseFLPBasic(t *testing.T) {
	src := `
# a two-unit plan
left	0.002	0.004	0.000	0.000
right	0.002	0.004	0.002	0.000
`
	f, err := ParseFLP(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if f.NumUnits() != 2 {
		t.Fatalf("got %d units", f.NumUnits())
	}
	if math.Abs(f.Width-0.004) > 1e-15 || math.Abs(f.Height-0.004) > 1e-15 {
		t.Errorf("die %g×%g, want 0.004×0.004", f.Width, f.Height)
	}
	if err := f.Validate(1e-9); err != nil {
		t.Errorf("Validate: %v", err)
	}
	u, ok := f.Unit("right")
	if !ok || u.Rect.X != 0.002 {
		t.Errorf("right unit = %+v, %v", u, ok)
	}
}

func TestParseFLPErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"empty", ""},
		{"comments only", "# nothing\n\n"},
		{"too few fields", "a 1 2 3\n"},
		{"too many fields", "a 1 2 3 4 5\n"},
		{"bad number", "a 1 x 3 4\n"},
		{"negative origin", "a 0.001 0.001 -0.5 0\n"},
		{"zero size", "a 0 0.001 0 0\n"},
		{"duplicate", "a 0.001 0.001 0 0\na 0.001 0.001 0.001 0\n"},
	}
	for _, c := range cases {
		if _, err := ParseFLP(strings.NewReader(c.src)); err == nil {
			t.Errorf("%s: parse accepted", c.name)
		}
	}
}

func TestFLPRoundTripEV6(t *testing.T) {
	orig := AlphaEV6()
	var buf bytes.Buffer
	if err := WriteFLP(&buf, orig); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseFLP(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.NumUnits() != orig.NumUnits() {
		t.Fatalf("unit count %d, want %d", parsed.NumUnits(), orig.NumUnits())
	}
	if math.Abs(parsed.Width-orig.Width) > 1e-9 {
		t.Errorf("die width %g, want %g", parsed.Width, orig.Width)
	}
	for _, u := range orig.Units() {
		p, ok := parsed.Unit(u.Name)
		if !ok {
			t.Fatalf("unit %s lost in round trip", u.Name)
		}
		for _, d := range []float64{
			p.Rect.X - u.Rect.X, p.Rect.Y - u.Rect.Y,
			p.Rect.W - u.Rect.W, p.Rect.H - u.Rect.H,
		} {
			if math.Abs(d) > 1e-9 {
				t.Fatalf("unit %s geometry drifted by %g", u.Name, d)
			}
		}
	}
	if err := parsed.Validate(1e-6); err != nil {
		t.Errorf("round-tripped EV6 invalid: %v", err)
	}
}

func TestParseFLPAllowsGaps(t *testing.T) {
	// Parsing must not force complete coverage (HotSpot floorplans may
	// model only part of a die); Validate is the opt-in check.
	src := "island\t0.001\t0.001\t0.004\t0.004\n"
	f, err := ParseFLP(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(1e-9); err == nil {
		t.Error("gappy floorplan should fail Validate")
	}
}
