package floorplan

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file implements reading and writing the HotSpot .flp floorplan
// format, so floorplans can be exchanged with the HotSpot tool chain the
// paper's thermal methodology derives from. Each non-comment line is
//
//	<unit-name> <width> <height> <left-x> <bottom-y>
//
// in meters, whitespace separated; lines starting with '#' and blank
// lines are ignored.

// ParseFLP reads a HotSpot-format floorplan. The die outline is the
// bounding box of the units; Validate is NOT called automatically so
// floorplans with deliberate gaps can still be loaded (call Validate to
// enforce exact tiling).
func ParseFLP(r io.Reader) (*Floorplan, error) {
	scanner := bufio.NewScanner(r)
	type row struct {
		name       string
		w, h, x, y float64
		line       int
	}
	var rows []row
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 5 {
			return nil, fmt.Errorf("floorplan: line %d: want 5 fields (name w h x y), got %d", lineNo, len(fields))
		}
		vals := make([]float64, 4)
		for i, f := range fields[1:] {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("floorplan: line %d: field %q: %v", lineNo, f, err)
			}
			vals[i] = v
		}
		rows = append(rows, row{name: fields[0], w: vals[0], h: vals[1], x: vals[2], y: vals[3], line: lineNo})
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("floorplan: reading .flp: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("floorplan: .flp contains no units")
	}

	var maxX, maxY float64
	for _, r := range rows {
		if r.x < -1e-12 || r.y < -1e-12 {
			return nil, fmt.Errorf("floorplan: line %d: unit %q has negative origin (%g, %g)", r.line, r.name, r.x, r.y)
		}
		if r.x+r.w > maxX {
			maxX = r.x + r.w
		}
		if r.y+r.h > maxY {
			maxY = r.y + r.h
		}
	}
	f, err := New(maxX, maxY)
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		if err := f.AddUnit(r.name, Rect{X: r.x, Y: r.y, W: r.w, H: r.h}); err != nil {
			return nil, fmt.Errorf("floorplan: line %d: %w", r.line, err)
		}
	}
	return f, nil
}

// WriteFLP writes the floorplan in HotSpot .flp format, preserving unit
// insertion order.
func WriteFLP(w io.Writer, f *Floorplan) error {
	if _, err := fmt.Fprintf(w, "# Floorplan %gmm x %gmm, %d units\n# <unit-name>\t<width>\t<height>\t<left-x>\t<bottom-y>\n",
		f.Width*1e3, f.Height*1e3, f.NumUnits()); err != nil {
		return err
	}
	for _, u := range f.Units() {
		if _, err := fmt.Fprintf(w, "%s\t%.6e\t%.6e\t%.6e\t%.6e\n",
			u.Name, u.Rect.W, u.Rect.H, u.Rect.X, u.Rect.Y); err != nil {
			return err
		}
	}
	return nil
}
