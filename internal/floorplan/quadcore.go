package floorplan

// QuadCore returns a synthetic four-core floorplan, demonstrating the
// paper's Figure 5 claim that the OFTEC flow "is not limited to the
// aforementioned selections of the processor and performance/power
// simulators". Four EV6-like cores sit in the corners of a 22 mm die
// around a shared L3 cross; unit names are suffixed with the core index
// (e.g. "IntExec0".."IntExec3").
//
// The plan tiles the die exactly (Validate(1e-9) passes), so it can be
// dropped into thermal.Config in place of AlphaEV6.
func QuadCore() *Floorplan {
	const die = 22.0 // mm
	f, err := New(mm(die), mm(die))
	if err != nil {
		panic(err) // unreachable: constants are positive
	}
	add := func(name string, x, y, w, h float64) {
		if err := f.AddUnit(name, Rect{X: mm(x), Y: mm(y), W: mm(w), H: mm(h)}); err != nil {
			panic("floorplan: invalid quad-core geometry: " + err.Error())
		}
	}

	// Shared L3: a cross through the die center (2 mm arms).
	const core = 10.0 // each core tile is 10×10 mm
	add("L3_v", core, 0, die-2*core, die)           // vertical bar, 2 mm wide
	add("L3_h_left", 0, core, core, die-2*core)     // left horizontal arm
	add("L3_h_right", die-core, core, core, die-2*core) // right horizontal arm

	// Four core tiles in the corners; each is a compact EV6-like layout.
	corners := [][2]float64{{0, 0}, {die - core, 0}, {0, die - core}, {die - core, die - core}}
	for idx, c := range corners {
		ox, oy := c[0], c[1]
		suffix := string(rune('0' + idx))
		// Bottom band: L2 slice.
		add("L2"+suffix, ox, oy, core, 4.0)
		// Middle band: caches and memory pipeline.
		add("Icache"+suffix, ox, oy+4.0, 3.5, 2.5)
		add("Dcache"+suffix, ox+3.5, oy+4.0, 3.5, 2.5)
		add("LdStQ"+suffix, ox+7.0, oy+4.0, 3.0, 2.5)
		// Top band: execution clusters.
		add("FP"+suffix, ox, oy+6.5, 4.0, 3.5)
		add("IntReg"+suffix, ox+4.0, oy+6.5, 3.0, 3.5)
		add("IntExec"+suffix, ox+7.0, oy+6.5, 3.0, 3.5)
	}
	return f
}
