package leakage_test

import (
	"fmt"

	"oftec/internal/leakage"
)

// Example walks the paper's leakage pipeline: sample an exponential
// (McPAT-shaped) law at ten temperatures between 300 K and 390 K, regress
// the Taylor coefficients of Equation (4), and compare the line against
// the exponential at the expansion point.
func Example() {
	exp := leakage.Exponential{P0: 6.1, Beta: 0.03, T0: 318.15}
	samples, err := exp.SampleRange(300, 390, 10)
	if err != nil {
		fmt.Println(err)
		return
	}
	taylor, err := leakage.Regress(samples, 348.15)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("a = %.4f W/K, b = %.2f W\n", taylor.A, taylor.B)
	fmt.Printf("exact  at 75 °C: %.2f W\n", exp.At(348.15))
	fmt.Printf("linear at 75 °C: %.2f W\n", taylor.At(348.15))
	// The global line overestimates mid-range leakage because of the
	// exponential's curvature over the 90 K window — which is why the
	// paper suggests centering Tref on the operating region.
	// Output:
	// a = 0.5068 W/K, b = 20.90 W
	// exact  at 75 °C: 15.00 W
	// linear at 75 °C: 20.90 W
}
