// Package leakage models temperature-dependent leakage power: the
// physically-shaped exponential law used as ground truth (standing in for
// McPAT, which the paper sampled), the first-order Taylor linearization of
// Equation (4) used inside the linear thermal solve, and the
// sampling-plus-linear-regression procedure of Section 6.1 that turns the
// exponential model into Taylor coefficients (a, b).
package leakage

import (
	"fmt"
	"math"
)

// Exponential is the ground-truth leakage law P(T) = P0·exp(β·(T − T0)),
// with T in kelvin. Subthreshold leakage grows roughly exponentially in
// temperature; β around 0.01-0.04 1/K covers published 22 nm figures.
type Exponential struct {
	// P0 is the leakage power in watts at the reference temperature T0.
	P0 float64
	// Beta is the exponential slope in 1/K.
	Beta float64
	// T0 is the reference temperature in kelvin.
	T0 float64
}

// Validate reports whether the model is physical.
func (e Exponential) Validate() error {
	switch {
	case e.P0 < 0:
		return fmt.Errorf("leakage: P0=%g must be non-negative", e.P0)
	case e.Beta < 0:
		return fmt.Errorf("leakage: beta=%g must be non-negative", e.Beta)
	case e.T0 <= 0:
		return fmt.Errorf("leakage: T0=%g must be a positive absolute temperature", e.T0)
	}
	return nil
}

// At returns the leakage power at temperature t (kelvin).
func (e Exponential) At(t float64) float64 {
	return e.P0 * math.Exp(e.Beta*(t-e.T0))
}

// Slope returns dP/dT at temperature t.
func (e Exponential) Slope(t float64) float64 {
	return e.Beta * e.At(t)
}

// Linearize returns the first-order Taylor expansion around tref:
// p(T) ≈ a·(T − tref) + b with a = P'(tref), b = P(tref) (Equation (4)).
func (e Exponential) Linearize(tref float64) Taylor {
	return Taylor{A: e.Slope(tref), B: e.At(tref), Tref: tref}
}

// Taylor is the linear leakage estimate of Equation (4):
// p_leakage(T) = A·(T − Tref) + B.
type Taylor struct {
	// A is the slope coefficient a in W/K.
	A float64
	// B is the value coefficient b in W.
	B float64
	// Tref is the expansion temperature in kelvin.
	Tref float64
}

// At returns the linearized leakage power at temperature t.
func (ta Taylor) At(t float64) float64 {
	return ta.A*(t-ta.Tref) + ta.B
}

// Scale returns the Taylor model scaled by factor s; used to distribute a
// unit-level model over grid cells proportionally to overlap area.
func (ta Taylor) Scale(s float64) Taylor {
	return Taylor{A: ta.A * s, B: ta.B * s, Tref: ta.Tref}
}

// Validate reports whether the coefficients are usable: a negative slope
// would model leakage decreasing with temperature, which the solver treats
// as a configuration error.
func (ta Taylor) Validate() error {
	if ta.A < 0 {
		return fmt.Errorf("leakage: Taylor slope a=%g must be non-negative", ta.A)
	}
	if ta.B < 0 {
		return fmt.Errorf("leakage: Taylor value b=%g must be non-negative", ta.B)
	}
	if ta.Tref <= 0 {
		return fmt.Errorf("leakage: Tref=%g must be a positive absolute temperature", ta.Tref)
	}
	return nil
}

// Sample is one (temperature, leakage power) observation.
type Sample struct {
	T float64 // kelvin
	P float64 // watts
}

// SampleRange evaluates the model at n evenly spaced temperatures in
// [tLo, tHi], reproducing the paper's procedure of running McPAT at ten
// temperatures between 300 K and 390 K.
func (e Exponential) SampleRange(tLo, tHi float64, n int) ([]Sample, error) {
	if n < 2 {
		return nil, fmt.Errorf("leakage: need n >= 2 samples, got %d", n)
	}
	if tHi <= tLo {
		return nil, fmt.Errorf("leakage: invalid temperature range [%g, %g]", tLo, tHi)
	}
	out := make([]Sample, n)
	for i := 0; i < n; i++ {
		t := tLo + (tHi-tLo)*float64(i)/float64(n-1)
		out[i] = Sample{T: t, P: e.At(t)}
	}
	return out, nil
}

// Regress fits p = a·(T − tref) + b to the samples by ordinary least
// squares, the paper's method for obtaining the Taylor coefficients from
// McPAT output. tref is the expansion point (the paper uses the average
// chip or unit temperature).
func Regress(samples []Sample, tref float64) (Taylor, error) {
	if len(samples) < 2 {
		return Taylor{}, fmt.Errorf("leakage: need at least 2 samples to regress, got %d", len(samples))
	}
	var sx, sy, sxx, sxy float64
	for _, s := range samples {
		x := s.T - tref
		sx += x
		sy += s.P
		sxx += x * x
		sxy += x * s.P
	}
	n := float64(len(samples))
	den := n*sxx - sx*sx
	if den == 0 {
		return Taylor{}, fmt.Errorf("leakage: samples have identical temperatures; slope is undetermined")
	}
	a := (n*sxy - sx*sy) / den
	b := (sy - a*sx) / n
	return Taylor{A: a, B: b, Tref: tref}, nil
}

// RunawayLoopGain returns the small-signal loop gain a·Rth of the
// electrothermal feedback loop formed by leakage slope a (W/K) and thermal
// resistance to ambient Rth (K/W). A loop gain of one or more means the
// fixed-point iteration for the exact exponential model diverges — thermal
// runaway.
func RunawayLoopGain(a, rth float64) float64 { return a * rth }
