package leakage

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func model() Exponential {
	return Exponential{P0: 6, Beta: 0.03, T0: 318.15}
}

func TestExponentialAt(t *testing.T) {
	e := model()
	if got := e.At(e.T0); math.Abs(got-6) > 1e-12 {
		t.Errorf("At(T0) = %g, want P0", got)
	}
	// Doubling temperature rise multiplies leakage exponentially.
	r1 := e.At(e.T0+10) / e.At(e.T0)
	want := math.Exp(0.3)
	if math.Abs(r1-want) > 1e-9 {
		t.Errorf("10 K ratio = %g, want %g", r1, want)
	}
}

func TestValidate(t *testing.T) {
	if err := model().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Exponential{
		{P0: -1, Beta: 0.01, T0: 300},
		{P0: 1, Beta: -0.01, T0: 300},
		{P0: 1, Beta: 0.01, T0: 0},
	}
	for i, e := range bad {
		if err := e.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestLinearizeMatchesDerivative(t *testing.T) {
	e := model()
	tref := 348.15
	ta := e.Linearize(tref)
	if math.Abs(ta.B-e.At(tref)) > 1e-12 {
		t.Errorf("b = %g, want P(tref) = %g", ta.B, e.At(tref))
	}
	numSlope := (e.At(tref+1e-5) - e.At(tref-1e-5)) / 2e-5
	if math.Abs(ta.A-numSlope) > 1e-6 {
		t.Errorf("a = %g, numeric slope %g", ta.A, numSlope)
	}
	// The Taylor line is tangent: first-order accurate near tref.
	for _, dt := range []float64{-5, -1, 1, 5} {
		exact := e.At(tref + dt)
		approx := ta.At(tref + dt)
		if math.Abs(exact-approx) > 0.02*exact {
			t.Errorf("Taylor error at ΔT=%g: %g vs %g", dt, approx, exact)
		}
	}
}

func TestTaylorScaleAndValidate(t *testing.T) {
	ta := Taylor{A: 0.2, B: 10, Tref: 350}
	s := ta.Scale(0.5)
	if s.A != 0.1 || s.B != 5 || s.Tref != 350 {
		t.Errorf("Scale = %+v", s)
	}
	if err := ta.Validate(); err != nil {
		t.Errorf("valid Taylor rejected: %v", err)
	}
	for i, bad := range []Taylor{{A: -1, B: 1, Tref: 300}, {A: 1, B: -1, Tref: 300}, {A: 1, B: 1, Tref: 0}} {
		if err := bad.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestSampleRange(t *testing.T) {
	e := model()
	samples, err := e.SampleRange(300, 390, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 10 {
		t.Fatalf("got %d samples, want 10", len(samples))
	}
	if samples[0].T != 300 || samples[9].T != 390 {
		t.Errorf("sample endpoints %g..%g, want 300..390", samples[0].T, samples[9].T)
	}
	// Evenly spaced (the paper: "distributed evenly").
	for i := 1; i < len(samples); i++ {
		if d := samples[i].T - samples[i-1].T; math.Abs(d-10) > 1e-9 {
			t.Errorf("spacing %g at %d, want 10", d, i)
		}
	}
	if _, err := e.SampleRange(300, 390, 1); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := e.SampleRange(400, 300, 5); err == nil {
		t.Error("inverted range accepted")
	}
}

func TestRegressRecoversLinearData(t *testing.T) {
	// Exact linear data must be recovered exactly.
	tref := 345.0
	truth := Taylor{A: 0.25, B: 12, Tref: tref}
	var samples []Sample
	for _, temp := range []float64{300, 320, 340, 360, 380} {
		samples = append(samples, Sample{T: temp, P: truth.At(temp)})
	}
	got, err := Regress(samples, tref)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.A-truth.A) > 1e-9 || math.Abs(got.B-truth.B) > 1e-9 {
		t.Errorf("Regress = %+v, want %+v", got, truth)
	}
}

func TestRegressOnExponentialIsReasonable(t *testing.T) {
	// The paper's procedure: sample the (McPAT) leakage at 10 points in
	// [300, 390] and regress. The line must approximate the exponential
	// to within ~35% across the range (the curvature bound).
	e := model()
	samples, _ := e.SampleRange(300, 390, 10)
	ta, err := Regress(samples, 345)
	if err != nil {
		t.Fatal(err)
	}
	if ta.A <= 0 {
		t.Fatalf("regressed slope %g must be positive", ta.A)
	}
	// The exponential spans ~15× over the range, so the line's pointwise
	// relative error can be large at the low end; bound the error against
	// the range maximum instead.
	pMax := samples[len(samples)-1].P
	for _, s := range samples {
		if rel := math.Abs(ta.At(s.T)-s.P) / pMax; rel > 0.25 {
			t.Errorf("regression error %.0f%% of range max at T=%g", rel*100, s.T)
		}
	}
}

func TestRegressErrors(t *testing.T) {
	if _, err := Regress(nil, 300); err == nil {
		t.Error("empty samples accepted")
	}
	if _, err := Regress([]Sample{{300, 1}}, 300); err == nil {
		t.Error("single sample accepted")
	}
	if _, err := Regress([]Sample{{300, 1}, {300, 2}}, 300); err == nil {
		t.Error("identical temperatures accepted")
	}
}

// Property: regression of noise-free linear data recovers it regardless of
// the expansion point.
func TestRegressInvarianceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		truth := Taylor{A: rng.Float64(), B: 5 + rng.Float64()*20, Tref: 300 + rng.Float64()*90}
		var samples []Sample
		for k := 0; k < 6; k++ {
			temp := 300 + float64(k)*18
			samples = append(samples, Sample{T: temp, P: truth.At(temp)})
		}
		tref2 := 300 + rng.Float64()*90
		got, err := Regress(samples, tref2)
		if err != nil {
			return false
		}
		// Same line, different parameterization: compare predictions.
		for _, s := range samples {
			if math.Abs(got.At(s.T)-s.P) > 1e-6*(1+math.Abs(s.P)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRunawayLoopGain(t *testing.T) {
	if g := RunawayLoopGain(0.5, 2.5); math.Abs(g-1.25) > 1e-12 {
		t.Errorf("loop gain = %g, want 1.25", g)
	}
	// Gain < 1: stable; the fixed point T = T0 + Rth·(P0 + a(T−T0))
	// converges. Gain ≥ 1: diverges. Verify by explicit iteration.
	iterate := func(a, rth float64) bool {
		const tAmb, p0 = 318.0, 10.0
		temp := tAmb
		for k := 0; k < 10000; k++ {
			next := tAmb + rth*(p0+a*(temp-tAmb))
			if next > 1e6 {
				return false // diverged
			}
			if math.Abs(next-temp) < 1e-9 {
				return true
			}
			temp = next
		}
		return true
	}
	if !iterate(0.3, 2.0) { // gain 0.6
		t.Error("loop gain 0.6 diverged")
	}
	if iterate(0.6, 2.0) { // gain 1.2
		t.Error("loop gain 1.2 converged")
	}
}
