package solver

import (
	"math"
	"testing"
)

// This file covers the analytic-gradient path (Options.Grad/ConsGrad) and
// the two finite-difference defects it replaced: the sliver-slope poison
// on pinned variables and the cache-quantization aliasing on tiny spans.

// gradMethods are the solvers that consume gradients at all; the
// derivative-free methods ignore Options.Grad by design.
func gradMethods() []method {
	return []method{
		{"sqp", ActiveSetSQP},
		{"interior", InteriorPoint},
		{"trust", TrustRegion},
	}
}

// TestGradientAnalyticSolversMatchFD: with exact gradients installed, each
// gradient-based solver reaches the same constrained minimum as its
// finite-difference twin, records the analytic evaluations, and spends
// strictly fewer function evaluations.
func TestGradientAnalyticSolversMatchFD(t *testing.T) {
	x0 := []float64{3, 0}
	withGrad := Options{
		Grad: func(x []float64) []float64 { return []float64{2 * x[0], 2 * x[1]} },
		ConsGrad: []GradFunc{
			func(x []float64) []float64 { return []float64{-1, -1} },
		},
	}
	for _, m := range gradMethods() {
		m := m
		t.Run(m.name, func(t *testing.T) {
			fdRep, err := m.run(conformanceProblem(), x0, Options{})
			if err != nil {
				t.Fatal(err)
			}
			rep, err := m.run(conformanceProblem(), x0, withGrad)
			if err != nil {
				t.Fatal(err)
			}
			if rep.GradEvals == 0 {
				t.Error("analytic run recorded no gradient evaluations")
			}
			if fdRep.GradEvals != 0 {
				t.Errorf("finite-difference run recorded %d gradient evaluations", fdRep.GradEvals)
			}
			// The minimizer of x²+y² s.t. 2-x-y ≤ 0 is (1,1).
			for i, want := range []float64{1, 1} {
				if math.Abs(rep.X[i]-want) > 5e-3 {
					t.Errorf("X[%d] = %g, want %g", i, rep.X[i], want)
				}
			}
			// Exact gradients may only improve the answer (the trust
			// region's FD run is noticeably less accurate here).
			if rep.F > fdRep.F+1e-6 {
				t.Errorf("analytic F = %g worse than finite-difference F = %g", rep.F, fdRep.F)
			}
			if rep.FuncEvals >= fdRep.FuncEvals {
				t.Errorf("analytic path spent %d function evaluations, finite differences %d — the 2n probes did not collapse",
					rep.FuncEvals, fdRep.FuncEvals)
			}
		})
	}
}

// TestGradientAnalyticDeclineFallsBackToFD: a GradFunc that declines every
// point (nil return — the adjoint contract for runaway operating points)
// must leave the solve bit-identical to the plain finite-difference run.
func TestGradientAnalyticDeclineFallsBackToFD(t *testing.T) {
	x0 := []float64{3, 0}
	declining := Options{
		Grad:     func(x []float64) []float64 { return nil },
		ConsGrad: []GradFunc{func(x []float64) []float64 { return nil }},
	}
	for _, m := range gradMethods() {
		m := m
		t.Run(m.name, func(t *testing.T) {
			fdRep, err := m.run(conformanceProblem(), x0, Options{})
			if err != nil {
				t.Fatal(err)
			}
			rep, err := m.run(conformanceProblem(), x0, declining)
			if err != nil {
				t.Fatal(err)
			}
			if rep.GradEvals != 0 {
				t.Errorf("declined gradients still counted: GradEvals = %d", rep.GradEvals)
			}
			if rep.F != fdRep.F || rep.FuncEvals != fdRep.FuncEvals || rep.Iterations != fdRep.Iterations {
				t.Errorf("declining run diverged from FD run: F %g vs %g, evals %d vs %d, iters %d vs %d",
					rep.F, fdRep.F, rep.FuncEvals, fdRep.FuncEvals, rep.Iterations, fdRep.Iterations)
			}
			for i := range rep.X {
				if rep.X[i] != fdRep.X[i] {
					t.Errorf("X[%d] = %g, FD run %g", i, rep.X[i], fdRep.X[i])
				}
			}
		})
	}
}

// pinnedAndReduced builds the same constrained bowl twice: once with a
// third variable pinned by degenerate bounds at 5, once as the genuine
// two-variable problem. Minimum (3, -1), constraint 1-x0-x1 ≤ 0 violated
// at the origin start.
func pinnedAndReduced() (pinned, reduced *Problem) {
	f2 := func(x []float64) float64 {
		return (x[0]-3)*(x[0]-3) + (x[1]+1)*(x[1]+1)
	}
	pinned = &Problem{
		F:     func(x []float64) float64 { return f2(x) + (x[2]-5)*(x[2]-5) },
		Cons:  []Func{func(x []float64) float64 { return 1 - x[0] - x[1] }},
		Lower: []float64{-5, -5, 5},
		Upper: []float64{5, 5, 5},
	}
	reduced = &Problem{
		F:     f2,
		Cons:  []Func{func(x []float64) float64 { return 1 - x[0] - x[1] }},
		Lower: []float64{-5, -5},
		Upper: []float64{5, 5},
	}
	return pinned, reduced
}

// TestGradientPinnedVariableMatchesReducedProblem: the bug-fix contract
// for degenerate bounds. An SQP run with a pinned third variable must be
// the two-variable run in disguise — same minimizer, same objective, and
// the same function-evaluation count, because a frozen axis may not spend
// probes (the old code burned evaluations on it and, from infeasible
// iterates, fabricated a ±1e6 sliver slope that poisoned the BFGS model).
func TestGradientPinnedVariableMatchesReducedProblem(t *testing.T) {
	pinned, reduced := pinnedAndReduced()
	rp, err := ActiveSetSQP(pinned, []float64{0, 0, 5}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rr, err := ActiveSetSQP(reduced, []float64{0, 0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rp.X[2] != 5 {
		t.Errorf("pinned variable moved: X[2] = %g, want exactly 5", rp.X[2])
	}
	for i := 0; i < 2; i++ {
		if math.Abs(rp.X[i]-rr.X[i]) > 1e-9 {
			t.Errorf("X[%d] = %g, reduced problem found %g", i, rp.X[i], rr.X[i])
		}
	}
	if math.Abs(rp.F-rr.F) > 1e-9 {
		t.Errorf("F = %g, reduced problem %g", rp.F, rr.F)
	}
	if rp.FuncEvals != rr.FuncEvals {
		t.Errorf("pinned run spent %d evaluations, reduced problem %d — the frozen axis is burning probes",
			rp.FuncEvals, rr.FuncEvals)
	}
	if rp.Stopped != rr.Stopped {
		t.Errorf("pinned run stopped with %v, reduced problem with %v", rp.Stopped, rr.Stopped)
	}

	// The other gradient-based methods only promise the same answer, not
	// the same trajectory.
	for _, m := range []method{{"interior", InteriorPoint}, {"trust", TrustRegion}} {
		rep, err := m.run(pinned, []float64{0, 0, 5}, Options{})
		if err != nil {
			t.Fatalf("%s: %v", m.name, err)
		}
		if rep.X[2] != 5 {
			t.Errorf("%s: pinned variable moved to %g", m.name, rep.X[2])
		}
		if math.Abs(rep.X[0]-3) > 1e-2 || math.Abs(rep.X[1]+1) > 1e-2 {
			t.Errorf("%s: X = %v, want (3, -1, 5)", m.name, rep.X)
		}
	}
}

// TestGradientPinnedInfeasiblePlateauEquivalence: the sliver-slope branch
// fires when every probe lands on the Infeasible sentinel. With a pinned
// variable the old code fired it on the frozen axis too, steering the
// descent direction along a coordinate that cannot move; the run must
// instead match the reduced problem escaping the same plateau.
func TestGradientPinnedInfeasiblePlateauEquivalence(t *testing.T) {
	plateau := func(x []float64) float64 {
		if x[0] < 1 {
			return Infeasible // stand-in for a thermal-runaway region
		}
		return (x[0]-3)*(x[0]-3) + (x[1]+1)*(x[1]+1)
	}
	pinned := &Problem{
		F:     func(x []float64) float64 { return plateau(x) },
		Lower: []float64{-5, -5, 5},
		Upper: []float64{5, 5, 5},
	}
	reduced := &Problem{
		F:     plateau,
		Lower: []float64{-5, -5},
		Upper: []float64{5, 5},
	}
	rp, err := ActiveSetSQP(pinned, []float64{0, 0, 5}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rr, err := ActiveSetSQP(reduced, []float64{0, 0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rp.F >= Infeasible {
		t.Fatalf("pinned run never escaped the plateau: F = %g at %v", rp.F, rp.X)
	}
	if rp.X[2] != 5 {
		t.Errorf("pinned variable moved: X[2] = %g", rp.X[2])
	}
	if rp.F != rr.F || rp.FuncEvals != rr.FuncEvals {
		t.Errorf("plateau escape diverged from reduced problem: F %g vs %g, evals %d vs %d",
			rp.F, rr.F, rp.FuncEvals, rr.FuncEvals)
	}
	for i := 0; i < 2; i++ {
		if rp.X[i] != rr.X[i] {
			t.Errorf("X[%d] = %g, reduced problem %g", i, rp.X[i], rr.X[i])
		}
	}
}

// TestGradientQuantizedEvalTinySpanFloor: an evaluation memo that rounds
// coordinates to a 1e-9 grid aliases finite-difference probes closer than
// the grid spacing; on a problem whose whole span is 1e-6 the scaled
// default step lands at 1e-11 and every difference quotient collapses to
// an exact zero, so the solvers declared convergence at their starting
// point. The GradMinStep floor keeps probes on distinct grid points.
func TestGradientQuantizedEvalTinySpanFloor(t *testing.T) {
	const target = 7e-7
	quantized := func(x []float64) float64 {
		q := math.Round(x[0]*1e9) / 1e9 // core's evaluation-cache grid
		d := (q - target) * 1e6
		return d * d
	}
	mk := func() *Problem {
		return &Problem{F: quantized, Lower: []float64{0}, Upper: []float64{1e-6}}
	}
	for _, m := range gradMethods() {
		m := m
		t.Run(m.name, func(t *testing.T) {
			rep, err := m.run(mk(), []float64{1e-7}, Options{})
			if err != nil {
				t.Fatal(err)
			}
			// The un-floored run converged at the start (X = 1e-7, F = 0.36).
			if math.Abs(rep.X[0]-target) > 1e-7 {
				t.Errorf("X = %g, want %g ± 1e-7 (stuck at start => probes aliased)", rep.X[0], target)
			}
			if rep.F > 0.05 {
				t.Errorf("F = %g, want ≈ 0", rep.F)
			}
		})
	}
}
