package solver

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// quadratic bowl centered at (cx, cy).
func bowl(cx, cy float64) Func {
	return func(x []float64) float64 {
		dx, dy := x[0]-cx, x[1]-cy
		return dx*dx + 3*dy*dy
	}
}

type method struct {
	name string
	run  func(p *Problem, x0 []float64, opts Options) (Report, error)
}

func methods() []method {
	return []method{
		{"sqp", ActiveSetSQP},
		{"interior", InteriorPoint},
		{"trust", TrustRegion},
		{"neldermead", NelderMead},
		{"hookejeeves", HookeJeeves},
	}
}

func TestUnconstrainedBowl(t *testing.T) {
	p := &Problem{
		F:     bowl(1.5, -0.5),
		Lower: []float64{-5, -5},
		Upper: []float64{5, 5},
	}
	for _, m := range methods() {
		rep, err := m.run(p, []float64{4, 4}, Options{})
		if err != nil {
			t.Fatalf("%s: %v", m.name, err)
		}
		if math.Abs(rep.X[0]-1.5) > 1e-3 || math.Abs(rep.X[1]+0.5) > 1e-3 {
			t.Errorf("%s: X = %v, want (1.5, -0.5)", m.name, rep.X)
		}
		if rep.FuncEvals == 0 {
			t.Errorf("%s: zero function evaluations reported", m.name)
		}
	}
}

func TestBoundConstrainedOptimumAtEdge(t *testing.T) {
	// Minimum of the bowl is outside the box; solution must sit on the
	// boundary (0.5, 0.25).
	p := &Problem{
		F:     bowl(2, 1),
		Lower: []float64{-0.5, -0.25},
		Upper: []float64{0.5, 0.25},
	}
	for _, m := range methods() {
		rep, err := m.run(p, []float64{0, 0}, Options{})
		if err != nil {
			t.Fatalf("%s: %v", m.name, err)
		}
		if math.Abs(rep.X[0]-0.5) > 1e-3 || math.Abs(rep.X[1]-0.25) > 1e-3 {
			t.Errorf("%s: X = %v, want (0.5, 0.25)", m.name, rep.X)
		}
	}
}

func TestInequalityConstrainedQuadratic(t *testing.T) {
	// min x² + y² s.t. x + y ≥ 2 → optimum (1, 1), f = 2.
	p := &Problem{
		F: func(x []float64) float64 { return x[0]*x[0] + x[1]*x[1] },
		Cons: []Func{
			func(x []float64) float64 { return 2 - x[0] - x[1] },
		},
		Lower: []float64{-5, -5},
		Upper: []float64{5, 5},
	}
	for _, m := range methods() {
		rep, err := m.run(p, []float64{3, 0}, Options{MaxIter: 400})
		if err != nil {
			t.Fatalf("%s: %v", m.name, err)
		}
		if !rep.Feasible(1e-3) {
			t.Errorf("%s: final violation %g", m.name, rep.MaxViolation)
		}
		// The trust-region comparator is a penalty method; it reaches the
		// constraint surface but may stop slightly off the exact optimum
		// (the paper likewise found it inferior to the active-set SQP).
		// Axis-aligned pattern search (Hooke-Jeeves) can wedge anywhere on
		// a diagonal active constraint — the textbook limitation — so for
		// it only feasibility and bounded badness are asserted.
		posTol, objTol := 5e-3, 2.001
		switch m.name {
		case "trust":
			posTol, objTol = 0.2, 2.1
		case "hookejeeves":
			posTol, objTol = math.Inf(1), 4.5
		}
		if math.Abs(rep.X[0]-1) > posTol || math.Abs(rep.X[1]-1) > posTol {
			t.Errorf("%s: X = %v, want (1, 1)±%g", m.name, rep.X, posTol)
		}
		if f := rep.X[0]*rep.X[0] + rep.X[1]*rep.X[1]; f > objTol {
			t.Errorf("%s: objective %g exceeds %g", m.name, f, objTol)
		}
	}
}

func TestInfeasibleStartRecovered(t *testing.T) {
	// Start violates the constraint badly; solvers must walk into the
	// feasible region.
	p := &Problem{
		F: func(x []float64) float64 { return (x[0] - 4) * (x[0] - 4) },
		Cons: []Func{
			func(x []float64) float64 { return x[0] - 1 }, // x ≤ 1
		},
		Lower: []float64{-10, -10},
		Upper: []float64{10, 10},
	}
	for _, m := range methods() {
		rep, err := m.run(p, []float64{8, 0}, Options{MaxIter: 400})
		if err != nil {
			t.Fatalf("%s: %v", m.name, err)
		}
		if !rep.Feasible(1e-2) {
			t.Errorf("%s: final violation %g at %v", m.name, rep.MaxViolation, rep.X)
		}
		if math.Abs(rep.X[0]-1) > 2e-2 {
			t.Errorf("%s: X = %v, want x0 = 1", m.name, rep.X)
		}
	}
}

// Rosenbrock in a box: a classic nonconvex valley. Gradient methods must
// make substantial progress; we assert near-optimality for SQP.
func TestRosenbrockSQP(t *testing.T) {
	p := &Problem{
		F: func(x []float64) float64 {
			a := 1 - x[0]
			b := x[1] - x[0]*x[0]
			return a*a + 100*b*b
		},
		Lower: []float64{-2, -2},
		Upper: []float64{2, 2},
	}
	rep, err := ActiveSetSQP(p, []float64{-1.2, 1}, Options{MaxIter: 2000, Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if rep.F > 1e-3 {
		t.Errorf("SQP on Rosenbrock: f = %g at %v, want < 1e-3", rep.F, rep.X)
	}
}

func TestRunawayRegionAvoided(t *testing.T) {
	// A synthetic objective with an "infinite" wall at x < 1 mimicking the
	// thermal runaway region of Figure 6(a); solvers must settle in the
	// finite region.
	f := func(x []float64) float64 {
		if x[0] < 1 {
			return math.Inf(1)
		}
		return (x[0]-3)*(x[0]-3) + x[1]*x[1]
	}
	p := &Problem{F: f, Lower: []float64{0, -2}, Upper: []float64{10, 2}}
	for _, m := range methods() {
		rep, err := m.run(p, []float64{5, 1}, Options{})
		if err != nil {
			t.Fatalf("%s: %v", m.name, err)
		}
		if rep.F >= Infeasible {
			t.Errorf("%s: stuck at infeasible objective", m.name)
			continue
		}
		if math.Abs(rep.X[0]-3) > 0.05 || math.Abs(rep.X[1]) > 0.05 {
			t.Errorf("%s: X = %v, want (3, 0)", m.name, rep.X)
		}
	}
}

func TestStopWhenEarlyExit(t *testing.T) {
	stopped := false
	p := &Problem{
		F:     bowl(0, 0),
		Lower: []float64{-5, -5},
		Upper: []float64{5, 5},
	}
	rep, err := ActiveSetSQP(p, []float64{4, 4}, Options{
		StopWhen: func(x []float64, f float64) bool {
			if f < 10 {
				stopped = true
				return true
			}
			return false
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !stopped || !rep.EarlyStopped {
		t.Errorf("StopWhen did not fire: stopped=%v report=%+v", stopped, rep)
	}
	if rep.F >= 16 { // must have improved from f(4,4)=64 to below the target
		t.Errorf("early stop left f = %g, want < 16", rep.F)
	}
}

func TestGridSearchFindsFeasibleOptimum(t *testing.T) {
	p := &Problem{
		F: func(x []float64) float64 { return x[0] + x[1] },
		Cons: []Func{
			func(x []float64) float64 { return 1 - x[0]*x[1] }, // x·y ≥ 1
		},
		Lower: []float64{0, 0},
		Upper: []float64{4, 4},
	}
	rep, err := GridSearch(p, 81, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Feasible(1e-9) {
		t.Fatalf("grid search returned infeasible point %v", rep.X)
	}
	// True optimum is x=y=1, f=2; the grid is 0.05-pitched.
	if rep.F > 2.2 {
		t.Errorf("grid search f = %g at %v, want ≈ 2", rep.F, rep.X)
	}
}

func TestGridSearchReportsLeastInfeasible(t *testing.T) {
	p := &Problem{
		F:     func(x []float64) float64 { return x[0] },
		Cons:  []Func{func(x []float64) float64 { return 1 + x[0]*x[0] }}, // never ≤ 0
		Lower: []float64{-1, -1},
		Upper: []float64{1, 1},
	}
	rep, err := GridSearch(p, 11, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Feasible(1e-9) {
		t.Fatal("problem is infeasible but grid search claims feasibility")
	}
	if math.Abs(rep.X[0]) > 1e-9 {
		t.Errorf("least-infeasible point should have x=0, got %v", rep.X)
	}
}

func TestValidationErrors(t *testing.T) {
	cases := []struct {
		name string
		p    *Problem
	}{
		{"no objective", &Problem{Lower: []float64{0}, Upper: []float64{1}}},
		{"no variables", &Problem{F: func(x []float64) float64 { return 0 }}},
		{"mismatched bounds", &Problem{F: func(x []float64) float64 { return 0 }, Lower: []float64{0, 0}, Upper: []float64{1}}},
		{"empty domain", &Problem{F: func(x []float64) float64 { return 0 }, Lower: []float64{2}, Upper: []float64{1}}},
		{"infinite bound", &Problem{F: func(x []float64) float64 { return 0 }, Lower: []float64{math.Inf(-1)}, Upper: []float64{1}}},
	}
	for _, c := range cases {
		if _, err := ActiveSetSQP(c.p, []float64{0, 0}, Options{}); err == nil {
			t.Errorf("%s: SQP accepted invalid problem", c.name)
		}
	}
	if _, err := GridSearch(&Problem{F: func(x []float64) float64 { return 0 }, Lower: []float64{0}, Upper: []float64{1}}, 1, 0); err == nil {
		t.Error("GridSearch accepted 1-point grid")
	}
}

func TestQPSubproblemExactness(t *testing.T) {
	// min ½dᵀId + gᵀd s.t. d₀ ≤ 0.5 with g = (-2, 0): unconstrained min is
	// (2, 0); the constraint clips to (0.5, 0) with λ = 1.5.
	q := &qpProblem{
		b: identity(2),
		g: []float64{-2, 0},
		a: [][]float64{{1, 0}},
		c: []float64{0.5},
	}
	d, lam, err := q.solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d[0]-0.5) > 1e-10 || math.Abs(d[1]) > 1e-10 {
		t.Errorf("d = %v, want (0.5, 0)", d)
	}
	if math.Abs(lam[0]-1.5) > 1e-10 {
		t.Errorf("lambda = %v, want 1.5", lam)
	}
}

func TestQPUnconstrainedInterior(t *testing.T) {
	q := &qpProblem{
		b: [][]float64{{2, 0}, {0, 4}},
		g: []float64{-2, -4},
		a: [][]float64{{1, 1}},
		c: []float64{100}, // inactive
	}
	d, lam, err := q.solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d[0]-1) > 1e-10 || math.Abs(d[1]-1) > 1e-10 {
		t.Errorf("d = %v, want (1, 1)", d)
	}
	if lam[0] != 0 {
		t.Errorf("inactive constraint has multiplier %g", lam[0])
	}
}

// Property: the QP subproblem solver satisfies the KKT conditions —
// stationarity (B·d + g + Aᵀλ = 0), primal feasibility, dual feasibility
// (λ ≥ 0), and complementary slackness (λᵢ·(aᵢᵀd − cᵢ) = 0).
func TestQPKKTProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(2) // 2-3 variables
		m := 1 + rng.Intn(4) // 1-4 constraint rows

		// SPD B = MᵀM + I.
		mrand := make([][]float64, n)
		for i := range mrand {
			mrand[i] = make([]float64, n)
			for j := range mrand[i] {
				mrand[i][j] = rng.NormFloat64()
			}
		}
		b := identity(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				for k := 0; k < n; k++ {
					b[i][j] += mrand[k][i] * mrand[k][j]
				}
			}
		}
		g := make([]float64, n)
		for i := range g {
			g[i] = rng.NormFloat64() * 3
		}
		a := make([][]float64, m)
		c := make([]float64, m)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = rng.NormFloat64()
			}
			c[i] = rng.Float64() * 2 // keeps d=0 feasible
		}

		q := &qpProblem{b: b, g: g, a: a, c: c}
		d, lam, err := q.solve()
		if err != nil {
			return false
		}
		const tol = 1e-7
		// Stationarity.
		for i := 0; i < n; i++ {
			s := g[i]
			for j := 0; j < n; j++ {
				s += b[i][j] * d[j]
			}
			for k := 0; k < m; k++ {
				s += lam[k] * a[k][i]
			}
			if math.Abs(s) > tol {
				return false
			}
		}
		for k := 0; k < m; k++ {
			slack := c[k] - dot(a[k], d)
			if slack < -tol { // primal feasibility
				return false
			}
			if lam[k] < -tol { // dual feasibility
				return false
			}
			if math.Abs(lam[k]*slack) > tol { // complementary slackness
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
