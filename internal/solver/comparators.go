package solver

import (
	"fmt"
	"math"
	"sort"
)

// NelderMead minimizes the problem with the derivative-free downhill
// simplex method, used in tests as an independent check on the
// gradient-based solvers. Constraints enter through a quadratic penalty;
// iterates are clamped to the box.
func NelderMead(p *Problem, x0 []float64, opts Options) (Report, error) {
	if err := p.Validate(); err != nil {
		return Report{}, err
	}
	n := p.Dim()
	evals := 0

	const penWeight = 1e6
	fpen := func(x []float64) float64 {
		xc := append([]float64(nil), x...)
		p.clampBox(xc)
		f := p.eval(xc, &evals)
		if f >= Infeasible {
			return Infeasible
		}
		for i := range p.Cons {
			if v := p.evalCons(i, xc, &evals); v > 0 {
				f += penWeight * v * v
			}
		}
		if f > Infeasible {
			return Infeasible
		}
		return f
	}

	// Initial simplex: x0 plus per-coordinate nudges of 5% of the range.
	type vertex struct {
		x []float64
		f float64
	}
	simplex := make([]vertex, n+1)
	start := append([]float64(nil), x0...)
	p.clampBox(start)
	simplex[0] = vertex{x: start, f: fpen(start)}
	for i := 0; i < n; i++ {
		x := append([]float64(nil), start...)
		step := 0.05 * (p.Upper[i] - p.Lower[i])
		if x[i]+step > p.Upper[i] {
			step = -step
		}
		x[i] += step
		simplex[i+1] = vertex{x: x, f: fpen(x)}
	}

	order := func() {
		sort.Slice(simplex, func(a, b int) bool { return simplex[a].f < simplex[b].f })
	}
	centroid := func() []float64 {
		c := make([]float64, n)
		for _, v := range simplex[:n] {
			for i := range c {
				c[i] += v.x[i] / float64(n)
			}
		}
		return c
	}
	point := func(c, x []float64, coef float64) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = c[i] + coef*(c[i]-x[i])
		}
		p.clampBox(out)
		return out
	}

	report := Report{}
	maxIter := opts.maxIter() * 4
	for iter := 1; iter <= maxIter; iter++ {
		if opts.cancelled() {
			report.Stopped = StopCancelled
			break
		}
		order()
		report.Iterations = iter
		best, worst := simplex[0], simplex[n]
		report.X = best.x
		report.F = best.f

		if opts.StopWhen != nil && opts.StopWhen(best.x, best.f) {
			report.EarlyStopped = true
			report.Stopped = StopEarlyStopped
			break
		}
		// Convergence: simplex has collapsed.
		var size float64
		for i := 0; i < n; i++ {
			size = math.Max(size, math.Abs(worst.x[i]-best.x[i])/(p.Upper[i]-p.Lower[i]+1e-30))
		}
		opts.trace(TraceRecord{
			Method: "neldermead", Iter: iter,
			X: append([]float64(nil), best.x...), F: best.f,
			MaxViolation: math.NaN(), StepNorm: size, Alpha: math.NaN(),
		})
		if size < opts.tol() && math.Abs(worst.f-best.f) < opts.tol()*(1+math.Abs(best.f)) {
			report.Converged = true
			report.Stopped = StopConverged
			break
		}

		c := centroid()
		refl := point(c, worst.x, 1)
		fr := fpen(refl)
		switch {
		case fr < best.f:
			exp := point(c, worst.x, 2)
			if fe := fpen(exp); fe < fr {
				simplex[n] = vertex{exp, fe}
			} else {
				simplex[n] = vertex{refl, fr}
			}
		case fr < simplex[n-1].f:
			simplex[n] = vertex{refl, fr}
		default:
			contr := point(c, worst.x, -0.5)
			if fc := fpen(contr); fc < worst.f {
				simplex[n] = vertex{contr, fc}
			} else {
				// Shrink toward the best vertex.
				for i := 1; i <= n; i++ {
					for j := 0; j < n; j++ {
						simplex[i].x[j] = best.x[j] + 0.5*(simplex[i].x[j]-best.x[j])
					}
					simplex[i].f = fpen(simplex[i].x)
				}
			}
		}
	}
	if report.Stopped == StopUnset {
		report.Stopped = StopMaxIter
	}
	order()
	report.X = simplex[0].x
	report.F = p.eval(report.X, &evals)
	report.MaxViolation = p.maxViolation(report.X, &evals)
	report.FuncEvals = evals
	return report, nil
}

// GridSearch scans a uniform grid with pts points per dimension and
// returns the best feasible point (feasibility tolerance tol on the
// constraints). It is exponential in the dimension and exists as the
// ground-truth comparator for the two-variable OFTEC problems.
func GridSearch(p *Problem, pts int, tol float64) (Report, error) {
	if err := p.Validate(); err != nil {
		return Report{}, err
	}
	if pts < 2 {
		return Report{}, fmt.Errorf("solver: grid search needs at least 2 points per dimension, got %d", pts)
	}
	n := p.Dim()
	evals := 0

	best := Report{F: math.Inf(1), MaxViolation: math.Inf(1)}
	idx := make([]int, n)
	x := make([]float64, n)
	for {
		for i := 0; i < n; i++ {
			x[i] = p.Lower[i] + (p.Upper[i]-p.Lower[i])*float64(idx[i])/float64(pts-1)
		}
		viol := p.maxViolation(x, &evals)
		f := p.eval(x, &evals)
		better := false
		if viol <= tol && best.MaxViolation > tol {
			better = true // first feasible beats any infeasible
		} else if viol <= tol && best.MaxViolation <= tol {
			better = f < best.F
		} else if best.MaxViolation > tol {
			better = viol < best.MaxViolation // least-infeasible fallback
		}
		if better {
			best.F = f
			best.MaxViolation = viol
			best.X = append([]float64(nil), x...)
		}
		// Advance the odometer.
		k := 0
		for ; k < n; k++ {
			idx[k]++
			if idx[k] < pts {
				break
			}
			idx[k] = 0
		}
		if k == n {
			break
		}
	}
	best.Converged = true
	best.Stopped = StopConverged
	best.Iterations = 1
	best.FuncEvals = evals
	return best, nil
}
