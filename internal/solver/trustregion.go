package solver

import (
	"math"
)

// TrustRegion minimizes the problem with a trust-region method, the third
// technique the paper experimented with. Inequality constraints are folded
// into a smooth quadratic penalty (with an escalating weight), and each
// step minimizes the BFGS quadratic model inside the intersection of an
// ∞-norm trust region and the box bounds — a small QP solved exactly by
// the same active-set enumeration the SQP uses. The trust radius adapts on
// the usual predicted-vs-actual reduction ratio.
func TrustRegion(p *Problem, x0 []float64, opts Options) (Report, error) {
	if err := p.Validate(); err != nil {
		return Report{}, err
	}
	n := p.Dim()
	evals := 0

	span := make([]float64, n)
	for i := range span {
		span[i] = p.Upper[i] - p.Lower[i]
		if span[i] == 0 {
			span[i] = 1
		}
	}
	toX := func(z []float64) []float64 {
		x := make([]float64, n)
		for i := range x {
			x[i] = p.Lower[i] + z[i]*span[i]
		}
		p.clampBox(x)
		return x
	}

	z := make([]float64, n)
	for i := range z {
		z[i] = math.Min(1, math.Max(0, (x0[i]-p.Lower[i])/span[i]))
	}

	penWeight := 1e3
	penalized := func(z []float64) float64 {
		x := toX(z)
		f := p.eval(x, &evals)
		if f >= Infeasible {
			return Infeasible
		}
		for i := range p.Cons {
			if v := p.evalCons(i, x, &evals); v > 0 {
				f += penWeight * v * v
			}
		}
		if f > Infeasible {
			return Infeasible
		}
		return f
	}
	scaledPen := &Problem{
		F:           penalized,
		Lower:       make([]float64, n),
		Upper:       make([]float64, n),
		GradMinStep: scaledGradMinStep(p, span),
	}
	for i := 0; i < n; i++ {
		scaledPen.Upper[i] = 1
		if p.pinned(i) {
			scaledPen.Upper[i] = 0 // pinned axis: the QP must not move it
		}
	}
	z2 := func(zi float64, i int) float64 {
		return math.Min(scaledPen.Upper[i], math.Max(0, zi))
	}
	for i := range z {
		z[i] = z2(z[i], i)
	}

	gradEvals := 0
	// gradPen produces the scaled-space gradient of the penalized
	// objective: ∇φ_z = span∘(∇F + Σ_{c_i>0} 2·penWeight·c_i·∇c_i) on the
	// analytic path (penWeight is read at call time, so re-derivations
	// after a penalty escalation see the new weight), finite differences of
	// the composite otherwise. Any declined piece falls back whole.
	gradPen := func(zz []float64, fzz float64) []float64 {
		if opts.Grad != nil {
			if g := func() []float64 {
				x := toX(zz)
				gx := opts.Grad(x)
				if gx == nil {
					return nil
				}
				gradEvals++
				g := scaleToZ(gx, span, p)
				for i := range p.Cons {
					v := p.evalCons(i, x, &evals)
					if v <= 0 {
						continue
					}
					var gc []float64
					if i < len(opts.ConsGrad) && opts.ConsGrad[i] != nil {
						gc = opts.ConsGrad[i](x)
					}
					if gc == nil {
						return nil
					}
					gradEvals++
					for j := 0; j < n; j++ {
						if p.pinned(j) {
							continue
						}
						g[j] += 2 * penWeight * v * gc[j] * span[j]
					}
				}
				return g
			}(); g != nil {
				return g
			}
		}
		return scaledPen.gradient(penalized, zz, fzz, opts.fdStep(), &evals)
	}

	f := penalized(z)
	g := gradPen(z, f)
	bmat := identity(n)
	delta := 0.25
	tol := opts.tol()

	report := Report{X: toX(z), F: f}
	for iter := 1; iter <= opts.maxIter(); iter++ {
		if opts.cancelled() {
			report.Stopped = StopCancelled
			break
		}
		report.Iterations = iter

		// QP: min ½dᵀBd + gᵀd s.t. |d_i| ≤ Δ and box.
		var rows [][]float64
		var rhs []float64
		for i := 0; i < n; i++ {
			up := make([]float64, n)
			up[i] = 1
			rows = append(rows, up)
			rhs = append(rhs, math.Min(delta, scaledPen.Upper[i]-z[i]))
			lo := make([]float64, n)
			lo[i] = -1
			rows = append(rows, lo)
			rhs = append(rhs, math.Min(delta, z[i]))
		}
		q := &qpProblem{b: bmat, g: g, a: rows, c: rhs}
		d, _, err := q.solve()
		if err != nil {
			// The trust-region subproblem itself failed; stop without a
			// stationarity claim.
			report.Stopped = StopRestored
			break
		}
		if norm2(d) < tol {
			report.Converged = true
			report.Stopped = StopConverged
			break
		}
		predicted := -(q.objective(d)) // model reduction
		zNew := make([]float64, n)
		for i := range zNew {
			zNew[i] = z2(z[i]+d[i], i)
		}
		fNew := penalized(zNew)
		actual := f - fNew

		rho := 0.0
		if predicted > 0 {
			rho = actual / predicted
		}
		switch {
		case rho < 0.25:
			delta *= 0.5
		case rho > 0.75:
			delta = math.Min(2*delta, 1)
		}
		if rho > 1e-4 && fNew < f {
			gNew := gradPen(zNew, fNew)
			s := make([]float64, n)
			y := make([]float64, n)
			var stepInf float64
			for i := 0; i < n; i++ {
				s[i] = zNew[i] - z[i]
				y[i] = gNew[i] - g[i]
				stepInf = math.Max(stepInf, math.Abs(s[i]))
			}
			bfgsUpdate(bmat, s, y)
			z, f, g = zNew, fNew, gNew
			report.X = toX(z)
			report.F = p.eval(report.X, &evals)
			opts.trace(TraceRecord{
				Method: "trust", Iter: iter,
				X: append([]float64(nil), report.X...), F: f,
				MaxViolation: math.NaN(), StepNorm: stepInf, Alpha: math.NaN(),
			})
			if opts.StopWhen != nil && opts.StopWhen(report.X, report.F) {
				report.EarlyStopped = true
				report.Stopped = StopEarlyStopped
				break
			}
			// Escalate the penalty while the iterate stays infeasible.
			if p.maxViolation(report.X, &evals) > opts.tol() {
				penWeight = math.Min(penWeight*2, 1e9)
				f = penalized(z)
				g = gradPen(z, f)
			}
		}
		if delta < tol/10 {
			report.Converged = true
			report.Stopped = StopConverged
			break
		}
	}
	if report.Stopped == StopUnset {
		report.Stopped = StopMaxIter
	}

	report.MaxViolation = p.maxViolation(report.X, &evals)
	report.FuncEvals = evals
	report.GradEvals = gradEvals
	return report, nil
}
