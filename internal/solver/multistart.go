package solver

import (
	"context"
	"fmt"
	"math"

	"oftec/internal/parallel"
)

// MultiStart runs a solver from several starting points and returns the
// best feasible result (or the least-infeasible one when nothing is
// feasible). The paper notes its objectives have "minor non-convexities";
// a small multistart turns the local SQP into a practical global method
// when extra robustness is wanted. FuncEvals and Iterations aggregate
// across all starts.
//
// With Options.Workers outside {0, 1} the starts are launched on a
// bounded worker pool (see Options.Workers for the thread-safety
// contract). The selection over completed reports is replayed serially
// in start order, so the returned Report is identical to the serial
// launch — including the early-stop short circuit, whose skipped starts
// are solved but then ignored.
func MultiStart(run func(p *Problem, x0 []float64, opts Options) (Report, error),
	p *Problem, starts [][]float64, opts Options) (Report, error) {
	if err := p.Validate(); err != nil {
		return Report{}, err
	}
	if len(starts) == 0 {
		return Report{}, fmt.Errorf("solver: MultiStart needs at least one starting point")
	}
	n := p.Dim()
	for i, x0 := range starts {
		if len(x0) != n {
			return Report{}, fmt.Errorf("solver: start %d has dimension %d, want %d", i, len(x0), n)
		}
	}

	workers := opts.Workers
	if workers == 0 {
		workers = 1
	}
	reps := make([]Report, len(starts))
	if workers == 1 {
		// Serial launch: stop issuing solves at the first early stop (the
		// zero Reports past it are never read by the reduction below).
		for i, x0 := range starts {
			rep, err := run(p, x0, opts)
			if err != nil {
				return Report{}, fmt.Errorf("solver: start %d: %w", i, err)
			}
			reps[i] = rep
			if rep.EarlyStopped {
				break
			}
		}
	} else {
		err := parallel.ForEach(context.Background(), len(starts), workers, func(i int) error {
			rep, err := run(p, starts[i], opts)
			if err != nil {
				return fmt.Errorf("solver: start %d: %w", i, err)
			}
			reps[i] = rep
			return nil
		})
		if err != nil {
			return Report{}, err
		}
	}

	// Deterministic reduction in start order, regardless of how the
	// reports were produced.
	best := Report{F: math.Inf(1), MaxViolation: math.Inf(1)}
	var totalEvals, totalIters int
	feasTol := opts.tol()
	for _, rep := range reps {
		totalEvals += rep.FuncEvals
		totalIters += rep.Iterations

		better := false
		switch {
		case rep.Feasible(feasTol) && !best.Feasible(feasTol):
			better = true
		case rep.Feasible(feasTol) == best.Feasible(feasTol) && rep.Feasible(feasTol):
			better = rep.F < best.F
		case !best.Feasible(feasTol):
			better = rep.MaxViolation < best.MaxViolation
		}
		if better {
			best = rep
		}
		if rep.EarlyStopped {
			best.EarlyStopped = true
			break
		}
	}
	best.FuncEvals = totalEvals
	best.Iterations = totalIters
	return best, nil
}

// CornerStarts returns the canonical multistart set for a box-bounded
// problem: the center plus the 2ⁿ corners pulled slightly inward (so
// finite-difference probes stay inside the box). It is exponential in the
// dimension and intended for the small problems this repository solves.
func CornerStarts(p *Problem, inset float64) ([][]float64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if inset < 0 || inset >= 0.5 {
		return nil, fmt.Errorf("solver: corner inset %g outside [0, 0.5)", inset)
	}
	n := p.Dim()
	if n > 8 {
		return nil, fmt.Errorf("solver: CornerStarts limited to 8 dimensions, got %d", n)
	}
	center := make([]float64, n)
	for i := 0; i < n; i++ {
		center[i] = (p.Lower[i] + p.Upper[i]) / 2
	}
	starts := [][]float64{center}
	for mask := 0; mask < 1<<n; mask++ {
		x := make([]float64, n)
		for i := 0; i < n; i++ {
			span := p.Upper[i] - p.Lower[i]
			if mask&(1<<i) != 0 {
				x[i] = p.Upper[i] - inset*span
			} else {
				x[i] = p.Lower[i] + inset*span
			}
		}
		starts = append(starts, x)
	}
	return starts, nil
}
