package solver

import (
	"context"
	"fmt"
	"math"

	"oftec/internal/parallel"
)

// Runner is the common signature of the iterative solvers in this
// package (ActiveSetSQP, InteriorPoint, TrustRegion, NelderMead,
// HookeJeeves) and of the drivers composed from them.
type Runner func(p *Problem, x0 []float64, opts Options) (Report, error)

// betterReport reports whether rep beats best under the feasibility-first
// ordering shared by MultiStart, Fallback, and GridSearch: a feasible
// report beats any infeasible one, feasible reports compare on the
// objective, and infeasible ones on their violation.
func betterReport(rep, best Report, feasTol float64) bool {
	switch {
	case rep.Feasible(feasTol) && !best.Feasible(feasTol):
		return true
	case rep.Feasible(feasTol) == best.Feasible(feasTol) && rep.Feasible(feasTol):
		return rep.F < best.F
	case !best.Feasible(feasTol):
		return rep.MaxViolation < best.MaxViolation
	}
	return false
}

// MultiStart runs a solver from several starting points and returns the
// best feasible result (or the least-infeasible one when nothing is
// feasible). The paper notes its objectives have "minor non-convexities";
// a small multistart turns the local SQP into a practical global method
// when extra robustness is wanted. FuncEvals and Iterations aggregate
// across all starts.
//
// With Options.Workers outside {0, 1} the starts are launched on a
// bounded worker pool (see Options.Workers for the thread-safety
// contract). The selection over completed reports is replayed serially
// in start order, so the returned Report is identical to the serial
// launch — including the early-stop short circuit, whose skipped starts
// are solved but then ignored.
//
// Cancellation (Options.Ctx) is honored by every underlying solve; the
// aggregate then reports the launch as a whole: best-so-far X/F, summed
// counters over whatever ran, Converged=false, Stopped=StopCancelled.
// Under cancellation the serial launch stops issuing solves while the
// parallel one lets the remaining starts return their (cheap) cancelled
// stubs, so the two paths may differ in the aggregate counters — never
// in the incumbent's provenance guarantees.
func MultiStart(run Runner, p *Problem, starts [][]float64, opts Options) (Report, error) {
	if err := p.Validate(); err != nil {
		return Report{}, err
	}
	if len(starts) == 0 {
		return Report{}, fmt.Errorf("solver: MultiStart needs at least one starting point")
	}
	n := p.Dim()
	for i, x0 := range starts {
		if len(x0) != n {
			return Report{}, fmt.Errorf("solver: start %d has dimension %d, want %d", i, len(x0), n)
		}
	}

	workers := opts.Workers
	if workers == 0 {
		workers = 1
	}
	reps := make([]Report, len(starts))
	if workers == 1 {
		// Serial launch: stop issuing solves at the first early stop or on
		// cancellation. reps is truncated so unstarted zero Reports (which
		// would look "feasible at F=0") never reach the reduction below.
		launched := 0
		for i, x0 := range starts {
			if i > 0 && opts.cancelled() {
				break
			}
			rep, err := run(p, x0, opts)
			if err != nil {
				return Report{}, fmt.Errorf("solver: start %d: %w", i, err)
			}
			reps[i] = rep
			launched = i + 1
			if rep.EarlyStopped {
				break
			}
		}
		reps = reps[:launched]
	} else {
		err := parallel.ForEach(context.Background(), len(starts), workers, func(i int) error {
			rep, err := run(p, starts[i], opts)
			if err != nil {
				return fmt.Errorf("solver: start %d: %w", i, err)
			}
			reps[i] = rep
			return nil
		})
		if err != nil {
			return Report{}, err
		}
	}

	// Deterministic reduction in start order, regardless of how the
	// reports were produced.
	best := Report{F: math.Inf(1), MaxViolation: math.Inf(1)}
	var totalEvals, totalGrads, totalIters int
	feasTol := opts.tol()
	for _, rep := range reps {
		totalEvals += rep.FuncEvals
		totalGrads += rep.GradEvals
		totalIters += rep.Iterations

		if betterReport(rep, best, feasTol) {
			best = rep
		}
		if rep.EarlyStopped {
			// Launch-wide verdict: the launch ended on the early-stop
			// predicate, whatever the incumbent's own reason was.
			best.EarlyStopped = true
			best.Converged = false
			best.Stopped = StopEarlyStopped
			break
		}
	}
	best.FuncEvals = totalEvals
	best.GradEvals = totalGrads
	best.Iterations = totalIters
	if opts.cancelled() {
		// Launch-wide verdict: even if the incumbent start converged before
		// the context fired, the launch as a whole was cut short.
		best.Converged = false
		best.EarlyStopped = false
		best.Stopped = StopCancelled
	}
	return best, nil
}

// CornerStarts returns the canonical multistart set for a box-bounded
// problem: the center plus the 2ⁿ corners pulled slightly inward (so
// finite-difference probes stay inside the box). It is exponential in the
// dimension and intended for the small problems this repository solves.
func CornerStarts(p *Problem, inset float64) ([][]float64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if inset < 0 || inset >= 0.5 {
		return nil, fmt.Errorf("solver: corner inset %g outside [0, 0.5)", inset)
	}
	n := p.Dim()
	if n > 8 {
		return nil, fmt.Errorf("solver: CornerStarts limited to 8 dimensions, got %d", n)
	}
	center := make([]float64, n)
	for i := 0; i < n; i++ {
		center[i] = (p.Lower[i] + p.Upper[i]) / 2
	}
	starts := [][]float64{center}
	for mask := 0; mask < 1<<n; mask++ {
		x := make([]float64, n)
		for i := 0; i < n; i++ {
			span := p.Upper[i] - p.Lower[i]
			if mask&(1<<i) != 0 {
				x[i] = p.Upper[i] - inset*span
			} else {
				x[i] = p.Lower[i] + inset*span
			}
		}
		starts = append(starts, x)
	}
	return starts, nil
}
