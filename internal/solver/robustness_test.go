package solver

import (
	"bytes"
	"context"
	"math"
	"strings"
	"sync"
	"testing"
)

// checkReportInvariants asserts the cross-solver Report contract: a
// reason is always recorded, and the legacy boolean flags are exactly
// views of it.
func checkReportInvariants(t *testing.T, name string, p *Problem, rep Report) {
	t.Helper()
	if rep.Stopped == StopUnset {
		t.Errorf("%s: Stopped is StopUnset — an exit path forgot to record its reason", name)
	}
	if rep.Converged != (rep.Stopped == StopConverged) {
		t.Errorf("%s: Converged=%t but Stopped=%s", name, rep.Converged, rep.Stopped)
	}
	if rep.EarlyStopped != (rep.Stopped == StopEarlyStopped) {
		t.Errorf("%s: EarlyStopped=%t but Stopped=%s", name, rep.EarlyStopped, rep.Stopped)
	}
	if rep.FuncEvals <= 0 {
		t.Errorf("%s: FuncEvals=%d, want > 0", name, rep.FuncEvals)
	}
	if len(rep.X) != p.Dim() {
		t.Fatalf("%s: X has %d entries, want %d", name, len(rep.X), p.Dim())
	}
	for i, v := range rep.X {
		if v < p.Lower[i]-1e-12 || v > p.Upper[i]+1e-12 {
			t.Errorf("%s: X[%d]=%g outside [%g, %g]", name, i, v, p.Lower[i], p.Upper[i])
		}
	}
}

func conformanceProblem() *Problem {
	return &Problem{
		F: func(x []float64) float64 { return x[0]*x[0] + x[1]*x[1] },
		Cons: []Func{
			func(x []float64) float64 { return 2 - x[0] - x[1] },
		},
		Lower: []float64{-5, -5},
		Upper: []float64{5, 5},
	}
}

// TestReportConformance runs every iterative method through the stopping
// scenarios and checks the Report contract on each.
func TestReportConformance(t *testing.T) {
	for _, m := range methods() {
		m := m
		t.Run(m.name, func(t *testing.T) {
			p := conformanceProblem()
			x0 := []float64{3, 0}

			// Natural finish (convergence or budget exhaustion).
			rep, err := m.run(p, x0, Options{MaxIter: 400})
			if err != nil {
				t.Fatal(err)
			}
			checkReportInvariants(t, m.name+"/natural", p, rep)
			if rep.Stopped != StopConverged && rep.Stopped != StopMaxIter {
				t.Errorf("natural finish stopped with %s", rep.Stopped)
			}

			// Early stop: the predicate fires at the first opportunity.
			rep, err = m.run(p, x0, Options{
				StopWhen: func([]float64, float64) bool { return true },
			})
			if err != nil {
				t.Fatal(err)
			}
			checkReportInvariants(t, m.name+"/earlystop", p, rep)
			if rep.Stopped != StopEarlyStopped && rep.Stopped != StopConverged {
				t.Errorf("early-stop run stopped with %s", rep.Stopped)
			}

			// Pre-cancelled context: no iterations, best-so-far report.
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			rep, err = m.run(p, x0, Options{Ctx: ctx})
			if err != nil {
				t.Fatal(err)
			}
			checkReportInvariants(t, m.name+"/precancelled", p, rep)
			if rep.Stopped != StopCancelled {
				t.Errorf("pre-cancelled run stopped with %s, want %s", rep.Stopped, StopCancelled)
			}
		})
	}
}

// TestCancelMidRunReturnsBestSoFar cancels the context from inside the
// objective after a fixed number of evaluations: each solver must stop at
// the next iteration boundary and hand back a usable best-so-far iterate.
func TestCancelMidRunReturnsBestSoFar(t *testing.T) {
	for _, m := range methods() {
		m := m
		t.Run(m.name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			evals := 0
			p := &Problem{
				F: func(x []float64) float64 {
					evals++
					if evals == 8 {
						cancel()
					}
					dx, dy := x[0]-1.5, x[1]+0.5
					return dx*dx + 3*dy*dy
				},
				Lower: []float64{-5, -5},
				Upper: []float64{5, 5},
			}
			rep, err := m.run(p, []float64{4, 4}, Options{Ctx: ctx, MaxIter: 400})
			if err != nil {
				t.Fatal(err)
			}
			checkReportInvariants(t, m.name, p, rep)
			if rep.Stopped != StopCancelled {
				t.Errorf("Stopped = %s, want %s", rep.Stopped, StopCancelled)
			}
			if math.IsNaN(rep.F) || rep.F >= Infeasible {
				t.Errorf("best-so-far F = %g is unusable", rep.F)
			}
		})
	}
}

// TestMultiStartCancelledAggregate checks the launch-wide verdict: a
// cancelled multistart reports StopCancelled with summed counters, on
// both the serial and the parallel path.
func TestMultiStartCancelledAggregate(t *testing.T) {
	p := conformanceProblem()
	starts := [][]float64{{3, 0}, {0, 3}, {-4, -4}, {4, 4}}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 2} {
		rep, err := MultiStart(ActiveSetSQP, p, starts, Options{Ctx: ctx, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if rep.Stopped != StopCancelled {
			t.Errorf("workers=%d: Stopped = %s, want %s", workers, rep.Stopped, StopCancelled)
		}
		if rep.Converged || rep.EarlyStopped {
			t.Errorf("workers=%d: cancelled launch claims Converged=%t EarlyStopped=%t",
				workers, rep.Converged, rep.EarlyStopped)
		}
		if rep.FuncEvals <= 0 {
			t.Errorf("workers=%d: FuncEvals=%d, want > 0 (best-so-far, not a zero Report)",
				workers, rep.FuncEvals)
		}
	}
}

// TestMultiStartAggregateReason checks the non-cancelled launch verdicts.
func TestMultiStartAggregateReason(t *testing.T) {
	p := conformanceProblem()
	starts := [][]float64{{3, 0}, {0, 3}}
	rep, err := MultiStart(ActiveSetSQP, p, starts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stopped == StopUnset {
		t.Error("multistart aggregate left Stopped unset")
	}
	if rep.Converged != (rep.Stopped == StopConverged) {
		t.Errorf("aggregate Converged=%t but Stopped=%s", rep.Converged, rep.Stopped)
	}

	rep, err = MultiStart(ActiveSetSQP, p, starts, Options{
		StopWhen: func([]float64, float64) bool { return true },
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stopped != StopEarlyStopped || !rep.EarlyStopped {
		t.Errorf("early-stopped launch: Stopped=%s EarlyStopped=%t", rep.Stopped, rep.EarlyStopped)
	}
}

// TestSQPLineSearchEvalAccounting pins the SQP's evaluation count on a
// problem with a known one-iteration trajectory, as a regression test for
// the line search double-evaluating constraints per trial. The linear
// objective over always-satisfied constant constraints is solved in one
// full Newton step to the (0,0) corner:
//
//	initial point:   1 (objective) + 2n (∇f) + m (cons) + 2nm (∇cons) = 20
//	one trial step:  1 + m = 4 (merit: objective once, each constraint once)
//	new derivatives: n (∇f one-sided at the corner) + nm (∇cons one-sided;
//	                 accepted trial's constraint values are reused)  = 8
//	final report:    m (violation check) = 3
//
// The pre-fix line search spent m extra evaluations re-measuring the
// accepted trial's constraints, which this total would expose.
func TestSQPLineSearchEvalAccounting(t *testing.T) {
	const n, m = 2, 3
	p := &Problem{
		F: func(x []float64) float64 { return x[0] + x[1] },
		Cons: []Func{
			func([]float64) float64 { return -1 },
			func([]float64) float64 { return -1 },
			func([]float64) float64 { return -1 },
		},
		Lower: []float64{0, 0},
		Upper: []float64{1, 1},
	}
	rep, err := ActiveSetSQP(p, []float64{0.5, 0.5}, Options{MaxIter: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.X[0] != 0 || rep.X[1] != 0 {
		t.Fatalf("one-step trajectory changed: X = %v, want (0, 0); the eval pin below is stale", rep.X)
	}
	want := (1 + 2*n + m + 2*n*m) + (1 + m) + (n + n*m) + m
	if rep.FuncEvals != want {
		t.Errorf("FuncEvals = %d, want %d (constraints re-evaluated in the line search?)", rep.FuncEvals, want)
	}
}

// TestGradientSliverBothProbesInfeasible: with both finite-difference
// probes in the Infeasible region, the synthetic slope must push the
// descent direction −g toward the box interior — not freeze the axis at
// g=0 as the old code did.
func TestGradientSliverBothProbesInfeasible(t *testing.T) {
	p := &Problem{Lower: []float64{0, 0}, Upper: []float64{1, 1}}
	infeasibleEverywhere := func([]float64) float64 { return Infeasible }
	evals := 0

	// Point near the lower bound on axis 0, near the upper bound on axis 1.
	g := p.gradient(infeasibleEverywhere, []float64{0.2, 0.8}, 1.0, 1e-5, &evals)
	if g[0] != -sliverSlope {
		t.Errorf("g[0] = %g, want %g (−g must point up-axis, away from the lower bound)", g[0], -sliverSlope)
	}
	if g[1] != sliverSlope {
		t.Errorf("g[1] = %g, want %g (−g must point down-axis, away from the upper bound)", g[1], sliverSlope)
	}
}

// TestGradientInfeasibleCurrentUsesBoundedSlope: when the current point
// itself evaluates Infeasible and only one probe is usable, the gradient
// must be the bounded synthetic slope toward the feasible probe — not the
// ±(f − 1e12)/h garbage a raw one-sided quotient would produce.
func TestGradientInfeasibleCurrentUsesBoundedSlope(t *testing.T) {
	p := &Problem{Lower: []float64{0}, Upper: []float64{1}}
	evals := 0

	// At the lower bound only the upper probe exists, and it is feasible.
	f := func(x []float64) float64 { return x[0] }
	g := p.gradient(f, []float64{0}, Infeasible, 1e-5, &evals)
	if g[0] != -sliverSlope {
		t.Errorf("upper probe feasible: g = %g, want %g", g[0], -sliverSlope)
	}

	// At the upper bound only the lower probe exists.
	g = p.gradient(f, []float64{1}, Infeasible, 1e-5, &evals)
	if g[0] != sliverSlope {
		t.Errorf("lower probe feasible: g = %g, want %g", g[0], sliverSlope)
	}

	// Feasible current point keeps the genuine one-sided quotient.
	g = p.gradient(f, []float64{0}, 0, 1e-5, &evals)
	if math.Abs(g[0]-1) > 1e-6 {
		t.Errorf("feasible one-sided quotient: g = %g, want 1", g[0])
	}
}

// TestTraceHookAllMethods checks that every iterative method emits
// per-iteration records with its own method tag and in-bounds iterates.
func TestTraceHookAllMethods(t *testing.T) {
	tags := map[string]string{
		"sqp": "sqp", "interior": "interior", "trust": "trust",
		"neldermead": "neldermead", "hookejeeves": "hooke",
	}
	for _, m := range methods() {
		m := m
		t.Run(m.name, func(t *testing.T) {
			p := conformanceProblem()
			var recs []TraceRecord
			_, err := m.run(p, []float64{3, 0}, Options{
				MaxIter: 400,
				Trace:   func(rec TraceRecord) { recs = append(recs, rec) },
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) == 0 {
				t.Fatal("no trace records emitted")
			}
			prevIter := 0
			for _, rec := range recs {
				if rec.Method != tags[m.name] {
					t.Fatalf("record method %q, want %q", rec.Method, tags[m.name])
				}
				if rec.Iter < prevIter {
					t.Fatalf("iteration numbers went backwards: %d after %d", rec.Iter, prevIter)
				}
				prevIter = rec.Iter
				if len(rec.X) != p.Dim() {
					t.Fatalf("record X has %d entries, want %d", len(rec.X), p.Dim())
				}
			}
		})
	}
}

func TestTraceRing(t *testing.T) {
	ring := NewTraceRing(4)
	for i := 1; i <= 10; i++ {
		ring.Record(TraceRecord{Method: "sqp", Iter: i, F: float64(i)})
	}
	if ring.Total() != 10 {
		t.Errorf("Total = %d, want 10", ring.Total())
	}
	recs := ring.Records()
	if len(recs) != 4 {
		t.Fatalf("len(Records) = %d, want 4", len(recs))
	}
	for k, rec := range recs {
		if want := 7 + k; rec.Iter != want {
			t.Errorf("Records[%d].Iter = %d, want %d (oldest-first order)", k, rec.Iter, want)
		}
	}

	var buf bytes.Buffer
	ring.Record(TraceRecord{
		Method: "sqp", Iter: 11, X: []float64{1, 2}, F: 3,
		MaxViolation: math.NaN(), StepNorm: 0.5, Alpha: math.NaN(),
	})
	if err := ring.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "sqp") || !strings.Contains(out, "11") {
		t.Errorf("dump missing expected fields:\n%s", out)
	}
	if !strings.Contains(out, "-") {
		t.Errorf("dump should render NaN fields as '-':\n%s", out)
	}
}

// TestTraceRingConcurrent exercises the ring from parallel writers; the
// -race gate gives this test its teeth.
func TestTraceRingConcurrent(t *testing.T) {
	ring := NewTraceRing(16)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				ring.Record(TraceRecord{Method: "sqp", Iter: i})
			}
		}(w)
	}
	wg.Wait()
	if ring.Total() != 400 {
		t.Errorf("Total = %d, want 400", ring.Total())
	}
	if len(ring.Records()) != 16 {
		t.Errorf("len(Records) = %d, want 16", len(ring.Records()))
	}
}

// TestMultiStartTraceConcurrent drives the trace hook through a parallel
// multistart launch; the hook must see records from every start without
// racing (enforced by the -race gate).
func TestMultiStartTraceConcurrent(t *testing.T) {
	p := conformanceProblem()
	ring := NewTraceRing(64)
	starts := [][]float64{{3, 0}, {0, 3}, {-4, -4}, {4, 4}}
	_, err := MultiStart(ActiveSetSQP, p, starts, Options{Workers: 4, Trace: ring.Record})
	if err != nil {
		t.Fatal(err)
	}
	if ring.Total() == 0 {
		t.Error("parallel multistart emitted no trace records")
	}
}

// TestInteriorPointHonestConvergence: the interior-point method must not
// claim convergence when its final barrier subproblem ran out of budget
// (the old code reported Converged=true unconditionally).
func TestInteriorPointHonestConvergence(t *testing.T) {
	// A well-behaved bowl does converge, with the claim backed by the
	// stop reason.
	p := &Problem{F: bowl(1.5, -0.5), Lower: []float64{-5, -5}, Upper: []float64{5, 5}}
	rep, err := InteriorPoint(p, []float64{4, 4}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged || rep.Stopped != StopConverged {
		t.Errorf("bowl: Converged=%t Stopped=%s, want converged", rep.Converged, rep.Stopped)
	}

	// A cancelled run must never carry a convergence claim.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err = InteriorPoint(p, []float64{4, 4}, Options{Ctx: ctx})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Converged || rep.Stopped != StopCancelled {
		t.Errorf("cancelled: Converged=%t Stopped=%s", rep.Converged, rep.Stopped)
	}
}
