package solver

import (
	"fmt"
	"math"
)

// NamedRunner pairs a Runner with a short display name so fallback
// diagnostics (and trace records) can say which stage produced a result.
type NamedRunner struct {
	Name string
	Run  Runner
}

// DefaultFallbackChain is the degradation ladder used when a solve does
// not converge to a feasible point: the paper's active-set SQP first,
// then the interior-point method (different globalization, tolerant of
// infeasible starts), and finally Hooke-Jeeves pattern search, which
// needs no derivatives at all and so survives evaluation pathologies
// (NaNs, Infeasible plateaus) that wreck finite differences.
func DefaultFallbackChain() []NamedRunner {
	return []NamedRunner{
		{Name: "sqp", Run: ActiveSetSQP},
		{Name: "interior", Run: InteriorPoint},
		{Name: "hooke", Run: HookeJeeves},
	}
}

// Fallback runs the chain's stages in order until one converges to a
// feasible point (or early-stops, or is cancelled). Each stage starts
// from the best iterate found so far, so partial progress from a failed
// stage is not thrown away. The returned Report is the best result seen
// across all stages under the same feasibility-first ordering MultiStart
// uses, with FuncEvals and Iterations summed over every stage that ran.
//
// A stage that returns an error — or panics — is recorded and skipped;
// the chain only fails as a whole when every stage fails, in which case
// the first stage error is returned. This is the graceful-degradation
// path: an evaluation model that starts misbehaving mid-solve should
// downgrade the answer, not destroy the run.
func Fallback(chain []NamedRunner, p *Problem, x0 []float64, opts Options) (Report, error) {
	if len(chain) == 0 {
		return Report{}, fmt.Errorf("solver: Fallback needs at least one stage")
	}
	if err := p.Validate(); err != nil {
		return Report{}, err
	}

	feasTol := opts.tol()
	best := Report{F: math.Inf(1), MaxViolation: math.Inf(1)}
	haveBest := false
	var firstErr error
	var totalEvals, totalGrads, totalIters int

	start := append([]float64(nil), x0...)
	for _, stage := range chain {
		rep, err := runStage(stage, p, start, opts)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("solver: fallback stage %q: %w", stage.Name, err)
			}
			continue
		}
		totalEvals += rep.FuncEvals
		totalGrads += rep.GradEvals
		totalIters += rep.Iterations
		if !haveBest || betterReport(rep, best, feasTol) {
			best = rep
			haveBest = true
		}
		if rep.Stopped == StopCancelled {
			// The context fired; later stages would return immediately
			// anyway. Report the launch as cancelled with the incumbent.
			best.Converged = false
			best.EarlyStopped = false
			best.Stopped = StopCancelled
			break
		}
		if rep.EarlyStopped || (rep.Converged && rep.Feasible(feasTol)) {
			break
		}
		// Seed the next stage with the incumbent: restarting a different
		// method from the best point found so far is what makes the chain
		// a refinement rather than three independent attempts.
		if len(best.X) == len(start) {
			start = append([]float64(nil), best.X...)
		}
	}
	if !haveBest {
		if firstErr != nil {
			return Report{}, firstErr
		}
		return Report{}, fmt.Errorf("solver: fallback chain produced no result")
	}
	best.FuncEvals = totalEvals
	best.GradEvals = totalGrads
	best.Iterations = totalIters
	return best, nil
}

// runStage invokes one chain stage, converting a panic in the stage (a
// misbehaving evaluation model, an indexing bug in a custom Runner) into
// an ordinary error so the chain can degrade to the next method.
func runStage(stage NamedRunner, p *Problem, x0 []float64, opts Options) (rep Report, err error) {
	defer func() {
		if r := recover(); r != nil {
			rep = Report{}
			err = fmt.Errorf("stage panicked: %v", r)
		}
	}()
	return stage.Run(p, x0, opts)
}
