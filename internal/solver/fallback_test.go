package solver_test

import (
	"context"
	"math"
	"reflect"
	"testing"

	"oftec/internal/solver"
	"oftec/internal/solver/testutil"
)

// table2Problem is a synthetic scenario with the shape of the paper's
// Table 2 solves: minimize a smooth power-like objective subject to one
// temperature-style constraint plus box bounds. The optimum sits on the
// constraint surface at (2, 1) with objective 3, a point the reference
// grid below hits exactly.
func table2Problem() *solver.Problem {
	return &solver.Problem{
		F: func(x []float64) float64 { return 0.5*x[0]*x[0] + x[1]*x[1] },
		Cons: []solver.Func{
			func(x []float64) float64 { return 3 - x[0] - x[1] },
		},
		Lower: []float64{0, 0},
		Upper: []float64{4, 2},
	}
}

func table2Start() []float64 { return []float64{3.5, 1.8} }

// gridReference solves the scenario by dense grid search, the repo's
// ground-truth comparator.
func gridReference(t *testing.T) solver.Report {
	t.Helper()
	ref, err := solver.GridSearch(table2Problem(), 201, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if !ref.Feasible(1e-9) {
		t.Fatalf("grid reference infeasible: %+v", ref)
	}
	return ref
}

// faultedSQPChain is the default chain with its SQP stage rewired to run
// against the faulty problem: the scenario where the first method's
// evaluations start misbehaving mid-solve while the model itself is fine.
func faultedSQPChain(faulty *solver.Problem) []solver.NamedRunner {
	chain := solver.DefaultFallbackChain()
	chain[0] = solver.NamedRunner{
		Name: "sqp",
		Run: func(_ *solver.Problem, x0 []float64, opts solver.Options) (solver.Report, error) {
			return solver.ActiveSetSQP(faulty, x0, opts)
		},
	}
	return chain
}

// TestFallbackGracefulDegradation is the acceptance scenario: SQP wrapped
// to fail after N evaluations must not sink the solve — the chain falls
// through to the later stages and still lands within 1e-6 of the
// grid-search reference, with merged evaluation counts and a recorded
// stop reason.
func TestFallbackGracefulDegradation(t *testing.T) {
	ref := gridReference(t)

	for _, mode := range []struct {
		name string
		mode testutil.FaultMode
	}{
		{"fail", testutil.FaultFail},
		{"nan", testutil.FaultNaN},
	} {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			faulty, fault := testutil.NewFault(table2Problem(), mode.mode, 30)
			rep, err := solver.Fallback(faultedSQPChain(faulty), table2Problem(), table2Start(), solver.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !fault.Tripped() {
				t.Fatalf("fault never triggered (only %d evaluations)", fault.Calls())
			}
			if !rep.Feasible(1e-6) {
				t.Fatalf("degraded solve infeasible: violation %g", rep.MaxViolation)
			}
			if rep.F > ref.F+1e-6 {
				t.Errorf("degraded solve F = %g, want ≤ grid reference %g + 1e-6", rep.F, ref.F)
			}
			if rep.Stopped == solver.StopUnset {
				t.Error("fallback result left Stopped unset")
			}
			// FuncEvals must merge every stage, including the faulted one.
			if rep.FuncEvals <= fault.Calls() {
				t.Errorf("FuncEvals = %d not merged across stages (faulted stage alone issued %d)",
					rep.FuncEvals, fault.Calls())
			}

			// The degraded answer must match an unfaulted chain.
			plain, err := solver.Fallback(solver.DefaultFallbackChain(), table2Problem(), table2Start(), solver.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(rep.F-plain.F) > 1e-6 {
				t.Errorf("degraded F = %g differs from unfaulted chain F = %g", rep.F, plain.F)
			}
		})
	}
}

// TestFallbackCleanFirstStageWins: with nothing failing, the chain must
// stop after its first stage and return exactly that stage's report.
func TestFallbackCleanFirstStageWins(t *testing.T) {
	p := table2Problem()
	single, err := solver.ActiveSetSQP(p, table2Start(), solver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !single.Converged || !single.Feasible(1e-6) {
		t.Fatalf("premise broken: plain SQP no longer converges feasibly (%+v)", single)
	}
	chained, err := solver.Fallback(solver.DefaultFallbackChain(), p, table2Start(), solver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(single, chained) {
		t.Errorf("clean chain diverged from its first stage:\nsingle:  %+v\nchained: %+v", single, chained)
	}
}

// TestFallbackSurvivesPanickingStage: a stage that panics is recorded and
// skipped, not propagated.
func TestFallbackSurvivesPanickingStage(t *testing.T) {
	chain := []solver.NamedRunner{
		{Name: "boom", Run: func(*solver.Problem, []float64, solver.Options) (solver.Report, error) {
			panic("evaluation model exploded")
		}},
		{Name: "sqp", Run: solver.ActiveSetSQP},
	}
	rep, err := solver.Fallback(chain, table2Problem(), table2Start(), solver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Feasible(1e-6) || !rep.Converged {
		t.Errorf("chain did not recover from the panicking stage: %+v", rep)
	}
}

// TestFallbackAllStagesFail: when every stage errors, the first error
// surfaces.
func TestFallbackAllStagesFail(t *testing.T) {
	chain := []solver.NamedRunner{
		{Name: "boom", Run: func(*solver.Problem, []float64, solver.Options) (solver.Report, error) {
			panic("broken")
		}},
	}
	if _, err := solver.Fallback(chain, table2Problem(), table2Start(), solver.Options{}); err == nil {
		t.Fatal("want an error when every stage fails")
	}
}

// TestFallbackCancelledStopsChain: once a stage reports cancellation the
// chain must stop launching stages and report the launch as cancelled.
func TestFallbackCancelledStopsChain(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	launches := 0
	counting := func(run solver.Runner) solver.Runner {
		return func(p *solver.Problem, x0 []float64, opts solver.Options) (solver.Report, error) {
			launches++
			return run(p, x0, opts)
		}
	}
	chain := []solver.NamedRunner{
		{Name: "sqp", Run: counting(solver.ActiveSetSQP)},
		{Name: "interior", Run: counting(solver.InteriorPoint)},
	}
	rep, err := solver.Fallback(chain, table2Problem(), table2Start(), solver.Options{Ctx: ctx})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stopped != solver.StopCancelled || rep.Converged {
		t.Errorf("Stopped=%s Converged=%t, want a cancelled launch", rep.Stopped, rep.Converged)
	}
	if launches != 1 {
		t.Errorf("chain launched %d stages after cancellation, want 1", launches)
	}
}

// TestFallbackHangReleasedByTimeout documents the cancellation contract
// for hung evaluations: a context deadline cannot interrupt an evaluation
// already in flight (they are black boxes), but once the evaluation
// returns, the solver stops at the next iteration boundary.
func TestFallbackHangReleasedByTimeout(t *testing.T) {
	faulty, fault := testutil.NewFault(table2Problem(), testutil.FaultHang, 10)
	ctx, cancel := context.WithCancel(context.Background())

	done := make(chan solver.Report, 1)
	go func() {
		rep, err := solver.Fallback(faultedSQPChain(faulty), table2Problem(), table2Start(), solver.Options{Ctx: ctx})
		if err != nil {
			t.Error(err)
		}
		done <- rep
	}()

	// Simulate the watchdog: give up on the wedged solve, then the
	// wedged evaluation eventually returns.
	cancel()
	fault.Release()
	rep := <-done
	if rep.Stopped != solver.StopCancelled {
		t.Errorf("Stopped = %s, want %s", rep.Stopped, solver.StopCancelled)
	}
}

// TestFaultWrapperCounts sanity-checks the test helper itself.
func TestFaultWrapperCounts(t *testing.T) {
	faulty, fault := testutil.NewFault(table2Problem(), testutil.FaultFail, 2)
	x := []float64{1, 1}
	if got := faulty.F(x); got != 1.5 {
		t.Errorf("pre-fault objective = %g, want 1.5", got)
	}
	if got := faulty.Cons[0](x); got != 1 {
		t.Errorf("pre-fault constraint = %g, want 1", got)
	}
	if fault.Tripped() {
		t.Error("fault tripped early")
	}
	if got := faulty.F(x); got != solver.Infeasible {
		t.Errorf("post-fault objective = %g, want Infeasible", got)
	}
	if !fault.Tripped() || fault.Calls() != 3 {
		t.Errorf("Tripped=%t Calls=%d, want tripped after 3 calls", fault.Tripped(), fault.Calls())
	}
}
