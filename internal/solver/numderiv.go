package solver

import "math"

// sliverSlope is the synthetic gradient magnitude used when finite
// differencing is impossible because the current point or both probes sit
// in the Infeasible region. It must be large enough to dominate genuine
// objective slopes (the scaled problems have O(1) spans) yet small enough
// that the BFGS curvature pairs built from it stay numerically sane —
// (Infeasible − fx)/h would be ~1e17 and wrecks the Hessian model.
const sliverSlope = 1e6

// quantRelStep is the minimum finite-difference probe separation, relative
// to the variable's magnitude scale max(1, |Lower|, |Upper|), that keeps
// two probes on distinct keys of an evaluation cache quantized to a 1e-9
// coordinate grid (core's memo rounds every coordinate to
// round(v·1e9)/1e9). Probes closer than the grid spacing alias to the same
// cache entry and the difference quotient collapses to an exact zero.
const quantRelStep = 2e-9

// minFDStep returns the absolute finite-difference floor for a variable
// with the given bounds, in the variable's own units.
func minFDStep(lo, hi float64) float64 {
	scale := math.Max(1, math.Max(math.Abs(lo), math.Abs(hi)))
	return quantRelStep * scale
}

// scaledGradMinStep maps the x-space finite-difference floors of p onto a
// unit-box scaled problem: a z-step of m/span_i moves x_i by m. The
// iterative solvers install the result as their scaled problem's
// GradMinStep so cache-quantization aliasing cannot zero out gradients on
// problems with tiny variable spans.
func scaledGradMinStep(p *Problem, span []float64) []float64 {
	steps := make([]float64, p.Dim())
	for i := range steps {
		steps[i] = minFDStep(p.Lower[i], p.Upper[i]) / span[i]
	}
	return steps
}

// scaleToZ converts an x-space gradient (as returned by a GradFunc) to the
// unit-box z-space of a solver's internal scaling: ∂f/∂z_i = span_i·∂f/∂x_i.
// Pinned axes (Upper == Lower in the original problem) are zeroed — their x
// never moves, so the scaled derivative is identically zero.
func scaleToZ(gx, span []float64, p *Problem) []float64 {
	g := make([]float64, len(gx))
	for i := range g {
		if p.pinned(i) {
			continue
		}
		g[i] = gx[i] * span[i]
	}
	return g
}

// gradient approximates ∇f at x with central differences, falling back to
// one-sided differences at box edges or when a probe point evaluates to the
// Infeasible sentinel (e.g. probing into a thermal-runaway region). The
// step for variable i is h_i = fdStep·(Upper_i − Lower_i), floored at 1e-10
// and at GradMinStep_i when set. A pinned variable (Upper_i == Lower_i)
// gets a zero derivative without spending any evaluations.
//
// When finite differencing degenerates, a synthetic slope of magnitude
// sliverSlope stands in for the unknown derivative:
//
//   - both probes infeasible (the iterate sits in a sliver of
//     feasibility): the slope points so that the descent direction −g
//     moves away from the nearer box bound, toward the interior;
//   - fx itself Infeasible with one usable probe: the slope points so
//     that −g moves toward the feasible probe (the raw one-sided quotient
//     would be ±(fProbe − 1e12)/h garbage).
func (p *Problem) gradient(f Func, x []float64, fx float64, fdStep float64, evals *int) []float64 {
	n := p.Dim()
	g := make([]float64, n)
	xp := make([]float64, n)
	copy(xp, x)
	for i := 0; i < n; i++ {
		if p.pinned(i) {
			// Degenerate (pinned) bounds freeze this axis: no step can stay
			// inside the box, so the floored probes below would both land
			// outside and the sliver branch would fabricate a ±sliverSlope
			// on a variable that cannot move, poisoning the BFGS curvature
			// pairs and every descent direction built from them. The only
			// honest derivative along a frozen axis is zero.
			g[i] = 0
			continue
		}
		h := fdStep * (p.Upper[i] - p.Lower[i])
		if h < 1e-10 {
			h = 1e-10
		}
		if p.GradMinStep != nil && h < p.GradMinStep[i] {
			h = p.GradMinStep[i]
		}
		hiOK := x[i]+h <= p.Upper[i]
		loOK := x[i]-h >= p.Lower[i]

		var fHi, fLo float64
		fHi, fLo = math.NaN(), math.NaN()
		if hiOK {
			xp[i] = x[i] + h
			fHi = p.wrap(f, xp, evals)
		}
		if loOK {
			xp[i] = x[i] - h
			fLo = p.wrap(f, xp, evals)
		}
		xp[i] = x[i]

		usableHi := hiOK && fHi < Infeasible
		usableLo := loOK && fLo < Infeasible
		switch {
		case usableHi && usableLo:
			g[i] = (fHi - fLo) / (2 * h)
		case usableHi:
			if fx >= Infeasible {
				g[i] = -sliverSlope // descend toward the feasible upper probe
			} else {
				g[i] = (fHi - fx) / h
			}
		case usableLo:
			if fx >= Infeasible {
				g[i] = sliverSlope // descend toward the feasible lower probe
			} else {
				g[i] = (fx - fLo) / h
			}
		default:
			// Both probes infeasible: the point sits in a sliver of
			// feasibility. Signal steep ascent toward the nearer bound so
			// the descent direction −g pushes the iterate toward the
			// interior instead of stranding it (g = 0 froze this axis).
			if x[i]-p.Lower[i] <= p.Upper[i]-x[i] {
				g[i] = -sliverSlope
			} else {
				g[i] = sliverSlope
			}
		}
	}
	return g
}

// wrap evaluates an arbitrary Func with the Infeasible clamp.
func (p *Problem) wrap(f Func, x []float64, evals *int) float64 {
	*evals++
	v := f(x)
	if math.IsNaN(v) || v > Infeasible || math.IsInf(v, 1) {
		return Infeasible
	}
	if math.IsInf(v, -1) {
		return -Infeasible
	}
	return v
}

// bfgsUpdate applies the damped BFGS update (Powell 1978) to the Hessian
// approximation B in place, keeping it positive definite:
//
//	s = xNew − xOld, y = ∇L(xNew) − ∇L(xOld)
//
// If sᵀy is too small relative to sᵀBs, y is blended with Bs.
func bfgsUpdate(b [][]float64, s, y []float64) {
	n := len(s)
	bs := make([]float64, n)
	for i := 0; i < n; i++ {
		var sum float64
		for j := 0; j < n; j++ {
			sum += b[i][j] * s[j]
		}
		bs[i] = sum
	}
	sBs := dot(s, bs)
	sy := dot(s, y)
	if sBs <= 0 {
		return // degenerate; skip update
	}
	theta := 1.0
	if sy < 0.2*sBs {
		theta = 0.8 * sBs / (sBs - sy)
	}
	r := make([]float64, n)
	for i := 0; i < n; i++ {
		r[i] = theta*y[i] + (1-theta)*bs[i]
	}
	sr := dot(s, r)
	if sr <= 1e-14 {
		return
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b[i][j] += r[i]*r[j]/sr - bs[i]*bs[j]/sBs
		}
	}
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func norm2(v []float64) float64 { return math.Sqrt(dot(v, v)) }

func identity(n int) [][]float64 {
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		m[i][i] = 1
	}
	return m
}
