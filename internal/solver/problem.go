// Package solver implements the constrained nonlinear programming methods
// the paper evaluated for OFTEC: the active-set sequential quadratic
// programming (SQP) method it selected, plus the interior-point and
// trust-region techniques it compared against, and two derivative-free
// comparators (Nelder-Mead and dense grid search) used by tests to verify
// solution quality.
//
// Objectives are treated as black boxes evaluated numerically (the paper's
// objective requires a thermal simulation per point); gradients default to
// finite-difference approximations, with an analytic path (Options.Grad /
// Options.ConsGrad, fed by the thermal adjoint solves) that collapses the
// 2n probes per derivative into a single callback. Problems are small
// (OFTEC has two variables, ω and I_TEC), which the implementations
// exploit: the SQP quadratic subproblems are solved exactly by enumerating
// active sets.
package solver

import (
	"context"
	"errors"
	"fmt"
	"math"
)

// Infeasible is the objective/constraint value convention for operating
// points where the simulation diverges (thermal runaway): evaluations
// should return a large finite value rather than +Inf so finite-difference
// gradients stay meaningful. Evaluators may also return +Inf; the solvers
// clamp it to this value.
const Infeasible = 1e12

// Func evaluates a scalar function of the decision vector.
type Func func(x []float64) float64

// GradFunc evaluates the exact gradient of a scalar function at x, in the
// problem's own (unscaled) units. Returning nil declines the evaluation —
// the point is outside the differentiable region (thermal runaway) or the
// underlying adjoint solve failed — and the solver falls back to finite
// differences at that point only.
type GradFunc func(x []float64) []float64

// Problem is the CNLP
//
//	minimize    F(x)
//	subject to  Cons_i(x) ≤ 0   for all i
//	            Lower ≤ x ≤ Upper.
type Problem struct {
	// F is the objective.
	F Func
	// Cons are inequality constraints, satisfied when ≤ 0.
	Cons []Func
	// Lower and Upper are box bounds, required and finite.
	Lower, Upper []float64
	// GradMinStep, when non-nil (length Dim), floors the per-variable
	// finite-difference step at an absolute minimum in the variable's own
	// units. Evaluators that memoize on quantized coordinates (core's
	// evaluation cache rounds to a 1e-9 grid) alias probes closer than the
	// grid spacing, turning difference quotients into exact zeros; the
	// floor keeps both probes on distinct cache keys. The iterative
	// solvers set it automatically on their internally scaled problems.
	GradMinStep []float64
}

// Dim returns the number of decision variables.
func (p *Problem) Dim() int { return len(p.Lower) }

// pinned reports whether variable i is frozen by degenerate bounds.
// Degenerate bounds are constructed by assignment (lower[i] = upper[i] =
// value, e.g. a fixed fan speed), so the identity is exact by design and
// no tolerance is wanted: a near-zero span is a live variable.
func (p *Problem) pinned(i int) bool { return p.Upper[i]-p.Lower[i] == 0 }

// Validate checks the problem structure.
func (p *Problem) Validate() error {
	if p.F == nil {
		return errors.New("solver: problem has no objective")
	}
	n := len(p.Lower)
	if n == 0 {
		return errors.New("solver: problem has no variables")
	}
	if len(p.Upper) != n {
		return fmt.Errorf("solver: bound lengths differ (%d vs %d)", n, len(p.Upper))
	}
	for i := 0; i < n; i++ {
		if math.IsNaN(p.Lower[i]) || math.IsNaN(p.Upper[i]) ||
			math.IsInf(p.Lower[i], 0) || math.IsInf(p.Upper[i], 0) {
			return fmt.Errorf("solver: bounds for variable %d must be finite", i)
		}
		if p.Lower[i] > p.Upper[i] {
			return fmt.Errorf("solver: variable %d has empty domain [%g, %g]", i, p.Lower[i], p.Upper[i])
		}
	}
	if p.GradMinStep != nil {
		if len(p.GradMinStep) != n {
			return fmt.Errorf("solver: GradMinStep length %d, want %d", len(p.GradMinStep), n)
		}
		for i, s := range p.GradMinStep {
			if math.IsNaN(s) || s < 0 {
				return fmt.Errorf("solver: GradMinStep[%d] = %g must be a non-negative number", i, s)
			}
		}
	}
	return nil
}

// clampBox projects x into the box bounds in place.
func (p *Problem) clampBox(x []float64) {
	for i := range x {
		if x[i] < p.Lower[i] {
			x[i] = p.Lower[i]
		}
		if x[i] > p.Upper[i] {
			x[i] = p.Upper[i]
		}
	}
}

// eval evaluates the objective with the +Inf clamp.
func (p *Problem) eval(x []float64, evals *int) float64 {
	*evals++
	v := p.F(x)
	if math.IsNaN(v) || v > Infeasible || math.IsInf(v, 1) {
		return Infeasible
	}
	if math.IsInf(v, -1) {
		return -Infeasible
	}
	return v
}

// evalCons evaluates constraint i with the same clamp.
func (p *Problem) evalCons(i int, x []float64, evals *int) float64 {
	*evals++
	v := p.Cons[i](x)
	if math.IsNaN(v) || v > Infeasible || math.IsInf(v, 1) {
		return Infeasible
	}
	if math.IsInf(v, -1) {
		return -Infeasible
	}
	return v
}

// maxViolation returns the largest positive constraint value at x (0 when
// feasible).
func (p *Problem) maxViolation(x []float64, evals *int) float64 {
	var worst float64
	for i := range p.Cons {
		if v := p.evalCons(i, x, evals); v > worst {
			worst = v
		}
	}
	return worst
}

// Options tunes the iterative solvers.
type Options struct {
	// MaxIter caps outer iterations; zero selects 200.
	MaxIter int
	// Tol is the convergence tolerance on step length and KKT residual;
	// zero selects 1e-6 (in the scaled variable space).
	Tol float64
	// FDStep is the relative finite-difference step; zero selects 1e-5 of
	// the variable range.
	FDStep float64
	// Grad, when non-nil, supplies the exact gradient of F (in the
	// problem's own units); the gradient-based solvers (ActiveSetSQP,
	// InteriorPoint, TrustRegion) then skip the 2n finite-difference
	// probes per derivative. A nil return from the function falls back to
	// finite differences at that point. Derivative-free methods ignore it.
	Grad GradFunc
	// ConsGrad optionally supplies exact gradients for the corresponding
	// entries of Problem.Cons; missing or nil entries use finite
	// differences. The barrier and penalty solvers need every constraint
	// gradient to assemble an analytic composite gradient, so a single nil
	// entry sends them back to finite differences for the whole composite.
	ConsGrad []GradFunc
	// StopWhen, if non-nil, is checked after every accepted iterate; a
	// true return stops the solver early with Converged=false and
	// EarlyStopped=true. Algorithm 1 uses this to stop Optimization 2 as
	// soon as 𝒯 < T_max.
	StopWhen func(x []float64, f float64) bool
	// Workers bounds MultiStart's parallel fan-out over starting points.
	// Zero and one keep the historical serial launch (required when the
	// problem's F/Cons/StopWhen are not safe for concurrent use);
	// negative selects GOMAXPROCS. The iterative solvers themselves
	// ignore this field.
	Workers int
	// Ctx, when non-nil, is checked at every iteration boundary: once it
	// is cancelled or past its deadline, the solver stops within one
	// iteration and returns its best-so-far Report with Stopped =
	// StopCancelled and no error. A nil Ctx never cancels. Cancellation
	// cannot interrupt an evaluation already in flight — F and Cons are
	// black boxes — only the boundary between iterations.
	Ctx context.Context
	// Trace, when non-nil, receives one TraceRecord per accepted iterate
	// from every iterative solver (and from each start of a MultiStart
	// launch). With Workers > 1 it must be safe for concurrent use.
	Trace TraceFunc
}

// cancelled reports whether Ctx demands an early exit.
func (o Options) cancelled() bool {
	return o.Ctx != nil && o.Ctx.Err() != nil
}

// trace emits a record when a Trace hook is installed.
func (o Options) trace(rec TraceRecord) {
	if o.Trace != nil {
		o.Trace(rec)
	}
}

func (o Options) maxIter() int {
	if o.MaxIter <= 0 {
		return 200
	}
	return o.MaxIter
}

func (o Options) tol() float64 {
	if o.Tol <= 0 {
		return 1e-6
	}
	return o.Tol
}

func (o Options) fdStep() float64 {
	if o.FDStep <= 0 {
		return 1e-5
	}
	return o.FDStep
}

// StopReason says why a solver handed back its Report. Every solver in
// this package sets it on every exit path; StopUnset in a returned Report
// is a bug (the conformance suite enforces this).
type StopReason int

const (
	// StopUnset is the zero value: no reason was recorded.
	StopUnset StopReason = iota
	// StopConverged: the method met its convergence test.
	StopConverged
	// StopEarlyStopped: Options.StopWhen fired.
	StopEarlyStopped
	// StopMaxIter: the iteration budget ran out before convergence.
	StopMaxIter
	// StopCancelled: Options.Ctx was cancelled or timed out; the Report
	// carries the best-so-far iterate.
	StopCancelled
	// StopRestored: the method dead-ended in feasibility restoration (it
	// could not even reduce the constraint violation) and stopped without
	// a stationarity claim.
	StopRestored
)

// String names the reason for reports and traces.
func (s StopReason) String() string {
	switch s {
	case StopUnset:
		return "unset"
	case StopConverged:
		return "converged"
	case StopEarlyStopped:
		return "early-stopped"
	case StopMaxIter:
		return "max-iter"
	case StopCancelled:
		return "cancelled"
	case StopRestored:
		return "restored"
	default:
		return fmt.Sprintf("StopReason(%d)", int(s))
	}
}

// Report describes the outcome of a solve.
type Report struct {
	// X is the best point found.
	X []float64
	// F is the objective at X.
	F float64
	// MaxViolation is the largest constraint violation at X (0 = feasible).
	MaxViolation float64
	// Iterations is the number of outer iterations performed.
	Iterations int
	// FuncEvals counts objective and constraint evaluations.
	FuncEvals int
	// GradEvals counts analytic gradient evaluations (Options.Grad and
	// Options.ConsGrad calls that returned a gradient). Zero on the pure
	// finite-difference path.
	GradEvals int
	// Converged reports whether the method met its convergence test. It
	// is true exactly when Stopped == StopConverged.
	Converged bool
	// EarlyStopped reports that Options.StopWhen fired. It is true
	// exactly when Stopped == StopEarlyStopped.
	EarlyStopped bool
	// Stopped records why the solve ended. Aggregating drivers
	// (MultiStart, Fallback) report the reason of the whole launch: a
	// cancelled launch reports StopCancelled even when some start
	// converged before the cancellation.
	Stopped StopReason
}

// Feasible reports whether the final point satisfies all constraints to
// within tol.
func (r Report) Feasible(tol float64) bool { return r.MaxViolation <= tol }
