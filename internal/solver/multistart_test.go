package solver

import (
	"math"
	"reflect"
	"testing"
)

// twoBasins is a double-well quartic with a barrier at x=0: the global
// minimum sits near x=-2 (f ≈ -2), a local one near x=+2 (f ≈ +2).
func twoBasins() *Problem {
	return &Problem{
		F: func(x []float64) float64 {
			s := x[0]*x[0] - 4
			return s*s + x[0] + x[1]*x[1]
		},
		Lower: []float64{-4, -1},
		Upper: []float64{4, 1},
	}
}

func TestMultiStartFindsGlobalBasin(t *testing.T) {
	p := twoBasins()
	starts, err := CornerStarts(p, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := MultiStart(ActiveSetSQP, p, starts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if multi.X[0] > 0 || multi.F > -1.8 {
		t.Errorf("multistart f = %g at %v, want the global basin near x=-2", multi.F, multi.X)
	}
	// The aggregate must never be worse than any individual start.
	for _, s := range starts {
		single, err := ActiveSetSQP(p, s, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if single.Feasible(1e-6) && multi.F > single.F+1e-9 {
			t.Errorf("multistart f=%g worse than start %v (f=%g)", multi.F, s, single.F)
		}
	}
	if multi.FuncEvals == 0 || multi.Iterations == 0 {
		t.Error("multistart did not aggregate counters")
	}
}

func TestMultiStartPrefersFeasible(t *testing.T) {
	// One start converges infeasible (stuck at a bound far from the
	// feasible set), another feasible; the feasible one must win even with
	// a worse objective.
	p := &Problem{
		F: func(x []float64) float64 { return x[0] },
		Cons: []Func{
			func(x []float64) float64 { return 1 - x[0] }, // x ≥ 1
		},
		Lower: []float64{0},
		Upper: []float64{5},
	}
	rep, err := MultiStart(ActiveSetSQP, p, [][]float64{{0}, {4}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Feasible(1e-6) {
		t.Fatalf("multistart returned infeasible point %v", rep.X)
	}
	if math.Abs(rep.X[0]-1) > 1e-3 {
		t.Errorf("x = %v, want 1", rep.X)
	}
}

func TestMultiStartValidation(t *testing.T) {
	p := twoBasins()
	if _, err := MultiStart(ActiveSetSQP, p, nil, Options{}); err == nil {
		t.Error("empty start list accepted")
	}
	if _, err := MultiStart(ActiveSetSQP, p, [][]float64{{1}}, Options{}); err == nil {
		t.Error("wrong-dimension start accepted")
	}
}

func TestCornerStarts(t *testing.T) {
	p := &Problem{
		F:     func(x []float64) float64 { return 0 },
		Lower: []float64{0, 10},
		Upper: []float64{1, 20},
	}
	starts, err := CornerStarts(p, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(starts) != 5 { // center + 4 corners
		t.Fatalf("got %d starts, want 5", len(starts))
	}
	if starts[0][0] != 0.5 || starts[0][1] != 15 {
		t.Errorf("center = %v", starts[0])
	}
	for _, s := range starts[1:] {
		if s[0] != 0.1 && s[0] != 0.9 {
			t.Errorf("corner x0 = %g, want 0.1 or 0.9", s[0])
		}
		if s[1] != 11 && s[1] != 19 {
			t.Errorf("corner x1 = %g, want 11 or 19", s[1])
		}
	}
	if _, err := CornerStarts(p, 0.6); err == nil {
		t.Error("oversized inset accepted")
	}
	big := &Problem{F: p.F, Lower: make([]float64, 9), Upper: make([]float64, 9)}
	for i := range big.Upper {
		big.Upper[i] = 1
	}
	if _, err := CornerStarts(big, 0.1); err == nil {
		t.Error("9-dimensional corner enumeration accepted")
	}
}

// TestMultiStartParallelMatchesSerial pins the fan-out contract: the
// parallel launch must return a Report identical to the serial one —
// selection, aggregate counters, and the early-stop short circuit
// (replayed over the completed reports) included.
func TestMultiStartParallelMatchesSerial(t *testing.T) {
	p := twoBasins()
	starts, err := CornerStarts(p, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := MultiStart(ActiveSetSQP, p, starts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := MultiStart(ActiveSetSQP, p, starts, Options{Workers: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Errorf("reports differ:\nserial   %+v\nparallel %+v", serial, par)
	}

	// Early stop: the parallel reduction must discard reports past the
	// first early-stopped start, matching the serial break. StopWhen is a
	// pure function of f so it is safe for the concurrent launch.
	stop := func(x []float64, f float64) bool { return f < 1.5 }
	es := [][]float64{{-3.5, 0}, {3.5, 0}, {0.1, 0.5}}
	serialES, err := MultiStart(ActiveSetSQP, p, es, Options{StopWhen: stop})
	if err != nil {
		t.Fatal(err)
	}
	parES, err := MultiStart(ActiveSetSQP, p, es, Options{StopWhen: stop, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !parES.EarlyStopped {
		t.Error("parallel launch lost the early stop")
	}
	if !reflect.DeepEqual(serialES, parES) {
		t.Errorf("early-stop reports differ:\nserial   %+v\nparallel %+v", serialES, parES)
	}
}

func TestMultiStartEarlyStop(t *testing.T) {
	p := twoBasins()
	calls := 0
	opts := Options{StopWhen: func(x []float64, f float64) bool {
		calls++
		return f < 1.5
	}}
	starts := [][]float64{{-3.5, 0}, {3.5, 0}}
	rep, err := MultiStart(ActiveSetSQP, p, starts, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.EarlyStopped {
		t.Error("early stop not propagated")
	}
	if calls == 0 {
		t.Error("StopWhen never invoked")
	}
}
