package solver

import (
	"math"

	"oftec/internal/sparse"
)

// InteriorPoint minimizes the problem with a primal log-barrier method,
// one of the two techniques the paper compared the active-set SQP against.
// The inequality constraints and box bounds enter through an extrapolated
// logarithmic barrier (quadratic continuation outside the barrier domain,
// so infeasible starting points are handled gracefully); the barrier
// parameter is driven to zero over a fixed schedule, and each barrier
// subproblem is minimized by a damped-BFGS quasi-Newton iteration with
// backtracking line search.
func InteriorPoint(p *Problem, x0 []float64, opts Options) (Report, error) {
	if err := p.Validate(); err != nil {
		return Report{}, err
	}
	n := p.Dim()
	evals := 0

	span := make([]float64, n)
	for i := range span {
		span[i] = p.Upper[i] - p.Lower[i]
		if span[i] == 0 {
			span[i] = 1
		}
	}
	toX := func(z []float64) []float64 {
		x := make([]float64, n)
		for i := range x {
			x[i] = p.Lower[i] + z[i]*span[i]
		}
		p.clampBox(x)
		return x
	}

	// uz is the per-axis upper bound in scaled space: 1, or 0 for a pinned
	// variable (Upper == Lower), whose axis must never move.
	uz := make([]float64, n)
	for i := range uz {
		uz[i] = 1
		if p.pinned(i) {
			uz[i] = 0
		}
	}
	z := make([]float64, n)
	for i := range z {
		z[i] = math.Min(uz[i], math.Max(0, (x0[i]-p.Lower[i])/span[i]))
	}

	// psi is the extrapolated log barrier: -mu*ln(-c) while c ≤ -mu,
	// and the C¹ quadratic continuation beyond.
	psi := func(c, mu float64) float64 {
		if c <= -mu {
			return -mu * math.Log(-c)
		}
		// Value and slope matched at c = -mu: value -mu*ln(mu), slope 1.
		d := c + mu
		return -mu*math.Log(mu) + d + d*d/(2*mu)
	}
	// psiPrime is dψ/dc: -mu/c on the log branch, the matched linear slope
	// on the quadratic continuation.
	psiPrime := func(c, mu float64) float64 {
		if c <= -mu {
			return -mu / c
		}
		return 1 + (c+mu)/mu
	}

	// Barrier objective in scaled space.
	const edge = 1e-9
	barrier := func(z []float64, mu float64) float64 {
		x := toX(z)
		*(&evals)++
		f := p.F(x)
		if math.IsNaN(f) || f >= Infeasible || math.IsInf(f, 1) {
			return Infeasible
		}
		for i := range p.Cons {
			evals++
			f += psi(p.Cons[i](x), mu)
		}
		for i := 0; i < n; i++ {
			f += psi(edge-z[i], mu) + psi(z[i]-1+edge, mu)
		}
		if math.IsNaN(f) || f > Infeasible {
			return Infeasible
		}
		return f
	}

	gradEvals := 0
	// gradAnalytic assembles the exact barrier gradient from Options.Grad
	// and Options.ConsGrad: ∇φ_z = span∘(∇F + Σψ'(c_i)∇c_i) plus the box
	// barrier terms, which are analytic by construction. It returns nil —
	// sending the caller back to finite differences — when any piece is
	// unavailable or declines: a half-analytic composite would drift
	// against the finite-difference pieces and wreck the BFGS pairs.
	gradAnalytic := func(zz []float64, mu float64) []float64 {
		if opts.Grad == nil {
			return nil
		}
		x := toX(zz)
		gx := opts.Grad(x)
		if gx == nil {
			return nil
		}
		gradEvals++
		g := scaleToZ(gx, span, p)
		for i := range p.Cons {
			var gc []float64
			if i < len(opts.ConsGrad) && opts.ConsGrad[i] != nil {
				gc = opts.ConsGrad[i](x)
			}
			if gc == nil {
				return nil
			}
			gradEvals++
			dpsi := psiPrime(p.evalCons(i, x, &evals), mu)
			for j := 0; j < n; j++ {
				if p.pinned(j) {
					continue
				}
				g[j] += dpsi * gc[j] * span[j]
			}
		}
		for i := 0; i < n; i++ {
			if p.pinned(i) {
				g[i] = 0
				continue
			}
			g[i] += -psiPrime(edge-zz[i], mu) + psiPrime(zz[i]-1+edge, mu)
		}
		return g
	}

	// minStep is the scaled-space finite-difference floor that keeps the
	// two probes on distinct keys of a 1e-9-quantized evaluation cache
	// (see quantRelStep).
	minStep := scaledGradMinStep(p, span)
	grad := func(z []float64, mu float64, f0 float64) []float64 {
		if g := gradAnalytic(z, mu); g != nil {
			return g
		}
		g := make([]float64, n)
		h := opts.fdStep()
		zp := make([]float64, n)
		copy(zp, z)
		for i := 0; i < n; i++ {
			if p.pinned(i) {
				continue // pinned axis: the derivative along it is zero
			}
			step := math.Max(math.Max(h, 1e-9), minStep[i])
			zp[i] = z[i] + step
			fHi := barrier(zp, mu)
			zp[i] = z[i] - step
			fLo := barrier(zp, mu)
			zp[i] = z[i]
			switch {
			case fHi < Infeasible && fLo < Infeasible:
				g[i] = (fHi - fLo) / (2 * step)
			case fHi < Infeasible:
				g[i] = (fHi - f0) / step
			case fLo < Infeasible:
				g[i] = (f0 - fLo) / step
			}
		}
		return g
	}

	report := Report{X: toX(z)}
	tol := opts.tol()
	totalIter := 0

	// stationary records whether the most recent barrier subproblem ended
	// at (approximate) stationarity — line search exhausted at the current
	// iterate, or a sub-tolerance step — rather than by running out of its
	// inner budget. Convergence of the whole method is the stationarity of
	// the final subproblem; it is NOT claimed unconditionally.
	stationary := false

	mu := 1.0
outer:
	for outerIt := 0; outerIt < 12 && mu > 1e-8; outerIt++ {
		bmat := identity(n)
		f := barrier(z, mu)
		g := grad(z, mu, f)
		stationary = false
		for inner := 0; inner < opts.maxIter()/4+10; inner++ {
			if opts.cancelled() {
				report.Stopped = StopCancelled
				break outer
			}
			totalIter++
			// Newton-like direction from the BFGS model.
			lu, err := sparse.NewLU(bmat)
			var d []float64
			if err == nil {
				rhs := make([]float64, n)
				for i := range rhs {
					rhs[i] = -g[i]
				}
				d, err = lu.Solve(rhs)
			}
			if err != nil || dot(d, g) >= 0 {
				d = make([]float64, n)
				for i := range d {
					d[i] = -g[i]
				}
			}
			// Backtracking with an Armijo sufficient-decrease test. A bare
			// simple-decrease escape (`|| fNew < f`) would accept the very
			// first trial whenever it improves at all, making the test
			// vacuous; simple decrease is tolerated only as a last resort
			// once α has bottomed out, so ill-scaled barrier valleys can
			// still be crept along.
			alpha := 1.0
			var zNew []float64
			var fNew float64
			for alpha >= 1e-10 {
				cand := make([]float64, n)
				for i := range cand {
					cand[i] = math.Min(uz[i], math.Max(0, z[i]+alpha*d[i]))
				}
				fNew = barrier(cand, mu)
				armijo := fNew < f-1e-6*alpha*math.Abs(dot(g, d))
				lastResort := alpha < 1e-8 && fNew < f
				if armijo || lastResort {
					zNew = cand
					break
				}
				alpha /= 2
			}
			if zNew == nil {
				stationary = true
				break // stationary for this barrier parameter
			}
			gNew := grad(zNew, mu, fNew)
			s := make([]float64, n)
			y := make([]float64, n)
			var stepInf float64
			for i := 0; i < n; i++ {
				s[i] = zNew[i] - z[i]
				y[i] = gNew[i] - g[i]
				stepInf = math.Max(stepInf, math.Abs(s[i]))
			}
			bfgsUpdate(bmat, s, y)
			z, f, g = zNew, fNew, gNew

			opts.trace(TraceRecord{
				Method: "interior", Iter: totalIter,
				X: toX(z), F: f,
				MaxViolation: math.NaN(), StepNorm: stepInf, Alpha: alpha,
			})

			if opts.StopWhen != nil {
				x := toX(z)
				fv := p.eval(x, &evals)
				if opts.StopWhen(x, fv) {
					report.X = x
					report.F = fv
					report.EarlyStopped = true
					report.Stopped = StopEarlyStopped
					report.Iterations = totalIter
					report.MaxViolation = p.maxViolation(x, &evals)
					report.FuncEvals = evals
					report.GradEvals = gradEvals
					return report, nil
				}
			}
			if stepInf < tol {
				stationary = true
				break
			}
		}
		mu /= 6
	}

	report.Iterations = totalIter
	report.X = toX(z)
	report.F = p.eval(report.X, &evals)
	report.MaxViolation = p.maxViolation(report.X, &evals)
	if report.Stopped != StopCancelled {
		// Converged only when the final barrier subproblem actually
		// reached stationarity, not unconditionally.
		report.Converged = stationary
		if stationary {
			report.Stopped = StopConverged
		} else {
			report.Stopped = StopMaxIter
		}
	}
	report.FuncEvals = evals
	report.GradEvals = gradEvals
	return report, nil
}
