package solver

import (
	"math"
)

// HookeJeeves minimizes the problem with classic pattern search (Hooke &
// Jeeves 1961): exploratory moves along each coordinate, followed by an
// accelerating pattern move, halving the mesh on failure. Derivative-free
// like Nelder-Mead but with deterministic axis-aligned probes, which suits
// the box-dominated geometry of the OFTEC problems. Constraints enter
// through a quadratic penalty.
func HookeJeeves(p *Problem, x0 []float64, opts Options) (Report, error) {
	if err := p.Validate(); err != nil {
		return Report{}, err
	}
	n := p.Dim()
	evals := 0

	const penWeight = 1e6
	fpen := func(x []float64) float64 {
		xc := append([]float64(nil), x...)
		p.clampBox(xc)
		f := p.eval(xc, &evals)
		if f >= Infeasible {
			return Infeasible
		}
		for i := range p.Cons {
			if v := p.evalCons(i, xc, &evals); v > 0 {
				f += penWeight * v * v
			}
		}
		if f > Infeasible {
			return Infeasible
		}
		return f
	}

	// Mesh sizes start at 10 % of each variable's range.
	step := make([]float64, n)
	for i := range step {
		step[i] = 0.1 * (p.Upper[i] - p.Lower[i])
		if step[i] == 0 {
			step[i] = 1e-12
		}
	}

	clamp := func(x []float64) {
		p.clampBox(x)
	}

	// explore probes ±step along each axis from base, greedily accepting
	// improvements; it returns the improved point and value.
	explore := func(base []float64, fbase float64) ([]float64, float64) {
		x := append([]float64(nil), base...)
		fx := fbase
		for i := 0; i < n; i++ {
			for _, dir := range []float64{1, -1} {
				cand := append([]float64(nil), x...)
				cand[i] += dir * step[i]
				clamp(cand)
				if fc := fpen(cand); fc < fx {
					x, fx = cand, fc
					break
				}
			}
		}
		return x, fx
	}

	base := append([]float64(nil), x0...)
	clamp(base)
	fbase := fpen(base)

	report := Report{X: base, F: fbase}
	tol := opts.tol()
	maxIter := opts.maxIter() * 4
	for iter := 1; iter <= maxIter; iter++ {
		if opts.cancelled() {
			report.Stopped = StopCancelled
			break
		}
		report.Iterations = iter
		trial, ftrial := explore(base, fbase)
		if ftrial < fbase {
			// Pattern move: extrapolate along the improvement direction.
			for !opts.cancelled() {
				pattern := make([]float64, n)
				for i := range pattern {
					pattern[i] = trial[i] + (trial[i] - base[i])
				}
				clamp(pattern)
				base, fbase = trial, ftrial
				p2, f2 := explore(pattern, fpen(pattern))
				if f2 < fbase {
					trial, ftrial = p2, f2
					continue
				}
				break
			}
		} else {
			// Shrink the mesh.
			var maxStep float64
			for i := range step {
				step[i] /= 2
				maxStep = math.Max(maxStep, step[i]/(p.Upper[i]-p.Lower[i]+1e-30))
			}
			if maxStep < tol {
				report.Converged = true
				report.Stopped = StopConverged
				break
			}
		}
		report.X = base
		report.F = fbase
		var meshInf float64
		for i := range step {
			meshInf = math.Max(meshInf, step[i]/(p.Upper[i]-p.Lower[i]+1e-30))
		}
		opts.trace(TraceRecord{
			Method: "hooke", Iter: iter,
			X: append([]float64(nil), base...), F: fbase,
			MaxViolation: math.NaN(), StepNorm: meshInf, Alpha: math.NaN(),
		})
		if opts.StopWhen != nil && opts.StopWhen(base, fbase) {
			report.EarlyStopped = true
			report.Stopped = StopEarlyStopped
			break
		}
	}
	if report.Stopped == StopUnset {
		report.Stopped = StopMaxIter
	}

	report.X = base
	report.F = p.eval(base, &evals)
	report.MaxViolation = p.maxViolation(base, &evals)
	report.FuncEvals = evals
	return report, nil
}
