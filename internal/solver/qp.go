package solver

import (
	"fmt"
	"math"

	"oftec/internal/sparse"
)

// qpProblem is the convex quadratic subproblem
//
//	minimize    ½ dᵀB d + gᵀd
//	subject to  A[i]·d ≤ c[i]  for each row i,
//
// with B positive definite. The SQP outer loop builds one per iteration
// from the BFGS Hessian, the objective gradient, and the linearized
// constraints (including box bounds).
type qpProblem struct {
	b [][]float64 // n×n, positive definite
	g []float64   // n
	a [][]float64 // m×n constraint normals
	c []float64   // m right-hand sides
}

// solve finds the exact minimizer by enumerating active sets, which is
// practical and fully robust for the small dimensions OFTEC needs (n = 2,
// m ≤ ~8). It returns the step d and the Lagrange multipliers per
// constraint row (zero for inactive rows).
func (q *qpProblem) solve() (d, lambda []float64, err error) {
	n := len(q.g)
	m := len(q.a)
	if m > 16 {
		return nil, nil, fmt.Errorf("solver: QP active-set enumeration limited to 16 constraints, got %d", m)
	}

	const feasTol = 1e-9
	best := math.Inf(1)
	var bestD, bestLam []float64

	// Enumerate subsets of constraint rows with |S| ≤ n.
	subset := make([]int, 0, n)
	var recurse func(start int)
	try := func() {
		d, lam, ok := q.solveEquality(subset)
		if !ok {
			return
		}
		// Multipliers of active constraints must be non-negative.
		for _, l := range lam {
			if l < -1e-8 {
				return
			}
		}
		// All constraints must be satisfied.
		for i := 0; i < m; i++ {
			if dotRow(q.a[i], d) > q.c[i]+feasTol*(1+math.Abs(q.c[i])) {
				return
			}
		}
		obj := q.objective(d)
		if obj < best-1e-12 {
			best = obj
			bestD = d
			bestLam = make([]float64, m)
			for k, row := range subset {
				bestLam[row] = lam[k]
			}
		}
	}
	recurse = func(start int) {
		try()
		if len(subset) == n {
			return
		}
		for i := start; i < m; i++ {
			subset = append(subset, i)
			recurse(i + 1)
			subset = subset[:len(subset)-1]
		}
	}
	recurse(0)

	if bestD == nil {
		return nil, nil, fmt.Errorf("solver: QP subproblem has no feasible active-set solution (inconsistent linearization)")
	}
	return bestD, bestLam, nil
}

// solveEquality solves the KKT system for the active set S:
//
//	[ B   A_Sᵀ ] [d]   [−g ]
//	[ A_S  0   ] [λ] = [c_S]
func (q *qpProblem) solveEquality(s []int) (d, lam []float64, ok bool) {
	n := len(q.g)
	k := len(s)
	size := n + k
	kkt := make([][]float64, size)
	for i := range kkt {
		kkt[i] = make([]float64, size)
	}
	rhs := make([]float64, size)
	for i := 0; i < n; i++ {
		copy(kkt[i][:n], q.b[i])
		rhs[i] = -q.g[i]
	}
	for j, row := range s {
		for i := 0; i < n; i++ {
			kkt[i][n+j] = q.a[row][i]
			kkt[n+j][i] = q.a[row][i]
		}
		rhs[n+j] = q.c[row]
	}
	f, err := sparse.NewLU(kkt)
	if err != nil {
		return nil, nil, false
	}
	sol, err := f.Solve(rhs)
	if err != nil {
		return nil, nil, false
	}
	for _, v := range sol {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, nil, false
		}
	}
	return sol[:n], sol[n:], true
}

func (q *qpProblem) objective(d []float64) float64 {
	n := len(d)
	var quad float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			quad += d[i] * q.b[i][j] * d[j]
		}
	}
	return 0.5*quad + dot(q.g, d)
}

func dotRow(row, d []float64) float64 { return dot(row, d) }
