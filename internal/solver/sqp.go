package solver

import (
	"math"
)

// ActiveSetSQP minimizes the problem with an active-set sequential
// quadratic programming method (the technique the paper found best for
// OFTEC in both quality and speed, Section 5.2): at each iterate the KKT
// conditions are approximated by a convex QP built from a damped-BFGS
// Hessian of the Lagrangian and linearized constraints; the QP is solved
// exactly (active-set enumeration), and an ℓ1-merit backtracking line
// search globalizes the step.
//
// Internally the variables are scaled to the unit box so tolerances and
// curvature estimates are comparable across variables with very different
// ranges (ω spans hundreds of rad/s, I_TEC a few amperes).
func ActiveSetSQP(p *Problem, x0 []float64, opts Options) (Report, error) {
	if err := p.Validate(); err != nil {
		return Report{}, err
	}
	n := p.Dim()
	evals := 0

	// Variable scaling to the unit box.
	span := make([]float64, n)
	for i := range span {
		span[i] = p.Upper[i] - p.Lower[i]
		if span[i] == 0 {
			span[i] = 1 // pinned variable
		}
	}
	toX := func(z []float64) []float64 {
		x := make([]float64, n)
		for i := range x {
			x[i] = p.Lower[i] + z[i]*span[i]
		}
		p.clampBox(x)
		return x
	}
	scaled := &Problem{
		F:           func(z []float64) float64 { return p.F(toX(z)) },
		Lower:       make([]float64, n),
		Upper:       make([]float64, n),
		GradMinStep: scaledGradMinStep(p, span),
	}
	for i := 0; i < n; i++ {
		scaled.Upper[i] = 1
		if p.pinned(i) {
			// Propagate pinned bounds so the scaled problem is exactly the
			// lower-dimensional one: the QP box rows pin d_i = 0 and the
			// finite-difference gradient skips the frozen axis.
			scaled.Upper[i] = 0
		}
	}
	for _, c := range p.Cons {
		c := c
		scaled.Cons = append(scaled.Cons, func(z []float64) float64 { return c(toX(z)) })
	}

	z := make([]float64, n)
	for i := range z {
		zi := (x0[i] - p.Lower[i]) / span[i]
		z[i] = math.Min(scaled.Upper[i], math.Max(0, zi))
	}

	gradEvals := 0
	// gradObj and gradCons produce scaled-space derivatives: analytic via
	// Options.Grad/ConsGrad chain-ruled through the scaling when available
	// (and not declined), central differences otherwise.
	gradObj := func(zz []float64, fzz float64) []float64 {
		if opts.Grad != nil {
			if gx := opts.Grad(toX(zz)); gx != nil {
				gradEvals++
				return scaleToZ(gx, span, p)
			}
		}
		return scaled.gradient(scaled.F, zz, fzz, opts.fdStep(), &evals)
	}
	gradCons := func(i int, zz []float64, cvv float64) []float64 {
		if i < len(opts.ConsGrad) && opts.ConsGrad[i] != nil {
			if gx := opts.ConsGrad[i](toX(zz)); gx != nil {
				gradEvals++
				return scaleToZ(gx, span, p)
			}
		}
		return scaled.gradient(scaled.Cons[i], zz, cvv, opts.fdStep(), &evals)
	}

	fz := scaled.eval(z, &evals)
	report := Report{X: toX(z), F: fz, Iterations: 0}
	finish := func() (Report, error) {
		report.MaxViolation = p.maxViolation(report.X, &evals)
		report.FuncEvals = evals
		report.GradEvals = gradEvals
		return report, nil
	}
	if opts.cancelled() {
		report.Stopped = StopCancelled
		return finish()
	}

	g := gradObj(z, fz)
	m := len(scaled.Cons)
	cv := make([]float64, m)
	ca := make([][]float64, m)
	for i := 0; i < m; i++ {
		cv[i] = scaled.evalCons(i, z, &evals)
		ca[i] = gradCons(i, z, cv[i])
	}

	bmat := identity(n)
	mu := 10.0
	tol := opts.tol()

	// merit evaluates the objective and each constraint at zz exactly
	// once, storing the raw constraint values into cons (len m) and
	// returning the objective and the ℓ1 violation sum. One trial step
	// therefore costs 1+m evaluations — the line search below must not
	// re-evaluate constraints it already has.
	merit := func(zz, cons []float64) (float64, float64) {
		f := scaled.eval(zz, &evals)
		var violSum float64
		for i := 0; i < m; i++ {
			v := scaled.evalCons(i, zz, &evals)
			cons[i] = v
			if v > 0 {
				violSum += v
			}
		}
		return f, violSum
	}
	consTrial := make([]float64, m)

	for iter := 1; iter <= opts.maxIter(); iter++ {
		if opts.cancelled() {
			report.Stopped = StopCancelled
			break
		}
		report.Iterations = iter

		// Assemble the QP: rows for linearized constraints and box bounds.
		var rows [][]float64
		var rhs []float64
		for i := 0; i < m; i++ {
			rows = append(rows, ca[i])
			rhs = append(rhs, -cv[i])
		}
		for i := 0; i < n; i++ {
			up := make([]float64, n)
			up[i] = 1
			rows = append(rows, up)
			rhs = append(rhs, scaled.Upper[i]-z[i])
			lo := make([]float64, n)
			lo[i] = -1
			rows = append(rows, lo)
			rhs = append(rhs, z[i])
		}

		var d, lam []float64
		var qpErr error
		// Relax inconsistent linearizations progressively: require only a
		// fraction of each violated constraint to be recovered per step.
		for _, sigma := range []float64{1, 0.5, 0.1, 0} {
			q := &qpProblem{b: bmat, g: g, a: rows, c: append([]float64(nil), rhs...)}
			for i := 0; i < m; i++ {
				if cv[i] > 0 {
					q.c[i] = -sigma * cv[i]
				}
			}
			d, lam, qpErr = q.solve()
			if qpErr == nil {
				break
			}
		}
		if qpErr != nil {
			// Feasibility restoration: steepest descent on the violation.
			d = make([]float64, n)
			for i := 0; i < m; i++ {
				if cv[i] > 0 {
					for j := 0; j < n; j++ {
						d[j] -= ca[i][j]
					}
				}
			}
			if norm2(d) == 0 {
				// Restoration has no direction to offer: stop without a
				// stationarity claim.
				report.Stopped = StopRestored
				break
			}
			lam = make([]float64, len(rows))
		}

		// Penalty parameter: must dominate the multipliers.
		maxLam := 0.0
		for i := 0; i < m; i++ {
			if lam[i] > maxLam {
				maxLam = lam[i]
			}
		}
		if mu < 2*maxLam+1 {
			mu = 2*maxLam + 1
		}

		// ℓ1 merit line search.
		phi0 := fz
		var viol0 float64
		for i := 0; i < m; i++ {
			if cv[i] > 0 {
				viol0 += cv[i]
			}
		}
		phi0 += mu * viol0
		// Directional derivative bound for the Armijo test.
		descent := dot(g, d) - mu*viol0
		if descent > 0 {
			descent = 0
		}

		alpha := 1.0
		var zNew []float64
		var cvNew []float64
		accepted := false
		for alpha >= 1e-9 {
			cand := make([]float64, n)
			for i := range cand {
				cand[i] = z[i] + alpha*d[i]
			}
			scaled.clampBox(cand)
			f, violSum := merit(cand, consTrial)
			phi := f + mu*violSum
			if phi <= phi0+1e-4*alpha*descent && phi < Infeasible {
				zNew = cand
				fz = f
				// The accepted trial's constraint values become the next
				// iterate's cv — re-evaluating them would double-count.
				cvNew = append([]float64(nil), consTrial...)
				accepted = true
				break
			}
			alpha /= 2
		}
		if !accepted {
			// The merit function cannot be decreased along d: declare
			// convergence at the current iterate.
			report.Converged = true
			report.Stopped = StopConverged
			break
		}

		step := 0.0
		for i := range d {
			step = math.Max(step, math.Abs(alpha*d[i]))
		}

		// New derivatives (constraint values carried over from the line
		// search above).
		gNew := gradObj(zNew, fz)
		caNew := make([][]float64, m)
		for i := 0; i < m; i++ {
			caNew[i] = gradCons(i, zNew, cvNew[i])
		}

		// Damped BFGS on the Lagrangian gradient.
		s := make([]float64, n)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			s[i] = zNew[i] - z[i]
			y[i] = gNew[i] - g[i]
			for j := 0; j < m; j++ {
				y[i] += lam[j] * (caNew[j][i] - ca[j][i])
			}
		}
		bfgsUpdate(bmat, s, y)

		z, g, cv, ca = zNew, gNew, cvNew, caNew
		report.X = toX(z)
		report.F = fz

		var worstViol float64
		for i := 0; i < m; i++ {
			if cv[i] > worstViol {
				worstViol = cv[i]
			}
		}
		opts.trace(TraceRecord{
			Method: "sqp", Iter: iter,
			X: append([]float64(nil), report.X...), F: fz,
			MaxViolation: worstViol, StepNorm: step, Alpha: alpha,
		})

		if opts.StopWhen != nil && opts.StopWhen(report.X, fz) {
			report.EarlyStopped = true
			report.Stopped = StopEarlyStopped
			break
		}
		if step < tol {
			report.Converged = true
			report.Stopped = StopConverged
			break
		}
	}
	if report.Stopped == StopUnset {
		report.Stopped = StopMaxIter
	}

	return finish()
}
