// Package testutil provides fault-injection wrappers for solver.Problem,
// used to test that the optimizer layer degrades gracefully when an
// evaluation model starts misbehaving mid-solve (a diverging thermal
// simulation, a NaN from a singular factorization, a wedged external
// process). The wrappers are safe for concurrent use, matching the
// thread-safety contract MultiStart imposes on evaluators.
package testutil

import (
	"math"
	"sync"
	"sync/atomic"

	"oftec/internal/solver"
)

// FaultMode selects how a wrapped evaluation misbehaves once the fault
// triggers.
type FaultMode int

const (
	// FaultFail makes every evaluation return solver.Infeasible, as if
	// the simulation diverged at every operating point.
	FaultFail FaultMode = iota
	// FaultNaN makes every evaluation return NaN, the classic poison
	// value from a failed linear solve.
	FaultNaN
	// FaultHang makes every evaluation block until Release is called.
	// Solvers treat evaluations as black boxes, so a hang is only
	// survivable when the caller bounds the solve from outside (a
	// timeout context plus a goroutine, as the tests do).
	FaultHang
)

// Fault wraps a solver.Problem so that, after the first N evaluations
// (objective and constraint calls counted together), every subsequent
// evaluation misbehaves according to the configured mode. N ≤ 0 faults
// from the very first call.
type Fault struct {
	mode  FaultMode
	after int64
	calls atomic.Int64

	releaseOnce sync.Once
	release     chan struct{}
}

// NewFault wraps p, returning the faulty problem and the Fault handle
// controlling it. The wrapped problem shares p's bounds; its objective
// and constraints delegate to p's until the fault triggers.
func NewFault(p *solver.Problem, mode FaultMode, after int) (*solver.Problem, *Fault) {
	f := &Fault{
		mode:    mode,
		after:   int64(after),
		release: make(chan struct{}),
	}
	wrapped := &solver.Problem{
		F:     f.wrap(p.F),
		Lower: append([]float64(nil), p.Lower...),
		Upper: append([]float64(nil), p.Upper...),
	}
	for _, c := range p.Cons {
		wrapped.Cons = append(wrapped.Cons, f.wrap(c))
	}
	return wrapped, f
}

// Calls reports how many evaluations have been issued against the
// wrapped problem, including faulted ones.
func (f *Fault) Calls() int { return int(f.calls.Load()) }

// Tripped reports whether the fault has triggered.
func (f *Fault) Tripped() bool { return f.calls.Load() > f.after }

// Release unblocks every evaluation currently (and subsequently) parked
// by FaultHang. It is idempotent and a no-op for the other modes.
func (f *Fault) Release() {
	f.releaseOnce.Do(func() { close(f.release) })
}

func (f *Fault) wrap(fn solver.Func) solver.Func {
	return func(x []float64) float64 {
		if f.calls.Add(1) <= f.after {
			return fn(x)
		}
		switch f.mode {
		case FaultNaN:
			return math.NaN()
		case FaultHang:
			<-f.release
			return solver.Infeasible
		default:
			return solver.Infeasible
		}
	}
}
