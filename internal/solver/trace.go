package solver

import (
	"fmt"
	"io"
	"math"
	"strings"
	"sync"
)

// TraceRecord is one per-iteration snapshot emitted through Options.Trace.
// Solvers emit a record after every accepted iterate, so a trace shows how
// the incumbent moved, not every rejected probe.
//
// Fields a method does not track are NaN: the penalty and barrier methods
// do not separate the constraint violation from their merit value, and the
// derivative-free methods have no line-search step size α.
type TraceRecord struct {
	// Method labels the emitting solver ("sqp", "interior", "trust",
	// "hooke", "neldermead"), so mixed streams (Fallback chains,
	// MultiStart launches) stay attributable.
	Method string
	// Iter is the solver's iteration counter at the time of emission.
	Iter int
	// X is the accepted iterate in the original (unscaled) variable
	// space. The slice is a copy; recorders may retain it.
	X []float64
	// F is the objective value the method tracked at X. For the barrier
	// and penalty methods this is their merit value (barrier/penalized
	// objective), which is what their line searches actually monitor.
	F float64
	// MaxViolation is the largest constraint violation at X when the
	// method tracks it per-iteration (SQP), NaN otherwise.
	MaxViolation float64
	// StepNorm is the ∞-norm of the accepted step in the solver's scaled
	// variable space (mesh size for pattern search, simplex size for
	// Nelder-Mead).
	StepNorm float64
	// Alpha is the accepted line-search step size, NaN for methods
	// without a line search.
	Alpha float64
}

// TraceFunc receives per-iteration records. When a solve fans out
// (MultiStart with Workers > 1), the function must be safe for concurrent
// use; TraceRing satisfies that.
type TraceFunc func(TraceRecord)

// TraceRing is the default trace recorder: a fixed-capacity ring buffer
// keeping the most recent records. It is safe for concurrent use.
type TraceRing struct {
	mu    sync.Mutex
	cap   int
	recs  []TraceRecord
	next  int // insertion index once the ring is full
	total int
}

// DefaultTraceCapacity is the ring size NewTraceRing uses for capacity ≤ 0.
const DefaultTraceCapacity = 256

// NewTraceRing returns a ring keeping the last capacity records
// (DefaultTraceCapacity when capacity ≤ 0).
func NewTraceRing(capacity int) *TraceRing {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &TraceRing{cap: capacity}
}

// Record appends one record, evicting the oldest when full. It is the
// TraceFunc to hand to Options.Trace.
func (r *TraceRing) Record(rec TraceRecord) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	if len(r.recs) < r.cap {
		r.recs = append(r.recs, rec)
		return
	}
	r.recs[r.next] = rec
	r.next = (r.next + 1) % r.cap
}

// Records returns the retained records, oldest first.
func (r *TraceRing) Records() []TraceRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TraceRecord, 0, len(r.recs))
	out = append(out, r.recs[r.next:]...)
	out = append(out, r.recs[:r.next]...)
	return out
}

// Total returns how many records were ever recorded, including evicted
// ones.
func (r *TraceRing) Total() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Dump writes the retained records as a human-readable table.
func (r *TraceRing) Dump(w io.Writer) error {
	recs := r.Records()
	if dropped := r.Total() - len(recs); dropped > 0 {
		if _, err := fmt.Fprintf(w, "(%d earlier records evicted from the ring)\n", dropped); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%-10s %5s  %-13s %-10s %-9s %-7s %s\n",
		"method", "iter", "f", "viol", "step", "alpha", "x"); err != nil {
		return err
	}
	for _, rec := range recs {
		var xs []string
		for _, v := range rec.X {
			xs = append(xs, fmt.Sprintf("%.6g", v))
		}
		if _, err := fmt.Fprintf(w, "%-10s %5d  %-13.6e %-10s %-9.2e %-7s [%s]\n",
			rec.Method, rec.Iter, rec.F, naNBlank(rec.MaxViolation, "%.2e"),
			rec.StepNorm, naNBlank(rec.Alpha, "%.3g"), strings.Join(xs, ", ")); err != nil {
			return err
		}
	}
	return nil
}

// naNBlank formats v, rendering the "not tracked" NaN sentinel as "-".
func naNBlank(v float64, format string) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf(format, v)
}
