package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTemperatureConversions(t *testing.T) {
	cases := []struct{ c, k float64 }{
		{0, 273.15},
		{45, 318.15},
		{90, 363.15},
		{-273.15, 0},
	}
	for _, tc := range cases {
		if got := CToK(tc.c); math.Abs(got-tc.k) > 1e-12 {
			t.Errorf("CToK(%g) = %g, want %g", tc.c, got, tc.k)
		}
		if got := KToC(tc.k); math.Abs(got-tc.c) > 1e-12 {
			t.Errorf("KToC(%g) = %g, want %g", tc.k, got, tc.c)
		}
	}
}

func TestFanSpeedConversions(t *testing.T) {
	// The paper equates 5000 RPM with 524 rad/s (rounded).
	if got := RPMToRadPerSec(5000); math.Abs(got-523.5987) > 1e-3 {
		t.Errorf("RPMToRadPerSec(5000) = %g, want ≈523.6", got)
	}
	if got := RadPerSecToRPM(524); math.Abs(got-5003.8) > 0.1 {
		t.Errorf("RadPerSecToRPM(524) = %g, want ≈5003.8", got)
	}
}

func TestLengthHelpers(t *testing.T) {
	if got := MM(15.9); math.Abs(got-0.0159) > 1e-15 {
		t.Errorf("MM(15.9) = %g", got)
	}
	if got := Micron(20); math.Abs(got-20e-6) > 1e-18 {
		t.Errorf("Micron(20) = %g", got)
	}
}

func TestConversionRoundTripProperty(t *testing.T) {
	f := func(v float64) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
			return true
		}
		tol := 1e-9 * (1 + math.Abs(v))
		return math.Abs(KToC(CToK(v))-v) < tol &&
			math.Abs(RadPerSecToRPM(RPMToRadPerSec(v))-v) < tol
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestApproxEqual(t *testing.T) {
	if !ApproxEqual(1.0, 1.0+1e-12, 1e-9) {
		t.Error("nearly-equal values reported unequal")
	}
	if ApproxEqual(1.0, 1.1, 1e-9) {
		t.Error("clearly different values reported equal")
	}
	if !ApproxEqual(1e12, 1e12+1, 1e-9) {
		t.Error("relative tolerance not applied for large magnitudes")
	}
	if !ApproxEqual(0, 0, 1e-15) {
		t.Error("zero should equal zero")
	}
}

func TestClamp(t *testing.T) {
	if got := Clamp(5, 0, 1); got != 1 {
		t.Errorf("Clamp(5,0,1) = %g", got)
	}
	if got := Clamp(-5, 0, 1); got != 0 {
		t.Errorf("Clamp(-5,0,1) = %g", got)
	}
	if got := Clamp(0.5, 0, 1); got != 0.5 {
		t.Errorf("Clamp(0.5,0,1) = %g", got)
	}
}
