// Package units provides physical constants, unit conversions, and numeric
// tolerances shared by the thermal and optimization packages.
//
// All internal computation uses SI units: kelvin for temperature, watts for
// power, rad/s for angular speed, meters for length, W/K for thermal
// conductance. Helpers convert to/from the units the paper reports
// (degrees Celsius, RPM, millimeters).
package units

import "math"

// Physical constants and conversion factors.
const (
	// ZeroCelsius is 0 degrees Celsius expressed in kelvin.
	ZeroCelsius = 273.15

	// RadPerSecPerRPM converts revolutions per minute to radians per second.
	RadPerSecPerRPM = 2 * math.Pi / 60
)

// CToK converts a temperature from degrees Celsius to kelvin.
func CToK(c float64) float64 { return c + ZeroCelsius }

// KToC converts a temperature from kelvin to degrees Celsius.
func KToC(k float64) float64 { return k - ZeroCelsius }

// RPMToRadPerSec converts a fan speed from RPM to rad/s.
func RPMToRadPerSec(rpm float64) float64 { return rpm * RadPerSecPerRPM }

// RadPerSecToRPM converts a fan speed from rad/s to RPM.
func RadPerSecToRPM(w float64) float64 { return w / RadPerSecPerRPM }

// MM converts millimeters to meters.
func MM(mm float64) float64 { return mm * 1e-3 }

// Micron converts micrometers to meters.
func Micron(um float64) float64 { return um * 1e-6 }

// Numeric tolerances used across the repository.
const (
	// EpsTemp is the tolerance (kelvin) used when comparing temperatures.
	EpsTemp = 1e-6

	// EpsPower is the tolerance (watts) used when comparing powers.
	EpsPower = 1e-9

	// EpsGeom is the tolerance (meters) used when comparing geometry.
	EpsGeom = 1e-12
)

// ApproxEqual reports whether a and b differ by no more than tol in
// absolute terms, or by no more than tol relative to the larger magnitude.
func ApproxEqual(a, b, tol float64) bool {
	d := math.Abs(a - b)
	if d <= tol {
		return true
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= tol*m
}

// Clamp returns x restricted to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
