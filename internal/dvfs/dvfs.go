// Package dvfs models dynamic voltage and frequency scaling, the
// performance-degrading thermal-management fallback the paper contrasts
// OFTEC against: infeasible benchmarks "should be further cooled down
// using other thermal management techniques such as reducing the
// voltage/frequency of the chip or throttling different functional units
// which leads to performance degradation" (Section 6.2).
//
// The model is the standard alpha-power one: dynamic power scales as
// f·V², voltage tracks frequency linearly between V_min and V_nom, and
// throughput scales (optimistically for the baseline) linearly with
// frequency. Given a thermal feasibility oracle, the package computes the
// highest feasible frequency — and therefore the performance the fallback
// gives up where OFTEC would not.
package dvfs

import (
	"fmt"
	"math"

	"oftec/internal/power"
)

// OperatingPoint is one DVFS state.
type OperatingPoint struct {
	// FreqScale is the clock frequency relative to nominal, in (0, 1].
	FreqScale float64
	// VoltageScale is the supply voltage relative to nominal.
	VoltageScale float64
}

// Model captures the voltage/frequency relationship of the part.
type Model struct {
	// VMinScale is the lowest usable voltage relative to nominal (the
	// voltage floor below which the part no longer scales). Frequency at
	// the floor is FMinScale.
	VMinScale float64
	// FMinScale is the lowest supported frequency scale, in (0, 1).
	FMinScale float64
}

// Validate reports whether the model is usable.
func (m Model) Validate() error {
	if m.VMinScale <= 0 || m.VMinScale > 1 {
		return fmt.Errorf("dvfs: voltage floor %g outside (0, 1]", m.VMinScale)
	}
	if m.FMinScale <= 0 || m.FMinScale >= 1 {
		return fmt.Errorf("dvfs: frequency floor %g outside (0, 1)", m.FMinScale)
	}
	return nil
}

// Default returns a typical mobile/desktop DVFS range: down to 40 % clock
// at 70 % of nominal voltage.
func Default() Model {
	return Model{VMinScale: 0.70, FMinScale: 0.40}
}

// At returns the operating point for a frequency scale, interpolating the
// voltage linearly between (FMin, VMin) and (1, 1) — the usual published
// V-f curves are close to linear over the DVFS range.
func (m Model) At(freqScale float64) (OperatingPoint, error) {
	if freqScale < m.FMinScale-1e-12 || freqScale > 1+1e-12 {
		return OperatingPoint{}, fmt.Errorf("dvfs: frequency scale %g outside [%g, 1]", freqScale, m.FMinScale)
	}
	t := (freqScale - m.FMinScale) / (1 - m.FMinScale)
	return OperatingPoint{
		FreqScale:    freqScale,
		VoltageScale: m.VMinScale + t*(1-m.VMinScale),
	}, nil
}

// PowerScale returns the dynamic-power multiplier at an operating point:
// P_dyn ∝ f·V².
func (p OperatingPoint) PowerScale() float64 {
	return p.FreqScale * p.VoltageScale * p.VoltageScale
}

// ThroughputScale returns the relative performance at the operating point
// (linear in frequency — generous to the DVFS baseline, since real
// workloads rarely scale perfectly).
func (p OperatingPoint) ThroughputScale() float64 { return p.FreqScale }

// ScaleMap applies the operating point's power multiplier to a per-unit
// dynamic power map.
func (p OperatingPoint) ScaleMap(m power.Map) power.Map {
	return m.Scale(p.PowerScale())
}

// FeasibleFunc reports whether the chip is thermally manageable when the
// dynamic power map is scaled by the given DVFS operating point.
type FeasibleFunc func(OperatingPoint) (bool, error)

// MaxFeasibleFrequency finds the highest frequency scale whose power is
// thermally feasible, by bisection over [FMinScale, 1] to the given
// resolution (e.g. 0.01 for 1 % frequency steps). It returns ok=false when
// even the frequency floor is infeasible. Feasibility must be monotone in
// frequency (more power is never easier to cool), which holds for the
// thermal model in this repository.
func (m Model) MaxFeasibleFrequency(feasible FeasibleFunc, resolution float64) (OperatingPoint, bool, error) {
	if err := m.Validate(); err != nil {
		return OperatingPoint{}, false, err
	}
	if resolution <= 0 || resolution >= 1 {
		return OperatingPoint{}, false, fmt.Errorf("dvfs: resolution %g outside (0, 1)", resolution)
	}

	at := func(f float64) (OperatingPoint, bool, error) {
		op, err := m.At(f)
		if err != nil {
			return OperatingPoint{}, false, err
		}
		ok, err := feasible(op)
		return op, ok, err
	}

	// Fast path: full speed works.
	top, ok, err := at(1)
	if err != nil {
		return OperatingPoint{}, false, err
	}
	if ok {
		return top, true, nil
	}
	// Floor check.
	bottom, ok, err := at(m.FMinScale)
	if err != nil {
		return OperatingPoint{}, false, err
	}
	if !ok {
		return bottom, false, nil
	}
	// Bisect the feasibility boundary.
	lo, hi := m.FMinScale, 1.0
	for hi-lo > resolution {
		mid := (lo + hi) / 2
		_, ok, err := at(mid)
		if err != nil {
			return OperatingPoint{}, false, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	op, err := m.At(lo)
	return op, true, err
}

// PerformanceLoss returns the throughput sacrificed at the operating
// point, as a fraction in [0, 1).
func (p OperatingPoint) PerformanceLoss() float64 {
	return math.Max(0, 1-p.ThroughputScale())
}
