package dvfs

import (
	"math"
	"testing"
	"testing/quick"

	"oftec/internal/power"
)

func TestValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Model{
		{VMinScale: 0, FMinScale: 0.4},
		{VMinScale: 1.2, FMinScale: 0.4},
		{VMinScale: 0.7, FMinScale: 0},
		{VMinScale: 0.7, FMinScale: 1},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestAtEndpoints(t *testing.T) {
	m := Default()
	nom, err := m.At(1)
	if err != nil {
		t.Fatal(err)
	}
	if nom.VoltageScale != 1 || nom.PowerScale() != 1 || nom.ThroughputScale() != 1 {
		t.Errorf("nominal point not identity: %+v", nom)
	}
	floor, err := m.At(m.FMinScale)
	if err != nil {
		t.Fatal(err)
	}
	if floor.VoltageScale != m.VMinScale {
		t.Errorf("floor voltage %g, want %g", floor.VoltageScale, m.VMinScale)
	}
	// P(floor) = f·V² = 0.4·0.49 = 0.196.
	if math.Abs(floor.PowerScale()-0.4*0.7*0.7) > 1e-12 {
		t.Errorf("floor power scale %g", floor.PowerScale())
	}
	if _, err := m.At(0.2); err == nil {
		t.Error("below-floor frequency accepted")
	}
	if _, err := m.At(1.5); err == nil {
		t.Error("above-nominal frequency accepted")
	}
}

// Property: power scale is strictly increasing in frequency and cubic-ish:
// between f³ (if V∝f exactly) and f (if voltage were flat).
func TestPowerScaleMonotoneProperty(t *testing.T) {
	m := Default()
	f := func(raw uint8) bool {
		f1 := m.FMinScale + (1-m.FMinScale)*float64(raw)/255
		f2 := math.Min(1, f1+0.05)
		p1, err1 := m.At(f1)
		p2, err2 := m.At(f2)
		if err1 != nil || err2 != nil {
			return false
		}
		if f2 > f1 && p2.PowerScale() <= p1.PowerScale() {
			return false
		}
		ps := p1.PowerScale()
		return ps <= p1.FreqScale+1e-12 && ps >= math.Pow(p1.FreqScale, 3)-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestScaleMap(t *testing.T) {
	m := Default()
	op, err := m.At(0.7)
	if err != nil {
		t.Fatal(err)
	}
	in := power.Map{"a": 10, "b": 4}
	out := op.ScaleMap(in)
	want := op.PowerScale()
	if math.Abs(out["a"]-10*want) > 1e-12 || math.Abs(out["b"]-4*want) > 1e-12 {
		t.Errorf("ScaleMap = %v", out)
	}
	if in["a"] != 10 {
		t.Error("input map mutated")
	}
}

func TestMaxFeasibleFrequencyBisection(t *testing.T) {
	m := Default()
	// Feasible iff power scale ≤ 0.6 → boundary at f where f·V(f)² = 0.6.
	oracle := func(op OperatingPoint) (bool, error) {
		return op.PowerScale() <= 0.6, nil
	}
	op, ok, err := m.MaxFeasibleFrequency(oracle, 0.002)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("feasible problem reported hopeless")
	}
	if op.PowerScale() > 0.6+1e-9 {
		t.Errorf("returned point infeasible: power scale %g", op.PowerScale())
	}
	// Must be within resolution of the true boundary.
	higher, err := m.At(math.Min(1, op.FreqScale+0.01))
	if err != nil {
		t.Fatal(err)
	}
	if higher.PowerScale() <= 0.6 && higher.FreqScale > op.FreqScale {
		t.Errorf("left %g of headroom on the table", higher.FreqScale-op.FreqScale)
	}
}

func TestMaxFeasibleFrequencyEdges(t *testing.T) {
	m := Default()
	always := func(op OperatingPoint) (bool, error) { return true, nil }
	never := func(op OperatingPoint) (bool, error) { return false, nil }

	op, ok, err := m.MaxFeasibleFrequency(always, 0.01)
	if err != nil || !ok || op.FreqScale != 1 {
		t.Errorf("always-feasible: %+v %v %v", op, ok, err)
	}
	_, ok, err = m.MaxFeasibleFrequency(never, 0.01)
	if err != nil || ok {
		t.Errorf("never-feasible reported ok=%v err=%v", ok, err)
	}
	if _, _, err := m.MaxFeasibleFrequency(always, 0); err == nil {
		t.Error("zero resolution accepted")
	}
}

func TestPerformanceLoss(t *testing.T) {
	m := Default()
	op, err := m.At(0.75)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(op.PerformanceLoss()-0.25) > 1e-12 {
		t.Errorf("loss = %g, want 0.25", op.PerformanceLoss())
	}
}
