package core

import (
	"context"
	"fmt"
	"time"

	"oftec/internal/backend"
	"oftec/internal/evalcache"
	"oftec/internal/parallel"
	"oftec/internal/solver"
	"oftec/internal/thermal"
	"oftec/internal/units"
)

// Options configures a controller run.
type Options struct {
	// Mode restricts the decision space (OFTEC vs. the baselines).
	Mode Mode
	// Method selects the NLP technique; the zero value is the paper's
	// active-set SQP.
	Method Method
	// Backend names the evaluation backend for this run ("full", "rom");
	// empty uses the backend the System was built on. Named backends are
	// resolved through the backend's Selector capability and share the
	// System's evaluation cache (in their own key space).
	Backend string
	// FixedOmega is the pinned fan speed for ModeFixedFan, in rad/s. Zero
	// selects the paper's 2000 RPM.
	FixedOmega float64
	// Solver tunes the underlying NLP solver.
	Solver solver.Options
	// SkipOpt1 stops after the feasibility phase (pure Optimization 2,
	// used to generate Figure 6(c)/(d)).
	SkipOpt1 bool
	// VerifyExact re-evaluates the final operating point with the exact
	// exponential leakage model and reports it in Outcome.ExactResult.
	// Scalar (single-zone) runs only; zoned runs ignore it.
	VerifyExact bool
	// ConstraintMargin backs the optimizer's constraint off the strict
	// threshold: the solver enforces T ≤ T_max − margin so the returned
	// point satisfies the paper's strict T < T_max. Zero selects 0.05 K.
	ConstraintMargin float64
	// MultiStart additionally launches Optimization 1 from the domain
	// corners (center start remains first), guarding against the "minor
	// non-convexities" the paper observes in Figure 6. Costs roughly 5×
	// the solver time.
	MultiStart bool
	// TMax overrides the thermal threshold (kelvin) for this run; zero
	// uses the model configuration's T_max. Pareto sweeps use this to
	// trace the power/temperature trade-off.
	TMax float64
	// Workers bounds the parallel fan-out of the sweep-style drivers
	// built on the (thread-safe) evaluation cache: ParetoFront's
	// threshold probe and the MultiStart corner launch. Zero sizes the
	// pool to GOMAXPROCS; one forces the serial reference path. Results
	// are identical either way.
	Workers int
	// Gradient steers the gradient-based solver methods with exact adjoint
	// gradients from the backend (see backend.GradientOf) instead of
	// finite differences, collapsing the 2(1+k) probe evaluations per
	// derivative into one adjoint pair on the already-factored system. The
	// thermal objective and constraint switch to the log-sum-exp smoothed
	// maximum 𝒯_τ the adjoint differentiates — an over-estimate of the
	// true maximum by at most thermal.DefaultSmoothBound (0.05 K), so
	// feasibility claims stay conservative. Backends without the
	// capability anywhere in their fall-through chain, and the
	// derivative-free methods, silently stay on finite differences; an
	// approximate backend (rom) evaluates the objectives itself but
	// borrows its authoritative sibling's gradients.
	Gradient bool
	// Fallback runs each optimization through the solver fallback chain
	// (selected method first, then SQP → interior point → Hooke-Jeeves
	// with the duplicate removed): when a stage fails to converge to a
	// feasible point, the next method restarts from the best iterate so
	// far. Off by default so the paper's method-vs-method comparisons
	// measure one technique at a time; reports then aggregate evaluation
	// counts across every stage that ran.
	Fallback bool
	// WarmStart threads each converged temperature field into the next
	// solve as the iterative solver's starting point. Line searches probe
	// nearby operating points, so warm starts cut the CG iteration count
	// of every cache miss. The hint only steers the solver — each point's
	// answer still agrees with the cold path to solver tolerance — but
	// solutions are no longer bit-identical to a cold-started run, so the
	// option defaults to off and determinism-sensitive comparisons should
	// leave it off.
	WarmStart bool
}

func (o Options) tMax(cfg thermal.Config) float64 {
	if o.TMax > 0 {
		return o.TMax
	}
	return cfg.TMax
}

func (o Options) margin() float64 {
	if o.ConstraintMargin > 0 {
		return o.ConstraintMargin
	}
	return 0.05
}

func (o Options) fixedOmega() float64 {
	if o.FixedOmega != 0 {
		return o.FixedOmega
	}
	return units.RPMToRadPerSec(2000)
}

// Outcome reports one controller run.
type Outcome struct {
	// Mode and Method echo the configuration.
	Mode   Mode
	Method Method

	// Omega and ITEC are the chosen operating point (ω*, I*_TEC).
	Omega, ITEC float64
	// Result is the steady state at the operating point (linearized
	// leakage), computed by the authoritative end of the backend chain —
	// an approximate backend never certifies its own result.
	Result *thermal.Result
	// ExactResult is the steady state under exact exponential leakage
	// (only when Options.VerifyExact).
	ExactResult *thermal.Result

	// Feasible reports whether the thermal constraint is met at the
	// operating point. A false value with FailedAtOpt2 set is Algorithm
	// 1's "Return failed" branch.
	Feasible     bool
	FailedAtOpt2 bool

	// MinMaxTemp is the 𝒯 value achieved by the feasibility phase
	// (Optimization 2); for SkipOpt1 runs it equals Result.MaxChipTemp.
	MinMaxTemp float64

	// Opt2Report and Opt1Report expose the raw solver reports.
	Opt2Report, Opt1Report solver.Report

	// Runtime is the wall-clock duration of the full run.
	Runtime time.Duration
}

// CoolingPower returns 𝒫 at the chosen operating point.
func (o *Outcome) CoolingPower() float64 {
	if o.Result == nil {
		return 0
	}
	return o.Result.CoolingPower()
}

// String renders a one-line summary.
func (o *Outcome) String() string {
	status := "feasible"
	if !o.Feasible {
		status = "INFEASIBLE"
		if o.FailedAtOpt2 {
			status = "FAILED (Optimization 2 cannot reach T_max)"
		}
	}
	return fmt.Sprintf("%s/%s: ω*=%.0f RPM I*=%.2f A, %s, %v",
		o.Mode, o.Method, units.RadPerSecToRPM(o.Omega), o.ITEC, status, o.Runtime.Round(time.Millisecond))
}

// vecOutcome is the mode-agnostic result of one Algorithm 1 run in the
// unified decision space x = (ω, I_1..I_k); Run and RunZoned translate it
// into their public outcome types.
type vecOutcome struct {
	x            []float64
	result       *thermal.Result
	exact        *thermal.Result
	feasible     bool
	failedAtOpt2 bool
	minMaxTemp   float64
	opt2, opt1   solver.Report
}

// Run executes Algorithm 1 (OFTEC):
//
//  1. Start from (ω_max/2, I_max/2) — the middle of the plane, where
//     Figure 6(a) locates the 𝒯 surface's basin.
//  2. If 𝒯 at the start exceeds T_max, solve Optimization 2 (minimize the
//     maximum chip temperature), stopping as soon as 𝒯 < T_max.
//  3. If even the minimized 𝒯 exceeds T_max, return failed.
//  4. Otherwise solve Optimization 1 (minimize 𝒫 subject to T < T_max)
//     from the feasible point and return (ω*, I*_TEC).
//
// Baseline modes run the same algorithm in their restricted decision
// spaces; RunZoned runs it over one current per zone. Options.Backend
// selects the evaluation backend for the optimization's inner loop.
func (s *System) Run(opts Options) (*Outcome, error) {
	start := time.Now()
	sel, err := s.binding(opts.Backend)
	if err != nil {
		return nil, err
	}
	v, err := s.runVector(sel.bnd, 1, opts)
	if err != nil {
		return nil, err
	}
	out := &Outcome{
		Mode:         opts.Mode,
		Method:       opts.Method,
		Omega:        v.x[0],
		ITEC:         v.x[1],
		Result:       v.result,
		ExactResult:  v.exact,
		Feasible:     v.feasible,
		FailedAtOpt2: v.failedAtOpt2,
		MinMaxTemp:   v.minMaxTemp,
		Opt2Report:   v.opt2,
		Opt1Report:   v.opt1,
		Runtime:      time.Since(start),
	}
	return out, nil
}

// runVector is Algorithm 1 over the unified decision vector x =
// (ω, I_1..I_k): the k = 1 case is the paper's scalar deployment, k > 1
// the zoned generalization. Both phases evaluate through bnd (the cached
// backend); the final point is certified by the authoritative end of the
// backend chain in finishVector.
func (s *System) runVector(bnd *evalcache.Binding, k int, opts Options) (*vecOutcome, error) {
	cfg := s.ev.Config()

	lower, upper, err := s.bounds(opts.Mode, opts.fixedOmega(), k)
	if err != nil {
		return nil, err
	}
	out := &vecOutcome{}

	// Line 1: initial point at the middle of the (restricted) domain.
	x0 := make([]float64, 1+k)
	for i := range x0 {
		x0[i] = (lower[i] + upper[i]) / 2
	}

	tMaxSolve := opts.tMax(cfg) - opts.margin()
	eval := bindingEval(bnd)
	if opts.WarmStart {
		eval = (&warmCarry{bnd: bnd}).evaluate
	}
	tempObj := func(x []float64) float64 { return maxTempObj(eval, x) }
	tempCons := func(x []float64) float64 { return maxTempObj(eval, x) - tMaxSolve }
	powerObj := func(x []float64) float64 { return coolingPowerObj(eval, x) }

	// Gradient mode: when the binding's backend chain offers adjoint
	// gradients, install them on the solver options and align the thermal
	// objective/constraint with the smoothed maximum the adjoint
	// differentiates.
	var gm *gradMemo
	if opts.Gradient {
		if ge, ok := backend.GradientOf(bnd); ok {
			gm = newGradMemo(ge)
			tempObj = func(x []float64) float64 { return smoothTempObj(eval, x) }
			tempCons = func(x []float64) float64 { return smoothTempObj(eval, x) - tMaxSolve }
		}
	}

	// Both phases solve through one runner: the bare method, or the
	// fallback chain when requested. MultiStart composes by running the
	// chain from each start.
	solve := solver.Runner(opts.Method.run)
	if opts.Fallback {
		chain := opts.Method.fallbackChain()
		solve = func(p *solver.Problem, x0 []float64, so solver.Options) (solver.Report, error) {
			return solver.Fallback(chain, p, x0, so)
		}
	}

	// Lines 2-5: feasibility phase (Optimization 2). When SkipOpt1 is set
	// (MinimizeMaxTemp), Optimization 2 is solved unconditionally and to
	// convergence; inside Algorithm 1 it only runs when the starting point
	// is infeasible, and stops early as soon as 𝒯 < T_max.
	x1 := x0
	t1 := tempObj(x0)
	if t1 > tMaxSolve || opts.SkipOpt1 {
		p2 := &solver.Problem{F: tempObj, Lower: lower, Upper: upper}
		o2 := opts.Solver
		if gm != nil {
			o2.Grad = gm.tempGrad
		}
		if !opts.SkipOpt1 {
			// Algorithm 1 line 3: stop Optimization 2 early once feasible.
			prev := opts.Solver.StopWhen
			o2.StopWhen = func(x []float64, f float64) bool {
				if f < tMaxSolve {
					return true
				}
				return prev != nil && prev(x, f)
			}
		}
		rep, err := solve(p2, x0, o2)
		if err != nil {
			return nil, fmt.Errorf("core: optimization 2 failed: %w", err)
		}
		out.opt2 = rep
		if rep.F <= t1 {
			x1 = rep.X
			t1 = rep.F
		}
	}
	out.minMaxTemp = t1

	if t1 > tMaxSolve {
		// Line 5: no solution.
		out.failedAtOpt2 = true
		out.x = x1
		if err := s.finishVector(bnd, out, opts); err != nil {
			return nil, err
		}
		return out, nil
	}

	if opts.SkipOpt1 {
		out.x = x1
		if err := s.finishVector(bnd, out, opts); err != nil {
			return nil, err
		}
		return out, nil
	}

	// Line 6: Optimization 1 from the feasible start.
	p1 := &solver.Problem{
		F:     powerObj,
		Cons:  []solver.Func{tempCons},
		Lower: lower,
		Upper: upper,
	}
	so1 := opts.Solver
	if gm != nil {
		so1.Grad = gm.powerGrad
		so1.ConsGrad = []solver.GradFunc{gm.tempGrad}
	}
	var rep solver.Report
	if opts.MultiStart {
		starts, serr := solver.CornerStarts(p1, 0.05)
		if serr != nil {
			return nil, fmt.Errorf("core: multistart setup failed: %w", serr)
		}
		// The feasible point from phase 2 leads the list so the plain
		// Algorithm 1 path is always among the candidates.
		starts = append([][]float64{x1}, starts...)
		if so1.Workers == 0 {
			// The cached objectives are safe for concurrent use, so the
			// corner launch fans out unless the caller pinned a width.
			so1.Workers = parallel.Workers(opts.Workers)
		}
		rep, err = solver.MultiStart(solve, p1, starts, so1)
	} else {
		rep, err = solve(p1, x1, so1)
	}
	if err != nil {
		return nil, fmt.Errorf("core: optimization 1 failed: %w", err)
	}
	out.opt1 = rep

	// Guard against a merit-function compromise: if the optimizer ended
	// slightly infeasible, fall back to the feasible point from phase 2.
	if rep.Feasible(1e-6) {
		out.x = rep.X
	} else {
		out.x = x1
	}
	if err := s.finishVector(bnd, out, opts); err != nil {
		return nil, err
	}
	return out, nil
}

// MinimizeMaxTemp solves Optimization 2 to completion (no early stop):
// the minimum achievable peak temperature, Figure 6(c)/(d).
func (s *System) MinimizeMaxTemp(opts Options) (*Outcome, error) {
	opts.SkipOpt1 = true
	// Force the full minimization: Run's early stop only arms when
	// SkipOpt1 is false, so this solves Optimization 2 to convergence.
	return s.Run(opts)
}

// finishVector evaluates the final operating point and fills the outcome.
// The evaluation goes to the authoritative end of the binding's backend
// chain, so a reduced-order backend can steer the search but never
// certify the returned operating point.
func (s *System) finishVector(bnd *evalcache.Binding, out *vecOutcome, opts Options) error {
	op := backend.OpPoint{Omega: out.x[0], Currents: append([]float64(nil), out.x[1:]...)}
	auth := backend.Authoritative(bnd)
	res, err := auth.Evaluate(context.Background(), op, nil)
	if err != nil {
		return err
	}
	out.result = res
	out.feasible = res.MeetsConstraint(opts.tMax(s.ev.Config()))
	if out.failedAtOpt2 {
		out.feasible = false
	}
	if opts.VerifyExact && op.K() == 1 {
		ex, ok := auth.(backend.ExactEvaluator)
		if !ok {
			return fmt.Errorf("core: backend %q cannot verify exactly", auth.Name())
		}
		exact, err := ex.EvaluateExact(op.Omega, op.Currents[0])
		if err != nil {
			return err
		}
		out.exact = exact
	}
	return nil
}
