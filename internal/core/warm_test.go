package core

import (
	"math"
	"testing"
)

// TestEvaluateWarmMatchesCold pins the warm-start contract: the hint only
// steers the iterative solver, so a warm-started solve agrees with the
// cold path to solver tolerance and never changes the runaway verdict.
func TestEvaluateWarmMatchesCold(t *testing.T) {
	cold := benchSystem(t, "CRC32")
	warm := benchSystem(t, "CRC32")

	ref, err := cold.Evaluate(200, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Solve a neighboring point first, then hand its field forward.
	near, err := warm.Evaluate(210, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := warm.EvaluateWarm(200, 1, near.T)
	if err != nil {
		t.Fatal(err)
	}
	if got.Runaway != ref.Runaway {
		t.Fatalf("warm start changed the runaway verdict: %v vs %v", got.Runaway, ref.Runaway)
	}
	if d := math.Abs(got.MaxChipTemp - ref.MaxChipTemp); d > 1e-6 {
		t.Errorf("warm-started Tmax differs from cold by %g K", d)
	}

	// Hits ignore the hint entirely: the cached pointer comes back even
	// with a fresh warm field attached.
	again, err := warm.EvaluateWarm(200, 1, ref.T)
	if err != nil {
		t.Fatal(err)
	}
	if again != got {
		t.Error("cache hit did not return the stored result")
	}
}

// TestWarmStartRunMatchesPlain runs Algorithm 1 with and without
// Options.WarmStart on independent systems and checks the outcomes agree:
// warm starts are a solver accelerator, not a different optimizer.
func TestWarmStartRunMatchesPlain(t *testing.T) {
	plain, err := benchSystem(t, "Basicmath").Run(Options{Mode: ModeHybrid})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := benchSystem(t, "Basicmath").Run(Options{Mode: ModeHybrid, WarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Feasible != plain.Feasible {
		t.Fatalf("feasibility differs: warm %v, plain %v", warm.Feasible, plain.Feasible)
	}
	if d := math.Abs(warm.CoolingPower() - plain.CoolingPower()); d > 0.1 {
		t.Errorf("warm-start 𝒫 differs from plain by %g W", d)
	}
	if d := math.Abs(warm.Result.MaxChipTemp - plain.Result.MaxChipTemp); d > 0.1 {
		t.Errorf("warm-start Tmax differs from plain by %g K", d)
	}
}
