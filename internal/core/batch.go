package core

import (
	"context"

	"oftec/internal/backend"
	"oftec/internal/evalcache"
	"oftec/internal/solver"
	"oftec/internal/thermal"
)

// EvaluateBatchContext evaluates a block of scalar operating points
// through the shared cache in one call: hits and in-batch duplicates are
// classified under one lock, and the unique misses run as blocked
// multi-RHS solves when the backend has the BatchEvaluator capability.
// results[i] corresponds to ops[i]. With batching disabled (SetBatching)
// the points run per-point through the same cache, so the answers are
// the same either way.
func (s *System) EvaluateBatchContext(ctx context.Context, ops []backend.OpPoint, warm []float64) ([]*thermal.Result, error) {
	if !s.batchOff.Load() {
		return s.scalar.EvaluateBatch(ctx, ops, warm)
	}
	out := make([]*thermal.Result, len(ops))
	for i, op := range ops {
		res, err := s.scalar.Evaluate(ctx, op, warm)
		if err != nil {
			return nil, err
		}
		out[i] = res
	}
	return out, nil
}

// SupportsBatch reports whether batched evaluation is active: the
// system's backend has the BatchEvaluator capability and batching has not
// been disabled with SetBatching(false).
func (s *System) SupportsBatch() bool {
	if s.batchOff.Load() {
		return false
	}
	_, ok := s.ev.(backend.BatchEvaluator)
	return ok
}

// SetBatching enables or disables the blocked evaluation paths —
// EvaluateBatchContext's multi-RHS solves and the sweep drivers' batch
// submission. Batching is on by default; disabling it routes every point
// through the per-point path (a debugging and rollback lever, not a
// correctness choice: batched and per-point results are identical).
func (s *System) SetBatching(enabled bool) { s.batchOff.Store(!enabled) }

// primeStartBatch warms the shared cache with the operating points every
// threshold probe of a Pareto sweep evaluates first — the domain center,
// plus the corner starts under MultiStart — submitted as one block, so
// concurrent Runs begin on cache hits instead of racing the singleflight
// and the start points share one assembly per fan speed. Best-effort:
// any failure simply surfaces in the real runs.
func (s *System) primeStartBatch(ctx context.Context, bnd *evalcache.Binding, opts Options, k int) {
	if !s.SupportsBatch() {
		return
	}
	lower, upper, err := s.bounds(opts.Mode, opts.fixedOmega(), k)
	if err != nil {
		return
	}
	center := make([]float64, 1+k)
	for i := range center {
		center[i] = (lower[i] + upper[i]) / 2
	}
	starts := [][]float64{center}
	if opts.MultiStart {
		p := &solver.Problem{
			F:     func([]float64) float64 { return 0 },
			Lower: lower,
			Upper: upper,
		}
		// CornerStarts leads with the center we already have.
		if corners, err := solver.CornerStarts(p, 0.05); err == nil {
			starts = append(starts, corners[1:]...)
		}
	}
	ops := make([]backend.OpPoint, len(starts))
	for i, x := range starts {
		ops[i] = backend.OpPoint{Omega: x[0], Currents: append([]float64(nil), x[1:]...)}
	}
	//lint:ignore errdrop priming is advisory: a failed warm-up just means workers solve cold
	_, _ = bnd.EvaluateBatch(ctx, ops, nil)
}
