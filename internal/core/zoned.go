package core

import (
	"fmt"
	"time"

	"oftec/internal/floorplan"
	"oftec/internal/solver"
	"oftec/internal/thermal"
	"oftec/internal/units"
)

// ZonedOutcome reports a zoned-control run: one fan speed plus one TEC
// current per zone.
type ZonedOutcome struct {
	Omega    float64
	Currents []float64
	// Result is the steady state at the operating point, certified by the
	// authoritative end of the backend chain.
	Result   *thermal.Result
	Feasible bool
	// FailedAtOpt2 marks Algorithm 1's "Return failed" branch: even the
	// minimized peak temperature exceeds T_max.
	FailedAtOpt2 bool
	// MinMaxTemp is the 𝒯 achieved by the feasibility phase.
	MinMaxTemp float64
	Runtime    time.Duration
	// Report and Opt2Report expose the raw solver reports of the power
	// and feasibility phases.
	Report, Opt2Report solver.Report
}

// CoolingPower returns 𝒫 at the chosen operating point.
func (o *ZonedOutcome) CoolingPower() float64 {
	if o.Result == nil {
		return 0
	}
	return o.Result.CoolingPower()
}

// String renders a one-line summary.
func (o *ZonedOutcome) String() string {
	status := "feasible"
	if !o.Feasible {
		status = "INFEASIBLE"
	}
	return fmt.Sprintf("zoned(%d): ω*=%.0f RPM I*=%v A, %s, %v",
		len(o.Currents), units.RadPerSecToRPM(o.Omega), o.Currents, status,
		o.Runtime.Round(time.Millisecond))
}

// RunZoned executes Algorithm 1 with the decision vector (ω, I_1..I_k):
// the feasibility phase minimizes the peak temperature, then the power
// phase minimizes 𝒫 under the thermal constraint. It is the "deployment
// and control" generalization: the single series string of the paper is
// the k = 1 special case (bit-identical to Run — the backend routes a
// one-zone point onto the scalar path), so any zoned optimum is at least
// as good. The run shares the scalar path's machinery: modes, solver
// fallback, multistart, warm starts, and the System's evaluation cache
// (in a zone-keyed space of its own).
func (s *System) RunZoned(zoning *thermal.Zoning, opts Options) (*ZonedOutcome, error) {
	start := time.Now()
	if zoning == nil {
		return nil, fmt.Errorf("core: RunZoned needs a zoning")
	}
	bnd, err := s.zonedBinding(opts.Backend, zoning)
	if err != nil {
		return nil, err
	}
	v, err := s.runVector(bnd, zoning.NumZones(), opts)
	if err != nil {
		return nil, err
	}
	out := &ZonedOutcome{
		Omega:        v.x[0],
		Currents:     append([]float64(nil), v.x[1:]...),
		Result:       v.result,
		Feasible:     v.feasible,
		FailedAtOpt2: v.failedAtOpt2,
		MinMaxTemp:   v.minMaxTemp,
		Report:       v.opt1,
		Opt2Report:   v.opt2,
		Runtime:      time.Since(start),
	}
	return out, nil
}

// ClusterZones returns the canonical 3-zone assignment for the EV6
// floorplan: zone 0 the L2/cache periphery, zone 1 the floating-point
// cluster, zone 2 the integer cluster (where the suite's hot spots live).
func ClusterZones() (map[string]int, int) {
	return map[string]int{
		floorplan.UnitL2Left:  0,
		floorplan.UnitL2:      0,
		floorplan.UnitL2Right: 0,
		floorplan.UnitIcache:  0,
		floorplan.UnitITB:     0,
		floorplan.UnitDTB:     0,
		floorplan.UnitLdStQ:   2,
		floorplan.UnitDcache:  0,
		floorplan.UnitFPAdd:   1,
		floorplan.UnitFPMul:   1,
		floorplan.UnitFPReg:   1,
		floorplan.UnitFPMap:   1,
		floorplan.UnitFPQ:     1,
		floorplan.UnitIntMap:  2,
		floorplan.UnitIntQ:    2,
		floorplan.UnitIntReg:  2,
		floorplan.UnitIntExec: 2,
		floorplan.UnitBpred:   2,
	}, 3
}
