package core

import (
	"fmt"
	"sync"
	"time"

	"oftec/internal/floorplan"
	"oftec/internal/solver"
	"oftec/internal/thermal"
	"oftec/internal/units"
)

// ZonedOutcome reports a zoned-control run: one fan speed plus one TEC
// current per zone.
type ZonedOutcome struct {
	Omega    float64
	Currents []float64
	Result   *thermal.Result
	Feasible bool
	Runtime  time.Duration
	Report   solver.Report
}

// CoolingPower returns 𝒫 at the chosen operating point.
func (o *ZonedOutcome) CoolingPower() float64 {
	if o.Result == nil {
		return 0
	}
	return o.Result.CoolingPower()
}

// String renders a one-line summary.
func (o *ZonedOutcome) String() string {
	status := "feasible"
	if !o.Feasible {
		status = "INFEASIBLE"
	}
	return fmt.Sprintf("zoned(%d): ω*=%.0f RPM I*=%v A, %s, %v",
		len(o.Currents), units.RadPerSecToRPM(o.Omega), o.Currents, status,
		o.Runtime.Round(time.Millisecond))
}

// zonedSystem caches zoned evaluations (one solve per operating vector).
type zonedSystem struct {
	model  *thermal.Model
	zoning *thermal.Zoning

	mu    sync.Mutex
	cache map[string]*thermal.Result
}

func (zs *zonedSystem) evaluate(x []float64) (*thermal.Result, error) {
	key := fmt.Sprintf("%.9g", x)
	zs.mu.Lock()
	if r, ok := zs.cache[key]; ok {
		zs.mu.Unlock()
		return r, nil
	}
	zs.mu.Unlock()
	r, err := zs.model.EvaluateZoned(x[0], zs.zoning, x[1:])
	if err != nil {
		return nil, err
	}
	zs.mu.Lock()
	if len(zs.cache) > 1<<14 {
		zs.cache = make(map[string]*thermal.Result)
	}
	zs.cache[key] = r
	zs.mu.Unlock()
	return r, nil
}

// RunZoned executes Algorithm 1 with the decision vector (ω, I_1..I_k):
// the feasibility phase minimizes the peak temperature, then the power
// phase minimizes 𝒫 under the thermal constraint. It is the "deployment
// and control" generalization: the single series string of the paper is
// the k = 1 special case, so any zoned optimum is at least as good.
func (s *System) RunZoned(zoning *thermal.Zoning, opts Options) (*ZonedOutcome, error) {
	start := time.Now()
	if zoning == nil {
		return nil, fmt.Errorf("core: RunZoned needs a zoning")
	}
	cfg := s.model.Config()
	k := zoning.NumZones()

	zs := &zonedSystem{model: s.model, zoning: zoning, cache: make(map[string]*thermal.Result)}
	tMaxSolve := opts.tMax(cfg) - opts.margin()

	obj := func(f func(r *thermal.Result) float64) solver.Func {
		return func(x []float64) float64 {
			r, err := zs.evaluate(x)
			if err != nil || r.Runaway {
				return solver.Infeasible
			}
			return f(r)
		}
	}
	tempObj := obj(func(r *thermal.Result) float64 { return r.MaxChipTemp })
	powerObj := obj(func(r *thermal.Result) float64 { return r.CoolingPower() })
	tempCons := func(x []float64) float64 { return tempObj(x) - tMaxSolve }

	lower := make([]float64, 1+k)
	upper := make([]float64, 1+k)
	upper[0] = cfg.Fan.OmegaMax
	for i := 1; i <= k; i++ {
		upper[i] = cfg.TEC.MaxCurrent
	}
	x0 := make([]float64, 1+k)
	for i := range x0 {
		x0[i] = upper[i] / 2
	}

	out := &ZonedOutcome{}
	// Feasibility phase.
	x1 := x0
	if t := tempObj(x0); t > tMaxSolve {
		p2 := &solver.Problem{F: tempObj, Lower: lower, Upper: upper}
		o2 := opts.Solver
		prev := opts.Solver.StopWhen
		o2.StopWhen = func(x []float64, f float64) bool {
			if f < tMaxSolve {
				return true
			}
			return prev != nil && prev(x, f)
		}
		rep, err := opts.Method.run(p2, x0, o2)
		if err != nil {
			return nil, fmt.Errorf("core: zoned optimization 2 failed: %w", err)
		}
		x1 = rep.X
		if rep.F > tMaxSolve {
			out.Omega = x1[0]
			out.Currents = append([]float64(nil), x1[1:]...)
			res, rerr := zs.evaluate(x1)
			if rerr != nil {
				return nil, rerr
			}
			out.Result = res
			out.Runtime = time.Since(start)
			return out, nil
		}
	}

	// Power phase.
	p1 := &solver.Problem{F: powerObj, Cons: []solver.Func{tempCons}, Lower: lower, Upper: upper}
	rep, err := opts.Method.run(p1, x1, opts.Solver)
	if err != nil {
		return nil, fmt.Errorf("core: zoned optimization 1 failed: %w", err)
	}
	out.Report = rep
	x := x1
	if rep.Feasible(1e-6) {
		x = rep.X
	}
	out.Omega = x[0]
	out.Currents = append([]float64(nil), x[1:]...)
	res, err := zs.evaluate(x)
	if err != nil {
		return nil, err
	}
	out.Result = res
	out.Feasible = res.MeetsConstraint(opts.tMax(cfg))
	out.Runtime = time.Since(start)
	return out, nil
}

// ClusterZones returns the canonical 3-zone assignment for the EV6
// floorplan: zone 0 the L2/cache periphery, zone 1 the floating-point
// cluster, zone 2 the integer cluster (where the suite's hot spots live).
func ClusterZones() (map[string]int, int) {
	return map[string]int{
		floorplan.UnitL2Left:  0,
		floorplan.UnitL2:      0,
		floorplan.UnitL2Right: 0,
		floorplan.UnitIcache:  0,
		floorplan.UnitITB:     0,
		floorplan.UnitDTB:     0,
		floorplan.UnitLdStQ:   2,
		floorplan.UnitDcache:  0,
		floorplan.UnitFPAdd:   1,
		floorplan.UnitFPMul:   1,
		floorplan.UnitFPReg:   1,
		floorplan.UnitFPMap:   1,
		floorplan.UnitFPQ:     1,
		floorplan.UnitIntMap:  2,
		floorplan.UnitIntQ:    2,
		floorplan.UnitIntReg:  2,
		floorplan.UnitIntExec: 2,
		floorplan.UnitBpred:   2,
	}, 3
}
