package core

import (
	"context"
	"fmt"
	"sort"

	"oftec/internal/parallel"
)

// ParetoPoint is one point of the cooling-power / peak-temperature
// trade-off curve: the minimum cooling power achievable under a given
// thermal threshold.
type ParetoPoint struct {
	// TMax is the thermal threshold used for this point, kelvin.
	TMax float64
	// Feasible reports whether any operating point satisfies it.
	Feasible bool
	// Power is the minimized 𝒫 in watts (meaningless when infeasible).
	Power float64
	// MaxTemp is the achieved peak temperature in kelvin.
	MaxTemp float64
	// Omega and ITEC are the chosen operating point.
	Omega, ITEC float64
}

// ParetoFront traces the trade-off Optimization 1 navigates (Section 6.2:
// "OFTEC addresses the trade-off between the cooling power consumption
// and the maximum chip temperature") by re-running Algorithm 1 under a
// sweep of thermal thresholds, returned in descending threshold order.
//
// The thresholds are independent solves, so they are probed concurrently
// on a pool sized by Options.Workers (GOMAXPROCS by default; 1 forces the
// serial path). Monotonicity of the feasible set — once a threshold is
// infeasible, every tighter one is too — is enforced either way: the
// serial path short-circuits and never solves below the first infeasible
// threshold, while the parallel path probes all thresholds and applies
// the same cut as a post-pass, discarding any solver artifact below the
// frontier. Errors follow the same rule: a parallel probe that fails on a
// threshold the serial path would never have solved (below the frontier)
// is discarded with its point, so the two paths return identical fronts
// AND identical error outcomes — a backend that only misbehaves in the
// deep-infeasible region cannot fail the parallel front while the serial
// one succeeds.
func (s *System) ParetoFront(tmaxValues []float64, opts Options) ([]ParetoPoint, error) {
	if len(tmaxValues) == 0 {
		return nil, fmt.Errorf("core: Pareto sweep needs at least one threshold")
	}
	ambient := s.ev.Config().Ambient
	sorted := append([]float64(nil), tmaxValues...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	for _, tmax := range sorted {
		if tmax <= ambient {
			return nil, fmt.Errorf("core: Pareto threshold %g K not above ambient %g K", tmax, ambient)
		}
	}

	workers := parallel.Workers(opts.Workers)
	if workers > len(sorted) {
		workers = len(sorted)
	}

	ctx := opts.Solver.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	// Every threshold's Run starts from the same point(s) — the domain
	// center, plus the corners under MultiStart. Submit them as one batch
	// up front so the probes (serial or concurrent) begin on cache hits;
	// priming both paths from the same batch keeps parallel ≡ serial
	// fronts bit-identical.
	if sel, err := s.binding(opts.Backend); err == nil {
		s.primeStartBatch(ctx, sel.bnd, opts, 1)
	}
	if workers == 1 {
		return s.paretoSerial(sorted, opts)
	}

	// The probe fan-out runs under the solver context when the caller set
	// one (service request deadlines): cancellation stops dispatching new
	// thresholds, and each in-flight Run already honors the same context
	// at its iteration boundaries.
	out := make([]ParetoPoint, len(sorted))
	errs := make([]error, len(sorted))
	err := parallel.ForEach(ctx, len(sorted), workers, func(i int) error {
		tmax := sorted[i]
		o := opts
		o.TMax = tmax
		res, err := s.paretoRun(o)
		if err != nil {
			// Don't fail the fan-out here: whether this error matters
			// depends on where the monotonicity cut lands, which is only
			// known once every looser threshold has reported. The post-pass
			// below surfaces exactly the errors the serial path would hit.
			errs[i] = err
			return nil
		}
		pt := ParetoPoint{TMax: tmax}
		if res.Feasible {
			pt.Feasible = true
			pt.Power = res.CoolingPower()
			pt.MaxTemp = res.Result.MaxChipTemp
			pt.Omega, pt.ITEC = res.Omega, res.ITEC
		}
		out[i] = pt
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Monotonicity post-pass in descending threshold order: below the
	// first infeasible threshold the serial path never solves, so blank
	// any speculative result — or swallow any speculative error — there.
	// An error at or above the frontier is one the serial path would have
	// hit (it solves every threshold down to and including the first
	// infeasible one), and the first such error in descending order is the
	// one the serial path reports.
	infeasibleBelow := false
	for i := range out {
		if infeasibleBelow {
			out[i] = ParetoPoint{TMax: sorted[i]}
			continue
		}
		if errs[i] != nil {
			return nil, fmt.Errorf("core: Pareto threshold %g K: %w", sorted[i], errs[i])
		}
		if !out[i].Feasible {
			infeasibleBelow = true
		}
	}
	return out, nil
}

// paretoRun dispatches one threshold's solve: the test seam when
// installed, the real Algorithm 1 run otherwise.
func (s *System) paretoRun(o Options) (*Outcome, error) {
	if h := s.paretoRunHook; h != nil {
		return h(o)
	}
	return s.Run(o)
}

// paretoSerial is the reference implementation: descending thresholds
// with a live monotonicity short circuit (no solves below the first
// infeasible threshold).
func (s *System) paretoSerial(sorted []float64, opts Options) ([]ParetoPoint, error) {
	out := make([]ParetoPoint, 0, len(sorted))
	infeasibleBelow := false
	for _, tmax := range sorted {
		if ctx := opts.Solver.Ctx; ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		pt := ParetoPoint{TMax: tmax}
		if !infeasibleBelow {
			o := opts
			o.TMax = tmax
			res, err := s.paretoRun(o)
			if err != nil {
				return nil, fmt.Errorf("core: Pareto threshold %g K: %w", tmax, err)
			}
			if res.Feasible {
				pt.Feasible = true
				pt.Power = res.CoolingPower()
				pt.MaxTemp = res.Result.MaxChipTemp
				pt.Omega, pt.ITEC = res.Omega, res.ITEC
			} else {
				infeasibleBelow = true
			}
		}
		out = append(out, pt)
	}
	return out, nil
}
