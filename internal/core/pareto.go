package core

import (
	"fmt"
	"sort"
)

// ParetoPoint is one point of the cooling-power / peak-temperature
// trade-off curve: the minimum cooling power achievable under a given
// thermal threshold.
type ParetoPoint struct {
	// TMax is the thermal threshold used for this point, kelvin.
	TMax float64
	// Feasible reports whether any operating point satisfies it.
	Feasible bool
	// Power is the minimized 𝒫 in watts (meaningless when infeasible).
	Power float64
	// MaxTemp is the achieved peak temperature in kelvin.
	MaxTemp float64
	// Omega and ITEC are the chosen operating point.
	Omega, ITEC float64
}

// ParetoFront traces the trade-off Optimization 1 navigates (Section 6.2:
// "OFTEC addresses the trade-off between the cooling power consumption
// and the maximum chip temperature") by re-running Algorithm 1 under a
// sweep of thermal thresholds. Thresholds are processed in descending
// order; once a threshold is infeasible, every tighter one is marked
// infeasible without further solves (monotonicity of the feasible set).
func (s *System) ParetoFront(tmaxValues []float64, opts Options) ([]ParetoPoint, error) {
	if len(tmaxValues) == 0 {
		return nil, fmt.Errorf("core: Pareto sweep needs at least one threshold")
	}
	ambient := s.model.Config().Ambient
	sorted := append([]float64(nil), tmaxValues...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))

	out := make([]ParetoPoint, 0, len(sorted))
	infeasibleBelow := false
	for _, tmax := range sorted {
		if tmax <= ambient {
			return nil, fmt.Errorf("core: Pareto threshold %g K not above ambient %g K", tmax, ambient)
		}
		pt := ParetoPoint{TMax: tmax}
		if !infeasibleBelow {
			o := opts
			o.TMax = tmax
			res, err := s.Run(o)
			if err != nil {
				return nil, fmt.Errorf("core: Pareto threshold %g K: %w", tmax, err)
			}
			if res.Feasible {
				pt.Feasible = true
				pt.Power = res.CoolingPower()
				pt.MaxTemp = res.Result.MaxChipTemp
				pt.Omega, pt.ITEC = res.Omega, res.ITEC
			} else {
				infeasibleBelow = true
			}
		}
		out = append(out, pt)
	}
	return out, nil
}
