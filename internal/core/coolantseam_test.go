package core

import (
	"reflect"
	"testing"

	"oftec/internal/backend"
	"oftec/internal/coolant"
	"oftec/internal/thermal"
	"oftec/internal/workload"
)

// seamSystem builds a system over the full backend with the given config.
func seamSystem(t *testing.T, cfg thermal.Config, bench string) *System {
	t.Helper()
	b, err := workload.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	pm, err := b.PowerMap(cfg.Floorplan)
	if err != nil {
		t.Fatal(err)
	}
	m, err := thermal.NewModel(cfg, pm)
	if err != nil {
		t.Fatal(err)
	}
	return NewSystem(backend.NewFull(m))
}

// TestTableTwoModesIdenticalThroughSeam is the air-equivalence acceptance
// bar at the controller level: every Table-2 mode (OFTEC, Var. ω, Fixed ω,
// TEC only) run through the coolant seam with an explicit air spec must be
// DeepEqual-identical to the same run on a nil-coolant (pre-seam fan path)
// configuration — operating point, steady state, solver reports, all of it.
func TestTableTwoModesIdenticalThroughSeam(t *testing.T) {
	nilSys := seamSystem(t, testConfig(), "Basicmath")
	airCfg := testConfig()
	airCfg.Coolant = &coolant.Spec{Kind: coolant.KindAir}
	airSys := seamSystem(t, airCfg, "Basicmath")

	for _, mode := range []Mode{ModeHybrid, ModeVariableFan, ModeFixedFan, ModeTECOnly} {
		t.Run(mode.String(), func(t *testing.T) {
			opts := Options{Mode: mode, Method: MethodHookeJeeves}
			a, errA := nilSys.Run(opts)
			b, errB := airSys.Run(opts)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("error mismatch: nil-coolant %v, air-spec %v", errA, errB)
			}
			if errA != nil {
				return // both fail identically — nothing more to compare
			}
			// Wall-clock is the only field allowed to differ.
			a.Runtime, b.Runtime = 0, 0
			if !reflect.DeepEqual(a, b) {
				t.Errorf("mode %s: air-spec outcome differs from nil-coolant outcome\n nil: %+v\n air: %+v", mode, a, b)
			}
		})
	}
}
