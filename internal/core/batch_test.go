package core

import (
	"context"
	"testing"

	"oftec/internal/backend"
)

// TestEvaluateBatchContextMatchesPerPoint pins the System-level batch
// seam: batched evaluation populates the same shared cache, so per-point
// replays return pointer-identical results, and the batch counters tick.
func TestEvaluateBatchContextMatchesPerPoint(t *testing.T) {
	s := benchSystem(t, "Basicmath")
	if !s.SupportsBatch() {
		t.Fatal("full backend lost the BatchEvaluator capability")
	}
	ops := []backend.OpPoint{
		backend.Scalar(150, 0),
		backend.Scalar(150, 1),
		backend.Scalar(250, 0.5),
		backend.Scalar(150, 1), // duplicate
	}
	res, err := s.EvaluateBatchContext(context.Background(), ops, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res[3] != res[1] {
		t.Error("duplicate op did not alias the first occurrence")
	}
	for i, op := range ops {
		solo, err := s.Evaluate(op.Omega, op.Currents[0])
		if err != nil {
			t.Fatal(err)
		}
		if solo != res[i] {
			t.Errorf("point %d: per-point replay returned a different pointer", i)
		}
	}
	if stats := s.CacheStats(); stats.Batches == 0 || stats.BatchPoints < int64(len(ops)) {
		t.Errorf("batch counters did not tick: %+v", stats)
	}
}

// TestSetBatchingDisablesBlockedPath: with batching off the same calls
// answer per-point — identical results, no batch traffic counted.
func TestSetBatchingDisablesBlockedPath(t *testing.T) {
	s := benchSystem(t, "Basicmath")
	s.SetBatching(false)
	if s.SupportsBatch() {
		t.Error("SupportsBatch true after SetBatching(false)")
	}
	ops := []backend.OpPoint{backend.Scalar(150, 0), backend.Scalar(250, 0.5)}
	res, err := s.EvaluateBatchContext(context.Background(), ops, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats := s.CacheStats(); stats.Batches != 0 {
		t.Errorf("disabled batching still counted batches: %+v", stats)
	}

	// Re-enabling routes through the blocked path and serves the cached
	// points back pointer-identically.
	s.SetBatching(true)
	again, err := s.EvaluateBatchContext(context.Background(), ops, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ops {
		if again[i] != res[i] {
			t.Errorf("point %d: batched replay differs from per-point original", i)
		}
	}
	if stats := s.CacheStats(); stats.Batches != 1 {
		t.Errorf("re-enabled batching did not count: %+v", stats)
	}
}
