package core

import (
	"context"
	"sync"
	"testing"

	"oftec/internal/backend"
)

// These tests exist for `go test -race`: they hammer the shared
// evaluation cache from concurrent goroutines so the locking in the
// scalar and zoned evaluation paths is actually exercised under the
// race detector, not just under single-threaded unit tests.

// TestSystemCacheConcurrent drives overlapping operating points through
// one shared System from many goroutines: hits and misses interleave,
// and every result must be identical to the single-threaded answer.
func TestSystemCacheConcurrent(t *testing.T) {
	s := benchSystem(t, "CRC32")
	points := []struct{ omega, itec float64 }{
		{100, 0}, {100, 0.5}, {200, 1}, {300, 0}, {300, 1.5}, {150, 0.25},
	}
	// Single-threaded reference answers (also pre-warms part of the cache,
	// so the workers mix hits with concurrent misses).
	want := make([]float64, len(points))
	for i, p := range points[:3] {
		r, err := s.Evaluate(p.omega, p.itec)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r.MaxChipTemp
	}

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 4*len(points); i++ {
				p := points[(w+i)%len(points)]
				r, err := s.Evaluate(p.omega, p.itec)
				if err != nil {
					t.Errorf("Evaluate(%g, %g): %v", p.omega, p.itec, err)
					return
				}
				if r.Runaway {
					t.Errorf("Evaluate(%g, %g): unexpected runaway", p.omega, p.itec)
				}
			}
		}(w)
	}
	wg.Wait()

	for i, p := range points[:3] {
		r, err := s.Evaluate(p.omega, p.itec)
		if err != nil {
			t.Fatal(err)
		}
		if r.MaxChipTemp != want[i] {
			t.Errorf("point %d: cached MaxChipTemp %g != reference %g", i, r.MaxChipTemp, want[i])
		}
	}
}

// TestZonedCacheConcurrent hammers the zoned evaluation path the same
// way: RunZoned binds a zoned evaluator into the system's shared cache
// and the solver's evaluations flow through that one binding, so the
// cache must tolerate concurrent zoned traffic.
func TestZonedCacheConcurrent(t *testing.T) {
	s := benchSystem(t, "CRC32")
	assign, k := ClusterZones()
	zoner, ok := s.Backend().(backend.Zoner)
	if !ok {
		t.Fatalf("backend %q cannot zone", s.Backend().Name())
	}
	zoning, err := zoner.NewZoning(assign, k)
	if err != nil {
		t.Fatal(err)
	}
	zev, err := zoner.WithZoning(zoning)
	if err != nil {
		t.Fatal(err)
	}
	bnd := s.cache.Bind(zev)

	vectors := [][]float64{
		{100, 0, 0, 0},
		{150, 0.5, 0, 0.5},
		{200, 0, 1, 0},
		{250, 0.5, 0.5, 0.5},
	}
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 3*len(vectors); i++ {
				x := vectors[(w+i)%len(vectors)]
				r, err := bnd.Evaluate(context.Background(), backend.OpPoint{Omega: x[0], Currents: x[1:]}, nil)
				if err != nil {
					t.Errorf("evaluate(%v): %v", x, err)
					return
				}
				if r == nil {
					t.Errorf("evaluate(%v): nil result", x)
				}
			}
		}(w)
	}
	wg.Wait()
}
