package core

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"oftec/internal/evalcache"
)

// These tests pin the two concurrency contracts of the evaluation cache:
// concurrent misses on one operating point coalesce onto a single
// underlying thermal solve (singleflight), and eviction is bounded — a
// key that stays hot is never discarded, no matter how much distinct
// traffic flows through.

// TestEvaluateSingleflight launches M goroutines at one operating point
// and asserts exactly one model.Evaluate runs underneath. The leader is
// held inside the solve hook until every other goroutine has had time to
// arrive, so the window where the old code duplicated solves is wide
// open; late arrivals that miss the window hit the filled cache instead,
// so the single-solve invariant holds regardless of scheduling.
func TestEvaluateSingleflight(t *testing.T) {
	s := benchSystem(t, "CRC32")
	var solves atomic.Int64
	release := make(chan struct{})
	s.solveHook = func(omega, itec float64) {
		solves.Add(1)
		<-release
	}

	const workers = 16
	var entered atomic.Int64
	var wg sync.WaitGroup
	results := make([]float64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			entered.Add(1)
			r, err := s.Evaluate(123.456, 1.25)
			if err != nil {
				t.Errorf("worker %d: %v", w, err)
				return
			}
			results[w] = r.MaxChipTemp
		}(w)
	}
	for entered.Load() < workers {
		time.Sleep(time.Millisecond)
	}
	// Give the stragglers a beat to park on the in-flight solve, then let
	// the leader finish.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	if n := solves.Load(); n != 1 {
		t.Fatalf("%d goroutines on one operating point triggered %d model solves, want exactly 1", workers, n)
	}
	for w := 1; w < workers; w++ {
		if results[w] != results[0] {
			t.Fatalf("worker %d saw MaxChipTemp %g, worker 0 saw %g", w, results[w], results[0])
		}
	}
	stats := s.CacheStats()
	if stats.Misses != 1 {
		t.Errorf("stats.Misses = %d, want 1", stats.Misses)
	}
	if stats.Hits+stats.Waits != workers-1 {
		t.Errorf("stats.Hits+Waits = %d, want %d", stats.Hits+stats.Waits, workers-1)
	}
}

// TestHotKeySurvivesEviction is the regression test for the old
// full-map wipe: under sustained distinct-key pressure that forces many
// rotations, a key touched regularly must stay cached (one solve, ever).
func TestHotKeySurvivesEviction(t *testing.T) {
	// Tiny generations so a few dozen solves force rotations.
	s := benchSystemCap(t, "CRC32", 3)

	const hotOmega, hotITEC = 200.0, 1.0
	var hotSolves atomic.Int64
	s.solveHook = func(omega, itec float64) {
		if omega == hotOmega && itec == hotITEC {
			hotSolves.Add(1)
		}
	}

	if _, err := s.Evaluate(hotOmega, hotITEC); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 18; i++ {
		if _, err := s.Evaluate(150+10*float64(i), 0.5); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Evaluate(hotOmega, hotITEC); err != nil {
			t.Fatal(err)
		}
	}

	stats := s.CacheStats()
	if stats.Rotations < 3 {
		t.Fatalf("only %d rotations; the test did not generate eviction pressure", stats.Rotations)
	}
	if n := hotSolves.Load(); n != 1 {
		t.Errorf("hot key was re-solved %d times under eviction pressure, want 1", n)
	}
	if total := s.cache.Len(); total > 2*s.cache.Capacity() {
		t.Errorf("cache holds %d entries, bound is %d", total, 2*s.cache.Capacity())
	}
}

// TestEvaluateMixedTrafficStress hammers one System with interleaved
// hits, coalesced misses, and rotations (capacity far below the key-set
// size) from many goroutines — the traffic pattern of a parallel surface
// sweep. Run under -race this exercises every lock transition; the
// results must still match a fresh serial system exactly.
func TestEvaluateMixedTrafficStress(t *testing.T) {
	s := benchSystemCap(t, "CRC32", 4)
	// The thermal layer memoizes repeated operating points, which makes
	// cache misses orders of magnitude faster than a real cold solve; on a
	// single CPU a worker then churns the whole small cache within one
	// scheduler slice and no overlap (hits, waits) can occur. Restore
	// solver-scale miss latency so the stress keeps mixing the traffic
	// classes it is meant to exercise.
	s.solveHook = func(omega, itec float64) { time.Sleep(200 * time.Microsecond) }

	var points []struct{ omega, itec float64 }
	for i := 0; i < 24; i++ {
		points = append(points, struct{ omega, itec float64 }{
			omega: 120 + 15*float64(i%12),
			itec:  0.25 * float64(i/12),
		})
	}

	const workers = 12
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 4*len(points); i++ {
				p := points[(3*w+i)%len(points)]
				r, err := s.Evaluate(p.omega, p.itec)
				if err != nil {
					t.Errorf("Evaluate(%g, %g): %v", p.omega, p.itec, err)
					return
				}
				if r == nil {
					t.Errorf("Evaluate(%g, %g): nil result", p.omega, p.itec)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	stats := s.CacheStats()
	if stats.Rotations == 0 {
		t.Error("stress produced no rotations; eviction path not exercised")
	}
	if stats.Hits == 0 || stats.Misses == 0 {
		t.Errorf("stress traffic not mixed: %+v", stats)
	}

	// Cross-check a sample of points against an independent serial system.
	ref := benchSystem(t, "CRC32")
	for _, p := range points[:6] {
		want, err := ref.Evaluate(p.omega, p.itec)
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.Evaluate(p.omega, p.itec)
		if err != nil {
			t.Fatal(err)
		}
		if got.MaxChipTemp != want.MaxChipTemp {
			t.Errorf("point (%g, %g): MaxChipTemp %g != serial reference %g",
				p.omega, p.itec, got.MaxChipTemp, want.MaxChipTemp)
		}
	}
}

// TestCacheStatsAccounting pins the counter semantics on a serial
// traffic pattern where the exact values are known.
func TestCacheStatsAccounting(t *testing.T) {
	s := benchSystem(t, "CRC32")
	if _, err := s.Evaluate(100, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Evaluate(100, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Evaluate(200, 1); err != nil {
		t.Fatal(err)
	}
	stats := s.CacheStats()
	want := CacheStats{Hits: 1, Misses: 2}
	if stats != want {
		t.Errorf("stats = %+v, want %+v", stats, want)
	}
}

// TestZonedBindingMemoized pins the service-facing cache contract: two
// zoned evaluations of one operating point under one zoning share a
// single key space, so the second is a cache hit, not a fresh miss in a
// fresh binding (the historical behavior — RunZoned opened a new key
// space per call, so cross-request zoned traffic never coalesced).
func TestZonedBindingMemoized(t *testing.T) {
	s := benchSystem(t, "CRC32")
	m := testModelOf(t, s)
	assign, nz := ClusterZones()
	z, err := m.NewZoning(assign, nz)
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	cur := []float64{1, 0.5, 2}
	before := s.CacheStats()
	r1, err := s.EvaluateZonedContext(ctx, z, 300, cur)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.EvaluateZonedContext(ctx, z, 300, cur)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("repeated zoned evaluation did not share one cache entry")
	}
	d := s.CacheStats()
	if d.Misses-before.Misses != 1 || d.Hits-before.Hits != 1 {
		t.Errorf("stats delta = %+v vs %+v, want exactly 1 miss + 1 hit", d, before)
	}

	// RunZoned must reuse the same memoized binding: its evaluation of
	// the same zoning shares cache state with the direct path.
	if bnd, err := s.zonedBinding("", z); err != nil {
		t.Fatal(err)
	} else if bnd2, err2 := s.zonedBinding("", z); err2 != nil || bnd != bnd2 {
		t.Errorf("zonedBinding not memoized: %p vs %p (err %v)", bnd, bnd2, err2)
	}
}

// TestSharedCacheSystems pins NewSystemShared: two systems bound to one
// cache share capacity and statistics, while their coincident operating
// points stay isolated in separate key spaces.
func TestSharedCacheSystems(t *testing.T) {
	cache := evalcache.New(0)
	a := NewSystemShared(benchSystem(t, "CRC32").Backend(), cache)
	b := NewSystemShared(benchSystem(t, "FFT").Backend(), cache)

	ra, err := a.Evaluate(300, 1)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Evaluate(300, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ra == rb {
		t.Error("two chips' coincident operating points aliased one entry")
	}
	if s := cache.Stats(); s.Misses != 2 {
		t.Errorf("shared stats = %+v, want 2 misses pooled in one counter", s)
	}
	if got, want := a.CacheStats(), b.CacheStats(); got != want {
		t.Errorf("shared cache reports different stats per system: %+v vs %+v", got, want)
	}
}
