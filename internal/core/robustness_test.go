package core

import (
	"context"
	"math"
	"testing"

	"oftec/internal/solver"
)

// TestFallbackOptionMatchesPlainWhenHealthy: with a well-behaved model
// the chain stops after its first (selected-method) stage, so the chosen
// operating point is identical to the plain run.
func TestFallbackOptionMatchesPlainWhenHealthy(t *testing.T) {
	s := benchSystem(t, "Basicmath")
	plain, err := s.Run(Options{Mode: ModeHybrid})
	if err != nil {
		t.Fatal(err)
	}
	fb, err := s.Run(Options{Mode: ModeHybrid, Fallback: true})
	if err != nil {
		t.Fatal(err)
	}
	if !fb.Feasible {
		t.Fatal("fallback run infeasible on a mild benchmark")
	}
	if math.Abs(fb.Omega-plain.Omega) > 1e-9 || math.Abs(fb.ITEC-plain.ITEC) > 1e-9 {
		t.Errorf("fallback operating point (%g, %g) differs from plain (%g, %g)",
			fb.Omega, fb.ITEC, plain.Omega, plain.ITEC)
	}
	if fb.Opt1Report.Stopped == solver.StopUnset {
		t.Error("fallback run left Opt1Report.Stopped unset")
	}
}

// TestFallbackChainShape pins the ladder construction: selected method
// first, default chain after it, no duplicate stages.
func TestFallbackChainShape(t *testing.T) {
	cases := []struct {
		method Method
		want   []string
	}{
		{MethodSQP, []string{"sqp", "interior", "hooke"}},
		{MethodInteriorPoint, []string{"interior", "sqp", "hooke"}},
		{MethodNelderMead, []string{"neldermead", "sqp", "interior", "hooke"}},
		{MethodHookeJeeves, []string{"hooke", "sqp", "interior"}},
	}
	for _, tc := range cases {
		chain := tc.method.fallbackChain()
		var got []string
		for _, stage := range chain {
			got = append(got, stage.Name)
		}
		if len(got) != len(tc.want) {
			t.Errorf("%v: chain %v, want %v", tc.method, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("%v: chain %v, want %v", tc.method, got, tc.want)
				break
			}
		}
	}
}

// TestRunCancelledContext: a pre-cancelled solver context must not hang
// or error the run; Algorithm 1 finishes with the best point each phase
// had in hand, and the reports say the solves were cancelled.
func TestRunCancelledContext(t *testing.T) {
	s := benchSystem(t, "Basicmath")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := Options{Mode: ModeHybrid}
	opts.Solver.Ctx = ctx
	out, err := s.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if out.Opt1Report.Stopped != solver.StopCancelled {
		t.Errorf("Opt1Report.Stopped = %s, want %s", out.Opt1Report.Stopped, solver.StopCancelled)
	}
	if out.Omega == 0 && out.ITEC == 0 {
		t.Error("cancelled run returned a zero operating point instead of best-so-far")
	}
}

// TestRunTraceHook: the solver trace plumbs through core.Options and
// records the optimization trajectory of Algorithm 1.
func TestRunTraceHook(t *testing.T) {
	s := benchSystem(t, "Basicmath")
	ring := solver.NewTraceRing(solver.DefaultTraceCapacity)
	opts := Options{Mode: ModeHybrid}
	opts.Solver.Trace = ring.Record
	if _, err := s.Run(opts); err != nil {
		t.Fatal(err)
	}
	if ring.Total() == 0 {
		t.Fatal("no trace records reached the hook through core.Options")
	}
	for _, rec := range ring.Records() {
		if rec.Method != "sqp" {
			t.Fatalf("record method %q, want sqp", rec.Method)
		}
	}
}
