package core

import (
	"math"
	"testing"
)

// TestSingleZoneMatchesScalarRun is the backend-layer conformance gate:
// a zoned run with one zone covering the whole die optimizes the same
// two-variable problem as the scalar Run, through the same shared
// evaluation cache, so the two paths must agree on the operating point
// and the cooling power to near machine precision in every mode. The
// k = 1 zoned evaluator delegates to the scalar solve inside the
// thermal layer, so the objectives are bit-identical and the
// deterministic solvers walk identical iterates.
func TestSingleZoneMatchesScalarRun(t *testing.T) {
	const tol = 1e-12
	for _, mode := range []Mode{ModeHybrid, ModeVariableFan, ModeFixedFan, ModeTECOnly} {
		t.Run(mode.String(), func(t *testing.T) {
			s := benchSystem(t, "Basicmath")
			m := testModelOf(t, s)
			assign := map[string]int{}
			for _, u := range s.Config().Floorplan.Units() {
				assign[u.Name] = 0
			}
			z, err := m.NewZoning(assign, 1)
			if err != nil {
				t.Fatal(err)
			}

			scalar, err := s.Run(Options{Mode: mode})
			if err != nil {
				t.Fatal(err)
			}
			zoned, err := s.RunZoned(z, Options{Mode: mode})
			if err != nil {
				t.Fatal(err)
			}

			if zoned.Feasible != scalar.Feasible {
				t.Fatalf("feasibility diverges: zoned %t, scalar %t", zoned.Feasible, scalar.Feasible)
			}
			if len(zoned.Currents) != 1 {
				t.Fatalf("single-zone run returned %d currents", len(zoned.Currents))
			}
			if d := math.Abs(zoned.Omega - scalar.Omega); d > tol {
				t.Errorf("ω* diverges by %g (zoned %v, scalar %v)", d, zoned.Omega, scalar.Omega)
			}
			if d := math.Abs(zoned.Currents[0] - scalar.ITEC); d > tol {
				t.Errorf("I* diverges by %g (zoned %v, scalar %v)", d, zoned.Currents[0], scalar.ITEC)
			}
			if scalar.Result != nil && zoned.Result != nil {
				if d := math.Abs(zoned.CoolingPower() - scalar.CoolingPower()); d > tol {
					t.Errorf("𝒫* diverges by %g (zoned %v, scalar %v)",
						d, zoned.CoolingPower(), scalar.CoolingPower())
				}
				if d := math.Abs(zoned.Result.MaxChipTemp - scalar.Result.MaxChipTemp); d > tol {
					t.Errorf("𝒯* diverges by %g", d)
				}
			}
		})
	}
}
