package core

import (
	"context"
	"math"
	"strconv"
	"sync"

	"oftec/internal/backend"
	"oftec/internal/solver"
	"oftec/internal/thermal"
)

// gradMemo caches adjoint gradients by quantized operating point. One
// backend.GradEvaluator call produces BOTH ∇𝒫 and ∇𝒯_τ (two adjoint solves
// on the already-factored system); the solver asks for the objective and
// constraint gradients separately at the same iterate, so without the memo
// every iterate would pay the adjoint pair twice. Safe for concurrent use
// (MultiStart's corner launch shares one memo).
type gradMemo struct {
	ge backend.GradEvaluator

	mu sync.Mutex
	m  map[string]*thermal.Gradient
}

func newGradMemo(ge backend.GradEvaluator) *gradMemo {
	return &gradMemo{ge: ge, m: map[string]*thermal.Gradient{}}
}

// gradKey quantizes x on the evaluation cache's 1e-9 grid, so the memo and
// the cache agree on which probes are the same operating point.
func gradKey(x []float64) string {
	b := make([]byte, 0, 24*len(x))
	for _, v := range x {
		b = strconv.AppendInt(b, int64(math.Round(v*1e9)), 10)
		b = append(b, ':')
	}
	return string(b)
}

// at returns the gradient at x, or nil when the point cannot be
// differentiated (thermal runaway, failed adjoint solve) — a nil return
// from the installed solver.GradFunc sends the solver back to finite
// differences at that point only. Errors are not cached: the runaway check
// rides an evaluation that is itself memoized, so a repeat is cheap.
func (g *gradMemo) at(x []float64) *thermal.Gradient {
	key := gradKey(x)
	g.mu.Lock()
	got, ok := g.m[key]
	g.mu.Unlock()
	if ok {
		return got
	}
	grad, err := g.ge.EvaluateGrad(context.Background(), backend.OpPoint{
		Omega:    x[0],
		Currents: append([]float64(nil), x[1:]...),
	})
	if err != nil {
		return nil
	}
	g.mu.Lock()
	g.m[key] = grad
	g.mu.Unlock()
	return grad
}

// powerGrad is the solver.GradFunc for the 𝒫 objective.
func (g *gradMemo) powerGrad(x []float64) []float64 {
	if grad := g.at(x); grad != nil {
		return grad.PowerGrad
	}
	return nil
}

// tempGrad is the solver.GradFunc for the smoothed 𝒯_τ objective and for
// the thermal constraint 𝒯_τ − (T_max − margin), whose constant offset
// differentiates away.
func (g *gradMemo) tempGrad(x []float64) []float64 {
	if grad := g.at(x); grad != nil {
		return grad.TempGrad
	}
	return nil
}

// smoothTempObj is the log-sum-exp soft maximum 𝒯_τ of the chip
// temperatures, the thermal objective gradient mode optimizes: the adjoint
// differentiates the smoothed max, so the solver must evaluate the same
// function or its line searches would disagree with its gradients. 𝒯_τ
// over-estimates the true max by at most thermal.DefaultSmoothBound
// (0.05 K, matching the optimizer's default constraint margin), so
// feasibility under the smoothed constraint implies feasibility under the
// strict one.
func smoothTempObj(eval vecEval, x []float64) float64 {
	r, err := eval(x)
	if err != nil || r.Runaway {
		return solver.Infeasible
	}
	tau := thermal.SmoothMaxTau(len(r.ChipTemps), thermal.DefaultSmoothBound)
	return thermal.SmoothMax(r.ChipTemps, tau)
}
