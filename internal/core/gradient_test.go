package core

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"oftec/internal/backend"
	"oftec/internal/thermal"
	"oftec/internal/workload"
)

// TestGradientModeRunMatchesFiniteDifferences: Algorithm 1 steered by
// adjoint gradients must land on the same answer as the finite-difference
// run, record the analytic evaluations, and spend fewer function
// evaluations (each gradient is one adjoint pair instead of 2(1+k)
// probes).
func TestGradientModeRunMatchesFiniteDifferences(t *testing.T) {
	s := benchSystem(t, "Basicmath")
	cfg := s.Config()

	fd, err := s.Run(Options{Mode: ModeHybrid})
	if err != nil {
		t.Fatal(err)
	}
	gr, err := s.Run(Options{Mode: ModeHybrid, Gradient: true})
	if err != nil {
		t.Fatal(err)
	}
	if !fd.Feasible || !gr.Feasible {
		t.Fatalf("feasibility diverged: FD %v, gradient %v", fd.Feasible, gr.Feasible)
	}
	if gr.Opt1Report.GradEvals == 0 {
		t.Error("gradient run recorded no adjoint evaluations in Optimization 1")
	}
	if fd.Opt1Report.GradEvals != 0 || fd.Opt2Report.GradEvals != 0 {
		t.Error("finite-difference run recorded adjoint evaluations")
	}
	// The smoothed maximum over-estimates by at most DefaultSmoothBound,
	// so the gradient run's feasibility claim is strict.
	if !gr.Result.MeetsConstraint(cfg.TMax) {
		t.Errorf("gradient-mode operating point violates T_max: %g K > %g K",
			gr.Result.MaxChipTemp, cfg.TMax)
	}
	// Same trade-off curve point, modulo the ≤ 0.05 K objective smoothing.
	if rel := math.Abs(gr.CoolingPower()-fd.CoolingPower()) / fd.CoolingPower(); rel > 0.05 {
		t.Errorf("cooling power diverged: gradient %g W vs FD %g W (rel %g)",
			gr.CoolingPower(), fd.CoolingPower(), rel)
	}
	fdEvals := fd.Opt1Report.FuncEvals + fd.Opt2Report.FuncEvals
	grEvals := gr.Opt1Report.FuncEvals + gr.Opt2Report.FuncEvals
	if grEvals >= fdEvals {
		t.Errorf("gradient run spent %d function evaluations, finite differences %d — probes did not collapse",
			grEvals, fdEvals)
	}
}

// TestGradientModeZonedRun: the zoned path shares runVector, so gradient
// mode must light up there too (GradientOf resolves through the zoned
// binding to the zoned full backend).
func TestGradientModeZonedRun(t *testing.T) {
	s := benchSystem(t, "Quicksort")
	cfg := s.Config()
	assign, n := ClusterZones()
	z, err := testModelOf(t, s).NewZoning(assign, n)
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.RunZoned(z, Options{Mode: ModeHybrid, Gradient: true})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Feasible {
		t.Fatal("zoned gradient run infeasible on a mild benchmark")
	}
	if out.Report.GradEvals+out.Opt2Report.GradEvals == 0 {
		t.Error("zoned gradient run recorded no adjoint evaluations")
	}
	if !out.Result.MeetsConstraint(cfg.TMax) {
		t.Errorf("zoned gradient-mode operating point violates T_max: %g K",
			out.Result.MaxChipTemp)
	}
}

// TestGradientModeDerivativeFreeInert: the Gradient option is harmless
// on a derivative-free method, which ignores Options.Grad by design —
// the run completes and records no adjoint evaluations.
func TestGradientModeDerivativeFreeInert(t *testing.T) {
	s := benchSystem(t, "CRC32")
	out, err := s.Run(Options{Mode: ModeHybrid, Method: MethodNelderMead, Gradient: true})
	if err != nil {
		t.Fatal(err)
	}
	if out.Opt1Report.GradEvals != 0 || out.Opt2Report.GradEvals != 0 {
		t.Error("derivative-free method consumed gradients")
	}
	if !out.Feasible {
		t.Error("gradient option broke the derivative-free run")
	}
}

// TestGradientTinySpanProbesDistinct is the core-level regression for the
// cache-quantization bug: with a TEC rated at 1 µA the current span is
// 1e-6 A, the legacy scaled probe step 1e-5·span = 1e-11 A fell below the
// evaluation cache's 1e-9 quantization grid, every probe aliased onto its
// base point, and the solver declared convergence at the starting point
// having "sampled" exactly one operating point. The GradMinStep floor
// keeps probes on distinct grid points.
func TestGradientTinySpanProbesDistinct(t *testing.T) {
	cfg := testConfig()
	cfg.TEC.MaxCurrent = 1e-6
	s := systemFromConfig(t, "Basicmath", cfg)

	seen := map[float64]bool{}
	s.solveHook = func(omega, itec float64) {
		seen[math.Round(itec*1e9)/1e9] = true
	}
	// Hybrid mode keeps both axes live; the fan axis spans hundreds of
	// rad/s and probes fine either way, while the current axis has the
	// micro-span. Every distinct current the solver manages to sample
	// shows up in the hook; pre-fix the difference quotient on the current
	// axis was built from aliased probes, g[1] ≡ 0, and the solver never
	// moved — or even probed — off the starting current.
	if _, err := s.Run(Options{Mode: ModeHybrid}); err != nil {
		t.Fatal(err)
	}
	if len(seen) < 3 {
		t.Errorf("solver sampled only %d distinct TEC currents on the 1e-9 grid — probes aliased (pre-fix this is 1)", len(seen))
	}
}

// systemFromConfig is benchSystemCap with a caller-supplied thermal
// configuration.
func systemFromConfig(t *testing.T, bench string, cfg thermal.Config) *System {
	t.Helper()
	b, err := workload.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	pm, err := b.PowerMap(cfg.Floorplan)
	if err != nil {
		t.Fatal(err)
	}
	m, err := thermal.NewModel(cfg, pm)
	if err != nil {
		t.Fatal(err)
	}
	return newSystemCap(backend.NewFull(m), 0)
}

// paretoHookFront fabricates per-threshold outcomes so the parallel and
// serial Pareto paths can be compared under controlled fault injection.
func paretoHookFront(ambient float64, errAt float64, injected error) func(o Options) (*Outcome, error) {
	return func(o Options) (*Outcome, error) {
		switch {
		case errAt != 0 && math.Abs(o.TMax-errAt) < 1e-9:
			return nil, injected
		case o.TMax >= ambient+20:
			return &Outcome{
				Feasible: true,
				Omega:    100,
				ITEC:     0.5,
				Result:   &thermal.Result{MaxChipTemp: o.TMax - 1},
			}, nil
		default:
			return &Outcome{Result: &thermal.Result{MaxChipTemp: o.TMax + 5}}, nil
		}
	}
}

// TestParetoParallelErrorBelowFrontierMatchesSerial is the regression for
// the parallel-vs-serial error-semantics bug: a backend that fails only
// on a threshold below the frontier (deep in the infeasible region the
// serial path never probes, because it short-circuits at the first
// infeasible threshold) must not fail the parallel front either.
func TestParetoParallelErrorBelowFrontierMatchesSerial(t *testing.T) {
	s := benchSystem(t, "CRC32")
	ambient := s.Config().Ambient
	boom := errors.New("backend melted below the frontier")
	// Feasible at ambient+30/+20, infeasible at +10, error injected at +5
	// — strictly below the first infeasible threshold.
	s.paretoRunHook = paretoHookFront(ambient, ambient+5, boom)
	thresholds := []float64{ambient + 30, ambient + 20, ambient + 10, ambient + 5}

	serial, serr := s.ParetoFront(thresholds, Options{Workers: 1})
	if serr != nil {
		t.Fatalf("serial front failed: %v", serr)
	}
	par, perr := s.ParetoFront(thresholds, Options{Workers: 4})
	if perr != nil {
		t.Fatalf("parallel front failed on an error the serial path never hits: %v", perr)
	}
	if len(par) != len(serial) {
		t.Fatalf("front lengths diverged: %d vs %d", len(par), len(serial))
	}
	for i := range par {
		if par[i] != serial[i] {
			t.Errorf("point %d diverged: parallel %+v, serial %+v", i, par[i], serial[i])
		}
	}
	// The blanked tail: below the frontier both paths report bare
	// thresholds.
	if last := par[len(par)-1]; last.Feasible || last.Power != 0 {
		t.Errorf("below-frontier point not blanked: %+v", last)
	}
}

// TestParetoParallelErrorAtFrontierMatchesSerial: an error at a threshold
// the serial path does solve must fail both paths identically.
func TestParetoParallelErrorAtFrontierMatchesSerial(t *testing.T) {
	s := benchSystem(t, "CRC32")
	ambient := s.Config().Ambient
	boom := errors.New("backend melted at the frontier")
	s.paretoRunHook = paretoHookFront(ambient, ambient+20, boom)
	thresholds := []float64{ambient + 30, ambient + 20, ambient + 10}

	_, serr := s.ParetoFront(thresholds, Options{Workers: 1})
	_, perr := s.ParetoFront(thresholds, Options{Workers: 4})
	if serr == nil || perr == nil {
		t.Fatalf("expected both paths to fail: serial %v, parallel %v", serr, perr)
	}
	for _, err := range []error{serr, perr} {
		if !errors.Is(err, boom) {
			t.Errorf("error lost the injected cause: %v", err)
		}
		if !strings.Contains(err.Error(), fmt.Sprintf("%g", ambient+20)) {
			t.Errorf("error does not name the failing threshold: %v", err)
		}
	}
}
