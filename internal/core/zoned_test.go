package core

import (
	"math"
	"testing"
)

func TestZoningValidation(t *testing.T) {
	s := benchSystem(t, "CRC32")
	m := testModelOf(t, s)

	assign, n := ClusterZones()
	if _, err := m.NewZoning(assign, n); err != nil {
		t.Fatalf("canonical zoning rejected: %v", err)
	}
	if _, err := m.NewZoning(assign, 0); err == nil {
		t.Error("zero zones accepted")
	}
	// Missing a unit.
	incomplete := map[string]int{"L2": 0}
	if _, err := m.NewZoning(incomplete, 1); err == nil {
		t.Error("incomplete assignment accepted")
	}
	// Out-of-range zone.
	bad := map[string]int{}
	for k := range assign {
		bad[k] = 0
	}
	bad["IntExec"] = 7
	if _, err := m.NewZoning(bad, 3); err == nil {
		t.Error("out-of-range zone accepted")
	}
	// Unknown unit in the map.
	withGhost := map[string]int{}
	for k, v := range assign {
		withGhost[k] = v
	}
	withGhost["Ghost"] = 0
	if _, err := m.NewZoning(withGhost, n); err == nil {
		t.Error("unknown unit accepted")
	}
	// A zone with no TEC modules: put the whole die in zone 0 but declare
	// two zones.
	allZero := map[string]int{}
	for k := range assign {
		allZero[k] = 0
	}
	if _, err := m.NewZoning(allZero, 2); err == nil {
		t.Error("empty zone accepted")
	}
}

func TestZonedUniformMatchesScalarPath(t *testing.T) {
	// With every zone at the same current, the zoned solve must agree with
	// the scalar evaluation exactly.
	s := benchSystem(t, "FFT")
	m := testModelOf(t, s)
	assign, n := ClusterZones()
	z, err := m.NewZoning(assign, n)
	if err != nil {
		t.Fatal(err)
	}
	omega := 260.0
	scalar, err := m.Evaluate(omega, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	zoned, err := m.EvaluateZoned(omega, z, []float64{1.5, 1.5, 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(scalar.MaxChipTemp - zoned.MaxChipTemp); d > 1e-6 {
		t.Errorf("uniform zoned Tmax differs by %g K", d)
	}
	if d := math.Abs(scalar.PTEC - zoned.PTEC); d > 1e-6 {
		t.Errorf("uniform zoned PTEC differs by %g W", d)
	}
}

func TestZonedEvaluateValidation(t *testing.T) {
	s := benchSystem(t, "CRC32")
	m := testModelOf(t, s)
	assign, n := ClusterZones()
	z, err := m.NewZoning(assign, n)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.EvaluateZoned(100, nil, []float64{1}); err == nil {
		t.Error("nil zoning accepted")
	}
	if _, err := m.EvaluateZoned(100, z, []float64{1}); err == nil {
		t.Error("wrong current count accepted")
	}
	if _, err := m.EvaluateZoned(100, z, []float64{1, -1, 1}); err == nil {
		t.Error("negative zone current accepted")
	}
}

func TestZonedControlBeatsUniform(t *testing.T) {
	// The k=1 deployment is a restriction of the zoned space, so zoned
	// OFTEC must match or beat the scalar controller on a hot benchmark
	// whose heat concentrates in one zone.
	s := benchSystem(t, "Quicksort")
	uniform, err := s.Run(Options{Mode: ModeHybrid})
	if err != nil {
		t.Fatal(err)
	}
	if !uniform.Feasible {
		t.Fatal("uniform OFTEC infeasible")
	}

	assign, n := ClusterZones()
	z, err := testModelOf(t, s).NewZoning(assign, n)
	if err != nil {
		t.Fatal(err)
	}
	zoned, err := s.RunZoned(z, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !zoned.Feasible {
		t.Fatalf("zoned OFTEC infeasible: %v", zoned)
	}
	if zoned.CoolingPower() > uniform.CoolingPower()+0.3 {
		t.Errorf("zoned 𝒫 = %.2f W worse than uniform %.2f W",
			zoned.CoolingPower(), uniform.CoolingPower())
	}
	// The integer-cluster zone must carry the largest current: that is
	// where Quicksort's hot spots are.
	intZone := 2
	for zidx, cur := range zoned.Currents {
		if zidx != intZone && cur > zoned.Currents[intZone]+1e-6 {
			t.Errorf("zone %d current %.2f exceeds the hot zone's %.2f",
				zidx, cur, zoned.Currents[intZone])
		}
	}
	if zoned.String() == "" {
		t.Error("empty String()")
	}
}
