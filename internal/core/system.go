// Package core implements OFTEC (Algorithm 1 of the paper): the joint
// optimization of fan speed ω and TEC driving current I_TEC that minimizes
// the cooling power 𝒫 = P_leakage + P_TEC + P_fan subject to the thermal
// constraint (Optimization 1), bootstrapped by the maximum-temperature
// minimization (Optimization 2) that supplies a feasible starting point.
// The package also implements the paper's two baselines (variable-speed
// fan without TECs, fixed-speed fan without TECs) and the TEC-only system
// used to demonstrate thermal runaway.
package core

import (
	"fmt"
	"math"
	"sync"

	"oftec/internal/solver"
	"oftec/internal/thermal"
)

// Mode selects which actuators the controller may use. The paper's
// fairness adjustment (baselines keep the TEC stack's conduction, with the
// modules unpowered) makes every mode share one thermal network: a mode is
// a restriction of the decision space, with I_TEC = 0 recovering pure
// conduction through the TEC layer.
type Mode int

const (
	// ModeHybrid optimizes both ω and I_TEC (OFTEC).
	ModeHybrid Mode = iota
	// ModeVariableFan optimizes ω with the TECs unpowered (baseline 1).
	ModeVariableFan
	// ModeFixedFan pins ω to FixedOmega with the TECs unpowered (baseline 2).
	ModeFixedFan
	// ModeTECOnly optimizes I_TEC with the fan off (the runaway demo).
	ModeTECOnly
)

// String names the mode as the paper's figures label it.
func (m Mode) String() string {
	switch m {
	case ModeHybrid:
		return "OFTEC"
	case ModeVariableFan:
		return "Var. ω"
	case ModeFixedFan:
		return "Fixed ω"
	case ModeTECOnly:
		return "TEC only"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Method selects the nonlinear programming technique (Section 5.2).
type Method int

const (
	// MethodSQP is the active-set SQP method the paper selected.
	MethodSQP Method = iota
	// MethodInteriorPoint is the log-barrier comparator.
	MethodInteriorPoint
	// MethodTrustRegion is the trust-region comparator.
	MethodTrustRegion
	// MethodNelderMead is a derivative-free comparator (not in the paper;
	// used for verification).
	MethodNelderMead
	// MethodHookeJeeves is a derivative-free pattern-search comparator.
	MethodHookeJeeves
)

// String names the method.
func (m Method) String() string {
	switch m {
	case MethodSQP:
		return "active-set SQP"
	case MethodInteriorPoint:
		return "interior point"
	case MethodTrustRegion:
		return "trust region"
	case MethodNelderMead:
		return "Nelder-Mead"
	case MethodHookeJeeves:
		return "Hooke-Jeeves"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

func (m Method) run(p *solver.Problem, x0 []float64, opts solver.Options) (solver.Report, error) {
	switch m {
	case MethodSQP:
		return solver.ActiveSetSQP(p, x0, opts)
	case MethodInteriorPoint:
		return solver.InteriorPoint(p, x0, opts)
	case MethodTrustRegion:
		return solver.TrustRegion(p, x0, opts)
	case MethodNelderMead:
		return solver.NelderMead(p, x0, opts)
	case MethodHookeJeeves:
		return solver.HookeJeeves(p, x0, opts)
	default:
		return solver.Report{}, fmt.Errorf("core: unknown method %d", int(m))
	}
}

// chainName is the short stage label used in fallback chains; it matches
// the cmd/oftec -method spelling for the method.
func (m Method) chainName() string {
	switch m {
	case MethodSQP:
		return "sqp"
	case MethodInteriorPoint:
		return "interior"
	case MethodTrustRegion:
		return "trust"
	case MethodNelderMead:
		return "neldermead"
	case MethodHookeJeeves:
		return "hooke"
	default:
		return fmt.Sprintf("method-%d", int(m))
	}
}

// fallbackChain builds the degradation ladder for a run with
// Options.Fallback: the selected method first, then the solver package's
// default chain (SQP → interior point → Hooke-Jeeves) with the selected
// method deduplicated, so every chain ends in the derivative-free stage.
func (m Method) fallbackChain() []solver.NamedRunner {
	chain := []solver.NamedRunner{{Name: m.chainName(), Run: m.run}}
	for _, stage := range solver.DefaultFallbackChain() {
		if stage.Name == m.chainName() {
			continue
		}
		chain = append(chain, stage)
	}
	return chain
}

// System couples a thermal model with the optimization machinery. The
// embedded evaluation cache makes the objective and constraint share one
// thermal solve per operating point; it is safe for concurrent use:
// concurrent misses on the same quantized key coalesce onto a single
// in-flight solve (singleflight), and the bounded cache evicts by
// rotating generations so at most half the working set is dropped at
// once — never the whole cache mid-optimization.
type System struct {
	model *thermal.Model

	mu sync.Mutex
	// cur and old are the two cache generations. Inserts go to cur; a hit
	// in old promotes the entry back into cur, so any key touched between
	// two rotations survives the next one.
	cur, old map[opKey]*thermal.Result
	// inflight tracks solves in progress so concurrent callers of the
	// same key wait for one result instead of duplicating the solve.
	inflight map[opKey]*inflightSolve
	// capacity bounds each generation (≤ 2·capacity entries total).
	capacity int
	stats    CacheStats

	// solveHook, when non-nil, runs immediately before each underlying
	// model.Evaluate — i.e. exactly once per deduplicated cache miss.
	// Test instrumentation only.
	solveHook func(omega, itec float64)
}

type opKey struct{ omega, itec float64 }

// inflightSolve is the rendezvous for callers coalesced onto one solve:
// the leader closes done after filling res/err.
type inflightSolve struct {
	done chan struct{}
	res  *thermal.Result
	err  error
}

// defaultCacheCapacity is the per-generation entry bound; two generations
// give the same ~16k-point footprint as the historical single map.
const defaultCacheCapacity = 1 << 13

// CacheStats counts evaluation-cache traffic; totals are cumulative for
// the System's lifetime.
type CacheStats struct {
	// Hits were served from a completed cached solve.
	Hits int64
	// Waits were coalesced onto another caller's in-flight solve — each
	// one is a thermal solve that the old cache would have duplicated.
	Waits int64
	// Misses are underlying model solves started (one per unique key).
	Misses int64
	// Rotations counts generation rotations (bounded evictions).
	Rotations int64
}

// NewSystem wraps a thermal model.
func NewSystem(model *thermal.Model) *System {
	return &System{
		model:    model,
		cur:      make(map[opKey]*thermal.Result),
		inflight: make(map[opKey]*inflightSolve),
		capacity: defaultCacheCapacity,
	}
}

// Model returns the underlying thermal model.
func (s *System) Model() *thermal.Model { return s.model }

// CacheStats returns a snapshot of the evaluation-cache counters.
func (s *System) CacheStats() CacheStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Evaluate returns the (cached) steady state at an operating point, using
// the linearized-leakage solve the optimizers work with. Concurrent
// callers requesting the same quantized point share one solve.
func (s *System) Evaluate(omega, itec float64) (*thermal.Result, error) {
	return s.EvaluateWarm(omega, itec, nil)
}

// EvaluateWarm is Evaluate with an optional warm-start temperature field
// (length Model.NumNodes), typically the T of a neighboring operating
// point. The hint only steers the iterative solver on a genuine cache
// miss — hits and coalesced waits return the already-solved result and
// ignore it — so the answer for a given point is the same either way; the
// hint merely makes the cold solve cheaper. The warm slice is read, never
// written.
func (s *System) EvaluateWarm(omega, itec float64, warm []float64) (*thermal.Result, error) {
	key := opKey{quantize(omega), quantize(itec)}
	s.mu.Lock()
	if r, ok := s.lookupLocked(key); ok {
		s.stats.Hits++
		s.mu.Unlock()
		return r, nil
	}
	if fl, ok := s.inflight[key]; ok {
		s.stats.Waits++
		s.mu.Unlock()
		<-fl.done
		return fl.res, fl.err
	}
	fl := &inflightSolve{done: make(chan struct{})}
	s.inflight[key] = fl
	s.stats.Misses++
	hook := s.solveHook
	s.mu.Unlock()

	if hook != nil {
		hook(omega, itec)
	}
	fl.res, fl.err = s.model.EvaluateWarm(omega, itec, warm)

	s.mu.Lock()
	delete(s.inflight, key)
	if fl.err == nil {
		s.storeLocked(key, fl.res)
	}
	s.mu.Unlock()
	close(fl.done)
	return fl.res, fl.err
}

// lookupLocked checks both generations, promoting old-generation hits
// into the current one so the hot working set survives the next rotation.
func (s *System) lookupLocked(key opKey) (*thermal.Result, bool) {
	if r, ok := s.cur[key]; ok {
		return r, true
	}
	if r, ok := s.old[key]; ok {
		delete(s.old, key)
		s.storeLocked(key, r)
		return r, true
	}
	return nil, false
}

// storeLocked inserts into the current generation, rotating when full:
// the previous generation is kept readable, so an eviction discards at
// most the stale half of the working set.
func (s *System) storeLocked(key opKey, r *thermal.Result) {
	if len(s.cur) >= s.capacity {
		s.old = s.cur
		s.cur = make(map[opKey]*thermal.Result, len(s.old))
		s.stats.Rotations++
	}
	s.cur[key] = r
}

// quantize rounds an operating coordinate so cache keys are insensitive to
// last-bit noise from the line searches.
func quantize(v float64) float64 { return math.Round(v*1e9) / 1e9 }

// evalFunc abstracts the steady-state evaluation so Run can swap the
// plain cached path for a warm-start carry (Options.WarmStart).
type evalFunc func(omega, itec float64) (*thermal.Result, error)

// maxTempObj is the 𝒯 objective; runaway maps to the Infeasible sentinel.
func maxTempObj(eval evalFunc, omega, itec float64) float64 {
	r, err := eval(omega, itec)
	if err != nil || r.Runaway {
		return solver.Infeasible
	}
	return r.MaxChipTemp
}

// coolingPowerObj is the 𝒫 objective.
func coolingPowerObj(eval evalFunc, omega, itec float64) float64 {
	r, err := eval(omega, itec)
	if err != nil || r.Runaway {
		return solver.Infeasible
	}
	return r.CoolingPower()
}

// maxTemp is the 𝒯 objective on the plain cached path.
func (s *System) maxTemp(omega, itec float64) float64 {
	return maxTempObj(s.Evaluate, omega, itec)
}

// coolingPower is the 𝒫 objective on the plain cached path.
func (s *System) coolingPower(omega, itec float64) float64 {
	return coolingPowerObj(s.Evaluate, omega, itec)
}

// warmCarry hands each solve the previous converged temperature field as
// its starting point — the optimizer's line searches move in small steps,
// so consecutive solves are near each other and the iterative solver
// converges in a fraction of the iterations. Safe for concurrent use
// (MultiStart's corner launch shares one carry): the carry is advisory
// only, so racing updates change which hint the next cold solve starts
// from, never the converged result beyond solver tolerance.
type warmCarry struct {
	sys *System

	mu sync.Mutex
	t  []float64
}

func (w *warmCarry) evaluate(omega, itec float64) (*thermal.Result, error) {
	w.mu.Lock()
	warm := w.t
	w.mu.Unlock()
	res, err := w.sys.EvaluateWarm(omega, itec, warm)
	if err == nil && !res.Runaway && res.T != nil {
		// Result fields are shared and immutable; EvaluateWarm only reads
		// the hint, so carrying the slice forward is safe.
		w.mu.Lock()
		w.t = res.T
		w.mu.Unlock()
	}
	return res, err
}

// bounds returns the decision-variable box for a mode; x = (ω, I_TEC).
func (s *System) bounds(mode Mode, fixedOmega float64) (lower, upper []float64, err error) {
	cfg := s.model.Config()
	switch mode {
	case ModeHybrid:
		return []float64{0, 0}, []float64{cfg.Fan.OmegaMax, cfg.TEC.MaxCurrent}, nil
	case ModeVariableFan:
		return []float64{0, 0}, []float64{cfg.Fan.OmegaMax, 0}, nil
	case ModeFixedFan:
		if fixedOmega < 0 || fixedOmega > cfg.Fan.OmegaMax {
			return nil, nil, fmt.Errorf("core: fixed fan speed %g outside [0, %g]", fixedOmega, cfg.Fan.OmegaMax)
		}
		return []float64{fixedOmega, 0}, []float64{fixedOmega, 0}, nil
	case ModeTECOnly:
		return []float64{0, 0}, []float64{0, cfg.TEC.MaxCurrent}, nil
	default:
		return nil, nil, fmt.Errorf("core: unknown mode %d", int(mode))
	}
}
