// Package core implements OFTEC (Algorithm 1 of the paper): the joint
// optimization of fan speed ω and TEC driving current I_TEC that minimizes
// the cooling power 𝒫 = P_leakage + P_TEC + P_fan subject to the thermal
// constraint (Optimization 1), bootstrapped by the maximum-temperature
// minimization (Optimization 2) that supplies a feasible starting point.
// The package also implements the paper's two baselines (variable-speed
// fan without TECs, fixed-speed fan without TECs) and the TEC-only system
// used to demonstrate thermal runaway.
//
// The optimizer never touches the thermal model directly: every steady
// state comes from a backend.Evaluator ("full" or "rom") behind the shared
// evalcache, so the scalar and zoned paths — and any backend the caller
// selects — share one bounded cache and one set of statistics.
package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"oftec/internal/backend"
	"oftec/internal/evalcache"
	"oftec/internal/solver"
	"oftec/internal/thermal"
)

// Mode selects which actuators the controller may use. The paper's
// fairness adjustment (baselines keep the TEC stack's conduction, with the
// modules unpowered) makes every mode share one thermal network: a mode is
// a restriction of the decision space, with I_TEC = 0 recovering pure
// conduction through the TEC layer.
type Mode int

const (
	// ModeHybrid optimizes both ω and I_TEC (OFTEC).
	ModeHybrid Mode = iota
	// ModeVariableFan optimizes ω with the TECs unpowered (baseline 1).
	ModeVariableFan
	// ModeFixedFan pins ω to FixedOmega with the TECs unpowered (baseline 2).
	ModeFixedFan
	// ModeTECOnly optimizes I_TEC with the fan off (the runaway demo).
	ModeTECOnly
)

// String names the mode as the paper's figures label it.
func (m Mode) String() string {
	switch m {
	case ModeHybrid:
		return "OFTEC"
	case ModeVariableFan:
		return "Var. ω"
	case ModeFixedFan:
		return "Fixed ω"
	case ModeTECOnly:
		return "TEC only"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Method selects the nonlinear programming technique (Section 5.2).
type Method int

const (
	// MethodSQP is the active-set SQP method the paper selected.
	MethodSQP Method = iota
	// MethodInteriorPoint is the log-barrier comparator.
	MethodInteriorPoint
	// MethodTrustRegion is the trust-region comparator.
	MethodTrustRegion
	// MethodNelderMead is a derivative-free comparator (not in the paper;
	// used for verification).
	MethodNelderMead
	// MethodHookeJeeves is a derivative-free pattern-search comparator.
	MethodHookeJeeves
)

// String names the method.
func (m Method) String() string {
	switch m {
	case MethodSQP:
		return "active-set SQP"
	case MethodInteriorPoint:
		return "interior point"
	case MethodTrustRegion:
		return "trust region"
	case MethodNelderMead:
		return "Nelder-Mead"
	case MethodHookeJeeves:
		return "Hooke-Jeeves"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

func (m Method) run(p *solver.Problem, x0 []float64, opts solver.Options) (solver.Report, error) {
	switch m {
	case MethodSQP:
		return solver.ActiveSetSQP(p, x0, opts)
	case MethodInteriorPoint:
		return solver.InteriorPoint(p, x0, opts)
	case MethodTrustRegion:
		return solver.TrustRegion(p, x0, opts)
	case MethodNelderMead:
		return solver.NelderMead(p, x0, opts)
	case MethodHookeJeeves:
		return solver.HookeJeeves(p, x0, opts)
	default:
		return solver.Report{}, fmt.Errorf("core: unknown method %d", int(m))
	}
}

// chainName is the short stage label used in fallback chains; it matches
// the cmd/oftec -method spelling for the method.
func (m Method) chainName() string {
	switch m {
	case MethodSQP:
		return "sqp"
	case MethodInteriorPoint:
		return "interior"
	case MethodTrustRegion:
		return "trust"
	case MethodNelderMead:
		return "neldermead"
	case MethodHookeJeeves:
		return "hooke"
	default:
		return fmt.Sprintf("method-%d", int(m))
	}
}

// fallbackChain builds the degradation ladder for a run with
// Options.Fallback: the selected method first, then the solver package's
// default chain (SQP → interior point → Hooke-Jeeves) with the selected
// method deduplicated, so every chain ends in the derivative-free stage.
func (m Method) fallbackChain() []solver.NamedRunner {
	chain := []solver.NamedRunner{{Name: m.chainName(), Run: m.run}}
	for _, stage := range solver.DefaultFallbackChain() {
		if stage.Name == m.chainName() {
			continue
		}
		chain = append(chain, stage)
	}
	return chain
}

// System couples a thermal backend with the optimization machinery. All
// steady-state evaluations — scalar and zoned, from every backend the
// caller selects — go through one shared evalcache.Cache, so the objective
// and constraint share one backend solve per operating point. It is safe
// for concurrent use: concurrent misses on the same quantized key coalesce
// onto a single in-flight solve (singleflight), and the bounded cache
// evicts by rotating generations so at most half the working set is
// dropped at once — never the whole cache mid-optimization.
type System struct {
	ev     backend.Evaluator
	cache  *evalcache.Cache
	scalar *evalcache.Binding

	// selections memoizes Options.Backend resolutions so repeated runs on
	// the same System reuse one binding (and its cache space) per backend.
	selMu      sync.Mutex
	selections map[string]selection

	// zoned memoizes zoned bindings per (backend, zoning), so repeated
	// zoned runs and evaluations — every optimize request a service
	// answers for the same chip and zoning — share one cache key space
	// instead of opening a fresh one per call.
	zonedMu sync.Mutex
	zoned   map[zonedKey]*evalcache.Binding

	// solveHook, when non-nil, runs immediately before each underlying
	// scalar backend solve — i.e. exactly once per deduplicated cache
	// miss. Test instrumentation only; set before any traffic.
	solveHook func(omega, itec float64)

	// paretoRunHook, when non-nil, replaces Run for ParetoFront's
	// per-threshold solves, so tests can fault-inject specific thresholds.
	// Test instrumentation only; set before any traffic.
	paretoRunHook func(o Options) (*Outcome, error)

	// batchOff disables the blocked evaluation paths (see SetBatching);
	// the zero value keeps batching on.
	batchOff atomic.Bool
}

// zonedKey identifies one memoized zoned binding: the Options.Backend
// name it was resolved under and the zoning identity.
type zonedKey struct {
	backend string
	zoning  *thermal.Zoning
}

type selection struct {
	ev  backend.Evaluator
	bnd *evalcache.Binding
}

// CacheStats counts evaluation-cache traffic; totals are cumulative for
// the System's lifetime, across the scalar and zoned paths and every
// selected backend.
type CacheStats = evalcache.Stats

// NewSystem wraps a thermal backend (see backend.FromModel / backend.New).
func NewSystem(ev backend.Evaluator) *System { return newSystemCap(ev, 0) }

// NewSystemShared wraps a backend over a caller-owned evaluation cache,
// so several Systems — one per chip configuration in a model pool — share
// one bounded cache, one eviction budget, and one set of traffic
// statistics, and cross-System duplicate operating points coalesce. The
// cache's solve hook is left untouched (the owner may have metrics
// attached); the per-System solveHook test seam is inert on shared
// systems.
func NewSystemShared(ev backend.Evaluator, cache *evalcache.Cache) *System {
	return &System{
		ev:         ev,
		cache:      cache,
		scalar:     cache.Bind(ev),
		selections: map[string]selection{},
		zoned:      map[zonedKey]*evalcache.Binding{},
	}
}

// newSystemCap is NewSystem with an explicit per-generation cache
// capacity; zero selects the default. Tests use small capacities to
// exercise eviction.
func newSystemCap(ev backend.Evaluator, capacity int) *System {
	s := &System{
		ev:         ev,
		cache:      evalcache.New(capacity),
		selections: map[string]selection{},
		zoned:      map[zonedKey]*evalcache.Binding{},
	}
	s.cache.SetSolveHook(func(op backend.OpPoint) {
		if h := s.solveHook; h != nil && op.K() == 1 {
			h(op.Omega, op.Currents[0])
		}
	})
	s.scalar = s.cache.Bind(ev)
	return s
}

// Backend returns the evaluator the system was built on.
func (s *System) Backend() backend.Evaluator { return s.ev }

// Config returns the thermal configuration under optimization.
func (s *System) Config() thermal.Config { return s.ev.Config() }

// CacheStats returns a snapshot of the evaluation-cache counters.
func (s *System) CacheStats() CacheStats { return s.cache.Stats() }

// Evaluate returns the (cached) steady state at a scalar operating point,
// using the system's default backend. Concurrent callers requesting the
// same quantized point share one solve.
func (s *System) Evaluate(omega, itec float64) (*thermal.Result, error) {
	return s.EvaluateWarm(omega, itec, nil)
}

// EvaluateWarm is Evaluate with an optional warm-start temperature field
// (length NumNodes), typically the T of a neighboring operating point.
// The hint only steers the iterative solver on a genuine cache miss —
// hits and coalesced waits return the already-solved result and ignore it
// — so the answer for a given point is the same either way; the hint
// merely makes the cold solve cheaper. The warm slice is read, never
// written.
func (s *System) EvaluateWarm(omega, itec float64, warm []float64) (*thermal.Result, error) {
	return s.scalar.Evaluate(context.Background(), backend.Scalar(omega, itec), warm)
}

// EvaluateWarmContext is EvaluateWarm bounded by a caller context (see
// EvaluateContext for the cancellation semantics).
func (s *System) EvaluateWarmContext(ctx context.Context, omega, itec float64, warm []float64) (*thermal.Result, error) {
	return s.scalar.Evaluate(ctx, backend.Scalar(omega, itec), warm)
}

// EvaluateContext is Evaluate bounded by a caller context: a cancelled
// ctx releases coalesced waiters immediately (the leader's solve runs to
// completion for the benefit of other callers). Service request paths use
// this so a client deadline never wedges a handler on someone else's
// solve.
func (s *System) EvaluateContext(ctx context.Context, omega, itec float64) (*thermal.Result, error) {
	return s.scalar.Evaluate(ctx, backend.Scalar(omega, itec), nil)
}

// EvaluateZonedContext evaluates a zoned operating point (one current per
// zone) through the shared cache under a caller context. The binding for
// each zoning is memoized, so repeated calls with one zoning — a service
// answering many requests for the same chip — share one cache key space
// and coalesce duplicates.
func (s *System) EvaluateZonedContext(ctx context.Context, zoning *thermal.Zoning, omega float64, currents []float64) (*thermal.Result, error) {
	bnd, err := s.zonedBinding("", zoning)
	if err != nil {
		return nil, err
	}
	return bnd.Evaluate(ctx, backend.OpPoint{Omega: omega, Currents: currents}, nil)
}

// zonedBinding resolves (backend name, zoning) to its cached evaluator,
// memoized for the System's lifetime.
func (s *System) zonedBinding(name string, zoning *thermal.Zoning) (*evalcache.Binding, error) {
	if zoning == nil {
		return nil, fmt.Errorf("core: zoned evaluation needs a zoning")
	}
	zk := zonedKey{backend: name, zoning: zoning}
	s.zonedMu.Lock()
	defer s.zonedMu.Unlock()
	if bnd, ok := s.zoned[zk]; ok {
		return bnd, nil
	}
	sel, err := s.binding(name)
	if err != nil {
		return nil, err
	}
	zoner, ok := sel.ev.(backend.Zoner)
	if !ok {
		return nil, fmt.Errorf("core: backend %q cannot evaluate zoned operating points", sel.ev.Name())
	}
	zev, err := zoner.WithZoning(zoning)
	if err != nil {
		return nil, err
	}
	bnd := s.cache.Bind(zev)
	s.zoned[zk] = bnd
	return bnd, nil
}

// binding resolves an Options.Backend name to a cached evaluator: the
// empty name (or the system's own backend name) is the system's default;
// anything else goes through the backend's Selector capability, memoized
// so repeated runs share one cache space per backend.
func (s *System) binding(name string) (selection, error) {
	if name == "" || name == s.ev.Name() {
		return selection{ev: s.ev, bnd: s.scalar}, nil
	}
	s.selMu.Lock()
	defer s.selMu.Unlock()
	if sel, ok := s.selections[name]; ok {
		return sel, nil
	}
	selector, ok := s.ev.(backend.Selector)
	if !ok {
		return selection{}, fmt.Errorf("core: backend %q cannot select %q", s.ev.Name(), name)
	}
	ev, err := selector.Select(name)
	if err != nil {
		return selection{}, err
	}
	sel := selection{ev: ev, bnd: s.cache.Bind(ev)}
	s.selections[name] = sel
	return sel, nil
}

// vecEval abstracts the steady-state evaluation of a decision vector
// x = (ω, I_1..I_k) so runVector can swap the plain cached path for a
// warm-start carry (Options.WarmStart).
type vecEval func(x []float64) (*thermal.Result, error)

// bindingEval evaluates through the shared cache with no warm hint.
func bindingEval(bnd *evalcache.Binding) vecEval {
	return func(x []float64) (*thermal.Result, error) {
		return bnd.Evaluate(context.Background(), backend.OpPoint{Omega: x[0], Currents: x[1:]}, nil)
	}
}

// maxTempObj is the 𝒯 objective; runaway maps to the Infeasible sentinel.
func maxTempObj(eval vecEval, x []float64) float64 {
	r, err := eval(x)
	if err != nil || r.Runaway {
		return solver.Infeasible
	}
	return r.MaxChipTemp
}

// coolingPowerObj is the 𝒫 objective.
func coolingPowerObj(eval vecEval, x []float64) float64 {
	r, err := eval(x)
	if err != nil || r.Runaway {
		return solver.Infeasible
	}
	return r.CoolingPower()
}

// maxTemp is the scalar 𝒯 objective on the plain cached path.
func (s *System) maxTemp(omega, itec float64) float64 {
	return maxTempObj(bindingEval(s.scalar), []float64{omega, itec})
}

// coolingPower is the scalar 𝒫 objective on the plain cached path.
func (s *System) coolingPower(omega, itec float64) float64 {
	return coolingPowerObj(bindingEval(s.scalar), []float64{omega, itec})
}

// warmCarry hands each solve the previous converged temperature field as
// its starting point — the optimizer's line searches move in small steps,
// so consecutive solves are near each other and the iterative solver
// converges in a fraction of the iterations. Safe for concurrent use
// (MultiStart's corner launch shares one carry): the carry is advisory
// only, so racing updates change which hint the next cold solve starts
// from, never the converged result beyond solver tolerance.
type warmCarry struct {
	bnd *evalcache.Binding

	mu sync.Mutex
	t  []float64
}

func (w *warmCarry) evaluate(x []float64) (*thermal.Result, error) {
	w.mu.Lock()
	warm := w.t
	w.mu.Unlock()
	res, err := w.bnd.Evaluate(context.Background(), backend.OpPoint{Omega: x[0], Currents: x[1:]}, warm)
	if err == nil && !res.Runaway && res.T != nil {
		// Result fields are shared and immutable; the backend only reads
		// the hint, so carrying the slice forward is safe.
		w.mu.Lock()
		w.t = res.T
		w.mu.Unlock()
	}
	return res, err
}

// bounds returns the decision-variable box for a mode over k control
// zones; x = (ω, I_1..I_k). Every zone shares the mode's current limits —
// a mode restricts actuators, not the zone layout.
func (s *System) bounds(mode Mode, fixedOmega float64, k int) (lower, upper []float64, err error) {
	if k < 1 {
		return nil, nil, fmt.Errorf("core: bounds need at least one control zone, got %d", k)
	}
	cfg := s.ev.Config()
	lower = make([]float64, 1+k)
	upper = make([]float64, 1+k)
	setCurrents := func(limit float64) {
		for i := 1; i <= k; i++ {
			upper[i] = limit
		}
	}
	uMax := cfg.UMax()
	switch mode {
	case ModeHybrid:
		upper[0] = uMax
		setCurrents(cfg.TEC.MaxCurrent)
	case ModeVariableFan:
		upper[0] = uMax
	case ModeFixedFan:
		if fixedOmega < 0 || fixedOmega > uMax {
			return nil, nil, fmt.Errorf("core: fixed actuator command %g outside [0, %g]", fixedOmega, uMax)
		}
		lower[0], upper[0] = fixedOmega, fixedOmega
	case ModeTECOnly:
		setCurrents(cfg.TEC.MaxCurrent)
	default:
		return nil, nil, fmt.Errorf("core: unknown mode %d", int(mode))
	}
	return lower, upper, nil
}
