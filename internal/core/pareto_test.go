package core

import (
	"reflect"
	"testing"

	"oftec/internal/units"
)

func TestParetoFrontShape(t *testing.T) {
	s := benchSystem(t, "Quicksort")
	thresholds := []float64{
		units.CToK(95), units.CToK(90), units.CToK(85), units.CToK(80), units.CToK(60),
	}
	front, err := s.ParetoFront(thresholds, Options{Mode: ModeHybrid})
	if err != nil {
		t.Fatal(err)
	}
	if len(front) != len(thresholds) {
		t.Fatalf("got %d points", len(front))
	}
	// Points come back in descending threshold order.
	for i := 1; i < len(front); i++ {
		if front[i].TMax >= front[i-1].TMax {
			t.Fatalf("thresholds not descending: %v then %v", front[i-1].TMax, front[i].TMax)
		}
	}
	// Monotone trade-off: tighter feasible thresholds cost at least as
	// much power (small solver slack allowed).
	var prev *ParetoPoint
	feasibleCount := 0
	for i := range front {
		p := &front[i]
		if !p.Feasible {
			continue
		}
		feasibleCount++
		if p.MaxTemp >= p.TMax {
			t.Errorf("threshold %g: achieved %g not strictly below", p.TMax, p.MaxTemp)
		}
		if prev != nil && p.Power < prev.Power-0.2 {
			t.Errorf("power not monotone: %g W at T_max=%g after %g W at %g",
				p.Power, p.TMax, prev.Power, prev.TMax)
		}
		prev = p
	}
	if feasibleCount < 2 {
		t.Fatalf("only %d feasible points; sweep too tight to be informative", feasibleCount)
	}
	// 60 °C is below what Quicksort can reach with any cooling: the sweep
	// must report it infeasible.
	if front[len(front)-1].Feasible {
		t.Error("60 °C threshold unexpectedly feasible")
	}
}

// TestParetoFrontParallelMatchesSerial pins the fan-out contract: the
// parallel threshold probe plus monotonicity post-pass must reproduce the
// serial short-circuit path exactly. The sweep deliberately includes an
// infeasible tail (60/55 °C) so the post-pass blanking is exercised.
func TestParetoFrontParallelMatchesSerial(t *testing.T) {
	thresholds := []float64{
		units.CToK(95), units.CToK(90), units.CToK(85), units.CToK(60), units.CToK(55),
	}
	serialSys := benchSystem(t, "Quicksort")
	serial, err := serialSys.ParetoFront(thresholds, Options{Mode: ModeHybrid, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallelSys := benchSystem(t, "Quicksort")
	par, err := parallelSys.ParetoFront(thresholds, Options{Mode: ModeHybrid, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Fatalf("fronts differ:\nserial   %+v\nparallel %+v", serial, par)
	}
	// The infeasible tail must be blanked on both paths.
	for _, front := range [][]ParetoPoint{serial, par} {
		tail := front[len(front)-1]
		if tail.Feasible || tail.Power != 0 || tail.Omega != 0 {
			t.Errorf("55 °C point not blanked: %+v", tail)
		}
	}
}

func TestParetoFrontValidation(t *testing.T) {
	s := benchSystem(t, "CRC32")
	if _, err := s.ParetoFront(nil, Options{}); err == nil {
		t.Error("empty sweep accepted")
	}
	if _, err := s.ParetoFront([]float64{300}, Options{}); err == nil {
		t.Error("threshold below ambient accepted")
	}
}

func TestTMaxOverride(t *testing.T) {
	s := benchSystem(t, "Basicmath")
	strict, err := s.Run(Options{Mode: ModeHybrid, TMax: units.CToK(60)})
	if err != nil {
		t.Fatal(err)
	}
	if !strict.Feasible {
		t.Fatalf("60 °C should be reachable for Basicmath: %v", strict)
	}
	if strict.Result.MaxChipTemp >= units.CToK(60) {
		t.Errorf("override ignored: Tmax = %g", units.KToC(strict.Result.MaxChipTemp))
	}
	loose, err := s.Run(Options{Mode: ModeHybrid})
	if err != nil {
		t.Fatal(err)
	}
	if strict.CoolingPower() < loose.CoolingPower()-1e-6 {
		t.Errorf("stricter threshold cheaper (%g W) than default (%g W)",
			strict.CoolingPower(), loose.CoolingPower())
	}
}
