package core

import (
	"math"
	"strings"
	"testing"

	"oftec/internal/backend"
	"oftec/internal/floorplan"
	"oftec/internal/power"
	"oftec/internal/solver"
	"oftec/internal/thermal"
	"oftec/internal/units"
	"oftec/internal/workload"
)

// testConfig mirrors the thermal test configuration: reduced resolution for
// speed, identical physics.
func testConfig() thermal.Config {
	cfg := thermal.DefaultConfig()
	cfg.ChipRes = 8
	cfg.SpreaderRes = 7
	cfg.SinkRes = 6
	cfg.PCBRes = 4
	return cfg
}

func benchSystem(t *testing.T, bench string) *System {
	t.Helper()
	return benchSystemCap(t, bench, 0)
}

// benchSystemCap builds a system over the full backend with an explicit
// evaluation-cache generation capacity (zero = default); the eviction
// tests use tiny capacities to force rotations.
func benchSystemCap(t *testing.T, bench string, capacity int) *System {
	t.Helper()
	cfg := testConfig()
	b, err := workload.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	pm, err := b.PowerMap(cfg.Floorplan)
	if err != nil {
		t.Fatal(err)
	}
	m, err := thermal.NewModel(cfg, pm)
	if err != nil {
		t.Fatal(err)
	}
	return newSystemCap(backend.NewFull(m), capacity)
}

// testModelOf digs the underlying physics model out of a system's backend
// for tests that exercise model-level APIs (zoning construction, hottest
// unit) alongside the decoupled evaluation path.
func testModelOf(t *testing.T, s *System) *thermal.Model {
	t.Helper()
	m, ok := backend.ModelOf(s.Backend())
	if !ok {
		t.Fatalf("backend %q exposes no underlying model", s.Backend().Name())
	}
	return m
}

func TestModeAndMethodStrings(t *testing.T) {
	if ModeHybrid.String() != "OFTEC" || ModeVariableFan.String() != "Var. ω" ||
		ModeFixedFan.String() != "Fixed ω" || ModeTECOnly.String() != "TEC only" {
		t.Error("mode names do not match the paper's figure labels")
	}
	if Mode(99).String() == "" || Method(99).String() == "" {
		t.Error("unknown enum values must still render")
	}
	if MethodSQP.String() != "active-set SQP" {
		t.Errorf("MethodSQP = %q", MethodSQP.String())
	}
}

func TestEvaluateCaching(t *testing.T) {
	s := benchSystem(t, "CRC32")
	r1, err := s.Evaluate(200, 1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Evaluate(200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("identical operating points should hit the cache")
	}
	// Last-bit noise maps to the same key.
	r3, err := s.Evaluate(200+1e-12, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r3 {
		t.Error("quantization should absorb last-bit noise")
	}
}

func TestOFTECOnMildBenchmark(t *testing.T) {
	s := benchSystem(t, "Basicmath")
	cfg := s.Config()

	oftec, err := s.Run(Options{Mode: ModeHybrid})
	if err != nil {
		t.Fatal(err)
	}
	if !oftec.Feasible {
		t.Fatalf("OFTEC infeasible on a mild benchmark: %v", oftec)
	}
	if oftec.ITEC <= 0 || oftec.ITEC > cfg.TEC.MaxCurrent {
		t.Errorf("I* = %g, want in (0, %g] (leakage savings pay for a small current)", oftec.ITEC, cfg.TEC.MaxCurrent)
	}
	if oftec.Omega <= 0 || oftec.Omega > cfg.Fan.OmegaMax {
		t.Errorf("ω* = %g outside (0, %g]", oftec.Omega, cfg.Fan.OmegaMax)
	}

	varFan, err := s.Run(Options{Mode: ModeVariableFan})
	if err != nil {
		t.Fatal(err)
	}
	if !varFan.Feasible {
		t.Fatal("variable-fan baseline infeasible on a mild benchmark")
	}
	if varFan.ITEC != 0 {
		t.Errorf("baseline used TEC current %g", varFan.ITEC)
	}
	// The paper's headline: OFTEC consumes less power and runs cooler
	// than the fan-only baseline on benchmarks both can cool.
	if oftec.CoolingPower() >= varFan.CoolingPower() {
		t.Errorf("OFTEC 𝒫 = %g not below baseline %g", oftec.CoolingPower(), varFan.CoolingPower())
	}
	if oftec.Result.MaxChipTemp >= varFan.Result.MaxChipTemp {
		t.Errorf("OFTEC Tmax = %g not below baseline %g",
			oftec.Result.MaxChipTemp, varFan.Result.MaxChipTemp)
	}
}

func TestOFTECRescuesHotBenchmark(t *testing.T) {
	s := benchSystem(t, "Quicksort")
	cfg := s.Config()

	oftec, err := s.Run(Options{Mode: ModeHybrid})
	if err != nil {
		t.Fatal(err)
	}
	if !oftec.Feasible {
		t.Fatalf("OFTEC failed on Quicksort: %v", oftec)
	}
	if oftec.Result.MaxChipTemp >= cfg.TMax {
		t.Errorf("Tmax %g not strictly below TMax %g", oftec.Result.MaxChipTemp, cfg.TMax)
	}
	if oftec.ITEC < 0.5 {
		t.Errorf("hot benchmark should need substantial TEC current, got %g", oftec.ITEC)
	}

	for _, mode := range []Mode{ModeVariableFan, ModeFixedFan} {
		base, err := s.Run(Options{Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		if base.Feasible {
			t.Errorf("%s baseline should fail on Quicksort (Figure 6(e)), got %v", mode, base)
		}
	}
}

func TestTECOnlyRunsAway(t *testing.T) {
	s := benchSystem(t, "Basicmath")
	out, err := s.Run(Options{Mode: ModeTECOnly})
	if err != nil {
		t.Fatal(err)
	}
	if out.Feasible {
		t.Fatalf("TEC-only system should hit thermal runaway (Section 6.2), got %v", out)
	}
	if !out.FailedAtOpt2 {
		t.Error("TEC-only failure should be detected at Optimization 2")
	}
	if out.Omega != 0 {
		t.Errorf("TEC-only mode moved the fan: ω = %g", out.Omega)
	}
}

func TestFixedFanPinsOmega(t *testing.T) {
	s := benchSystem(t, "CRC32")
	out, err := s.Run(Options{Mode: ModeFixedFan})
	if err != nil {
		t.Fatal(err)
	}
	want := units.RPMToRadPerSec(2000)
	if math.Abs(out.Omega-want) > 1e-9 {
		t.Errorf("fixed fan ω = %g, want %g", out.Omega, want)
	}
	if out.ITEC != 0 {
		t.Errorf("fixed fan baseline drove TECs: I = %g", out.ITEC)
	}
	// A custom pinned speed.
	out2, err := s.Run(Options{Mode: ModeFixedFan, FixedOmega: units.RPMToRadPerSec(3000)})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out2.Omega-units.RPMToRadPerSec(3000)) > 1e-9 {
		t.Errorf("custom fixed ω = %g", out2.Omega)
	}
	if _, err := s.Run(Options{Mode: ModeFixedFan, FixedOmega: 1e6}); err == nil {
		t.Error("out-of-range fixed speed accepted")
	}
}

func TestMinimizeMaxTempBeatsAlgorithm1Temperature(t *testing.T) {
	s := benchSystem(t, "BitCount")
	full, err := s.MinimizeMaxTemp(Options{Mode: ModeHybrid})
	if err != nil {
		t.Fatal(err)
	}
	alg1, err := s.Run(Options{Mode: ModeHybrid})
	if err != nil {
		t.Fatal(err)
	}
	// Optimization 2 minimizes temperature; Algorithm 1 trades it for
	// power. Figure 6(e): OFTEC "slightly increases the temperature in
	// order to reduce the cooling power consumption."
	if full.Result.MaxChipTemp > alg1.Result.MaxChipTemp+0.5 {
		t.Errorf("min-max-temp (%g) hotter than Algorithm 1 (%g)",
			full.Result.MaxChipTemp, alg1.Result.MaxChipTemp)
	}
	if full.CoolingPower() < alg1.CoolingPower()-0.5 {
		t.Errorf("min-max-temp power (%g) below Algorithm 1 (%g); Opt2 should spend more",
			full.CoolingPower(), alg1.CoolingPower())
	}
}

func TestMinimizeMaxTempOFTECBeatsBaselines(t *testing.T) {
	// Figure 6(c): after Optimization 2, OFTEC achieves a lower maximum
	// temperature than both baselines on every benchmark.
	for _, bench := range []string{"Basicmath", "Quicksort"} {
		s := benchSystem(t, bench)
		oftec, err := s.MinimizeMaxTemp(Options{Mode: ModeHybrid})
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range []Mode{ModeVariableFan, ModeFixedFan} {
			base, err := s.MinimizeMaxTemp(Options{Mode: mode})
			if err != nil {
				t.Fatal(err)
			}
			if oftec.Result.MaxChipTemp >= base.Result.MaxChipTemp {
				t.Errorf("%s: OFTEC Opt2 Tmax %g not below %s's %g",
					bench, oftec.Result.MaxChipTemp, mode, base.Result.MaxChipTemp)
			}
		}
	}
}

func TestSQPNearGridSearchOptimum(t *testing.T) {
	// Verify the active-set SQP solution quality against a dense grid
	// search on the true objective (Section 6.2: "the active-set SQP can
	// find a very high quality solution").
	s := benchSystem(t, "Stringsearch")
	cfg := s.Config()
	out, err := s.Run(Options{Mode: ModeHybrid})
	if err != nil {
		t.Fatal(err)
	}

	prob := &solver.Problem{
		F: func(x []float64) float64 { return s.coolingPower(x[0], x[1]) },
		Cons: []solver.Func{
			func(x []float64) float64 { return s.maxTemp(x[0], x[1]) - cfg.TMax },
		},
		Lower: []float64{0, 0},
		Upper: []float64{cfg.Fan.OmegaMax, cfg.TEC.MaxCurrent},
	}
	grid, err := solver.GridSearch(prob, 33, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !grid.Feasible(0) {
		t.Fatal("grid search found no feasible point")
	}
	// SQP must be at least as good as the 33×33 grid up to a small slack.
	if out.CoolingPower() > grid.F+0.15 {
		t.Errorf("SQP 𝒫 = %g W, grid optimum ≈ %g W", out.CoolingPower(), grid.F)
	}
}

func TestAllMethodsProduceFeasibleSolutions(t *testing.T) {
	s := benchSystem(t, "FFT")
	var powers []float64
	for _, method := range []Method{MethodSQP, MethodInteriorPoint, MethodTrustRegion, MethodNelderMead} {
		out, err := s.Run(Options{Mode: ModeHybrid, Method: method})
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		if !out.Feasible {
			t.Errorf("%s: infeasible result %v", method, out)
			continue
		}
		powers = append(powers, out.CoolingPower())
	}
	// The methods should agree on the achievable power within a watt or
	// two (the paper found SQP best but all workable).
	if len(powers) > 1 {
		minP, maxP := powers[0], powers[0]
		for _, p := range powers {
			minP = math.Min(minP, p)
			maxP = math.Max(maxP, p)
		}
		if maxP-minP > 4 {
			t.Errorf("methods disagree widely: %v", powers)
		}
	}
}

func TestVerifyExact(t *testing.T) {
	s := benchSystem(t, "CRC32")
	out, err := s.Run(Options{Mode: ModeHybrid, VerifyExact: true})
	if err != nil {
		t.Fatal(err)
	}
	if out.ExactResult == nil {
		t.Fatal("VerifyExact did not populate ExactResult")
	}
	if out.ExactResult.Runaway {
		t.Fatal("exact verification ran away at the optimum")
	}
	if d := math.Abs(out.ExactResult.MaxChipTemp - out.Result.MaxChipTemp); d > 3 {
		t.Errorf("exact and linearized Tmax differ by %g K at the optimum", d)
	}
}

func TestOutcomeString(t *testing.T) {
	s := benchSystem(t, "CRC32")
	out, err := s.Run(Options{Mode: ModeHybrid})
	if err != nil {
		t.Fatal(err)
	}
	if out.String() == "" {
		t.Error("empty outcome string")
	}
	if out.Runtime <= 0 {
		t.Error("runtime not measured")
	}
}

func TestMultiStartOption(t *testing.T) {
	s := benchSystem(t, "Basicmath")
	plain, err := s.Run(Options{Mode: ModeHybrid})
	if err != nil {
		t.Fatal(err)
	}
	multi, err := s.Run(Options{Mode: ModeHybrid, MultiStart: true})
	if err != nil {
		t.Fatal(err)
	}
	if !multi.Feasible {
		t.Fatal("multistart run infeasible")
	}
	// Multistart includes the plain path among its candidates, so it can
	// only match or improve the objective.
	if multi.CoolingPower() > plain.CoolingPower()+1e-6 {
		t.Errorf("multistart 𝒫 = %g worse than plain %g",
			multi.CoolingPower(), plain.CoolingPower())
	}
	if multi.Opt1Report.FuncEvals <= plain.Opt1Report.FuncEvals {
		t.Errorf("multistart evals %d not larger than plain %d",
			multi.Opt1Report.FuncEvals, plain.Opt1Report.FuncEvals)
	}
}

func TestBoundsRejectUnknownMode(t *testing.T) {
	s := benchSystem(t, "CRC32")
	if _, _, err := s.bounds(Mode(42), 0, 1); err == nil {
		t.Error("unknown mode accepted")
	}
	if _, err := s.Run(Options{Mode: Mode(42)}); err == nil {
		t.Error("Run accepted unknown mode")
	}
}

// TestFlowGeneralityQuadCore exercises the paper's Figure 5 claim that the
// flow is not tied to the Alpha 21264: OFTEC runs unchanged on a synthetic
// four-core floorplan with one hot core.
func TestFlowGeneralityQuadCore(t *testing.T) {
	cfg := testConfig()
	fp := floorplan.QuadCore()
	cfg.Floorplan = fp
	cfg.Chip.Edge = fp.Width
	cfg.TIM1.Edge = fp.Width
	cfg.TEC.Uncovered = []string{
		"Icache0", "Dcache0", "Icache1", "Dcache1",
		"Icache2", "Dcache2", "Icache3", "Dcache3",
	}

	// Core 2 runs hot; the others idle.
	pm := make(power.Map)
	for _, u := range fp.Units() {
		pm[u.Name] = 0.05e6 * u.Rect.Area()
	}
	for _, unit := range []string{"IntExec2", "IntReg2", "LdStQ2"} {
		u, _ := fp.Unit(unit)
		pm[unit] = 1.1e6 * u.Rect.Area()
	}

	m, err := thermal.NewModel(cfg, pm)
	if err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(backend.NewFull(m))
	out, err := sys.Run(Options{Mode: ModeHybrid})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Feasible {
		t.Fatalf("OFTEC infeasible on the quad-core plan: %v", out)
	}
	hot, err := m.HottestUnit(out.Result)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(hot, "2") {
		t.Errorf("hottest unit %s, want one of core 2's units", hot)
	}
	if out.ITEC < 0 || out.ITEC > cfg.TEC.MaxCurrent {
		t.Errorf("I* = %g outside the actuator range", out.ITEC)
	}
	if out.Omega <= 0 || out.Omega > cfg.Fan.OmegaMax {
		t.Errorf("ω* = %g outside the actuator range", out.Omega)
	}
}
