package tec

import "testing"

func TestPresetsValid(t *testing.T) {
	presets := Presets()
	if len(presets) < 3 {
		t.Fatalf("expected at least 3 presets, got %d", len(presets))
	}
	for name, d := range presets {
		if err := d.Validate(); err != nil {
			t.Errorf("preset %s invalid: %v", name, err)
		}
		// Every preset must have a physically plausible figure of merit at
		// room temperature: ZT̄ between 0.1 and 3 covers published devices.
		zt := d.FigureOfMerit(300)
		if zt < 0.1 || zt > 3 {
			t.Errorf("preset %s has implausible ZT̄ = %g", name, zt)
		}
	}
}

func TestPresetCharacter(t *testing.T) {
	bulk, thin := BulkBiTe(), SuperlatticeThinFilm()
	// Bulk modules develop large Seebeck voltages; thin films small ones.
	if bulk.Seebeck <= thin.Seebeck {
		t.Errorf("bulk Seebeck %g should exceed thin-film %g", bulk.Seebeck, thin.Seebeck)
	}
	// Thin films sustain far higher optimal currents per module than bulk
	// devices at the same cold-side temperature.
	if thin.OptimalCurrent(350) <= bulk.OptimalCurrent(350) {
		t.Errorf("thin-film optimal current %g should exceed bulk %g",
			thin.OptimalCurrent(350), bulk.OptimalCurrent(350))
	}
	// The default deployment module matches the thermal.DefaultConfig
	// areal parameters at 1 mm².
	def := DefaultModule()
	if def.Seebeck != 1.5e-3 || def.Resistance != 4e-3 || def.Conductance != 0.1 {
		t.Errorf("default module drifted from the documented deployment: %+v", def)
	}
}
