// Package tec models thin-film thermoelectric coolers (TECs): the Peltier,
// conduction, and Joule heating terms of Equations (1)-(3) of the paper,
// and the three-sub-layer circuit element of Figure 4 used by the thermal
// network (heat absorption at the cold node, Joule generation at the middle
// node, heat rejection at the hot node).
package tec

import (
	"fmt"
	"math"
)

// Device holds the parameters of one TEC unit (one module covering one grid
// cell in the deployment). Values are module-level: a module made of n
// series N-P couples with per-couple Seebeck coefficient s has Seebeck = n·s.
type Device struct {
	// Seebeck is the module Seebeck coefficient α in V/K.
	Seebeck float64
	// Resistance is the module electrical resistance R_TEC in Ω.
	Resistance float64
	// Conductance is the module thermal conductance K_TEC in W/K.
	Conductance float64
	// MaxCurrent is the damage threshold I_TEC,max in A (constraint (17)).
	MaxCurrent float64
}

// Validate reports whether the device parameters are physical.
func (d Device) Validate() error {
	switch {
	case d.Seebeck <= 0:
		return fmt.Errorf("tec: Seebeck coefficient %g must be positive", d.Seebeck)
	case d.Resistance <= 0:
		return fmt.Errorf("tec: electrical resistance %g must be positive", d.Resistance)
	case d.Conductance <= 0:
		return fmt.Errorf("tec: thermal conductance %g must be positive", d.Conductance)
	case d.MaxCurrent <= 0:
		return fmt.Errorf("tec: maximum current %g must be positive", d.MaxCurrent)
	}
	return nil
}

// ColdSideHeat returns q̇_c, the heat absorbed per unit time from the cold
// side (Equation (1) with N=1): α·T_c·I − K·ΔT − ½R·I². T_c is in kelvin
// and ΔT = T_h − T_c.
func (d Device) ColdSideHeat(tc, dT, i float64) float64 {
	return d.Seebeck*tc*i - d.Conductance*dT - 0.5*d.Resistance*i*i
}

// HotSideHeat returns q̇_h, the heat released per unit time to the hot side
// (Equation (2) with N=1): α·T_h·I − K·ΔT + ½R·I².
func (d Device) HotSideHeat(th, dT, i float64) float64 {
	return d.Seebeck*th*i - d.Conductance*dT + 0.5*d.Resistance*i*i
}

// Power returns the electrical power drawn by the device (Equation (3) with
// N=1): α·ΔT·I + R·I². It equals HotSideHeat − ColdSideHeat.
func (d Device) Power(dT, i float64) float64 {
	return d.Seebeck*dT*i + d.Resistance*i*i
}

// COP returns the coefficient of performance q̇_c / P_TEC, or 0 when the
// device draws no power.
func (d Device) COP(tc, dT, i float64) float64 {
	p := d.Power(dT, i)
	if p <= 0 {
		return 0
	}
	return d.ColdSideHeat(tc, dT, i) / p
}

// OptimalCurrent returns the current that maximizes cold-side heat pumping
// for a given cold-side temperature: d q̇_c/dI = α·T_c − R·I = 0.
func (d Device) OptimalCurrent(tc float64) float64 {
	return d.Seebeck * tc / d.Resistance
}

// MaxCooling returns the maximum heat that can be pumped from the cold side
// at temperature tc with ΔT across the device: q̇_c at the optimal current.
func (d Device) MaxCooling(tc, dT float64) float64 {
	return d.ColdSideHeat(tc, dT, d.OptimalCurrent(tc))
}

// MaxDeltaT returns the largest temperature difference the device can
// sustain with zero net cold-side heat at cold-side temperature tc:
// setting q̇_c = 0 at the optimal current gives ΔT_max = α²T_c²/(2RK).
func (d Device) MaxDeltaT(tc float64) float64 {
	a := d.Seebeck * tc
	return a * a / (2 * d.Resistance * d.Conductance)
}

// FigureOfMerit returns the dimensionless ZT̄ = α²·T̄/(R·K) evaluated at the
// mean temperature tMean.
func (d Device) FigureOfMerit(tMean float64) float64 {
	return d.Seebeck * d.Seebeck * tMean / (d.Resistance * d.Conductance)
}

// Array is a set of N identical devices connected electrically in series
// and thermally in parallel, driven by the same current (the deployment
// model of the paper: all deployed TECs share one driving current).
type Array struct {
	Device
	N int
}

// Validate reports whether the array is well-formed.
func (a Array) Validate() error {
	if a.N <= 0 {
		return fmt.Errorf("tec: array size %d must be positive", a.N)
	}
	return a.Device.Validate()
}

// ColdSideHeat returns the total q̇_c of the array (Equation (1)).
func (a Array) ColdSideHeat(tc, dT, i float64) float64 {
	return float64(a.N) * a.Device.ColdSideHeat(tc, dT, i)
}

// HotSideHeat returns the total q̇_h of the array (Equation (2)).
func (a Array) HotSideHeat(th, dT, i float64) float64 {
	return float64(a.N) * a.Device.HotSideHeat(th, dT, i)
}

// Power returns the total electrical power of the array (Equation (3)).
func (a Array) Power(dT, i float64) float64 {
	return float64(a.N) * a.Device.Power(dT, i)
}

// Element is the three-node circuit view of one TEC used by the thermal
// network (Figure 4): the cold (absorption) node couples to the layer
// below, the mid (generation) node carries the Joule source, and the hot
// (rejection) node couples to the layer above. Both internal couplings have
// conductance 2·K_TEC so the series combination equals K_TEC.
type Element struct {
	dev Device
}

// NewElement wraps a validated device in its circuit view.
func NewElement(d Device) (Element, error) {
	if err := d.Validate(); err != nil {
		return Element{}, err
	}
	return Element{dev: d}, nil
}

// Device returns the underlying device parameters.
func (e Element) Device() Device { return e.dev }

// InternalConductance returns the cold–mid and mid–hot coupling (2·K_TEC).
func (e Element) InternalConductance() float64 { return 2 * e.dev.Conductance }

// ColdSourceCoefficient returns the coefficient of T_c in the cold-node
// heat source: p_cold = −α·I·T_c (Equation (5)), so the returned value is
// −α·I.
func (e Element) ColdSourceCoefficient(i float64) float64 { return -e.dev.Seebeck * i }

// HotSourceCoefficient returns the coefficient of T_h in the hot-node heat
// source: p_hot = +α·I·T_h (Equation (6)).
func (e Element) HotSourceCoefficient(i float64) float64 { return e.dev.Seebeck * i }

// JouleSource returns the temperature-independent Joule heat R·I² injected
// at the mid node (the R_TEC·I² term of Equation (7); the α·ΔT·I part of
// the element's power consumption emerges from the two Peltier sources).
func (e Element) JouleSource(i float64) float64 { return e.dev.Resistance * i * i }

// VerifyEquation1 checks that the three-node circuit reproduces Equation
// (1) for the given operating point; it returns the absolute error between
// the circuit's cold-side heat flow and the closed form. Used by tests.
func (e Element) VerifyEquation1(tc, th, i float64) float64 {
	// Steady state of the internal nodes: T_mid = (T_c+T_h)/2 + R·I²/(4K).
	k2 := e.InternalConductance()
	tMid := (tc+th)/2 + e.JouleSource(i)/(2*k2)
	// Heat flowing from the cold node into the TEC interior plus the
	// Peltier absorption must equal q̇_c.
	circuit := -e.ColdSourceCoefficient(i)*tc - k2*(tMid-tc)
	closed := e.dev.ColdSideHeat(tc, th-tc, i)
	return math.Abs(circuit - closed)
}
