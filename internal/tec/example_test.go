package tec_test

import (
	"fmt"

	"oftec/internal/tec"
)

// Example reproduces Equation (1) of the paper for one module: the heat
// absorbed from the cold side is the Peltier term minus back-conduction
// minus half the Joule heat.
func Example() {
	dev := tec.DefaultModule()
	tc, th, i := 348.15, 353.15, 2.0 // 75 °C cold side, 5 K across, 2 A

	qc := dev.ColdSideHeat(tc, th-tc, i)
	qh := dev.HotSideHeat(th, th-tc, i)
	p := dev.Power(th-tc, i)

	fmt.Printf("q̇_c = %.4f W\n", qc)
	fmt.Printf("q̇_h = %.4f W\n", qh)
	fmt.Printf("P    = %.4f W (= q̇_h − q̇_c)\n", p)
	// Output:
	// q̇_c = 0.5364 W
	// q̇_h = 0.5675 W
	// P    = 0.0310 W (= q̇_h − q̇_c)
}

// ExampleDevice_COP shows the efficiency curve's sweet spot: COP rises
// from zero, peaks, then falls as Joule heating takes over.
func ExampleDevice_COP() {
	dev := tec.DefaultModule()
	for _, i := range []float64{0.5, 2, 5} {
		fmt.Printf("I=%.1f A: COP %.1f\n", i, dev.COP(348.15, 5, i))
	}
	// Output:
	// I=0.5 A: COP -50.4
	// I=2.0 A: COP 17.3
	// I=5.0 A: COP 15.0
}
