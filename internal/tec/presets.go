package tec

// Preset TEC modules spanning the technology space the paper's Section 1
// discusses. Values are module-level and representative of published
// figures; the deployment used by the OFTEC experiments is DefaultModule.

// DefaultModule is the 1 mm² thin-film module tiled over the die in the
// OFTEC experiments (DESIGN.md §6): modest per-module Seebeck voltage and
// milliohm resistance, so hundreds of series-connected modules draw a few
// amperes at a few volts.
func DefaultModule() Device {
	return Device{Seebeck: 1.5e-3, Resistance: 4e-3, Conductance: 0.1, MaxCurrent: 5}
}

// SuperlatticeThinFilm models the Bi2Te3/Sb2Te3 superlattice coolers of
// Chowdhury et al. (ref [3]): a ~3 mm² thin-film device with very high
// heat-pumping density (~1.3 kW/cm² peak) and fast (ms) response. High
// ZT̄ at the cost of low absolute ΔT_max per stage.
func SuperlatticeThinFilm() Device {
	return Device{Seebeck: 6e-3, Resistance: 12e-3, Conductance: 0.35, MaxCurrent: 9}
}

// BulkBiTe models a conventional bulk Bi2Te3 Peltier module (centimeter
// scale, hundreds of couples): large Seebeck voltage and resistance, low
// drive current, slow (seconds) response. Included for comparison; bulk
// modules do not fit inside the chip package the paper targets.
func BulkBiTe() Device {
	return Device{Seebeck: 0.05, Resistance: 2.0, Conductance: 0.5, MaxCurrent: 6}
}

// Presets returns the named module presets.
func Presets() map[string]Device {
	return map[string]Device{
		"default":      DefaultModule(),
		"superlattice": SuperlatticeThinFilm(),
		"bulk":         BulkBiTe(),
	}
}
