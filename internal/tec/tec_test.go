package tec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func sample() Device {
	return Device{Seebeck: 0.0015, Resistance: 0.004, Conductance: 0.1, MaxCurrent: 5}
}

func TestValidate(t *testing.T) {
	if err := sample().Validate(); err != nil {
		t.Fatalf("valid device rejected: %v", err)
	}
	bad := []Device{
		{Seebeck: 0, Resistance: 1, Conductance: 1, MaxCurrent: 1},
		{Seebeck: 1, Resistance: 0, Conductance: 1, MaxCurrent: 1},
		{Seebeck: 1, Resistance: 1, Conductance: 0, MaxCurrent: 1},
		{Seebeck: 1, Resistance: 1, Conductance: 1, MaxCurrent: 0},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("case %d: invalid device accepted: %+v", i, d)
		}
	}
}

func TestEquationOneTwoThree(t *testing.T) {
	d := sample()
	tc, th, i := 350.0, 360.0, 2.0
	dT := th - tc

	qc := d.ColdSideHeat(tc, dT, i)
	qh := d.HotSideHeat(th, dT, i)
	p := d.Power(dT, i)

	// Equation (1): α·Tc·I − K·ΔT − ½R·I².
	wantQc := 0.0015*350*2 - 0.1*10 - 0.5*0.004*4
	if math.Abs(qc-wantQc) > 1e-12 {
		t.Errorf("q̇c = %g, want %g", qc, wantQc)
	}
	// Equation (3): P = q̇h − q̇c = α·ΔT·I + R·I².
	if math.Abs(p-(qh-qc)) > 1e-12 {
		t.Errorf("P = %g but q̇h−q̇c = %g", p, qh-qc)
	}
	wantP := 0.0015*10*2 + 0.004*4
	if math.Abs(p-wantP) > 1e-12 {
		t.Errorf("P = %g, want %g", p, wantP)
	}
}

// Property: energy conservation P = q̇h − q̇c holds for any operating point.
func TestPowerBalanceProperty(t *testing.T) {
	d := sample()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tc := 280 + rng.Float64()*120
		dT := -20 + rng.Float64()*60
		i := rng.Float64() * 5
		th := tc + dT
		lhs := d.Power(dT, i)
		rhs := d.HotSideHeat(th, dT, i) - d.ColdSideHeat(tc, dT, i)
		return math.Abs(lhs-rhs) < 1e-9*(1+math.Abs(lhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestOptimalCurrentMaximizesCooling(t *testing.T) {
	d := sample()
	tc, dT := 350.0, 5.0
	iOpt := d.OptimalCurrent(tc)
	if want := d.Seebeck * tc / d.Resistance; math.Abs(iOpt-want) > 1e-12 {
		t.Fatalf("OptimalCurrent = %g, want %g", iOpt, want)
	}
	best := d.ColdSideHeat(tc, dT, iOpt)
	for _, di := range []float64{-1, -0.1, 0.1, 1} {
		if q := d.ColdSideHeat(tc, dT, iOpt+di); q > best+1e-12 {
			t.Errorf("cooling at I=%g (%g) exceeds optimum (%g)", iOpt+di, q, best)
		}
	}
	if mc := d.MaxCooling(tc, dT); math.Abs(mc-best) > 1e-12 {
		t.Errorf("MaxCooling = %g, want %g", mc, best)
	}
}

func TestMaxDeltaT(t *testing.T) {
	d := sample()
	tc := 350.0
	dtMax := d.MaxDeltaT(tc)
	// At ΔT_max and the optimal current, net cooling should be ≈ 0.
	q := d.ColdSideHeat(tc, dtMax, d.OptimalCurrent(tc))
	if math.Abs(q) > 1e-9 {
		t.Errorf("cold-side heat at ΔT_max = %g, want 0", q)
	}
}

func TestFigureOfMerit(t *testing.T) {
	d := sample()
	zt := d.FigureOfMerit(300)
	want := 0.0015 * 0.0015 * 300 / (0.004 * 0.1)
	if math.Abs(zt-want) > 1e-12 {
		t.Errorf("ZT = %g, want %g", zt, want)
	}
}

func TestCOP(t *testing.T) {
	d := sample()
	cop := d.COP(350, 5, 1)
	qc := d.ColdSideHeat(350, 5, 1)
	p := d.Power(5, 1)
	if math.Abs(cop-qc/p) > 1e-12 {
		t.Errorf("COP = %g, want %g", cop, qc/p)
	}
	if got := d.COP(350, 5, 0); got != 0 {
		t.Errorf("COP at zero current = %g, want 0", got)
	}
}

func TestArrayScaling(t *testing.T) {
	a := Array{Device: sample(), N: 9}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	tc, th, i := 350.0, 355.0, 1.5
	dT := th - tc
	if got, want := a.ColdSideHeat(tc, dT, i), 9*a.Device.ColdSideHeat(tc, dT, i); math.Abs(got-want) > 1e-12 {
		t.Errorf("array q̇c = %g, want %g", got, want)
	}
	if got, want := a.HotSideHeat(th, dT, i), 9*a.Device.HotSideHeat(th, dT, i); math.Abs(got-want) > 1e-12 {
		t.Errorf("array q̇h = %g, want %g", got, want)
	}
	if got, want := a.Power(dT, i), 9*a.Device.Power(dT, i); math.Abs(got-want) > 1e-12 {
		t.Errorf("array P = %g, want %g", got, want)
	}
	if err := (Array{Device: sample(), N: 0}).Validate(); err == nil {
		t.Error("zero-size array accepted")
	}
}

func TestElementCircuitMatchesClosedForm(t *testing.T) {
	e, err := NewElement(sample())
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range [][3]float64{
		{350, 360, 0}, {350, 360, 1}, {350, 360, 5},
		{320, 320, 2}, {400, 380, 3},
	} {
		if errAbs := e.VerifyEquation1(op[0], op[1], op[2]); errAbs > 1e-9 {
			t.Errorf("circuit/closed-form mismatch %g at (Tc=%g, Th=%g, I=%g)", errAbs, op[0], op[1], op[2])
		}
	}
}

// Property: the three-node circuit reproduces Equation (1) at any point.
func TestElementEquivalenceProperty(t *testing.T) {
	e, err := NewElement(sample())
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tc := 280 + rng.Float64()*120
		th := tc + (-20 + rng.Float64()*60)
		i := rng.Float64() * 5
		return e.VerifyEquation1(tc, th, i) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestElementSourceCoefficients(t *testing.T) {
	e, _ := NewElement(sample())
	if got := e.ColdSourceCoefficient(2); math.Abs(got+0.003) > 1e-15 {
		t.Errorf("cold coefficient = %g, want -0.003", got)
	}
	if got := e.HotSourceCoefficient(2); math.Abs(got-0.003) > 1e-15 {
		t.Errorf("hot coefficient = %g, want 0.003", got)
	}
	if got := e.JouleSource(3); math.Abs(got-0.036) > 1e-15 {
		t.Errorf("Joule source = %g, want 0.036", got)
	}
	if got := e.InternalConductance(); math.Abs(got-0.2) > 1e-15 {
		t.Errorf("internal conductance = %g, want 0.2", got)
	}
	if _, err := NewElement(Device{}); err == nil {
		t.Error("NewElement accepted invalid device")
	}
}
