package sparse

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// laplacian1D builds the standard tridiagonal SPD matrix with Dirichlet
// boundary coupling, a faithful miniature of the thermal conduction matrix.
func laplacian1D(n int, g float64) *CSR {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddDiag(i, 2*g)
		if i > 0 {
			b.Add(i, i-1, -g)
		}
		if i < n-1 {
			b.Add(i, i+1, -g)
		}
	}
	m, err := b.Build()
	if err != nil {
		panic(err)
	}
	return m
}

func randomSPD(rng *rand.Rand, n int) *CSR {
	// A = B·Bᵀ + n·I computed densely, then assembled.
	bm := make([][]float64, n)
	for i := range bm {
		bm[i] = make([]float64, n)
		for j := range bm[i] {
			bm[i][j] = rng.NormFloat64()
		}
	}
	bld := NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += bm[i][k] * bm[j][k]
			}
			if i == j {
				s += float64(n)
			}
			bld.Add(i, j, s)
		}
	}
	m, err := bld.Build()
	if err != nil {
		panic(err)
	}
	return m
}

func checkSolution(t *testing.T, name string, a *CSR, x, b []float64, tol float64) {
	t.Helper()
	r := make([]float64, a.N())
	res := a.Residual(r, x, b)
	if res > tol*(1+NormInf(b)) {
		t.Errorf("%s: residual %g exceeds %g", name, res, tol*(1+NormInf(b)))
	}
}

func TestCGOnLaplacian(t *testing.T) {
	for _, n := range []int{1, 2, 10, 100, 500} {
		a := laplacian1D(n, 3.5)
		b := make([]float64, n)
		for i := range b {
			b[i] = float64(i%7) - 3
		}
		x, st, err := CG(a, b, SolveOptions{})
		if err != nil {
			t.Fatalf("n=%d: CG: %v", n, err)
		}
		if st.Iterations == 0 && NormInf(b) > 0 {
			t.Errorf("n=%d: CG reported zero iterations", n)
		}
		checkSolution(t, "CG", a, x, b, 1e-8)
	}
}

func TestCGZeroRHS(t *testing.T) {
	a := laplacian1D(5, 1)
	x, _, err := CG(a, make([]float64, 5), SolveOptions{})
	if err != nil {
		t.Fatalf("CG: %v", err)
	}
	if NormInf(x) != 0 {
		t.Errorf("CG with zero rhs returned nonzero x: %v", x)
	}
}

func TestCGWarmStart(t *testing.T) {
	a := laplacian1D(50, 2)
	b := make([]float64, 50)
	for i := range b {
		b[i] = math.Sin(float64(i))
	}
	x1, st1, err := CG(a, b, SolveOptions{})
	if err != nil {
		t.Fatalf("cold CG: %v", err)
	}
	_, st2, err := CG(a, b, SolveOptions{X0: x1})
	if err != nil {
		t.Fatalf("warm CG: %v", err)
	}
	if st2.Iterations > st1.Iterations {
		t.Errorf("warm start took %d iterations, cold start %d", st2.Iterations, st1.Iterations)
	}
}

func TestCGRejectsDimensionMismatch(t *testing.T) {
	a := laplacian1D(4, 1)
	if _, _, err := CG(a, make([]float64, 3), SolveOptions{}); err == nil {
		t.Fatal("CG accepted mismatched rhs")
	}
}

func TestBiCGSTABOnNonsymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		n := 5 + rng.Intn(40)
		bld := NewBuilder(n)
		for i := 0; i < n; i++ {
			bld.AddDiag(i, 10+rng.Float64())
			for k := 0; k < 3; k++ {
				j := rng.Intn(n)
				if j != i {
					bld.Add(i, j, rng.NormFloat64())
				}
			}
		}
		a, err := bld.Build()
		if err != nil {
			t.Fatal(err)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, _, err := BiCGSTAB(a, b, SolveOptions{})
		if err != nil {
			t.Fatalf("trial %d: BiCGSTAB: %v", trial, err)
		}
		checkSolution(t, "BiCGSTAB", a, x, b, 1e-7)
	}
}

func TestSOROnLaplacian(t *testing.T) {
	a := laplacian1D(30, 1.5)
	b := make([]float64, 30)
	for i := range b {
		b[i] = 1
	}
	for _, relax := range []float64{1.0, 1.5} {
		x, _, err := SOR(a, b, relax, SolveOptions{Tol: 1e-9, MaxIter: 20000})
		if err != nil {
			t.Fatalf("relax=%g: SOR: %v", relax, err)
		}
		checkSolution(t, "SOR", a, x, b, 1e-6)
	}
}

func TestSORRejectsBadRelaxation(t *testing.T) {
	a := laplacian1D(3, 1)
	b := []float64{1, 1, 1}
	for _, w := range []float64{0, -1, 2, 2.5} {
		if _, _, err := SOR(a, b, w, SolveOptions{}); err == nil {
			t.Errorf("SOR accepted relaxation %g", w)
		}
	}
}

func TestLUSolveAndDet(t *testing.T) {
	a := [][]float64{
		{4, 2, 0},
		{2, 5, 1},
		{0, 1, 3},
	}
	f, err := NewLU(a)
	if err != nil {
		t.Fatalf("NewLU: %v", err)
	}
	// det by cofactor: 4*(15-1) - 2*(6-0) = 56-12 = 44.
	if d := f.Det(); math.Abs(d-44) > 1e-10 {
		t.Errorf("Det = %g, want 44", d)
	}
	b := []float64{2, -1, 7}
	x, err := f.Solve(b)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	for i := range a {
		var s float64
		for j := range a[i] {
			s += a[i][j] * x[j]
		}
		if math.Abs(s-b[i]) > 1e-10 {
			t.Errorf("row %d: Ax = %g, want %g", i, s, b[i])
		}
	}
}

func TestLUSingular(t *testing.T) {
	_, err := NewLU([][]float64{{1, 2}, {2, 4}})
	if !errors.Is(err, ErrSingular) {
		t.Fatalf("NewLU on singular matrix: err = %v, want ErrSingular", err)
	}
}

func TestLUPivoting(t *testing.T) {
	// Zero leading pivot requires row exchange.
	a := [][]float64{{0, 1}, {1, 0}}
	f, err := NewLU(a)
	if err != nil {
		t.Fatalf("NewLU: %v", err)
	}
	x, err := f.Solve([]float64{3, 5})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if math.Abs(x[0]-5) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Errorf("Solve = %v, want [5 3]", x)
	}
}

func TestSolveAutoAgreesWithLU(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 8; trial++ {
		n := 3 + rng.Intn(20)
		a := randomSPD(rng, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		xAuto, _, err := SolveAuto(a, b, SolveOptions{})
		if err != nil {
			t.Fatalf("SolveAuto: %v", err)
		}
		f, err := NewLU(a.Dense())
		if err != nil {
			t.Fatalf("NewLU: %v", err)
		}
		xLU, err := f.Solve(b)
		if err != nil {
			t.Fatalf("LU Solve: %v", err)
		}
		for i := range xAuto {
			if math.Abs(xAuto[i]-xLU[i]) > 1e-6*(1+math.Abs(xLU[i])) {
				t.Fatalf("trial %d: xAuto[%d]=%g differs from xLU=%g", trial, i, xAuto[i], xLU[i])
			}
		}
	}
}

// Property: CG solution of a random SPD system reproduces the rhs.
func TestCGPropertySPD(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		a := randomSPD(rng, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64() * 10
		}
		x, _, err := CG(a, b, SolveOptions{Tol: 1e-12})
		if err != nil {
			return false
		}
		r := make([]float64, n)
		return a.Residual(r, x, b) < 1e-6*(1+NormInf(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: LU of a well-conditioned random matrix solves consistently for
// two different right-hand sides (linearity of the solve).
func TestLULinearityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		a := make([][]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = rng.NormFloat64()
			}
			a[i][i] += float64(n) // diagonally dominate for conditioning
		}
		f2, err := NewLU(a)
		if err != nil {
			return false
		}
		b1 := make([]float64, n)
		b2 := make([]float64, n)
		sum := make([]float64, n)
		for i := range b1 {
			b1[i], b2[i] = rng.NormFloat64(), rng.NormFloat64()
			sum[i] = b1[i] + b2[i]
		}
		x1, err1 := f2.Solve(b1)
		x2, err2 := f2.Solve(b2)
		xs, err3 := f2.Solve(sum)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		for i := range xs {
			if math.Abs(xs[i]-(x1[i]+x2[i])) > 1e-8*(1+math.Abs(xs[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestNoConvergenceReported(t *testing.T) {
	a := laplacian1D(200, 1)
	b := make([]float64, 200)
	for i := range b {
		b[i] = 1
	}
	_, _, err := CG(a, b, SolveOptions{MaxIter: 1, Tol: 1e-14})
	if !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("CG with MaxIter=1: err = %v, want ErrNoConvergence", err)
	}
}
