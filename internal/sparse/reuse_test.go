package sparse

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// TestBuildWithDiagonal: every row must carry a structural diagonal slot,
// including rows whose triplets never touched the diagonal, and the
// numeric content must match the plain build.
func TestBuildWithDiagonal(t *testing.T) {
	b := NewBuilder(4)
	// Row 2 gets only off-diagonal entries; row 3 gets nothing at all.
	b.Add(0, 0, 2)
	b.Add(1, 1, 3)
	b.Add(2, 1, -1)
	m, err := b.BuildWithDiagonal()
	if err != nil {
		t.Fatal(err)
	}
	idx, err := m.DiagIndices()
	if err != nil {
		t.Fatalf("DiagIndices after BuildWithDiagonal: %v", err)
	}
	if len(idx) != 4 {
		t.Fatalf("got %d diagonal indices, want 4", len(idx))
	}
	for i, k := range idx {
		if m.ColAt(int(k)) != i {
			t.Errorf("row %d: diag index %d points at column %d", i, k, m.ColAt(int(k)))
		}
	}
	for i, want := range []float64{2, 3, 0, 0} {
		if got := m.At(i, i); got != want {
			t.Errorf("diag[%d] = %g, want %g", i, got, want)
		}
	}
	if got := m.At(2, 1); got != -1 {
		t.Errorf("off-diagonal lost: At(2,1) = %g, want -1", got)
	}

	// Plain Build must refuse DiagIndices on a missing diagonal.
	b2 := NewBuilder(2)
	b2.Add(0, 1, 1)
	b2.Add(1, 0, 1)
	m2, err := b2.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m2.DiagIndices(); err == nil {
		t.Error("DiagIndices accepted a matrix without stored diagonals")
	}
}

// TestWithValuesSharedPattern: a value-array clone must solve identically
// to the original and reflect in-place patches without touching the base.
func TestWithValuesSharedPattern(t *testing.T) {
	base := laplacian1D(40, 1.5)
	vals := make([]float64, base.NNZ())
	if err := base.CopyValues(vals); err != nil {
		t.Fatal(err)
	}
	m, err := base.WithValues(vals)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := base.WithValues(make([]float64, 3)); err == nil {
		t.Error("WithValues accepted a wrong-length value array")
	}

	rhs := make([]float64, 40)
	for i := range rhs {
		rhs[i] = math.Sin(float64(i))
	}
	x0, _, err := SolveAuto(base, rhs, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	x1, _, err := SolveAuto(m, rhs, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range x0 {
		if x0[i] != x1[i] {
			t.Fatalf("shared-pattern solve differs at %d: %g vs %g", i, x0[i], x1[i])
		}
	}

	// Patch the clone's diagonal in place; the base must be unaffected.
	idx, err := m.DiagIndices()
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range idx {
		vals[k] += 1
	}
	if got, want := m.At(3, 3), base.At(3, 3)+1; got != want {
		t.Errorf("patched diag = %g, want %g", got, want)
	}
	if base.At(3, 3) != 3 {
		t.Errorf("base mutated: At(3,3) = %g, want 3", base.At(3, 3))
	}
}

// TestSymmetricHintStamp: the stamp must short-circuit the scan in both
// directions, and the unstamped path must still compute the truth.
func TestSymmetricHintStamp(t *testing.T) {
	m := laplacian1D(10, 1)
	if !m.SymmetricHint(1e-12) {
		t.Fatal("unstamped symmetric matrix reported asymmetric")
	}
	m.MarkSymmetric(false)
	if m.SymmetricHint(1e-12) {
		t.Error("stamp not trusted: MarkSymmetric(false) ignored")
	}
	m.MarkSymmetric(true)
	if !m.SymmetricHint(1e-12) {
		t.Error("stamp not trusted: MarkSymmetric(true) ignored")
	}

	b := NewBuilder(2)
	b.Add(0, 1, 1)
	b.Add(0, 0, 1)
	b.Add(1, 1, 1)
	asym, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if asym.SymmetricHint(1e-12) {
		t.Error("unstamped asymmetric matrix reported symmetric")
	}
}

// TestSolveAutoResidualConsistency: the dense-LU fallback must report the
// same ‖b−Ax‖₂/‖b‖₂ statistic that SolveOptions.Tol is defined against,
// matching the iterative solvers.
func TestSolveAutoResidualConsistency(t *testing.T) {
	// An asymmetric system with a one-iteration budget: BiCGSTAB cannot
	// reach 1e-10 in one step, so SolveAuto lands on the dense-LU
	// fallback, whose reported statistic is checked against a direct
	// recomputation of ‖b−Ax‖₂/‖b‖₂.
	b := NewBuilder(3)
	b.Add(0, 0, 2)
	b.Add(0, 1, 1)
	b.Add(1, 1, -3)
	b.Add(1, 2, 1)
	b.Add(2, 0, 4)
	b.Add(2, 2, 1)
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rhs := []float64{1, 2, 3}
	x, stats, err := SolveAuto(m, rhs, SolveOptions{MaxIter: 1})
	if err != nil {
		t.Fatal(err)
	}
	r := make([]float64, 3)
	m.Residual(r, x, rhs)
	want := Norm2(r) / Norm2(rhs)
	if math.Abs(stats.Residual-want) > 1e-15 {
		t.Errorf("reported residual %g, want ‖r‖₂/‖b‖₂ = %g", stats.Residual, want)
	}
	if stats.Residual > 1e-10 {
		t.Errorf("LU residual %g unexpectedly large", stats.Residual)
	}
}

// TestWorkspaceReuse: solves through one workspace must agree with
// workspace-free solves bit-for-bit, and the workspace must grow to fit.
func TestWorkspaceReuse(t *testing.T) {
	ws := &Workspace{}
	for _, n := range []int{7, 40, 12} {
		a := laplacian1D(n, 2)
		rhs := make([]float64, n)
		for i := range rhs {
			rhs[i] = 1 + float64(i%3)
		}
		plain, st0, err := SolveAuto(a, rhs, SolveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		pooled, st1, err := SolveAuto(a, rhs, SolveOptions{Work: ws})
		if err != nil {
			t.Fatal(err)
		}
		if st0.Iterations != st1.Iterations {
			t.Errorf("n=%d: iteration count differs with workspace: %d vs %d", n, st0.Iterations, st1.Iterations)
		}
		for i := range plain {
			if plain[i] != pooled[i] {
				t.Fatalf("n=%d: workspace solve differs at %d", n, i)
			}
		}
	}
}

// TestFactorCache: version hits must reuse the factorization object,
// version 0 must bypass the cache, failures must be cached, and the
// bound must clear on overflow.
func TestFactorCache(t *testing.T) {
	c := NewFactorCache(4)
	a := laplacian1D(20, 1)
	a.SetVersion(7)
	ic1, ok := c.IC(a)
	if !ok || ic1 == nil {
		t.Fatal("SPD factorization failed")
	}
	ic2, ok := c.IC(a)
	if !ok || ic2 != ic1 {
		t.Error("version hit did not reuse the cached factorization")
	}
	if c.Len() != 1 {
		t.Errorf("cache holds %d entries, want 1", c.Len())
	}

	a.SetVersion(0)
	ic3, ok := c.IC(a)
	if !ok || ic3 == ic1 {
		t.Error("version 0 must factorize fresh")
	}
	if c.Len() != 1 {
		t.Errorf("version 0 was cached: %d entries", c.Len())
	}

	// Indefinite matrix: the failure itself is cached.
	b := NewBuilder(2)
	b.AddDiag(0, -1)
	b.AddDiag(1, -1)
	bad, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	bad.SetVersion(9)
	if _, ok := c.IC(bad); ok {
		t.Error("indefinite matrix factorized")
	}
	if _, ok := c.IC(bad); ok {
		t.Error("cached failure reported success")
	}
	if c.Len() != 2 {
		t.Errorf("cache holds %d entries, want 2", c.Len())
	}

	// Overflow clears.
	for v := uint64(10); v < 16; v++ {
		a.SetVersion(v)
		c.IC(a)
	}
	if c.Len() > 4 {
		t.Errorf("cache exceeded its bound: %d entries", c.Len())
	}
}

// TestFactorCacheConcurrent hammers one cache from many goroutines across
// a few versions; run under -race this pins the locking discipline, and
// the ApplyScratch path keeps shared factors safe inside CGPrecond.
func TestFactorCacheConcurrent(t *testing.T) {
	c := NewFactorCache(0)
	mats := make([]*CSR, 4)
	for i := range mats {
		mats[i] = laplacian1D(30, float64(i+1))
		mats[i].SetVersion(uint64(i + 1))
		mats[i].MarkSymmetric(true)
	}
	rhs := make([]float64, 30)
	for i := range rhs {
		rhs[i] = float64(i%5) + 1
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			ws := &Workspace{}
			for k := 0; k < 50; k++ {
				m := mats[rng.Intn(len(mats))]
				ic, ok := c.IC(m)
				if !ok {
					t.Error("factorization failed")
					return
				}
				x, _, err := CGPrecond(m, rhs, ic, SolveOptions{Work: ws})
				if err != nil {
					t.Error(err)
					return
				}
				r := make([]float64, len(rhs))
				if m.Residual(r, x, rhs); Norm2(r)/Norm2(rhs) > 1e-8 {
					t.Error("concurrent solve inaccurate")
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
}
