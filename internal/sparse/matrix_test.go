package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func buildFromDense(t *testing.T, d [][]float64) *CSR {
	t.Helper()
	b := NewBuilder(len(d))
	for i, row := range d {
		for j, v := range row {
			b.Add(i, j, v)
		}
	}
	m, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return m
}

func TestBuilderMergesDuplicates(t *testing.T) {
	b := NewBuilder(3)
	b.Add(0, 1, 2.0)
	b.Add(0, 1, 3.0)
	b.Add(2, 2, -1.0)
	b.AddDiag(2, 4.0)
	m, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if got := m.At(0, 1); got != 5.0 {
		t.Errorf("At(0,1) = %g, want 5", got)
	}
	if got := m.At(2, 2); got != 3.0 {
		t.Errorf("At(2,2) = %g, want 3", got)
	}
	if got := m.At(1, 1); got != 0 {
		t.Errorf("At(1,1) = %g, want 0", got)
	}
	if m.NNZ() != 2 {
		t.Errorf("NNZ = %d, want 2", m.NNZ())
	}
}

func TestBuilderRejectsOutOfRange(t *testing.T) {
	b := NewBuilder(2)
	b.Add(0, 5, 1.0)
	if _, err := b.Build(); err == nil {
		t.Fatal("Build accepted out-of-range entry")
	}
	b2 := NewBuilder(2)
	b2.Add(-1, 0, 1.0)
	if _, err := b2.Build(); err == nil {
		t.Fatal("Build accepted negative row index")
	}
	if _, err := NewBuilder(0).Build(); err == nil {
		t.Fatal("Build accepted zero dimension")
	}
}

func TestBuilderDropsExplicitZeros(t *testing.T) {
	b := NewBuilder(2)
	b.Add(0, 0, 0)
	b.Add(1, 1, 1)
	m, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if m.NNZ() != 1 {
		t.Errorf("NNZ = %d, want 1 (explicit zero should be dropped)", m.NNZ())
	}
}

func TestMulVecMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(12)
		d := make([][]float64, n)
		for i := range d {
			d[i] = make([]float64, n)
			for j := range d[i] {
				if rng.Float64() < 0.4 {
					d[i][j] = rng.NormFloat64()
				}
			}
		}
		m := buildFromDense(t, d)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		got := make([]float64, n)
		m.MulVec(got, x)
		for i := 0; i < n; i++ {
			var want float64
			for j := 0; j < n; j++ {
				want += d[i][j] * x[j]
			}
			if math.Abs(got[i]-want) > 1e-12*(1+math.Abs(want)) {
				t.Fatalf("trial %d: MulVec[%d] = %g, want %g", trial, i, got[i], want)
			}
		}
	}
}

func TestIsSymmetric(t *testing.T) {
	sym := buildFromDense(t, [][]float64{{2, -1, 0}, {-1, 2, -1}, {0, -1, 2}})
	if !sym.IsSymmetric(0) {
		t.Error("symmetric matrix reported asymmetric")
	}
	asym := buildFromDense(t, [][]float64{{2, -1}, {1, 2}})
	if asym.IsSymmetric(1e-12) {
		t.Error("asymmetric matrix reported symmetric")
	}
}

func TestDenseRoundTrip(t *testing.T) {
	d := [][]float64{{1, 0, 2}, {0, 3, 0}, {4, 0, 5}}
	m := buildFromDense(t, d)
	got := m.Dense()
	for i := range d {
		for j := range d[i] {
			if got[i][j] != d[i][j] {
				t.Errorf("Dense[%d][%d] = %g, want %g", i, j, got[i][j], d[i][j])
			}
		}
	}
}

// Property: for any assembled matrix, (A·x)ᵀy == xᵀ(Aᵀ·y) when A is
// symmetric, i.e. Dot(Ax, y) == Dot(x, Ay).
func TestSymmetricBilinearProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		b := NewBuilder(n)
		for i := 0; i < n; i++ {
			b.AddDiag(i, 4+rng.Float64())
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.3 {
					v := rng.NormFloat64()
					b.Add(i, j, v)
					b.Add(j, i, v)
				}
			}
		}
		m, err := b.Build()
		if err != nil {
			return false
		}
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i], y[i] = rng.NormFloat64(), rng.NormFloat64()
		}
		ax := make([]float64, n)
		ay := make([]float64, n)
		m.MulVec(ax, x)
		m.MulVec(ay, y)
		return math.Abs(Dot(ax, y)-Dot(x, ay)) < 1e-9*(1+math.Abs(Dot(ax, y)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestVectorHelpers(t *testing.T) {
	a := []float64{1, 2, 3}
	bv := []float64{4, -5, 6}
	if got := Dot(a, bv); got != 4-10+18 {
		t.Errorf("Dot = %g, want 12", got)
	}
	if got := Norm2([]float64{3, 4}); got != 5 {
		t.Errorf("Norm2 = %g, want 5", got)
	}
	if got := NormInf(bv); got != 6 {
		t.Errorf("NormInf = %g, want 6", got)
	}
	y := []float64{1, 1, 1}
	AXPY(2, a, y)
	if y[2] != 7 {
		t.Errorf("AXPY: y[2] = %g, want 7", y[2])
	}
	Fill(y, 9)
	if y[0] != 9 || y[2] != 9 {
		t.Errorf("Fill: y = %v, want all 9", y)
	}
}

func TestWithAddedDiagonal(t *testing.T) {
	m := buildFromDense(t, [][]float64{{2, -1, 0}, {-1, 2, -1}, {0, -1, 2}})
	d := []float64{10, 20, 30}
	out, err := m.WithAddedDiagonal(d)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if got := out.At(i, i); got != 2+d[i] {
			t.Errorf("diag %d = %g, want %g", i, got, 2+d[i])
		}
	}
	// Receiver unchanged, off-diagonals shared and intact.
	if m.At(0, 0) != 2 || out.At(0, 1) != -1 {
		t.Error("WithAddedDiagonal disturbed the original or the off-diagonals")
	}
	if _, err := m.WithAddedDiagonal([]float64{1}); err == nil {
		t.Error("mismatched diagonal length accepted")
	}
	// A row without a stored diagonal must be rejected.
	b := NewBuilder(2)
	b.Add(0, 1, 1)
	b.Add(1, 0, 1)
	b.AddDiag(1, 5)
	noDiag, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := noDiag.WithAddedDiagonal([]float64{1, 1}); err == nil {
		t.Error("missing diagonal accepted")
	}
}
