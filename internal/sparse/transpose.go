package sparse

import "fmt"

// MulVecT computes dst = mᵀ·x without materializing the transpose: each
// stored entry (i, j, v) contributes v·x[i] to dst[j]. dst and x must both
// have length N and must not alias each other.
//
//oftec:hotpath
func (m *CSR) MulVecT(dst, x []float64) {
	for i := range dst {
		dst[i] = 0
	}
	for i := 0; i < m.n; i++ {
		lo, hi := int(m.rowPtr[i]), int(m.rowPtr[i+1])
		xi := x[i]
		if xi == 0 {
			continue
		}
		for k := lo; k < hi; k++ {
			dst[m.colIdx[k]] += m.values[k] * xi
		}
	}
}

// Transpose returns mᵀ as a freshly built CSR matrix. The symmetry stamp
// carries over (Aᵀ is symmetric iff A is); the value-version does not,
// since factorization caches key on the forward matrix's values.
func (m *CSR) Transpose() *CSR {
	n := m.n
	t := &CSR{
		n:      n,
		rowPtr: make([]int32, n+1),
		colIdx: make([]int32, len(m.colIdx)),
		values: make([]float64, len(m.values)),
		sym:    m.sym,
	}
	// Count entries per transposed row (= per source column).
	for _, c := range m.colIdx {
		t.rowPtr[c+1]++
	}
	for i := 0; i < n; i++ {
		t.rowPtr[i+1] += t.rowPtr[i]
	}
	// Scatter; source rows are visited in order, so each transposed row's
	// column indices come out sorted.
	next := make([]int32, n)
	copy(next, t.rowPtr[:n])
	for i := 0; i < n; i++ {
		lo, hi := int(m.rowPtr[i]), int(m.rowPtr[i+1])
		for k := lo; k < hi; k++ {
			c := m.colIdx[k]
			pos := next[c]
			t.colIdx[pos] = int32(i)
			t.values[pos] = m.values[k]
			next[c]++
		}
	}
	return t
}

// SolveTranspose solves Aᵀ·x = b — the adjoint system of A·x = b. On
// symmetric matrices (the assembled thermal systems, which are stamped
// via MarkSymmetric) Aᵀ = A, so the solve delegates to SolveAuto on the
// forward matrix and reuses everything the forward solve already paid
// for: the SolveOptions.Precond hook carries the cached IC(0)
// factorization, whose application is exactly one forward + one backward
// triangular sweep. That reuse is what makes an adjoint gradient cost one
// extra triangular-sweep solve instead of a fresh factorization.
//
// Nonsymmetric matrices fall back to an explicit O(nnz) transpose
// followed by SolveAuto; the caller's preconditioner is dropped there
// because it preconditions A, not Aᵀ.
func SolveTranspose(a *CSR, b []float64, opts SolveOptions) ([]float64, Stats, error) {
	if len(b) != a.N() {
		return nil, Stats{}, fmt.Errorf("sparse: rhs length %d does not match matrix dimension %d", len(b), a.N())
	}
	if a.SymmetricHint(1e-12) {
		return SolveAuto(a, b, opts)
	}
	t := a.Transpose()
	opts.Precond = nil
	return SolveAuto(t, b, opts)
}
