package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// laplacian2D builds the 5-point SPD stencil on an n×n grid — the shape of
// one thermal layer's conduction matrix.
func laplacian2D(n int, g float64) *CSR {
	b := NewBuilder(n * n)
	idx := func(r, c int) int { return r*n + c }
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			i := idx(r, c)
			b.AddDiag(i, g) // ambient coupling keeps it nonsingular
			if c+1 < n {
				j := idx(r, c+1)
				b.AddDiag(i, g)
				b.AddDiag(j, g)
				b.Add(i, j, -g)
				b.Add(j, i, -g)
			}
			if r+1 < n {
				j := idx(r+1, c)
				b.AddDiag(i, g)
				b.AddDiag(j, g)
				b.Add(i, j, -g)
				b.Add(j, i, -g)
			}
		}
	}
	m, err := b.Build()
	if err != nil {
		panic(err)
	}
	return m
}

func TestJacobiPreconditioner(t *testing.T) {
	a := laplacian1D(10, 2)
	p, err := NewJacobiPreconditioner(a)
	if err != nil {
		t.Fatal(err)
	}
	r := make([]float64, 10)
	dst := make([]float64, 10)
	for i := range r {
		r[i] = float64(i + 1)
	}
	p.Apply(dst, r)
	for i := range dst {
		want := r[i] / a.At(i, i)
		if math.Abs(dst[i]-want) > 1e-14 {
			t.Errorf("dst[%d] = %g, want %g", i, dst[i], want)
		}
	}
	// Zero diagonal must be rejected.
	b := NewBuilder(2)
	b.Add(0, 1, 1)
	b.Add(1, 0, 1)
	bad, _ := b.Build()
	if _, err := NewJacobiPreconditioner(bad); err == nil {
		t.Error("zero diagonal accepted")
	}
}

func TestICFactorizationExactOnTridiagonal(t *testing.T) {
	// IC(0) on a tridiagonal SPD matrix has no fill-in, so L·Lᵀ must
	// reproduce A exactly; the preconditioner is then an exact solver.
	a := laplacian1D(40, 3.0)
	ic, err := NewICPreconditioner(a)
	if err != nil {
		t.Fatal(err)
	}
	r := make([]float64, a.N())
	for i := range r {
		r[i] = math.Sin(float64(i) * 0.7)
	}
	x := make([]float64, a.N())
	ic.Apply(x, r)
	// A·x must equal r.
	ax := make([]float64, a.N())
	a.MulVec(ax, x)
	for i := range ax {
		if math.Abs(ax[i]-r[i]) > 1e-9 {
			t.Fatalf("IC apply not exact on tridiagonal: row %d: %g vs %g", i, ax[i], r[i])
		}
	}
}

func TestICPCGOn2DLaplacian(t *testing.T) {
	a := laplacian2D(20, 1.7)
	b := make([]float64, a.N())
	for i := range b {
		b[i] = float64(i%11) - 5
	}
	ic, err := NewICPreconditioner(a)
	if err != nil {
		t.Fatal(err)
	}
	x, stIC, err := CGPrecond(a, b, ic, SolveOptions{})
	if err != nil {
		t.Fatalf("IC-PCG: %v", err)
	}
	checkSolution(t, "IC-PCG", a, x, b, 1e-8)

	_, stJac, err := CG(a, b, SolveOptions{})
	if err != nil {
		t.Fatalf("Jacobi CG: %v", err)
	}
	if stIC.Iterations >= stJac.Iterations {
		t.Errorf("IC-PCG took %d iterations, Jacobi CG %d; IC should be faster",
			stIC.Iterations, stJac.Iterations)
	}
}

func TestICRejectsIndefinite(t *testing.T) {
	// A matrix with a strongly negative diagonal entry is not SPD; IC(0)
	// must report a non-positive pivot rather than produce NaNs.
	b := NewBuilder(3)
	b.AddDiag(0, 4)
	b.AddDiag(1, -5)
	b.AddDiag(2, 4)
	b.Add(0, 1, -1)
	b.Add(1, 0, -1)
	a, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewICPreconditioner(a); err == nil {
		t.Error("indefinite matrix accepted by IC(0)")
	}
}

func TestICRejectsMissingDiagonal(t *testing.T) {
	b := NewBuilder(2)
	b.Add(0, 0, 2)
	b.Add(0, 1, 1)
	b.Add(1, 0, 1)
	a, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewICPreconditioner(a); err == nil {
		t.Error("missing diagonal accepted")
	}
}

func TestCGPrecondValidation(t *testing.T) {
	a := laplacian1D(4, 1)
	if _, _, err := CGPrecond(a, make([]float64, 3), nil, SolveOptions{}); err == nil {
		t.Error("nil preconditioner / bad rhs accepted")
	}
	jac, err := NewJacobiPreconditioner(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := CGPrecond(a, make([]float64, 3), jac, SolveOptions{}); err == nil {
		t.Error("mismatched rhs accepted")
	}
	// Zero rhs short-circuits.
	x, st, err := CGPrecond(a, make([]float64, 4), jac, SolveOptions{})
	if err != nil || NormInf(x) != 0 || st.Iterations != 0 {
		t.Errorf("zero rhs: x=%v st=%+v err=%v", x, st, err)
	}
}

// Property: IC-PCG solves random SPD diagonally-dominant systems to the
// requested tolerance.
func TestICPCGProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(30)
		b := NewBuilder(n)
		for i := 0; i < n; i++ {
			b.AddDiag(i, 1)
		}
		for k := 0; k < 2*n; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i == j {
				continue
			}
			v := -rng.Float64()
			b.Add(i, j, v)
			b.Add(j, i, v)
			b.AddDiag(i, -v+0.1)
			b.AddDiag(j, -v+0.1)
		}
		a, err := b.Build()
		if err != nil {
			return false
		}
		rhs := make([]float64, n)
		for i := range rhs {
			rhs[i] = rng.NormFloat64()
		}
		ic, err := NewICPreconditioner(a)
		if err != nil {
			return false
		}
		x, _, err := CGPrecond(a, rhs, ic, SolveOptions{Tol: 1e-11})
		if err != nil {
			return false
		}
		r := make([]float64, n)
		return a.Residual(r, x, rhs) < 1e-6*(1+NormInf(rhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPreconditionerAblation(b *testing.B) {
	a := laplacian2D(40, 2.2)
	rhs := make([]float64, a.N())
	for i := range rhs {
		rhs[i] = float64(i%13) - 6
	}
	b.Run("jacobi-cg", func(b *testing.B) {
		var iters int
		for i := 0; i < b.N; i++ {
			_, st, err := CG(a, rhs, SolveOptions{})
			if err != nil {
				b.Fatal(err)
			}
			iters = st.Iterations
		}
		b.ReportMetric(float64(iters), "iters")
	})
	b.Run("ic0-cg", func(b *testing.B) {
		var iters int
		for i := 0; i < b.N; i++ {
			ic, err := NewICPreconditioner(a)
			if err != nil {
				b.Fatal(err)
			}
			_, st, err := CGPrecond(a, rhs, ic, SolveOptions{})
			if err != nil {
				b.Fatal(err)
			}
			iters = st.Iterations
		}
		b.ReportMetric(float64(iters), "iters")
	})
}
