package sparse

import (
	"math"
	"testing"
)

// asymMatrix builds a small strictly diagonally dominant nonsymmetric
// matrix so the transpose paths have something genuinely asymmetric to
// chew on.
func asymMatrix(t *testing.T) *CSR {
	t.Helper()
	const n = 12
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddDiag(i, 8+float64(i%3))
		if i+1 < n {
			b.Add(i, i+1, -1.5)
			b.Add(i+1, i, -0.5)
		}
		if i+4 < n {
			b.Add(i, i+4, -0.25)
		}
	}
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMulVecTMatchesDenseTranspose(t *testing.T) {
	m := asymMatrix(t)
	n := m.N()
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(float64(i) + 1)
	}
	got := make([]float64, n)
	m.MulVecT(got, x)
	d := m.Dense()
	for j := 0; j < n; j++ {
		var want float64
		for i := 0; i < n; i++ {
			want += d[i][j] * x[i]
		}
		if math.Abs(got[j]-want) > 1e-12 {
			t.Errorf("MulVecT[%d] = %g, dense transpose %g", j, got[j], want)
		}
	}
}

func TestTransposeRoundTrip(t *testing.T) {
	m := asymMatrix(t)
	tr := m.Transpose()
	n := m.N()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if tr.At(i, j) != m.At(j, i) {
				t.Fatalf("transpose(%d,%d) = %g, want %g", i, j, tr.At(i, j), m.At(j, i))
			}
		}
	}
	if m.NNZ() != tr.NNZ() {
		t.Errorf("transpose changed nnz: %d vs %d", tr.NNZ(), m.NNZ())
	}
}

func TestSolveTransposeNonsymmetric(t *testing.T) {
	m := asymMatrix(t)
	n := m.N()
	// Manufacture b = Aᵀ·x* so the solution is known exactly.
	want := make([]float64, n)
	for i := range want {
		want[i] = 1 + 0.1*float64(i)
	}
	b := make([]float64, n)
	m.MulVecT(b, want)
	x, _, err := SolveTranspose(m, b, SolveOptions{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(x[i]-want[i]) > 1e-8 {
			t.Errorf("x[%d] = %g, want %g", i, x[i], want[i])
		}
	}
}

// TestSolveTransposeSymmetricReusesPrecond: on a stamped-symmetric matrix
// the transpose solve must delegate to the forward path and accept the
// caller's cached preconditioner — the reuse the adjoint gradients are
// built on.
func TestSolveTransposeSymmetricReusesPrecond(t *testing.T) {
	const n = 40
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddDiag(i, 4)
		if i+1 < n {
			b.Add(i, i+1, -1)
			b.Add(i+1, i, -1)
		}
	}
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m.MarkSymmetric(true)
	ic, err := NewICPreconditioner(m)
	if err != nil {
		t.Fatal(err)
	}
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = math.Cos(float64(i))
	}
	withPre, stPre, err := SolveTranspose(m, rhs, SolveOptions{Tol: 1e-12, Precond: ic})
	if err != nil {
		t.Fatal(err)
	}
	forward, _, err := SolveAuto(m, rhs, SolveOptions{Tol: 1e-12, Precond: ic})
	if err != nil {
		t.Fatal(err)
	}
	for i := range withPre {
		if withPre[i] != forward[i] {
			t.Fatalf("symmetric transpose solve diverged from forward solve at %d: %g vs %g",
				i, withPre[i], forward[i])
		}
	}
	// The IC(0)-preconditioned path converges in far fewer iterations than
	// the problem dimension; a dropped preconditioner would show up here.
	if stPre.Iterations >= n {
		t.Errorf("preconditioned transpose solve took %d iterations; preconditioner ignored?", stPre.Iterations)
	}
}
