package sparse

import (
	"errors"
	"math"
	"reflect"
	"testing"
)

// patchedMatrix returns a copy of base with the override values for
// column j applied — the per-point view of one batched column's system.
func patchedMatrix(t *testing.T, base *CSR, ovs []DiagOverride, j int) *CSR {
	t.Helper()
	vals := make([]float64, base.NNZ())
	if err := base.CopyValues(vals); err != nil {
		t.Fatal(err)
	}
	for _, ov := range ovs {
		vals[ov.K] = ov.Vals[j]
	}
	m, err := base.WithValues(vals)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestCGPrecondBatchMatchesScalarBitwise is the core lockstep contract:
// every batched column must be bit-identical (reflect.DeepEqual, not
// tolerance) to a solo CGPrecond run against the patched matrix with the
// same shared preconditioner, start, and options — solutions and Stats.
func TestCGPrecondBatchMatchesScalarBitwise(t *testing.T) {
	base := laplacian2D(12, 1.9)
	n := base.N()
	ic, err := NewICPreconditioner(base)
	if err != nil {
		t.Fatal(err)
	}
	diag, err := base.DiagIndices()
	if err != nil {
		t.Fatal(err)
	}

	const w = 5
	// Override two diagonal rows with per-column values ≥ the base value
	// (keeps every column SPD), mirroring the thermal TEC diagonal patch.
	rows := []int{7, 40}
	ovs := make([]DiagOverride, 0, len(rows))
	for _, row := range rows {
		vals := make([]float64, w)
		for j := range vals {
			vals[j] = base.ValAt(int(diag[row])) + 0.3*float64(j)
		}
		ovs = append(ovs, DiagOverride{Row: int32(row), K: diag[row], Vals: vals})
	}

	b := make([]float64, n*w)
	for i := 0; i < n; i++ {
		for j := 0; j < w; j++ {
			b[i*w+j] = math.Sin(float64(i)*0.31+float64(j)) + 0.1*float64(j)
		}
	}

	for _, warm := range []bool{false, true} {
		var x0 []float64
		if warm {
			x0 = make([]float64, n*w)
			for i := range x0 {
				x0[i] = 0.01 * float64(i%17)
			}
		}
		opts := SolveOptions{Tol: 1e-10}
		got, stats, ok, err := CGPrecondBatch(base, ovs, b, x0, ic, w, opts, nil)
		if err != nil {
			t.Fatalf("warm=%v: %v", warm, err)
		}
		for j := 0; j < w; j++ {
			if !ok[j] {
				t.Fatalf("warm=%v: column %d did not converge", warm, j)
			}
			am := patchedMatrix(t, base, ovs, j)
			bj := make([]float64, n)
			solo := SolveOptions{Tol: 1e-10}
			if warm {
				solo.X0 = make([]float64, n)
			}
			for i := 0; i < n; i++ {
				bj[i] = b[i*w+j]
				if warm {
					solo.X0[i] = x0[i*w+j]
				}
			}
			want, wantStats, err := CGPrecond(am, bj, ic, solo)
			if err != nil {
				t.Fatalf("warm=%v col %d solo: %v", warm, j, err)
			}
			if !reflect.DeepEqual(got[j], want) {
				t.Errorf("warm=%v col %d: batched solution differs from solo (bitwise)", warm, j)
			}
			if stats[j] != wantStats {
				t.Errorf("warm=%v col %d: stats %+v, solo %+v", warm, j, stats[j], wantStats)
			}
		}
	}
}

// TestCGPrecondBatchMixedConvergence freezes columns at different
// iterations (very different RHS magnitudes and tolerances met at
// different times) and checks late columns are unperturbed by early ones.
func TestCGPrecondBatchMixedConvergence(t *testing.T) {
	base := laplacian2D(10, 2.3)
	n := base.N()
	ic, err := NewICPreconditioner(base)
	if err != nil {
		t.Fatal(err)
	}
	const w = 4
	b := make([]float64, n*w)
	for i := 0; i < n; i++ {
		// Column 0 trivially easy (constant), column 3 rough.
		b[i*w+0] = 1
		b[i*w+1] = float64(i % 3)
		b[i*w+2] = math.Cos(float64(i) * 1.3)
		b[i*w+3] = math.Sin(float64(i*i%7)) * 50
	}
	got, stats, ok, err := CGPrecondBatch(base, nil, b, nil, ic, w, SolveOptions{}, GetBatchWorkspace())
	if err != nil {
		t.Fatal(err)
	}
	iterSpread := map[int]bool{}
	for j := 0; j < w; j++ {
		if !ok[j] {
			t.Fatalf("column %d failed", j)
		}
		iterSpread[stats[j].Iterations] = true
		bj := make([]float64, n)
		for i := 0; i < n; i++ {
			bj[i] = b[i*w+j]
		}
		want, wantStats, err := CGPrecond(base, bj, ic, SolveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got[j], want) || stats[j] != wantStats {
			t.Errorf("col %d: mismatch vs solo (stats %+v vs %+v)", j, stats[j], wantStats)
		}
	}
	if len(iterSpread) < 2 {
		t.Fatalf("test wants columns converging at different iterations, got %v", stats)
	}
}

// TestCGPrecondBatchZeroRHS: a zero column returns its start unchanged
// with zero Stats, exactly like CGPrecond's bnorm == 0 short-circuit.
func TestCGPrecondBatchZeroRHS(t *testing.T) {
	base := laplacian2D(6, 1.5)
	n := base.N()
	ic, err := NewICPreconditioner(base)
	if err != nil {
		t.Fatal(err)
	}
	const w = 2
	b := make([]float64, n*w)
	x0 := make([]float64, n*w)
	for i := 0; i < n; i++ {
		b[i*w+1] = float64(i + 1) // column 0 stays zero
		x0[i*w+0] = 3.25
		x0[i*w+1] = 0
	}
	got, stats, ok, err := CGPrecondBatch(base, nil, b, x0, ic, w, SolveOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !ok[0] || stats[0] != (Stats{}) {
		t.Errorf("zero column: ok=%v stats=%+v", ok[0], stats[0])
	}
	for i := 0; i < n; i++ {
		if got[0][i] != 3.25 {
			t.Fatalf("zero column start perturbed at %d: %g", i, got[0][i])
		}
	}
	if !ok[1] {
		t.Error("nonzero column failed")
	}
}

// TestCGPrecondBatchBreakdown: an override that makes one column's
// matrix indefinite must trip the pᵀAp breakdown for that column only,
// at the same iteration the solo solve fails, leaving siblings intact.
func TestCGPrecondBatchBreakdown(t *testing.T) {
	base := laplacian2D(8, 2.0)
	n := base.N()
	ic, err := NewICPreconditioner(base)
	if err != nil {
		t.Fatal(err)
	}
	diag, err := base.DiagIndices()
	if err != nil {
		t.Fatal(err)
	}
	const w = 3
	row := 20
	ovs := []DiagOverride{{
		Row: int32(row),
		K:   diag[row],
		// Column 1 gets a strongly negative diagonal → indefinite.
		Vals: []float64{base.ValAt(int(diag[row])), -40, base.ValAt(int(diag[row])) + 1},
	}}
	b := make([]float64, n*w)
	for i := 0; i < n; i++ {
		for j := 0; j < w; j++ {
			b[i*w+j] = math.Sin(float64(i)*0.7 + float64(j))
		}
	}
	got, stats, ok, err := CGPrecondBatch(base, ovs, b, nil, ic, w, SolveOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ok[1] {
		t.Fatal("indefinite column reported converged")
	}
	am := patchedMatrix(t, base, ovs, 1)
	bj := make([]float64, n)
	for i := 0; i < n; i++ {
		bj[i] = b[i*w+1]
	}
	_, soloStats, soloErr := CGPrecond(am, bj, ic, SolveOptions{})
	if soloErr == nil {
		t.Fatal("solo solve of indefinite column unexpectedly converged")
	}
	if stats[1].Iterations != soloStats.Iterations {
		t.Errorf("breakdown iteration %d, solo %d", stats[1].Iterations, soloStats.Iterations)
	}
	for _, j := range []int{0, 2} {
		if !ok[j] {
			t.Fatalf("healthy column %d failed", j)
		}
		am := patchedMatrix(t, base, ovs, j)
		for i := 0; i < n; i++ {
			bj[i] = b[i*w+j]
		}
		want, wantStats, err := CGPrecond(am, bj, ic, SolveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got[j], want) || stats[j] != wantStats {
			t.Errorf("healthy column %d perturbed by sibling breakdown", j)
		}
	}
}

// TestSolveBatchMatchesCGPrecond covers the shared-matrix multi-RHS
// convenience (no overrides, column-major [][]float64 interface).
func TestSolveBatchMatchesCGPrecond(t *testing.T) {
	base := laplacian2D(9, 1.4)
	n := base.N()
	ic, err := NewICPreconditioner(base)
	if err != nil {
		t.Fatal(err)
	}
	B := make([][]float64, 6)
	for j := range B {
		B[j] = make([]float64, n)
		for i := range B[j] {
			B[j][i] = math.Sin(float64(i*(j+1)) * 0.17)
		}
	}
	x0 := make([]float64, n)
	for i := range x0 {
		x0[i] = 0.5
	}
	got, stats, ok, err := SolveBatch(base, B, ic, SolveOptions{X0: x0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for j := range B {
		if !ok[j] {
			t.Fatalf("column %d failed", j)
		}
		want, wantStats, err := CGPrecond(base, B[j], ic, SolveOptions{X0: x0})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got[j], want) || stats[j] != wantStats {
			t.Errorf("column %d mismatch vs solo", j)
		}
	}
	if out, _, _, err := SolveBatch(base, nil, ic, SolveOptions{}, nil); err != nil || out != nil {
		t.Errorf("empty batch: out=%v err=%v", out, err)
	}
}

func TestCGPrecondBatchValidation(t *testing.T) {
	base := laplacian2D(4, 1.0)
	n := base.N()
	ic, err := NewICPreconditioner(base)
	if err != nil {
		t.Fatal(err)
	}
	diag, _ := base.DiagIndices()
	good := make([]float64, n*2)
	cases := []struct {
		name string
		run  func() error
	}{
		{"zero width", func() error {
			_, _, _, err := CGPrecondBatch(base, nil, nil, nil, ic, 0, SolveOptions{}, nil)
			return err
		}},
		{"short rhs", func() error {
			_, _, _, err := CGPrecondBatch(base, nil, make([]float64, n), nil, ic, 2, SolveOptions{}, nil)
			return err
		}},
		{"short start", func() error {
			_, _, _, err := CGPrecondBatch(base, nil, good, make([]float64, n), ic, 2, SolveOptions{}, nil)
			return err
		}},
		{"nil preconditioner", func() error {
			_, _, _, err := CGPrecondBatch(base, nil, good, nil, nil, 2, SolveOptions{}, nil)
			return err
		}},
		{"override width", func() error {
			ovs := []DiagOverride{{Row: 1, K: diag[1], Vals: []float64{1}}}
			_, _, _, err := CGPrecondBatch(base, ovs, good, nil, ic, 2, SolveOptions{}, nil)
			return err
		}},
		{"unsorted overrides", func() error {
			ovs := []DiagOverride{
				{Row: 2, K: diag[2], Vals: []float64{1, 1}},
				{Row: 1, K: diag[1], Vals: []float64{1, 1}},
			}
			_, _, _, err := CGPrecondBatch(base, ovs, good, nil, ic, 2, SolveOptions{}, nil)
			return err
		}},
		{"override outside pattern", func() error {
			ovs := []DiagOverride{{Row: 1, K: int32(base.NNZ()) + 3, Vals: []float64{1, 1}}}
			_, _, _, err := CGPrecondBatch(base, ovs, good, nil, ic, 2, SolveOptions{}, nil)
			return err
		}},
		{"ragged solve-batch rhs", func() error {
			_, _, _, err := SolveBatch(base, [][]float64{make([]float64, n-1)}, ic, SolveOptions{}, nil)
			return err
		}},
		{"solve-batch start length", func() error {
			_, _, _, err := SolveBatch(base, [][]float64{make([]float64, n)}, ic, SolveOptions{X0: make([]float64, 2)}, nil)
			return err
		}},
	}
	for _, tc := range cases {
		if tc.run() == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestICVersioned: hits skip the builder entirely, misses build outside
// the lock, failures are cached, version 0 always rebuilds.
func TestICVersioned(t *testing.T) {
	c := NewFactorCache(4)
	a := laplacian2D(5, 1.2)
	builds := 0
	build := func() (*ICPreconditioner, error) {
		builds++
		return NewICPreconditioner(a)
	}
	ic1, ok := c.ICVersioned(7, build)
	if !ok || ic1 == nil || builds != 1 {
		t.Fatalf("miss: ok=%v builds=%d", ok, builds)
	}
	ic2, ok := c.ICVersioned(7, build)
	if !ok || ic2 != ic1 || builds != 1 {
		t.Fatalf("hit rebuilt: builds=%d same=%v", builds, ic2 == ic1)
	}
	if _, ok := c.ICVersioned(0, build); !ok || builds != 2 {
		t.Fatalf("version 0 must build fresh: builds=%d", builds)
	}
	fails := 0
	failing := func() (*ICPreconditioner, error) {
		fails++
		return nil, errors.New("not SPD")
	}
	if _, ok := c.ICVersioned(9, failing); ok {
		t.Fatal("failure reported ok")
	}
	if _, ok := c.ICVersioned(9, failing); ok || fails != 1 {
		t.Fatalf("failure not cached: fails=%d", fails)
	}
}
