package sparse

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoConvergence is returned when an iterative solver exhausts its
// iteration budget without reaching the requested tolerance.
var ErrNoConvergence = errors.New("sparse: iterative solver did not converge")

// ErrSingular is returned when a direct factorization encounters a pivot
// that is numerically zero.
var ErrSingular = errors.New("sparse: matrix is singular to working precision")

// SolveOptions configures the iterative solvers.
type SolveOptions struct {
	// Tol is the relative residual tolerance ‖b−Ax‖₂ ≤ Tol·‖b‖₂.
	// Zero selects the default 1e-10.
	Tol float64
	// MaxIter caps the number of iterations. Zero selects 4·n.
	MaxIter int
	// X0 is an optional warm-start; nil starts from zero.
	X0 []float64
	// Precond optionally supplies a preconditioner for SolveAuto's
	// symmetric path, bypassing the per-solve IC(0) factorization —
	// the hook for factorization caching (see FactorCache).
	Precond Preconditioner
	// Work optionally supplies reusable solver work arrays so repeated
	// solves stay allocation-light. A Workspace must not be shared by
	// concurrent solves.
	Work *Workspace
}

// Workspace holds the per-solve scratch vectors of the CG-family solvers
// so callers that solve in a loop (or from a sync.Pool) avoid per-call
// allocation. The zero value is ready to use; vectors grow on demand and
// are retained across solves.
type Workspace struct {
	r, z, p, ap, pre []float64
}

// grow sizes every scratch vector to length n.
func (w *Workspace) grow(n int) {
	grow1 := func(v []float64) []float64 {
		if cap(v) < n {
			return make([]float64, n)
		}
		return v[:n]
	}
	w.r = grow1(w.r)
	w.z = grow1(w.z)
	w.p = grow1(w.p)
	w.ap = grow1(w.ap)
	w.pre = grow1(w.pre)
}

// work returns the caller's workspace or a fresh one, sized to n.
func (o SolveOptions) work(n int) *Workspace {
	w := o.Work
	if w == nil {
		w = &Workspace{}
	}
	w.grow(n)
	return w
}

func (o SolveOptions) tol() float64 {
	if o.Tol <= 0 {
		return 1e-10
	}
	return o.Tol
}

func (o SolveOptions) maxIter(n int) int {
	if o.MaxIter <= 0 {
		return 4 * n
	}
	return o.MaxIter
}

// Stats reports how a solve went.
type Stats struct {
	Iterations int
	Residual   float64 // final relative residual
}

// CG solves A·x = b with the Jacobi-preconditioned conjugate gradient
// method. A must be symmetric; positive definiteness is required for
// guaranteed convergence. The result is written into a new slice.
func CG(a *CSR, b []float64, opts SolveOptions) ([]float64, Stats, error) {
	n := a.N()
	if len(b) != n {
		return nil, Stats{}, fmt.Errorf("sparse: rhs length %d does not match matrix dimension %d", len(b), n)
	}
	x := make([]float64, n)
	if opts.X0 != nil {
		copy(x, opts.X0)
	}
	ws := opts.work(n)
	r := ws.r
	a.Residual(r, x, b)

	bnorm := Norm2(b)
	if bnorm == 0 {
		return x, Stats{}, nil
	}
	tol := opts.tol()

	// Jacobi preconditioner M = diag(A).
	invDiag := ws.pre
	for i := range invDiag {
		d := a.At(i, i)
		if d == 0 {
			return nil, Stats{}, fmt.Errorf("sparse: zero diagonal at row %d; Jacobi preconditioner undefined", i)
		}
		invDiag[i] = 1 / d
	}

	z, p, ap := ws.z, ws.p, ws.ap
	for i := range z {
		z[i] = invDiag[i] * r[i]
	}
	copy(p, z)
	rz := Dot(r, z)

	maxIter := opts.maxIter(n)
	for it := 1; it <= maxIter; it++ {
		a.MulVec(ap, p)
		pap := Dot(p, ap)
		if pap == 0 || math.IsNaN(pap) {
			return nil, Stats{Iterations: it}, fmt.Errorf("%w: CG breakdown (pᵀAp=%g)", ErrNoConvergence, pap)
		}
		alpha := rz / pap
		AXPY(alpha, p, x)
		AXPY(-alpha, ap, r)

		res := Norm2(r) / bnorm
		if res <= tol {
			return x, Stats{Iterations: it, Residual: res}, nil
		}
		for i := range z {
			z[i] = invDiag[i] * r[i]
		}
		rzNew := Dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	return x, Stats{Iterations: maxIter, Residual: Norm2(r) / bnorm}, ErrNoConvergence
}

// BiCGSTAB solves A·x = b for general (possibly nonsymmetric or indefinite)
// matrices with Jacobi preconditioning.
func BiCGSTAB(a *CSR, b []float64, opts SolveOptions) ([]float64, Stats, error) {
	n := a.N()
	if len(b) != n {
		return nil, Stats{}, fmt.Errorf("sparse: rhs length %d does not match matrix dimension %d", len(b), n)
	}
	x := make([]float64, n)
	if opts.X0 != nil {
		copy(x, opts.X0)
	}
	r := make([]float64, n)
	a.Residual(r, x, b)

	bnorm := Norm2(b)
	if bnorm == 0 {
		return x, Stats{}, nil
	}
	tol := opts.tol()

	invDiag := a.Diagonal()
	for i, d := range invDiag {
		if d == 0 {
			return nil, Stats{}, fmt.Errorf("sparse: zero diagonal at row %d; Jacobi preconditioner undefined", i)
		}
		invDiag[i] = 1 / d
	}

	rhat := make([]float64, n)
	copy(rhat, r)
	p := make([]float64, n)
	v := make([]float64, n)
	s := make([]float64, n)
	t := make([]float64, n)
	phat := make([]float64, n)
	shat := make([]float64, n)

	rho, alpha, omega := 1.0, 1.0, 1.0
	maxIter := opts.maxIter(n)
	for it := 1; it <= maxIter; it++ {
		rhoNew := Dot(rhat, r)
		if rhoNew == 0 {
			return nil, Stats{Iterations: it}, fmt.Errorf("%w: BiCGSTAB breakdown (rho=0)", ErrNoConvergence)
		}
		if it == 1 {
			copy(p, r)
		} else {
			beta := (rhoNew / rho) * (alpha / omega)
			for i := range p {
				p[i] = r[i] + beta*(p[i]-omega*v[i])
			}
		}
		rho = rhoNew

		for i := range phat {
			phat[i] = invDiag[i] * p[i]
		}
		a.MulVec(v, phat)
		den := Dot(rhat, v)
		if den == 0 {
			return nil, Stats{Iterations: it}, fmt.Errorf("%w: BiCGSTAB breakdown (r̂ᵀv=0)", ErrNoConvergence)
		}
		alpha = rho / den
		for i := range s {
			s[i] = r[i] - alpha*v[i]
		}
		if res := Norm2(s) / bnorm; res <= tol {
			AXPY(alpha, phat, x)
			return x, Stats{Iterations: it, Residual: res}, nil
		}
		for i := range shat {
			shat[i] = invDiag[i] * s[i]
		}
		a.MulVec(t, shat)
		tt := Dot(t, t)
		if tt == 0 {
			return nil, Stats{Iterations: it}, fmt.Errorf("%w: BiCGSTAB breakdown (tᵀt=0)", ErrNoConvergence)
		}
		omega = Dot(t, s) / tt
		for i := range x {
			x[i] += alpha*phat[i] + omega*shat[i]
		}
		for i := range r {
			r[i] = s[i] - omega*t[i]
		}
		if res := Norm2(r) / bnorm; res <= tol {
			return x, Stats{Iterations: it, Residual: res}, nil
		}
		if omega == 0 {
			return nil, Stats{Iterations: it}, fmt.Errorf("%w: BiCGSTAB breakdown (omega=0)", ErrNoConvergence)
		}
	}
	a.Residual(r, x, b)
	return x, Stats{Iterations: maxIter, Residual: Norm2(r) / bnorm}, ErrNoConvergence
}

// SOR solves A·x = b with successive over-relaxation. relax=1 is
// Gauss-Seidel. SOR is exposed mainly as a reference solver for tests and
// as a smoother; the Krylov methods are preferred in production paths.
func SOR(a *CSR, b []float64, relax float64, opts SolveOptions) ([]float64, Stats, error) {
	n := a.N()
	if len(b) != n {
		return nil, Stats{}, fmt.Errorf("sparse: rhs length %d does not match matrix dimension %d", len(b), n)
	}
	if relax <= 0 || relax >= 2 {
		return nil, Stats{}, fmt.Errorf("sparse: SOR relaxation factor %g outside (0,2)", relax)
	}
	x := make([]float64, n)
	if opts.X0 != nil {
		copy(x, opts.X0)
	}
	bnorm := Norm2(b)
	if bnorm == 0 {
		return x, Stats{}, nil
	}
	tol := opts.tol()
	r := make([]float64, n)

	maxIter := opts.maxIter(n)
	for it := 1; it <= maxIter; it++ {
		for i := 0; i < n; i++ {
			lo, hi := int(a.rowPtr[i]), int(a.rowPtr[i+1])
			var sum, diag float64
			for k := lo; k < hi; k++ {
				j := int(a.colIdx[k])
				if j == i {
					diag = a.values[k]
					continue
				}
				sum += a.values[k] * x[j]
			}
			if diag == 0 {
				return nil, Stats{Iterations: it}, fmt.Errorf("sparse: zero diagonal at row %d in SOR", i)
			}
			gs := (b[i] - sum) / diag
			x[i] += relax * (gs - x[i])
		}
		if res := a.Residual(r, x, b); res/(1+bnorm) <= tol || Norm2(r)/bnorm <= tol {
			return x, Stats{Iterations: it, Residual: Norm2(r) / bnorm}, nil
		}
	}
	return x, Stats{Iterations: maxIter, Residual: Norm2(r) / bnorm}, ErrNoConvergence
}

// LU is a dense LU factorization with partial pivoting. It is the fallback
// for small systems and for operating points where the Krylov solvers
// break down (e.g. matrices driven indefinite by leakage feedback).
type LU struct {
	n    int
	lu   [][]float64
	piv  []int
	sign int
}

// NewLU factorizes the dense matrix a (row-major slices). a is not modified.
func NewLU(a [][]float64) (*LU, error) {
	n := len(a)
	lu := make([][]float64, n)
	buf := make([]float64, n*n)
	for i := range lu {
		lu[i] = buf[i*n : (i+1)*n]
		if len(a[i]) != n {
			return nil, fmt.Errorf("sparse: dense matrix row %d has length %d, want %d", i, len(a[i]), n)
		}
		copy(lu[i], a[i])
	}
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	f := &LU{n: n, lu: lu, piv: piv, sign: 1}

	for col := 0; col < n; col++ {
		// Partial pivot.
		p := col
		max := math.Abs(lu[col][col])
		for r := col + 1; r < n; r++ {
			if a := math.Abs(lu[r][col]); a > max {
				max, p = a, r
			}
		}
		if max == 0 {
			return nil, fmt.Errorf("%w: zero pivot at column %d", ErrSingular, col)
		}
		if p != col {
			lu[p], lu[col] = lu[col], lu[p]
			piv[p], piv[col] = piv[col], piv[p]
			f.sign = -f.sign
		}
		pivVal := lu[col][col]
		for r := col + 1; r < n; r++ {
			m := lu[r][col] / pivVal
			lu[r][col] = m
			if m == 0 {
				continue
			}
			rowR, rowC := lu[r], lu[col]
			for c := col + 1; c < n; c++ {
				rowR[c] -= m * rowC[c]
			}
		}
	}
	return f, nil
}

// Solve solves A·x = b using the stored factorization.
func (f *LU) Solve(b []float64) ([]float64, error) {
	if len(b) != f.n {
		return nil, fmt.Errorf("sparse: rhs length %d does not match matrix dimension %d", len(b), f.n)
	}
	x := make([]float64, f.n)
	for i := 0; i < f.n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution (unit lower triangular).
	for i := 1; i < f.n; i++ {
		row := f.lu[i]
		var s float64
		for j := 0; j < i; j++ {
			s += row[j] * x[j]
		}
		x[i] -= s
	}
	// Back substitution.
	for i := f.n - 1; i >= 0; i-- {
		row := f.lu[i]
		var s float64
		for j := i + 1; j < f.n; j++ {
			s += row[j] * x[j]
		}
		x[i] = (x[i] - s) / row[i]
	}
	return x, nil
}

// Det returns the determinant of the factorized matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.n; i++ {
		d *= f.lu[i][i]
	}
	return d
}

// SolveAuto solves A·x = b choosing a method automatically: CG first when
// the matrix is symmetric, falling back to BiCGSTAB, then dense LU for
// systems small enough to factorize. It is the entry point used by the
// thermal package. A MarkSymmetric stamp on the matrix skips the
// per-solve symmetry scan, and SolveOptions.Precond skips the per-solve
// IC(0) factorization (factorization caching).
//
//oftec:allocok returns a freshly allocated solution vector by contract; iteration scratch comes from SolveOptions.Work
func SolveAuto(a *CSR, b []float64, opts SolveOptions) ([]float64, Stats, error) {
	const denseLimit = 3000

	if a.SymmetricHint(1e-12) {
		// IC(0)-preconditioned CG first: on the conduction-dominated
		// thermal matrices it converges in a fraction of the Jacobi
		// iterations. Factorization failure (indefinite matrix near
		// thermal runaway) falls through to the Jacobi variants.
		pre := opts.Precond
		if pre == nil {
			if ic, err := NewICPreconditioner(a); err == nil {
				pre = ic
			}
		}
		if pre != nil {
			if x, st, err := CGPrecond(a, b, pre, opts); err == nil {
				return x, st, nil
			}
		}
		if x, st, err := CG(a, b, opts); err == nil {
			return x, st, nil
		}
	}
	if x, st, err := BiCGSTAB(a, b, opts); err == nil {
		return x, st, nil
	}
	if a.N() <= denseLimit {
		f, err := NewLU(a.Dense())
		if err != nil {
			return nil, Stats{}, err
		}
		x, err := f.Solve(b)
		if err != nil {
			return nil, Stats{}, err
		}
		// Report the same statistic as the iterative solvers: the relative
		// 2-norm residual ‖b−Ax‖₂/‖b‖₂ that SolveOptions.Tol is defined
		// against (the historical res/(1+‖b‖) mixed an ∞-norm numerator
		// with a shifted denominator and understated the residual).
		r := make([]float64, a.N())
		a.Residual(r, x, b)
		res := Norm2(r)
		if bnorm := Norm2(b); bnorm > 0 {
			res /= bnorm
		}
		return x, Stats{Iterations: 1, Residual: res}, nil
	}
	return nil, Stats{}, ErrNoConvergence
}
