package sparse

import (
	"fmt"
	"math"
	"sync"
)

// Preconditioner approximates the inverse of a matrix: Apply computes
// dst ≈ A⁻¹·r. Implementations must tolerate dst and r being distinct
// slices of equal length.
type Preconditioner interface {
	Apply(dst, r []float64)
}

// JacobiPreconditioner is diagonal scaling, the default inside CG and
// BiCGSTAB.
type JacobiPreconditioner struct {
	invDiag []float64
}

// NewJacobiPreconditioner builds the diagonal preconditioner; it fails on
// zero diagonal entries.
func NewJacobiPreconditioner(a *CSR) (*JacobiPreconditioner, error) {
	d := a.Diagonal()
	for i, v := range d {
		if v == 0 {
			return nil, fmt.Errorf("sparse: zero diagonal at row %d", i)
		}
		d[i] = 1 / v
	}
	return &JacobiPreconditioner{invDiag: d}, nil
}

// Apply implements Preconditioner.
func (p *JacobiPreconditioner) Apply(dst, r []float64) {
	for i := range dst {
		dst[i] = p.invDiag[i] * r[i]
	}
}

// ICPreconditioner is a zero-fill incomplete Cholesky factorization
// M = L·Lᵀ of a symmetric positive-definite matrix, with L restricted to
// the sparsity pattern of the lower triangle of A. For the thermal
// conduction matrices in this repository it cuts CG iteration counts by
// several times compared to Jacobi scaling (see the preconditioner
// ablation benchmark).
type ICPreconditioner struct {
	n int
	// l is the factor in CSR layout (rows sorted by column, diagonal last).
	lRowPtr []int32
	lColIdx []int32
	lValues []float64
	// lt is Lᵀ in CSR layout, for the backward solve.
	ltRowPtr []int32
	ltColIdx []int32
	ltValues []float64
	work     []float64
}

// NewICPreconditioner computes the IC(0) factorization. It returns an
// error when the matrix is structurally unsuitable (asymmetric pattern or
// a non-positive pivot, which signals an indefinite matrix — callers then
// fall back to Jacobi).
func NewICPreconditioner(a *CSR) (*ICPreconditioner, error) {
	n := a.N()
	p := &ICPreconditioner{n: n, work: make([]float64, n)}

	// Collect the lower-triangle pattern row by row (columns ascending,
	// diagonal last in each row).
	p.lRowPtr = make([]int32, n+1)
	for i := 0; i < n; i++ {
		lo, hi := int(a.rowPtr[i]), int(a.rowPtr[i+1])
		cnt := 0
		hasDiag := false
		for k := lo; k < hi; k++ {
			j := int(a.colIdx[k])
			if j < i {
				cnt++
			} else if j == i {
				hasDiag = true
			}
		}
		if !hasDiag {
			return nil, fmt.Errorf("sparse: IC(0) needs a structurally nonzero diagonal (row %d)", i)
		}
		p.lRowPtr[i+1] = p.lRowPtr[i] + int32(cnt+1)
	}
	nnz := int(p.lRowPtr[n])
	p.lColIdx = make([]int32, nnz)
	p.lValues = make([]float64, nnz)

	// rowStart[i] tracks the fill position of row i.
	pos := make([]int32, n)
	copy(pos, p.lRowPtr[:n])
	diagPos := make([]int32, n)
	for i := 0; i < n; i++ {
		lo, hi := int(a.rowPtr[i]), int(a.rowPtr[i+1])
		for k := lo; k < hi; k++ {
			j := int(a.colIdx[k])
			if j < i {
				p.lColIdx[pos[i]] = int32(j)
				p.lValues[pos[i]] = a.values[k]
				pos[i]++
			}
		}
		// Diagonal last.
		p.lColIdx[pos[i]] = int32(i)
		p.lValues[pos[i]] = a.At(i, i)
		diagPos[i] = pos[i]
		pos[i]++
	}

	// Factorize in place. For entry (i, j), j < i:
	//   L[i][j] = (A[i][j] − Σ_{k<j} L[i][k]·L[j][k]) / L[j][j]
	// Diagonal:
	//   L[i][i] = sqrt(A[i][i] − Σ_{k<i} L[i][k]²)
	for i := 0; i < n; i++ {
		rowLo, rowHi := int(p.lRowPtr[i]), int(p.lRowPtr[i+1])
		for idx := rowLo; idx < rowHi-1; idx++ {
			j := int(p.lColIdx[idx])
			// Sparse dot of row i (up to column j) with row j (up to j).
			sum := p.lValues[idx]
			ai, aj := rowLo, int(p.lRowPtr[j])
			aiEnd, ajEnd := idx, int(diagPos[j])
			for ai < aiEnd && aj < ajEnd {
				ci, cj := p.lColIdx[ai], p.lColIdx[aj]
				switch {
				case ci == cj:
					sum -= p.lValues[ai] * p.lValues[aj]
					ai++
					aj++
				case ci < cj:
					ai++
				default:
					aj++
				}
			}
			dj := p.lValues[diagPos[j]]
			if dj == 0 {
				return nil, fmt.Errorf("sparse: IC(0) zero pivot at row %d", j)
			}
			p.lValues[idx] = sum / dj
		}
		// Diagonal.
		d := p.lValues[rowHi-1]
		for idx := rowLo; idx < rowHi-1; idx++ {
			d -= p.lValues[idx] * p.lValues[idx]
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, fmt.Errorf("sparse: IC(0) non-positive pivot %g at row %d (matrix not SPD enough)", d, i)
		}
		p.lValues[rowHi-1] = math.Sqrt(d)
	}

	p.buildTranspose()
	return p, nil
}

// buildTranspose materializes Lᵀ in CSR form for the backward solve.
func (p *ICPreconditioner) buildTranspose() {
	n := p.n
	nnz := len(p.lValues)
	p.ltRowPtr = make([]int32, n+1)
	for k := 0; k < nnz; k++ {
		p.ltRowPtr[p.lColIdx[k]+1]++
	}
	for i := 0; i < n; i++ {
		p.ltRowPtr[i+1] += p.ltRowPtr[i]
	}
	p.ltColIdx = make([]int32, nnz)
	p.ltValues = make([]float64, nnz)
	fill := make([]int32, n)
	copy(fill, p.ltRowPtr[:n])
	for i := 0; i < n; i++ {
		for k := p.lRowPtr[i]; k < p.lRowPtr[i+1]; k++ {
			j := p.lColIdx[k]
			p.ltColIdx[fill[j]] = int32(i)
			p.ltValues[fill[j]] = p.lValues[k]
			fill[j]++
		}
	}
}

// Apply implements Preconditioner: dst = (L·Lᵀ)⁻¹ · r via one forward and
// one backward triangular solve. Apply uses an internal work vector, so a
// single ICPreconditioner must not serve concurrent solves through this
// method — shared (cached) factorizations go through ApplyScratch.
func (p *ICPreconditioner) Apply(dst, r []float64) {
	p.ApplyScratch(dst, r, p.work)
}

// ApplyScratch is Apply with a caller-provided intermediate vector (length
// N). The factor arrays are read-only after construction, so a cached
// ICPreconditioner is safe for concurrent solves as long as each solve
// brings its own scratch (see Workspace).
//
//oftec:hotpath
func (p *ICPreconditioner) ApplyScratch(dst, r, scratch []float64) {
	y := scratch
	// Forward solve L·y = r (rows of L are sorted with the diagonal last).
	for i := 0; i < p.n; i++ {
		s := r[i]
		lo, hi := int(p.lRowPtr[i]), int(p.lRowPtr[i+1])
		for k := lo; k < hi-1; k++ {
			s -= p.lValues[k] * y[p.lColIdx[k]]
		}
		y[i] = s / p.lValues[hi-1]
	}
	// Backward solve Lᵀ·dst = y. Row i of Lᵀ holds columns ≥ i; its first
	// entry is the diagonal.
	for i := p.n - 1; i >= 0; i-- {
		s := y[i]
		lo, hi := int(p.ltRowPtr[i]), int(p.ltRowPtr[i+1])
		for k := lo + 1; k < hi; k++ {
			s -= p.ltValues[k] * dst[p.ltColIdx[k]]
		}
		dst[i] = s / p.ltValues[lo]
	}
}

// FactorCache memoizes IC(0) factorizations keyed on the matrix
// value-version (CSR.SetVersion). Assembly paths that rewrite a shared
// sparsity pattern stamp each refresh with a version identifying the
// value content; solves at a repeated version then reuse the
// factorization instead of re-running the O(nnz) numeric factorization.
// Matrices with version 0 (unversioned) are factorized fresh and never
// cached. The cache is safe for concurrent use; cached preconditioners
// must be applied via ApplyScratch (CGPrecond does this automatically).
type FactorCache struct {
	mu       sync.Mutex
	capacity int
	entries  map[uint64]factorEntry
}

// factorEntry records the outcome of one factorization; ic is nil when
// the matrix was not SPD enough, so the failure is cached too and the
// caller's fallback path does not retry the factorization every solve.
type factorEntry struct {
	ic *ICPreconditioner
}

// NewFactorCache returns a cache bounded to the given number of entries
// (≤ 0 selects the default of 64). On overflow the cache is cleared
// wholesale: factorizations rebuild in one pass, and the working set of
// an optimization run is far below the bound.
func NewFactorCache(capacity int) *FactorCache {
	if capacity <= 0 {
		capacity = 64
	}
	return &FactorCache{capacity: capacity, entries: make(map[uint64]factorEntry)}
}

// IC returns the IC(0) preconditioner for a, factorizing on a version
// miss. The second return is false when the factorization failed (matrix
// not SPD enough) — callers then fall back exactly as they would on a
// fresh NewICPreconditioner error.
//
//oftec:allocok amortized O(nnz) factorization on a version miss; hits are lookup-only
func (c *FactorCache) IC(a *CSR) (*ICPreconditioner, bool) {
	v := a.Version()
	if v == 0 {
		ic, err := NewICPreconditioner(a)
		return ic, err == nil
	}
	c.mu.Lock()
	if e, ok := c.entries[v]; ok {
		c.mu.Unlock()
		return e.ic, e.ic != nil
	}
	c.mu.Unlock()

	// Factorize outside the lock so concurrent misses on different
	// versions proceed in parallel; duplicated work on the same version
	// is possible but harmless (last store wins, results are identical).
	ic, err := NewICPreconditioner(a)
	if err != nil {
		ic = nil
	}
	c.mu.Lock()
	if len(c.entries) >= c.capacity {
		c.entries = make(map[uint64]factorEntry)
	}
	c.entries[v] = factorEntry{ic: ic}
	c.mu.Unlock()
	return ic, ic != nil
}

// ICVersioned returns the cached IC(0) preconditioner for value-version
// v, invoking build on a miss. Unlike IC it does not need the matrix in
// hand on a hit: callers whose matrices live in pooled scratch can defer
// assembly (and keep the scratch alive) inside build, which both
// constructs the canonical matrix and factorizes it. v == 0 builds
// uncached; a build error is cached as a failure like IC does.
//
//oftec:allocok amortized O(nnz) factorization on a version miss; hits are lookup-only
func (c *FactorCache) ICVersioned(v uint64, build func() (*ICPreconditioner, error)) (*ICPreconditioner, bool) {
	if v == 0 {
		ic, err := build()
		return ic, err == nil && ic != nil
	}
	c.mu.Lock()
	if e, ok := c.entries[v]; ok {
		c.mu.Unlock()
		return e.ic, e.ic != nil
	}
	c.mu.Unlock()

	// Build outside the lock, same rationale as IC: concurrent misses on
	// different versions proceed in parallel, duplicated work on one
	// version is harmless.
	ic, err := build()
	if err != nil {
		ic = nil
	}
	c.mu.Lock()
	if len(c.entries) >= c.capacity {
		c.entries = make(map[uint64]factorEntry)
	}
	c.entries[v] = factorEntry{ic: ic}
	c.mu.Unlock()
	return ic, ic != nil
}

// Len reports the number of cached factorizations (test instrumentation).
func (c *FactorCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// CGPrecond solves A·x = b with the conjugate gradient method under an
// arbitrary symmetric preconditioner.
func CGPrecond(a *CSR, b []float64, m Preconditioner, opts SolveOptions) ([]float64, Stats, error) {
	n := a.N()
	if len(b) != n {
		return nil, Stats{}, fmt.Errorf("sparse: rhs length %d does not match matrix dimension %d", len(b), n)
	}
	if m == nil {
		return nil, Stats{}, fmt.Errorf("sparse: CGPrecond requires a preconditioner")
	}
	x := make([]float64, n)
	if opts.X0 != nil {
		copy(x, opts.X0)
	}
	ws := opts.work(n)
	r := ws.r
	a.Residual(r, x, b)
	bnorm := Norm2(b)
	if bnorm == 0 {
		return x, Stats{}, nil
	}
	tol := opts.tol()

	// Shared (cached) preconditioners are applied through a per-solve
	// scratch vector so concurrent solves never contend on internal state.
	apply := m.Apply
	if sp, ok := m.(interface {
		ApplyScratch(dst, r, scratch []float64)
	}); ok {
		apply = func(dst, r []float64) { sp.ApplyScratch(dst, r, ws.pre) }
	}

	z, p, ap := ws.z, ws.p, ws.ap
	apply(z, r)
	copy(p, z)
	rz := Dot(r, z)

	maxIter := opts.maxIter(n)
	for it := 1; it <= maxIter; it++ {
		a.MulVec(ap, p)
		pap := Dot(p, ap)
		if pap <= 0 || math.IsNaN(pap) {
			return nil, Stats{Iterations: it}, fmt.Errorf("%w: CG breakdown (pᵀAp=%g)", ErrNoConvergence, pap)
		}
		alpha := rz / pap
		AXPY(alpha, p, x)
		AXPY(-alpha, ap, r)
		res := Norm2(r) / bnorm
		if res <= tol {
			return x, Stats{Iterations: it, Residual: res}, nil
		}
		apply(z, r)
		rzNew := Dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	return x, Stats{Iterations: maxIter, Residual: Norm2(r) / bnorm}, ErrNoConvergence
}
