// Package sparse implements the sparse linear algebra needed by the thermal
// simulator: compressed sparse row (CSR) matrices assembled from coordinate
// triplets, iterative Krylov solvers (CG, BiCGSTAB), stationary solvers
// (Gauss-Seidel / SOR), and a dense LU fallback for small systems and for
// cross-checking the iterative methods in tests.
//
// The thermal system matrix is a conduction Laplacian plus diagonal shifts
// contributed by linear-in-temperature heat sources (Peltier terms and the
// Taylor-linearized leakage). The Laplacian part is symmetric positive
// definite; the shifts keep the matrix symmetric but may reduce diagonal
// dominance, so the package provides BiCGSTAB and LU as robust fallbacks
// for operating points close to thermal runaway where CG can stall.
package sparse

import (
	"fmt"
	"math"
	"sort"
)

// Builder accumulates coordinate-format (row, col, value) triplets and
// produces a CSR matrix. Duplicate entries are summed, which makes the
// builder convenient for finite-volume assembly where each cell face
// contributes to four matrix entries.
type Builder struct {
	n       int
	rows    []int32
	cols    []int32
	vals    []float64
	invalid error
}

// NewBuilder returns a Builder for an n×n matrix.
func NewBuilder(n int) *Builder {
	if n <= 0 {
		return &Builder{invalid: fmt.Errorf("sparse: matrix dimension %d must be positive", n)}
	}
	return &Builder{n: n}
}

// Add accumulates v into entry (i, j).
func (b *Builder) Add(i, j int, v float64) {
	if b.invalid != nil {
		return
	}
	if i < 0 || i >= b.n || j < 0 || j >= b.n {
		b.invalid = fmt.Errorf("sparse: entry (%d,%d) outside %d×%d matrix", i, j, b.n, b.n)
		return
	}
	if v == 0 {
		return
	}
	b.rows = append(b.rows, int32(i))
	b.cols = append(b.cols, int32(j))
	b.vals = append(b.vals, v)
}

// AddDiag accumulates v into the diagonal entry (i, i).
func (b *Builder) AddDiag(i int, v float64) { b.Add(i, i, v) }

// N returns the matrix dimension.
func (b *Builder) N() int { return b.n }

// Build sorts and merges the accumulated triplets into a CSR matrix.
func (b *Builder) Build() (*CSR, error) {
	return b.build(false)
}

// BuildWithDiagonal is Build with a structurally stored diagonal entry in
// every row, zero-valued where no triplet contributed. Assembly paths that
// later patch per-evaluation diagonal shifts into a shared sparsity
// pattern (see CSR.WithValues) build their pattern this way so every
// diagonal slot exists even on rows the base couplings missed.
func (b *Builder) BuildWithDiagonal() (*CSR, error) {
	return b.build(true)
}

func (b *Builder) build(forceDiag bool) (*CSR, error) {
	if b.invalid != nil {
		return nil, b.invalid
	}
	if forceDiag {
		// Zero-valued diagonal triplets merge into existing diagonals and
		// materialize the missing ones. Add is bypassed because it drops
		// zero values.
		for i := 0; i < b.n; i++ {
			b.rows = append(b.rows, int32(i))
			b.cols = append(b.cols, int32(i))
			b.vals = append(b.vals, 0)
		}
	}
	nnz := len(b.vals)
	order := make([]int, nnz)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, c int) bool {
		ia, ic := order[a], order[c]
		if b.rows[ia] != b.rows[ic] {
			return b.rows[ia] < b.rows[ic]
		}
		return b.cols[ia] < b.cols[ic]
	})

	m := &CSR{
		n:      b.n,
		rowPtr: make([]int32, b.n+1),
	}
	m.colIdx = make([]int32, 0, nnz)
	m.values = make([]float64, 0, nnz)

	for k := 0; k < nnz; {
		idx := order[k]
		r, c := b.rows[idx], b.cols[idx]
		sum := b.vals[idx]
		k++
		for k < nnz {
			idx2 := order[k]
			if b.rows[idx2] != r || b.cols[idx2] != c {
				break
			}
			sum += b.vals[idx2]
			k++
		}
		m.colIdx = append(m.colIdx, c)
		m.values = append(m.values, sum)
		m.rowPtr[r+1]++
	}
	for i := 0; i < b.n; i++ {
		m.rowPtr[i+1] += m.rowPtr[i]
	}
	return m, nil
}

// CSR is a compressed-sparse-row matrix. The sparsity pattern (rowPtr,
// colIdx) is immutable once built; the value array is immutable for
// matrices from Build, but matrices created with WithValues share the
// pattern while owning a caller-managed value array that may be rewritten
// between solves (the patched-assembly hot path).
type CSR struct {
	n      int
	rowPtr []int32
	colIdx []int32
	values []float64

	// sym caches the symmetry of the matrix: 0 unknown, +1 symmetric,
	// -1 asymmetric. Stamped by MarkSymmetric; read by SymmetricHint.
	sym int8
	// version is an opaque value-version used to key factorization caches
	// (see FactorCache); 0 means unversioned.
	version uint64
}

// N returns the matrix dimension.
func (m *CSR) N() int { return m.n }

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.values) }

// At returns entry (i, j); absent entries are zero. It is O(log nnz(row)).
func (m *CSR) At(i, j int) float64 {
	if i < 0 || i >= m.n || j < 0 || j >= m.n {
		return 0
	}
	lo, hi := int(m.rowPtr[i]), int(m.rowPtr[i+1])
	cols := m.colIdx[lo:hi]
	k := sort.Search(len(cols), func(k int) bool { return cols[k] >= int32(j) })
	if k < len(cols) && cols[k] == int32(j) {
		return m.values[lo+k]
	}
	return 0
}

// MulVec computes dst = m·x. dst and x must both have length N and must not
// alias each other.
//
//oftec:hotpath
func (m *CSR) MulVec(dst, x []float64) {
	for i := 0; i < m.n; i++ {
		lo, hi := int(m.rowPtr[i]), int(m.rowPtr[i+1])
		var s float64
		for k := lo; k < hi; k++ {
			s += m.values[k] * x[m.colIdx[k]]
		}
		dst[i] = s
	}
}

// RowPtr returns the CSR row-pointer entry i (0 ≤ i ≤ N). Together with
// ColAt and ValAt it exposes read-only iteration over stored entries for
// callers that need to rebuild or augment a matrix.
func (m *CSR) RowPtr(i int) int32 { return m.rowPtr[i] }

// ColAt returns the column index of stored entry k.
func (m *CSR) ColAt(k int) int { return int(m.colIdx[k]) }

// ValAt returns the value of stored entry k.
func (m *CSR) ValAt(k int) float64 { return m.values[k] }

// Diagonal returns a copy of the matrix diagonal.
func (m *CSR) Diagonal() []float64 {
	d := make([]float64, m.n)
	for i := 0; i < m.n; i++ {
		d[i] = m.At(i, i)
	}
	return d
}

// Residual computes dst = b - m·x, returning the infinity norm of dst.
//
//oftec:hotpath
func (m *CSR) Residual(dst, x, b []float64) float64 {
	m.MulVec(dst, x)
	var norm float64
	for i := range dst {
		dst[i] = b[i] - dst[i]
		if a := math.Abs(dst[i]); a > norm {
			norm = a
		}
	}
	return norm
}

// IsSymmetric reports whether the matrix is symmetric to within tol.
func (m *CSR) IsSymmetric(tol float64) bool {
	for i := 0; i < m.n; i++ {
		lo, hi := int(m.rowPtr[i]), int(m.rowPtr[i+1])
		for k := lo; k < hi; k++ {
			j := int(m.colIdx[k])
			if j <= i {
				continue
			}
			if math.Abs(m.values[k]-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// MarkSymmetric stamps the matrix's symmetry so SolveAuto (and other
// callers of SymmetricHint) can skip the O(nnz·log) per-solve symmetry
// scan. Assembly paths that know their structure — e.g. a conduction
// Laplacian patched only on the diagonal — stamp at build/refresh time.
func (m *CSR) MarkSymmetric(sym bool) {
	if sym {
		m.sym = 1
	} else {
		m.sym = -1
	}
}

// SymmetricHint reports whether the matrix is symmetric, trusting a
// MarkSymmetric stamp when present and falling back to the full
// IsSymmetric scan otherwise. The fallback does not write the stamp, so
// concurrent solves on an unstamped shared matrix stay race-free.
func (m *CSR) SymmetricHint(tol float64) bool {
	switch m.sym {
	case 1:
		return true
	case -1:
		return false
	}
	return m.IsSymmetric(tol)
}

// SetVersion stamps an opaque value-version on the matrix. Callers that
// rewrite a shared-pattern value array between solves assign a version
// that identifies the value content (e.g. derived from the operating
// point), letting FactorCache reuse factorizations across matrices with
// identical values. Version 0 means unversioned: never cached.
func (m *CSR) SetVersion(v uint64) { m.version = v }

// Version returns the stamped value-version (0 when unversioned).
func (m *CSR) Version() uint64 { return m.version }

// WithValues returns a matrix sharing the receiver's sparsity pattern
// with the given value array, which the caller owns and may rewrite
// between solves. len(values) must equal NNZ(). Symmetry and version
// stamps are not inherited; the caller re-stamps after each refresh.
func (m *CSR) WithValues(values []float64) (*CSR, error) {
	if len(values) != len(m.values) {
		return nil, fmt.Errorf("sparse: value array length %d does not match nnz %d", len(values), len(m.values))
	}
	return &CSR{n: m.n, rowPtr: m.rowPtr, colIdx: m.colIdx, values: values}, nil
}

// CopyValues copies the matrix's value array into dst, which must have
// length NNZ(). It is the O(nnz) "numeric reset" of a patched assembly:
// copy the base values, then patch the per-evaluation slots in place.
func (m *CSR) CopyValues(dst []float64) error {
	if len(dst) != len(m.values) {
		return fmt.Errorf("sparse: destination length %d does not match nnz %d", len(dst), len(m.values))
	}
	copy(dst, m.values)
	return nil
}

// DiagIndices returns, for each row, the index into the value array of
// the stored diagonal entry. It errors on rows without a structural
// diagonal (build the pattern with BuildWithDiagonal to guarantee one).
// Assembly paths record these indices once so per-evaluation diagonal
// patches are O(1) per slot.
func (m *CSR) DiagIndices() ([]int32, error) {
	idx := make([]int32, m.n)
	for i := 0; i < m.n; i++ {
		lo, hi := int(m.rowPtr[i]), int(m.rowPtr[i+1])
		found := false
		for k := lo; k < hi; k++ {
			if int(m.colIdx[k]) == i {
				idx[i] = int32(k)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("sparse: row %d has no stored diagonal entry", i)
		}
	}
	return idx, nil
}

// WithAddedDiagonal returns a copy of the matrix with d[i] added to each
// diagonal entry. Every row must already store a diagonal entry (true for
// the assembled thermal systems); the sparsity pattern is shared with the
// receiver, making this O(nnz) with no re-sorting — the fast path for
// backward-Euler steps that add C/Δt to a fixed conduction matrix.
func (m *CSR) WithAddedDiagonal(d []float64) (*CSR, error) {
	if len(d) != m.n {
		return nil, fmt.Errorf("sparse: diagonal length %d does not match dimension %d", len(d), m.n)
	}
	out := &CSR{
		n:      m.n,
		rowPtr: m.rowPtr,
		colIdx: m.colIdx,
		values: append([]float64(nil), m.values...),
	}
	for i := 0; i < m.n; i++ {
		lo, hi := int(m.rowPtr[i]), int(m.rowPtr[i+1])
		found := false
		for k := lo; k < hi; k++ {
			if int(m.colIdx[k]) == i {
				out.values[k] += d[i]
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("sparse: row %d has no stored diagonal entry", i)
		}
	}
	return out, nil
}

// Dense expands the matrix into a row-major dense form; intended for tests
// and for the dense LU fallback on small systems.
func (m *CSR) Dense() [][]float64 {
	d := make([][]float64, m.n)
	buf := make([]float64, m.n*m.n)
	for i := range d {
		d[i] = buf[i*m.n : (i+1)*m.n]
	}
	for i := 0; i < m.n; i++ {
		lo, hi := int(m.rowPtr[i]), int(m.rowPtr[i+1])
		for k := lo; k < hi; k++ {
			d[i][m.colIdx[k]] = m.values[k]
		}
	}
	return d
}

// Vector helpers.

// Dot returns the inner product of a and b.
//oftec:hotpath
func Dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
//oftec:hotpath
func Norm2(v []float64) float64 { return math.Sqrt(Dot(v, v)) }

// NormInf returns the infinity norm of v.
func NormInf(v []float64) float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// AXPY computes y += alpha*x in place.
//oftec:hotpath
func AXPY(alpha float64, x, y []float64) {
	for i := range y {
		y[i] += alpha * x[i]
	}
}

// Copy copies src into dst.
func Copy(dst, src []float64) { copy(dst, src) }

// Fill sets every element of v to x.
//oftec:hotpath
func Fill(v []float64, x float64) {
	for i := range v {
		v[i] = x
	}
}
