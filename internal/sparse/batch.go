package sparse

import (
	"fmt"
	"math"
	"sync"
)

// This file is the blocked multi-RHS solve engine. The bulk workloads in
// this repository — surface sweeps, Pareto probes, ROM snapshot
// collection — evaluate many operating points against one ω-slice of the
// conductance matrix: the systems differ only in a handful of diagonal
// entries (the per-point Peltier terms) and in the RHS. CGPrecondBatch
// solves up to w such systems in lockstep, sharing one IC(0)
// factorization and walking the matrix pattern once per iteration for
// all columns, with the column values interleaved (node i, column j at
// i*w+j) so the inner loops stream w-wide contiguous blocks.
//
// The lockstep iteration replicates CGPrecond's arithmetic per column
// bit-for-bit: every dot product accumulates in the same i-order, every
// matrix row in the same k-order, and each column carries its own
// alpha/beta/rz scalars. A column that converges is frozen (its x is
// never touched again); a column that breaks down or exhausts the budget
// is reported not-ok and the caller re-solves it through the scalar
// path, which reproduces the identical failure and proceeds down its own
// ladder. Batched results are therefore DeepEqual to per-point results,
// including SolveStats.

// DiagOverride replaces one value-array slot of the shared matrix with a
// per-column coefficient: row Row's entry at value index K reads
// Vals[j] (the full coefficient, not a delta) for column j. The batched
// thermal assembly uses these for the TEC cold/hot diagonal terms, the
// only matrix entries that vary within an ω-slice.
type DiagOverride struct {
	Row  int32
	K    int32
	Vals []float64
}

// BatchWorkspace holds the interleaved scratch of one lockstep solve so
// chunked batch loops (or a sync.Pool) avoid per-call allocation. The
// zero value is ready; vectors grow on demand and are retained.
type BatchWorkspace struct {
	x, r, z, p, ap, pre []float64 // n×w interleaved
	acc                 []float64 // w-wide row accumulator

	bnorm, rz, rzNew, pap        []float64 // per-column scalars
	alpha, nalpha, beta, resnorm []float64
	inactive                     []bool
}

// grow sizes the workspace for an n-node, w-column solve.
func (ws *BatchWorkspace) grow(n, w int) {
	growF := func(v []float64, size int) []float64 {
		if cap(v) < size {
			return make([]float64, size)
		}
		return v[:size]
	}
	nw := n * w
	ws.x = growF(ws.x, nw)
	ws.r = growF(ws.r, nw)
	ws.z = growF(ws.z, nw)
	ws.p = growF(ws.p, nw)
	ws.ap = growF(ws.ap, nw)
	ws.pre = growF(ws.pre, nw)
	ws.acc = growF(ws.acc, w)
	ws.bnorm = growF(ws.bnorm, w)
	ws.rz = growF(ws.rz, w)
	ws.rzNew = growF(ws.rzNew, w)
	ws.pap = growF(ws.pap, w)
	ws.alpha = growF(ws.alpha, w)
	ws.nalpha = growF(ws.nalpha, w)
	ws.beta = growF(ws.beta, w)
	ws.resnorm = growF(ws.resnorm, w)
	if cap(ws.inactive) < w {
		ws.inactive = make([]bool, w)
	}
	ws.inactive = ws.inactive[:w]
	for j := range ws.inactive {
		ws.inactive[j] = false
	}
}

// batchPool recycles BatchWorkspaces across chunked solves.
var batchPool = sync.Pool{New: func() any { return &BatchWorkspace{} }}

// GetBatchWorkspace takes a pooled workspace.
func GetBatchWorkspace() *BatchWorkspace { return batchPool.Get().(*BatchWorkspace) }

// PutBatchWorkspace returns a workspace to the pool.
func PutBatchWorkspace(ws *BatchWorkspace) { batchPool.Put(ws) }

// mulVecBatch computes dst = A_j·x per column j, where A_j is the shared
// matrix with the per-column DiagOverride values applied. Overrides must
// be sorted by ascending Row (validated by CGPrecondBatch); each row has
// at most one. Per column the accumulation runs in the same k-order as
// CSR.MulVec, so the result bits match a per-point MulVec against the
// patched matrix.
//
//oftec:hotpath
func mulVecBatch(m *CSR, ovs []DiagOverride, dst, x []float64, w int, acc []float64) {
	if w == 8 {
		mulVecBatch8(m, ovs, dst, x)
		return
	}
	oi := 0
	for i := 0; i < m.n; i++ {
		lo, hi := int(m.rowPtr[i]), int(m.rowPtr[i+1])
		for j := 0; j < w; j++ {
			acc[j] = 0
		}
		if oi < len(ovs) && int(ovs[oi].Row) == i {
			ovK := int(ovs[oi].K)
			ovVals := ovs[oi].Vals
			for k := lo; k < hi; k++ {
				c := int(m.colIdx[k]) * w
				xs := x[c : c+w]
				if k == ovK {
					for j := 0; j < w; j++ {
						acc[j] += ovVals[j] * xs[j]
					}
					continue
				}
				v := m.values[k]
				for j := 0; j < w; j++ {
					acc[j] += v * xs[j]
				}
			}
			oi++
		} else {
			for k := lo; k < hi; k++ {
				v := m.values[k]
				c := int(m.colIdx[k]) * w
				xs := x[c : c+w]
				for j := 0; j < w; j++ {
					acc[j] += v * xs[j]
				}
			}
		}
		copy(dst[i*w:i*w+w], acc[:w])
	}
}

// mulVecBatch8 is mulVecBatch specialized to the production chunk width:
// the eight column accumulators live in registers and each inner-loop
// slice has compile-time length 8, so the bounds checks vanish and each
// loaded matrix entry feeds eight fused multiply-adds off one cache line.
// Per column the statement shape is acc[j] += v·x[c+j] in the same
// k-order as the generic loop — the bits match.
//
//oftec:hotpath
func mulVecBatch8(m *CSR, ovs []DiagOverride, dst, x []float64) {
	oi := 0
	for i := 0; i < m.n; i++ {
		lo, hi := int(m.rowPtr[i]), int(m.rowPtr[i+1])
		var a0, a1, a2, a3, a4, a5, a6, a7 float64
		if oi < len(ovs) && int(ovs[oi].Row) == i {
			ovK := int(ovs[oi].K)
			ovVals := ovs[oi].Vals[:8]
			for k := lo; k < hi; k++ {
				c := int(m.colIdx[k]) * 8
				xs := x[c : c+8 : c+8]
				v := m.values[k]
				if k == ovK {
					a0 += ovVals[0] * xs[0]
					a1 += ovVals[1] * xs[1]
					a2 += ovVals[2] * xs[2]
					a3 += ovVals[3] * xs[3]
					a4 += ovVals[4] * xs[4]
					a5 += ovVals[5] * xs[5]
					a6 += ovVals[6] * xs[6]
					a7 += ovVals[7] * xs[7]
					continue
				}
				a0 += v * xs[0]
				a1 += v * xs[1]
				a2 += v * xs[2]
				a3 += v * xs[3]
				a4 += v * xs[4]
				a5 += v * xs[5]
				a6 += v * xs[6]
				a7 += v * xs[7]
			}
			oi++
		} else {
			for k := lo; k < hi; k++ {
				v := m.values[k]
				c := int(m.colIdx[k]) * 8
				xs := x[c : c+8 : c+8]
				a0 += v * xs[0]
				a1 += v * xs[1]
				a2 += v * xs[2]
				a3 += v * xs[3]
				a4 += v * xs[4]
				a5 += v * xs[5]
				a6 += v * xs[6]
				a7 += v * xs[7]
			}
		}
		ds := dst[i*8 : i*8+8 : i*8+8]
		ds[0], ds[1], ds[2], ds[3], ds[4], ds[5], ds[6], ds[7] = a0, a1, a2, a3, a4, a5, a6, a7
	}
}

// applyBlock runs the IC(0) forward/backward triangular sweeps over w
// interleaved columns at once: dst = (L·Lᵀ)⁻¹·r per column, touching the
// factor pattern once for all columns. Per column the operations and
// their order match ApplyScratch exactly.
//
//oftec:hotpath
func (p *ICPreconditioner) applyBlock(dst, r, y, acc []float64, w int) {
	if w == 8 {
		p.applyBlock8(dst, r, y)
		return
	}
	// Forward solve L·y = r (rows of L are sorted with the diagonal last).
	for i := 0; i < p.n; i++ {
		base := i * w
		copy(acc[:w], r[base:base+w])
		lo, hi := int(p.lRowPtr[i]), int(p.lRowPtr[i+1])
		for k := lo; k < hi-1; k++ {
			v := p.lValues[k]
			c := int(p.lColIdx[k]) * w
			ys := y[c : c+w]
			for j := 0; j < w; j++ {
				acc[j] -= v * ys[j]
			}
		}
		d := p.lValues[hi-1]
		for j := 0; j < w; j++ {
			y[base+j] = acc[j] / d
		}
	}
	// Backward solve Lᵀ·dst = y (row i of Lᵀ holds columns ≥ i, diagonal
	// first).
	for i := p.n - 1; i >= 0; i-- {
		base := i * w
		copy(acc[:w], y[base:base+w])
		lo, hi := int(p.ltRowPtr[i]), int(p.ltRowPtr[i+1])
		for k := lo + 1; k < hi; k++ {
			v := p.ltValues[k]
			c := int(p.ltColIdx[k]) * w
			ds := dst[c : c+w]
			for j := 0; j < w; j++ {
				acc[j] -= v * ds[j]
			}
		}
		d := p.ltValues[lo]
		for j := 0; j < w; j++ {
			dst[base+j] = acc[j] / d
		}
	}
}

// applyBlock8 is applyBlock at the production chunk width, with the
// eight running residuals held in registers through each row's update
// loop. Statement shape per column is unchanged (acc -= v·y, then /d in
// the same k-order), so the bits match the generic sweep.
//
//oftec:hotpath
func (p *ICPreconditioner) applyBlock8(dst, r, y []float64) {
	// Forward solve L·y = r (rows of L are sorted with the diagonal last).
	for i := 0; i < p.n; i++ {
		base := i * 8
		rs := r[base : base+8 : base+8]
		a0, a1, a2, a3, a4, a5, a6, a7 := rs[0], rs[1], rs[2], rs[3], rs[4], rs[5], rs[6], rs[7]
		lo, hi := int(p.lRowPtr[i]), int(p.lRowPtr[i+1])
		for k := lo; k < hi-1; k++ {
			v := p.lValues[k]
			c := int(p.lColIdx[k]) * 8
			ys := y[c : c+8 : c+8]
			a0 -= v * ys[0]
			a1 -= v * ys[1]
			a2 -= v * ys[2]
			a3 -= v * ys[3]
			a4 -= v * ys[4]
			a5 -= v * ys[5]
			a6 -= v * ys[6]
			a7 -= v * ys[7]
		}
		d := p.lValues[hi-1]
		ys := y[base : base+8 : base+8]
		ys[0], ys[1], ys[2], ys[3] = a0/d, a1/d, a2/d, a3/d
		ys[4], ys[5], ys[6], ys[7] = a4/d, a5/d, a6/d, a7/d
	}
	// Backward solve Lᵀ·dst = y (row i of Lᵀ holds columns ≥ i, diagonal
	// first).
	for i := p.n - 1; i >= 0; i-- {
		base := i * 8
		ys := y[base : base+8 : base+8]
		a0, a1, a2, a3, a4, a5, a6, a7 := ys[0], ys[1], ys[2], ys[3], ys[4], ys[5], ys[6], ys[7]
		lo, hi := int(p.ltRowPtr[i]), int(p.ltRowPtr[i+1])
		for k := lo + 1; k < hi; k++ {
			v := p.ltValues[k]
			c := int(p.ltColIdx[k]) * 8
			ds := dst[c : c+8 : c+8]
			a0 -= v * ds[0]
			a1 -= v * ds[1]
			a2 -= v * ds[2]
			a3 -= v * ds[3]
			a4 -= v * ds[4]
			a5 -= v * ds[5]
			a6 -= v * ds[6]
			a7 -= v * ds[7]
		}
		d := p.ltValues[lo]
		ds := dst[base : base+8 : base+8]
		ds[0], ds[1], ds[2], ds[3] = a0/d, a1/d, a2/d, a3/d
		ds[4], ds[5], ds[6], ds[7] = a4/d, a5/d, a6/d, a7/d
	}
}

// dotColsInto computes out[j] = Σ_i a[i*w+j]·b[i*w+j], accumulating each
// column in ascending i-order — the same order Dot uses.
//
//oftec:hotpath
func dotColsInto(out, a, b []float64, w int) {
	if w == 8 {
		dotColsInto8(out, a, b)
		return
	}
	for j := 0; j < w; j++ {
		out[j] = 0
	}
	for base := 0; base+w <= len(a); base += w {
		as, bs := a[base:base+w], b[base:base+w]
		for j := 0; j < w; j++ {
			out[j] += as[j] * bs[j]
		}
	}
}

// dotColsInto8 keeps the eight column accumulators in registers across
// the whole sweep; each column still sums in ascending i-order.
//
//oftec:hotpath
func dotColsInto8(out, a, b []float64) {
	var a0, a1, a2, a3, a4, a5, a6, a7 float64
	for base := 0; base+8 <= len(a); base += 8 {
		as, bs := a[base:base+8:base+8], b[base:base+8:base+8]
		a0 += as[0] * bs[0]
		a1 += as[1] * bs[1]
		a2 += as[2] * bs[2]
		a3 += as[3] * bs[3]
		a4 += as[4] * bs[4]
		a5 += as[5] * bs[5]
		a6 += as[6] * bs[6]
		a7 += as[7] * bs[7]
	}
	os := out[0:8:8]
	os[0], os[1], os[2], os[3], os[4], os[5], os[6], os[7] = a0, a1, a2, a3, a4, a5, a6, a7
}

// axpyCols computes y[i*w+j] += alpha[j]·x[i*w+j]. When anyInactive is
// set, inactive columns are skipped entirely so a frozen column's vector
// is never touched again — exactly as if its per-point solve had already
// returned.
//
//oftec:hotpath
func axpyCols(alpha []float64, x, y []float64, w int, inactive []bool, anyInactive bool) {
	if !anyInactive {
		if w == 8 {
			al := alpha[0:8:8]
			l0, l1, l2, l3, l4, l5, l6, l7 := al[0], al[1], al[2], al[3], al[4], al[5], al[6], al[7]
			for base := 0; base+8 <= len(y); base += 8 {
				xs, ys := x[base:base+8:base+8], y[base:base+8:base+8]
				ys[0] += l0 * xs[0]
				ys[1] += l1 * xs[1]
				ys[2] += l2 * xs[2]
				ys[3] += l3 * xs[3]
				ys[4] += l4 * xs[4]
				ys[5] += l5 * xs[5]
				ys[6] += l6 * xs[6]
				ys[7] += l7 * xs[7]
			}
			return
		}
		for base := 0; base+w <= len(y); base += w {
			xs, ys := x[base:base+w], y[base:base+w]
			for j := 0; j < w; j++ {
				ys[j] += alpha[j] * xs[j]
			}
		}
		return
	}
	if w == 8 {
		// Frozen columns must not be written at all (a breakdown column
		// may hold non-finite values that a masked multiply would smear),
		// so the skip stays a branch — but hoisted into eight registers
		// whose pattern is fixed for the whole sweep, which the branch
		// predictor eats for free.
		al, in := alpha[0:8:8], inactive[0:8:8]
		l0, l1, l2, l3, l4, l5, l6, l7 := al[0], al[1], al[2], al[3], al[4], al[5], al[6], al[7]
		i0, i1, i2, i3, i4, i5, i6, i7 := in[0], in[1], in[2], in[3], in[4], in[5], in[6], in[7]
		for base := 0; base+8 <= len(y); base += 8 {
			xs, ys := x[base:base+8:base+8], y[base:base+8:base+8]
			if !i0 {
				ys[0] += l0 * xs[0]
			}
			if !i1 {
				ys[1] += l1 * xs[1]
			}
			if !i2 {
				ys[2] += l2 * xs[2]
			}
			if !i3 {
				ys[3] += l3 * xs[3]
			}
			if !i4 {
				ys[4] += l4 * xs[4]
			}
			if !i5 {
				ys[5] += l5 * xs[5]
			}
			if !i6 {
				ys[6] += l6 * xs[6]
			}
			if !i7 {
				ys[7] += l7 * xs[7]
			}
		}
		return
	}
	for base := 0; base+w <= len(y); base += w {
		xs, ys := x[base:base+w], y[base:base+w]
		for j := 0; j < w; j++ {
			if inactive[j] {
				continue
			}
			ys[j] += alpha[j] * xs[j]
		}
	}
}

// updateDirCols computes p[i*w+j] = z[i*w+j] + beta[j]·p[i*w+j], the CG
// search-direction update, per column in i-order.
//
//oftec:hotpath
func updateDirCols(p, z, beta []float64, w int, inactive []bool, anyInactive bool) {
	if !anyInactive {
		if w == 8 {
			bs := beta[0:8:8]
			b0, b1, b2, b3, b4, b5, b6, b7 := bs[0], bs[1], bs[2], bs[3], bs[4], bs[5], bs[6], bs[7]
			for base := 0; base+8 <= len(p); base += 8 {
				ps, zs := p[base:base+8:base+8], z[base:base+8:base+8]
				ps[0] = zs[0] + b0*ps[0]
				ps[1] = zs[1] + b1*ps[1]
				ps[2] = zs[2] + b2*ps[2]
				ps[3] = zs[3] + b3*ps[3]
				ps[4] = zs[4] + b4*ps[4]
				ps[5] = zs[5] + b5*ps[5]
				ps[6] = zs[6] + b6*ps[6]
				ps[7] = zs[7] + b7*ps[7]
			}
			return
		}
		for base := 0; base+w <= len(p); base += w {
			ps, zs := p[base:base+w], z[base:base+w]
			for j := 0; j < w; j++ {
				ps[j] = zs[j] + beta[j]*ps[j]
			}
		}
		return
	}
	if w == 8 {
		bt, in := beta[0:8:8], inactive[0:8:8]
		b0, b1, b2, b3, b4, b5, b6, b7 := bt[0], bt[1], bt[2], bt[3], bt[4], bt[5], bt[6], bt[7]
		i0, i1, i2, i3, i4, i5, i6, i7 := in[0], in[1], in[2], in[3], in[4], in[5], in[6], in[7]
		for base := 0; base+8 <= len(p); base += 8 {
			ps, zs := p[base:base+8:base+8], z[base:base+8:base+8]
			if !i0 {
				ps[0] = zs[0] + b0*ps[0]
			}
			if !i1 {
				ps[1] = zs[1] + b1*ps[1]
			}
			if !i2 {
				ps[2] = zs[2] + b2*ps[2]
			}
			if !i3 {
				ps[3] = zs[3] + b3*ps[3]
			}
			if !i4 {
				ps[4] = zs[4] + b4*ps[4]
			}
			if !i5 {
				ps[5] = zs[5] + b5*ps[5]
			}
			if !i6 {
				ps[6] = zs[6] + b6*ps[6]
			}
			if !i7 {
				ps[7] = zs[7] + b7*ps[7]
			}
		}
		return
	}
	for base := 0; base+w <= len(p); base += w {
		ps, zs := p[base:base+w], z[base:base+w]
		for j := 0; j < w; j++ {
			if inactive[j] {
				continue
			}
			ps[j] = zs[j] + beta[j]*ps[j]
		}
	}
}

// CGPrecondBatch solves the w systems A_j·x_j = b_j in lockstep under a
// shared IC(0) preconditioner, where A_j is the base matrix a with the
// per-column DiagOverride coefficients applied. b and x0 are interleaved
// (node i, column j at i*w+j); x0 may be nil for a zero start. The
// returned solutions are freshly allocated per column (they outlive the
// workspace); stats[j] and ok[j] report each column's outcome. ok[j] =
// false marks a breakdown or exhausted iteration budget — the caller
// re-solves that column through its scalar ladder, which reproduces the
// identical failure and handles it as the per-point path would.
//
// Per column the arithmetic is bit-identical to CGPrecond against the
// patched matrix with the same preconditioner, start, and options:
// batched and per-point solves return DeepEqual solutions and Stats.
//
//oftec:allocok one output slice per solved column plus pooled-workspace growth; the per-iteration kernels are the annotated hot paths
func CGPrecondBatch(a *CSR, ovs []DiagOverride, b, x0 []float64, m *ICPreconditioner, w int, opts SolveOptions, ws *BatchWorkspace) ([][]float64, []Stats, []bool, error) {
	n := a.N()
	if w <= 0 {
		return nil, nil, nil, fmt.Errorf("sparse: batch width %d must be positive", w)
	}
	if len(b) != n*w {
		return nil, nil, nil, fmt.Errorf("sparse: batch rhs length %d does not match n·w = %d", len(b), n*w)
	}
	if x0 != nil && len(x0) != n*w {
		return nil, nil, nil, fmt.Errorf("sparse: batch start length %d does not match n·w = %d", len(x0), n*w)
	}
	if m == nil {
		return nil, nil, nil, fmt.Errorf("sparse: CGPrecondBatch requires a preconditioner")
	}
	for oi, ov := range ovs {
		if len(ov.Vals) != w {
			return nil, nil, nil, fmt.Errorf("sparse: override %d has %d values for width %d", oi, len(ov.Vals), w)
		}
		if oi > 0 && ov.Row <= ovs[oi-1].Row {
			return nil, nil, nil, fmt.Errorf("sparse: overrides must be sorted by strictly ascending row (override %d row %d after %d)", oi, ov.Row, ovs[oi-1].Row)
		}
		if ov.Row < 0 || int(ov.Row) >= n || ov.K < int32(a.rowPtr[ov.Row]) || ov.K >= int32(a.rowPtr[ov.Row+1]) {
			return nil, nil, nil, fmt.Errorf("sparse: override %d (row %d, k %d) outside the matrix pattern", oi, ov.Row, ov.K)
		}
	}
	if ws == nil {
		ws = &BatchWorkspace{}
	}
	ws.grow(n, w)

	x, r, z, p, ap := ws.x, ws.r, ws.z, ws.p, ws.ap
	if x0 != nil {
		copy(x, x0)
	} else {
		for i := range x {
			x[i] = 0
		}
	}

	stats := make([]Stats, w)
	ok := make([]bool, w)
	inactive := ws.inactive
	active := w

	// r = b − A_j·x per column, matching CSR.Residual's op order.
	mulVecBatch(a, ovs, r, x, w, ws.acc)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	dotColsInto(ws.bnorm, b, b, w)
	for j := 0; j < w; j++ {
		ws.bnorm[j] = math.Sqrt(ws.bnorm[j])
		if ws.bnorm[j] == 0 {
			// CGPrecond returns the start unchanged for a zero RHS.
			inactive[j] = true
			ok[j] = true
			active--
		}
	}
	anyInactive := active < w
	tol := opts.tol()
	maxIter := opts.maxIter(n)

	if active > 0 {
		m.applyBlock(z, r, ws.pre, ws.acc, w)
		copy(p, z)
		dotColsInto(ws.rz, r, z, w)
	}

	for it := 1; it <= maxIter && active > 0; it++ {
		mulVecBatch(a, ovs, ap, p, w, ws.acc)
		dotColsInto(ws.pap, p, ap, w)
		for j := 0; j < w; j++ {
			ws.alpha[j] = 0
			if inactive[j] {
				continue
			}
			pap := ws.pap[j]
			if pap <= 0 || math.IsNaN(pap) {
				// CGPrecond's breakdown: the scalar ladder re-solves this
				// column and fails at the same iteration.
				stats[j] = Stats{Iterations: it}
				inactive[j] = true
				anyInactive = true
				active--
				continue
			}
			ws.alpha[j] = ws.rz[j] / pap
		}
		if active == 0 {
			break
		}
		axpyCols(ws.alpha, p, x, w, inactive, anyInactive)
		for j := 0; j < w; j++ {
			ws.nalpha[j] = -ws.alpha[j]
		}
		axpyCols(ws.nalpha, ap, r, w, inactive, anyInactive)
		dotColsInto(ws.resnorm, r, r, w)
		for j := 0; j < w; j++ {
			if inactive[j] {
				continue
			}
			res := math.Sqrt(ws.resnorm[j]) / ws.bnorm[j]
			ws.resnorm[j] = res
			if res <= tol {
				stats[j] = Stats{Iterations: it, Residual: res}
				ok[j] = true
				inactive[j] = true
				anyInactive = true
				active--
			}
		}
		if active == 0 {
			break
		}
		m.applyBlock(z, r, ws.pre, ws.acc, w)
		dotColsInto(ws.rzNew, r, z, w)
		for j := 0; j < w; j++ {
			ws.beta[j] = 0
			if inactive[j] {
				continue
			}
			ws.beta[j] = ws.rzNew[j] / ws.rz[j]
			ws.rz[j] = ws.rzNew[j]
		}
		updateDirCols(p, z, ws.beta, w, inactive, anyInactive)
	}

	// Columns that exhausted the budget report the per-point
	// no-convergence stats; ok stays false and the caller re-solves.
	for j := 0; j < w; j++ {
		if !inactive[j] {
			stats[j] = Stats{Iterations: maxIter, Residual: ws.resnorm[j]}
		}
	}

	out := make([][]float64, w)
	for j := 0; j < w; j++ {
		col := make([]float64, n)
		for i := 0; i < n; i++ {
			col[i] = x[i*w+j]
		}
		out[j] = col
	}
	return out, stats, ok, nil
}

// SolveBatch solves A·x_j = B[j] for every column against one shared
// matrix and one IC(0) factorization, in lockstep. It is the multi-RHS
// convenience over CGPrecondBatch for callers whose systems share every
// coefficient (no per-column overrides); opts.X0 (when set) seeds every
// column. ok[j] = false marks a column the lockstep solve could not
// finish — re-solve it with CGPrecond (the failure reproduces).
func SolveBatch(a *CSR, B [][]float64, m *ICPreconditioner, opts SolveOptions, ws *BatchWorkspace) ([][]float64, []Stats, []bool, error) {
	w := len(B)
	if w == 0 {
		return nil, nil, nil, nil
	}
	n := a.N()
	for j, col := range B {
		if len(col) != n {
			return nil, nil, nil, fmt.Errorf("sparse: batch rhs column %d has length %d, want %d", j, len(col), n)
		}
	}
	b := make([]float64, n*w)
	for j, col := range B {
		for i, v := range col {
			b[i*w+j] = v
		}
	}
	var x0 []float64
	if opts.X0 != nil {
		if len(opts.X0) != n {
			return nil, nil, nil, fmt.Errorf("sparse: batch start has length %d, want %d", len(opts.X0), n)
		}
		x0 = make([]float64, n*w)
		for i, v := range opts.X0 {
			for j := 0; j < w; j++ {
				x0[i*w+j] = v
			}
		}
	}
	return CGPrecondBatch(a, nil, b, x0, m, w, opts, ws)
}
