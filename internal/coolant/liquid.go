package coolant

import (
	"fmt"
	"math"
)

// Liquid is a pump-driven cold-plate loop. The pump command u (rad/s) sets
// the volumetric flow Q = FlowPerU·u, giving the coolant capacity rate
// C(u) = ρ·Q·c_p in W/K — the ΔT·ρ·c_p bookkeeping of flow-based cooling
// models. The effective sink-to-ambient conductance follows an ε-NTU law
// with the cold plate's overall UA as the cap:
//
//	g_raw(u) = C·ε = C·(1 − exp(−UA/C))
//
// which is continuous, monotone nondecreasing (d/dC [C(1−e^(−UA/C))] =
// 1 − e^(−x)(1+x) ≥ 0 for x = UA/C), tends to C at low flow (the coolant
// itself is the bottleneck) and saturates at UA at high flow (the plate
// is). Below the idle-loop floor GMin — thermosiphon plus conduction
// through a stopped loop — the conductance clamps, mirroring the air
// law's g_HS still-air branch. Pump power follows the affinity law
// P = c·u³, the direct analogue of the fan's Equation (8).
type Liquid struct {
	// PumpC is the affinity-law constant c in W·s³: P = c·u³.
	PumpC float64
	// MaxSpeed is the maximum pump command in rad/s (UMax).
	MaxSpeed float64
	// FlowPerU converts pump speed to volumetric flow, m³/s per rad/s.
	FlowPerU float64
	// Rho is the coolant density in kg/m³ (water: 1000).
	Rho float64
	// Cp is the coolant specific heat in J/(kg·K) (water: 4186).
	Cp float64
	// UA is the cold plate's overall heat-transfer conductance in W/K,
	// the ε-NTU saturation cap.
	UA float64
	// GMin is the stopped-loop conductance floor in W/K.
	GMin float64
}

// PaperLoop returns a liquid loop calibrated to the paper's package scale:
// a small water loop whose stopped-loop floor matches the air law's g_HS
// (0.525 W/K) so the two actuators agree at u = 0, and whose cold plate
// (UA = 10 W/K) outperforms the fan's ω_max conductance (≈5.8 W/K) at a
// fraction of the drive power — at full speed the loop moves 0.24 L/min
// (C ≈ 16.7 W/K, g ≈ 7.5 W/K) for under 2 W of pump power.
func PaperLoop() Liquid {
	return Liquid{
		PumpC:    3.0e-8, // P(400) ≈ 1.9 W
		MaxSpeed: 400,
		FlowPerU: 1.0e-8, // 4e-6 m³/s (0.24 L/min) at full speed
		Rho:      1000,   // water
		Cp:       4186,   // water
		UA:       10,
		GMin:     0.525, // match the air law's still-air g_HS
	}
}

// Name implements Actuator.
func (l Liquid) Name() string { return "liquid" }

// Validate implements Actuator.
func (l Liquid) Validate() error {
	switch {
	case l.PumpC <= 0:
		return fmt.Errorf("coolant: pump power constant %g must be positive", l.PumpC)
	case l.MaxSpeed <= 0:
		return fmt.Errorf("coolant: maximum pump speed %g must be positive", l.MaxSpeed)
	case l.FlowPerU <= 0:
		return fmt.Errorf("coolant: flow per unit command %g must be positive", l.FlowPerU)
	case l.Rho <= 0:
		return fmt.Errorf("coolant: coolant density %g must be positive", l.Rho)
	case l.Cp <= 0:
		return fmt.Errorf("coolant: coolant specific heat %g must be positive", l.Cp)
	case l.UA <= 0:
		return fmt.Errorf("coolant: cold-plate UA %g must be positive", l.UA)
	case l.GMin <= 0:
		return fmt.Errorf("coolant: stopped-loop conductance %g must be positive", l.GMin)
	}
	return nil
}

// UMax implements Actuator.
func (l Liquid) UMax() float64 { return l.MaxSpeed }

// Power implements Actuator: the pump affinity law P = c·u³, zero on the
// clamped branch u ≤ 0.
func (l Liquid) Power(u float64) float64 {
	if u <= 0 {
		return 0
	}
	return l.PumpC * u * u * u
}

// DPowerDU implements Actuator: 3·c·u², zero for u ≤ 0.
func (l Liquid) DPowerDU(u float64) float64 {
	if u <= 0 {
		return 0
	}
	return 3 * l.PumpC * u * u
}

// capacityRate returns C(u) = ρ·FlowPerU·u·c_p in W/K.
func (l Liquid) capacityRate(u float64) float64 {
	return l.Rho * l.FlowPerU * l.Cp * u
}

// rawConductance returns the unclamped ε-NTU conductance C·(1 − e^(−UA/C)).
func (l Liquid) rawConductance(u float64) float64 {
	if u <= 0 {
		return 0
	}
	c := l.capacityRate(u)
	return c * (1 - math.Exp(-l.UA/c))
}

// Conductance implements Actuator: the ε-NTU law clamped below at GMin,
// continuous and monotone nondecreasing across the knee.
func (l Liquid) Conductance(u float64) float64 {
	g := l.rawConductance(u)
	if g < l.GMin {
		return l.GMin
	}
	return g
}

// DConductanceDU implements Actuator:
//
//	dg/du = ρ·FlowPerU·c_p · (1 − e^(−x)(1+x)),  x = UA/C(u)
//
// on the flowing branch, and exactly zero wherever the GMin clamp is
// active, matching the clamp in Conductance bit-for-bit so optimizers see
// a clean flat region.
func (l Liquid) DConductanceDU(u float64) float64 {
	if u <= 0 || l.rawConductance(u) <= l.GMin {
		return 0
	}
	x := l.UA / l.capacityRate(u)
	return l.Rho * l.FlowPerU * l.Cp * (1 - math.Exp(-x)*(1+x))
}

// CrossoverU returns the pump command at which the ε-NTU law meets the
// stopped-loop floor GMin — the saturation knee. If the loop never exceeds
// the floor within [0, MaxSpeed], MaxSpeed is returned. The raw law is
// strictly increasing in u, so a 200-step bisection pins the knee to
// machine precision.
func (l Liquid) CrossoverU() float64 {
	if l.rawConductance(l.MaxSpeed) <= l.GMin {
		return l.MaxSpeed
	}
	lo, hi := 0.0, l.MaxSpeed
	for i := 0; i < 200; i++ {
		mid := 0.5 * (lo + hi)
		if l.rawConductance(mid) < l.GMin {
			lo = mid
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi)
}
