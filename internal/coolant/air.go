package coolant

import "oftec/internal/fan"

// FanSpec and HeatSinkSpec alias the fan package's parameter structs so
// configuration types outside the coolant seam can carry the air-cooling
// calibration without referencing internal/fan directly (the fanleak lint
// rule). The aliases marshal to the exact JSON the pre-seam configuration
// produced, so saved configs, serve-pool hashes, and ROM identities are
// unchanged.
type (
	FanSpec      = fan.Fan
	HeatSinkSpec = fan.HeatSinkModel
)

// PaperFan returns the paper's fan constants (Section 6.1): c = 1.6e-7 J·s²,
// ω_max = 524 rad/s.
func PaperFan() FanSpec { return fan.PaperFan() }

// PaperHeatSink returns the paper's heat-sink+fan conductance law
// (Section 6.1): p = 0.97, r = -0.25, q = 1 s, g_HS = 0.525 W/K.
func PaperHeatSink() HeatSinkSpec { return fan.PaperModel() }

// Air is the paper's forced-convection actuator: Equation (8) fan power and
// the Equation (9) conductance law, delegated verbatim to internal/fan so
// the seam is bit-for-bit equivalent to the pre-seam fan path. The command
// u is the fan speed ω in rad/s.
type Air struct {
	Fan  FanSpec
	Sink HeatSinkSpec
}

// PaperAir returns the air actuator with the paper's Section 6.1 constants.
func PaperAir() Air { return Air{Fan: PaperFan(), Sink: PaperHeatSink()} }

// Name implements Actuator.
func (a Air) Name() string { return "air" }

// Validate implements Actuator.
func (a Air) Validate() error {
	if err := a.Sink.Validate(); err != nil {
		return err
	}
	return a.Fan.Validate()
}

// UMax implements Actuator: the fan's ω_max (constraint (16)).
func (a Air) UMax() float64 { return a.Fan.OmegaMax }

// Power implements Actuator: P = c·ω³ (Equation (8)).
func (a Air) Power(u float64) float64 { return a.Fan.Power(u) }

// DPowerDU implements Actuator: 3·c·ω², zero for ω ≤ 0.
func (a Air) DPowerDU(u float64) float64 { return a.Fan.DPowerDOmega(u) }

// Conductance implements Actuator: p·ln(q·ω)+r clipped below at g_HS
// (Equation (9)).
func (a Air) Conductance(u float64) float64 { return a.Sink.Conductance(u) }

// DConductanceDU implements Actuator: p/ω above the g_HS crossover,
// exactly zero on the saturated branch.
func (a Air) DConductanceDU(u float64) float64 { return a.Sink.DConductanceDOmega(u) }

// CrossoverU returns the command at which the logarithmic law meets the
// still-air floor g_HS — the knee the saturation property tests probe.
func (a Air) CrossoverU() float64 { return a.Sink.CrossoverSpeed() }
