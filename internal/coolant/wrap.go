package coolant

import "fmt"

// DatacenterPUE is the default facility power-usage-effectiveness factor:
// every watt of IT-side cooling power costs 1.30 W at the facility meter
// (the industry-average overhead used by datacenter cooling models).
const DatacenterPUE = 1.30

// DefaultPackageChips is the chip count of the "liquid-package" variant.
const DefaultPackageChips = 4

// Facility folds a PUE overhead into the actuator's reported power: the
// thermal physics (conductance) is untouched, but every watt the actuator
// draws is accounted at PUE watts of facility power, so the optimizer
// trades chip-side cooling against the true meter cost. PUE multiplies
// the power derivative too, keeping the adjoint gradient exact.
type Facility struct {
	Base Actuator
	PUE  float64
}

// Name implements Actuator.
func (f Facility) Name() string { return fmt.Sprintf("facility[%.4g](%s)", f.PUE, f.Base.Name()) }

// Validate implements Actuator.
func (f Facility) Validate() error {
	if f.Base == nil {
		return fmt.Errorf("coolant: facility wrapper needs a base actuator")
	}
	if f.PUE < 1 {
		return fmt.Errorf("coolant: PUE %g must be at least 1 (1 = no facility overhead)", f.PUE)
	}
	return f.Base.Validate()
}

// UMax implements Actuator.
func (f Facility) UMax() float64 { return f.Base.UMax() }

// Power implements Actuator: the base draw scaled to the facility meter.
func (f Facility) Power(u float64) float64 { return f.PUE * f.Base.Power(u) }

// DPowerDU implements Actuator.
func (f Facility) DPowerDU(u float64) float64 { return f.PUE * f.Base.DPowerDU(u) }

// Conductance implements Actuator: PUE is pure accounting, the thermal
// path is the base actuator's.
func (f Facility) Conductance(u float64) float64 { return f.Base.Conductance(u) }

// DConductanceDU implements Actuator.
func (f Facility) DConductanceDU(u float64) float64 { return f.Base.DConductanceDU(u) }

// ColdPlate shares one actuator across the N identical chips of a
// multi-chip package. The chips sit on a common isothermal cold-plate
// spreader, so by symmetry each chip model sees 1/N of the plate's
// conductance to ambient and is attributed 1/N of the shared pump (or
// fan) power — one thermal model then represents one chip of the package
// exactly, and package-level totals are N times the per-chip report.
// This is the symmetric-replica reduction of the shared-spreader coupling:
// with identical chips and power maps the full N-chip network block-
// diagonalizes, and the per-chip block is the single-chip network with
// the shared path split evenly.
type ColdPlate struct {
	Base  Actuator
	Chips int
}

// Name implements Actuator.
func (p ColdPlate) Name() string { return fmt.Sprintf("coldplate[%d](%s)", p.Chips, p.Base.Name()) }

// Validate implements Actuator.
func (p ColdPlate) Validate() error {
	if p.Base == nil {
		return fmt.Errorf("coolant: cold-plate wrapper needs a base actuator")
	}
	if p.Chips < 1 {
		return fmt.Errorf("coolant: cold-plate chip count %d must be at least 1", p.Chips)
	}
	return p.Base.Validate()
}

// UMax implements Actuator: one command drives the whole package.
func (p ColdPlate) UMax() float64 { return p.Base.UMax() }

// Power implements Actuator: the per-chip share of the shared drive power.
func (p ColdPlate) Power(u float64) float64 { return p.Base.Power(u) / float64(p.Chips) }

// DPowerDU implements Actuator.
func (p ColdPlate) DPowerDU(u float64) float64 { return p.Base.DPowerDU(u) / float64(p.Chips) }

// Conductance implements Actuator: the per-chip share of the plate's
// conductance to ambient.
func (p ColdPlate) Conductance(u float64) float64 { return p.Base.Conductance(u) / float64(p.Chips) }

// DConductanceDU implements Actuator.
func (p ColdPlate) DConductanceDU(u float64) float64 {
	return p.Base.DConductanceDU(u) / float64(p.Chips)
}
