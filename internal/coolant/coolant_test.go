package coolant

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"oftec/internal/fan"
)

// TestAirBitIdenticalToFanPackage pins the air actuator against the fan
// package it wraps: every contract method must reproduce the pre-seam
// fan path bit-for-bit across the command range (the refactor moved the
// call sites, not the arithmetic).
func TestAirBitIdenticalToFanPackage(t *testing.T) {
	f, hs := fan.PaperFan(), fan.PaperModel()
	a := PaperAir()
	if a.Fan != f || a.Sink != hs {
		t.Fatalf("PaperAir %+v does not carry the paper fan/heat-sink constants", a)
	}
	if a.UMax() != f.OmegaMax {
		t.Fatalf("UMax %g != OmegaMax %g", a.UMax(), f.OmegaMax)
	}
	for u := -10.0; u <= f.OmegaMax+10; u += 0.25 {
		if got, want := a.Power(u), f.Power(u); got != want {
			t.Fatalf("Power(%g) = %g, fan gives %g", u, got, want)
		}
		if got, want := a.DPowerDU(u), f.DPowerDOmega(u); got != want {
			t.Fatalf("DPowerDU(%g) = %g, fan gives %g", u, got, want)
		}
		if got, want := a.Conductance(u), hs.Conductance(u); got != want {
			t.Fatalf("Conductance(%g) = %g, heat sink gives %g", u, got, want)
		}
		if got, want := a.DConductanceDU(u), hs.DConductanceDOmega(u); got != want {
			t.Fatalf("DConductanceDU(%g) = %g, heat sink gives %g", u, got, want)
		}
	}
}

// kneeActuators are the two families with a saturation knee, probed by
// the continuity/monotonicity property tests below.
func kneeActuators() []struct {
	name  string
	act   Actuator
	knee  float64
	floor float64
} {
	air := PaperAir()
	loop := PaperLoop()
	return []struct {
		name  string
		act   Actuator
		knee  float64
		floor float64
	}{
		{"air", air, air.CrossoverU(), air.Sink.GHS},
		{"liquid", loop, loop.CrossoverU(), loop.GMin},
	}
}

// TestConductanceContinuousAndMonotoneAcrossKnee is the saturation-knee
// property test: g(u) must be continuous (no jump where the law meets
// the floor) and monotone nondecreasing on a dense grid straddling the
// crossover, for both actuator families.
func TestConductanceContinuousAndMonotoneAcrossKnee(t *testing.T) {
	for _, tc := range kneeActuators() {
		t.Run(tc.name, func(t *testing.T) {
			knee := tc.knee
			if knee <= 0 || knee >= tc.act.UMax() {
				t.Fatalf("crossover %g outside (0, %g)", knee, tc.act.UMax())
			}
			// Continuity at the knee: approaching from both sides the
			// conductance must meet the floor to first order in the step.
			for _, h := range []float64{1e-3, 1e-6, 1e-9} {
				lo, hi := tc.act.Conductance(knee-h), tc.act.Conductance(knee+h)
				if math.Abs(hi-lo) > 1e-3*h/1e-3+1e-9 {
					t.Errorf("jump at knee±%g: g=%g vs %g", h, lo, hi)
				}
				if math.Abs(lo-tc.floor) > 1e-6 {
					t.Errorf("g just below knee = %g, floor %g", lo, tc.floor)
				}
			}
			// Monotone nondecreasing across the whole range, dense near
			// the knee where a sign error would hide.
			prev := tc.act.Conductance(0)
			if prev != tc.floor {
				t.Errorf("g(0) = %g, want the floor %g", prev, tc.floor)
			}
			for i := 0; i <= 4000; i++ {
				u := tc.act.UMax() * float64(i) / 4000
				g := tc.act.Conductance(u)
				if g < prev {
					t.Fatalf("g decreases at u=%g: %g < %g", u, g, prev)
				}
				prev = g
			}
		})
	}
}

// TestDConductanceExactZeroOnSaturatedBranch: the derivative must be
// exactly zero (not merely small) everywhere the floor clamp is active,
// mirroring the pinned-variable convention the optimizers rely on, and
// strictly positive just above the knee.
func TestDConductanceExactZeroOnSaturatedBranch(t *testing.T) {
	for _, tc := range kneeActuators() {
		t.Run(tc.name, func(t *testing.T) {
			knee := tc.knee
			for _, u := range []float64{-1, 0, knee * 0.25, knee * 0.5, knee * 0.99, knee} {
				if d := tc.act.DConductanceDU(u); d != 0 {
					t.Errorf("DConductanceDU(%g) = %g on the saturated branch, want exactly 0", u, d)
				}
			}
			for _, u := range []float64{knee * 1.01, knee * 2, tc.act.UMax()} {
				if d := tc.act.DConductanceDU(u); d <= 0 {
					t.Errorf("DConductanceDU(%g) = %g above the knee, want > 0", u, d)
				}
			}
		})
	}
}

// TestLiquidPhysics pins the liquid law's limits: conductance approaches
// the capacity rate at low flow, saturates below UA at high flow, and the
// derivative matches a central difference on the flowing branch.
func TestLiquidPhysics(t *testing.T) {
	l := PaperLoop()
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	// ε-NTU cap: g < UA everywhere, approaching it as flow grows.
	big := Liquid{PumpC: l.PumpC, MaxSpeed: 1e6, FlowPerU: l.FlowPerU, Rho: l.Rho, Cp: l.Cp, UA: l.UA, GMin: l.GMin}
	if g := big.Conductance(1e6); g >= l.UA || g < 0.99*l.UA {
		t.Errorf("high-flow conductance %g should saturate just below UA=%g", g, l.UA)
	}
	// Low-flow limit: the coolant stream is the bottleneck, g ≈ C(u).
	uLow := 2 * l.CrossoverU()
	c := l.Rho * l.FlowPerU * l.Cp * uLow
	if g := l.Conductance(uLow); math.Abs(g-c)/c > 0.01 {
		t.Errorf("low-flow conductance %g should approach capacity rate %g", g, c)
	}
	// Affinity law and its derivative.
	if p := l.Power(l.MaxSpeed); math.Abs(p-l.PumpC*math.Pow(l.MaxSpeed, 3)) > 1e-12 {
		t.Errorf("Power(%g) = %g violates the affinity law", l.MaxSpeed, p)
	}
	for _, u := range []float64{l.CrossoverU() * 1.5, 100, 250, l.MaxSpeed} {
		h := 1e-3 * u
		fd := (l.Conductance(u+h) - l.Conductance(u-h)) / (2 * h)
		if d := l.DConductanceDU(u); math.Abs(d-fd) > 1e-6*math.Max(1, math.Abs(fd)) {
			t.Errorf("DConductanceDU(%g) = %g, central diff %g", u, d, fd)
		}
		fd = (l.Power(u+h) - l.Power(u-h)) / (2 * h)
		if d := l.DPowerDU(u); math.Abs(d-fd) > 1e-6*math.Max(1, math.Abs(fd)) {
			t.Errorf("DPowerDU(%g) = %g, central diff %g", u, d, fd)
		}
	}
}

// TestFacilityWrapper: PUE scales power and its derivative, never the
// thermal path.
func TestFacilityWrapper(t *testing.T) {
	base := PaperLoop()
	f := Facility{Base: base, PUE: DatacenterPUE}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, u := range []float64{0, 50, 200, base.MaxSpeed} {
		if got, want := f.Power(u), DatacenterPUE*base.Power(u); got != want {
			t.Errorf("Power(%g) = %g, want %g", u, got, want)
		}
		if got, want := f.DPowerDU(u), DatacenterPUE*base.DPowerDU(u); got != want {
			t.Errorf("DPowerDU(%g) = %g, want %g", u, got, want)
		}
		if f.Conductance(u) != base.Conductance(u) || f.DConductanceDU(u) != base.DConductanceDU(u) {
			t.Errorf("facility wrapper altered the thermal path at u=%g", u)
		}
	}
	if (Facility{Base: base, PUE: 0.9}).Validate() == nil {
		t.Error("PUE < 1 validated")
	}
}

// TestColdPlateShare: the N-chip share splits conductance and drive power
// evenly and leaves the command bound alone.
func TestColdPlateShare(t *testing.T) {
	base := PaperLoop()
	p := ColdPlate{Base: base, Chips: 4}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.UMax() != base.UMax() {
		t.Errorf("UMax changed: %g vs %g", p.UMax(), base.UMax())
	}
	for _, u := range []float64{0, 100, base.MaxSpeed} {
		if got, want := p.Conductance(u), base.Conductance(u)/4; got != want {
			t.Errorf("Conductance(%g) = %g, want %g", u, got, want)
		}
		if got, want := p.Power(u), base.Power(u)/4; got != want {
			t.Errorf("Power(%g) = %g, want %g", u, got, want)
		}
		if got, want := p.DConductanceDU(u), base.DConductanceDU(u)/4; got != want {
			t.Errorf("DConductanceDU(%g) = %g, want %g", u, got, want)
		}
		if got, want := p.DPowerDU(u), base.DPowerDU(u)/4; got != want {
			t.Errorf("DPowerDU(%g) = %g, want %g", u, got, want)
		}
	}
	if (ColdPlate{Base: base, Chips: 0}).Validate() == nil {
		t.Error("zero-chip cold plate validated")
	}
}

// TestSpecResolveAndNames: the named variants resolve, the nil/air spec
// is the exact air actuator, and unknown names list the registry.
func TestSpecResolveAndNames(t *testing.T) {
	airFan, airSink := PaperFan(), PaperHeatSink()

	spec, err := SpecByName("")
	if err != nil || spec != nil {
		t.Fatalf("empty name: spec %v err %v, want nil nil", spec, err)
	}
	if spec, err = SpecByName("air"); err != nil || spec != nil {
		t.Fatalf("air: spec %v err %v, want nil nil", spec, err)
	}
	act, err := (*Spec)(nil).Resolve(airFan, airSink)
	if err != nil {
		t.Fatal(err)
	}
	if act != (Air{Fan: airFan, Sink: airSink}) {
		t.Fatalf("nil spec resolved to %#v, want the air pair", act)
	}

	for _, name := range Names() {
		spec, err := SpecByName(name)
		if err != nil {
			t.Fatalf("registered name %q: %v", name, err)
		}
		act, err := spec.Resolve(airFan, airSink)
		if err != nil {
			t.Fatalf("resolving %q: %v", name, err)
		}
		if err := act.Validate(); err != nil {
			t.Fatalf("%q resolves to an invalid actuator: %v", name, err)
		}
	}

	if _, err := SpecByName("chilled-beam"); err == nil ||
		!strings.Contains(err.Error(), strings.Join(Names(), ", ")) {
		t.Fatalf("unknown name error %v must list the registered names", err)
	}

	// Variant wiring: liquid-dc carries the PUE, liquid-package the share.
	dc, _ := SpecByName("liquid-dc")
	if a, _ := dc.Resolve(airFan, airSink); a.Power(100) != DatacenterPUE*PaperLoop().Power(100) {
		t.Error("liquid-dc does not meter at DatacenterPUE")
	}
	pkg, _ := SpecByName("liquid-package")
	if pkg.PackageChips() != DefaultPackageChips {
		t.Errorf("liquid-package chips = %d, want %d", pkg.PackageChips(), DefaultPackageChips)
	}
}

// TestSpecJSONRoundTrip: the spec survives JSON (the configuration
// persists it), and invalid shapes are rejected.
func TestSpecJSONRoundTrip(t *testing.T) {
	loop := PaperLoop()
	in := &Spec{Kind: KindLiquid, Liquid: &loop, PUE: 1.25, Chips: 2}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Spec
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out.Kind != in.Kind || out.PUE != in.PUE || out.Chips != in.Chips || *out.Liquid != *in.Liquid {
		t.Fatalf("round trip lost data: %+v vs %+v", out, in)
	}

	bad := []Spec{
		{Kind: "peltier"},
		{Kind: KindAir, Liquid: &loop},
		{Kind: KindLiquid, PUE: 0.5},
		{Kind: KindLiquid, Chips: -1},
	}
	for _, s := range bad {
		if s.Validate() == nil {
			t.Errorf("spec %+v validated", s)
		}
	}
}
