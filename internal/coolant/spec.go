package coolant

import "fmt"

// Spec kinds. The empty string means KindAir.
const (
	KindAir    = "air"
	KindLiquid = "liquid"
)

// Spec is the serializable coolant selection carried by a thermal
// configuration. It is a tagged union rather than an interface so it
// survives the configuration's JSON round-trip (SaveConfig/LoadConfig
// with unknown fields disallowed) and participates in every identity
// derived from the configuration JSON — the serve-pool key and the ROM
// persistence identity both change the moment the actuator does.
//
// A nil *Spec (the zero configuration) means air cooling with the
// configuration's Fan/HeatSink laws and no override recorded, which keeps
// pre-seam configuration JSON byte-identical.
type Spec struct {
	// Kind selects the actuator family: "air" (or empty) uses the
	// configuration's fan + heat-sink laws; "liquid" a pump-driven
	// cold-plate loop.
	Kind string
	// Liquid optionally overrides the loop calibration; nil selects
	// PaperLoop(). Ignored for air.
	Liquid *Liquid `json:",omitempty"`
	// PUE, when > 1, wraps the actuator in a Facility accounting layer:
	// reported actuator power is scaled to the facility meter. Zero (or
	// exactly 1) means no overhead.
	PUE float64 `json:",omitempty"`
	// Chips, when > 1, shares the actuator across an N-chip package via
	// the ColdPlate symmetric split: the model then represents one chip
	// of the package. Zero and 1 both mean a single chip.
	Chips int `json:",omitempty"`
}

// Validate reports whether the spec can resolve. A nil spec is valid (air).
func (s *Spec) Validate() error {
	if s == nil {
		return nil
	}
	switch s.Kind {
	case "", KindAir, KindLiquid:
	default:
		return fmt.Errorf("coolant: unknown kind %q (have %s, %s)", s.Kind, KindAir, KindLiquid)
	}
	if s.Liquid != nil && s.Kind != KindLiquid {
		return fmt.Errorf("coolant: loop parameters given but kind is %q, not %q", s.Kind, KindLiquid)
	}
	if s.PUE != 0 && s.PUE < 1 {
		return fmt.Errorf("coolant: PUE %g must be at least 1 (or 0 for none)", s.PUE)
	}
	if s.Chips < 0 {
		return fmt.Errorf("coolant: chip count %d must be non-negative", s.Chips)
	}
	return nil
}

// Resolve builds the actuator the spec describes. The air parameters come
// from the enclosing configuration (its Fan/HeatSink fields) so an "air"
// spec is exactly the nil-spec path. Wrappers apply inside-out: the
// cold-plate share first (per-chip physics), then the facility meter
// (pure accounting on the shared drive's per-chip share).
func (s *Spec) Resolve(airFan FanSpec, airSink HeatSinkSpec) (Actuator, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	var act Actuator
	if s == nil || s.Kind == "" || s.Kind == KindAir {
		act = Air{Fan: airFan, Sink: airSink}
	} else {
		loop := PaperLoop()
		if s.Liquid != nil {
			loop = *s.Liquid
		}
		act = loop
	}
	if s != nil && s.Chips > 1 {
		act = ColdPlate{Base: act, Chips: s.Chips}
	}
	if s != nil && s.PUE > 1 {
		act = Facility{Base: act, PUE: s.PUE}
	}
	if err := act.Validate(); err != nil {
		return nil, err
	}
	return act, nil
}

// PackageChips returns the number of chips the resolved actuator serves:
// 1 for a single-chip assembly, the cold-plate share count for a package.
func (s *Spec) PackageChips() int {
	if s == nil || s.Chips < 1 {
		return 1
	}
	return s.Chips
}
