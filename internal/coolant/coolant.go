// Package coolant defines the actuator seam between the thermal model and
// whatever moves heat from the sink plane to ambient. The paper hard-wires
// one actuator — an axial fan with the cubic power law of Equation (8) and
// the logarithmic conductance law of Equation (9) — but the steady-state
// balance G(u)·T = P(T, u, I) of constraint (14) only ever consumes two
// scalar functions of the actuator command u: the sink-to-ambient
// conductance g(u) and the actuator's own electrical power P(u), plus
// their derivatives for the adjoint gradient. Everything else in the
// repository (assembly, ROM affine decomposition, optimizer bounds,
// serving) is actuator-agnostic once expressed against this contract.
//
// Three families implement it:
//
//   - Air: the paper's fan + heat-sink pair, bit-for-bit (the equivalence
//     suite pins Air against internal/fan across the command range).
//   - Liquid: a pump-driven cold-plate loop — pump speed u sets the
//     volumetric flow, the capacity rate ṁ·c_p caps the effective
//     conductance through an ε-NTU law, and pump power follows the
//     affinity law P = c·u³.
//   - Wrappers: Facility folds a datacenter PUE overhead into the
//     reported cooling power; ColdPlate shares one actuator across the
//     N chips of a multi-chip package.
//
// The serializable Spec selects and parameterizes an actuator inside a
// thermal configuration without the configuration naming concrete types.
package coolant

import (
	"fmt"
	"strings"
)

// Actuator is the cooling-actuator contract consumed by the thermal model.
// The command u generalizes the paper's fan speed ω: for the air instance
// it is ω in rad/s, for the liquid loop it is the pump speed. Implementations
// must be immutable value types — the thermal model resolves the actuator
// once at construction and shares it across concurrent evaluations.
type Actuator interface {
	// Name identifies the actuator family for diagnostics and for the
	// ROM persistence identity (an air-built basis must not load under a
	// liquid actuator).
	Name() string
	// Validate reports whether the actuator parameters are physical.
	Validate() error
	// UMax is the upper bound on the actuator command (constraint (16)
	// generalized): ω_max for the fan, the maximum pump speed for a loop.
	UMax() float64
	// Power is the actuator's electrical power draw at command u, the
	// P_fan term of the cooling power 𝒫 (Equation (10)) generalized.
	Power(u float64) float64
	// DPowerDU is dP/du, zero on any clamped branch.
	DPowerDU(u float64) float64
	// Conductance is the sink-to-ambient thermal conductance g(u) in W/K
	// (Equation (9) generalized): continuous, monotone nondecreasing,
	// and well-defined at u = 0.
	Conductance(u float64) float64
	// DConductanceDU is dg/du, exactly zero on any saturated branch so
	// optimizers see a clean flat region rather than derivative noise.
	DConductanceDU(u float64) float64
}

// Names returns the registered coolant variant names accepted by
// SpecByName (and therefore by the -coolant CLI flags and the oftecd
// chip-spec field), in the order they are documented.
func Names() []string {
	return []string{"air", "liquid", "liquid-dc", "liquid-package"}
}

// SpecByName resolves a registered coolant variant name to its Spec. The
// empty string and "air" return a nil Spec — the paper's fan path with no
// override recorded in the configuration, keeping existing configuration
// JSON (and every hash derived from it) byte-identical. Unknown names
// error with the full registered list so a typo'd -coolant flag fails
// fast instead of deep in model setup.
func SpecByName(name string) (*Spec, error) {
	switch name {
	case "", "air":
		return nil, nil
	case "liquid":
		return &Spec{Kind: KindLiquid}, nil
	case "liquid-dc":
		return &Spec{Kind: KindLiquid, PUE: DatacenterPUE}, nil
	case "liquid-package":
		return &Spec{Kind: KindLiquid, Chips: DefaultPackageChips}, nil
	}
	return nil, fmt.Errorf("coolant: unknown coolant %q (registered: %s)", name, strings.Join(Names(), ", "))
}
