package grid

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"oftec/internal/floorplan"
	"oftec/internal/material"
)

func mustGrid(t *testing.T, name string, outline floorplan.Rect, thick float64, rows, cols int, mat material.Material) *Grid {
	t.Helper()
	g, err := New(name, outline, thick, rows, cols, mat)
	if err != nil {
		t.Fatalf("New(%s): %v", name, err)
	}
	return g
}

func TestNewValidation(t *testing.T) {
	out := floorplan.Rect{W: 1, H: 1}
	if _, err := New("g", out, 0.1, 0, 4, material.Silicon); err == nil {
		t.Error("zero rows accepted")
	}
	if _, err := New("g", out, 0, 4, 4, material.Silicon); err == nil {
		t.Error("zero thickness accepted")
	}
	if _, err := New("g", floorplan.Rect{}, 0.1, 4, 4, material.Silicon); err == nil {
		t.Error("empty outline accepted")
	}
	bad := material.Material{Name: "bad", Conductivity: -1, VolumetricHeatCapacity: 1}
	if _, err := New("g", out, 0.1, 4, 4, bad); err == nil {
		t.Error("invalid material accepted")
	}
}

func TestIndexRoundTrip(t *testing.T) {
	g := mustGrid(t, "g", floorplan.Rect{W: 1, H: 1}, 0.01, 5, 7, material.Silicon)
	for idx := 0; idx < g.NumCells(); idx++ {
		r, c := g.RowCol(idx)
		if g.Index(r, c) != idx {
			t.Fatalf("Index(RowCol(%d)) = %d", idx, g.Index(r, c))
		}
	}
}

func TestGeometry(t *testing.T) {
	out := floorplan.Rect{X: 2, Y: 3, W: 4, H: 8}
	g := mustGrid(t, "g", out, 0.5, 4, 2, material.Copper)
	if g.Dx() != 2 || g.Dy() != 2 {
		t.Errorf("Dx,Dy = %g,%g want 2,2", g.Dx(), g.Dy())
	}
	if g.CellArea() != 4 {
		t.Errorf("CellArea = %g, want 4", g.CellArea())
	}
	if g.CellVolume() != 2 {
		t.Errorf("CellVolume = %g, want 2", g.CellVolume())
	}
	r := g.CellRect(1, 1)
	want := floorplan.Rect{X: 4, Y: 5, W: 2, H: 2}
	if r != want {
		t.Errorf("CellRect(1,1) = %+v, want %+v", r, want)
	}
	cx, cy := g.CellCenter(0, 0)
	if cx != 3 || cy != 4 {
		t.Errorf("CellCenter(0,0) = (%g,%g), want (3,4)", cx, cy)
	}
	if hc := g.CellHeatCapacity(); math.Abs(hc-2*material.Copper.VolumetricHeatCapacity) > 1e-6 {
		t.Errorf("CellHeatCapacity = %g", hc)
	}
}

func TestLateralCouplingValue(t *testing.T) {
	// Homogeneous 1×2 grid: g = k·t·dy/dx.
	g := mustGrid(t, "g", floorplan.Rect{W: 2, H: 1}, 0.01, 1, 2, material.Silicon)
	lcs := g.LateralCouplings()
	if len(lcs) != 1 {
		t.Fatalf("got %d couplings, want 1", len(lcs))
	}
	want := material.Silicon.Conductivity * 0.01 * 1.0 / 1.0
	if math.Abs(lcs[0].G-want) > 1e-12 {
		t.Errorf("lateral G = %g, want %g", lcs[0].G, want)
	}
}

func TestLateralCouplingCount(t *testing.T) {
	g := mustGrid(t, "g", floorplan.Rect{W: 1, H: 1}, 0.01, 4, 5, material.TIM)
	// Horizontal: 4 rows × 4 = 16; vertical: 3 × 5 = 15.
	if got, want := len(g.LateralCouplings()), 16+15; got != want {
		t.Errorf("coupling count = %d, want %d", got, want)
	}
}

func TestPerCellConductivityAffectsCouplings(t *testing.T) {
	g := mustGrid(t, "g", floorplan.Rect{W: 2, H: 1}, 0.01, 1, 2, material.Silicon)
	if err := g.SetCellConductivity(1, material.Silicon.Conductivity/9); err != nil {
		t.Fatal(err)
	}
	lcs := g.LateralCouplings()
	// Series of half resistances: r = 0.5/(100·0.01) + 0.5/(100/9·0.01)
	k := material.Silicon.Conductivity
	r := 0.5/(k*0.01) + 0.5/((k/9)*0.01)
	if math.Abs(lcs[0].G-1/r) > 1e-9 {
		t.Errorf("mixed-material G = %g, want %g", lcs[0].G, 1/r)
	}
	if err := g.SetCellConductivity(99, 1); err == nil {
		t.Error("out-of-range cell accepted")
	}
	if err := g.SetCellConductivity(0, -1); err == nil {
		t.Error("negative conductivity accepted")
	}
}

func TestVerticalHalfConductance(t *testing.T) {
	g := mustGrid(t, "g", floorplan.Rect{W: 1, H: 1}, 0.02, 1, 1, material.TIM)
	want := material.TIM.Conductivity * 1.0 / 0.01
	if got := g.VerticalHalfConductance(0); math.Abs(got-want) > 1e-9 {
		t.Errorf("VerticalHalfConductance = %g, want %g", got, want)
	}
}

func TestCoupleVerticalAlignedGrids(t *testing.T) {
	out := floorplan.Rect{W: 1, H: 1}
	a := mustGrid(t, "a", out, 0.02, 2, 2, material.Silicon)
	b := mustGrid(t, "b", out, 0.04, 2, 2, material.TIM)
	vcs := CoupleVertical(a, b)
	if len(vcs) != 4 {
		t.Fatalf("got %d couplings, want 4 (1:1 alignment)", len(vcs))
	}
	area := 0.25
	r := 0.01/(material.Silicon.Conductivity*area) + 0.02/(material.TIM.Conductivity*area)
	for _, vc := range vcs {
		if vc.Lower != vc.Upper {
			t.Errorf("aligned grids should couple 1:1, got %d->%d", vc.Lower, vc.Upper)
		}
		if math.Abs(vc.G-1/r) > 1e-9 {
			t.Errorf("vertical G = %g, want %g", vc.G, 1/r)
		}
	}
}

func TestCoupleVerticalMismatchedGrids(t *testing.T) {
	// Small chip (1×1 at origin) on a larger spreader (3×3 centered).
	chip := mustGrid(t, "chip", floorplan.Rect{X: 0, Y: 0, W: 1, H: 1}, 0.01, 2, 2, material.Silicon)
	spr := mustGrid(t, "spr", floorplan.Rect{X: -1, Y: -1, W: 3, H: 3}, 0.1, 3, 3, material.Copper)
	vcs := CoupleVertical(chip, spr)
	if len(vcs) == 0 {
		t.Fatal("no couplings between stacked layers")
	}
	// Conservation: total coupled overlap equals the chip area.
	var totalOv float64
	for _, vc := range vcs {
		if vc.G <= 0 {
			t.Errorf("non-positive conductance %g", vc.G)
		}
	}
	// Recompute overlap directly.
	for r := 0; r < chip.Rows; r++ {
		for c := 0; c < chip.Cols; c++ {
			rect := chip.CellRect(r, c)
			for _, si := range spr.CellsIntersecting(rect) {
				sr, sc := spr.RowCol(si)
				totalOv += spr.CellRect(sr, sc).Overlap(rect)
			}
		}
	}
	if math.Abs(totalOv-1.0) > 1e-9 {
		t.Errorf("total overlap = %g, want 1 (chip area)", totalOv)
	}
}

func TestCellsIntersecting(t *testing.T) {
	g := mustGrid(t, "g", floorplan.Rect{W: 4, H: 4}, 0.01, 4, 4, material.Silicon)
	cells := g.CellsIntersecting(floorplan.Rect{X: 0.5, Y: 0.5, W: 1, H: 1})
	if len(cells) != 4 {
		t.Errorf("got %d cells, want 4", len(cells))
	}
	// A rect exactly covering one cell.
	cells = g.CellsIntersecting(floorplan.Rect{X: 1, Y: 1, W: 1, H: 1})
	if len(cells) != 1 || cells[0] != g.Index(1, 1) {
		t.Errorf("exact cell rect: got %v", cells)
	}
	// Outside the grid.
	if cells = g.CellsIntersecting(floorplan.Rect{X: 10, Y: 10, W: 1, H: 1}); len(cells) != 0 {
		t.Errorf("outside rect: got %v", cells)
	}
}

func TestOverlapFraction(t *testing.T) {
	g := mustGrid(t, "g", floorplan.Rect{W: 2, H: 2}, 0.01, 2, 2, material.Silicon)
	if f := g.OverlapFraction(0, floorplan.Rect{X: 0, Y: 0, W: 0.5, H: 1}); math.Abs(f-0.5) > 1e-12 {
		t.Errorf("OverlapFraction = %g, want 0.5", f)
	}
}

// Property: for random sub-rectangles, the overlap fractions over all cells
// sum to rect area / cell area (area conservation of the decomposition).
func TestOverlapConservationProperty(t *testing.T) {
	g, err := New("g", floorplan.Rect{W: 8, H: 8}, 0.01, 8, 8, material.Silicon)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rect := floorplan.Rect{
			X: rng.Float64() * 6,
			Y: rng.Float64() * 6,
			W: rng.Float64()*2 + 0.01,
			H: rng.Float64()*2 + 0.01,
		}
		var sum float64
		for _, idx := range g.CellsIntersecting(rect) {
			sum += g.OverlapFraction(idx, rect) * g.CellArea()
		}
		return math.Abs(sum-rect.Area()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
