// Package grid discretizes the layers of the cooling package assembly into
// uniform rectangular cell grids and computes the thermal conductances of
// the equivalent electrical circuit: six-resistor lateral/vertical elements
// within a layer (Figure 3 of the paper) and overlap-weighted vertical
// couplings between layers whose footprints differ (chip vs. spreader vs.
// heat sink).
//
// Each layer owns a uniform Rows×Cols grid over its own rectangular
// footprint, placed in a shared global coordinate system so that vertical
// couplings between stacked layers can be computed from cell-rectangle
// overlaps.
package grid

import (
	"fmt"

	"oftec/internal/floorplan"
	"oftec/internal/material"
)

// Grid is a uniform discretization of one layer's footprint.
type Grid struct {
	// Name identifies the layer (e.g. "chip", "tim1", "spreader").
	Name string
	// Outline is the layer footprint in global coordinates (meters).
	Outline floorplan.Rect
	// Thickness is the layer thickness in meters.
	Thickness float64
	// Rows and Cols give the grid resolution.
	Rows, Cols int

	// baseK is the default conductivity; cellK overrides per cell when
	// non-nil (used by the TEC layer, where covered cells are superlattice
	// and uncovered cells are TIM filler).
	baseK float64
	cellK []float64

	// volCap is the volumetric heat capacity (J/(m³·K)) for transients.
	volCap float64
}

// New creates a grid for a layer with homogeneous material.
func New(name string, outline floorplan.Rect, thickness float64, rows, cols int, mat material.Material) (*Grid, error) {
	if err := mat.Validate(); err != nil {
		return nil, fmt.Errorf("grid %q: %w", name, err)
	}
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("grid %q: resolution %d×%d must be positive", name, rows, cols)
	}
	if thickness <= 0 {
		return nil, fmt.Errorf("grid %q: thickness %g must be positive", name, thickness)
	}
	if outline.W <= 0 || outline.H <= 0 {
		return nil, fmt.Errorf("grid %q: outline %+v must have positive area", name, outline)
	}
	return &Grid{
		Name:      name,
		Outline:   outline,
		Thickness: thickness,
		Rows:      rows,
		Cols:      cols,
		baseK:     mat.Conductivity,
		volCap:    mat.VolumetricHeatCapacity,
	}, nil
}

// NumCells returns Rows*Cols.
func (g *Grid) NumCells() int { return g.Rows * g.Cols }

// Dx returns the cell width (x extent) in meters.
func (g *Grid) Dx() float64 { return g.Outline.W / float64(g.Cols) }

// Dy returns the cell height (y extent) in meters.
func (g *Grid) Dy() float64 { return g.Outline.H / float64(g.Rows) }

// CellArea returns the footprint area of one cell in m².
func (g *Grid) CellArea() float64 { return g.Dx() * g.Dy() }

// CellVolume returns the volume of one cell in m³.
func (g *Grid) CellVolume() float64 { return g.CellArea() * g.Thickness }

// CellHeatCapacity returns the lumped heat capacity of one cell in J/K.
func (g *Grid) CellHeatCapacity() float64 { return g.CellVolume() * g.volCap }

// Index maps (row, col) to a linear cell index.
func (g *Grid) Index(row, col int) int { return row*g.Cols + col }

// RowCol maps a linear cell index back to (row, col).
func (g *Grid) RowCol(idx int) (row, col int) { return idx / g.Cols, idx % g.Cols }

// CellRect returns the global-coordinate rectangle of cell (row, col).
func (g *Grid) CellRect(row, col int) floorplan.Rect {
	dx, dy := g.Dx(), g.Dy()
	return floorplan.Rect{
		X: g.Outline.X + float64(col)*dx,
		Y: g.Outline.Y + float64(row)*dy,
		W: dx,
		H: dy,
	}
}

// CellCenter returns the global coordinates of the center of cell (row, col).
func (g *Grid) CellCenter(row, col int) (x, y float64) {
	r := g.CellRect(row, col)
	return r.Center()
}

// ConductivityAt returns the thermal conductivity of cell idx.
func (g *Grid) ConductivityAt(idx int) float64 {
	if g.cellK != nil {
		return g.cellK[idx]
	}
	return g.baseK
}

// SetCellConductivity overrides the conductivity of one cell; used to mix
// TEC material and TIM filler within the TEC layer.
func (g *Grid) SetCellConductivity(idx int, k float64) error {
	if idx < 0 || idx >= g.NumCells() {
		return fmt.Errorf("grid %q: cell index %d outside [0,%d)", g.Name, idx, g.NumCells())
	}
	if k <= 0 {
		return fmt.Errorf("grid %q: conductivity %g must be positive", g.Name, k)
	}
	if g.cellK == nil {
		g.cellK = make([]float64, g.NumCells())
		for i := range g.cellK {
			g.cellK[i] = g.baseK
		}
	}
	g.cellK[idx] = k
	return nil
}

// LateralCoupling is a conductance between two cells of the same layer.
type LateralCoupling struct {
	A, B int     // cell indices
	G    float64 // conductance, W/K
}

// LateralCouplings enumerates the conductances between laterally adjacent
// cells. For two adjacent cells the conductance is the series combination
// of each cell's half-width resistance, which for homogeneous material
// reduces to k·t·w/ℓ with w the shared face width and ℓ the center
// distance.
func (g *Grid) LateralCouplings() []LateralCoupling {
	dx, dy, t := g.Dx(), g.Dy(), g.Thickness
	out := make([]LateralCoupling, 0, 2*g.NumCells())
	for r := 0; r < g.Rows; r++ {
		for c := 0; c < g.Cols; c++ {
			i := g.Index(r, c)
			if c+1 < g.Cols {
				j := g.Index(r, c+1)
				out = append(out, LateralCoupling{A: i, B: j, G: seriesHalf(
					g.ConductivityAt(i), g.ConductivityAt(j), t*dy, dx)})
			}
			if r+1 < g.Rows {
				j := g.Index(r+1, c)
				out = append(out, LateralCoupling{A: i, B: j, G: seriesHalf(
					g.ConductivityAt(i), g.ConductivityAt(j), t*dx, dy)})
			}
		}
	}
	return out
}

// seriesHalf combines two half-cell conduction resistances in series:
// each half has resistance (ℓ/2)/(k·A_face).
func seriesHalf(k1, k2, faceArea, length float64) float64 {
	r1 := (length / 2) / (k1 * faceArea)
	r2 := (length / 2) / (k2 * faceArea)
	return 1 / (r1 + r2)
}

// VerticalHalfConductance returns the conductance from the center of cell
// idx to its top or bottom face: k·A/(t/2).
func (g *Grid) VerticalHalfConductance(idx int) float64 {
	return g.ConductivityAt(idx) * g.CellArea() / (g.Thickness / 2)
}

// VerticalCoupling is a conductance between a cell of a lower layer and a
// cell of the upper layer stacked on it.
type VerticalCoupling struct {
	Lower, Upper int     // cell indices in their respective grids
	G            float64 // conductance, W/K
}

// CoupleVertical computes the vertical conductances between two stacked
// layers. For each pair of overlapping cells the conductance is the series
// combination of the two half-thickness resistances, scaled by the overlap
// area. Cells that do not overlap contribute nothing, which naturally
// models a smaller layer sitting on a larger one (chip on spreader).
func CoupleVertical(lower, upper *Grid) []VerticalCoupling {
	var out []VerticalCoupling
	for r := 0; r < lower.Rows; r++ {
		for c := 0; c < lower.Cols; c++ {
			li := lower.Index(r, c)
			lr := lower.CellRect(r, c)
			// Determine the range of upper cells that can overlap lr.
			c0, c1 := overlapRange(lr.X, lr.X+lr.W, upper.Outline.X, upper.Dx(), upper.Cols)
			r0, r1 := overlapRange(lr.Y, lr.Y+lr.H, upper.Outline.Y, upper.Dy(), upper.Rows)
			kl := lower.ConductivityAt(li)
			for ur := r0; ur < r1; ur++ {
				for uc := c0; uc < c1; uc++ {
					ui := upper.Index(ur, uc)
					ov := lr.Overlap(upper.CellRect(ur, uc))
					if ov <= 0 {
						continue
					}
					ku := upper.ConductivityAt(ui)
					rl := (lower.Thickness / 2) / (kl * ov)
					ru := (upper.Thickness / 2) / (ku * ov)
					out = append(out, VerticalCoupling{Lower: li, Upper: ui, G: 1 / (rl + ru)})
				}
			}
		}
	}
	return out
}

// overlapRange returns the half-open index range [i0, i1) of grid cells
// (origin at x0, pitch d, count n) that intersect the interval [a, b).
func overlapRange(a, b, x0, d float64, n int) (int, int) {
	i0 := int((a - x0) / d)
	i1 := int((b-x0)/d) + 1
	if i0 < 0 {
		i0 = 0
	}
	if i1 > n {
		i1 = n
	}
	if i0 > i1 {
		return 0, 0
	}
	return i0, i1
}

// CellsIntersecting returns the linear indices of cells whose rectangles
// intersect the given global-coordinate rectangle with positive area.
func (g *Grid) CellsIntersecting(rect floorplan.Rect) []int {
	c0, c1 := overlapRange(rect.X, rect.X+rect.W, g.Outline.X, g.Dx(), g.Cols)
	r0, r1 := overlapRange(rect.Y, rect.Y+rect.H, g.Outline.Y, g.Dy(), g.Rows)
	var out []int
	for r := r0; r < r1; r++ {
		for c := c0; c < c1; c++ {
			if g.CellRect(r, c).Overlap(rect) > 0 {
				out = append(out, g.Index(r, c))
			}
		}
	}
	return out
}

// OverlapFraction returns, for cell idx, the fraction of the cell's area
// covered by rect.
func (g *Grid) OverlapFraction(idx int, rect floorplan.Rect) float64 {
	r, c := g.RowCol(idx)
	return g.CellRect(r, c).Overlap(rect) / g.CellArea()
}
