package workload

import (
	"fmt"
	"math"

	"oftec/internal/floorplan"
	"oftec/internal/power"
)

// Trace synthesizes a deterministic dynamic-power time series for the
// benchmark: each functional unit's power oscillates through program
// phases (a unit-specific blend of two periods), normalized so that the
// per-unit maximum over the trace equals the benchmark's maximum power
// map — exactly the reduction the paper feeds to OFTEC. This stands in
// for running PTscalar over the benchmark's instruction stream.
func (b Benchmark) Trace(f *floorplan.Floorplan, duration, dt float64) (*power.Trace, error) {
	if duration <= 0 || dt <= 0 || dt > duration {
		return nil, fmt.Errorf("workload %s: invalid trace timing (duration %g, dt %g)", b.Name, duration, dt)
	}
	peak, err := b.PowerMap(f)
	if err != nil {
		return nil, err
	}

	n := int(duration/dt) + 1
	// First pass: raw phase waveforms per unit.
	raw := make([]power.Map, n)
	maxRaw := make(map[string]float64)
	for i := 0; i < n; i++ {
		t := float64(i) * dt
		m := make(power.Map, len(peak))
		for u, unitIdx := range unitIndexes(f) {
			// Two incommensurate phase periods, offset per unit, keep the
			// waveform deterministic yet unsynchronized across units.
			p1 := 0.021*float64(unitIdx+3) + 0.013
			p2 := 0.007*float64(unitIdx+1) + 0.037
			w := 0.55 + 0.30*math.Cos(2*math.Pi*t/p1+float64(unitIdx)) +
				0.15*math.Cos(2*math.Pi*t/p2)
			if w < 0.05 {
				w = 0.05 // execution never fully idles a clocked unit
			}
			m[u] = w
			if w > maxRaw[u] {
				maxRaw[u] = w
			}
		}
		raw[i] = m
	}
	// Second pass: scale so each unit's maximum equals its peak power.
	tr := &power.Trace{}
	for i := 0; i < n; i++ {
		t := float64(i) * dt
		m := make(power.Map, len(peak))
		for u, w := range raw[i] {
			m[u] = peak[u] * w / maxRaw[u]
		}
		if err := tr.Append(t, m); err != nil {
			return nil, err
		}
	}
	return tr, nil
}

// unitIndexes maps unit names to stable indexes (insertion order).
func unitIndexes(f *floorplan.Floorplan) map[string]int {
	out := make(map[string]int, f.NumUnits())
	for i, u := range f.Units() {
		out[u.Name] = i
	}
	return out
}
