package workload

import (
	"math"
	"testing"

	"oftec/internal/floorplan"
)

func TestTraceMaxEqualsPowerMap(t *testing.T) {
	// The paper's flow: the per-element maximum over the PTscalar trace is
	// what OFTEC receives. Our synthetic traces must reduce to exactly the
	// benchmark's power map.
	f := floorplan.AlphaEV6()
	for _, name := range []string{"Basicmath", "Quicksort"} {
		b, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := b.Trace(f, 0.5, 0.005)
		if err != nil {
			t.Fatal(err)
		}
		want, err := b.PowerMap(f)
		if err != nil {
			t.Fatal(err)
		}
		got := tr.MaxMap()
		for unit, p := range want {
			if math.Abs(got[unit]-p) > 1e-9*(1+p) {
				t.Errorf("%s/%s: trace max %g, power map %g", name, unit, got[unit], p)
			}
		}
	}
}

func TestTraceIsDeterministic(t *testing.T) {
	f := floorplan.AlphaEV6()
	b, err := ByName("FFT")
	if err != nil {
		t.Fatal(err)
	}
	tr1, err := b.Trace(f, 0.2, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := b.Trace(f, 0.2, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if tr1.Len() != tr2.Len() {
		t.Fatalf("lengths differ: %d vs %d", tr1.Len(), tr2.Len())
	}
	for i := 0; i < tr1.Len(); i++ {
		tt := float64(i) * 0.01
		m1, _ := tr1.At(tt)
		m2, _ := tr2.At(tt)
		for u, p := range m1 {
			if m2[u] != p {
				t.Fatalf("nondeterministic trace at t=%g unit %s: %g vs %g", tt, u, p, m2[u])
			}
		}
	}
}

func TestTraceVariesOverTime(t *testing.T) {
	f := floorplan.AlphaEV6()
	b, err := ByName("Dijkstra")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := b.Trace(f, 0.3, 0.003)
	if err != nil {
		t.Fatal(err)
	}
	// Phases must actually modulate: the time-average must sit clearly
	// below the peak, and no unit may ever be fully idle.
	mean, maxm := tr.MeanMap(), tr.MaxMap()
	for u := range maxm {
		if mean[u] >= 0.95*maxm[u] {
			t.Errorf("unit %s barely modulates: mean %g vs max %g", u, mean[u], maxm[u])
		}
		if mean[u] <= 0 {
			t.Errorf("unit %s has non-positive mean power", u)
		}
	}
	// Adjacent units must not be phase-locked (distinct waveforms).
	m0, _ := tr.At(0.05)
	m1, _ := tr.At(0.10)
	changedDifferently := false
	var prevRatio float64
	for _, u := range f.Units() {
		if m0[u.Name] == 0 {
			continue
		}
		ratio := m1[u.Name] / m0[u.Name]
		if prevRatio != 0 && math.Abs(ratio-prevRatio) > 0.05 {
			changedDifferently = true
		}
		prevRatio = ratio
	}
	if !changedDifferently {
		t.Error("all units move in lockstep; phases are not unit-specific")
	}
}

func TestTraceTimingValidation(t *testing.T) {
	f := floorplan.AlphaEV6()
	b, err := ByName("CRC32")
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct{ dur, dt float64 }{{0, 0.01}, {1, 0}, {0.01, 1}} {
		if _, err := b.Trace(f, c.dur, c.dt); err == nil {
			t.Errorf("Trace(%g, %g) accepted", c.dur, c.dt)
		}
	}
}
