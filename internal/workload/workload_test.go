package workload

import (
	"math"
	"strings"
	"testing"

	"oftec/internal/floorplan"
)

func TestAllReturnsEightInTableOrder(t *testing.T) {
	all := All()
	if len(all) != 8 {
		t.Fatalf("got %d benchmarks, want 8", len(all))
	}
	for i, b := range all {
		if b.Name != Names[i] {
			t.Errorf("position %d: %s, want %s", i, b.Name, Names[i])
		}
		if b.TotalPower <= 0 {
			t.Errorf("%s: non-positive power budget", b.Name)
		}
		if b.Description == "" {
			t.Errorf("%s: missing description", b.Name)
		}
	}
}

func TestByName(t *testing.T) {
	b, err := ByName("Quicksort")
	if err != nil {
		t.Fatal(err)
	}
	if b.Name != "Quicksort" {
		t.Errorf("ByName returned %s", b.Name)
	}
	if _, err := ByName("NotABenchmark"); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := ByName("quicksort"); err == nil {
		t.Error("lookup should be case-sensitive like Table 2 spelling")
	}
}

func TestMildHotPartition(t *testing.T) {
	if len(MildBenchmarks)+len(HotBenchmarks) != 8 {
		t.Fatalf("partition covers %d benchmarks, want 8",
			len(MildBenchmarks)+len(HotBenchmarks))
	}
	seen := map[string]bool{}
	for _, n := range append(append([]string{}, MildBenchmarks...), HotBenchmarks...) {
		if seen[n] {
			t.Errorf("benchmark %s in both partitions", n)
		}
		seen[n] = true
		if _, err := ByName(n); err != nil {
			t.Errorf("partition references unknown benchmark %s", n)
		}
	}
	// Every hot benchmark must have a larger power budget than every mild
	// one — the physical basis of the feasibility split in Figure 6(c).
	minHot, maxMild := math.Inf(1), 0.0
	for _, n := range HotBenchmarks {
		b, _ := ByName(n)
		minHot = math.Min(minHot, b.TotalPower)
	}
	for _, n := range MildBenchmarks {
		b, _ := ByName(n)
		maxMild = math.Max(maxMild, b.TotalPower)
	}
	if minHot <= maxMild {
		t.Errorf("hot minimum %g W does not exceed mild maximum %g W", minHot, maxMild)
	}
}

func TestPowerMapConservesBudget(t *testing.T) {
	f := floorplan.AlphaEV6()
	for _, b := range All() {
		m, err := b.PowerMap(f)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if err := m.Validate(f); err != nil {
			t.Errorf("%s: invalid map: %v", b.Name, err)
		}
		if math.Abs(m.Total()-b.TotalPower) > 1e-9*b.TotalPower {
			t.Errorf("%s: map total %g, want %g", b.Name, m.Total(), b.TotalPower)
		}
	}
}

func TestHotSpotStructure(t *testing.T) {
	f := floorplan.AlphaEV6()
	// Integer benchmarks must be hottest in the integer cluster; FFT in
	// the FP multiplier; caches must never be the peak.
	expectPeak := map[string][]string{
		"Quicksort": {floorplan.UnitIntExec, floorplan.UnitIntReg},
		"BitCount":  {floorplan.UnitIntExec, floorplan.UnitIntReg},
		"FFT":       {floorplan.UnitFPMul},
	}
	for name, allowed := range expectPeak {
		b, _ := ByName(name)
		m, err := b.PowerMap(f)
		if err != nil {
			t.Fatal(err)
		}
		peak, _ := m.MaxDensity(f)
		ok := false
		for _, a := range allowed {
			if peak == a {
				ok = true
			}
		}
		if !ok {
			t.Errorf("%s: peak density in %s, want one of %v", name, peak, allowed)
		}
	}
	// The caches show no hot spots (the paper's justification for leaving
	// them uncovered by TECs).
	for _, b := range All() {
		m, _ := b.PowerMap(f)
		peak, _ := m.MaxDensity(f)
		if strings.Contains(peak, "cache") || peak == floorplan.UnitIcache || peak == floorplan.UnitDcache {
			t.Errorf("%s: peak density in cache unit %s", b.Name, peak)
		}
	}
}

func TestOrderingMatchesTable2Tendency(t *testing.T) {
	// The paper's Table 2 shows CRC32 needing the least cooling (I* =
	// 0.37 A) and Quicksort the most (I* = 2.83 A). The quantity that
	// drives the required TEC current is the peak power density.
	f := floorplan.AlphaEV6()
	density := func(name string) float64 {
		b, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		m, err := b.PowerMap(f)
		if err != nil {
			t.Fatal(err)
		}
		_, d := m.MaxDensity(f)
		return d
	}
	crc, qs := density("CRC32"), density("Quicksort")
	for _, b := range All() {
		d := density(b.Name)
		if b.Name != "CRC32" && d < crc {
			t.Errorf("%s peak density %g below CRC32's %g", b.Name, d, crc)
		}
		if b.Name != "Quicksort" && d > qs {
			t.Errorf("%s peak density %g above Quicksort's %g", b.Name, d, qs)
		}
	}
}

func TestPowerMapMissingUnit(t *testing.T) {
	f, _ := floorplan.New(1e-3, 1e-3)
	if err := f.AddUnit("odd", floorplan.Rect{W: 1e-3, H: 1e-3}); err != nil {
		t.Fatal(err)
	}
	b, _ := ByName("FFT")
	if _, err := b.PowerMap(f); err == nil {
		t.Error("PowerMap accepted a floorplan with unknown units")
	}
}
