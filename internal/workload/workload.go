// Package workload is the repository's substitute for the PTscalar
// performance/power simulator: it provides deterministic synthetic
// maximum-dynamic-power vectors for the eight MiBench benchmarks the paper
// evaluates, over the Alpha 21264 floorplan.
//
// The paper feeds OFTEC the maximum power consumption of each chip-layer
// element over the benchmark's trace, so a benchmark here reduces to one
// per-unit power map. Profiles are built from per-unit activity factors
// (which functional units the benchmark stresses) scaled by a total power
// budget calibrated so the experimental shape of the paper is reproduced:
// the three mild benchmarks (Basicmath, CRC32, Stringsearch) are coolable
// by a plain fan, the five hot ones (BitCount, Dijkstra, FFT, Quicksort,
// Susan) are not, and the optimum TEC currents order as in Table 2.
package workload

import (
	"fmt"
	"sort"

	"oftec/internal/floorplan"
	"oftec/internal/power"
)

// Benchmark is one synthetic MiBench workload.
type Benchmark struct {
	// Name is the benchmark name as spelled in the paper's Table 2.
	Name string
	// Description summarizes what the real benchmark does and which units
	// the synthetic profile stresses.
	Description string
	// TotalPower is the maximum total dynamic power budget in watts.
	TotalPower float64
	// Activity holds relative per-unit activity factors; they are
	// normalized against unit areas to produce the power map.
	Activity map[string]float64
}

// Names of the eight benchmarks, in Table 2 order.
var Names = []string{
	"Basicmath", "BitCount", "CRC32", "Dijkstra",
	"FFT", "Quicksort", "Stringsearch", "Susan",
}

// activity profiles express how strongly each benchmark exercises each
// functional unit, relative to that unit's area. A factor of 1 means the
// unit runs at the benchmark's average power density; larger factors make
// the unit a hot spot.
func profiles() map[string]Benchmark {
	// Shorthand unit names.
	const (
		l2l = floorplan.UnitL2Left
		l2  = floorplan.UnitL2
		l2r = floorplan.UnitL2Right
		ic  = floorplan.UnitIcache
		itb = floorplan.UnitITB
		dtb = floorplan.UnitDTB
		lsq = floorplan.UnitLdStQ
		dc  = floorplan.UnitDcache
		fpa = floorplan.UnitFPAdd
		fpm = floorplan.UnitFPMul
		fpr = floorplan.UnitFPReg
		fpp = floorplan.UnitFPMap
		fpq = floorplan.UnitFPQ
		imp = floorplan.UnitIntMap
		iq  = floorplan.UnitIntQ
		ir  = floorplan.UnitIntReg
		ie  = floorplan.UnitIntExec
		bp  = floorplan.UnitBpred
	)
	// base is a quiet floor so no unit is ever completely cold.
	base := func() map[string]float64 {
		return map[string]float64{
			l2l: 0.25, l2: 0.25, l2r: 0.25,
			ic: 0.6, itb: 0.5, dtb: 0.5, lsq: 0.8, dc: 0.6,
			fpa: 0.3, fpm: 0.3, fpr: 0.3, fpp: 0.3, fpq: 0.3,
			imp: 0.8, iq: 0.8, ir: 1.0, ie: 1.0, bp: 0.7,
		}
	}
	with := func(over map[string]float64) map[string]float64 {
		m := base()
		for k, v := range over {
			m[k] = v
		}
		return m
	}

	list := []Benchmark{
		{
			Name:        "Basicmath",
			Description: "scalar math kernels: moderate integer/FP mix, modest hot spots",
			TotalPower:  24,
			Activity:    with(map[string]float64{fpa: 2.2, fpm: 2.0, fpr: 1.4, ir: 2.2, ie: 2.2}),
		},
		{
			Name:        "BitCount",
			Description: "bit-twiddling loops: intense integer execution and register traffic",
			TotalPower:  40,
			Activity:    with(map[string]float64{ir: 7.5, ie: 8.0, iq: 3.5, imp: 3.0, bp: 2.5, ic: 0.9}),
		},
		{
			Name:        "CRC32",
			Description: "streaming table lookups: memory-bound, low core activity",
			TotalPower:  18,
			Activity:    with(map[string]float64{dc: 1.1, lsq: 1.3, ir: 1.2, ie: 1.2, l2: 0.5}),
		},
		{
			Name:        "Dijkstra",
			Description: "graph shortest path: pointer chasing, queues and load/store pressure",
			TotalPower:  42,
			Activity:    with(map[string]float64{ir: 6.5, ie: 6.5, lsq: 5.5, iq: 4.5, dc: 1.8, dtb: 3.0}),
		},
		{
			Name:        "FFT",
			Description: "floating-point butterflies: FP multiplier and adder dominate",
			TotalPower:  38,
			Activity:    with(map[string]float64{fpm: 8.5, fpa: 7.0, fpr: 5.0, fpq: 3.5, ir: 2.0, ie: 2.0}),
		},
		{
			Name:        "Quicksort",
			Description: "recursive sorting: the hottest integer core of the suite",
			TotalPower:  42,
			Activity:    with(map[string]float64{ir: 8.0, ie: 8.5, iq: 4.0, imp: 3.5, lsq: 3.5, bp: 3.0}),
		},
		{
			Name:        "Stringsearch",
			Description: "string matching: branchy integer code with light load",
			TotalPower:  21,
			Activity:    with(map[string]float64{ir: 2.0, ie: 2.0, bp: 1.8, ic: 0.9, dc: 0.8}),
		},
		{
			Name:        "Susan",
			Description: "image smoothing/edge detection: mixed int/FP with strong hot spots",
			TotalPower:  43,
			Activity:    with(map[string]float64{ir: 7.0, ie: 7.5, fpm: 5.0, fpa: 3.8, lsq: 3.2, dc: 1.5}),
		},
	}
	m := make(map[string]Benchmark, len(list))
	for _, b := range list {
		m[b.Name] = b
	}
	return m
}

// All returns the eight benchmarks in Table 2 order.
func All() []Benchmark {
	p := profiles()
	out := make([]Benchmark, 0, len(Names))
	for _, n := range Names {
		out = append(out, p[n])
	}
	return out
}

// ByName returns the named benchmark.
func ByName(name string) (Benchmark, error) {
	b, ok := profiles()[name]
	if !ok {
		known := make([]string, 0, len(Names))
		known = append(known, Names...)
		sort.Strings(known)
		return Benchmark{}, fmt.Errorf("workload: unknown benchmark %q (known: %v)", name, known)
	}
	return b, nil
}

// MildBenchmarks are the three benchmarks the paper's baselines can cool
// (Figure 6(c)): the comparisons of Section 6.2 are made on these.
var MildBenchmarks = []string{"Basicmath", "CRC32", "Stringsearch"}

// HotBenchmarks are the five benchmarks on which the baselines exceed
// T_max in the paper.
var HotBenchmarks = []string{"BitCount", "Dijkstra", "FFT", "Quicksort", "Susan"}

// PowerMap converts the benchmark's activity profile into a per-unit power
// map over the given floorplan. Unit power is proportional to
// activity × area, normalized so the map totals TotalPower.
func (b Benchmark) PowerMap(f *floorplan.Floorplan) (power.Map, error) {
	var weight float64
	for _, u := range f.Units() {
		a, ok := b.Activity[u.Name]
		if !ok {
			return nil, fmt.Errorf("workload %s: no activity factor for unit %q", b.Name, u.Name)
		}
		if a < 0 {
			return nil, fmt.Errorf("workload %s: negative activity %g for unit %q", b.Name, a, u.Name)
		}
		weight += a * u.Rect.Area()
	}
	if weight <= 0 {
		return nil, fmt.Errorf("workload %s: zero total activity", b.Name)
	}
	m := make(power.Map, f.NumUnits())
	for _, u := range f.Units() {
		m[u.Name] = b.TotalPower * b.Activity[u.Name] * u.Rect.Area() / weight
	}
	return m, nil
}
