package profiling

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartDisabled(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to record.
	x := 0.0
	for i := 0; i < 1_000_000; i++ {
		x += float64(i % 7)
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}

func TestStartRejectsBadPath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu"), ""); err == nil {
		t.Error("unwritable CPU profile path accepted")
	}
	stop, err := Start("", filepath.Join(t.TempDir(), "no", "such", "dir", "mem"))
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err == nil {
		t.Error("unwritable heap profile path accepted")
	}
}
