// Package profiling wires the runtime/pprof profile writers into the
// CLIs. The sweep and controller commands expose -cpuprofile and
// -memprofile flags through it, so the hot path (assembly, factorization
// caching, preconditioned CG) can be inspected with `go tool pprof`
// against a realistic workload instead of a micro-benchmark.
package profiling

import (
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins profiling per the two file paths; an empty path disables
// that profile. The returned stop function ends the CPU profile and
// writes the heap profile, and must be called exactly once — call it on
// the main exit path, before os.Exit.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			if cerr := cpuFile.Close(); cerr != nil {
				err = cerr
			}
			return nil, err
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			// Collect garbage first so the heap profile reflects live
			// allocations, not transient garbage from the run.
			runtime.GC()
			werr := pprof.WriteHeapProfile(f)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				return werr
			}
		}
		return nil
	}, nil
}
