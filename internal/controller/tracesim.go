package controller

import (
	"context"
	"fmt"
	"math"

	"oftec/internal/backend"
	"oftec/internal/power"
	"oftec/internal/units"
)

// DetailPoint extends TracePoint with instantaneous power accounting for
// trace-driven dynamic-thermal-management studies.
type DetailPoint struct {
	TracePoint
	// DynamicW is the workload's instantaneous dynamic power.
	DynamicW float64
	// LeakageW, TECW, FanW are the instantaneous cooling power terms.
	LeakageW, TECW, FanW float64
}

// CoolingPowerW returns the instantaneous 𝒫.
func (p DetailPoint) CoolingPowerW() float64 { return p.LeakageW + p.TECW + p.FanW }

// TraceSimulate runs a controller against a time-varying workload trace:
// the plant's dynamic power follows the trace under a zero-order hold
// while the controller is sampled every dtCtrl. This is the closed-loop
// DTM experiment the paper's runtime discussion anticipates (controllers
// reacting to PTscalar-style phase behaviour). The plant's workload is
// restored afterwards.
func TraceSimulate(p backend.Plant, ctrl Controller, tr *power.Trace, duration, dtSim, dtCtrl float64, fromAmbient bool) ([]DetailPoint, error) {
	if dtSim <= 0 || dtCtrl < dtSim || duration <= 0 {
		return nil, fmt.Errorf("controller: invalid timing (duration %g, dtSim %g, dtCtrl %g)", duration, dtSim, dtCtrl)
	}
	if tr.Len() == 0 {
		return nil, fmt.Errorf("controller: empty workload trace")
	}
	first, err := tr.At(0)
	if err != nil {
		return nil, err
	}
	// The plant's workload is left at the trace's first sample on return
	// (the per-unit input cannot be read back out of the plant).
	//lint:ignore errdrop restore-on-defer of a sample the plant accepted
	defer func() { _ = p.SetDynamicPower(first) }()

	if err := p.SetDynamicPower(first); err != nil {
		return nil, err
	}
	omega, itec := ctrl.Act(0, p.Config().Ambient)

	var init []float64
	if !fromAmbient {
		ss, err := p.Evaluate(context.Background(), backend.Scalar(omega, itec), nil)
		if err != nil {
			return nil, err
		}
		if !ss.Runaway {
			init = ss.T
		}
	}
	sim, err := p.NewTransient(omega, itec, init)
	if err != nil {
		return nil, err
	}

	var out []DetailPoint
	maxTemp, _ := sim.ChipState()
	nextCtrl := 0.0
	pcfg := p.Config()
	act, err := pcfg.Actuator()
	if err != nil {
		return nil, err
	}
	for sim.Time() < duration {
		now := sim.Time()
		pm, err := tr.At(now)
		if err != nil {
			return nil, err
		}
		if err := p.SetDynamicPower(pm); err != nil {
			return nil, err
		}
		if now >= nextCtrl {
			omega, itec = ctrl.Act(now, maxTemp)
			if err := sim.SetOperatingPoint(omega, itec); err != nil {
				return nil, err
			}
			nextCtrl += dtCtrl
		}
		maxTemp, err = sim.Step(dtSim)
		if err != nil {
			return nil, err
		}
		leak, tec, err := p.InstantaneousPowers(sim.Temperatures(), itec)
		if err != nil {
			return nil, err
		}
		out = append(out, DetailPoint{
			TracePoint: TracePoint{
				Time:     sim.Time(),
				MaxTempC: units.KToC(maxTemp),
				Omega:    omega,
				ITEC:     itec,
			},
			DynamicW: pm.Total(),
			LeakageW: leak,
			TECW:     tec,
			FanW:     act.Power(omega),
		})
	}
	return out, nil
}

// Summary aggregates a closed-loop run.
type Summary struct {
	Duration  float64
	PeakTempC float64
	MeanTempC float64
	// ViolationTime is the simulated time spent above tMaxC, in seconds.
	ViolationTime float64
	// MeanCoolingW is the time-averaged 𝒫.
	MeanCoolingW float64
	// CoolingEnergyJ is ∫𝒫 dt.
	CoolingEnergyJ float64
	// TECTransitions counts ON/OFF switches of the TEC drive.
	TECTransitions int
}

// Summarize reduces a detailed trace against a thermal limit (°C). The
// limit is taken in Celsius on purpose: the summary mirrors the °C
// figures the paper reports, alongside TracePoint.MaxTempC.
//
//lint:ignore unitsuffix reporting API mirrors the paper's °C figures
func Summarize(trace []DetailPoint, tMaxC float64) Summary {
	var s Summary
	if len(trace) == 0 {
		return s
	}
	s.PeakTempC = math.Inf(-1)
	prevTime := 0.0
	pts := make([]TracePoint, len(trace))
	for i, p := range trace {
		dt := p.Time - prevTime
		prevTime = p.Time
		s.MeanTempC += p.MaxTempC * dt
		s.MeanCoolingW += p.CoolingPowerW() * dt
		if p.MaxTempC > tMaxC {
			s.ViolationTime += dt
		}
		if p.MaxTempC > s.PeakTempC {
			s.PeakTempC = p.MaxTempC
		}
		pts[i] = p.TracePoint
	}
	s.Duration = trace[len(trace)-1].Time
	if s.Duration > 0 {
		s.MeanTempC /= s.Duration
		s.CoolingEnergyJ = s.MeanCoolingW
		s.MeanCoolingW /= s.Duration
	}
	s.TECTransitions = CountTECTransitions(pts)
	return s
}
