package controller

import (
	"context"
	"math"
	"testing"

	"oftec/internal/backend"
	"oftec/internal/units"
	"oftec/internal/workload"
)

func TestTraceSimulateFollowsWorkloadPhases(t *testing.T) {
	m := testModel(t, "Quicksort")
	b, err := workload.ByName("Quicksort")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := b.Trace(m.Config().Floorplan, 0.5, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := &Static{Omega: units.RPMToRadPerSec(3000), ITEC: 1}
	trace, err := TraceSimulate(m, ctrl, tr, 0.5, 0.01, 0.05, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) == 0 {
		t.Fatal("empty trace")
	}
	// The dynamic power must vary over time (phases) and never exceed the
	// benchmark's peak budget.
	var minDyn, maxDyn = math.Inf(1), 0.0
	for _, p := range trace {
		minDyn = math.Min(minDyn, p.DynamicW)
		maxDyn = math.Max(maxDyn, p.DynamicW)
		if p.DynamicW > b.TotalPower+1e-6 {
			t.Fatalf("instantaneous power %g exceeds budget %g", p.DynamicW, b.TotalPower)
		}
		if p.LeakageW <= 0 || p.FanW <= 0 || p.TECW <= 0 {
			t.Fatalf("power accounting missing at t=%g: %+v", p.Time, p)
		}
	}
	if maxDyn-minDyn < 1 {
		t.Errorf("dynamic power barely varies: [%g, %g]", minDyn, maxDyn)
	}
	// Temperatures under a phase trace must stay below the all-units-at-
	// peak steady state (the trace is never simultaneously at peak).
	maxMap, err := b.PowerMap(m.Config().Floorplan)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetDynamicPower(maxMap); err != nil {
		t.Fatal(err)
	}
	peakSS, err := m.Evaluate(context.Background(), backend.Scalar(units.RPMToRadPerSec(3000), 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range trace {
		if p.MaxTempC > units.KToC(peakSS.MaxChipTemp)+0.5 {
			t.Fatalf("trace temperature %g exceeds max-power steady state %g",
				p.MaxTempC, units.KToC(peakSS.MaxChipTemp))
		}
	}
}

func TestTraceSimulateValidation(t *testing.T) {
	m := testModel(t, "CRC32")
	b, err := workload.ByName("CRC32")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := b.Trace(m.Config().Floorplan, 0.2, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := &Static{Omega: 100}
	if _, err := TraceSimulate(m, ctrl, tr, 0, 0.01, 0.01, false); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := TraceSimulate(m, ctrl, tr, 1, 0.05, 0.01, false); err == nil {
		t.Error("control period below sim step accepted")
	}
}

func TestSummarize(t *testing.T) {
	trace := []DetailPoint{
		{TracePoint: TracePoint{Time: 1, MaxTempC: 80, ITEC: 0}, LeakageW: 10, FanW: 2},
		{TracePoint: TracePoint{Time: 2, MaxTempC: 95, ITEC: 2}, LeakageW: 12, TECW: 3, FanW: 2},
		{TracePoint: TracePoint{Time: 3, MaxTempC: 85, ITEC: 0}, LeakageW: 11, FanW: 2},
		{TracePoint: TracePoint{Time: 4, MaxTempC: 96, ITEC: 2}, LeakageW: 12, TECW: 3, FanW: 2},
	}
	s := Summarize(trace, 90)
	if s.PeakTempC != 96 {
		t.Errorf("peak %g, want 96", s.PeakTempC)
	}
	if s.Duration != 4 {
		t.Errorf("duration %g, want 4", s.Duration)
	}
	// Samples at 95 and 96 °C each cover 1 s.
	if s.ViolationTime != 2 {
		t.Errorf("violation time %g, want 2", s.ViolationTime)
	}
	if s.TECTransitions != 3 {
		t.Errorf("transitions %d, want 3", s.TECTransitions)
	}
	wantMeanT := (80.0 + 95 + 85 + 96) / 4
	if math.Abs(s.MeanTempC-wantMeanT) > 1e-9 {
		t.Errorf("mean temp %g, want %g", s.MeanTempC, wantMeanT)
	}
	wantEnergy := 12.0 + 17 + 13 + 17
	if math.Abs(s.CoolingEnergyJ-wantEnergy) > 1e-9 {
		t.Errorf("energy %g, want %g", s.CoolingEnergyJ, wantEnergy)
	}
	if math.Abs(s.MeanCoolingW-wantEnergy/4) > 1e-9 {
		t.Errorf("mean cooling %g, want %g", s.MeanCoolingW, wantEnergy/4)
	}
	if empty := Summarize(nil, 90); empty.Duration != 0 {
		t.Errorf("empty summary = %+v", empty)
	}
}

func TestTraceSimulateControllersCompared(t *testing.T) {
	// Closed loop over a phase trace: the hysteresis controller must
	// switch the TECs less often than the raw threshold controller at
	// a similar mean temperature.
	m := testModel(t, "BitCount")
	b, err := workload.ByName("BitCount")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := b.Trace(m.Config().Floorplan, 1.0, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	omega := units.RPMToRadPerSec(3000)
	tOn := units.CToK(84)

	thTrace, err := TraceSimulate(m, &Threshold{Omega: omega, IOn: 2, TOn: tOn}, tr, 1.0, 0.01, 0.02, false)
	if err != nil {
		t.Fatal(err)
	}
	hyTrace, err := TraceSimulate(m, &Hysteresis{Omega: omega, IOn: 2, THigh: tOn + 1.5, TLow: tOn - 3.5}, tr, 1.0, 0.01, 0.02, false)
	if err != nil {
		t.Fatal(err)
	}
	thSum := Summarize(thTrace, 90)
	hySum := Summarize(hyTrace, 90)
	if thSum.TECTransitions == 0 {
		t.Skip("threshold controller never switched; trace too tame for the comparison")
	}
	if hySum.TECTransitions > thSum.TECTransitions {
		t.Errorf("hysteresis switched more (%d) than threshold (%d)",
			hySum.TECTransitions, thSum.TECTransitions)
	}
}
