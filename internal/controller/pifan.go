package controller

import (
	"fmt"

	"oftec/internal/units"
)

// PIFan is a conventional proportional-integral fan-speed controller — the
// kind of closed-loop policy reference [11]'s systems use. It regulates
// the peak chip temperature to a set point by modulating ω, with the TECs
// at a fixed current. Included as a dynamic baseline against OFTEC's
// model-based operating points.
type PIFan struct {
	// Setpoint is the target peak chip temperature in kelvin.
	Setpoint float64
	// Kp and Ki are the proportional and integral gains, in rad/s per K
	// and rad/s per (K·s).
	Kp, Ki float64
	// OmegaMin and OmegaMax bound the actuation in rad/s.
	OmegaMin, OmegaMax float64
	// ITEC is the fixed TEC current in A.
	ITEC float64

	integral float64
	lastTime float64
	primed   bool
}

// Validate reports whether the controller parameters are usable.
func (c *PIFan) Validate() error {
	if c.Setpoint <= 0 {
		return fmt.Errorf("controller: PI set point %g must be positive kelvin", c.Setpoint)
	}
	if c.Kp < 0 || c.Ki < 0 {
		return fmt.Errorf("controller: PI gains (%g, %g) must be non-negative", c.Kp, c.Ki)
	}
	if c.OmegaMax <= c.OmegaMin || c.OmegaMin < 0 {
		return fmt.Errorf("controller: PI speed bounds [%g, %g] invalid", c.OmegaMin, c.OmegaMax)
	}
	return nil
}

// Name implements Controller.
func (c *PIFan) Name() string { return "pi-fan" }

// Act implements Controller. The integral term uses the time elapsed since
// the previous call and is clamped by back-calculation when the actuator
// saturates (anti-windup).
func (c *PIFan) Act(t, maxChipTemp float64) (float64, float64) {
	dt := 0.0
	if c.primed && t > c.lastTime {
		dt = t - c.lastTime
	}
	c.lastTime = t
	c.primed = true

	err := maxChipTemp - c.Setpoint
	c.integral += err * dt

	omega := c.Kp*err + c.Ki*c.integral
	clamped := units.Clamp(omega, c.OmegaMin, c.OmegaMax)
	if (omega < c.OmegaMin || omega > c.OmegaMax) && c.Ki > 0 {
		// Anti-windup: bleed the integral so the command sits at the rail.
		c.integral = (clamped - c.Kp*err) / c.Ki
	}
	return clamped, c.ITEC
}
