package controller

import (
	"math"
	"testing"

	"oftec/internal/backend"
	"oftec/internal/thermal"
	"oftec/internal/units"
	"oftec/internal/workload"
)

// testModel builds a coarse-grid plant (the full backend over a fresh
// thermal model) for the closed-loop simulation tests.
func testModel(t *testing.T, bench string) backend.Plant {
	t.Helper()
	cfg := thermal.DefaultConfig()
	cfg.ChipRes = 8
	cfg.SpreaderRes = 7
	cfg.SinkRes = 6
	cfg.PCBRes = 4
	b, err := workload.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	pm, err := b.PowerMap(cfg.Floorplan)
	if err != nil {
		t.Fatal(err)
	}
	m, err := thermal.NewModel(cfg, pm)
	if err != nil {
		t.Fatal(err)
	}
	return backend.NewFull(m)
}

func TestThresholdControllerSwitches(t *testing.T) {
	c := &Threshold{Omega: 200, IOn: 2, TOn: 360}
	if _, i := c.Act(0, 355); i != 0 {
		t.Error("TEC on below threshold")
	}
	if _, i := c.Act(1, 365); i != 2 {
		t.Error("TEC off above threshold")
	}
	if w, _ := c.Act(2, 365); w != 200 {
		t.Error("fan speed changed")
	}
	if c.Name() == "" {
		t.Error("empty name")
	}
}

func TestHysteresisBand(t *testing.T) {
	c := &Hysteresis{Omega: 200, IOn: 2, THigh: 362, TLow: 356}
	if _, i := c.Act(0, 358); i != 0 {
		t.Error("initially on inside the band")
	}
	if _, i := c.Act(1, 363); i != 2 {
		t.Error("not on above THigh")
	}
	// Inside the band the state must persist (that is the hysteresis).
	if _, i := c.Act(2, 358); i != 2 {
		t.Error("dropped out inside the band")
	}
	if _, i := c.Act(3, 355); i != 0 {
		t.Error("not off below TLow")
	}
	if _, i := c.Act(4, 358); i != 0 {
		t.Error("back on inside the band")
	}
}

func TestHysteresisReducesTransitions(t *testing.T) {
	// Feed both controllers the same noisy temperature sequence straddling
	// the threshold; the hysteresis controller must switch less.
	th := &Threshold{Omega: 200, IOn: 2, TOn: 360}
	hy := &Hysteresis{Omega: 200, IOn: 2, THigh: 361.5, TLow: 358.5}
	temps := []float64{359, 361, 359.2, 360.8, 359.4, 360.6, 359.1, 362, 358, 361}
	var trTh, trHy []TracePoint
	for k, temp := range temps {
		_, i1 := th.Act(float64(k), temp)
		_, i2 := hy.Act(float64(k), temp)
		trTh = append(trTh, TracePoint{Time: float64(k), ITEC: i1})
		trHy = append(trHy, TracePoint{Time: float64(k), ITEC: i2})
	}
	if CountTECTransitions(trHy) >= CountTECTransitions(trTh) {
		t.Errorf("hysteresis transitions (%d) not fewer than threshold's (%d)",
			CountTECTransitions(trHy), CountTECTransitions(trTh))
	}
}

func TestSimulateStaticReachesSteadyState(t *testing.T) {
	m := testModel(t, "CRC32")
	ctrl := &Static{Omega: units.RPMToRadPerSec(2000), ITEC: 0.5}
	trace, err := Simulate(m, ctrl, 2.0, 0.1, 0.5, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) == 0 {
		t.Fatal("empty trace")
	}
	// Starting from the steady state at the same operating point, the
	// temperature must stay essentially flat.
	first, last := trace[0].MaxTempC, trace[len(trace)-1].MaxTempC
	if math.Abs(first-last) > 0.5 {
		t.Errorf("static run drifted from %g to %g °C", first, last)
	}
}

func TestSimulateFromAmbientWarmsUp(t *testing.T) {
	m := testModel(t, "Basicmath")
	ctrl := &Static{Omega: units.RPMToRadPerSec(2500), ITEC: 0}
	trace, err := Simulate(m, ctrl, 3.0, 0.05, 0.5, true)
	if err != nil {
		t.Fatal(err)
	}
	first, last := trace[0].MaxTempC, trace[len(trace)-1].MaxTempC
	if last <= first+1 {
		t.Errorf("no warm-up from ambient: %g → %g °C", first, last)
	}
}

func TestSimulateTimingValidation(t *testing.T) {
	m := testModel(t, "CRC32")
	ctrl := &Static{Omega: 100}
	if _, err := Simulate(m, ctrl, 0, 0.1, 0.1, false); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := Simulate(m, ctrl, 1, 0, 0.1, false); err == nil {
		t.Error("zero sim step accepted")
	}
	if _, err := Simulate(m, ctrl, 1, 0.2, 0.1, false); err == nil {
		t.Error("control period below sim step accepted")
	}
}

func TestBoostControllerShape(t *testing.T) {
	c := &Boost{BaseOmega: 250, BaseITEC: 1, DeltaI: 1, Duration: 1}
	if _, i := c.Act(0.5, 0); i != 2 {
		t.Errorf("during boost I = %g, want 2", i)
	}
	if _, i := c.Act(1.5, 0); i != 1 {
		t.Errorf("after boost I = %g, want 1", i)
	}
}

func TestBoostCoolsDuringWarmup(t *testing.T) {
	// The paper's Section 6.2 scenario: a step load arrives; until OFTEC's
	// answer is ready, briefly over-driving the TECs keeps the chip cooler
	// than holding the base current.
	m := testModel(t, "Quicksort")
	omega := units.RPMToRadPerSec(2500)

	base := &Static{Omega: omega, ITEC: 1}
	boosted := &Boost{BaseOmega: omega, BaseITEC: 1, DeltaI: 1, Duration: 1}

	trBase, err := Simulate(m, base, 1.0, 0.05, 0.05, true)
	if err != nil {
		t.Fatal(err)
	}
	trBoost, err := Simulate(m, boosted, 1.0, 0.05, 0.05, true)
	if err != nil {
		t.Fatal(err)
	}
	if PeakTemp(trBoost) >= PeakTemp(trBase) {
		t.Errorf("boost peak %g °C not below base peak %g °C",
			PeakTemp(trBoost), PeakTemp(trBase))
	}
}

func TestLUT(t *testing.T) {
	lut, err := NewLUT([]LUTEntry{
		{TotalPower: 40, Omega: 300, ITEC: 2},
		{TotalPower: 20, Omega: 120, ITEC: 0.5},
		{TotalPower: 30, Omega: 200, ITEC: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Sorted on construction.
	if es := lut.Entries(); es[0].TotalPower != 20 || es[2].TotalPower != 40 {
		t.Errorf("entries not sorted: %+v", es)
	}
	// Exact hit.
	if w, i := lut.Lookup(30); w != 200 || i != 1 {
		t.Errorf("Lookup(30) = (%g, %g)", w, i)
	}
	// Between levels: choose the hotter (conservative) entry.
	if w, _ := lut.Lookup(25); w != 200 {
		t.Errorf("Lookup(25) chose ω=%g, want 200", w)
	}
	// Above the range: clamp to the highest.
	if w, _ := lut.Lookup(99); w != 300 {
		t.Errorf("Lookup(99) chose ω=%g, want 300", w)
	}
	// Below the range: the coolest entry still provides cooling.
	if w, _ := lut.Lookup(5); w != 120 {
		t.Errorf("Lookup(5) chose ω=%g, want 120", w)
	}

	if _, err := NewLUT(nil); err == nil {
		t.Error("empty LUT accepted")
	}
	if _, err := NewLUT([]LUTEntry{{TotalPower: 1}, {TotalPower: 1}}); err == nil {
		t.Error("duplicate power level accepted")
	}
}

func TestThresholdControllerClosedLoop(t *testing.T) {
	// Closed loop on a hot benchmark at a moderate fan speed. A threshold
	// controller whose set point lies below the passive steady temperature
	// produces the classic bang-bang limit cycle of reference [5]: the TEC
	// duty-cycles and the time-averaged temperature drops well below the
	// uncontrolled run even though instantaneous peaks touch the passive
	// level between samples.
	m := testModel(t, "Quicksort")
	omega := units.RPMToRadPerSec(3000)
	tOn := units.CToK(86)

	off := &Static{Omega: omega, ITEC: 0}
	ctl := &Threshold{Omega: omega, IOn: 2.5, TOn: tOn}

	trOff, err := Simulate(m, off, 2.0, 0.1, 0.2, false)
	if err != nil {
		t.Fatal(err)
	}
	trCtl, err := Simulate(m, ctl, 2.0, 0.1, 0.2, false)
	if err != nil {
		t.Fatal(err)
	}
	mean := func(tr []TracePoint) float64 {
		var s float64
		for _, p := range tr {
			s += p.MaxTempC
		}
		return s / float64(len(tr))
	}
	if mean(trCtl) >= mean(trOff)-2 {
		t.Errorf("controlled mean %g °C not well below uncontrolled %g °C",
			mean(trCtl), mean(trOff))
	}
	if n := CountTECTransitions(trCtl); n < 2 {
		t.Errorf("expected a bang-bang limit cycle, got %d transitions", n)
	}
}
