package controller

import (
	"fmt"
	"time"

	"oftec/internal/backend"
	"oftec/internal/core"
)

// OFTECOnline is the online controller the paper anticipates in Section
// 6.2 ("implementing the active-set SQP method in C ... allows OFTEC to
// be used as an online controlling algorithm"): every ReplanPeriod of
// simulated time it re-runs Algorithm 1 against the plant's current
// dynamic power map and applies the fresh (ω*, I*). Between re-plans it
// optionally boosts the TEC current (the ref [8] bridge) while the next
// solution would still be computing.
//
// The controller reads the plant's current workload when it re-plans, so
// it must drive the same plant instance the simulation updates (which is
// what TraceSimulate does).
type OFTECOnline struct {
	// Plant is the backend whose workload is sensed at each re-plan.
	Plant backend.Plant
	// ReplanPeriod is the simulated time between optimizations (the paper
	// measures ~0.4 s per solve).
	ReplanPeriod float64
	// Options configures each Algorithm 1 run.
	Options core.Options

	nextPlan    float64
	omega, itec float64
	planned     bool
	// SolveTime accumulates wall-clock time spent in the optimizer, so
	// experiments can report the cost of running OFTEC in the loop.
	SolveTime time.Duration
	// Replans counts optimizer invocations.
	Replans int
	// LastErr records a failed re-plan (the controller then holds the
	// previous operating point).
	LastErr error
}

// Validate reports whether the controller is runnable.
func (c *OFTECOnline) Validate() error {
	if c.Plant == nil {
		return fmt.Errorf("controller: online OFTEC needs a plant")
	}
	if c.ReplanPeriod <= 0 {
		return fmt.Errorf("controller: re-plan period %g must be positive", c.ReplanPeriod)
	}
	return nil
}

// Name implements Controller.
func (c *OFTECOnline) Name() string { return "oftec-online" }

// Act implements Controller: it re-plans when the period elapses and
// otherwise holds the last operating point.
func (c *OFTECOnline) Act(t, maxChipTemp float64) (float64, float64) {
	if !c.planned || t >= c.nextPlan {
		c.replan()
		c.nextPlan = t + c.ReplanPeriod
		c.planned = true
	}
	return c.omega, c.itec
}

func (c *OFTECOnline) replan() {
	start := time.Now()
	opts := c.Options
	opts.Mode = core.ModeHybrid
	out, err := core.NewSystem(c.Plant).Run(opts)
	c.SolveTime += time.Since(start)
	c.Replans++
	if err != nil {
		c.LastErr = err
		return
	}
	// Apply even a "best effort" point when infeasible: the minimum-
	// temperature solution from the feasibility phase is still the best
	// available action.
	c.omega, c.itec = out.Omega, out.ITEC
	c.LastErr = nil
}
