package controller

import (
	"fmt"

	"oftec/internal/backend"
	"oftec/internal/core"
	"oftec/internal/power"
)

// BuildLUT precomputes OFTEC solutions for a family of power levels, the
// offline half of the look-up-table controller the paper proposes in
// Section 6.2: "one can classify the input dynamic power vector to
// different categories and pre-calculate optimization solutions and store
// them in a look-up table. In this way, the desired controlling values can
// be accessed immediately."
//
// The base power map fixes the spatial shape of the workload; each level
// scales it to the requested total power, runs Algorithm 1, and stores
// (ω*, I*_TEC). Levels whose Optimization 1 is infeasible are rejected —
// the table must only hand out safe operating points.
func BuildLUT(sys *core.System, base power.Map, totalPowers []float64, opts core.Options) (*LUT, error) {
	if len(totalPowers) == 0 {
		return nil, fmt.Errorf("controller: BuildLUT needs at least one power level")
	}
	baseTotal := base.Total()
	if baseTotal <= 0 {
		return nil, fmt.Errorf("controller: base power map has non-positive total %g", baseTotal)
	}
	plant, ok := sys.Backend().(backend.Plant)
	if !ok {
		return nil, fmt.Errorf("controller: backend %q cannot change workloads", sys.Backend().Name())
	}
	originalCells := base.Clone()
	defer func() {
		// Restore the plant's original workload regardless of outcome; the
		// clone was accepted once, so a second Set cannot newly fail.
		//lint:ignore errdrop restore-on-defer of an already-validated map
		_ = plant.SetDynamicPower(originalCells)
	}()

	entries := make([]LUTEntry, 0, len(totalPowers))
	for _, level := range totalPowers {
		if level <= 0 {
			return nil, fmt.Errorf("controller: power level %g must be positive", level)
		}
		if err := plant.SetDynamicPower(base.Scale(level / baseTotal)); err != nil {
			return nil, err
		}
		// A fresh system per level: the evaluation cache keys only on the
		// operating point, not on the workload.
		levelSys := core.NewSystem(plant)
		opts.Mode = core.ModeHybrid
		out, err := levelSys.Run(opts)
		if err != nil {
			return nil, fmt.Errorf("controller: LUT level %g W: %w", level, err)
		}
		if !out.Feasible {
			return nil, fmt.Errorf("controller: LUT level %g W is thermally infeasible", level)
		}
		entries = append(entries, LUTEntry{TotalPower: level, Omega: out.Omega, ITEC: out.ITEC})
	}
	return NewLUT(entries)
}
