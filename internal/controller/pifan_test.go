package controller

import (
	"math"
	"testing"

	"oftec/internal/core"
	"oftec/internal/units"
	"oftec/internal/workload"
)

func TestPIFanValidate(t *testing.T) {
	good := &PIFan{Setpoint: 353, Kp: 10, Ki: 1, OmegaMin: 10, OmegaMax: 524}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*PIFan{
		{Setpoint: 0, Kp: 1, Ki: 1, OmegaMin: 0, OmegaMax: 1},
		{Setpoint: 300, Kp: -1, Ki: 1, OmegaMin: 0, OmegaMax: 1},
		{Setpoint: 300, Kp: 1, Ki: 1, OmegaMin: 5, OmegaMax: 1},
		{Setpoint: 300, Kp: 1, Ki: 1, OmegaMin: -1, OmegaMax: 1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestPIFanProportionalResponse(t *testing.T) {
	c := &PIFan{Setpoint: 350, Kp: 10, Ki: 0, OmegaMin: 0, OmegaMax: 524}
	// 5 K above the set point → ω = 50 rad/s.
	if w, _ := c.Act(0, 355); w != 50 {
		t.Errorf("ω = %g, want 50", w)
	}
	// Below the set point with no integral → clamped at the lower rail.
	if w, _ := c.Act(1, 345); w != 0 {
		t.Errorf("ω = %g, want 0", w)
	}
}

func TestPIFanIntegralAccumulates(t *testing.T) {
	c := &PIFan{Setpoint: 350, Kp: 0, Ki: 2, OmegaMin: 0, OmegaMax: 524}
	c.Act(0, 355) // primes the clock; dt=0 so no integral yet
	w1, _ := c.Act(1, 355)
	w2, _ := c.Act(2, 355)
	if !(w2 > w1 && w1 > 0) {
		t.Errorf("integral not accumulating: %g then %g", w1, w2)
	}
}

func TestPIFanAntiWindup(t *testing.T) {
	c := &PIFan{Setpoint: 350, Kp: 0, Ki: 100, OmegaMin: 0, OmegaMax: 100}
	c.Act(0, 400)
	for k := 1; k <= 50; k++ {
		c.Act(float64(k), 400) // pegged at the rail for 50 s
	}
	// After the error disappears, a wound-up integral would hold the fan
	// at the rail for many seconds; anti-windup must release quickly.
	c.Act(51, 350)
	w, _ := c.Act(52, 340) // now 10 K below: should drop fast
	if w > 50 {
		t.Errorf("anti-windup failed: ω still %g after error reversed", w)
	}
}

func TestPIFanRegulatesPlant(t *testing.T) {
	m := testModel(t, "Basicmath")
	set := units.CToK(70)
	c := &PIFan{
		Setpoint: set,
		Kp:       30, Ki: 8,
		OmegaMin: 15, OmegaMax: 524,
		ITEC: 0,
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	trace, err := Simulate(m, c, 240.0, 1.0, 1.0, true)
	if err != nil {
		t.Fatal(err)
	}
	final := trace[len(trace)-1].MaxTempC
	if d := final - units.KToC(set); d > 2 || d < -4 {
		t.Errorf("PI settled at %g °C, set point %g °C", final, units.KToC(set))
	}
}

func TestBuildLUT(t *testing.T) {
	m := testModel(t, "Basicmath")
	sys := core.NewSystem(m)
	b, err := workload.ByName("Basicmath")
	if err != nil {
		t.Fatal(err)
	}
	base, err := b.PowerMap(m.Config().Floorplan)
	if err != nil {
		t.Fatal(err)
	}

	lut, err := BuildLUT(sys, base, []float64{15, 25, 35}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	entries := lut.Entries()
	if len(entries) != 3 {
		t.Fatalf("got %d entries", len(entries))
	}
	// Hotter levels must demand at least as much fan.
	for i := 1; i < len(entries); i++ {
		if entries[i].Omega < entries[i-1].Omega {
			t.Errorf("ω not monotone in power level: %+v", entries)
		}
	}
	// The model's workload must be restored after building.
	if got := m.DynamicPowerTotal(); math.Abs(got-base.Total()) > 1e-9 {
		t.Errorf("BuildLUT left the model at %g W, want %g", got, base.Total())
	}

	// Error paths.
	if _, err := BuildLUT(sys, base, nil, core.Options{}); err == nil {
		t.Error("empty level list accepted")
	}
	if _, err := BuildLUT(sys, base, []float64{-1}, core.Options{}); err == nil {
		t.Error("negative level accepted")
	}
	// A hopeless power level must be rejected, not stored.
	if _, err := BuildLUT(sys, base, []float64{500}, core.Options{}); err == nil {
		t.Error("infeasible level accepted")
	}
}
