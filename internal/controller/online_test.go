package controller

import (
	"testing"

	"oftec/internal/units"
	"oftec/internal/workload"
)

func TestOFTECOnlineValidate(t *testing.T) {
	m := testModel(t, "CRC32")
	good := &OFTECOnline{Plant: m, ReplanPeriod: 0.5}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (&OFTECOnline{ReplanPeriod: 0.5}).Validate(); err == nil {
		t.Error("nil model accepted")
	}
	if err := (&OFTECOnline{Plant: m}).Validate(); err == nil {
		t.Error("zero period accepted")
	}
}

func TestOFTECOnlineReplansOnSchedule(t *testing.T) {
	m := testModel(t, "Basicmath")
	c := &OFTECOnline{Plant: m, ReplanPeriod: 1.0}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// First call plans immediately; calls inside the period hold.
	w0, i0 := c.Act(0, 330)
	if c.Replans != 1 {
		t.Fatalf("replans = %d after first Act", c.Replans)
	}
	w1, i1 := c.Act(0.5, 330)
	if c.Replans != 1 || w1 != w0 || i1 != i0 {
		t.Errorf("controller did not hold inside the period")
	}
	c.Act(1.1, 330)
	if c.Replans != 2 {
		t.Errorf("replans = %d after period elapsed, want 2", c.Replans)
	}
	if c.SolveTime <= 0 {
		t.Error("solve time not accounted")
	}
	if i0 <= 0 {
		t.Errorf("OFTEC online chose I = %g on Basicmath, want positive", i0)
	}
}

func TestOFTECOnlineTracksLoadChanges(t *testing.T) {
	// Closed loop over a Quicksort phase trace: the online controller must
	// keep the plant feasible while spending less than the static
	// worst-case operating point when the load drops.
	m := testModel(t, "Quicksort")
	b, err := workload.ByName("Quicksort")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := b.Trace(m.Config().Floorplan, 1.0, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	c := &OFTECOnline{Plant: m, ReplanPeriod: 0.25}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	detail, err := TraceSimulate(m, c, tr, 1.0, 0.01, 0.05, false)
	if err != nil {
		t.Fatal(err)
	}
	sum := Summarize(detail, units.KToC(m.Config().TMax))
	if sum.ViolationTime > 0.05 {
		t.Errorf("online OFTEC violated T_max for %g s", sum.ViolationTime)
	}
	if c.Replans < 3 {
		t.Errorf("only %d re-plans over 1 s at 0.25 s period", c.Replans)
	}
	if c.LastErr != nil {
		t.Errorf("last re-plan failed: %v", c.LastErr)
	}
	// The controller must actually modulate with the phases: the applied
	// current must not be constant across the run.
	first, varied := detail[0].ITEC, false
	for _, p := range detail {
		if p.ITEC != first {
			varied = true
			break
		}
	}
	if !varied {
		t.Error("online controller never changed the operating point")
	}
}
