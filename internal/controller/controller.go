// Package controller implements the runtime thermal-management policies
// discussed by the paper around OFTEC: the threshold and hysteresis TEC
// controllers of reference [5] (used as dynamic baselines), the
// look-up-table controller the paper proposes for making OFTEC's solutions
// available instantly, and the transient TEC-current boost of reference
// [8] (+1 A for ~1 s) that bridges the gap until a fresh OFTEC solution is
// ready. Controllers drive the thermal model's transient simulation.
package controller

import (
	"context"
	"fmt"
	"math"
	"sort"

	"oftec/internal/backend"
	"oftec/internal/units"
)

// Controller decides the cooling operating point from the observed peak
// chip temperature. Implementations may keep state (hysteresis, timers).
type Controller interface {
	// Name identifies the policy in traces and reports.
	Name() string
	// Act returns the (ω, I_TEC) to apply at simulated time t given the
	// currently observed maximum chip temperature (kelvin).
	Act(t, maxChipTemp float64) (omega, itec float64)
}

// Threshold is reference [5]'s threshold-based controller: the TECs switch
// ON at a fixed current when the temperature exceeds TOn and OFF as soon
// as it drops back below. The fan runs at a constant speed.
type Threshold struct {
	// Omega is the fixed fan speed in rad/s.
	Omega float64
	// IOn is the TEC drive current when active, in A.
	IOn float64
	// TOn is the switching threshold in kelvin.
	TOn float64

	on bool
}

// Name implements Controller.
func (c *Threshold) Name() string { return "threshold" }

// Act implements Controller.
func (c *Threshold) Act(t, maxChipTemp float64) (float64, float64) {
	c.on = maxChipTemp > c.TOn
	if c.on {
		return c.Omega, c.IOn
	}
	return c.Omega, 0
}

// Hysteresis is reference [5]'s maximum-cooling-based controller: it adds
// a hysteresis band to reduce the number of ON/OFF transitions (which
// stress the TECs). ON above THigh, OFF below TLow < THigh.
type Hysteresis struct {
	Omega float64
	IOn   float64
	// THigh and TLow bound the hysteresis band in kelvin.
	THigh, TLow float64

	on bool
}

// Name implements Controller.
func (c *Hysteresis) Name() string { return "hysteresis" }

// Act implements Controller.
func (c *Hysteresis) Act(t, maxChipTemp float64) (float64, float64) {
	switch {
	case maxChipTemp > c.THigh:
		c.on = true
	case maxChipTemp < c.TLow:
		c.on = false
	}
	if c.on {
		return c.Omega, c.IOn
	}
	return c.Omega, 0
}

// Static pins the operating point; the degenerate controller used for
// comparison runs.
type Static struct {
	Omega, ITEC float64
}

// Name implements Controller.
func (c *Static) Name() string { return "static" }

// Act implements Controller.
func (c *Static) Act(t, maxChipTemp float64) (float64, float64) { return c.Omega, c.ITEC }

// Boost implements the transient cooling strategy of Section 6.2 (after
// ref [8]): run at a base operating point, and during the first Duration
// seconds drive the TECs DeltaI above the base current. The Peltier effect
// responds immediately while the extra Joule heat arrives with the stack's
// thermal time constant, so the boost buys cooling while a fresh OFTEC
// solution is being computed.
type Boost struct {
	BaseOmega, BaseITEC float64
	// DeltaI is the extra current during the boost (the paper suggests
	// about 1 A).
	DeltaI float64
	// Duration is the boost length in seconds (the paper suggests ~1 s).
	Duration float64
}

// Name implements Controller.
func (c *Boost) Name() string { return "boost" }

// Act implements Controller.
func (c *Boost) Act(t, maxChipTemp float64) (float64, float64) {
	if t < c.Duration {
		return c.BaseOmega, c.BaseITEC + c.DeltaI
	}
	return c.BaseOmega, c.BaseITEC
}

// TracePoint is one sample of a closed-loop simulation.
type TracePoint struct {
	Time     float64 // s
	MaxTempC float64 // °C
	Omega    float64 // rad/s
	ITEC     float64 // A
}

// Simulate runs the controller against the plant's transient simulation
// for the given duration. The plant advances with step dtSim; the
// controller is sampled every dtCtrl (which must be ≥ dtSim). The initial
// state is the steady state at the controller's initial action, unless
// fromAmbient is set, in which case the stack starts at ambient.
func Simulate(p backend.Plant, ctrl Controller, duration, dtSim, dtCtrl float64, fromAmbient bool) ([]TracePoint, error) {
	if dtSim <= 0 || dtCtrl < dtSim || duration <= 0 {
		return nil, fmt.Errorf("controller: invalid timing (duration %g, dtSim %g, dtCtrl %g)", duration, dtSim, dtCtrl)
	}
	omega, itec := ctrl.Act(0, p.Config().Ambient)

	var init []float64
	if !fromAmbient {
		ss, err := p.Evaluate(context.Background(), backend.Scalar(omega, itec), nil)
		if err != nil {
			return nil, err
		}
		if !ss.Runaway {
			init = ss.T
		}
	}
	tr, err := p.NewTransient(omega, itec, init)
	if err != nil {
		return nil, err
	}

	maxTemp, _ := tr.ChipState()
	var trace []TracePoint
	nextCtrl := 0.0
	for tr.Time() < duration {
		if tr.Time() >= nextCtrl {
			omega, itec = ctrl.Act(tr.Time(), maxTemp)
			if err := tr.SetOperatingPoint(omega, itec); err != nil {
				return nil, err
			}
			nextCtrl += dtCtrl
		}
		maxTemp, err = tr.Step(dtSim)
		if err != nil {
			return nil, err
		}
		trace = append(trace, TracePoint{
			Time:     tr.Time(),
			MaxTempC: units.KToC(maxTemp),
			Omega:    omega,
			ITEC:     itec,
		})
	}
	return trace, nil
}

// CountTECTransitions counts ON/OFF switches of the TEC drive in a trace —
// the metric reference [5]'s hysteresis controller is designed to reduce.
func CountTECTransitions(trace []TracePoint) int {
	n := 0
	for i := 1; i < len(trace); i++ {
		prevOn := trace[i-1].ITEC > 0
		curOn := trace[i].ITEC > 0
		if prevOn != curOn {
			n++
		}
	}
	return n
}

// PeakTemp returns the maximum chip temperature (°C) over a trace.
func PeakTemp(trace []TracePoint) float64 {
	peak := math.Inf(-1)
	for _, p := range trace {
		peak = math.Max(peak, p.MaxTempC)
	}
	return peak
}

// LUTEntry is one precomputed OFTEC solution.
type LUTEntry struct {
	// TotalPower is the dynamic power level (W) the entry was solved for.
	TotalPower float64
	// Omega and ITEC are the precomputed (ω*, I*_TEC).
	Omega, ITEC float64
}

// LUT is the look-up-table controller the paper proposes in Section 6.2:
// OFTEC solutions are precomputed offline for a set of power levels; at
// run time the controller classifies the current power level and returns
// the stored solution immediately (no optimization in the loop).
type LUT struct {
	entries []LUTEntry // sorted by TotalPower
}

// NewLUT builds a LUT from precomputed entries; entries are sorted by
// power level and must be non-empty with distinct levels.
func NewLUT(entries []LUTEntry) (*LUT, error) {
	if len(entries) == 0 {
		return nil, fmt.Errorf("controller: LUT needs at least one entry")
	}
	sorted := append([]LUTEntry(nil), entries...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].TotalPower < sorted[j].TotalPower })
	for i := 1; i < len(sorted); i++ {
		if units.ApproxEqual(sorted[i].TotalPower, sorted[i-1].TotalPower, units.EpsPower) {
			return nil, fmt.Errorf("controller: duplicate LUT power level %g", sorted[i].TotalPower)
		}
	}
	return &LUT{entries: sorted}, nil
}

// Entries returns the table contents (sorted by power level).
func (l *LUT) Entries() []LUTEntry { return l.entries }

// Lookup returns the stored solution whose power level is nearest to, and
// not below, the requested one (conservative: when between two levels, the
// hotter entry's stronger cooling is chosen). Requests above the table's
// range return the highest entry.
func (l *LUT) Lookup(totalPower float64) (omega, itec float64) {
	i := sort.Search(len(l.entries), func(i int) bool {
		return l.entries[i].TotalPower >= totalPower
	})
	if i == len(l.entries) {
		i = len(l.entries) - 1
	}
	return l.entries[i].Omega, l.entries[i].ITEC
}
