package thermal

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"oftec/internal/units"
	"oftec/internal/workload"
)

func TestConfigJSONRoundTrip(t *testing.T) {
	orig := testConfig()
	orig.Leakage.UnitMultipliers = map[string]float64{"Icache": 1.8, "Dcache": 1.8}

	var buf bytes.Buffer
	if err := SaveConfig(&buf, orig); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadConfig(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Ambient != orig.Ambient || loaded.TMax != orig.TMax {
		t.Errorf("temperatures drifted: %+v", loaded)
	}
	if loaded.ChipRes != orig.ChipRes {
		t.Errorf("resolution drifted: %d", loaded.ChipRes)
	}
	if loaded.TEC.SeebeckPerArea != orig.TEC.SeebeckPerArea {
		t.Errorf("TEC spec drifted")
	}
	if loaded.Floorplan.NumUnits() != orig.Floorplan.NumUnits() {
		t.Errorf("floorplan drifted: %d units", loaded.Floorplan.NumUnits())
	}
	if loaded.Leakage.UnitMultipliers["Icache"] != 1.8 {
		t.Errorf("leakage multipliers drifted: %v", loaded.Leakage.UnitMultipliers)
	}
	if got := len(loaded.TEC.Uncovered); got != len(orig.TEC.Uncovered) {
		t.Errorf("uncovered list drifted: %d entries", got)
	}

	// A loaded config must build an equivalent model.
	b, err := workload.ByName("Basicmath")
	if err != nil {
		t.Fatal(err)
	}
	pm, err := b.PowerMap(loaded.Floorplan)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := NewModel(orig, pm)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := NewModel(loaded, pm)
	if err != nil {
		t.Fatal(err)
	}
	omega := units.RPMToRadPerSec(2000)
	r1, err := m1.Evaluate(omega, 1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := m2.Evaluate(omega, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r1.MaxChipTemp-r2.MaxChipTemp) > 1e-6 {
		t.Errorf("round-tripped config changes physics: %g vs %g", r1.MaxChipTemp, r2.MaxChipTemp)
	}
}

func TestLoadConfigRejectsGarbage(t *testing.T) {
	if _, err := LoadConfig(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := LoadConfig(strings.NewReader(`{"Ambient": -5}`)); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := LoadConfig(strings.NewReader(`{"NoSuchField": 1}`)); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestLeakageMultipliersShiftLeakage(t *testing.T) {
	cfg := testConfig()
	b, err := workload.ByName("CRC32")
	if err != nil {
		t.Fatal(err)
	}
	pm, err := b.PowerMap(cfg.Floorplan)
	if err != nil {
		t.Fatal(err)
	}
	base, err := NewModel(cfg, pm)
	if err != nil {
		t.Fatal(err)
	}

	hot := testConfig()
	hot.Leakage.UnitMultipliers = map[string]float64{"L2": 3.0}
	hotModel, err := NewModel(hot, pm)
	if err != nil {
		t.Fatal(err)
	}
	if hotModel.TotalLeakageSlope() <= base.TotalLeakageSlope() {
		t.Errorf("tripling L2 leakage did not raise the total slope: %g vs %g",
			hotModel.TotalLeakageSlope(), base.TotalLeakageSlope())
	}

	// Zeroing every unit's leakage must null the slope entirely.
	none := testConfig()
	none.Leakage.UnitMultipliers = map[string]float64{}
	for _, u := range none.Floorplan.Units() {
		none.Leakage.UnitMultipliers[u.Name] = 0
	}
	noneModel, err := NewModel(none, pm)
	if err != nil {
		t.Fatal(err)
	}
	if s := noneModel.TotalLeakageSlope(); s > 1e-9 {
		t.Errorf("zero multipliers left slope %g", s)
	}
}

func TestLeakageMultiplierValidation(t *testing.T) {
	cfg := testConfig()
	cfg.Leakage.UnitMultipliers = map[string]float64{"Nonesuch": 1}
	if err := cfg.Validate(); err == nil {
		t.Error("unknown unit accepted")
	}
	cfg = testConfig()
	cfg.Leakage.UnitMultipliers = map[string]float64{"L2": -1}
	if err := cfg.Validate(); err == nil {
		t.Error("negative multiplier accepted")
	}
}
