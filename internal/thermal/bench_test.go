package thermal

import (
	"testing"

	"oftec/internal/workload"
)

func benchmarkModel(b *testing.B) *Model {
	b.Helper()
	cfg := DefaultConfig()
	bench, err := workload.ByName("Basicmath")
	if err != nil {
		b.Fatal(err)
	}
	pm, err := bench.PowerMap(cfg.Floorplan)
	if err != nil {
		b.Fatal(err)
	}
	m, err := NewModel(cfg, pm)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkAssemble measures the production assembly path of one
// linearized system (matrix + RHS) at the full resolution, without the
// solve: the O(nnz) value copy plus O(n) diagonal/RHS patches into pooled
// scratch. scripts/bench.sh records it in BENCH_evaluate.json.
func BenchmarkAssemble(b *testing.B) {
	m := benchmarkModel(b)
	sc := m.getScratch()
	defer m.putScratch(sc)
	sc.itec = 1.5
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.assembleInto(sc, 250, sc.uniform, true, nil)
		if sc.mat.N() != m.n {
			b.Fatal("bad dimension")
		}
	}
}

// BenchmarkAssembleReference measures the Builder-based reference assembly
// the production path replaced, for before/after comparison in place.
func BenchmarkAssembleReference(b *testing.B) {
	m := benchmarkModel(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mat, _, err := m.assembleReference(250, m.uniformCurrent(1.5), true, nil)
		if err != nil {
			b.Fatal(err)
		}
		if mat.N() != m.n {
			b.Fatal("bad dimension")
		}
	}
}
