package thermal

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"
)

// This file is the batched-evaluation equivalence suite: EvaluateBatch
// and EvaluateZonedBatch are pure performance transforms, so their
// results must be reflect.DeepEqual — bit-identical fields, Stats
// included — to the per-point reference protocol: within each ω-group
// the first point evaluates from a nil warm start and its solution seeds
// the remaining points (the sweep warm-start carry), or an explicit warm
// seeds everything.

// batchGrid is a small sweep covering memo-cold points, repeated points,
// and the fanless high-current runaway corner.
func batchGrid(cfg Config) []BatchPoint {
	var pts []BatchPoint
	for _, omega := range []float64{120, 250, 0} {
		for _, itec := range []float64{0, 0.8, cfg.TEC.MaxCurrent} {
			pts = append(pts, BatchPoint{Omega: omega, ITEC: itec})
		}
	}
	return pts
}

// perPointReference replays pts through the scalar per-point protocol on
// the given model.
func perPointReference(t *testing.T, m *Model, pts []BatchPoint, warm []float64) []*Result {
	t.Helper()
	out := make([]*Result, len(pts))
	seeds := map[float64][]float64{}
	seen := map[float64]bool{}
	for i, p := range pts {
		seed := warm
		if warm == nil {
			if !seen[p.Omega] {
				seen[p.Omega] = true
				r0, err := m.EvaluateWarm(p.Omega, p.ITEC, nil)
				if err != nil {
					t.Fatal(err)
				}
				out[i] = r0
				if !r0.Runaway {
					seeds[p.Omega] = r0.T
				}
				continue
			}
			seed = seeds[p.Omega]
		}
		res, err := m.EvaluateWarm(p.Omega, p.ITEC, seed)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = res
	}
	return out
}

func assertResultsDeepEqual(t *testing.T, label string, got, want []*Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("%s: point %d (ω=%g): batched result differs from per-point reference\n got %+v\nwant %+v",
				label, i, want[i].Omega, got[i], want[i])
		}
	}
}

func TestEvaluateBatchMatchesPerPoint(t *testing.T) {
	cfg := testConfig()
	pts := batchGrid(cfg)

	batched := benchModel(t, cfg, "Basicmath")
	got, err := batched.EvaluateBatch(context.Background(), pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	reference := benchModel(t, cfg, "Basicmath")
	want := perPointReference(t, reference, pts, nil)
	assertResultsDeepEqual(t, "cold", got, want)

	// With an explicit warm start every point seeds from it.
	warmRes := want[0]
	if warmRes.Runaway {
		t.Fatal("first grid point unexpectedly ran away")
	}
	b2 := benchModel(t, cfg, "Basicmath")
	got2, err := b2.EvaluateBatch(context.Background(), pts, warmRes.T)
	if err != nil {
		t.Fatal(err)
	}
	r2 := benchModel(t, cfg, "Basicmath")
	want2 := perPointReference(t, r2, pts, warmRes.T)
	assertResultsDeepEqual(t, "warm", got2, want2)
}

// TestEvaluateBatchSharesMemo: points already memoized answer from the
// memo (pointer-identical results), and a batch populates the memo so
// later per-point calls on the same model return the identical pointers.
func TestEvaluateBatchSharesMemo(t *testing.T) {
	cfg := testConfig()
	m := benchModel(t, cfg, "Basicmath")
	pre, err := m.Evaluate(250, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	pts := []BatchPoint{{250, 0}, {250, 0.8}, {250, 1.4}}
	got, err := m.EvaluateBatch(context.Background(), pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got[1] != pre {
		t.Error("memoized point re-solved in batch (pointer differs)")
	}
	for i, p := range pts {
		solo, err := m.Evaluate(p.Omega, p.ITEC)
		if err != nil {
			t.Fatal(err)
		}
		if solo != got[i] {
			t.Errorf("point %d: per-point call after batch returned a different pointer", i)
		}
	}
}

func TestEvaluateZonedBatchMatchesPerPoint(t *testing.T) {
	cfg := testConfig()
	batched := benchModel(t, cfg, "Basicmath")
	reference := benchModel(t, cfg, "Basicmath")

	assign := map[string]int{}
	for i, u := range cfg.Floorplan.Units() {
		assign[u.Name] = i % 2
	}
	zb, err := batched.NewZoning(assign, 2)
	if err != nil {
		t.Fatal(err)
	}
	zr, err := reference.NewZoning(assign, 2)
	if err != nil {
		t.Fatal(err)
	}

	var pts []ZonedPoint
	for _, omega := range []float64{150, 250} {
		for _, cur := range [][]float64{{0, 0}, {0.6, 1.2}, {1.4, 0.2}, {0.6, 1.2}} {
			pts = append(pts, ZonedPoint{Omega: omega, Currents: cur})
		}
	}
	got, err := batched.EvaluateZonedBatch(context.Background(), zb, pts, nil)
	if err != nil {
		t.Fatal(err)
	}

	want := make([]*Result, len(pts))
	seeds := map[float64][]float64{}
	seen := map[float64]bool{}
	for i, p := range pts {
		var seed []float64
		if seen[p.Omega] {
			seed = seeds[p.Omega]
		}
		res, err := reference.EvaluateZonedWarm(p.Omega, zr, p.Currents, seed)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
		if !seen[p.Omega] {
			seen[p.Omega] = true
			if !res.Runaway {
				seeds[p.Omega] = res.T
			}
		}
	}
	assertResultsDeepEqual(t, "zoned", got, want)

	// k=1 delegates to the scalar batch, like EvaluateZonedWarm delegates
	// to EvaluateWarm.
	one := map[string]int{}
	for _, u := range cfg.Floorplan.Units() {
		one[u.Name] = 0
	}
	z1, err := batched.NewZoning(one, 1)
	if err != nil {
		t.Fatal(err)
	}
	single := []ZonedPoint{{Omega: 200, Currents: []float64{0.9}}}
	gz, err := batched.EvaluateZonedBatch(context.Background(), z1, single, nil)
	if err != nil {
		t.Fatal(err)
	}
	gs, err := batched.EvaluateWarm(200, 0.9, nil)
	if err != nil {
		t.Fatal(err)
	}
	if gz[0] != gs {
		t.Error("k=1 zoned batch did not share the scalar memo entry")
	}
}

// TestEvaluateBatchSpansDynamicPowerFlush: a batch issued after a
// SetDynamicPower flush must solve against the new power map, not the
// stale memo, and still match per-point results under the new map.
func TestEvaluateBatchSpansDynamicPowerFlush(t *testing.T) {
	cfg := testConfig()
	m := benchModel(t, cfg, "Basicmath")
	pts := []BatchPoint{{200, 0}, {200, 0.7}, {200, 1.3}, {120, 0.7}}
	before, err := m.EvaluateBatch(context.Background(), pts, nil)
	if err != nil {
		t.Fatal(err)
	}

	newMap := uniformMap(&cfg, 18)
	if err := m.SetDynamicPower(newMap); err != nil {
		t.Fatal(err)
	}
	after, err := m.EvaluateBatch(context.Background(), pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		if reflect.DeepEqual(after[i], before[i]) {
			t.Errorf("point %d: batch after SetDynamicPower returned the pre-flush result", i)
		}
	}

	ref, err := NewModel(cfg, newMap)
	if err != nil {
		t.Fatal(err)
	}
	want := perPointReference(t, ref, pts, nil)
	assertResultsDeepEqual(t, "post-flush", after, want)
}

// countdownCtx reports cancellation only after Err has been consulted a
// fixed number of times, so the batch runs its first chunks and is then
// cancelled between chunks.
type countdownCtx struct {
	remaining int
}

func (c *countdownCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *countdownCtx) Done() <-chan struct{}       { return nil }
func (c *countdownCtx) Value(any) any               { return nil }
func (c *countdownCtx) Err() error {
	if c.remaining > 0 {
		c.remaining--
		return nil
	}
	return context.Canceled
}

func TestEvaluateBatchCancelledMidBatch(t *testing.T) {
	cfg := testConfig()
	m := benchModel(t, cfg, "Basicmath")

	// Already-cancelled context: nothing runs.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.EvaluateBatch(ctx, batchGrid(cfg), nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled context: err = %v, want context.Canceled", err)
	}

	// Cancelled mid-batch: the first ω-group proceeds, then the run stops
	// with no results; the model stays healthy for the next call.
	mid := &countdownCtx{remaining: 2}
	if _, err := m.EvaluateBatch(mid, batchGrid(cfg), nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-batch cancel: err = %v, want context.Canceled", err)
	}
	res, err := m.EvaluateBatch(context.Background(), batchGrid(cfg), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r == nil {
			t.Fatalf("point %d nil after recovery from cancellation", i)
		}
	}
}

// TestEvaluateBatchValidation: malformed points and warm hints are
// rejected before any solve.
func TestEvaluateBatchValidation(t *testing.T) {
	cfg := testConfig()
	m := benchModel(t, cfg, "Basicmath")
	if _, err := m.EvaluateBatch(context.Background(), []BatchPoint{{-1, 0}}, nil); err == nil {
		t.Error("negative ω accepted")
	}
	if _, err := m.EvaluateBatch(context.Background(), []BatchPoint{{100, 1}}, make([]float64, 3)); err == nil {
		t.Error("short warm accepted")
	}
	res, err := m.EvaluateBatch(context.Background(), nil, nil)
	if err != nil || len(res) != 0 {
		t.Errorf("empty batch: res=%v err=%v", res, err)
	}
	assign := map[string]int{}
	for i, u := range cfg.Floorplan.Units() {
		assign[u.Name] = i % 2
	}
	z, err := m.NewZoning(assign, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.EvaluateZonedBatch(context.Background(), nil, nil, nil); err == nil {
		t.Error("nil zoning accepted")
	}
	if _, err := m.EvaluateZonedBatch(context.Background(), z, []ZonedPoint{{100, []float64{1}}}, nil); err == nil {
		t.Error("current-count mismatch accepted")
	}
	if _, err := m.EvaluateZonedBatch(context.Background(), z, []ZonedPoint{{100, []float64{1, -2}}}, nil); err == nil {
		t.Error("negative zone current accepted")
	}
}
