package thermal

import (
	"math"
	"testing"

	"oftec/internal/power"
	"oftec/internal/workload"
)

func buildROM(t *testing.T, bench string) (*Model, *ReducedModel) {
	t.Helper()
	m := benchModel(t, testConfig(), bench)
	rm, err := NewReducedModel(m, ROMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return m, rm
}

// TestROMWithinAdvertisedBound is the fidelity property test: over a grid
// of operating points that is neither the snapshot nor the validation
// grid, every point the ROM accepts must reproduce the full chip-layer
// field to within the advertised error bound.
func TestROMWithinAdvertisedBound(t *testing.T) {
	m, rm := buildROM(t, "Basicmath")
	cfg := m.Config()
	if rm.Rank() == 0 {
		t.Fatal("empty basis")
	}
	bound := rm.ErrorBound()
	if bound <= 0 || math.IsInf(bound, 0) {
		t.Fatalf("unusable advertised bound %g", bound)
	}

	accepted, tested := 0, 0
	const nOmega, nI = 7, 5
	for io := 0; io < nOmega; io++ {
		omega := rm.OmegaFloor() + (cfg.Fan.OmegaMax-rm.OmegaFloor())*(float64(io)+0.37)/nOmega
		for ic := 0; ic < nI; ic++ {
			itec := cfg.TEC.MaxCurrent * (float64(ic) + 0.61) / nI
			tested++
			rom, ok, err := rm.Evaluate(omega, itec)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				continue
			}
			accepted++
			full, err := m.Evaluate(omega, itec)
			if err != nil {
				t.Fatal(err)
			}
			if full.Runaway {
				t.Fatalf("ROM accepted (ω=%g, I=%g) but the full model runs away", omega, itec)
			}
			var errInf float64
			for i, ti := range rom.ChipTemps {
				if d := math.Abs(ti - full.ChipTemps[i]); d > errInf {
					errInf = d
				}
			}
			if errInf > bound+1e-9 {
				t.Errorf("(ω=%g, I=%g): chip-layer error %g K exceeds advertised bound %g K",
					omega, itec, errInf, bound)
			}
			if d := math.Abs(rom.MaxChipTemp - full.MaxChipTemp); d > bound+1e-9 {
				t.Errorf("(ω=%g, I=%g): MaxChipTemp error %g K exceeds bound %g K", omega, itec, d, bound)
			}
		}
	}
	// The property is vacuous if the ROM rejects everything; the grid sits
	// inside the snapshot hull, so most points must be served reduced.
	if accepted < tested/2 {
		t.Fatalf("ROM accepted only %d/%d in-hull points", accepted, tested)
	}
	stats := rm.Stats()
	if stats.Evaluations != int64(tested) {
		t.Errorf("Evaluations = %d, want %d", stats.Evaluations, tested)
	}
	if stats.Rejections != int64(tested-accepted) {
		t.Errorf("Rejections = %d, want %d", stats.Rejections, tested-accepted)
	}
}

// TestROMRunawayRejects pins the fall-through contract at the runaway
// wall: a near-zero fan speed (below the snapshot floor, and in thermal
// runaway on the full model) must be declined, never answered.
func TestROMRunawayRejects(t *testing.T) {
	m, rm := buildROM(t, "Quicksort")
	omega := rm.OmegaFloor() / 50
	full, err := m.Evaluate(omega, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !full.Runaway {
		t.Skipf("full model does not run away at ω=%g; floor %g", omega, rm.OmegaFloor())
	}
	res, ok, err := rm.Evaluate(omega, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("ROM accepted a runaway point: %+v", res)
	}
	if rm.Stats().Rejections == 0 {
		t.Error("rejection not counted")
	}
	if _, _, err := rm.Evaluate(-1, 0); err == nil {
		t.Error("invalid operating point accepted")
	}
}

// TestROMTracksDynamicPower: after SetDynamicPower the ROM must refresh
// its projected RHS and track the full model at the new workload without
// rebuilding the basis.
func TestROMTracksDynamicPower(t *testing.T) {
	cfg := testConfig()
	b, err := workload.ByName("Basicmath")
	if err != nil {
		t.Fatal(err)
	}
	pm, err := b.PowerMap(cfg.Floorplan)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModel(cfg, pm)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := NewReducedModel(m, ROMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	omega, itec := 0.6*cfg.Fan.OmegaMax, 0.4*cfg.TEC.MaxCurrent

	before, ok, err := rm.Evaluate(omega, itec)
	if err != nil || !ok {
		t.Fatalf("pre-change evaluation declined (ok=%v, err=%v)", ok, err)
	}

	// Same spatial shape, lower level — the DVFS/online-control pattern
	// the lazy refresh exists for.
	scaled := make(power.Map, len(pm))
	for name, p := range pm {
		scaled[name] = 0.8 * p
	}
	if err := m.SetDynamicPower(scaled); err != nil {
		t.Fatal(err)
	}
	after, ok, err := rm.Evaluate(omega, itec)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("ROM declined after a benign power rescale")
	}
	if rm.Stats().DynRefreshes != 1 {
		t.Errorf("DynRefreshes = %d, want 1", rm.Stats().DynRefreshes)
	}
	if after.MaxChipTemp >= before.MaxChipTemp {
		t.Errorf("cooler workload did not lower MaxChipTemp: %g → %g", before.MaxChipTemp, after.MaxChipTemp)
	}
	full, err := m.Evaluate(omega, itec)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(after.MaxChipTemp - full.MaxChipTemp); d > rm.ErrorBound()+1e-9 {
		t.Errorf("post-refresh error %g K exceeds bound %g K", d, rm.ErrorBound())
	}
}
