package thermal

import (
	"math"
	"os"
	"reflect"
	"strings"
	"testing"

	"oftec/internal/coolant"
)

// liquidConfig is testConfig re-actuated through the coolant seam with
// the default liquid loop.
func liquidConfig() Config {
	cfg := testConfig()
	cfg.Coolant = &coolant.Spec{Kind: coolant.KindLiquid}
	return cfg
}

// TestAirSpecBitIdenticalToNilCoolant: an explicit "air" coolant spec and
// the nil (pre-seam) configuration must produce DeepEqual results and
// gradients — the spec resolution layer adds exactly nothing.
func TestAirSpecBitIdenticalToNilCoolant(t *testing.T) {
	nilModel := benchModel(t, testConfig(), "Basicmath")
	airCfg := testConfig()
	airCfg.Coolant = &coolant.Spec{Kind: coolant.KindAir}
	airModel := benchModel(t, airCfg, "Basicmath")

	for _, pt := range []struct{ omega, itec float64 }{
		{0, 0}, {120, 0.4}, {250, 1.0}, {524, 5},
	} {
		ra, err := nilModel.Evaluate(pt.omega, pt.itec)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := airModel.Evaluate(pt.omega, pt.itec)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ra, rb) {
			t.Errorf("(ω=%g, I=%g): air-spec result differs from nil-coolant result", pt.omega, pt.itec)
		}
		if ra.Runaway {
			continue
		}
		ga, err := nilModel.EvaluateGrad(pt.omega, pt.itec)
		if err != nil {
			t.Fatal(err)
		}
		gb, err := airModel.EvaluateGrad(pt.omega, pt.itec)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ga.PowerGrad, gb.PowerGrad) || !reflect.DeepEqual(ga.TempGrad, gb.TempGrad) {
			t.Errorf("(ω=%g, I=%g): air-spec gradients differ from nil-coolant gradients", pt.omega, pt.itec)
		}
	}
}

// TestLiquidEvaluatePhysics: under the liquid actuator the reported drive
// power must follow the pump affinity law and the energy balance must
// close — the seam carries the new physics end to end, not just g(u).
func TestLiquidEvaluatePhysics(t *testing.T) {
	cfg := liquidConfig()
	m := benchModel(t, cfg, "Basicmath")
	loop := coolant.PaperLoop()
	if m.UMax() != loop.MaxSpeed {
		t.Fatalf("UMax %g, want the pump ceiling %g", m.UMax(), loop.MaxSpeed)
	}
	res, err := m.Evaluate(200, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runaway {
		t.Fatal("liquid loop at u=200 should not run away")
	}
	if want := loop.Power(200); res.PFan != want {
		t.Errorf("drive power %g, want pump affinity %g", res.PFan, want)
	}
	imb, err := m.EnergyBalance(res)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(imb) > 1e-6*res.CoolingPower() {
		t.Errorf("energy imbalance %g W under liquid actuator", imb)
	}
}

// TestLiquidAdjointMatchesCentralDiff is the liquid half of the gradient
// acceptance bar: the adjoint gradients under the liquid actuator must
// match Richardson-extrapolated central differences to 1e-5 relative
// error, on interior points and on the GMin-saturated branch (where the
// conductance derivative is exactly zero and only the pump term remains).
func TestLiquidAdjointMatchesCentralDiff(t *testing.T) {
	cfg := liquidConfig()
	m := benchModel(t, cfg, "Basicmath")
	nc := m.ChipGrid().NumCells()
	tau := SmoothMaxTau(nc, DefaultSmoothBound)
	knee := coolant.PaperLoop().CrossoverU()

	// The default loop's stopped floor (g_HS-matched, 0.525 W/K) runs
	// away under Basicmath — faithfully reproducing the paper's
	// no-forced-convection runaway — so the saturated branch is probed
	// on a loop with a taller floor that keeps the steady state finite.
	satLoop := coolant.PaperLoop()
	satLoop.GMin = 2.0
	satCfg := testConfig()
	satCfg.Coolant = &coolant.Spec{Kind: coolant.KindLiquid, Liquid: &satLoop}
	mSat := benchModel(t, satCfg, "Basicmath")
	satKnee := satLoop.CrossoverU()

	evalP := func(m *Model) func(u, itec float64) float64 {
		return func(u, itec float64) float64 {
			res, err := m.Evaluate(u, itec)
			if err != nil {
				t.Fatal(err)
			}
			if res.Runaway {
				t.Fatalf("runaway at (u=%g, I=%g)", u, itec)
			}
			return res.CoolingPower()
		}
	}
	evalT := func(m *Model) func(u, itec float64) float64 {
		return func(u, itec float64) float64 {
			res, err := m.Evaluate(u, itec)
			if err != nil {
				t.Fatal(err)
			}
			return SmoothMax(res.ChipTemps, tau)
		}
	}

	points := []struct {
		name     string
		m        *Model
		u, itec  float64
		tol      float64
		hU, hCur float64
	}{
		{"interior", m, 200, 1.0, 1e-5, 0.5, 0.02},
		{"above-knee", m, knee * 1.5, 0.4, 1e-5, 0.05, 0.02},
		{"near-max-pump", m, m.UMax() - 2, 0.8, 1e-5, 0.4, 0.02},
		// On the saturated branch dg/du = 0 exactly: the whole u-gradient
		// is the pump affinity derivative, and the steps must stay below
		// the knee so the difference quotient sees one smooth branch.
		{"saturated", mSat, satKnee * 0.5, 0.6, 1e-5, satKnee * 0.1, 0.02},
	}
	for _, pt := range points {
		t.Run(pt.name, func(t *testing.T) {
			g, err := pt.m.EvaluateGrad(pt.u, pt.itec)
			if err != nil {
				t.Fatal(err)
			}
			pOf, tOf := evalP(pt.m), evalT(pt.m)
			fd := richardson(func(u float64) float64 { return pOf(u, pt.itec) }, pt.u, pt.hU)
			checkGradComponent(t, "d𝒫/du", g.PowerGrad[0], fd, pt.tol)
			fd = richardson(func(c float64) float64 { return pOf(pt.u, c) }, pt.itec, pt.hCur)
			checkGradComponent(t, "d𝒫/dI", g.PowerGrad[1], fd, pt.tol)
			fd = richardson(func(u float64) float64 { return tOf(u, pt.itec) }, pt.u, pt.hU)
			checkGradComponent(t, "d𝒯/du", g.TempGrad[0], fd, pt.tol)
			fd = richardson(func(c float64) float64 { return tOf(pt.u, c) }, pt.itec, pt.hCur)
			checkGradComponent(t, "d𝒯/dI", g.TempGrad[1], fd, pt.tol)

			if pt.name == "saturated" {
				if want := satLoop.DPowerDU(pt.u); g.PowerGrad[0] != want {
					t.Errorf("saturated-branch d𝒫/du = %g, want the bare pump term %g", g.PowerGrad[0], want)
				}
				if g.TempGrad[0] != 0 {
					t.Errorf("saturated-branch d𝒯/du = %g, want exactly 0", g.TempGrad[0])
				}
			}
		})
	}
}

// TestLiquidROMFidelity: the ROM machinery is actuator-agnostic — built
// over a liquid model, its affine decomposition must stay inside the
// advertised temperature bound against the full liquid solve.
func TestLiquidROMFidelity(t *testing.T) {
	cfg := liquidConfig()
	m := benchModel(t, cfg, "Basicmath")
	rom, err := NewReducedModel(m, ROMOptions{
		MaxRank: 16, SnapshotOmegas: 4, SnapshotCurrents: 3,
		ValidateOmegas: 3, ValidateCurrents: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []float64{rom.OmegaFloor(), (rom.OmegaFloor() + m.UMax()) / 2, m.UMax()} {
		for _, itec := range []float64{0, 1, 2.5} {
			rr, ok, err := rom.Evaluate(u, itec)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				continue
			}
			fr, err := m.Evaluate(u, itec)
			if err != nil {
				t.Fatal(err)
			}
			if d := math.Abs(rr.MaxChipTemp - fr.MaxChipTemp); d > rom.ErrorBound() {
				t.Errorf("(u=%g, I=%g): ROM off by %g K > bound %g K", u, itec, d, rom.ErrorBound())
			}
		}
	}
}

// TestROMPersistActuatorChangeInvalidates extends the persistence
// round-trip suite across the coolant seam: a basis collected under the
// air actuator must never answer for a liquid actuator on the same
// floorplan — first because the identities differ (content-address miss),
// and, if a file is planted at the liquid address anyway, because the
// in-header identity check rejects it.
func TestROMPersistActuatorChangeInvalidates(t *testing.T) {
	dir := t.TempDir()
	opts := romTestOptions(dir)
	airROM, err := NewReducedModel(benchModel(t, testConfig(), "Basicmath"), opts)
	if err != nil {
		t.Fatal(err)
	}
	airPath := romCacheFile(t, airROM.m, opts)

	liquidModel := benchModel(t, liquidConfig(), "Basicmath")
	idAir, err := romIdentity(airROM.m, opts)
	if err != nil {
		t.Fatal(err)
	}
	idLiquid, err := romIdentity(liquidModel, opts)
	if err != nil {
		t.Fatal(err)
	}
	if idAir == idLiquid {
		t.Fatal("air and liquid actuators share a ROM identity")
	}
	if _, err := loadCachedROM(liquidModel, opts); err == nil {
		t.Fatal("liquid model loaded an air-actuator basis via content address")
	}

	raw, err := os.ReadFile(airPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(romCachePath(dir, idLiquid), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = loadCachedROM(liquidModel, opts)
	if err == nil || !strings.Contains(err.Error(), "identity") {
		t.Fatalf("planted air basis under liquid address: err = %v, want an identity rejection", err)
	}
}
