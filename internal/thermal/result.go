package thermal

import (
	"fmt"
	"math"

	"oftec/internal/sparse"
	"oftec/internal/units"
)

// Result holds one steady-state evaluation of the cooling package.
type Result struct {
	// Omega and ITEC echo the operating point (rad/s, A).
	Omega, ITEC float64

	// Runaway marks a thermal-runaway operating point; when set, the
	// temperature and power figures below are +Inf (the paper: "the value
	// of 𝒫 and 𝒯 tends to infinity for small values of ω").
	Runaway bool

	// T is the full node temperature vector in kelvin (nil on runaway).
	T []float64
	// ChipTemps is the chip-layer cell temperatures in kelvin.
	ChipTemps []float64
	// MaxChipTemp is 𝒯 = max over chip cells, kelvin.
	MaxChipTemp float64
	// MaxChipCell is the index of the hottest chip cell (-1 on runaway).
	MaxChipCell int

	// PLeakage, PTEC, PFan are the three terms of Equation (10), watts.
	PLeakage, PTEC, PFan float64

	// PDynamic is the (input) dynamic power, watts.
	PDynamic float64

	// SolveStats reports the inner sparse solve.
	SolveStats sparse.Stats
	// OuterIterations counts fixed-point iterations for EvaluateExact.
	OuterIterations int
}

// CoolingPower returns 𝒫 = P_leakage + P_TEC + P_fan (Equation (10)).
func (r *Result) CoolingPower() float64 {
	return r.PLeakage + r.PTEC + r.PFan
}

// MeetsConstraint reports whether every chip element is strictly below
// tMax (constraint (15)).
func (r *Result) MeetsConstraint(tMax float64) bool {
	return !r.Runaway && r.MaxChipTemp < tMax
}

// String renders a compact summary.
func (r *Result) String() string {
	if r.Runaway {
		return fmt.Sprintf("ω=%.0f rad/s I=%.2f A: THERMAL RUNAWAY", r.Omega, r.ITEC)
	}
	return fmt.Sprintf("ω=%.0f rad/s I=%.2f A: Tmax=%.2f°C 𝒫=%.2fW (leak %.2f + tec %.2f + fan %.2f)",
		r.Omega, r.ITEC, units.KToC(r.MaxChipTemp), r.CoolingPower(), r.PLeakage, r.PTEC, r.PFan)
}

// runawayResult builds the infinite-objective result for a runaway point.
//
//oftec:allocok result materialization; runs once per miss, then memoized by version
func (m *Model) runawayResult(omega, iTEC float64, stats sparse.Stats) *Result {
	return &Result{
		Omega:       omega,
		ITEC:        iTEC,
		Runaway:     true,
		MaxChipTemp: math.Inf(1),
		MaxChipCell: -1,
		PLeakage:    math.Inf(1),
		PTEC:        m.tecPowerAt(nil, iTEC),
		PFan:        m.act.Power(omega),
		PDynamic:    m.DynamicPowerTotal(),
		SolveStats:  stats,
	}
}

// tecPowerAt computes Equation (12) for a uniform driving current.
func (m *Model) tecPowerAt(t []float64, iTEC float64) float64 {
	return m.tecPowerFunc(t, m.uniformCurrent(iTEC))
}

// tecPowerFunc computes Equation (12): Σ over modules of R·I² + α·ΔT·I,
// with a per-cell current. With a nil temperature vector only the Joule
// part is returned.
func (m *Model) tecPowerFunc(t []float64, cur func(int) float64) float64 {
	var p float64
	for i, alpha := range m.tecAlpha {
		if alpha == 0 {
			continue
		}
		iTEC := cur(i)
		p += m.tecR[i] * iTEC * iTEC
		if t != nil {
			dT := t[m.node(planeTECHot, i)] - t[m.node(planeTECCold, i)]
			p += alpha * dT * iTEC
		}
	}
	return p
}

// buildResult materializes the Result record for a converged solve.
//
//oftec:allocok result materialization; runs once per miss, then memoized by version
func (m *Model) buildResult(omega, iTEC float64, t []float64, stats sparse.Stats, linearLeak bool) *Result {
	nc := m.grids[planeChip].NumCells()
	res := &Result{
		Omega:       omega,
		ITEC:        iTEC,
		T:           t,
		ChipTemps:   make([]float64, nc),
		MaxChipCell: -1,
		PFan:        m.act.Power(omega),
		PDynamic:    m.DynamicPowerTotal(),
		SolveStats:  stats,
	}
	for i := 0; i < nc; i++ {
		ti := t[m.node(planeChip, i)]
		res.ChipTemps[i] = ti
		if ti > res.MaxChipTemp {
			res.MaxChipTemp = ti
			res.MaxChipCell = i
		}
		if linearLeak {
			res.PLeakage += m.leakA[i]*(ti-m.leakTref) + m.leakB[i]
		} else {
			res.PLeakage += m.leakP0[i] * math.Exp(m.leakBeta*(ti-m.leakT0))
		}
	}
	res.PTEC = m.tecPowerAt(t, iTEC)
	return res
}

// InstantaneousPowers computes the leakage and TEC electrical power for an
// arbitrary node-temperature field at the given TEC current, using the
// Taylor-linearized leakage. Transient simulations use this to account
// cooling power along a trajectory.
func (m *Model) InstantaneousPowers(temps []float64, itec float64) (leak, tec float64, err error) {
	if len(temps) != m.n {
		return 0, 0, fmt.Errorf("thermal: temperature field has %d nodes, model has %d", len(temps), m.n)
	}
	nc := m.grids[planeChip].NumCells()
	for i := 0; i < nc; i++ {
		ti := temps[m.node(planeChip, i)]
		leak += m.leakA[i]*(ti-m.leakTref) + m.leakB[i]
	}
	return leak, m.tecPowerAt(temps, itec), nil
}

// PlaneTemps returns the temperatures of the named plane ("chip", "tim1",
// "tec_abs", "tec_gen", "tec_rej", "spreader", "tim2", "sink", "pcb") from
// a result, for inspection and plotting.
func (m *Model) PlaneTemps(res *Result, plane string) ([]float64, error) {
	if res.Runaway {
		return nil, fmt.Errorf("thermal: no temperature field for a runaway result")
	}
	for p := 0; p < numPlanes; p++ {
		if planeNames[p] == plane {
			g := m.grids[p]
			out := make([]float64, g.NumCells())
			for i := range out {
				out[i] = res.T[m.node(p, i)]
			}
			return out, nil
		}
	}
	return nil, fmt.Errorf("thermal: unknown plane %q", plane)
}

// EnergyBalance returns the net heat imbalance of a steady-state result in
// watts: (dynamic + leakage + TEC electrical power) − (heat flowing to
// ambient through the sink and PCB paths). It should be close to zero for
// a converged solve; tests assert this.
func (m *Model) EnergyBalance(res *Result) (float64, error) {
	if res.Runaway {
		return 0, fmt.Errorf("thermal: no energy balance for a runaway result")
	}
	in := res.PDynamic + res.PLeakage + res.PTEC

	var out float64
	g := m.act.Conductance(res.Omega)
	for i, frac := range m.sinkFrac {
		out += g * frac * (res.T[m.node(planeSink, i)] - m.cfg.Ambient)
	}
	pcb := m.grids[planePCB]
	per := m.cfg.PCBToAmbient / float64(pcb.NumCells())
	for i := 0; i < pcb.NumCells(); i++ {
		out += per * (res.T[m.node(planePCB, i)] - m.cfg.Ambient)
	}
	bal := in - out
	if math.IsNaN(bal) || math.IsInf(bal, 0) {
		return 0, fmt.Errorf("thermal: energy balance is not finite")
	}
	return bal, nil
}

// HottestUnit maps the hottest chip cell back to the floorplan unit that
// contains its center.
func (m *Model) HottestUnit(res *Result) (string, error) {
	if res.Runaway || res.MaxChipCell < 0 {
		return "", fmt.Errorf("thermal: no hottest unit for a runaway result")
	}
	g := m.grids[planeChip]
	r, c := g.RowCol(res.MaxChipCell)
	x, y := g.CellCenter(r, c)
	u, ok := m.cfg.Floorplan.UnitAt(x, y)
	if !ok {
		return "", fmt.Errorf("thermal: hottest cell center (%g, %g) outside floorplan", x, y)
	}
	return u.Name, nil
}
