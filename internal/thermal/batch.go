package thermal

import (
	"context"
	"fmt"
	"math"

	"oftec/internal/sparse"
)

// This file is the batched steady-state evaluator. Bulk workloads —
// surface sweeps, Pareto probes, ROM snapshot collection — evaluate many
// operating points whose systems share one ω-slice of the conductance
// matrix and differ only in the TEC diagonal/RHS terms. EvaluateBatch
// assembles the canonical slice system once, expresses each point as a
// set of per-column diagonal overrides plus an RHS patch, and hands
// width-8 chunks to sparse.CGPrecondBatch under the shared slice
// preconditioner.
//
// The batched path is a pure performance transform: per column the
// assembly patches use the same floating-point statement shapes as
// assembleInto and the lockstep CG replicates CGPrecond bit-for-bit, so
// a batched result is reflect.DeepEqual to the per-point result from the
// same seed (the equivalence suite pins this). A column the lockstep
// solve cannot finish (breakdown, iteration budget) falls back to the
// scalar path, which reproduces the identical failure and proceeds down
// the full SolveAuto ladder exactly as a per-point call would.

// batchWidth is the lockstep column count: wide enough to amortize the
// per-iteration pattern walk over a cache line of float64 columns,
// narrow enough that the interleaved working set stays in cache.
const batchWidth = 8

// BatchPoint is one scalar operating point of a batched evaluation.
type BatchPoint struct {
	Omega float64 // fan speed, rad/s
	ITEC  float64 // uniform TEC driving current, A
}

// ZonedPoint is one zoned operating point of a batched evaluation: one
// driving current per control zone (see Zoning).
type ZonedPoint struct {
	Omega    float64
	Currents []float64
}

// EvaluateBatch computes the steady state at every operating point,
// solving memo misses in lockstep chunks that share one assembly and one
// IC(0) factorization per ω-slice. Results are positionally aligned with
// pts and identical — reflect.DeepEqual, including SolveStats — to what
// per-point EvaluateWarm calls would return: with warm == nil the first
// point of each ω-group seeds from ambient and the rest seed from its
// solution (the sweep warm-start carry); with warm set every point seeds
// from it. ctx is checked between chunks; cancellation returns ctx.Err()
// with no results.
func (m *Model) EvaluateBatch(ctx context.Context, pts []BatchPoint, warm []float64) ([]*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	for _, p := range pts {
		if err := m.checkOperatingPoint(p.Omega, p.ITEC); err != nil {
			return nil, err
		}
	}
	if err := m.checkWarm(warm); err != nil {
		return nil, err
	}
	results := make([]*Result, len(pts))
	if len(pts) == 0 {
		return results, nil
	}

	for _, g := range groupByOmega(len(pts), func(i int) float64 { return pts[i].Omega }) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		omega := pts[g[0]].Omega

		// Seed: the sweep warm-start carry. The first point of the group
		// solves per-point from ambient (or answers from the memo) and its
		// field seeds the siblings; an explicit warm seeds everything.
		seed := warm
		rest := g
		if warm == nil {
			res, err := m.EvaluateWarm(omega, pts[g[0]].ITEC, nil)
			if err != nil {
				return nil, err
			}
			results[g[0]] = res
			if !res.Runaway {
				seed = res.T
			}
			rest = g[1:]
		}

		if err := m.evaluateGroup(ctx, omega, rest,
			func(i, cell int) float64 { return pts[i].ITEC },
			seed,
			func(i int) (*Result, bool) {
				ver := m.versionFor(verKey{omega: omega, itec: pts[i].ITEC, linear: true})
				return m.loadResult(ver)
			},
			func(i int, t []float64, stats sparse.Stats) *Result {
				itec := pts[i].ITEC
				ver := m.versionFor(verKey{omega: omega, itec: itec, linear: true})
				res := (*Result)(nil)
				if !m.physical(t) {
					res = m.runawayResult(omega, itec, stats)
				} else {
					res = m.buildResult(omega, itec, t, stats, true)
					if res.MaxChipTemp > m.cfg.runawayTemp() {
						res = m.runawayResult(omega, itec, stats)
					}
				}
				m.storeResult(ver, res)
				return res
			},
			func(i int, seed []float64) (*Result, error) {
				return m.EvaluateWarm(omega, pts[i].ITEC, seed)
			},
			results,
		); err != nil {
			return nil, err
		}
	}
	return results, nil
}

// EvaluateZonedBatch is EvaluateBatch for zoned operating points (one
// current per control zone). Zoned points are never memoized (matching
// EvaluateZonedWarm), so every point solves; a single-zone zoning
// delegates to the scalar batch exactly as EvaluateZonedWarm delegates
// to EvaluateWarm.
func (m *Model) EvaluateZonedBatch(ctx context.Context, z *Zoning, pts []ZonedPoint, warm []float64) ([]*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if z == nil {
		return nil, fmt.Errorf("thermal: nil zoning")
	}
	maxCur := make([]float64, len(pts))
	for pi, p := range pts {
		if len(p.Currents) != z.numZones {
			return nil, fmt.Errorf("thermal: point %d has %d currents for %d zones", pi, len(p.Currents), z.numZones)
		}
		for zone, c := range p.Currents {
			if c < 0 || math.IsNaN(c) {
				return nil, fmt.Errorf("thermal: point %d zone %d current %g must be non-negative", pi, zone, c)
			}
			if c > maxCur[pi] {
				maxCur[pi] = c
			}
		}
		if err := m.checkOperatingPoint(p.Omega, maxCur[pi]); err != nil {
			return nil, err
		}
	}
	if err := m.checkWarm(warm); err != nil {
		return nil, err
	}
	if z.numZones == 1 {
		sp := make([]BatchPoint, len(pts))
		for i, p := range pts {
			sp[i] = BatchPoint{Omega: p.Omega, ITEC: p.Currents[0]}
		}
		return m.EvaluateBatch(ctx, sp, warm)
	}
	results := make([]*Result, len(pts))
	if len(pts) == 0 {
		return results, nil
	}

	for _, g := range groupByOmega(len(pts), func(i int) float64 { return pts[i].Omega }) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		omega := pts[g[0]].Omega

		seed := warm
		rest := g
		if warm == nil {
			res, err := m.EvaluateZonedWarm(omega, z, pts[g[0]].Currents, nil)
			if err != nil {
				return nil, err
			}
			results[g[0]] = res
			if !res.Runaway {
				seed = res.T
			}
			rest = g[1:]
		}

		if err := m.evaluateGroup(ctx, omega, rest,
			func(i, cell int) float64 { return pts[i].Currents[z.zoneOf[cell]] },
			seed,
			func(i int) (*Result, bool) { return nil, false }, // zoned points are not memoized
			func(i int, t []float64, stats sparse.Stats) *Result {
				currents := pts[i].Currents
				if !m.physical(t) {
					return m.runawayResult(omega, maxCur[i], stats)
				}
				res := m.buildResult(omega, maxCur[i], t, stats, true)
				res.PTEC = m.tecPowerFunc(t, func(cell int) float64 { return currents[z.zoneOf[cell]] })
				if res.MaxChipTemp > m.cfg.runawayTemp() {
					return m.runawayResult(omega, maxCur[i], stats)
				}
				return res
			},
			func(i int, seed []float64) (*Result, error) {
				return m.EvaluateZonedWarm(omega, z, pts[i].Currents, seed)
			},
			results,
		); err != nil {
			return nil, err
		}
	}
	return results, nil
}

// groupByOmega partitions point indices by ω in first-appearance order,
// keeping submission order within each group — the order the per-point
// reference path would visit them in a row-major sweep.
func groupByOmega(n int, omegaOf func(int) float64) [][]int {
	var order []float64
	groups := make(map[float64][]int)
	for i := 0; i < n; i++ {
		w := omegaOf(i)
		if _, ok := groups[w]; !ok {
			order = append(order, w)
		}
		groups[w] = append(groups[w], i)
	}
	out := make([][]int, 0, len(order))
	for _, w := range order {
		out = append(out, groups[w])
	}
	return out
}

// evaluateGroup solves the memo misses of one ω-group in lockstep
// chunks. curAt supplies the driving current of point pi at a TEC cell
// (uniform for scalar points, zone-resolved for zoned ones); memo
// answers points without solving; finish replicates the per-point result
// tail for a converged lockstep column; fallback re-solves a column the
// lockstep path could not finish.
func (m *Model) evaluateGroup(
	ctx context.Context,
	omega float64,
	idxs []int,
	curAt func(pi, cell int) float64,
	seed []float64,
	memo func(int) (*Result, bool),
	finish func(int, []float64, sparse.Stats) *Result,
	fallback func(int, []float64) (*Result, error),
	results []*Result,
) error {
	ic, icOK := m.slicePrecond(omega)

	// One canonical assembly for the whole group: the I_TEC = 0 system.
	// Chunks only read sc.vals/sc.rhs; per-point terms live in the
	// override and RHS buffers below.
	sc := m.getScratch()
	defer m.putScratch(sc)
	sc.itec = 0
	m.assembleInto(sc, omega, sc.uniform, true, nil)

	ws := sparse.GetBatchWorkspace()
	defer sparse.PutBatchWorkspace(ws)
	b := make([]float64, m.n*batchWidth)
	x0 := make([]float64, m.n*batchWidth)

	// Override backing store: cold rows then hot rows, cells ascending —
	// strictly ascending node order (the cold plane sits below the hot
	// plane in the stack).
	covered := make([]int, 0, len(m.tecAlpha))
	for i, alpha := range m.tecAlpha {
		if alpha != 0 {
			covered = append(covered, i)
		}
	}
	ovs := make([]sparse.DiagOverride, 0, 2*len(covered))
	for _, pass := range []int{planeTECCold, planeTECHot} {
		for _, cell := range covered {
			row := m.node(pass, cell)
			ovs = append(ovs, sparse.DiagOverride{
				Row:  int32(row),
				K:    m.diagIdx[row],
				Vals: make([]float64, batchWidth),
			})
		}
	}

	var chunk []int
	for start := 0; start < len(idxs); start += batchWidth {
		if err := ctx.Err(); err != nil {
			return err
		}
		chunk = chunk[:0]
		for _, pi := range idxs[start:min(start+batchWidth, len(idxs))] {
			if res, ok := memo(pi); ok {
				results[pi] = res
				continue
			}
			chunk = append(chunk, pi)
		}
		if len(chunk) == 0 {
			continue
		}
		if !icOK {
			// No slice factorization (matrix not SPD enough): the lockstep
			// rung is unavailable, so every point takes the per-point
			// ladder — the same one it would have taken solo.
			for _, pi := range chunk {
				res, err := fallback(pi, seed)
				if err != nil {
					return err
				}
				results[pi] = res
			}
			continue
		}
		w := len(chunk)

		// Pad a wide-enough partial chunk to the full lockstep width by
		// duplicating its final column. Pads run identical arithmetic to
		// their twin so they freeze on the same iteration and cost no
		// extra sweeps; what they buy is the width-8 specialized kernels,
		// which are cheaper per column than the generic path whenever
		// most of the width is real work. Narrow chunks (memo-riddled
		// rows) stay generic — there padding would outweigh the win.
		wp := w
		if w < batchWidth && 2*w > batchWidth {
			wp = batchWidth
		}

		// Per-column override values, with the per-point statement shape
		// (base + α·I / base − α·I; I = 0 leaves the canonical value bits).
		nCov := len(covered)
		for ci, cell := range covered {
			alpha := m.tecAlpha[cell]
			cold := &ovs[ci]
			hot := &ovs[nCov+ci]
			cbase := sc.vals[cold.K]
			hbase := sc.vals[hot.K]
			cold.Vals = cold.Vals[:wp]
			hot.Vals = hot.Vals[:wp]
			for j, pi := range chunk {
				iTEC := curAt(pi, cell)
				cv, hv := cbase, hbase
				if iTEC != 0 {
					cv = cbase + alpha*iTEC
					hv = hbase - alpha*iTEC
				}
				cold.Vals[j] = cv
				hot.Vals[j] = hv
			}
			for j := w; j < wp; j++ {
				cold.Vals[j] = cold.Vals[w-1]
				hot.Vals[j] = hot.Vals[w-1]
			}
		}

		// Interleaved RHS: the canonical slice RHS broadcast per column,
		// plus each point's Joule injection at the gen plane.
		bw := b[:m.n*wp]
		for i := 0; i < m.n; i++ {
			base := sc.rhs[i]
			row := bw[i*wp : i*wp+wp]
			for j := range row {
				row[j] = base
			}
		}
		for _, cell := range covered {
			mid := m.node(planeTECMid, cell)
			row := bw[mid*wp : mid*wp+wp]
			for j, pi := range chunk {
				iTEC := curAt(pi, cell)
				if iTEC != 0 {
					row[j] += m.tecR[cell] * iTEC * iTEC
				}
			}
			for j := w; j < wp; j++ {
				row[j] = row[w-1]
			}
		}

		// Interleaved start: every column from the group seed (ambient
		// when the group has none — the per-point nil-warm fill).
		x0w := x0[:m.n*wp]
		if seed != nil {
			for i := 0; i < m.n; i++ {
				s := seed[i]
				col := x0w[i*wp : i*wp+wp]
				for j := range col {
					col[j] = s
				}
			}
		} else {
			for i := range x0w {
				x0w[i] = m.cfg.Ambient
			}
		}

		opts := sparse.SolveOptions{Tol: 1e-9, MaxIter: 20 * m.n}
		sols, stats, ok, err := sparse.CGPrecondBatch(sc.mat, ovs[:2*nCov], bw, x0w, ic, wp, opts, ws)
		if err != nil {
			return err
		}
		for j, pi := range chunk {
			if ok[j] {
				results[pi] = finish(pi, sols[j], stats[j])
				continue
			}
			// Lockstep rung failed for this column: re-solve per-point
			// from the same seed. The first CG rung reproduces the same
			// failure and the ladder continues exactly as a solo call.
			res, err := fallback(pi, seed)
			if err != nil {
				return err
			}
			results[pi] = res
		}
	}
	return nil
}
