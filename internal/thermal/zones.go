package thermal

import (
	"fmt"
	"math"

	"oftec/internal/sparse"
)

// Zoning partitions the TEC deployment into independently driven control
// zones — the natural generalization of the paper's single series string
// (Section 6.1: "the deployed TECs are connected electrically in series
// and driven by the same current value"). Splitting the string into a few
// zones lets the controller concentrate current where the hot spots are;
// the zoned experiment quantifies the extra savings.
type Zoning struct {
	numZones int
	// zoneOf maps each chip-grid cell to its zone (only meaningful for
	// TEC-covered cells).
	zoneOf []int
}

// NumZones returns the number of control zones.
func (z *Zoning) NumZones() int { return z.numZones }

// NewZoning builds a zoning from a unit→zone assignment. Every floorplan
// unit must be assigned; zones must be numbered 0..numZones-1 with every
// zone used by at least one TEC-covered cell. Cells are assigned to the
// zone of the unit covering their center.
func (m *Model) NewZoning(assign map[string]int, numZones int) (*Zoning, error) {
	if numZones <= 0 {
		return nil, fmt.Errorf("thermal: zone count %d must be positive", numZones)
	}
	fp := m.cfg.Floorplan
	for _, u := range fp.Units() {
		zone, ok := assign[u.Name]
		if !ok {
			return nil, fmt.Errorf("thermal: unit %q has no zone assignment", u.Name)
		}
		if zone < 0 || zone >= numZones {
			return nil, fmt.Errorf("thermal: unit %q assigned to zone %d outside [0, %d)", u.Name, zone, numZones)
		}
	}
	for name := range assign {
		if _, ok := fp.Unit(name); !ok {
			return nil, fmt.Errorf("thermal: zone assignment references unknown unit %q", name)
		}
	}

	chip := m.grids[planeChip]
	z := &Zoning{numZones: numZones, zoneOf: make([]int, chip.NumCells())}
	used := make([]bool, numZones)
	for i := 0; i < chip.NumCells(); i++ {
		r, c := chip.RowCol(i)
		x, y := chip.CellCenter(r, c)
		u, ok := fp.UnitAt(x, y)
		if !ok {
			return nil, fmt.Errorf("thermal: chip cell %d center outside the floorplan", i)
		}
		z.zoneOf[i] = assign[u.Name]
		if m.tecAlpha[i] != 0 {
			used[z.zoneOf[i]] = true
		}
	}
	for zone, ok := range used {
		if !ok {
			return nil, fmt.Errorf("thermal: zone %d contains no TEC modules", zone)
		}
	}
	return z, nil
}

// SpreadZoning builds a k-zone partition with no hand-crafted
// assignment: the floorplan units that own TEC-covered cell centers at
// this resolution are round-robined across the k zones, and units
// without any covered cells (caches, slivers too thin to catch a cell
// center) go to zone 0, so every zone holds at least one module. It is
// the generic way for experiments and benchmarks to get a valid k-zone
// control space; it fails when fewer than k units own covered cells.
func (m *Model) SpreadZoning(k int) (*Zoning, error) {
	chip := m.grids[planeChip]
	fp := m.cfg.Floorplan
	covered := map[string]bool{}
	for i := 0; i < chip.NumCells(); i++ {
		if m.tecAlpha[i] == 0 {
			continue
		}
		r, c := chip.RowCol(i)
		x, y := chip.CellCenter(r, c)
		if u, ok := fp.UnitAt(x, y); ok {
			covered[u.Name] = true
		}
	}
	assign := map[string]int{}
	next := 0
	for _, u := range fp.Units() {
		if !covered[u.Name] {
			assign[u.Name] = 0
			continue
		}
		assign[u.Name] = next % k
		next++
	}
	if next < k {
		return nil, fmt.Errorf("thermal: only %d units own TEC-covered cells, cannot build %d zones", next, k)
	}
	return m.NewZoning(assign, k)
}

// EvaluateZoned computes the steady state with one driving current per
// zone (linearized leakage, like Evaluate). The result's ITEC field holds
// the maximum zone current; per-zone accounting is in the returned value's
// PTEC as usual.
func (m *Model) EvaluateZoned(omega float64, z *Zoning, currents []float64) (*Result, error) {
	return m.EvaluateZonedWarm(omega, z, currents, nil)
}

// EvaluateZonedWarm is EvaluateZoned with a warm-start hint for the
// iterative solver (same contract as EvaluateWarm: the hint steers the
// solver, never the answer). A single-zone zoning drives every TEC with
// one current, which is exactly the scalar operating point, so k=1 is
// delegated to the versioned, memoized scalar path — the zoned and scalar
// evaluations of the same point return the identical result.
func (m *Model) EvaluateZonedWarm(omega float64, z *Zoning, currents []float64, warm []float64) (*Result, error) {
	if z == nil {
		return nil, fmt.Errorf("thermal: nil zoning")
	}
	if len(currents) != z.numZones {
		return nil, fmt.Errorf("thermal: %d currents for %d zones", len(currents), z.numZones)
	}
	maxCur := 0.0
	for zone, c := range currents {
		if c < 0 || math.IsNaN(c) {
			return nil, fmt.Errorf("thermal: zone %d current %g must be non-negative", zone, c)
		}
		maxCur = math.Max(maxCur, c)
	}
	if err := m.checkOperatingPoint(omega, maxCur); err != nil {
		return nil, err
	}
	if z.numZones == 1 {
		return m.EvaluateWarm(omega, currents[0], warm)
	}

	cur := func(cell int) float64 { return currents[z.zoneOf[cell]] }
	sc := m.getScratch()
	defer m.putScratch(sc)
	// Zoned current patterns are left unversioned: the factor cache keys on
	// scalar operating points only, and a wrong reuse would be silent.
	m.assembleInto(sc, omega, cur, true, nil)
	if len(warm) == m.n {
		copy(sc.warm, warm)
	} else {
		sparse.Fill(sc.warm, m.cfg.Ambient)
	}
	t, stats, err := m.solveScratch(sc, omega, sc.warm)
	if err != nil || !m.physical(t) {
		return m.runawayResult(omega, maxCur, stats), nil
	}
	res := m.buildResult(omega, maxCur, t, stats, true)
	// buildResult computed PTEC with the uniform maxCur; redo with the
	// per-zone currents.
	res.PTEC = m.tecPowerFunc(t, cur)
	if res.MaxChipTemp > m.cfg.runawayTemp() {
		return m.runawayResult(omega, maxCur, stats), nil
	}
	return res, nil
}
